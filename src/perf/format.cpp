#include "perf/format.hpp"

#include <sstream>

namespace hanayo::perf {

std::string format_row(const PerfRow& row) {
  using schedule::Algo;
  std::ostringstream os;
  os << schedule::algo_name(row.algo) << " D=" << row.D << " P=" << row.P;
  if (row.algo == Algo::Hanayo || row.algo == Algo::Interleaved) {
    os << " W=" << row.W;
  }
  os << " B=" << row.B << " mb=" << row.mb_sequences;
  if (!row.feasible) {
    os << "  [infeasible: " << row.note << "]";
  } else if (row.oom) {
    os << "  [OOM, peak " << row.peak_mem_gb << " GB]";
  } else {
    os << "  " << row.throughput_seq_s << " seq/s, bubble " << row.bubble_ratio
       << ", peak " << row.peak_mem_gb << " GB";
    if (!row.note.empty()) os << " (" << row.note << ")";
  }
  return os.str();
}

std::string format_serve_row(const ServeRow& row) {
  using schedule::Algo;
  std::ostringstream os;
  os << schedule::algo_name(row.algo) << " dp=" << row.dp << " P=" << row.P;
  if (row.algo == Algo::Hanayo || row.algo == Algo::Interleaved) {
    os << " W=" << row.W;
  }
  os << " batch=" << row.max_batch;
  if (!row.feasible) {
    os << "  [infeasible: " << row.note << "]";
  } else if (row.oom) {
    os << "  [OOM, peak " << row.peak_mem_gb << " GB]";
  } else {
    os << "  " << row.tokens_per_s << " tok/s, " << row.token_latency_ms
       << " ms/tok (p50 " << row.p50_ms << ", p99 " << row.p99_ms
       << "), ttft " << row.ttft_ms << " ms, peak " << row.peak_mem_gb
       << " GB";
    if (!row.meets_target) os << " [misses target]";
    if (!row.note.empty()) os << " (" << row.note << ")";
  }
  return os.str();
}

}  // namespace hanayo::perf
