#include "perf/format.hpp"

#include <sstream>

namespace hanayo::perf {

std::string format_row(const PerfRow& row) {
  using schedule::Algo;
  std::ostringstream os;
  os << schedule::algo_name(row.algo) << " D=" << row.D << " P=" << row.P;
  if (row.algo == Algo::Hanayo || row.algo == Algo::Interleaved) {
    os << " W=" << row.W;
  }
  os << " B=" << row.B << " mb=" << row.mb_sequences;
  if (!row.feasible) {
    os << "  [infeasible: " << row.note << "]";
  } else if (row.oom) {
    os << "  [OOM, peak " << row.peak_mem_gb << " GB]";
  } else {
    os << "  " << row.throughput_seq_s << " seq/s, bubble " << row.bubble_ratio
       << ", peak " << row.peak_mem_gb << " GB";
    if (!row.note.empty()) os << " (" << row.note << ")";
  }
  return os.str();
}

}  // namespace hanayo::perf
