#include "perf/planner.hpp"

#include <algorithm>

#include "perf/format.hpp"
#include "schedule/validate.hpp"

namespace hanayo::perf {

using schedule::Algo;

std::string Candidate::to_string() const {
  PerfRow row;
  row.algo = algo;
  row.D = D;
  row.P = P;
  row.W = W;
  row.B = B;
  row.mb_sequences = mb_sequences;
  row.throughput_seq_s = throughput_seq_s;
  row.bubble_ratio = bubble_ratio;
  row.peak_mem_gb = peak_mem_gb;
  row.oom = oom;
  row.feasible = feasible;
  row.note = note;
  return format_row(row);
}

Candidate evaluate(const model::ModelConfig& m, const sim::Cluster& cluster,
                   Algo algo, int D, int P, int W, int B, int mb_sequences,
                   const Calibration* cal) {
  Candidate c;
  c.algo = algo;
  c.D = D;
  c.P = P;
  c.W = W;
  c.B = B;
  c.mb_sequences = mb_sequences;

  if (algo == Algo::Chimera && (P % 2 != 0 || B < 2)) {
    c.feasible = false;
    c.note = "Chimera needs even P and B >= 2";
    return c;
  }

  schedule::ScheduleRequest req;
  req.algo = algo;
  req.P = P;
  req.B = B;
  req.waves = W;
  req.vchunks = W;
  if (cal && cal->bwd_fwd_ratio > 0) req.tb = req.tf * cal->bwd_fwd_ratio;
  const int S = schedule::stages_for(req);
  const int total_layers = static_cast<int>(m.layer_descs().size());
  if (S > total_layers) {
    c.feasible = false;
    c.note = "stages (" + std::to_string(S) + ") exceed layers (" +
             std::to_string(total_layers) + ")";
    return c;
  }
  const schedule::Schedule sched = schedule::make_schedule(req);
  const sim::PipelineCosts costs = sim::compute_costs(
      m, S, mb_sequences, cluster, /*recompute=*/false,
      cal && cal->bwd_fwd_ratio > 0 ? cal->bwd_fwd_ratio : sim::kBwdFwdRatio);
  sim::SimOptions opt;
  opt.dp = D;
  // Chimera's second weight copy is part of the algorithm (not DP), so the
  // replica pair shares the pipeline's devices; everything else uses one
  // block of P devices per replica.
  opt.devmap = sim::DeviceMap{P, 0};
  const sim::SimResult res = sim::simulate(sched, costs, cluster, opt);

  c.throughput_seq_s = res.throughput_seq_per_s(B * mb_sequences) * D;
  c.bubble_ratio = res.bubble_ratio;
  double peak = 0.0;
  for (double x : res.peak_mem_bytes) peak = std::max(peak, x);
  c.peak_mem_gb = peak / 1e9;
  c.oom = res.oom;
  return c;
}

std::vector<Candidate> plan(const PlanRequest& req) {
  std::vector<Candidate> out;
  const int N = req.total_devices;
  for (int P = req.min_pipeline; P <= N; ++P) {
    if (N % P != 0) continue;
    const int D = N / P;
    // Micro-batches per pipeline: split the global batch so each replica
    // gets an equal share; each micro-batch is 1 sequence unless the batch
    // doesn't divide, in which case larger micro-batches are tried.
    const int per_replica = req.batch_sequences / D;
    if (per_replica < 1) continue;
    for (int mb_seq = 1; mb_seq <= per_replica; mb_seq *= 2) {
      if (per_replica % mb_seq != 0) continue;
      const int B = per_replica / mb_seq;
      if (B < 1) continue;
      const Calibration* cal =
          req.calibration ? &*req.calibration : nullptr;
      for (Algo algo : req.algos) {
        if (algo == Algo::Hanayo || algo == Algo::Interleaved) {
          for (int W : req.wave_options) {
            out.push_back(
                evaluate(req.model, req.cluster, algo, D, P, W, B, mb_seq, cal));
          }
        } else {
          out.push_back(
              evaluate(req.model, req.cluster, algo, D, P, 1, B, mb_seq, cal));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    const bool ga = a.feasible && !a.oom, gb = b.feasible && !b.oom;
    if (ga != gb) return ga;
    return a.throughput_seq_s > b.throughput_seq_s;
  });
  return out;
}

std::optional<Candidate> best(const std::vector<Candidate>& cands) {
  for (const Candidate& c : cands) {
    if (c.feasible && !c.oom) return c;
  }
  return std::nullopt;
}

}  // namespace hanayo::perf
