#include "perf/planner.hpp"

#include <algorithm>

#include "perf/engine.hpp"
#include "perf/format.hpp"

namespace hanayo::perf {

using schedule::Algo;

std::string Candidate::to_string() const {
  PerfRow row;
  row.algo = algo;
  row.D = D;
  row.P = P;
  row.W = W;
  row.B = B;
  row.mb_sequences = mb_sequences;
  row.throughput_seq_s = throughput_seq_s;
  row.bubble_ratio = bubble_ratio;
  row.peak_mem_gb = peak_mem_gb;
  row.oom = oom;
  row.feasible = feasible;
  row.note = note;
  return format_row(row);
}

Candidate evaluate(const model::ModelConfig& m, const sim::Cluster& cluster,
                   Algo algo, int D, int P, int W, int B, int mb_sequences,
                   const Calibration* cal) {
  const Engine eng(m, cluster,
                   cal ? std::optional<Calibration>(*cal) : std::nullopt);
  return eng.evaluate_training(TrainingPoint{algo, D, P, W, B, mb_sequences});
}

std::vector<Candidate> plan(const PlanRequest& req) {
  const Engine eng(req.model, req.cluster, req.calibration);
  std::vector<Candidate> out;
  const int N = req.total_devices;
  for (int P = req.min_pipeline; P <= N; ++P) {
    if (N % P != 0) continue;
    const int D = N / P;
    // Micro-batches per pipeline: split the global batch so each replica
    // gets an equal share; each micro-batch is 1 sequence unless the batch
    // doesn't divide, in which case larger micro-batches are tried.
    const int per_replica = req.batch_sequences / D;
    if (per_replica < 1) continue;
    for (int mb_seq = 1; mb_seq <= per_replica; mb_seq *= 2) {
      if (per_replica % mb_seq != 0) continue;
      const int B = per_replica / mb_seq;
      if (B < 1) continue;
      for (Algo algo : req.algos) {
        if (algo == Algo::Hanayo || algo == Algo::Interleaved) {
          for (int W : req.wave_options) {
            out.push_back(
                eng.evaluate_training(TrainingPoint{algo, D, P, W, B, mb_seq}));
          }
        } else {
          out.push_back(
              eng.evaluate_training(TrainingPoint{algo, D, P, 1, B, mb_seq}));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    const bool ga = a.feasible && !a.oom, gb = b.feasible && !b.oom;
    if (ga != gb) return ga;
    return a.throughput_seq_s > b.throughput_seq_s;
  });
  return out;
}

std::optional<Candidate> best(const std::vector<Candidate>& cands) {
  for (const Candidate& c : cands) {
    if (c.feasible && !c.oom) return c;
  }
  return std::nullopt;
}

}  // namespace hanayo::perf
