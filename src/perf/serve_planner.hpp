#pragma once
// Decode-aware serving configuration search — the Fig. 10 planner for the
// serving workload.
//
// Training has perf::plan: enumerate (algo, D, P, W, B), cost each cell
// with the unified performance model, rank by simulated throughput. This
// module is the same search over the serving axes: given a cluster, a
// model and a latency/throughput target, enumerate
// (algo, P, W, max_batch, dp) candidates, prune the ones whose weights +
// full-context KV cannot fit device memory (sim/memory weight accounting +
// the KV-byte model behind slot_bytes()), event-simulate the mixed
// prefill/decode timeline of the survivors through perf::Engine, and hand
// back ranked ServeCandidates (per-token latency mean/p50/p99, tokens/s,
// TTFT, memory). The winning candidate's numbers agree bit-exactly with
// InferenceSession::predict() for the same configuration — both are one
// Engine code path — which is what InferenceSession::builder().auto_plan()
// relies on.

#include <optional>
#include <string>
#include <vector>

#include "perf/engine.hpp"

namespace hanayo::perf {

/// What the serving search optimises for: the nominal load shape plus
/// optional SLA bounds. Unset bounds (0) mean "rank by throughput only".
struct ServeTarget {
  int total_devices = 8;      ///< cluster devices available to dp * P
  int64_t prompt_tokens = 0;  ///< nominal prompt length; 0 = default rule
  /// Continuation cap per request. 0 = unset: auto_plan fills it from the
  /// builder's configured cap; a standalone plan_serving uses 16.
  int max_new_tokens = 0;
  /// Stop tokens shorten the modelled continuation (geometric expectation).
  /// Empty = unset for auto_plan, which back-fills the builder's set.
  std::vector<int64_t> stop_tokens;
  /// Score candidates with half-precision KV-cache storage
  /// (InferConfig::kv_fp16): halves the KV bytes the memory pruning sees.
  bool kv_fp16 = false;
  /// Score candidates with paged KV storage (InferConfig::paged_kv):
  /// > 0 rounds per-stream KV up to pages of this many tokens and caps
  /// residency at the pool (see ServingPoint::kv_page_tokens), so memory
  /// pruning admits the paged configurations the runtime actually fits.
  int kv_page_tokens = 0;
  int64_t kv_pool_pages = 0;  ///< pool size; 0 = contiguous-equivalent rule
  /// SLA bounds: 99th-percentile per-token latency ceiling and generated
  /// tokens/s floor (cluster-wide, dp-scaled). 0 disables a bound.
  double max_p99_token_latency_s = 0.0;
  double min_tokens_per_s = 0.0;
  /// Open-loop load point (perf::LoadPoint). With offered_req_s > 0 the
  /// search ranks by goodput under this load — overload pricing via
  /// predict_load, so saturated configurations separate instead of tying
  /// on closed-loop tokens/s — and a candidate that sheds load at the
  /// offered rate is marked as missing the target.
  double offered_req_s = 0.0;
  double deadline_s = 0.0;  ///< per-request SLA the load model prices
  int queue_cap = 0;        ///< bounded admission queue; 0 = unbounded
  /// Search space. Chimera/PipeDream have no forward-only program and are
  /// rejected as infeasible rows if listed.
  std::vector<schedule::Algo> algos = {schedule::Algo::GPipe,
                                       schedule::Algo::Dapple,
                                       schedule::Algo::Hanayo};
  std::vector<int> wave_options = {1, 2, 4};
  std::vector<int> batch_options = {1, 2, 4, 8};
  int min_pipeline = 1;  ///< P = 1 is a valid serving pipeline (no stages)
  /// Measured kernel/transport numbers: applied to schedule ordering and
  /// simulated costs, exactly as in training plans and predict().
  std::optional<Calibration> calibration;
  /// Fitted serving-side coefficients (forward-only rate scales, per-pass
  /// orchestration overhead, CPU oversubscription) — see
  /// perf::ServingCalibration. Unset, or set to the identity calibration,
  /// leaves every row bit-identical to the uncalibrated search. Unlike the
  /// base calibration, its oversubscription term depends on dp, so each dp
  /// row of a point gets its own calibrated pass walls.
  std::optional<ServingCalibration> serving_calibration;
};

/// One scored cell of the (algo, P, W, max_batch, dp) search.
struct ServeCandidate {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int dp = 1;         ///< pipeline replicas (dp * P devices used)
  int P = 1;          ///< pipeline depth
  int W = 1;          ///< waves (Hanayo) / chunks (Interleaved)
  int max_batch = 1;  ///< concurrent decode streams per replica
  bool feasible = true;
  bool oom = false;          ///< weights + full-context KV exceed a device
  bool meets_target = true;  ///< SLA bounds satisfied (when set)
  std::string note;
  int expected_new_tokens = 0;  ///< modelled continuation length
  /// Mean decode-pass latency — bit-exact equal to
  /// InferenceSession::predict().per_token_latency_s() for this config.
  double token_latency_s = 0.0;
  double p50_token_latency_s = 0.0;
  double p99_token_latency_s = 0.0;
  double ttft_s = 0.0;  ///< full-batch prefill makespan (time to first token)
  /// Cluster-wide generated tokens/s (dp replicas decode concurrently) —
  /// bit-exact equal to predict().tokens_per_s().
  double tokens_per_s = 0.0;
  double prefill_tokens_per_s = 0.0;
  double peak_mem_gb = 0.0;  ///< most loaded device: weights + KV
  double kv_gb = 0.0;        ///< full-context KV across one replica
  /// Load-model columns (predict_load at the target's offered rate);
  /// all zero when the target sets no offered_req_s.
  double capacity_req_s = 0.0;
  double goodput_req_s = 0.0;
  double rejected_rate = 0.0;
  double timeout_rate = 0.0;
  /// Overload fraction that neither serves nor sheds (unbounded queue
  /// growth) — see LoadPrediction::backlogged_rate.
  double backlogged_rate = 0.0;
  /// Distributional TTFT under the offered load (queueing wait quantile +
  /// prefill pass wall); zero without an offered rate.
  double p50_ttft_s = 0.0;
  double p99_ttft_s = 0.0;

  /// One table row via the shared perf/format serve layout.
  std::string to_string() const;
};

/// Full search: every (algo, P, W, max_batch, dp) with dp * P <=
/// target.total_devices. OOM candidates are pruned before simulation
/// (marked, kept in the list so the table shows why); infeasible
/// algorithm/stage combinations are marked the same way. Sorted best
/// first: target-meeting usable rows, then usable rows, then the rest, by
/// tokens/s (ties: lower p99, then fewer devices).
std::vector<ServeCandidate> plan_serving(const sim::Cluster& cluster,
                                         const model::ModelConfig& model,
                                         const ServeTarget& target);

/// The candidate auto_plan adopts: the first usable row that meets the
/// target, else the first usable row, else nullopt.
std::optional<ServeCandidate> best_serving(
    const std::vector<ServeCandidate>& cands);

}  // namespace hanayo::perf
