#include "perf/analytic.hpp"

#include <algorithm>

namespace hanayo::perf {

namespace {
double ratio(double bubble, double compute) {
  return bubble / (compute + bubble);
}
}  // namespace

double bubble_ratio_gpipe(const AnalyticParams& p) {
  const double bubble = (p.P - 1) * (p.tf + p.tb + 2.0 * p.tc);
  return ratio(bubble, p.B * (p.tf + p.tb));
}

double bubble_ratio_dapple(const AnalyticParams& p) {
  // Same fill/drain bubble as GPipe; 1F1B changes memory, not idle time.
  return bubble_ratio_gpipe(p);
}

double bubble_ratio_gems(const AnalyticParams& p) {
  const double bubble = (p.P - 1) * (p.tf + p.tb + 2.0 * p.tc) +
                        (p.B / 2.0 - 1.0) * p.tb;
  return ratio(bubble, p.B * (p.tf + p.tb));
}

double bubble_ratio_chimera(const AnalyticParams& p) {
  const double bubble = (p.P / 2.0 - 1.0) * (p.tf + p.tb + 2.0 * p.tc);
  return ratio(bubble, p.B * (p.tf + p.tb));
}

double bubble_ratio_interleaved(const AnalyticParams& p, int V) {
  const double bubble = (p.P - 1) * (p.tf + p.tb) / std::max(1, V) +
                        (p.P - 1) * 2.0 * p.tc;
  return ratio(bubble, p.B * (p.tf + p.tb));
}

double bubble_ratio_hanayo(const AnalyticParams& p) {
  const double P = p.P, W = std::max(1, p.W);
  const double num = (1.0 / W) * p.tb +
                     (1.0 + 2.0 * W + 2.0 / P + (P - 2.0) / 3.0) * p.tc;
  const double den = (P / (P - 1.0)) * p.tf +
                     (1.0 / (2.0 * W) + P / (P - 1.0)) * p.tb +
                     ((P - 2.0) / 2.0 + 4.0 * W) * p.tc;
  return num / den;
}

double bubble_ratio_hanayo_simplified(int P, int W) {
  return (2.0 * P - 2.0) / (3.0 * P * W + P - 1.0);
}

double weight_factor_gpipe() { return 1.0; }
double weight_factor_dapple() { return 1.0; }
double weight_factor_chimera() { return 2.0; }
double weight_factor_hanayo() { return 1.0; }

double act_units_gpipe(int B) {
  // Every micro-batch's activation is alive simultaneously on each device.
  return B;
}

double act_units_dapple(int P, int B) {
  // Device 0 warms up with min(P, B) in-flight activations.
  return std::min(P, B);
}

double act_units_hanayo(int P, int W, int B) {
  // Device 0 holds the first chunk's warmup (up to ~P micro-batches) plus
  // one activation for each of its later chunks, each 1/(2W) the size of a
  // DAPPLE stage activation.
  const double cap = std::min(P, B);
  return (cap + (2.0 * W - 1.0)) / (2.0 * W);
}

}  // namespace hanayo::perf
