#include "perf/hybrid.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "perf/engine.hpp"

namespace hanayo::perf {

using schedule::Algo;

std::string HybridCandidate::to_string() const {
  std::ostringstream os;
  os << "T=" << T << " " << pipe.to_string();
  if (usable() && tp_comm_s > 0.0) {
    os << ", tp-comm " << tp_comm_s << " s/mb";
  }
  return os.str();
}

double tp_allreduce_seconds(double bytes, int T, double bw, double lat) {
  if (T <= 1) return 0.0;
  // Ring allreduce: 2(T−1)/T of the payload crosses each link, plus one
  // latency per step (2(T−1) steps).
  return 2.0 * (T - 1) / static_cast<double>(T) * bytes / bw +
         2.0 * (T - 1) * lat;
}

namespace {

/// The cluster's best link (TP groups are mapped onto the fastest
/// interconnect, as Megatron does with NVLink inside a node).
std::pair<double, double> best_link(const sim::Cluster& cluster) {
  double bw = 0.0, lat = 1.0;
  for (int i = 0; i < cluster.devices; ++i) {
    for (int j = 0; j < cluster.devices; ++j) {
      if (i == j) continue;
      if (cluster.bandwidth(i, j) > bw) {
        bw = cluster.bandwidth(i, j);
        lat = cluster.lat(i, j);
      }
    }
  }
  return {bw, lat};
}

}  // namespace

HybridCandidate evaluate_hybrid(const model::ModelConfig& m,
                                const sim::Cluster& cluster, Algo algo, int T,
                                int D, int P, int W, int B, int mb_sequences) {
  if (T < 1) throw std::invalid_argument("evaluate_hybrid: T >= 1");
  HybridCandidate hc;
  hc.T = T;
  const Engine eng(m, cluster);
  const TrainingPoint pt{algo, D, P, W, B, mb_sequences};
  if (T == 1) {
    hc.pipe = eng.evaluate_training(pt);
    return hc;
  }

  // The tensor-parallel overlay is a pure cost transform: shard compute /
  // weights / resident activations by T (boundary traffic is unchanged —
  // the full hidden activation crosses stage boundaries), then tax the
  // stages with the TP collectives: 2 allreduces per block per forward
  // (and per backward) of one [mb, seq, hidden] fp16 activation,
  // distributed proportionally to each stage's compute share. The engine
  // owns everything else (feasibility, schedule, simulator).
  const auto [bw, lat] = best_link(cluster);
  const double act_bytes =
      static_cast<double>(mb_sequences) * m.seq * m.hidden * 2.0;
  const double per_block = 2.0 * tp_allreduce_seconds(act_bytes, T, bw, lat);
  const double total_fwd_tp = per_block * static_cast<double>(m.layers);
  hc.pipe = eng.evaluate_training(pt, [&](sim::PipelineCosts& costs) {
    for (double& v : costs.fwd_s) v /= T;
    for (double& v : costs.bwd_s) v /= T;
    for (double& v : costs.weight_bytes) v /= T;
    for (double& v : costs.act_bytes) v /= T;
    const double fwd_total = costs.total_fwd();
    hc.tp_comm_s = 2.0 * total_fwd_tp;  // forward + backward
    if (fwd_total > 0.0) {
      for (size_t s = 0; s < costs.fwd_s.size(); ++s) {
        const double share = costs.fwd_s[s] / fwd_total;
        costs.fwd_s[s] += total_fwd_tp * share;
        costs.bwd_s[s] += total_fwd_tp * share;
      }
    }
  });
  return hc;
}

std::vector<HybridCandidate> plan_hybrid(const HybridRequest& req) {
  std::vector<HybridCandidate> out;
  const int N = req.total_devices;
  for (const int T : req.tp_options) {
    if (T < 1 || N % T != 0) continue;
    const int rest = N / T;
    for (int P = req.min_pipeline; P <= rest; ++P) {
      if (rest % P != 0) continue;
      const int D = rest / P;
      const int per_replica = req.batch_sequences / D;
      if (per_replica < 1) continue;
      for (int mb_seq = 1; mb_seq <= per_replica; mb_seq *= 2) {
        if (per_replica % mb_seq != 0) continue;
        const int B = per_replica / mb_seq;
        for (Algo algo : req.algos) {
          if (algo == Algo::Hanayo || algo == Algo::Interleaved) {
            for (int W : req.wave_options) {
              out.push_back(evaluate_hybrid(req.model, req.cluster, algo, T,
                                            D, P, W, B, mb_seq));
            }
          } else {
            out.push_back(evaluate_hybrid(req.model, req.cluster, algo, T, D,
                                          P, 1, B, mb_seq));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HybridCandidate& a, const HybridCandidate& b) {
              if (a.usable() != b.usable()) return a.usable();
              return a.pipe.throughput_seq_s > b.pipe.throughput_seq_s;
            });
  return out;
}

std::optional<HybridCandidate> best_hybrid(
    const std::vector<HybridCandidate>& cands) {
  for (const HybridCandidate& c : cands) {
    if (c.usable()) return c;
  }
  return std::nullopt;
}

}  // namespace hanayo::perf
