#include "perf/serve_planner.hpp"

#include <algorithm>

#include "perf/format.hpp"

namespace hanayo::perf {

using schedule::Algo;

std::string ServeCandidate::to_string() const {
  ServeRow row;
  row.algo = algo;
  row.dp = dp;
  row.P = P;
  row.W = W;
  row.max_batch = max_batch;
  row.tokens_per_s = tokens_per_s;
  row.token_latency_ms = token_latency_s * 1e3;
  row.p50_ms = p50_token_latency_s * 1e3;
  row.p99_ms = p99_token_latency_s * 1e3;
  row.ttft_ms = ttft_s * 1e3;
  row.peak_mem_gb = peak_mem_gb;
  row.oom = oom;
  row.feasible = feasible;
  row.meets_target = meets_target;
  row.note = note;
  return format_serve_row(row);
}

namespace {

/// Derives the dp-replicated candidate from one replica's prediction: the
/// same merge_stats replication as predict_serving, then the same shared
/// runtime::serve_* arithmetic ServeReport's accessors delegate to — so
/// every row's latency and throughput are structurally bit-exact against
/// InferenceSession::predict(), not mirrored by parallel code.
ServeCandidate candidate_from(const ServePrediction& pred,
                              const ServeTarget& t, Algo algo, int dp, int P,
                              int W, int batch) {
  ServeCandidate c;
  c.algo = algo;
  c.dp = dp;
  c.P = P;
  c.W = W;
  c.max_batch = batch;
  c.expected_new_tokens = pred.steps;
  c.peak_mem_gb = pred.peak_mem_gb;
  c.kv_gb = pred.kv_gb;
  if (!pred.feasible) {
    c.feasible = false;
    c.meets_target = false;
    c.note = pred.note;
    return c;
  }
  if (pred.oom) {
    c.oom = true;
    c.meets_target = false;
    c.note = "weights + full-context KV exceed device memory";
    return c;
  }
  const std::vector<runtime::ServeStats> reps(static_cast<size_t>(dp),
                                              pred.per_replica);
  const runtime::ServeStats tot = runtime::merge_stats(reps);
  c.token_latency_s = runtime::serve_per_token_latency_s(tot);
  c.p50_token_latency_s = pred.p50_token_latency_s;
  c.p99_token_latency_s = pred.p99_token_latency_s;
  c.ttft_s = pred.per_replica.prefill_s;
  c.tokens_per_s = runtime::serve_tokens_per_s(tot, reps, dp);
  c.prefill_tokens_per_s = runtime::serve_prefill_tokens_per_s(tot, reps, dp);

  if (t.max_p99_token_latency_s > 0.0 &&
      c.p99_token_latency_s > t.max_p99_token_latency_s) {
    c.meets_target = false;
    c.note = "p99 over target";
  }
  if (t.min_tokens_per_s > 0.0 && c.tokens_per_s < t.min_tokens_per_s) {
    c.meets_target = false;
    c.note = c.note.empty() ? "tokens/s under target"
                            : c.note + "; tokens/s under target";
  }
  if (t.offered_req_s > 0.0) {
    LoadPoint load;
    load.offered_req_s = t.offered_req_s;
    load.deadline_s = t.deadline_s;
    load.queue_cap = t.queue_cap;
    const LoadPrediction lp = predict_load(pred, dp, load);
    c.capacity_req_s = lp.capacity_req_s;
    c.goodput_req_s = lp.goodput_req_s;
    c.rejected_rate = lp.rejected_rate;
    c.timeout_rate = lp.timeout_rate;
    c.backlogged_rate = lp.backlogged_rate;
    c.p50_ttft_s = lp.p50_ttft_s;
    c.p99_ttft_s = lp.p99_ttft_s;
    if (lp.rejected_rate + lp.timeout_rate + lp.backlogged_rate > 1e-9) {
      c.meets_target = false;
      c.note = c.note.empty() ? "sheds load at offered rate"
                              : c.note + "; sheds load at offered rate";
    }
  }
  return c;
}

int sort_group(const ServeCandidate& c) {
  const bool usable = c.feasible && !c.oom;
  if (usable && c.meets_target) return 0;
  if (usable) return 1;
  return 2;
}

}  // namespace

std::vector<ServeCandidate> plan_serving(const sim::Cluster& cluster,
                                         const model::ModelConfig& model,
                                         const ServeTarget& raw) {
  ServeTarget target = raw;
  if (target.max_new_tokens <= 0) target.max_new_tokens = 16;
  const Engine eng(model, cluster, target.calibration,
                   target.serving_calibration);
  std::vector<ServeCandidate> out;
  // dp * P <= N: serving replication is a free knob, not a factorisation —
  // a latency target may be met while leaving devices idle, and throughput
  // ranking naturally prefers the full-cluster rows. Replicas are
  // independent, so each (algo, P, W, batch) point is engine-evaluated
  // once (memory pruning first — an over-memory cell never reaches the
  // event simulator) and every dp candidate derives from that prediction.
  const int N = std::min(target.total_devices, cluster.devices);
  const auto eval_point = [&](Algo algo, int P, int W, int batch,
                              int max_dp) {
    ServingPoint pt;
    pt.algo = algo;
    pt.P = P;
    pt.W = W;
    pt.max_batch = batch;
    pt.prompt_tokens = target.prompt_tokens;
    pt.max_new_tokens = target.max_new_tokens;
    pt.stop_tokens = target.stop_tokens;
    pt.kv_fp16 = target.kv_fp16;
    pt.kv_page_tokens = target.kv_page_tokens;
    pt.kv_pool_pages = target.kv_pool_pages;
    const ServePrediction pred =
        eng.evaluate_serving(pt, /*quantiles=*/true, /*skip_sim_if_oom=*/true);
    for (int dp = 1; dp <= max_dp; ++dp) {
      // The oversubscription bound scales with dp (more workers contending
      // for the same host cores), so the calibration is applied per dp row
      // — a cheap post-transform of the one simulated prediction.
      out.push_back(candidate_from(eng.calibrated_serving(pred, dp), target,
                                   algo, dp, P, W, batch));
    }
  };
  for (int P = std::max(1, target.min_pipeline); P <= N; ++P) {
    const int max_dp = N / P;
    if (max_dp < 1) continue;
    for (int batch : target.batch_options) {
      if (batch < 1) continue;
      for (Algo algo : target.algos) {
        if (algo == Algo::Hanayo || algo == Algo::Interleaved) {
          for (int W : target.wave_options) {
            eval_point(algo, P, W, batch, max_dp);
          }
        } else {
          eval_point(algo, P, 1, batch, max_dp);
        }
      }
    }
  }
  // Under an offered load, goodput is the primary key: a saturated
  // configuration caps at its capacity while an adequate one carries the
  // full offered rate, so rows that tie on closed-loop tokens/s separate.
  const bool under_load = target.offered_req_s > 0.0;
  std::stable_sort(out.begin(), out.end(),
                   [under_load](const ServeCandidate& a,
                                const ServeCandidate& b) {
                     const int ga = sort_group(a), gb = sort_group(b);
                     if (ga != gb) return ga < gb;
                     if (under_load) {
                       if (a.goodput_req_s != b.goodput_req_s) {
                         return a.goodput_req_s > b.goodput_req_s;
                       }
                       const double la =
                           a.rejected_rate + a.timeout_rate + a.backlogged_rate;
                       const double lb =
                           b.rejected_rate + b.timeout_rate + b.backlogged_rate;
                       if (la != lb) return la < lb;
                     }
                     if (a.tokens_per_s != b.tokens_per_s) {
                       return a.tokens_per_s > b.tokens_per_s;
                     }
                     if (a.p99_token_latency_s != b.p99_token_latency_s) {
                       return a.p99_token_latency_s < b.p99_token_latency_s;
                     }
                     return a.dp * a.P < b.dp * b.P;  // fewer devices win ties
                   });
  return out;
}

std::optional<ServeCandidate> best_serving(
    const std::vector<ServeCandidate>& cands) {
  for (const ServeCandidate& c : cands) {
    if (c.feasible && !c.oom && c.meets_target) return c;
  }
  for (const ServeCandidate& c : cands) {
    if (c.feasible && !c.oom) return c;
  }
  return std::nullopt;
}

}  // namespace hanayo::perf
