#pragma once
// Bubble-zone decomposition (paper §3.4, Fig. 7).
//
// The paper distinguishes four kinds of idle time in a wave-like pipeline:
//   Zone A — waiting for the forward activation of a peer during ramp-up
//            (single bubble ≈ T_F/2W + T_C);
//   Zone B — the forward/backward cost discrepancy at the turnaround
//            (≈ (P−LR)/2W · (T_B − T_F) + 2T_C);
//   Zone C — waiting on the backward chain during drain (≈ T_B + 2T_C);
//   Zone D — stalls from batched cross-communication at wave turns.
//
// This module classifies every idle interval of a simulated timeline into
// those zones by the computation that ends the wait:
//   * the device has not computed yet, or resumes with a Forward having
//     only run Forwards so far                      -> A (ramp-up wait)
//   * resumes with a Backward after a Forward       -> B (turnaround)
//   * resumes with a Backward after a Backward      -> C (backward chain)
//   * resumes with a Forward after a Backward       -> D (steady-state
//     stall: the forward's activation was delayed by cross-communication)
//   * trailing idle until the flush                 -> C (drain)
//
// The decomposition is exact: the four zones partition a device's idle time,
// and summed over devices they equal P·makespan − Σ busy.

#include <array>
#include <string>
#include <vector>

#include "sim/event_sim.hpp"

namespace hanayo::perf {

enum class Zone : int { A = 0, B = 1, C = 2, D = 3 };

std::string zone_name(Zone z);

/// One classified idle interval on one device.
struct IdleSpan {
  int device = 0;
  Zone zone = Zone::A;
  double start = 0.0;
  double end = 0.0;
  double length() const { return end - start; }
};

struct ZoneBreakdown {
  /// Total idle seconds per zone, summed over all devices.
  std::array<double, 4> total{};
  /// Per-device per-zone idle seconds: [device][zone].
  std::vector<std::array<double, 4>> per_device;
  /// Every classified interval (for the gallery renderer / debugging).
  std::vector<IdleSpan> spans;

  double total_idle() const {
    return total[0] + total[1] + total[2] + total[3];
  }
  double zone(Zone z) const { return total[static_cast<size_t>(z)]; }
};

/// Decomposes the idle time of a simulated schedule. `result` must have been
/// produced with SimOptions::record_timeline = true; throws otherwise.
ZoneBreakdown decompose_bubbles(const sim::SimResult& result, int devices);

}  // namespace hanayo::perf
