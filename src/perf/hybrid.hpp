#pragma once
// Hybrid tensor x data x pipeline parallelism planning.
//
// The paper's related work (§6): "Megatron-LM combines tensor parallelism
// and pipeline parallelism for large model training, utilizing tensor
// parallelism within nodes and pipeline parallelism between nodes." This
// module adds the tensor-parallel (TP) axis to the §5.3 configuration
// search as an analytic overlay on the pipeline simulator:
//
//  * compute, weights and resident activations per device divide by T
//    (Megatron shards attention heads and the MLP inner dimension);
//  * every transformer block pays 2 activation-sized allreduces across the
//    TP group per forward and 2 per backward (ring time over the cluster's
//    fastest links — TP is always mapped to the best interconnect);
//  * stage-boundary P2P volumes are unchanged (the [b, t, h] activation is
//    replicated across the TP group at layer boundaries).
//
// A configuration uses T * D * P devices. TP trades compute for collective
// communication, so it wins exactly where the paper says it does: on fast
// intra-node links, and when the pipeline axis is exhausted (more stages
// than layers).

#include "perf/planner.hpp"

namespace hanayo::perf {

struct HybridCandidate {
  Candidate pipe;          ///< the pipeline-level evaluation (per TP shard)
  int T = 1;               ///< tensor-parallel degree
  double tp_comm_s = 0.0;  ///< TP allreduce seconds added per micro-batch
                           ///< forward+backward of the whole model

  bool usable() const { return pipe.feasible && !pipe.oom; }
  std::string to_string() const;
};

struct HybridRequest {
  model::ModelConfig model;
  sim::Cluster cluster;
  int total_devices = 8;
  int batch_sequences = 8;
  std::vector<int> tp_options = {1, 2, 4, 8};
  std::vector<schedule::Algo> algos = {
      schedule::Algo::GPipe, schedule::Algo::Dapple, schedule::Algo::Chimera,
      schedule::Algo::ChimeraWave, schedule::Algo::Hanayo};
  std::vector<int> wave_options = {1, 2, 4};
  int min_pipeline = 2;
};

/// Evaluates one fully specified (T, D, P, W, B, mb) configuration.
HybridCandidate evaluate_hybrid(const model::ModelConfig& m,
                                const sim::Cluster& cluster,
                                schedule::Algo algo, int T, int D, int P,
                                int W, int B, int mb_sequences);

/// Enumerates every feasible (T, D, P, W, B) splitting of the request,
/// sorted by throughput with usable configurations first.
std::vector<HybridCandidate> plan_hybrid(const HybridRequest& req);

/// First usable candidate, if any.
std::optional<HybridCandidate> best_hybrid(
    const std::vector<HybridCandidate>& cands);

/// Ring-allreduce seconds for `bytes` across `T` members over a link of
/// `bw` bytes/s and `lat` s latency (exposed for tests).
double tp_allreduce_seconds(double bytes, int T, double bw, double lat);

}  // namespace hanayo::perf
