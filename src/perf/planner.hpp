#pragma once
// Parallelism-configuration search (paper §5.3 / Fig. 10).
//
// Given N devices, a model and a cluster, the planner enumerates
// (D, P) factorisations, micro-batch counts and — for Hanayo — wave counts,
// validates and simulates each candidate, filters OOM configurations, and
// ranks by simulated throughput. This is the "unified performance model
// with adaptability to choose from various pipeline parallelism strategies"
// of the paper's related-work positioning.

#include <optional>
#include <string>
#include <vector>

#include "model/transformer.hpp"
#include "perf/calibrate.hpp"
#include "schedule/algorithms.hpp"
#include "sim/event_sim.hpp"

namespace hanayo::perf {

struct Candidate {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int D = 1;          ///< data-parallel replicas
  int P = 1;          ///< pipeline depth
  int W = 1;          ///< waves (Hanayo) / V (Interleaved)
  int B = 1;          ///< micro-batches per pipeline per iteration
  int mb_sequences = 1;
  double throughput_seq_s = 0.0;  ///< simulated, all replicas combined
  double bubble_ratio = 0.0;
  double peak_mem_gb = 0.0;
  bool oom = false;
  bool feasible = true;           ///< partition/stage constraints satisfied
  std::string note;

  std::string to_string() const;
};

struct PlanRequest {
  model::ModelConfig model;
  sim::Cluster cluster;          ///< must have >= N devices
  int total_devices = 8;         ///< N
  int batch_sequences = 8;       ///< global batch per iteration (sequences)
  std::vector<schedule::Algo> algos = {
      schedule::Algo::GPipe, schedule::Algo::Dapple, schedule::Algo::Chimera,
      schedule::Algo::ChimeraWave, schedule::Algo::Hanayo};
  std::vector<int> wave_options = {1, 2, 4, 8};
  int min_pipeline = 2;
  /// When set, every candidate is costed with this machine's measured
  /// kernel numbers: the schedule's ordering costs use the measured tb/tf
  /// ratio and the backward stage costs scale by it, instead of the paper's
  /// drawn T_B = 2 T_F (the cluster should then come from
  /// perf::calibrated_cluster so the time axis matches too).
  std::optional<Calibration> calibration;
};

/// Evaluates one fully specified candidate (also used by the benches). With
/// `cal`, the measured backward/forward ratio replaces the drawn tb = 2 tf
/// in both the schedule ordering and the simulated backward costs.
Candidate evaluate(const model::ModelConfig& m, const sim::Cluster& cluster,
                   schedule::Algo algo, int D, int P, int W, int B,
                   int mb_sequences, const Calibration* cal = nullptr);

/// Full search; results sorted by throughput, best first. OOM/infeasible
/// candidates are included (marked) so Fig. 10's "OOM" cells can be printed.
std::vector<Candidate> plan(const PlanRequest& req);

/// Best non-OOM candidate, if any.
std::optional<Candidate> best(const std::vector<Candidate>& cands);

}  // namespace hanayo::perf
