#pragma once
// Closed-form performance model (paper §3.4, Fig. 1, Fig. 2).
//
// Symbols follow the paper's Table 1: P workers, B micro-batches, W waves,
// T_F / T_B the per-worker forward/backward time of one micro-batch
// (a complete pass divided by P), T_C one P2P transfer.
//
// Bubble-time formulas (per device, one iteration):
//   GPipe / DAPPLE : (P-1)(T_F + T_B)           [classic fill/drain]
//   GEMS           : (P-1)(T_F + T_B) + (B/2-1) T_B
//                    (two active micro-batches; the replica pair hides the
//                    second forward but not the backwards — modelled after
//                    the characterisation in the Chimera paper; only used
//                    for Fig. 1)
//   Chimera (2 rep): (P/2-1)(T_F + T_B)          [bidirectional halves it]
//   Hanayo (W)     : paper Eq. (1), which with T_C = 0 and T_B = 2 T_F
//                    simplifies to (2P-2)/(3PW + P - 1).
// Ratios are bubble / (compute + bubble), compute = B (T_F + T_B).

namespace hanayo::perf {

struct AnalyticParams {
  int P = 8;
  int B = 8;
  int W = 1;       ///< waves (Hanayo only)
  double tf = 1.0; ///< T_F
  double tb = 2.0; ///< T_B
  double tc = 0.0; ///< T_C
};

double bubble_ratio_gpipe(const AnalyticParams& p);
double bubble_ratio_dapple(const AnalyticParams& p);
double bubble_ratio_gems(const AnalyticParams& p);
double bubble_ratio_chimera(const AnalyticParams& p);
/// Megatron interleaved 1F1B with V chunks: fill/drain shrinks by 1/V.
double bubble_ratio_interleaved(const AnalyticParams& p, int V);
/// Paper Eq. (1), verbatim.
double bubble_ratio_hanayo(const AnalyticParams& p);
/// The simplified closed form (2P-2)/(3PW+P-1); valid for tb = 2 tf, tc = 0.
double bubble_ratio_hanayo_simplified(int P, int W);

/// Fig. 2 memory rows: weight copies per device relative to one model / P.
double weight_factor_gpipe();
double weight_factor_dapple();
double weight_factor_chimera();
double weight_factor_hanayo();

/// Peak activation count (in units of one stage's activation) on the most
/// loaded device, per Fig. 3's Ma axes.
double act_units_gpipe(int B);
double act_units_dapple(int P, int B);
double act_units_hanayo(int P, int W, int B);

}  // namespace hanayo::perf
