#pragma once
// The unified planning core.
//
// Before this module, the repository carried two parallel prediction
// stacks: perf/planner.cpp owned the training glue (schedule request →
// compute_costs → simulate → Candidate) and api/inference.cpp owned an
// independent serving copy (forward-only schedule → infer_costs →
// prefill/decode simulate → ServeReport), each with its own feasibility
// checks and calibration plumbing. `perf::Engine` is the single owner of
// that spine — cluster description, calibration, both cost models (training
// fwd+bwd and forward-only + KV-byte serving) and the event simulator —
// and `perf::evaluate`/`perf::plan`, `perf::plan_serving` and
// `api::predict_serving` are thin frontends over it. One code path is what
// makes the cross-layer equalities testable: the serving planner's winning
// candidate and InferenceSession::predict() agree bit-exactly because both
// are this class.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/transformer.hpp"
#include "perf/calibrate.hpp"
#include "perf/planner.hpp"
#include "runtime/infer.hpp"
#include "schedule/algorithms.hpp"
#include "sim/event_sim.hpp"

namespace hanayo::perf {

/// One fully specified training configuration (the Fig. 10 search cell).
struct TrainingPoint {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int D = 1;  ///< data-parallel replicas
  int P = 1;  ///< pipeline depth
  int W = 1;  ///< waves (Hanayo) / chunks (Interleaved)
  int B = 1;  ///< micro-batches per pipeline per iteration
  int mb_sequences = 1;
};

/// One fully specified serving configuration plus its nominal load — the
/// cell of the serving planner's (algo, P, W, max_batch, dp) search. The
/// engine predicts ONE pipeline replica (replicas are independent, so dp
/// replication is exact and lives in the callers).
struct ServingPoint {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int P = 1;          ///< pipeline depth
  int W = 1;          ///< waves (Hanayo) / chunks (Interleaved)
  int max_batch = 1;  ///< concurrent decode streams (KV-cache slots)
  int64_t prompt_tokens = 0;  ///< nominal prompt length; 0 = default rule
  int max_new_tokens = 16;
  /// Stop tokens shorten the modelled continuation (geometric expectation).
  std::vector<int64_t> stop_tokens;
  /// Half-precision KV-cache storage: halves the KV bytes the cost model
  /// accounts (matching InferConfig::kv_fp16's halved slot_bytes()).
  bool kv_fp16 = false;
  /// Paged KV accounting (InferConfig::paged_kv): > 0 rounds each stream's
  /// resident KV rows up to whole pages of this many tokens, and caps the
  /// per-device KV budget at the pool's share when kv_pool_pages bounds it.
  /// 0 keeps the exact contiguous-slot model.
  int kv_page_tokens = 0;
  /// Per-replica pool size in pages; 0 derives the contiguous-equivalent
  /// capacity (max_batch worst-case streams), the serving runtime's rule.
  int64_t kv_pool_pages = 0;
  /// Relative stage costs for scheduling-order decisions (overridden by the
  /// engine's calibration when present, exactly like effective_sched()).
  double tf = 1.0;
  double tb = 2.0;
};

/// Raw event-sim numbers for one simulated pipeline pass: the makespan the
/// uncalibrated model reports, plus the summed per-rank busy seconds the
/// serving calibration's oversubscription bound needs (on a host with
/// fewer cores than dp * P workers, the pass cannot finish faster than its
/// serial compute divided by the cores). Kept on the prediction so
/// Engine::calibrated_serving can re-price a point for any dp without
/// re-simulating — the serving planner evaluates each (algo, P, W, batch)
/// cell once and derives every dp candidate from it.
struct PassSim {
  double makespan_s = 0.0;
  double busy_s = 0.0;
  /// Pipeline worker threads per replica (= P); prices the calibration's
  /// per-worker orchestration term.
  int workers = 0;
};

/// The engine's forward-only timeline prediction for one pipeline replica.
/// `per_replica` follows the runtime::ServeStats conventions (one full
/// batch of prompts served to completion), so api::predict_serving and
/// perf::plan_serving both read the same numbers the same way.
struct ServePrediction {
  bool feasible = true;  ///< stage/algorithm/causality constraints satisfied
  std::string note;      ///< infeasibility diagnosis
  int steps = 0;         ///< expected generated tokens per sequence
  int64_t prompt_tokens = 0;  ///< resolved nominal prompt length
  runtime::ServeStats per_replica;  ///< nominal one-replica load + timings
  /// Decode-pass latency quantiles (seconds). Per-pass latency grows
  /// monotonically with the KV context, so the p-th latency quantile is the
  /// pass at the p-th context depth — simulated exactly, not sampled.
  /// Filled when evaluate_serving is called with quantiles on.
  double p50_token_latency_s = 0.0;
  double p99_token_latency_s = 0.0;
  /// Raw per-pass simulations (rate-scaled when the engine carries a
  /// serving calibration, but before the dp-dependent oversubscription
  /// bound and the per-pass overhead): one full-batch prefill, the
  /// mean-context decode pass, and the quantile-context decode passes
  /// (zero unless quantiles were requested). Engine::calibrated_serving
  /// re-prices these for a concrete dp.
  PassSim prefill_sim;
  PassSim decode_sim;
  PassSim p50_sim;
  PassSim p99_sim;
  /// One prefill pass priced with NO concurrent replica (dp = 1): the
  /// light-traffic floor of the TTFT service component. predict_load
  /// interpolates between this and the full-batch, all-replicas-colliding
  /// wall (per_replica.prefill_s / prefill_passes) as utilization rises.
  double prefill_pass_solo_s = 0.0;
  /// Per-device memory model: resident weights (state factor 1 — serving
  /// holds no grads/optimizer) and the most loaded device's weights + all
  /// max_batch slots' full-context KV. `oom` when the latter exceeds the
  /// cluster's per-device capacity — the serving planner's pruning signal.
  double weight_mem_gb = 0.0;
  double peak_mem_gb = 0.0;
  double kv_gb = 0.0;  ///< full-context KV across the replica's devices
  bool oom = false;
};

/// An open-loop load point: what arrives, how patient it is, how much may
/// wait. Evaluated against a ServePrediction by predict_load.
struct LoadPoint {
  double offered_req_s = 0.0;  ///< open-loop arrival rate (requests/s)
  double deadline_s = 0.0;     ///< per-request SLA from enqueue; 0 = none
  int queue_cap = 0;           ///< bounded admission queue; 0 = unbounded
};

/// Fluid (M/D/1-flavoured) overload model with a distributional tail.
/// Service is batch-amortised from the prediction's busy seconds: one
/// replica turns a full batch around in prefill_s + decode_s, so its rate
/// is requests / that, and capacity is dp times it. Sub-critical load
/// queues with the M/D/1 mean-wait shape, and the wait *distribution* is
/// approximated with the classic exponential tail (wait exceeded with
/// probability rho * exp(-t / W_cond)), floored by the batch-admission
/// granularity — a request that arrives mid-generation waits for slots to
/// free at a batch-turnaround cadence, not a pass cadence. That gives
/// predicted p50/p99 TTFT quantiles bench/traffic can check row-by-row
/// against its measured quantile columns. Super-critical load sheds its
/// excess — to Rejected when the queue is bounded, to DeadlineExceeded
/// when a deadline exists, or (with neither backstop) into the unbounded
/// backlog reported as backlogged_rate, so the outcome identity
///   offered == goodput + (rejected + timed-out + backlogged) * offered
/// holds on every branch. Still deliberately coarse: it exists so the
/// planner can *rank* configurations under load, not to replace
/// measurement.
struct LoadPrediction {
  double capacity_req_s = 0.0;  ///< dp * max_batch / batch turnaround
  double utilization = 0.0;     ///< offered / capacity (rho)
  double goodput_req_s = 0.0;   ///< offered minus shed, capped at capacity
  double rejected_rate = 0.0;   ///< fraction refused by the bounded queue
  double timeout_rate = 0.0;    ///< fraction expiring against the deadline
  /// Fraction stuck in an unboundedly growing queue (super-critical load
  /// with neither a queue bound nor a deadline): they are neither served
  /// nor shed within any fixed horizon. Zero whenever a backstop exists.
  double backlogged_rate = 0.0;
  double queue_wait_s = 0.0;    ///< steady-state mean admission wait
  /// Distributional TTFT quantiles (wait quantile + one prefill pass),
  /// filled whenever an offered rate is evaluated. Served requests only —
  /// capped at the deadline when one exists.
  double p50_ttft_s = 0.0;
  double p99_ttft_s = 0.0;
};

/// Evaluates `load` against a one-replica prediction replicated over `dp`.
LoadPrediction predict_load(const ServePrediction& one_replica, int dp,
                            const LoadPoint& load);

/// Hook for cost transforms between the cost model and the simulator (the
/// tensor-parallel overlay of perf/hybrid shards and taxes the costs here).
using CostAdjust = std::function<void(sim::PipelineCosts&)>;

class Engine {
 public:
  /// The engine owns the (model, cluster, calibration) triple every
  /// prediction is made against. A valid calibration replaces the paper's
  /// drawn T_B = 2 T_F in schedule ordering and backward costs. A valid
  /// *serving* calibration additionally corrects the forward-only pass
  /// costs (measured prefill/decode rate scales inside the simulation,
  /// fitted per-pass overhead + oversubscription bound via
  /// calibrated_serving); absent, every serving prediction is bit-identical
  /// to the uncalibrated model.
  Engine(model::ModelConfig model, sim::Cluster cluster,
         std::optional<Calibration> calibration = std::nullopt,
         std::optional<ServingCalibration> serving_calibration = std::nullopt);

  const model::ModelConfig& model() const { return model_; }
  const sim::Cluster& cluster() const { return cluster_; }
  const std::optional<Calibration>& calibration() const { return cal_; }
  const std::optional<ServingCalibration>& serving_calibration() const {
    return scal_;
  }

  /// Evaluates one training configuration: schedule → costs → event sim →
  /// Candidate (throughput over all D replicas, bubble ratio, peak memory,
  /// OOM). `adjust`, when given, rewrites the stage costs before the
  /// simulation (tensor-parallel sharding, what-if analyses).
  Candidate evaluate_training(const TrainingPoint& pt,
                              const CostAdjust& adjust = nullptr) const;

  /// Evaluates one serving configuration: forward-only schedule, one
  /// full-batch prefill pass plus expected-length decode passes, each
  /// event-simulated; KV-byte and weight memory accounting. With
  /// `quantiles`, additionally simulates the p50/p99 context depths. With
  /// `skip_sim_if_oom`, an over-memory configuration returns after the
  /// (cheap) memory model with zero timings — the serving planner's
  /// pruning, folded into one call so the cost model runs once per cell.
  /// Infeasibility is a result, not an exception (the planner prints it).
  ServePrediction evaluate_serving(const ServingPoint& pt,
                                   bool quantiles = false,
                                   bool skip_sim_if_oom = false) const;

  /// The cheap half of evaluate_serving: feasibility plus the per-device
  /// weight/KV memory model, no event simulation.
  ServePrediction prune_serving(const ServingPoint& pt) const;

  /// Re-prices a prediction's pass timings for a deployment of `dp`
  /// replicas under the engine's serving calibration: each pass's wall is
  ///   max(makespan, oversub_factor * dp * busy / host_cores)
  ///     + pass_overhead_s,
  /// applied to the prefill, mean-decode and quantile passes recorded in
  /// the prediction (no re-simulation — a cheap per-dp transform, which is
  /// what lets plan_serving keep one engine evaluation per cell). Without
  /// a valid serving calibration the prediction is returned unchanged, so
  /// uncalibrated callers stay bit-identical.
  ServePrediction calibrated_serving(ServePrediction pred, int dp) const;

  /// One pass's calibrated wall seconds (the transform above).
  double calibrated_pass_s(const PassSim& pass, int dp) const;

  /// The schedule request a point lowers to: calibration's measured tb/tf
  /// ratio applied to the ordering costs (the effective_sched() rule).
  schedule::ScheduleRequest sched_request(schedule::Algo algo, int P, int W,
                                          int B, double tf = 1.0,
                                          double tb = 2.0) const;

  /// Expected per-sequence continuation length under stop tokens: each
  /// generated token approximated as uniform over the vocabulary, so s
  /// distinct stop ids stop with p = s/V per token and the expectation is
  /// the capped geometric partial sum. (An approximation by construction —
  /// real logits are anything but uniform; it exists so dp/SLA planning can
  /// account for early exits at all. Measured backends report real lengths.)
  static int expected_new_tokens(int max_new_tokens,
                                 const std::vector<int64_t>& stop_tokens,
                                 int64_t vocab);

  /// The nominal prompt length serving predictions default to: half the
  /// model's positions, clamped so prompt + continuation fits. Shared with
  /// InferenceConfig::effective_prompt_tokens — one rule, one definition.
  static int64_t default_prompt_tokens(const model::ModelConfig& model,
                                       int max_new_tokens);

 private:
  enum class SimPolicy { Always, UnlessOom, Never };
  ServePrediction serving_impl(const ServingPoint& pt, SimPolicy policy,
                               bool quantiles) const;

  model::ModelConfig model_;
  sim::Cluster cluster_;
  std::optional<Calibration> cal_;
  std::optional<ServingCalibration> scal_;
};

}  // namespace hanayo::perf
