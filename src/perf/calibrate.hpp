#pragma once
// Cost-model calibration against the real runtime.
//
// The simulator's inputs — seconds per FLOP, the backward/forward ratio,
// link bandwidth and latency — are normally taken from hardware specs
// (sim/cluster.cpp). This module measures them instead, on the machine the
// library is actually running on: stage compute is timed on the real
// tensor/model stack, and the P2P parameters are fitted from ping-pong
// round trips through the real transport. A simulator fed with calibrated
// numbers predicts *this* machine's pipeline behaviour, which is how the
// paper's Fig. 10-style search would be driven in practice.

#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::perf {

struct Calibration {
  /// Seconds of compute per forward FLOP on this machine.
  double sec_per_flop = 0.0;
  /// Measured T_B / T_F (the paper assumes 2.0).
  double bwd_fwd_ratio = 2.0;
  /// Fitted transport bandwidth (bytes/s) and per-message latency (s).
  double bytes_per_s = 0.0;
  double latency_s = 0.0;

  bool valid() const {
    return sec_per_flop > 0 && bwd_fwd_ratio > 0 && bytes_per_s > 0 &&
           latency_s >= 0;
  }
};

/// Times forwards/backwards of the full model on one micro-batch of
/// `mb_sequences` sequences, repeated `repeats` times; returns seconds per
/// FLOP and the measured backward/forward ratio.
Calibration calibrate_compute(const model::ModelConfig& cfg, int mb_sequences,
                              int repeats = 3);

/// Fits (latency, bandwidth) of the in-process transport from ping-pong
/// round trips at a small and a large payload. Fills the comm fields of
/// `cal` in place.
void calibrate_comm(Calibration& cal, int repeats = 50);

/// Runs both calibrations.
Calibration calibrate(const model::ModelConfig& cfg, int mb_sequences,
                      int compute_repeats = 3, int comm_repeats = 50);

/// A homogeneous cluster whose parameters are this machine's measurements:
/// feeding it to the simulator predicts local pipeline runs.
sim::Cluster calibrated_cluster(int devices, const Calibration& cal,
                                double mem_bytes = 64e9);

/// Per-stage costs for `cfg` split into `stages`, using the measured
/// sec_per_flop and bwd/fwd ratio instead of the spec-derived defaults.
sim::PipelineCosts calibrated_costs(const model::ModelConfig& cfg, int stages,
                                    int mb_sequences, const Calibration& cal);

}  // namespace hanayo::perf
