#pragma once
// Cost-model calibration against the real runtime.
//
// The simulator's inputs — seconds per FLOP, the backward/forward ratio,
// link bandwidth and latency — are normally taken from hardware specs
// (sim/cluster.cpp). This module measures them instead, on the machine the
// library is actually running on: stage compute is timed on the real
// tensor/model stack, and the P2P parameters are fitted from ping-pong
// round trips through the real transport. A simulator fed with calibrated
// numbers predicts *this* machine's pipeline behaviour, which is how the
// paper's Fig. 10-style search would be driven in practice.

#include <optional>
#include <vector>

#include "model/transformer.hpp"
#include "schedule/algorithms.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::perf {

struct Calibration {
  /// Seconds of compute per forward FLOP on this machine.
  double sec_per_flop = 0.0;
  /// Measured T_B / T_F (the paper assumes 2.0).
  double bwd_fwd_ratio = 2.0;
  /// Fitted transport bandwidth (bytes/s) and per-message latency (s).
  double bytes_per_s = 0.0;
  double latency_s = 0.0;

  bool valid() const {
    return sec_per_flop > 0 && bwd_fwd_ratio > 0 && bytes_per_s > 0 &&
           latency_s >= 0;
  }
};

/// The serving-side calibration: corrections the forward-only event model
/// needs before its pass times match a measured serving run. The base
/// Calibration prices compute at the *training-forward* rate (the rate
/// calibrate_compute times — a forward that also stashes activations for
/// backward); serving passes run through forward_infer at a different
/// effective rate, every pipeline pass pays a thread spawn/join +
/// barrier tax the event model never sees, and on hosts with fewer cores
/// than dp * P workers the simulated compute/communication overlap
/// evaporates — a pass's wall clock is bounded below by the total busy
/// compute divided by the cores actually available. The first two
/// coefficients are *measured* directly (single-thread pass timings, so
/// the residual the regression sees is attributable); the last two are
/// *fitted* from measured serving rows by calibrate_serving.
struct ServingCalibration {
  /// Measured forward-only prefill seconds over the flop model's
  /// (training-forward-rate) seconds for the same pass.
  double prefill_rate_scale = 1.0;
  /// Same ratio for a single-token decode pass. Decode GEMVs run much
  /// faster per *counted* FLOP than a full-sequence training forward
  /// (no activation stash, no quadratic softmax traffic), so this is
  /// typically well below 1 — the single-stream "overcharge".
  double decode_rate_scale = 1.0;
  /// Fitted per-pipeline-pass orchestration overhead (seconds): worker
  /// spawn/join, mailbox wakeups and the pass barrier.
  double pass_overhead_s = 0.0;
  /// Fitted per-worker orchestration cost (seconds per pass, per pipeline
  /// worker): each of a replica's P workers pays a wakeup + handoff on
  /// every pass. Unlike pass_overhead_s this is CPU *work*, so it extends
  /// the pass's critical path AND counts toward the oversubscription
  /// bound's busy seconds — which is why P = 4 passes cost visibly more
  /// than P = 2 passes on an oversubscribed host even when their simulated
  /// makespans agree.
  double worker_overhead_s = 0.0;
  /// Fitted CPU-oversubscription factor: with dp replicas of P workers on
  /// `host_cores` cores, a pass's wall is at least
  ///   oversub_factor * dp * (pass busy seconds) / host_cores.
  /// 0 disables the bound (e.g. nothing in the fit was oversubscribed).
  double oversub_factor = 0.0;
  int host_cores = 0;  ///< cores the fit was made against
  /// Fit diagnostics: rms of log(measured/fitted) over the fit rows.
  double residual_log_rms = 0.0;
  int fit_rows = 0;

  bool valid() const {
    return prefill_rate_scale > 0 && decode_rate_scale > 0 &&
           pass_overhead_s >= 0 && worker_overhead_s >= 0 &&
           oversub_factor >= 0 && host_cores >= 0;
  }
};

/// One measured serving observation for calibrate_serving: a configuration
/// plus its mean measured pass walls (summed seconds / passes from a
/// ServeReport, or any BENCH_serve/BENCH_traffic-style row).
struct ServingSample {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int P = 1;
  int W = 1;
  int max_batch = 1;
  int dp = 1;
  int64_t prompt_tokens = 0;  ///< 0 = the engine's default rule
  int max_new_tokens = 16;
  double measured_decode_pass_s = 0.0;   ///< mean decode-pass wall; 0 = absent
  double measured_prefill_pass_s = 0.0;  ///< mean prefill-pass wall; 0 = absent
};

/// Measures the forward-only rate scales on this machine: times a
/// single-thread full-model prefill of `prompt_tokens` and a run of
/// 1-token decodes through the real inference path (model::StageModule
/// forward_infer), divides by the flop model's prediction at the base
/// calibration's rate, and returns a ServingCalibration carrying the two
/// scales plus the detected host core count (overheads left 0 — those are
/// calibrate_serving's fitted half).
ServingCalibration measure_serving_rates(const model::ModelConfig& cfg,
                                         const Calibration& base,
                                         int64_t prompt_tokens = 0,
                                         int repeats = 20);

/// Fits pass_overhead_s and oversub_factor from measured serving rows
/// (defined in perf/engine.cpp — the per-row predictions come from the
/// same Engine code path predict_serving prices with). `seed` carries the
/// measured rate scales and host core count (measure_serving_rates, or
/// known values in tests); the returned calibration is `seed` with the
/// fitted overheads and residual diagnostics filled in. Rows whose
/// measured columns are 0 are skipped; with no usable rows the seed is
/// returned unchanged.
ServingCalibration calibrate_serving(const model::ModelConfig& cfg,
                                     const sim::Cluster& cluster,
                                     const std::optional<Calibration>& cal,
                                     const std::vector<ServingSample>& rows,
                                     const ServingCalibration& seed);

/// Times forwards/backwards of the full model on one micro-batch of
/// `mb_sequences` sequences, repeated `repeats` times; returns seconds per
/// FLOP and the measured backward/forward ratio.
Calibration calibrate_compute(const model::ModelConfig& cfg, int mb_sequences,
                              int repeats = 3);

/// Fits (latency, bandwidth) of the in-process transport from ping-pong
/// round trips at a small and a large payload. Fills the comm fields of
/// `cal` in place.
void calibrate_comm(Calibration& cal, int repeats = 50);

/// Runs both calibrations.
Calibration calibrate(const model::ModelConfig& cfg, int mb_sequences,
                      int compute_repeats = 3, int comm_repeats = 50);

/// A homogeneous cluster whose parameters are this machine's measurements:
/// feeding it to the simulator predicts local pipeline runs.
sim::Cluster calibrated_cluster(int devices, const Calibration& cal,
                                double mem_bytes = 64e9);

/// Per-stage costs for `cfg` split into `stages`, using the measured
/// sec_per_flop and bwd/fwd ratio instead of the spec-derived defaults.
sim::PipelineCosts calibrated_costs(const model::ModelConfig& cfg, int stages,
                                    int mb_sequences, const Calibration& cal);

}  // namespace hanayo::perf
