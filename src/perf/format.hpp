#pragma once
// One formatter for Fig. 10-style configuration rows, shared by the
// planner's `Candidate::to_string()` and the runtime's
// `api::RunReport::to_string()`, so planner tables and live-run reports
// render identically.

#include <string>

#include "schedule/generator.hpp"

namespace hanayo::perf {

/// Everything one table row needs. Both planner candidates (simulated) and
/// live runs (measured) lower themselves to this.
struct PerfRow {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int D = 1;   ///< data-parallel replicas
  int P = 1;   ///< pipeline depth
  int W = 1;   ///< waves (Hanayo) / chunks (Interleaved)
  int B = 1;   ///< micro-batches per pipeline per iteration
  int mb_sequences = 1;
  double throughput_seq_s = 0.0;
  double bubble_ratio = 0.0;
  double peak_mem_gb = 0.0;
  bool oom = false;
  bool feasible = true;
  std::string note;  ///< infeasibility diagnosis, or a source tag ("measured")
};

/// Renders one row: "<scheme> D=.. P=.. [W=..] B=.. mb=..  <numbers>".
/// Infeasible rows show the note; OOM rows show the peak memory.
std::string format_row(const PerfRow& row);

/// The serving analogue of PerfRow: everything one serving-planner table
/// row needs. perf::ServeCandidate lowers itself to this, so planner
/// tables and (future) live serving rows render identically.
struct ServeRow {
  schedule::Algo algo = schedule::Algo::Hanayo;
  int dp = 1;          ///< pipeline replicas
  int P = 1;           ///< pipeline depth
  int W = 1;           ///< waves (Hanayo) / chunks (Interleaved)
  int max_batch = 1;   ///< concurrent decode streams per replica
  double tokens_per_s = 0.0;
  double token_latency_ms = 0.0;  ///< mean decode-pass latency
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double ttft_ms = 0.0;           ///< full-batch prefill makespan
  double peak_mem_gb = 0.0;
  bool oom = false;
  bool feasible = true;
  bool meets_target = true;
  std::string note;
};

/// Renders one serving row:
/// "<scheme> dp=.. P=.. [W=..] batch=..  <numbers> [flags]".
std::string format_serve_row(const ServeRow& row);

}  // namespace hanayo::perf
