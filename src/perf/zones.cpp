#include "perf/zones.hpp"

#include <algorithm>
#include <stdexcept>

namespace hanayo::perf {

std::string zone_name(Zone z) {
  switch (z) {
    case Zone::A: return "A";
    case Zone::B: return "B";
    case Zone::C: return "C";
    case Zone::D: return "D";
  }
  return "?";
}

ZoneBreakdown decompose_bubbles(const sim::SimResult& result, int devices) {
  if (devices <= 0) {
    throw std::invalid_argument("decompose_bubbles: devices must be positive");
  }
  if (result.timeline.empty()) {
    throw std::invalid_argument(
        "decompose_bubbles: timeline empty — simulate with record_timeline");
  }

  // Bucket and time-sort the compute spans per device.
  std::vector<std::vector<const sim::TimelineSpan*>> per_dev(
      static_cast<size_t>(devices));
  for (const sim::TimelineSpan& s : result.timeline) {
    if (s.device < 0 || s.device >= devices) {
      throw std::invalid_argument("decompose_bubbles: span device out of range");
    }
    per_dev[static_cast<size_t>(s.device)].push_back(&s);
  }
  for (auto& v : per_dev) {
    std::sort(v.begin(), v.end(),
              [](const sim::TimelineSpan* a, const sim::TimelineSpan* b) {
                return a->start < b->start;
              });
  }

  ZoneBreakdown out;
  out.per_device.assign(static_cast<size_t>(devices), {});
  constexpr double kEps = 1e-12;

  const auto add = [&](int dev, Zone z, double a, double b) {
    if (b - a <= kEps) return;
    out.spans.push_back(IdleSpan{dev, z, a, b});
    out.total[static_cast<size_t>(z)] += b - a;
    out.per_device[static_cast<size_t>(dev)][static_cast<size_t>(z)] += b - a;
  };

  for (int d = 0; d < devices; ++d) {
    const auto& spans = per_dev[static_cast<size_t>(d)];
    double cursor = 0.0;
    bool seen_backward = false;
    for (const sim::TimelineSpan* s : spans) {
      if (s->start > cursor + kEps) {
        Zone z;
        if (!s->backward) {
          // Waiting on a forward activation: ramp-up until the device has
          // run its first backward, a cross-communication stall afterwards.
          z = seen_backward ? Zone::D : Zone::A;
        } else {
          // Waiting to start a backward: the first time this happens after
          // a forward it is the fwd/bwd turnaround (B); between backwards it
          // is the backward chain (C).
          z = seen_backward ? Zone::C : Zone::B;
        }
        add(d, z, cursor, s->start);
      }
      cursor = std::max(cursor, s->end);
      seen_backward = seen_backward || s->backward;
    }
    // Trailing idle until the flush: drain of the backward chain.
    if (result.makespan > cursor + kEps) {
      add(d, Zone::C, cursor, result.makespan);
    }
  }
  return out;
}

}  // namespace hanayo::perf
