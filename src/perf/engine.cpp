#include "perf/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/memory.hpp"

namespace hanayo::perf {

using schedule::Algo;

Engine::Engine(model::ModelConfig model, sim::Cluster cluster,
               std::optional<Calibration> calibration,
               std::optional<ServingCalibration> serving_calibration)
    : model_(std::move(model)),
      cluster_(std::move(cluster)),
      cal_(std::move(calibration)),
      scal_(std::move(serving_calibration)) {}

schedule::ScheduleRequest Engine::sched_request(Algo algo, int P, int W, int B,
                                                double tf, double tb) const {
  schedule::ScheduleRequest req;
  req.algo = algo;
  req.P = P;
  req.B = B;
  req.waves = W;
  req.vchunks = W;
  req.tf = tf;
  req.tb = tb;
  if (cal_ && cal_->bwd_fwd_ratio > 0) req.tb = req.tf * cal_->bwd_fwd_ratio;
  return req;
}

Candidate Engine::evaluate_training(const TrainingPoint& pt,
                                    const CostAdjust& adjust) const {
  Candidate c;
  c.algo = pt.algo;
  c.D = pt.D;
  c.P = pt.P;
  c.W = pt.W;
  c.B = pt.B;
  c.mb_sequences = pt.mb_sequences;

  if (pt.algo == Algo::Chimera && (pt.P % 2 != 0 || pt.B < 2)) {
    c.feasible = false;
    c.note = "Chimera needs even P and B >= 2";
    return c;
  }

  const schedule::ScheduleRequest req =
      sched_request(pt.algo, pt.P, pt.W, pt.B);
  const int S = schedule::stages_for(req);
  const int total_layers = static_cast<int>(model_.layer_descs().size());
  if (S > total_layers) {
    c.feasible = false;
    c.note = "stages (" + std::to_string(S) + ") exceed layers (" +
             std::to_string(total_layers) + ")";
    return c;
  }
  const schedule::Schedule sched = schedule::make_schedule(req);
  sim::PipelineCosts costs = sim::compute_costs(
      model_, S, pt.mb_sequences, cluster_, /*recompute=*/false,
      cal_ && cal_->bwd_fwd_ratio > 0 ? cal_->bwd_fwd_ratio
                                      : sim::kBwdFwdRatio);
  if (adjust) adjust(costs);
  sim::SimOptions opt;
  opt.dp = pt.D;
  // Chimera's second weight copy is part of the algorithm (not DP), so the
  // replica pair shares the pipeline's devices; everything else uses one
  // block of P devices per replica.
  opt.devmap = sim::DeviceMap{pt.P, 0};
  const sim::SimResult res = sim::simulate(sched, costs, cluster_, opt);

  c.throughput_seq_s =
      res.throughput_seq_per_s(pt.B * pt.mb_sequences) * pt.D;
  c.bubble_ratio = res.bubble_ratio;
  double peak = 0.0;
  for (double x : res.peak_mem_bytes) peak = std::max(peak, x);
  c.peak_mem_gb = peak / 1e9;
  c.oom = res.oom;
  return c;
}

int Engine::expected_new_tokens(int max_new_tokens,
                                const std::vector<int64_t>& stop_tokens,
                                int64_t vocab) {
  // Only ids the model can actually emit count: a stop id outside
  // [0, vocab) never fires at runtime, so modelling it would make the
  // prediction shorter than every measured backend.
  std::vector<int64_t> uniq;
  for (int64_t id : stop_tokens) {
    if (id >= 0 && id < vocab) uniq.push_back(id);
  }
  if (uniq.empty()) return max_new_tokens;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const double p =
      std::min(1.0, static_cast<double>(uniq.size()) /
                        static_cast<double>(std::max<int64_t>(vocab, 1)));
  if (p >= 1.0) return 1;
  const double cap = static_cast<double>(max_new_tokens);
  const double e_len = (1.0 - std::pow(1.0 - p, cap)) / p;
  return std::max(1, static_cast<int>(std::llround(e_len)));
}

int64_t Engine::default_prompt_tokens(const model::ModelConfig& model,
                                      int max_new_tokens) {
  const int64_t room = model.seq - max_new_tokens + 1;
  return std::clamp<int64_t>(model.seq / 2, 1, std::max<int64_t>(room, 1));
}

ServePrediction Engine::evaluate_serving(const ServingPoint& pt,
                                         bool quantiles,
                                         bool skip_sim_if_oom) const {
  return serving_impl(pt, skip_sim_if_oom ? SimPolicy::UnlessOom
                                          : SimPolicy::Always,
                      quantiles);
}

ServePrediction Engine::prune_serving(const ServingPoint& pt) const {
  return serving_impl(pt, SimPolicy::Never, /*quantiles=*/false);
}

ServePrediction Engine::serving_impl(const ServingPoint& pt,
                                     SimPolicy policy,
                                     bool quantiles) const {
  ServePrediction out;

  // Feasibility is a result, not an exception — the point of a dry run (and
  // of a planner sweep) is to find out before building an engine.
  if (!model_.causal) {
    out.feasible = false;
    out.note = "greedy decode needs a causal model";
    return out;
  }
  if (pt.algo == Algo::Chimera || pt.algo == Algo::PipeDream) {
    out.feasible = false;
    out.note = std::string(schedule::algo_name(pt.algo)) +
               " has no forward-only program";
    return out;
  }
  schedule::ScheduleRequest req =
      sched_request(pt.algo, pt.P, pt.W, pt.max_batch, pt.tf, pt.tb);
  const int S = schedule::stages_for(req);
  const int total_layers = static_cast<int>(model_.layer_descs().size());
  if (S > total_layers) {
    out.feasible = false;
    out.note = "stages (" + std::to_string(S) + ") exceed layers (" +
               std::to_string(total_layers) + ")";
    return out;
  }

  const schedule::Schedule sched = schedule::make_forward_schedule(req);
  // Replicas are fully independent (disjoint devices, no collective), so
  // event-simulating one replica's timeline and letting the callers
  // replicate the numbers over dp is exact, not an approximation.
  sim::SimOptions opt;
  opt.dp = 1;
  opt.state_factor = 1.0;  // inference holds weights, no grads/optimizer
  opt.devmap = sim::DeviceMap{pt.P, 0};

  const double kv_elem = pt.kv_fp16 ? 2.0 : 4.0;
  const int64_t plen = pt.prompt_tokens > 0
                           ? pt.prompt_tokens
                           : default_prompt_tokens(model_, pt.max_new_tokens);
  // Stop tokens shorten the modelled continuation (see expected_new_tokens).
  const int steps =
      expected_new_tokens(pt.max_new_tokens, pt.stop_tokens, model_.vocab);
  out.steps = steps;
  out.prompt_tokens = plen;

  // Forward-only rate correction: serving passes run at measured
  // forward_infer rates, not the training-forward rate the base
  // calibration timed. Scale 1.0 (no serving calibration) multiplies the
  // costs by exactly 1.0, so the uncalibrated path stays bit-identical.
  const bool scal = scal_ && scal_->valid();
  const double prefill_scale = scal ? scal_->prefill_rate_scale : 1.0;
  const double decode_scale = scal ? scal_->decode_rate_scale : 1.0;

  // One full-batch prefill pass: every micro-batch carries a whole prompt.
  const sim::PipelineCosts prefill_costs =
      sim::infer_costs(model_, S, 1, plen, plen, cluster_, kv_elem,
                       /*kv_page_tokens=*/0, prefill_scale);

  // Memory model (the serving planner's pruning signal): per device, the
  // resident weights (sim/memory, state factor 1) plus every slot's
  // full-context KV — the steady state when max_batch streams all reach
  // their final context together.
  const std::vector<double> weight_dev =
      sim::device_weight_bytes(sched.placement, prefill_costs, 1.0);
  const int64_t final_ctx = plen + steps - 1;
  // kv_page_tokens > 0 rounds every stream's resident rows up to whole
  // pages (the allocator holds the tail page either way); 0 leaves the
  // contiguous-slot accounting bit-exact.
  const sim::PipelineCosts full_kv =
      sim::infer_costs(model_, S, 1, final_ctx, final_ctx, cluster_, kv_elem,
                       pt.kv_page_tokens);
  std::vector<double> dev_kv(static_cast<size_t>(pt.P), 0.0);
  double kv_worst = 0.0;
  for (int d = 0; d < pt.P; ++d) {
    for (int ch = 0; ch < sched.placement.chunks_per_device(); ++ch) {
      const int stage = sched.placement.stage_of(d, ch);
      dev_kv[static_cast<size_t>(d)] +=
          full_kv.act_bytes[static_cast<size_t>(stage)] * pt.max_batch;
    }
    kv_worst += dev_kv[static_cast<size_t>(d)];
  }
  if (pt.kv_page_tokens > 0) {
    // A paged replica can never hold more than its pool: when max_batch
    // worst-case streams would exceed pool_bytes, the admission control
    // caps residency there — price each device its proportional share.
    const int64_t pgt = pt.kv_page_tokens;
    const int lanes = std::max(1, runtime::kv_lanes(model_));
    const int64_t pool_pages =
        pt.kv_pool_pages > 0
            ? pt.kv_pool_pages
            : static_cast<int64_t>(pt.max_batch) *
                  ((model_.seq + pgt - 1) / pgt) * lanes;
    const double page_bytes = 2.0 * static_cast<double>(pgt) *
                              static_cast<double>(model_.hidden) * kv_elem;
    const double pool_bytes = static_cast<double>(pool_pages) * page_bytes;
    if (kv_worst > pool_bytes && kv_worst > 0.0) {
      const double f = pool_bytes / kv_worst;
      for (double& x : dev_kv) x *= f;
    }
  }
  double peak = 0.0, wmax = 0.0, kv_total = 0.0;
  for (int d = 0; d < pt.P; ++d) {
    kv_total += dev_kv[static_cast<size_t>(d)];
    wmax = std::max(wmax, weight_dev[static_cast<size_t>(d)]);
    const double dev_total =
        weight_dev[static_cast<size_t>(d)] + dev_kv[static_cast<size_t>(d)];
    peak = std::max(peak, dev_total);
    if (dev_total > cluster_.mem_bytes) out.oom = true;
  }
  out.weight_mem_gb = wmax / 1e9;
  out.peak_mem_gb = peak / 1e9;
  out.kv_gb = kv_total / 1e9;

  // Per-replica nominal load: one full batch of prompts to completion.
  // submitted == completed == requests: the nominal closed-loop batch sheds
  // nothing, so predictions satisfy the same outcome-conservation identity
  // as measured ServeStats.
  runtime::ServeStats& per = out.per_replica;
  per.requests = pt.max_batch;
  per.submitted = pt.max_batch;
  per.completed = pt.max_batch;
  per.prompt_tokens = static_cast<int64_t>(pt.max_batch) * plen;
  per.generated_tokens = static_cast<int64_t>(pt.max_batch) * steps;
  per.prefill_passes = 1;
  per.decode_passes = steps - 1;
  // KV rows resident at the end: per device, the per-pass act bytes times
  // the final context length of every stream.
  if (pt.kv_page_tokens > 0) {
    // Paged: the page-rounded, pool-capped residency computed above.
    per.peak_kv_bytes = static_cast<int64_t>(kv_total);
  } else {
    double kv = 0.0;
    for (double x : prefill_costs.act_bytes) kv += x;
    per.peak_kv_bytes = static_cast<int64_t>(
        kv / static_cast<double>(plen) *
        static_cast<double>(plen + steps - 1) * pt.max_batch);
  }
  if (policy == SimPolicy::Never) return out;
  if (policy == SimPolicy::UnlessOom && out.oom) return out;

  const sim::SimResult prefill =
      sim::simulate(sched, prefill_costs, cluster_, opt);
  out.prefill_sim = PassSim{prefill.makespan, prefill.total_busy(), pt.P};

  // steps - 1 decode passes (the prefill emits the first token), costed at
  // the mean KV-cache depth of the decode phase.
  if (steps > 1) {
    const int64_t mean_ctx = plen + steps / 2;
    const sim::PipelineCosts decode_costs =
        sim::infer_costs(model_, S, 1, 1, mean_ctx, cluster_, kv_elem,
                         /*kv_page_tokens=*/0, decode_scale);
    const sim::SimResult decode =
        sim::simulate(sched, decode_costs, cluster_, opt);
    out.decode_sim = PassSim{decode.makespan, decode.total_busy(), pt.P};
  }
  // The calibrated transform is the identity without a serving calibration
  // (raw makespans pass through bit-exactly); with one, the dp = 1
  // oversubscription bound and the per-pass overhead land here, and
  // calibrated_serving re-prices the recorded PassSims for any other dp.
  per.prefill_s = calibrated_pass_s(out.prefill_sim, 1);
  per.decode_s = calibrated_pass_s(out.decode_sim, 1) * (steps - 1);
  out.prefill_pass_solo_s = calibrated_pass_s(out.prefill_sim, 1);

  // Decode-latency quantiles: pass t of 1..steps-1 attends over context
  // plen + t, and pass latency is monotone in context, so the p-th latency
  // quantile is exactly the pass at the p-th context depth. Nearest-rank
  // (ceil) indexing: p99 of n <= 100 passes is the deepest pass — an SLA
  // bound checked against it errs on the safe side.
  if (quantiles && steps > 1) {
    const int n = steps - 1;
    const auto pass_at = [&](double q) {
      const int t =
          std::min(n, std::max(1, static_cast<int>(std::ceil(q * n))));
      const sim::PipelineCosts qc =
          sim::infer_costs(model_, S, 1, 1, plen + t, cluster_, kv_elem,
                           /*kv_page_tokens=*/0, decode_scale);
      const sim::SimResult res = sim::simulate(sched, qc, cluster_, opt);
      return PassSim{res.makespan, res.total_busy(), pt.P};
    };
    out.p50_sim = pass_at(0.5);
    out.p99_sim = pass_at(0.99);
    out.p50_token_latency_s = calibrated_pass_s(out.p50_sim, 1);
    out.p99_token_latency_s = calibrated_pass_s(out.p99_sim, 1);
  }
  return out;
}

double Engine::calibrated_pass_s(const PassSim& pass, int dp) const {
  if (!scal_ || !scal_->valid() || pass.makespan_s <= 0.0) {
    return pass.makespan_s;
  }
  double wall = pass.makespan_s;
  double busy = pass.busy_s;
  if (scal_->worker_overhead_s > 0.0 && pass.workers > 0) {
    // Per-worker orchestration is CPU work: it stretches the pass's
    // critical path and competes for cores like the compute does.
    const double orch = scal_->worker_overhead_s * pass.workers;
    wall += orch;
    busy += orch;
  }
  if (scal_->oversub_factor > 0.0 && scal_->host_cores > 0) {
    wall = std::max(wall, scal_->oversub_factor * std::max(1, dp) * busy /
                              scal_->host_cores);
  }
  return wall + scal_->pass_overhead_s;
}

ServePrediction Engine::calibrated_serving(ServePrediction pred,
                                           int dp) const {
  if (!scal_ || !scal_->valid() || !pred.feasible) return pred;
  runtime::ServeStats& per = pred.per_replica;
  per.prefill_s = calibrated_pass_s(pred.prefill_sim, dp) *
                  std::max(1, per.prefill_passes);
  per.decode_s = calibrated_pass_s(pred.decode_sim, dp) * per.decode_passes;
  pred.prefill_pass_solo_s = calibrated_pass_s(pred.prefill_sim, 1);
  if (pred.p50_sim.makespan_s > 0.0) {
    pred.p50_token_latency_s = calibrated_pass_s(pred.p50_sim, dp);
  }
  if (pred.p99_sim.makespan_s > 0.0) {
    pred.p99_token_latency_s = calibrated_pass_s(pred.p99_sim, dp);
  }
  return pred;
}

LoadPrediction predict_load(const ServePrediction& one_replica, int dp,
                            const LoadPoint& load) {
  LoadPrediction out;
  const runtime::ServeStats& per = one_replica.per_replica;
  const double turnaround = per.prefill_s + per.decode_s;
  if (!one_replica.feasible || turnaround <= 0.0 || per.requests < 1) {
    return out;
  }
  // Batch-amortised service: one replica turns per.requests (a full batch)
  // around in `turnaround` busy seconds.
  const double replica_rate = static_cast<double>(per.requests) / turnaround;
  out.capacity_req_s = std::max(1, dp) * replica_rate;
  if (load.offered_req_s <= 0.0) return out;
  const double rho = load.offered_req_s / out.capacity_req_s;
  out.utilization = rho;

  // One full-batch prefill pass: the service component of TTFT.
  const double prefill_wall =
      per.prefill_passes > 0
          ? per.prefill_s / static_cast<double>(per.prefill_passes)
          : per.prefill_s;
  // TTFT quantiles of the *served* requests never exceed the deadline (a
  // request past it completes as DeadlineExceeded, not as a slow serve).
  const auto cap_ttft = [&] {
    if (load.deadline_s > 0.0) {
      out.p50_ttft_s = std::min(out.p50_ttft_s, load.deadline_s);
      out.p99_ttft_s = std::min(out.p99_ttft_s, load.deadline_s);
    }
  };

  if (rho < 1.0) {
    // Sub-critical. Continuous batching gives the cluster requests*dp
    // concurrent slots, each turning a request around in `turnaround`
    // seconds — an M/M/c queue, not a single server with a batch-sized
    // quantum. The delay probability is Erlang C (the recurrence builds
    // Erlang B, then converts); waits beyond it decay exponentially at the
    // queue's drain margin, Wc = turnaround / (c * (1 - rho)).
    const double c_slots =
        static_cast<double>(per.requests) * std::max(1, dp);
    const double a = rho * c_slots;  // offered load in erlangs
    double erlang_b = 1.0;
    for (int k = 1; k <= static_cast<int>(c_slots); ++k) {
      erlang_b = a * erlang_b / (k + a * erlang_b);
    }
    const double p_wait =
        std::min(1.0, erlang_b / std::max(1e-12, 1.0 - rho * (1.0 - erlang_b)));
    // Deterministic-service correction: a slot's turnaround has almost no
    // variance (fixed batch shape, fixed token budget), and M/D/c waits
    // are half the exponential-service ones (exactly so at c = 1).
    const double w_cond = 0.5 * turnaround / (c_slots * (1.0 - rho));
    // A bounded admission queue bounds the wait even below saturation:
    // nobody queues behind more than queue_cap requests, and a full queue
    // drains at capacity. This also keeps the near-critical 1/(1-rho)
    // blow-up finite.
    const double wait_cap = load.queue_cap > 0
                                ? load.queue_cap / out.capacity_req_s
                                : std::numeric_limits<double>::infinity();
    out.queue_wait_s = std::min(p_wait * w_cond, wait_cap);
    const auto wait_q = [&](double q) {
      const double w = (1.0 - q) >= p_wait
                           ? 0.0
                           : w_cond * std::log(p_wait / (1.0 - q));
      return std::min(w, wait_cap);
    };
    // TTFT service component: the full-batch, all-replicas-colliding
    // prefill wall is the saturated limit. A light-traffic arrival
    // prefills (nearly) alone — no other replica contends for the cores
    // (the solo wall) and few other sequences share its pass (the
    // expected co-batch 1 + rho*(B-1) of B). Both contention terms rise
    // linearly with utilization.
    const double solo =
        one_replica.prefill_pass_solo_s > 0.0
            ? std::min(one_replica.prefill_pass_solo_s, prefill_wall)
            : prefill_wall;
    const double collide = solo + rho * (prefill_wall - solo);
    const double batch_frac =
        (1.0 + rho * (static_cast<double>(per.requests) - 1.0)) /
        static_cast<double>(per.requests);
    const double service_ttft = collide * batch_frac;
    out.p50_ttft_s = wait_q(0.5) + service_ttft;
    out.p99_ttft_s = wait_q(0.99) + service_ttft;
    cap_ttft();
    // A deadline shorter than the typical wait + first-token latency sheds
    // the late fraction even below saturation.
    const double latency = out.queue_wait_s + service_ttft;
    if (load.deadline_s > 0.0 && latency > load.deadline_s) {
      out.timeout_rate = std::min(1.0, 1.0 - load.deadline_s / latency);
    }
    out.goodput_req_s = load.offered_req_s * (1.0 - out.timeout_rate);
    return out;
  }

  // Super-critical: the fluid limit sheds the excess arrival fraction.
  // Where it goes depends on which backstop exists: a bounded queue
  // rejects at admission, a deadline expires the queued overflow, and with
  // neither the queue grows without bound — that mass is `backlogged_rate`
  // (neither served nor shed within any fixed horizon), so the outcome
  // identity offered == goodput + shed holds on this branch too.
  const double shed = 1.0 - 1.0 / rho;
  if (load.queue_cap > 0) {
    out.rejected_rate = shed;
    // A full queue drains at capacity: the admitted request's wait.
    out.queue_wait_s = load.queue_cap / out.capacity_req_s;
    if (load.deadline_s > 0.0 && out.queue_wait_s > load.deadline_s) {
      // The queue is deeper than the deadline allows: the back of it
      // expires before service — split the shed mass accordingly.
      out.timeout_rate =
          (1.0 - shed) *
          std::min(1.0, 1.0 - load.deadline_s / out.queue_wait_s);
    }
  } else if (load.deadline_s > 0.0) {
    out.timeout_rate = shed;
    out.queue_wait_s = load.deadline_s;  // waits cluster at the deadline
  } else {
    // No backstop: the excess fraction accumulates in the queue instead of
    // being shed. Report a wait proportional to the overload.
    out.backlogged_rate = shed;
    out.queue_wait_s = (rho - 1.0) * turnaround * 10.0;
  }
  // Admitted-and-served requests waited somewhere between an empty and a
  // full backstop queue: uniform residual between 0 and the drain time.
  out.p50_ttft_s = 0.5 * out.queue_wait_s + prefill_wall;
  out.p99_ttft_s = out.queue_wait_s + prefill_wall;
  cap_ttft();
  out.goodput_req_s =
      std::min(out.capacity_req_s,
               load.offered_req_s * (1.0 - out.rejected_rate -
                                     out.timeout_rate - out.backlogged_rate));
  return out;
}

ServingCalibration calibrate_serving(const model::ModelConfig& cfg,
                                     const sim::Cluster& cluster,
                                     const std::optional<Calibration>& cal,
                                     const std::vector<ServingSample>& rows,
                                     const ServingCalibration& seed) {
  ServingCalibration out = seed;
  out.pass_overhead_s = 0.0;
  out.worker_overhead_s = 0.0;
  out.oversub_factor = 0.0;
  out.residual_log_rms = 0.0;
  out.fit_rows = 0;

  // Predict each row with the measured rate scales applied but the fitted
  // terms zeroed: the residual against the raw makespan is then
  // attributable to orchestration + oversubscription alone.
  const Engine eng(cfg, cluster, cal, out);
  struct Obs {
    double makespan = 0.0;       // rate-scaled pipeline makespan (s)
    double busy = 0.0;           // rate-scaled summed busy seconds
    double dp_per_core = 0.0;    // dp / host_cores
    int workers = 0;             // pipeline workers per replica (P)
    double meas = 0.0;           // measured wall per pass (s)
  };
  std::vector<Obs> obs;
  const double cores = out.host_cores > 0 ? out.host_cores : 1.0;
  for (const ServingSample& r : rows) {
    if (r.measured_decode_pass_s <= 0.0 && r.measured_prefill_pass_s <= 0.0) {
      continue;
    }
    ServingPoint pt;
    pt.algo = r.algo;
    pt.P = r.P;
    pt.W = r.W;
    pt.max_batch = r.max_batch;
    pt.prompt_tokens = r.prompt_tokens;
    pt.max_new_tokens = r.max_new_tokens;
    const ServePrediction pred = eng.evaluate_serving(pt);
    if (!pred.feasible) continue;
    const double dpc = static_cast<double>(std::max(1, r.dp)) / cores;
    if (r.measured_decode_pass_s > 0.0 && pred.decode_sim.makespan_s > 0.0) {
      obs.push_back({pred.decode_sim.makespan_s, pred.decode_sim.busy_s, dpc,
                     r.P, r.measured_decode_pass_s});
    }
    if (r.measured_prefill_pass_s > 0.0 && pred.prefill_sim.makespan_s > 0.0) {
      obs.push_back({pred.prefill_sim.makespan_s, pred.prefill_sim.busy_s,
                     dpc, r.P, r.measured_prefill_pass_s});
    }
  }
  if (obs.empty()) return out;

  // meas = max(makespan + c*P, gamma * dp * (busy + c*P) / cores) + h,
  // where c is the per-worker orchestration cost and h the per-pass
  // constant. The max() kink defeats closed-form normal equations, so scan
  // (gamma, c, h) on a grid; score in log space so fast decode rows and
  // slow prefill rows weigh equally. The selection criterion is Chebyshev
  // — minimize the worst |log(meas/fit)| with the sum of squares as
  // tie-break — because the planner consumes these predictions through
  // worst-case SLA bounds: one badly mispriced configuration does more
  // damage than a slightly looser average. First-best tie-break keeps
  // gamma = c = h = 0 when the rows never identify them.
  double best_g = 0.0, best_c = 0.0, best_h = 0.0;
  double best_max = 1e300, best_sse = 1e300;
  const auto pass_fit = [](const Obs& o, double g, double c) {
    const double orch = c * o.workers;
    return std::max(o.makespan + orch,
                    g * o.dp_per_core * (o.busy + orch));
  };
  std::vector<double> fits(obs.size());
  for (double g = 0.0; g <= 4.0 + 1e-9; g += 0.02) {
    for (double c = 0.0; c <= 200e-6 + 1e-12; c += 5e-6) {
      // Candidate h values: the residual range at this (g, c), plus the
      // least-squares mean as an anchor. h is additive so the minimax
      // optimum in log space has no closed form; a fine scan over the
      // bracket that could possibly help is cheap and exact enough.
      double lo = 1e300, hi = -1e300, mean = 0.0;
      for (size_t i = 0; i < obs.size(); ++i) {
        fits[i] = pass_fit(obs[i], g, c);
        const double r = obs[i].meas - fits[i];
        lo = std::min(lo, r);
        hi = std::max(hi, r);
        mean += r;
      }
      lo = std::max(0.0, lo);
      hi = std::max(0.0, hi);
      mean = std::max(0.0, mean / static_cast<double>(obs.size()));
      constexpr int kH = 24;
      for (int hi_idx = 0; hi_idx <= kH + 1; ++hi_idx) {
        const double h = hi_idx <= kH
                             ? lo + (hi - lo) * hi_idx / static_cast<double>(kH)
                             : mean;
        double max_abs = 0.0, sse = 0.0;
        for (size_t i = 0; i < obs.size(); ++i) {
          const double fit = fits[i] + h;
          const double e =
              std::log(std::max(1e-12, obs[i].meas) / std::max(1e-12, fit));
          max_abs = std::max(max_abs, std::abs(e));
          sse += e * e;
        }
        if (max_abs < best_max - 1e-12 ||
            (max_abs < best_max + 1e-12 && sse < best_sse - 1e-15)) {
          best_max = max_abs;
          best_sse = sse;
          best_g = g;
          best_c = c;
          best_h = h;
        }
      }
    }
  }
  out.oversub_factor = best_g;
  out.worker_overhead_s = best_c;
  out.pass_overhead_s = best_h;
  out.fit_rows = static_cast<int>(obs.size());
  out.residual_log_rms =
      std::sqrt(best_sse / static_cast<double>(obs.size()));
  return out;
}

}  // namespace hanayo::perf
