#include "perf/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "comm/communicator.hpp"
#include "model/loss.hpp"
#include "tensor/rng.hpp"

namespace hanayo::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Median round-trip seconds for a ping-pong of `elems` floats.
double pingpong_seconds(int64_t elems, int repeats) {
  comm::World world(2);
  double total = 0.0;
  std::thread echo([&] {
    comm::Communicator c(&world, 1);
    for (int r = 0; r < repeats; ++r) {
      tensor::Tensor t = c.recv(0, comm::make_tag(comm::Kind::Control, r, 0));
      c.send(0, comm::make_tag(comm::Kind::Control, r, 1), std::move(t));
    }
  });
  {
    comm::Communicator c(&world, 0);
    tensor::Tensor payload({elems});
    const auto t0 = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      tensor::Tensor copy = payload;
      c.send(1, comm::make_tag(comm::Kind::Control, r, 0), std::move(copy));
      payload = c.recv(1, comm::make_tag(comm::Kind::Control, r, 1));
    }
    total = seconds_since(t0);
  }
  echo.join();
  return total / repeats;
}

}  // namespace

Calibration calibrate_compute(const model::ModelConfig& cfg, int mb_sequences,
                              int repeats) {
  if (mb_sequences < 1 || repeats < 1) {
    throw std::invalid_argument("calibrate_compute: bad arguments");
  }
  const auto descs = cfg.layer_descs();
  model::StageModule module(descs, 0, static_cast<int>(descs.size()),
                            /*seed=*/1234, cfg.init_std);

  const int64_t tokens = static_cast<int64_t>(mb_sequences) * cfg.seq;
  double total_flops = 0.0;
  for (const auto& d : descs) total_flops += d.fwd_flops(tokens);

  tensor::Rng rng(99);
  tensor::Tensor x({mb_sequences, cfg.seq});
  tensor::Tensor tgt({static_cast<int64_t>(mb_sequences) * cfg.seq});
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.index(cfg.vocab));
    tgt[i] = static_cast<float>(rng.index(cfg.vocab));
  }

  // Warm-up pass (first touch allocates caches).
  {
    tensor::Tensor logits = module.forward(x, /*mb=*/0);
    auto [loss, dl] = model::cross_entropy(logits, tgt);
    (void)loss;
    module.backward(dl, 0);
    module.zero_grads();
  }

  double fwd_total = 0.0, bwd_total = 0.0;
  for (int r = 1; r <= repeats; ++r) {
    const auto f0 = Clock::now();
    tensor::Tensor logits = module.forward(x, r);
    fwd_total += seconds_since(f0);
    auto [loss, dl] = model::cross_entropy(logits, tgt);
    (void)loss;
    const auto b0 = Clock::now();
    module.backward(dl, r);
    bwd_total += seconds_since(b0);
    module.zero_grads();
  }

  Calibration cal;
  cal.sec_per_flop = (fwd_total / repeats) / total_flops;
  cal.bwd_fwd_ratio = fwd_total > 0 ? bwd_total / fwd_total : 2.0;
  return cal;
}

ServingCalibration measure_serving_rates(const model::ModelConfig& cfg,
                                         const Calibration& base,
                                         int64_t prompt_tokens, int repeats) {
  if (!(base.sec_per_flop > 0) || repeats < 1) {
    throw std::invalid_argument(
        "measure_serving_rates: need a compute calibration and repeats >= 1");
  }
  ServingCalibration sc;
  sc.host_cores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  const auto descs = cfg.layer_descs();
  const int64_t plen =
      prompt_tokens > 0 ? std::clamp<int64_t>(prompt_tokens, 1, cfg.seq)
                        : std::max<int64_t>(1, cfg.seq / 2);
  model::StageModule module(descs, 0, static_cast<int>(descs.size()),
                            /*seed=*/1234, cfg.init_std);
  tensor::Tensor prompt({1, plen});
  for (int64_t i = 0; i < plen; ++i) {
    prompt[i] = static_cast<float>(i % cfg.vocab);
  }
  // The flop model's view of a pass at context `ctx`: the same per-layer
  // counting infer_costs uses, priced at the base (training-forward) rate.
  const auto model_pass_s = [&](int64_t new_tokens, int64_t ctx) {
    double flops = 0.0;
    auto pd = descs;
    for (auto& d : pd) {
      d.seq = ctx;
      flops += d.fwd_flops(new_tokens);
    }
    return flops * base.sec_per_flop;
  };

  // Prefill rate: repeated full-prompt forward_infer passes on one slot.
  (void)module.decode(prompt, 0, 0);  // warm-up (first touch allocates)
  {
    const auto t0 = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      module.drop_slot(0);
      (void)module.decode(prompt, 0, 0);
    }
    const double per_pass = seconds_since(t0) / repeats;
    sc.prefill_rate_scale = per_pass / std::max(1e-30, model_pass_s(plen, plen));
  }

  // Decode rate: single-token passes walking the context from the prompt
  // toward the model's positions, re-priming the slot when it runs out.
  // Each decode is timed individually so the re-prefills stay unbilled.
  {
    tensor::Tensor one({1, 1});
    one[0] = static_cast<float>(1 % cfg.vocab);
    double total = 0.0;
    int64_t ctx_total = 0;
    int64_t pos = plen;
    for (int r = -2; r < repeats; ++r) {  // two warm iterations
      if (pos >= cfg.seq) {
        module.drop_slot(0);
        (void)module.decode(prompt, 0, 0);
        pos = plen;
      }
      const auto t0 = Clock::now();
      (void)module.decode(one, pos, 0);
      if (r >= 0) {
        total += seconds_since(t0);
        ctx_total += pos + 1;
      }
      ++pos;
    }
    const double per_decode = total / repeats;
    const int64_t mean_ctx = std::max<int64_t>(1, ctx_total / repeats);
    sc.decode_rate_scale =
        per_decode / std::max(1e-30, model_pass_s(1, mean_ctx));
  }

  // Timer glitches should never produce a calibration that inverts the
  // prediction by orders of magnitude: clamp to a generous plausible band.
  sc.prefill_rate_scale = std::clamp(sc.prefill_rate_scale, 0.05, 20.0);
  sc.decode_rate_scale = std::clamp(sc.decode_rate_scale, 0.05, 20.0);
  return sc;
}

void calibrate_comm(Calibration& cal, int repeats) {
  if (repeats < 1) throw std::invalid_argument("calibrate_comm: repeats < 1");
  // Two payload sizes; each one-way time is half the round trip. Fit
  //   t(n) = latency + n * 4 bytes / bandwidth.
  constexpr int64_t kSmall = 16;
  constexpr int64_t kLarge = 1 << 20;  // 4 MiB of floats
  const double t_small = pingpong_seconds(kSmall, repeats) / 2.0;
  const double t_large = pingpong_seconds(kLarge, std::max(3, repeats / 8)) / 2.0;
  const double dbytes = static_cast<double>(kLarge - kSmall) * 4.0;
  const double dt = std::max(t_large - t_small, 1e-12);
  cal.bytes_per_s = dbytes / dt;
  cal.latency_s =
      std::max(0.0, t_small - kSmall * 4.0 / cal.bytes_per_s);
}

Calibration calibrate(const model::ModelConfig& cfg, int mb_sequences,
                      int compute_repeats, int comm_repeats) {
  Calibration cal = calibrate_compute(cfg, mb_sequences, compute_repeats);
  calibrate_comm(cal, comm_repeats);
  return cal;
}

sim::Cluster calibrated_cluster(int devices, const Calibration& cal,
                                double mem_bytes) {
  if (!cal.valid()) {
    throw std::invalid_argument("calibrated_cluster: incomplete calibration");
  }
  return sim::Cluster::uniform(devices, 1.0 / cal.sec_per_flop, mem_bytes,
                               cal.bytes_per_s, cal.latency_s);
}

sim::PipelineCosts calibrated_costs(const model::ModelConfig& cfg, int stages,
                                    int mb_sequences, const Calibration& cal) {
  if (!(cal.sec_per_flop > 0)) {
    throw std::invalid_argument("calibrated_costs: missing compute calibration");
  }
  // Start from the spec-derived structure (volumes, weights, activations),
  // then replace the time axis with the measured rate and ratio.
  sim::PipelineCosts pc = sim::compute_costs(
      cfg, stages, mb_sequences,
      sim::Cluster::uniform(1, 1.0 / cal.sec_per_flop, 1e12, 1e12, 0.0));
  for (size_t s = 0; s < pc.fwd_s.size(); ++s) {
    pc.bwd_s[s] = pc.fwd_s[s] * cal.bwd_fwd_ratio;
  }
  return pc;
}

}  // namespace hanayo::perf
