#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hanayo::sim {

std::string ascii_timeline(const SimResult& res, int devices, double slot) {
  double end = 0.0;
  for (const TimelineSpan& s : res.timeline) end = std::max(end, s.end);
  const int width = static_cast<int>(std::ceil(end / slot - 1e-9));
  std::vector<std::string> rows(static_cast<size_t>(devices),
                                std::string(static_cast<size_t>(width), '.'));
  for (const TimelineSpan& s : res.timeline) {
    const int c0 = static_cast<int>(std::floor(s.start / slot + 1e-9));
    const int c1 = static_cast<int>(std::ceil(s.end / slot - 1e-9));
    const char glyph = s.backward ? static_cast<char>('a' + s.mb % 26)
                                  : static_cast<char>('0' + s.mb % 10);
    for (int c = c0; c < c1 && c < width; ++c) {
      rows[static_cast<size_t>(s.device)][static_cast<size_t>(c)] = glyph;
    }
  }
  std::ostringstream os;
  for (int d = 0; d < devices; ++d) {
    os << "  P" << d << " |" << rows[static_cast<size_t>(d)] << "|\n";
  }
  return os.str();
}

std::string chrome_trace_json(const SimResult& res) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const TimelineSpan& s : res.timeline) {
    if (!first) os << ",\n";
    first = false;
    // Times in microseconds, as the trace format expects.
    os << "  {\"name\": \"" << (s.backward ? "B" : "F") << "(mb=" << s.mb
       << ",pos=" << s.pos << ")\", \"cat\": \""
       << (s.backward ? "backward" : "forward") << "\", \"ph\": \"X\", \"ts\": "
       << s.start * 1e6 << ", \"dur\": " << (s.end - s.start) * 1e6
       << ", \"pid\": 0, \"tid\": " << s.device << ", \"args\": {\"mb\": "
       << s.mb << ", \"pos\": " << s.pos << "}}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace hanayo::sim
