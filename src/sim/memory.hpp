#pragma once
// Static (weight-state) memory accounting per device.

#include <vector>

#include "schedule/placement.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::sim {

/// Bytes of resident weight state per pipeline rank:
///   sum over the device's chunks of stage weight bytes, times
///   `state_factor` (weights + grads + optimizer momentum = 3.0 default).
/// For Chimera this naturally doubles, because each device owns two
/// replicas' chunks — the paper's 2x Mw.
std::vector<double> device_weight_bytes(const schedule::Placement& pl,
                                        const PipelineCosts& costs,
                                        double state_factor);

}  // namespace hanayo::sim
