#include "sim/event_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/memory.hpp"

namespace hanayo::sim {

using schedule::Action;
using schedule::DeviceScript;
using schedule::Op;
using schedule::Schedule;

namespace {

/// Key for message timestamps: (is_grad, mb, producing pos).
struct MsgKey {
  int grad;
  int mb;
  int pos;
  auto operator<=>(const MsgKey&) const = default;
};

}  // namespace

SimResult simulate(const Schedule& sched, const PipelineCosts& costs,
                   const Cluster& cluster, const SimOptions& opt) {
  const int P = sched.P;
  const int S = sched.placement.stages();
  if (static_cast<int>(costs.fwd_s.size()) != S) {
    throw std::invalid_argument("simulate: costs stage count mismatch");
  }
  DeviceMap dm = opt.devmap;
  if (dm.P == 0) dm.P = P;

  std::vector<double> clock(static_cast<size_t>(P), 0.0);
  std::vector<double> busy(static_cast<size_t>(P), 0.0);
  std::vector<size_t> pc(static_cast<size_t>(P), 0);

  // Dataflow timestamps.
  std::map<MsgKey, double> arrival;                      // cross-device messages
  std::map<std::tuple<int, int, int>, double> fwd_out;   // (dev, mb, pos) -> t
  std::map<std::tuple<int, int, int>, double> fwd_in;    // received activations
  std::map<std::tuple<int, int, int>, double> grad_out;  // produced input-grads
  std::map<std::tuple<int, int, int>, double> grad_in;   // received output-grads
  std::map<std::pair<int, int>, double> link_free;       // (src, dst) physical

  // Memory accounting (see memory.hpp for the static part).
  std::vector<double> weight_mem = device_weight_bytes(sched.placement, costs,
                                                       opt.state_factor);
  std::vector<double> cur_mem = weight_mem;
  std::vector<double> peak_mem = weight_mem;

  std::vector<TimelineSpan> timeline;
  double comm_bytes = 0.0;

  const auto send = [&](int src_rank, int dst_rank, double ready, double bytes,
                        MsgKey key) {
    const int ps = dm.physical(src_rank);
    const int pd = dm.physical(dst_rank);
    double& lf = link_free[{ps, pd}];
    const double start = std::max(ready, lf);
    const double dur = cluster.transfer_time(ps, pd, bytes);
    lf = start + dur;
    arrival[key] = start + dur;
    comm_bytes += bytes;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (const DeviceScript& ds : sched.scripts) {
      const int d = ds.device;
      auto& i = pc[static_cast<size_t>(d)];
      while (i < ds.actions.size()) {
        const Action& a = ds.actions[i];
        bool can = false;
        switch (a.op) {
          case Op::LoadInput:
            fwd_in[{d, a.mb, -1}] = clock[static_cast<size_t>(d)];
            can = true;
            break;
          case Op::Forward: {
            double ready;
            bool have = false;
            if (a.pos == 0) {
              const auto it = fwd_in.find({d, a.mb, -1});
              have = it != fwd_in.end();
              ready = have ? it->second : 0.0;
            } else if (auto it = fwd_out.find({d, a.mb, a.pos - 1}); it != fwd_out.end()) {
              have = true;
              ready = it->second;  // produced locally (wave turn)
            } else if (auto it2 = fwd_in.find({d, a.mb, a.pos - 1}); it2 != fwd_in.end()) {
              have = true;
              ready = it2->second;  // received
            } else {
              ready = 0.0;
            }
            if (!have) break;
            const double start = std::max(clock[static_cast<size_t>(d)], ready);
            const double cost = costs.fwd_s[static_cast<size_t>(a.pos)];
            clock[static_cast<size_t>(d)] = start + cost;
            busy[static_cast<size_t>(d)] += cost;
            fwd_out[{d, a.mb, a.pos}] = start + cost;
            if (opt.record_timeline) {
              timeline.push_back(TimelineSpan{d, a.mb, a.pos, false, start, start + cost});
            }
            cur_mem[static_cast<size_t>(d)] += costs.act_bytes[static_cast<size_t>(a.pos)];
            peak_mem[static_cast<size_t>(d)] = std::max(peak_mem[static_cast<size_t>(d)], cur_mem[static_cast<size_t>(d)]);
            can = true;
            break;
          }
          case Op::SendAct: {
            const auto it = fwd_out.find({d, a.mb, a.pos});
            if (it == fwd_out.end()) break;
            send(d, a.peer, it->second, costs.boundary_bytes[static_cast<size_t>(a.pos)],
                 MsgKey{0, a.mb, a.pos});
            can = true;
            break;
          }
          case Op::RecvAct: {
            const auto it = arrival.find(MsgKey{0, a.mb, a.pos - 1});
            if (it == arrival.end()) break;
            fwd_in[{d, a.mb, a.pos - 1}] = it->second;
            can = true;
            break;
          }
          case Op::Backward: {
            const auto fit = fwd_out.find({d, a.mb, a.pos});
            if (fit == fwd_out.end()) break;
            double gready = fit->second;  // last position: loss is local
            if (a.pos < S - 1) {
              bool have = false;
              if (auto it = grad_out.find({d, a.mb, a.pos + 1}); it != grad_out.end()) {
                gready = std::max(gready, it->second);
                have = true;
              } else if (auto it2 = grad_in.find({d, a.mb, a.pos + 1}); it2 != grad_in.end()) {
                gready = std::max(gready, it2->second);
                have = true;
              }
              if (!have) break;
            }
            const double start = std::max(clock[static_cast<size_t>(d)], gready);
            const double cost = costs.bwd_s[static_cast<size_t>(a.pos)];
            clock[static_cast<size_t>(d)] = start + cost;
            busy[static_cast<size_t>(d)] += cost;
            grad_out[{d, a.mb, a.pos}] = start + cost;
            if (opt.record_timeline) {
              timeline.push_back(TimelineSpan{d, a.mb, a.pos, true, start, start + cost});
            }
            cur_mem[static_cast<size_t>(d)] -= costs.act_bytes[static_cast<size_t>(a.pos)];
            can = true;
            break;
          }
          case Op::SendGrad: {
            const auto it = grad_out.find({d, a.mb, a.pos});
            if (it == grad_out.end()) break;
            send(d, a.peer, it->second, costs.boundary_bytes[static_cast<size_t>(a.pos - 1)],
                 MsgKey{1, a.mb, a.pos});
            can = true;
            break;
          }
          case Op::RecvGrad: {
            const auto it = arrival.find(MsgKey{1, a.mb, a.pos + 1});
            if (it == arrival.end()) break;
            grad_in[{d, a.mb, a.pos + 1}] = it->second;
            can = true;
            break;
          }
          case Op::Flush: {
            // Executable only when every device has nothing but Flush /
            // OptStep left (synchronous pipeline flush).
            bool all_done = true;
            for (const DeviceScript& other : sched.scripts) {
              const size_t j = pc[static_cast<size_t>(other.device)];
              for (size_t k = j; k < other.actions.size(); ++k) {
                const Op o = other.actions[k].op;
                if (o != Op::Flush && o != Op::OptStep) {
                  all_done = false;
                  break;
                }
              }
              if (!all_done) break;
            }
            can = all_done;
            break;
          }
          case Op::OptStep:
            can = true;
            break;
        }
        if (!can) break;
        ++i;
        progress = true;
      }
    }
  }
  for (int d = 0; d < P; ++d) {
    if (pc[static_cast<size_t>(d)] != sched.scripts[static_cast<size_t>(d)].actions.size()) {
      throw std::logic_error("simulate: schedule deadlocked (validate first)");
    }
  }

  SimResult res;
  res.timeline = std::move(timeline);
  res.busy = busy;
  res.peak_mem_bytes = peak_mem;
  res.weight_mem_bytes = weight_mem;
  res.comm_bytes = comm_bytes;
  double makespan = 0.0;
  for (double t : clock) makespan = std::max(makespan, t);

  // Data-parallel gradient allreduce at flush: ring allreduce of this
  // device's weight gradients across the D replicas, over the slowest link
  // of the replica group.
  if (opt.dp > 1) {
    double worst = 0.0;
    for (int d = 0; d < P; ++d) {
      // Gradient volume = weight bytes (one copy, not the state factor).
      const double grad_bytes = weight_mem[static_cast<size_t>(d)] / opt.state_factor;
      double slowest_bw = 1e30;
      double lat = 0.0;
      for (int r = 0; r + 1 < opt.dp; ++r) {
        const int pa = r * P + d;
        const int pb = (r + 1) * P + d;
        if (pb >= cluster.devices) continue;
        slowest_bw = std::min(slowest_bw, cluster.bandwidth(pa, pb));
        lat = std::max(lat, cluster.lat(pa, pb));
      }
      if (slowest_bw < 1e30) {
        const double t = 2.0 * (opt.dp - 1) / static_cast<double>(opt.dp) *
                             grad_bytes / slowest_bw +
                         lat * opt.dp;
        worst = std::max(worst, t);
      }
    }
    makespan += worst;
  }

  res.makespan = makespan;
  double total_busy = 0.0;
  for (double b : busy) total_busy += b;
  res.bubble_ratio = makespan > 0.0 ? 1.0 - total_busy / (P * makespan) : 0.0;
  for (double m : peak_mem) {
    if (m > cluster.mem_bytes) res.oom = true;
  }
  return res;
}

}  // namespace hanayo::sim
