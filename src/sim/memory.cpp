#include "sim/memory.hpp"

namespace hanayo::sim {

std::vector<double> device_weight_bytes(const schedule::Placement& pl,
                                        const PipelineCosts& costs,
                                        double state_factor) {
  std::vector<double> out(static_cast<size_t>(pl.devices()), 0.0);
  for (int d = 0; d < pl.devices(); ++d) {
    for (int c = 0; c < pl.chunks_per_device(); ++c) {
      const int st = pl.stage_of(d, c);
      if (st >= 0) {
        out[static_cast<size_t>(d)] += costs.weight_bytes[static_cast<size_t>(st)] * state_factor;
      }
    }
  }
  return out;
}

}  // namespace hanayo::sim
