#include "sim/cost_model.hpp"

#include <stdexcept>

namespace hanayo::sim {

double PipelineCosts::total_fwd() const {
  double s = 0.0;
  for (double x : fwd_s) s += x;
  return s;
}

double PipelineCosts::total_bwd() const {
  double s = 0.0;
  for (double x : bwd_s) s += x;
  return s;
}

PipelineCosts compute_costs(const model::ModelConfig& cfg, int stages,
                            int mb_sequences, const Cluster& cluster,
                            bool recompute, double bwd_ratio) {
  if (mb_sequences < 1) throw std::invalid_argument("compute_costs: mb_sequences < 1");
  const auto descs = cfg.layer_descs();
  const int64_t tokens = static_cast<int64_t>(mb_sequences) * cfg.seq;
  const auto ranges = model::partition_layers(descs, stages, tokens);

  PipelineCosts pc;
  pc.fwd_s.reserve(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const model::StageStats st = model::stage_stats(descs, ranges[static_cast<size_t>(s)], tokens);
    const double f = st.fwd_flops / cluster.flops_per_s;
    pc.fwd_s.push_back(f);
    // With recomputation the backward re-runs the stage forward first.
    pc.bwd_s.push_back(f * bwd_ratio + (recompute ? f : 0.0));
    pc.weight_bytes.push_back(static_cast<double>(st.param_bytes));
    if (recompute) {
      // Only the stage input (one boundary activation) stays resident.
      pc.act_bytes.push_back(static_cast<double>(tokens * cfg.hidden * 2));
    } else {
      pc.act_bytes.push_back(static_cast<double>(st.activation_bytes));
    }
    if (s + 1 < stages) {
      pc.boundary_bytes.push_back(static_cast<double>(st.output_bytes));
    }
  }
  return pc;
}

PipelineCosts infer_costs(const model::ModelConfig& cfg, int stages,
                          int mb_sequences, int64_t new_tokens,
                          int64_t context_tokens, const Cluster& cluster,
                          double kv_bytes_per_elem, int64_t kv_page_tokens,
                          double fwd_scale) {
  if (mb_sequences < 1 || new_tokens < 1 || context_tokens < new_tokens) {
    throw std::invalid_argument("infer_costs: bad token counts");
  }
  if (kv_bytes_per_elem <= 0.0) {
    throw std::invalid_argument("infer_costs: kv_bytes_per_elem <= 0");
  }
  if (kv_page_tokens < 0) {
    throw std::invalid_argument("infer_costs: kv_page_tokens < 0");
  }
  if (!(fwd_scale > 0.0)) {
    throw std::invalid_argument("infer_costs: fwd_scale <= 0");
  }
  // Partition exactly like the serving runtime (and the trainer): stage
  // boundaries are chosen for full-sequence balance, not per-pass balance.
  const auto descs = cfg.layer_descs();
  const int64_t full_tokens = static_cast<int64_t>(mb_sequences) * cfg.seq;
  const auto ranges = model::partition_layers(descs, stages, full_tokens);

  // Cost each stage with the pass's shape: `tokens` fresh rows whose
  // attention term spans the cached context.
  auto pass_descs = descs;
  for (auto& d : pass_descs) d.seq = context_tokens;
  const int64_t tokens = static_cast<int64_t>(mb_sequences) * new_tokens;
  // Paged caches hold whole pages: a sequence's resident rows round up to
  // the page grid, so the tail page is charged even when partially filled.
  int64_t kv_rows = new_tokens;
  if (kv_page_tokens > 0) {
    kv_rows = (new_tokens + kv_page_tokens - 1) / kv_page_tokens *
              kv_page_tokens;
  }
  const int64_t kv_tokens = static_cast<int64_t>(mb_sequences) * kv_rows;

  PipelineCosts pc;
  pc.fwd_s.reserve(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const model::StageRange& r = ranges[static_cast<size_t>(s)];
    double flops = 0.0;
    double kv_bytes = 0.0;
    for (int i = r.begin; i < r.end; ++i) {
      const model::LayerDesc& d = pass_descs[static_cast<size_t>(i)];
      flops += d.fwd_flops(tokens);
      if (d.type == model::LayerDesc::Type::Block ||
          d.type == model::LayerDesc::Type::AttnHalf) {
        kv_bytes +=
            2.0 * static_cast<double>(kv_tokens * d.hidden) * kv_bytes_per_elem;
      }
    }
    const model::StageStats st =
        model::stage_stats(descs, r, full_tokens);
    pc.fwd_s.push_back(flops / cluster.flops_per_s * fwd_scale);
    pc.bwd_s.push_back(pc.fwd_s.back() * kBwdFwdRatio);
    pc.weight_bytes.push_back(static_cast<double>(st.param_bytes));
    pc.act_bytes.push_back(kv_bytes);
    if (s + 1 < stages) {
      // fp32 activations of the new tokens cross the boundary.
      pc.boundary_bytes.push_back(
          static_cast<double>(tokens * cfg.hidden * 4));
    }
  }
  return pc;
}

}  // namespace hanayo::sim
