#include "sim/cost_model.hpp"

#include <stdexcept>

namespace hanayo::sim {

double PipelineCosts::total_fwd() const {
  double s = 0.0;
  for (double x : fwd_s) s += x;
  return s;
}

double PipelineCosts::total_bwd() const {
  double s = 0.0;
  for (double x : bwd_s) s += x;
  return s;
}

PipelineCosts compute_costs(const model::ModelConfig& cfg, int stages,
                            int mb_sequences, const Cluster& cluster,
                            bool recompute) {
  if (mb_sequences < 1) throw std::invalid_argument("compute_costs: mb_sequences < 1");
  const auto descs = cfg.layer_descs();
  const int64_t tokens = static_cast<int64_t>(mb_sequences) * cfg.seq;
  const auto ranges = model::partition_layers(descs, stages, tokens);

  PipelineCosts pc;
  pc.fwd_s.reserve(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const model::StageStats st = model::stage_stats(descs, ranges[static_cast<size_t>(s)], tokens);
    const double f = st.fwd_flops / cluster.flops_per_s;
    pc.fwd_s.push_back(f);
    // With recomputation the backward re-runs the stage forward first.
    pc.bwd_s.push_back(f * kBwdFwdRatio + (recompute ? f : 0.0));
    pc.weight_bytes.push_back(static_cast<double>(st.param_bytes));
    if (recompute) {
      // Only the stage input (one boundary activation) stays resident.
      pc.act_bytes.push_back(static_cast<double>(tokens * cfg.hidden * 2));
    } else {
      pc.act_bytes.push_back(static_cast<double>(st.activation_bytes));
    }
    if (s + 1 < stages) {
      pc.boundary_bytes.push_back(static_cast<double>(st.output_bytes));
    }
  }
  return pc;
}

}  // namespace hanayo::sim
