#include "sim/cluster.hpp"

#include <stdexcept>

namespace hanayo::sim {

namespace {
constexpr double kGB = 1e9;

Cluster base(std::string name, int n, double flops, double mem) {
  Cluster c;
  c.name = std::move(name);
  c.devices = n;
  c.flops_per_s = flops;
  c.mem_bytes = mem;
  c.bw.assign(static_cast<size_t>(n * n), 0.0);
  c.latency.assign(static_cast<size_t>(n * n), 0.0);
  return c;
}

void set_link(Cluster& c, int a, int b, double bw, double lat) {
  c.bw[static_cast<size_t>(a * c.devices + b)] = bw;
  c.bw[static_cast<size_t>(b * c.devices + a)] = bw;
  c.latency[static_cast<size_t>(a * c.devices + b)] = lat;
  c.latency[static_cast<size_t>(b * c.devices + a)] = lat;
}
}  // namespace

double Cluster::transfer_time(int src, int dst, double bytes) const {
  if (src == dst) return 0.0;
  const double b = bandwidth(src, dst);
  if (b <= 0.0) throw std::logic_error("transfer over zero-bandwidth link");
  return lat(src, dst) + bytes / b;
}

Cluster Cluster::tacc(int n) {
  // A100-40GB; effective ~95 TFLOP/s mixed precision; 3 GPUs per node on
  // PCIe (~22 GB/s effective), InfiniBand between nodes (~11 GB/s effective).
  Cluster c = base("TACC", n, 95e12, 40.0 * kGB);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const bool same_node = (a / 3) == (b / 3);
      if (same_node) {
        set_link(c, a, b, 22.0 * kGB, 4e-6);
      } else {
        set_link(c, a, b, 11.0 * kGB, 9e-6);
      }
    }
  }
  return c;
}

Cluster Cluster::pc() {
  // 8x A100-80GB, NVLink only inside pairs (0,1),(2,3),(4,5),(6,7)
  // (~230 GB/s effective), PCIe elsewhere.
  Cluster c = base("PC", 8, 95e12, 80.0 * kGB);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      if (a / 2 == b / 2) {
        set_link(c, a, b, 230.0 * kGB, 2e-6);
      } else {
        set_link(c, a, b, 22.0 * kGB, 4e-6);
      }
    }
  }
  return c;
}

Cluster Cluster::fc() {
  // 8x A100-80GB fully connected over NVSwitch.
  Cluster c = base("FC", 8, 95e12, 80.0 * kGB);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) set_link(c, a, b, 230.0 * kGB, 2e-6);
  }
  return c;
}

Cluster Cluster::tc() {
  // 8x V100-32GB, DGX-1-style hybrid cube-mesh: NVLink between hypercube
  // neighbours plus the two 2-hop ring links; PCIe otherwise.
  Cluster c = base("TC", 8, 28e12, 32.0 * kGB);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      const int diff = a ^ b;
      const bool nvlink = (diff == 1 || diff == 2 || diff == 4);
      if (nvlink) {
        set_link(c, a, b, 45.0 * kGB, 3e-6);
      } else {
        set_link(c, a, b, 14.0 * kGB, 5e-6);
      }
    }
  }
  return c;
}

Cluster Cluster::uniform(int n, double flops, double mem, double bw_bytes,
                         double lat) {
  Cluster c = base("uniform", n, flops, mem);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) set_link(c, a, b, bw_bytes, lat);
  }
  return c;
}

}  // namespace hanayo::sim
