#pragma once
// Translates (model, partition, cluster) into per-action costs for the
// event simulator: T_F / T_B per stage and per-boundary transfer volumes —
// the quantities the paper's performance model (§3.4) is written in.

#include <vector>

#include "model/partition.hpp"
#include "schedule/actions.hpp"
#include "sim/cluster.hpp"

namespace hanayo::sim {

struct PipelineCosts {
  /// Per model-stage forward/backward compute seconds (one micro-batch).
  std::vector<double> fwd_s;
  std::vector<double> bwd_s;
  /// Bytes of the activation crossing boundary pos -> pos+1 (index pos;
  /// size stages-1). Gradients are the same size in the reverse direction.
  std::vector<double> boundary_bytes;
  /// Per-stage weight bytes and per-micro-batch saved-activation bytes.
  std::vector<double> weight_bytes;
  std::vector<double> act_bytes;

  double total_fwd() const;
  double total_bwd() const;
};

/// Ratio of backward to forward compute cost. The paper draws and assumes
/// T_B = 2 T_F throughout.
inline constexpr double kBwdFwdRatio = 2.0;

/// Builds stage costs for a model partitioned into `stages` stages with
/// micro-batches of `mb_sequences` sequences. With `recompute` (activation
/// checkpointing) each stage saves only its input between forward and
/// backward, and the backward pays an extra forward. `bwd_ratio` overrides
/// the paper's drawn T_B = 2 T_F with a measured ratio (perf::calibrate).
PipelineCosts compute_costs(const model::ModelConfig& cfg, int stages,
                            int mb_sequences, const Cluster& cluster,
                            bool recompute = false,
                            double bwd_ratio = kBwdFwdRatio);

/// Forward-only (serving) stage costs for one pipeline pass. A micro-batch
/// carries `mb_sequences` sequences of `new_tokens` fresh tokens each
/// (prompt length for prefill, 1 for a decode step), attending over a
/// KV-cache context of `context_tokens`. Only the F-chain is costed —
/// `bwd_s` is filled with the usual ratio for completeness but forward-only
/// schedules never execute it; `act_bytes` accounts the K/V rows each stage
/// appends per micro-batch at `kv_bytes_per_elem` bytes per element (4 for
/// fp32 caches, 2 when InferConfig::kv_fp16 stores them in half precision),
/// and boundaries carry fp32 activations of the new tokens only.
/// `kv_page_tokens` > 0 prices a paged cache (runtime/kv_store.hpp): each
/// sequence's K/V rows round up to whole pages, so partially filled tail
/// pages are charged like the allocator actually holds them; 0 keeps the
/// exact contiguous-slot accounting. `fwd_scale` multiplies the forward
/// compute seconds: the cluster's rate is calibrated from a *training*
/// forward, and a measured serving calibration
/// (perf::ServingCalibration's prefill/decode rate scales) corrects the
/// pass to the forward-only rate this machine actually runs at. 1 keeps
/// the costs bit-identical to the uncalibrated model.
PipelineCosts infer_costs(const model::ModelConfig& cfg, int stages,
                          int mb_sequences, int64_t new_tokens,
                          int64_t context_tokens, const Cluster& cluster,
                          double kv_bytes_per_elem = 4.0,
                          int64_t kv_page_tokens = 0,
                          double fwd_scale = 1.0);

/// Maps pipeline rank -> physical device id. `replica` selects the block of
/// the cluster used by one data-parallel replica (replica r uses devices
/// [r*P, (r+1)*P)).
struct DeviceMap {
  int P = 0;
  int replica = 0;
  int physical(int pipeline_rank) const { return replica * P + pipeline_rank; }
};

}  // namespace hanayo::sim
