#pragma once
// Discrete-event execution of a schedule against a cluster cost model.
//
// Each device interprets its action list sequentially; sends are
// asynchronous (they occupy the link, not the device — the paper's
// computation/communication overlap via prefetching); receives transfer a
// timestamp, and the wait — if any — is paid by the consuming compute
// action. The result is the iteration makespan, per-device busy time (hence
// bubble ratio), and the peak-memory trace used for Fig. 8 and the OOM
// checks of Figs. 10-12.

#include <vector>

#include "schedule/actions.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::sim {

struct SimOptions {
  /// Data-parallel replica count; adds a gradient allreduce at flush.
  int dp = 1;
  /// Bytes of weight state resident per weight byte (weights + grads +
  /// optimizer momentum).
  double state_factor = 3.0;
  /// Map from pipeline rank to physical device.
  DeviceMap devmap;
  /// Record per-compute-op spans into SimResult::timeline (for the gallery
  /// renderer and the Chrome-trace exporter).
  bool record_timeline = false;
};

/// One executed compute span in the simulated timeline.
struct TimelineSpan {
  int device = 0;
  int mb = 0;
  int pos = 0;
  bool backward = false;
  double start = 0.0;
  double end = 0.0;
};

struct SimResult {
  double makespan = 0.0;                 ///< seconds per iteration
  std::vector<double> busy;              ///< per pipeline rank
  std::vector<double> peak_mem_bytes;    ///< per pipeline rank
  std::vector<double> weight_mem_bytes;  ///< static part of the above
  double bubble_ratio = 0.0;             ///< 1 - sum(busy)/(P*makespan)
  double comm_bytes = 0.0;               ///< total P2P payload
  bool oom = false;                      ///< any device over capacity
  std::vector<TimelineSpan> timeline;    ///< filled when record_timeline

  double throughput_seq_per_s(int batch_sequences) const {
    return makespan > 0.0 ? batch_sequences / makespan : 0.0;
  }

  /// Summed busy seconds across all pipeline ranks — the serial compute a
  /// host with fewer cores than workers cannot overlap. The serving
  /// calibration's oversubscription bound (perf::ServingCalibration) prices
  /// a pass's wall as at least this sum divided by the cores available.
  double total_busy() const {
    double s = 0.0;
    for (double b : busy) s += b;
    return s;
  }
};

/// Runs the simulation. `costs` must have been built with the same stage
/// count as `sched.placement.stages()`.
SimResult simulate(const schedule::Schedule& sched, const PipelineCosts& costs,
                   const Cluster& cluster, const SimOptions& opt = {});

}  // namespace hanayo::sim
