#pragma once
// Timeline exporters: render a simulated schedule as an ASCII chart (the
// paper's Fig. 3 style) or as a Chrome-trace JSON (`chrome://tracing`,
// Perfetto) for interactive inspection.

#include <string>

#include "sim/event_sim.hpp"

namespace hanayo::sim {

/// ASCII rendering of a recorded timeline: one row per device, digits for
/// forward slots, letters for backward slots, '.' for idle. `slot` is the
/// wall-time width of one character (pick the forward stage time).
std::string ascii_timeline(const SimResult& res, int devices, double slot);

/// Chrome-trace (about://tracing) JSON of the recorded timeline, one track
/// per device, with micro-batch/position metadata on each span.
std::string chrome_trace_json(const SimResult& res);

}  // namespace hanayo::sim
