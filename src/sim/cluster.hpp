#pragma once
// Models of the paper's four evaluation clusters (§5):
//   TACC — Lonestar6, A100-40GB, 3 GPUs/node, no NVLink, IB between nodes
//   PC   — local server, 8x A100-80GB, NVLink between pairs (0,1),(2,3),...
//   FC   — local server, 8x A100-80GB, fully connected NVLink
//   TC   — Tencent GN10Xp, 8x V100-32GB, DGX-1-style NVLink mesh
//
// A cluster is a set of devices with an effective compute rate plus a
// directed bandwidth/latency matrix. Values are calibrated to the public
// hardware specs (effective, not peak); the reproduction target is the
// *relative* behaviour of schedules across interconnect regimes, not
// absolute TFLOP/s.

#include <cstdint>
#include <string>
#include <vector>

namespace hanayo::sim {

struct Cluster {
  std::string name;
  int devices = 0;
  double flops_per_s = 0.0;    ///< effective per-device compute rate
  double mem_bytes = 0.0;      ///< per-device memory capacity
  std::vector<double> bw;      ///< [src*devices+dst] bytes/s; 0 on diagonal
  std::vector<double> latency; ///< [src*devices+dst] seconds

  double bandwidth(int src, int dst) const { return bw[static_cast<size_t>(src * devices + dst)]; }
  double lat(int src, int dst) const { return latency[static_cast<size_t>(src * devices + dst)]; }

  /// Transfer time for `bytes` between two devices (0 if src == dst).
  double transfer_time(int src, int dst, double bytes) const;

  /// TACC Lonestar6 model with n devices (3 per node).
  static Cluster tacc(int n);
  /// Local 8-GPU A100 server, NVLink in pairs.
  static Cluster pc();
  /// Local 8-GPU A100 server, full NVLink.
  static Cluster fc();
  /// Tencent cloud 8-GPU V100 server (DGX-1-like hybrid mesh).
  static Cluster tc();
  /// Homogeneous cluster for tests: every link `bw_bytes`/`lat` s.
  static Cluster uniform(int n, double flops, double mem, double bw_bytes,
                         double lat);
};

}  // namespace hanayo::sim
