#include "api/session.hpp"

#include <stdexcept>

#include "tensor/parallel.hpp"

namespace hanayo::api {

Session::Builder Session::builder() { return Builder(); }

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)), backend_(make_backend(cfg_)) {}

StepReport Session::step(const runtime::Batch& batch) {
  // The kernel pool is process-global; apply this session's resolved
  // intra-op setting for the duration of the step and restore it after, so
  // interleaved sessions (and non-Session kernel users, which keep the
  // conservative default) never inherit another configuration. Results are
  // thread-count independent, so this only affects performance, never
  // numerics.
  tensor::IntraOpScope scope(cfg_.effective_intra_op_threads());
  StepReport r = backend_->step(batch, static_cast<int>(steps_.size()));
  steps_.push_back(r);
  return r;
}

RunReport Session::run(const runtime::Batch& batch, int steps) {
  tensor::IntraOpScope scope(cfg_.effective_intra_op_threads());
  const std::vector<StepReport> reports =
      backend_->run(batch, steps, static_cast<int>(steps_.size()));
  steps_.insert(steps_.end(), reports.begin(), reports.end());
  return report();
}

RunReport Session::report() const {
  RunReport rep;
  rep.backend = backend_->kind();
  rep.steps = steps_;
  backend_->finalize(rep);
  return rep;
}

perf::Candidate Session::predict() const {
  return perf::evaluate(cfg_.model, cfg_.effective_cluster(), cfg_.sched.algo,
                        cfg_.dp, cfg_.sched.P, cfg_.effective_W(),
                        cfg_.sched.B, cfg_.mb_sequences,
                        cfg_.calibration ? &*cfg_.calibration : nullptr);
}

}  // namespace hanayo::api
