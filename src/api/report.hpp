#pragma once
// Structured results shared by every Session backend. One vocabulary
// replaces the scattered per-runtime accessors (Trainer::last_timeline,
// peak_cache_bytes, AsyncTrainer::last_stats, simulate()'s SimResult):
// whatever executes a step — worker threads, the sequential reference, or
// the discrete-event simulator — reports through StepReport / RunReport.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "perf/planner.hpp"
#include "runtime/infer.hpp"
#include "runtime/worker.hpp"
#include "sim/event_sim.hpp"

namespace hanayo::api {

/// Which engine executes the session's schedule.
enum class BackendKind {
  Threads,    ///< multi-threaded pipeline workers (runtime::Trainer)
  Reference,  ///< single-process sequential ground truth (SequentialEngine)
  Sim,        ///< discrete-event cost-model simulation (sim::simulate)
  Async,      ///< asynchronous 1F1B threads, no flush (runtime::AsyncTrainer)
};

const char* backend_name(BackendKind kind);

/// Result of one training step on any backend.
struct StepReport {
  int step = 0;          ///< 0-based index within this session
  float loss = 0.0f;     ///< global mean loss (NaN for Sim: nothing executed)
  double wall_s = 0.0;   ///< measured wall time; predicted makespan for Sim
  bool predicted = false;  ///< true when the numbers come from the simulator
};

/// Memory footprint of the last executed step. Entries are empty when a
/// backend has no such notion (e.g. stash ledgers outside Async).
struct MemoryReport {
  std::vector<int64_t> peak_cache_bytes;       ///< per pipeline rank
  std::vector<int64_t> optimizer_state_bytes;  ///< per worker, replica-major
  std::vector<int64_t> stash_bytes;            ///< async weight stash peak
  std::vector<int> stash_entries;              ///< async stashed versions
};

/// Cumulative result of a session's steps — the one result type every
/// backend produces. `candidate` echoes the configuration plus the
/// throughput/bubble/memory numbers (simulated for Sim, measured for live
/// backends), so a run renders exactly like a planner row.
struct RunReport {
  BackendKind backend = BackendKind::Threads;
  perf::Candidate candidate;
  std::vector<StepReport> steps;
  MemoryReport memory;
  /// Real compute spans per pipeline rank (replica 0); filled when the
  /// session was built with record_timeline on a Threads backend.
  std::vector<std::vector<runtime::ComputeSpan>> timeline;
  /// The raw simulation, when the backend is Sim (timeline spans included
  /// when record_timeline was set).
  std::optional<sim::SimResult> sim;

  /// Loss of the last step (NaN if no steps ran or the backend is Sim).
  float final_loss() const;
  /// Sum of the per-step wall (or predicted) seconds.
  double total_wall_s() const;
  /// One Fig. 10-style row via the same formatter as Candidate::to_string.
  std::string to_string() const;
};

/// Cumulative result of an InferenceSession — the serving analogue of
/// RunReport. Measured on the live backends; predicted (from the
/// forward-only event simulation) for Sim and for predict() on any backend.
///
/// With dp > 1 replicas, counters and seconds are *sums over replicas*
/// (seconds are busy time, not elapsed time — replicas run concurrently);
/// `replicas` keeps the per-replica breakdown, and the throughput
/// accessors divide the summed seconds by dp to recover the concurrent
/// wall-clock estimate.
struct ServeReport {
  BackendKind backend = BackendKind::Threads;
  bool predicted = false;
  bool feasible = true;     ///< stage constraints satisfied (predictions)
  /// Prediction-only memory verdict (the planner's pruning model): the
  /// most loaded device's weights + full-context KV, and whether it
  /// exceeds the cluster's per-device capacity. Measured backends leave
  /// these at their defaults (they would have failed to allocate instead).
  bool oom = false;
  double peak_mem_gb = 0.0;
  std::string note;
  int dp = 1;               ///< serving replicas the sums below span
  int64_t requests = 0;
  int64_t prompt_tokens = 0;
  int64_t generated_tokens = 0;
  int prefill_passes = 0;   ///< pipeline passes containing a prefill
  int decode_passes = 0;    ///< pure decode passes
  double prefill_s = 0.0;
  double decode_s = 0.0;
  int64_t peak_kv_bytes = 0;
  /// Paged-KV columns (all zero when InferenceConfig::paged_kv is off):
  /// pool pages allocated at report time / the run's high-water mark, and
  /// the prefix cache's admission hits / prompt tokens those hits skipped
  /// at prefill (== prefill tokens saved).
  int64_t kv_pages_in_use = 0;
  int64_t kv_pages_peak = 0;
  int64_t prefix_hits = 0;
  int64_t prefix_hit_tokens = 0;
  /// Outcome counters (see runtime::ServeStats): after a full drain,
  /// submitted == completed + rejected + cancelled + timed_out. `requests`
  /// above counts *admitted* requests; under admission control the two
  /// differ by the rejected/expired-while-queued ones.
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t timed_out = 0;
  /// Per-request latency samples of served requests (measured backends;
  /// predictions leave them empty and use the event-sim quantiles below).
  std::vector<double> ttft_samples_s;
  std::vector<double> per_token_samples_s;
  /// Load-model echo, filled by predict_serving when the config carries an
  /// offered arrival rate (`InferenceConfig::offered_req_s`): the fluid
  /// M/D/1-flavoured overload model the serving planner ranks under.
  double offered_req_s = 0.0;
  double capacity_req_s = 0.0;          ///< dp * max_batch / batch-turnaround
  double utilization = 0.0;             ///< offered / capacity
  double predicted_rejected_rate = 0.0; ///< bounded queue sheds this fraction
  double predicted_timeout_rate = 0.0;  ///< deadline expires this fraction
  /// Overload fraction that neither serves nor sheds — unbounded queue
  /// growth when no deadline/queue backstop exists
  /// (perf::LoadPrediction::backlogged_rate).
  double predicted_backlogged_rate = 0.0;
  double predicted_queue_wait_s = 0.0;  ///< steady-state mean admission wait
  /// Distributional TTFT under the offered load: queueing-wait quantile
  /// plus the prefill pass wall (perf::LoadPrediction::p50/p99_ttft_s).
  double predicted_p50_ttft_s = 0.0;
  double predicted_p99_ttft_s = 0.0;
  /// Per-replica counters (index = replica id); empty on the sequential
  /// Reference, one entry per replica on Threads and in predictions.
  /// submitted/rejected live in the totals only (admission control runs
  /// before a replica ever sees the request).
  std::vector<runtime::ServeStats> replicas;

  /// Copies the merged counters of a drain into this report (the one
  /// ServeStats -> ServeReport mapping; backends and predict_serving both
  /// go through here).
  void set_totals(const runtime::ServeStats& st);

  /// The merged counters as a ServeStats (inverse of set_totals) — what
  /// the rate accessors below feed to the shared runtime::serve_*
  /// arithmetic.
  runtime::ServeStats totals() const;

  /// Summed busy seconds across replicas (== elapsed time when dp == 1).
  double total_wall_s() const { return prefill_s + decode_s; }
  /// Elapsed-time estimate for the concurrent replicas: the slowest
  /// replica's busy seconds when the per-replica breakdown is present
  /// (robust to skewed admission — an idle replica contributes nothing),
  /// else the summed seconds divided by dp.
  double wall_estimate_s() const;
  double prefill_wall_estimate_s() const;
  /// Prompt tokens absorbed per second of (concurrent) prefill time.
  double prefill_tokens_per_s() const;
  /// Generated tokens per second over the whole run (the serving headline;
  /// scales with dp since replicas decode concurrently).
  double tokens_per_s() const;
  /// Mean decode-pass latency — the time one batch of sequences waits for
  /// its next token. A per-pass mean, so dp leaves it unchanged.
  double per_token_latency_s() const;
  /// Measured TTFT / per-request mean inter-token quantiles over the
  /// latency samples (nearest-rank ceil, runtime::quantile_nearest_rank);
  /// 0 when no samples (predictions, or nothing served).
  double p50_ttft_s() const;
  double p99_ttft_s() const;
  double p50_request_token_latency_s() const;
  double p99_request_token_latency_s() const;
  /// Prompt tokens the prefix cache kept out of prefill (paged_kv with
  /// prefix caching; 0 otherwise).
  int64_t prefill_tokens_saved() const { return prefix_hit_tokens; }
  /// Fraction of admitted prompt tokens served from cached pages, in
  /// [0, 1]; 0 when nothing was admitted.
  double prefix_hit_rate() const {
    return prompt_tokens > 0
               ? static_cast<double>(prefix_hit_tokens) /
                     static_cast<double>(prompt_tokens)
               : 0.0;
  }
  /// One-line human-readable summary.
  std::string to_string() const;
};

}  // namespace hanayo::api
