#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "api/backends_impl.hpp"
#include "model/checkpoint.hpp"

namespace hanayo::api {

ReferenceBackend::ReferenceBackend(const SessionConfig& cfg)
    : cfg_(cfg),
      engine_(cfg.model, cfg.sched.B, cfg.mb_sequences, cfg.seed, cfg.opt,
              cfg.lr, cfg.momentum) {
  if (cfg.max_grad_norm > 0.0f) engine_.set_max_grad_norm(cfg.max_grad_norm);
  if (cfg.lr_schedule) engine_.set_lr_schedule(*cfg.lr_schedule);
  if (cfg.recompute) engine_.module().set_recompute(true);
}

StepReport ReferenceBackend::step(const runtime::Batch& batch,
                                  int step_index) {
  StepReport r;
  r.step = step_index;
  const auto t0 = std::chrono::steady_clock::now();
  r.loss = engine_.train_step(batch);
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

int64_t ReferenceBackend::batch_rows() const {
  return static_cast<int64_t>(cfg_.sched.B) * cfg_.mb_sequences;
}

std::map<std::string, tensor::Tensor> ReferenceBackend::snapshot_params() {
  std::map<std::string, tensor::Tensor> out;
  for (model::Param* p : engine_.module().params()) {
    out.emplace(p->name, p->value);
  }
  return out;
}

void ReferenceBackend::save_checkpoint(const std::string& path,
                                       bool include_optimizer) {
  if (include_optimizer) {
    throw std::logic_error(
        "reference backend saves parameters only (include_optimizer is a "
        "Threads-backend feature)");
  }
  model::save_checkpoint(path, engine_.module().params());
}

void ReferenceBackend::load_checkpoint(const std::string& path) {
  model::load_checkpoint(path, engine_.module().params());
}

void ReferenceBackend::finalize(RunReport& report) const {
  report.backend = BackendKind::Reference;
  // SequentialEngine::module() is non-const; reading cached_bytes mutates
  // nothing.
  auto& engine = const_cast<runtime::SequentialEngine&>(engine_);
  report.memory.peak_cache_bytes = {engine.module().cached_bytes()};

  perf::Candidate& c = report.candidate;
  c.algo = cfg_.sched.algo;
  c.D = 1;  // the reference is one process: no data or pipeline parallelism
  c.P = 1;
  c.W = 1;
  c.B = cfg_.sched.B;
  c.mb_sequences = cfg_.mb_sequences;
  c.bubble_ratio = 0.0;  // nothing to overlap, nothing to bubble
  c.note = "measured, sequential reference";
  const double wall = report.total_wall_s();
  if (wall > 0.0 && !report.steps.empty()) {
    c.throughput_seq_s =
        static_cast<double>(report.steps.size()) * batch_rows() / wall;
  }
}

}  // namespace hanayo::api
