#include <algorithm>
#include <chrono>

#include "api/backends_impl.hpp"

namespace hanayo::api {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ThreadBackend::ThreadBackend(const SessionConfig& cfg)
    : cfg_(cfg), trainer_(cfg.trainer_config()) {}

StepReport ThreadBackend::step(const runtime::Batch& batch, int step_index) {
  StepReport r;
  r.step = step_index;
  const auto t0 = std::chrono::steady_clock::now();
  r.loss = trainer_.train_step(batch);
  r.wall_s = seconds_since(t0);
  return r;
}

void ThreadBackend::finalize(RunReport& report) const {
  report.backend = BackendKind::Threads;
  report.memory.peak_cache_bytes = trainer_.peak_cache_bytes();
  report.memory.optimizer_state_bytes = trainer_.optimizer_state_bytes();
  if (cfg_.record_timeline) report.timeline = trainer_.last_timeline();

  perf::Candidate& c = report.candidate;
  c.algo = cfg_.sched.algo;
  c.D = cfg_.dp;
  c.P = cfg_.sched.P;
  c.W = cfg_.effective_W();
  c.B = cfg_.sched.B;
  c.mb_sequences = cfg_.mb_sequences;
  c.note = "measured";
  const double wall = report.total_wall_s();
  if (wall > 0.0 && !report.steps.empty()) {
    c.throughput_seq_s =
        static_cast<double>(report.steps.size()) * trainer_.batch_rows() / wall;
  }
  int64_t peak = 0;
  for (int64_t b : report.memory.peak_cache_bytes) peak = std::max(peak, b);
  c.peak_mem_gb = static_cast<double>(peak) / 1e9;
  // Real bubble ratio needs the measured spans; only computable when the
  // session recorded a timeline.
  if (!report.timeline.empty()) {
    double busy = 0.0, makespan = 0.0;
    for (const auto& device : report.timeline) {
      for (const auto& span : device) {
        busy += span.end - span.start;
        makespan = std::max(makespan, span.end);
      }
    }
    const double denom = makespan * static_cast<double>(report.timeline.size());
    if (denom > 0.0) c.bubble_ratio = 1.0 - busy / denom;
  }
}

}  // namespace hanayo::api
