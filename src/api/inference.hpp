#pragma once
// hanayo::InferenceSession — the serving front door of the library.
//
// The paper frames wave scheduling as a universal way to express pipeline
// execution; forward-only inference is its second instantiation. The same
// builder chain that configures a training Session configures a serving
// pipeline — plus serving knobs — and underneath, the same schedule
// generator compiles forward-only wave programs that the worker runtime
// streams prefill micro-batches and KV-cache decode steps through:
//
//   auto server = hanayo::InferenceSession::builder()
//                     .model(hanayo::ModelConfig::tiny(14))
//                     .algo(hanayo::Algo::Hanayo)
//                     .pipeline(4).waves(2)
//                     .backend(hanayo::BackendKind::Threads)
//                     .max_batch(4).max_new_tokens(8)
//                     .sampling(hanayo::Sampling::TopK(8, 0.8f))
//                     .eos(2)                 // stop token id
//                     .data_parallel(2)       // dp pipeline replicas
//                     .build();
//   server.enqueue(prompt_ids);               // [t] token-id tensor
//   auto done = server.run();                 // Completion{id, tokens, stop_reason}
//   std::puts(server.report().to_string().c_str());
//   auto sla = server.predict();              // forward-only dry run
//
// Guarantees, mirroring the training side: Threads and Reference produce
// token-identical decodes under every sampling policy — greedy because the
// logits are bit-identical (KV-cache decode equals a full-prefix recompute
// on the deterministic kernels), top-k/temperature because each request
// samples from its own RNG stream split from (seed, request id), which no
// batch composition or replica assignment can shift — and predict() agrees
// exactly with the Sim backend's forward-only timeline, including the dp
// and early-stop modelling.

#include <memory>
#include <vector>

#include "api/config.hpp"
#include "api/report.hpp"
#include "api/session.hpp"
#include "perf/serve_planner.hpp"

namespace hanayo::api {

using runtime::Completion;
using runtime::TokenCallback;
using runtime::TokenEvent;

/// The pluggable serving engine behind an InferenceSession: pipelined
/// worker threads, the sequential full-prefix-recompute reference, or the
/// forward-only event simulation.
class InferBackend {
 public:
  virtual ~InferBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Queues a prompt ([t] or [1, t] token ids); returns the request id.
  /// `on_token` (optional) streams each selected token back at the pass
  /// boundary that produced it (the Sim dry run produces no tokens and
  /// never calls it). `deadline_s` > 0 is a relative per-request SLA
  /// overriding the config default.
  virtual int64_t enqueue(tensor::Tensor prompt, int max_new_tokens,
                          TokenCallback on_token = {},
                          double deadline_s = 0.0) = 0;

  /// Requests cancellation of `id`; honoured at the engine's next pass
  /// boundary (the Sim dry run ignores it). Unknown ids are a no-op.
  virtual void cancel(int64_t id) { (void)id; }

  /// Generates until the queue is empty; completions in enqueue order.
  /// (Sim predicts instead of executing: completions carry no tokens.)
  virtual std::vector<Completion> drain() = 0;

  /// The forward-only schedule for a full batch, when the engine compiles
  /// one (null for the sequential reference).
  virtual const schedule::Schedule* schedule() const { return nullptr; }

  /// Fills the serving counters (measured, or predicted for Sim).
  virtual void finalize(ServeReport& rep) const = 0;
};

/// Builds the serving engine `cfg.backend` names. Throws
/// std::invalid_argument on configurations no engine accepts (non-causal
/// models, the Async backend). Algorithm/stage feasibility follows each
/// engine's stance: the live backends throw at construction
/// (Chimera/PipeDream, infeasible stage counts), while the Sim dry run —
/// like the training Sim backend — reports them as an infeasible result.
std::unique_ptr<InferBackend> make_infer_backend(const InferenceConfig& cfg);

/// The forward-only timeline prediction for a serving configuration: per
/// replica, one full-batch prefill pass plus decode passes for the expected
/// continuation length (max_new_tokens, shortened by the geometric
/// stop-token model when stop tokens are configured), event-simulated
/// against the config's cluster and replicated over cfg.dp (replicas are
/// independent, so replication is exact). This is the single code path
/// behind InferenceSession::predict() and the Sim backend's report, which
/// is why the two agree exactly (the serving analogue of Sim ≡ evaluate).
ServeReport predict_serving(const InferenceConfig& cfg);

class InferenceSession {
 public:
  class Builder;

  /// Entry point: InferenceSession::builder().model(...)....build().
  static Builder builder();

  /// Builds and validates the configured serving engine. Throws on
  /// configurations the engine rejects.
  explicit InferenceSession(InferenceConfig cfg);

  InferenceSession(InferenceSession&&) = default;
  InferenceSession& operator=(InferenceSession&&) = default;

  /// Queues a prompt ([t] or [1, t] token-id tensor). `max_new_tokens` of 0
  /// uses the config default. `on_token` (optional) streams the request's
  /// tokens one at a time: it fires at every pass boundary with the newly
  /// selected token, in generation order (with dp > 1 replicas, callbacks
  /// of *different* requests may run concurrently from different replica
  /// threads; one request's events never do). `deadline_s` > 0 is a
  /// relative per-request SLA overriding the config default. Returns the
  /// request id — also the cancel() handle.
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0,
                  TokenCallback on_token = {}, double deadline_s = 0.0);

  /// Requests cancellation of a queued or mid-decode request (thread-safe,
  /// callable while run() executes on another thread): the sequence aborts
  /// at the next pass boundary, frees its KV slot, and completes as
  /// StopReason::Cancelled with its partial tokens.
  void cancel(int64_t id) { backend_->cancel(id); }

  /// Serves every queued request to completion (continuous batching up to
  /// max_batch concurrent streams); returns completions in enqueue order.
  std::vector<Completion> run();

  /// Cumulative serving report (predicted numbers on the Sim backend).
  ServeReport report() const;

  /// Forward-only timeline prediction for this configuration — available on
  /// every backend, no execution.
  ServeReport predict() const { return predict_serving(cfg_); }

  /// The compiled forward-only schedule, or nullptr when the engine
  /// executes none (the sequential Reference).
  const schedule::Schedule* schedule() const { return backend_->schedule(); }

  const InferenceConfig& config() const { return cfg_; }
  InferBackend& backend() { return *backend_; }

 private:
  InferenceConfig cfg_;
  std::unique_ptr<InferBackend> backend_;
};

/// Serving builder: the shared core plus serving knobs.
class InferenceSession::Builder
    : public BuilderCore<InferenceSession::Builder, InferenceConfig> {
 public:
  /// Concurrent decode streams (KV-cache slots / continuous-batch width).
  Builder& max_batch(int n) { cfg_.max_batch = n; return *this; }
  /// Default continuation cap per request.
  Builder& max_new_tokens(int n) { cfg_.max_new_tokens = n; return *this; }
  /// Token-selection policy: Sampling::Greedy() (default),
  /// Sampling::TopK(k, temperature) or Sampling::Temperature(t).
  Builder& sampling(Sampling s) { cfg_.sampling = s; return *this; }
  /// Replaces the stop-token set: any of these ids ends a sequence early.
  Builder& stop_tokens(std::vector<int64_t> ids) {
    cfg_.stop_tokens = std::move(ids);
    return *this;
  }
  /// Adds one stop token (chainable; EOS is just a stop token by convention).
  Builder& eos(int64_t id) { cfg_.stop_tokens.push_back(id); return *this; }
  /// Data-parallel serving replicas draining one shared request queue.
  Builder& data_parallel(int dp) { cfg_.dp = dp; return *this; }
  /// Half-precision KV-cache storage (see InferenceConfig::kv_fp16).
  Builder& kv_fp16(bool on = true) { cfg_.kv_fp16 = on; return *this; }
  /// Paged KV storage with prefix caching (see InferenceConfig::paged_kv):
  /// pooled fixed-size pages, page-priced admission, shared prompt-prefix
  /// pages. Decode tokens stay bitwise identical to the contiguous path.
  Builder& paged_kv(bool on = true) { cfg_.paged_kv = on; return *this; }
  /// Token rows per KV page (per attention layer; paged_kv only).
  Builder& kv_page_tokens(int n) { cfg_.kv_page_tokens = n; return *this; }
  /// Per-replica page-pool size; 0 derives the contiguous-equivalent
  /// capacity (max_batch worst-case streams always fit).
  Builder& kv_pool_pages(int64_t n) { cfg_.kv_pool_pages = n; return *this; }
  /// Cross-request prefix caching toggle (paged_kv only; default on).
  Builder& prefix_cache(bool on = true) {
    cfg_.prefix_cache = on;
    return *this;
  }
  /// Pre-size hint (MiB) for each worker's pass-lifetime tensor arena;
  /// 0 derives the reserve from model/schedule shapes. A hint, not a
  /// limit (see InferenceConfig::arena_reserve_mb).
  Builder& arena_reserve_mb(int mb) {
    cfg_.arena_reserve_mb = mb;
    return *this;
  }
  /// Nominal prompt length for predict()/Sim (see InferenceConfig).
  Builder& prompt_tokens(int64_t n) { cfg_.prompt_tokens = n; return *this; }
  /// Default per-request SLA, seconds from enqueue (0 = none); misses
  /// complete as StopReason::DeadlineExceeded within one pass.
  Builder& deadline_s(double s) { cfg_.deadline_s = s; return *this; }
  /// Bounded admission queue: `cap` of 0 derives dp * max_batch (one full
  /// turnover of the cluster's KV slots). Refused requests complete as
  /// StopReason::Rejected.
  Builder& queue(QueuePolicy policy, int cap = 0) {
    cfg_.queue_policy = policy;
    cfg_.max_queue = cap;
    return *this;
  }
  /// Offered open-loop arrival rate for predict()'s load model (req/s).
  Builder& offered_load(double req_s) {
    cfg_.offered_req_s = req_s;
    return *this;
  }
  /// Deterministic fault injection (see runtime::FaultInjection).
  Builder& fault(FaultInjection f) { cfg_.fault = f; return *this; }

  /// Self-configuration: runs the decode-aware serving planner
  /// (perf::plan_serving) over (algo, P, W, max_batch, dp) against the
  /// builder's cluster (or the target's device count lowered through the
  /// calibrated-or-default rule) and adopts the winning candidate plus the
  /// load assumptions it was scored under — so the session's predict()
  /// reproduces the planner's winning row bit-for-bit. Throws
  /// std::invalid_argument when no candidate is usable.
  Builder& auto_plan(const perf::ServeTarget& target);

  InferenceSession build() { return InferenceSession(cfg_); }
};

}  // namespace hanayo::api
