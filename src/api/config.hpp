#pragma once
// One configuration struct for every execution path. The Session builder
// fills this; each backend lowers it to its engine's native config
// (TrainerConfig, AsyncTrainerConfig, or the simulator's request), so the
// legacy structs stay as thin compatibility shims underneath.

#include <optional>

#include "api/report.hpp"
#include "model/lr_schedule.hpp"
#include "runtime/async_trainer.hpp"
#include "runtime/trainer.hpp"
#include "schedule/algorithms.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::api {

struct SessionConfig {
  model::ModelConfig model;
  schedule::ScheduleRequest sched;  ///< algo, P, B, waves, vchunks
  BackendKind backend = BackendKind::Threads;
  int dp = 1;             ///< data-parallel replicas (Threads/Sim)
  int mb_sequences = 1;   ///< sequences per micro-batch
  uint64_t seed = 1;
  runtime::OptKind opt = runtime::OptKind::Sgd;
  float lr = 0.1f;
  float momentum = 0.0f;
  int prefetch_depth = 2;
  /// Intra-op kernel threads per worker (tensor::parallel pool). 0 = auto:
  /// 1 when the backend runs dp*P worker threads of its own (so P x W
  /// inter-op workers are not multiplied by kernel threads), all hardware
  /// threads for the single-worker Reference engine. Kernel results are
  /// bit-identical for any value (deterministic row partitioning).
  int intra_op_threads = 0;
  bool recompute = false;     ///< activation recomputation on all stages
  bool zero1 = false;         ///< ZeRO-1 optimizer-state sharding
  bool fp16_comm = false;     ///< fp16 stage-boundary transfers
  float max_grad_norm = 0.0f; ///< global grad-norm clip (0 disables)
  std::optional<model::LrSchedule> lr_schedule;
  bool record_timeline = false;
  bool weight_stashing = true;  ///< Async backend: PipeDream weight stashing

  /// Cluster used by the Sim backend and by Session::predict(). Defaults to
  /// a uniform dp*P-device cluster when unset.
  std::optional<sim::Cluster> cluster;
  /// Sim backend: override the model-derived per-stage costs (the schedule
  /// gallery's normalised timelines use this).
  std::optional<sim::PipelineCosts> sim_costs;

  /// The cluster predict()/Sim fall back on: homogeneous, one device per
  /// (replica, pipeline rank).
  sim::Cluster effective_cluster() const;

  /// The intra-op thread count this config resolves to (the auto rule
  /// above applied).
  int effective_intra_op_threads() const;

  /// The W the planner's evaluator expects: chunk count for Interleaved
  /// (perf::evaluate feeds its W into both waves and vchunks), wave count
  /// for everything else.
  int effective_W() const {
    return sched.algo == schedule::Algo::Interleaved ? sched.vchunks
                                                     : sched.waves;
  }

  /// Lowerings to the legacy per-engine configs.
  runtime::TrainerConfig trainer_config() const;
  runtime::AsyncTrainerConfig async_config() const;
};

}  // namespace hanayo::api
