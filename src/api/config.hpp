#pragma once
// One configuration vocabulary for every execution path, factored along the
// task axis: `EngineConfig` is the shared core (model, schedule shape,
// engine choice, determinism and dry-run knobs) that both the training
// `SessionConfig` and the serving `InferenceConfig` extend. The builders
// fill these; each backend lowers its config to the engine's native struct
// (TrainerConfig, AsyncTrainerConfig, InferConfig, or the simulator's
// request), so the legacy structs stay as thin compatibility shims.

#include <optional>

#include "api/report.hpp"
#include "model/lr_schedule.hpp"
#include "perf/calibrate.hpp"
#include "perf/engine.hpp"
#include "runtime/async_trainer.hpp"
#include "runtime/infer.hpp"
#include "runtime/trainer.hpp"
#include "schedule/algorithms.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::api {

/// Configuration shared by every session type, training or serving.
struct EngineConfig {
  model::ModelConfig model;
  schedule::ScheduleRequest sched;  ///< algo, P, B, waves, vchunks, tf/tb
  BackendKind backend = BackendKind::Threads;
  /// Data-parallel replicas. Training: gradient-averaged replicas
  /// (Threads/Sim). Serving: independent pipeline replicas draining one
  /// shared request queue (runtime::InferenceServer).
  int dp = 1;
  int mb_sequences = 1;   ///< sequences per micro-batch
  uint64_t seed = 1;
  int prefetch_depth = 2;
  /// Intra-op kernel threads per worker (tensor::parallel pool). 0 = auto:
  /// 1 when the backend runs multiple worker threads of its own (so inter-op
  /// workers are not multiplied by kernel threads), all hardware threads for
  /// the single-worker Reference engine. Kernel results are bit-identical
  /// for any value (deterministic row partitioning).
  int intra_op_threads = 0;
  bool record_timeline = false;

  /// Cluster used by the Sim backend and by predict(). Defaults to a uniform
  /// dp*P-device cluster when unset (a calibration, when present, replaces
  /// the default with this machine's measured numbers).
  std::optional<sim::Cluster> cluster;
  /// Measured compute/transport parameters (perf::calibrate). When set, the
  /// lowered schedule requests use the *measured* backward/forward ratio for
  /// their ordering costs instead of the paper's drawn tb = 2 tf, and
  /// predict()/Sim fall back on a calibrated cluster — so the planner's cost
  /// model tracks the real kernel layer, not seed-era constants.
  std::optional<perf::Calibration> calibration;
  /// Measured + fitted serving-side coefficients
  /// (perf::calibrate_serving): forward-only rate scales, per-pass
  /// orchestration overhead and CPU-oversubscription factor. When set,
  /// predict() on an InferenceSession and plan_serving price passes with
  /// these corrections; unset (or the identity calibration) leaves every
  /// prediction bit-identical to the uncalibrated model. Training paths
  /// ignore it.
  std::optional<perf::ServingCalibration> serving_calibration;

  /// The cluster predict()/Sim fall back on: calibrated when a calibration
  /// is present, else homogeneous spec defaults; one device per
  /// (replica, pipeline rank).
  sim::Cluster effective_cluster() const;

  /// The intra-op thread count this config resolves to (the auto rule
  /// above applied).
  int effective_intra_op_threads() const;

  /// The W the planner's evaluator expects: chunk count for Interleaved
  /// (perf::evaluate feeds its W into both waves and vchunks), wave count
  /// for everything else.
  int effective_W() const {
    return sched.algo == schedule::Algo::Interleaved ? sched.vchunks
                                                     : sched.waves;
  }

  /// The schedule request engines compile: `sched` with the calibration's
  /// measured tb/tf ratio applied to the ordering costs (when present).
  schedule::ScheduleRequest effective_sched() const;
};

/// Training-session configuration (hanayo::Session).
struct SessionConfig : EngineConfig {
  runtime::OptKind opt = runtime::OptKind::Sgd;
  float lr = 0.1f;
  float momentum = 0.0f;
  bool recompute = false;     ///< activation recomputation on all stages
  bool zero1 = false;         ///< ZeRO-1 optimizer-state sharding
  bool fp16_comm = false;     ///< fp16 stage-boundary transfers
  float max_grad_norm = 0.0f; ///< global grad-norm clip (0 disables)
  std::optional<model::LrSchedule> lr_schedule;
  bool weight_stashing = true;  ///< Async backend: PipeDream weight stashing
  /// Sim backend: override the model-derived per-stage costs (the schedule
  /// gallery's normalised timelines use this).
  std::optional<sim::PipelineCosts> sim_costs;

  /// Lowerings to the legacy per-engine configs.
  runtime::TrainerConfig trainer_config() const;
  runtime::AsyncTrainerConfig async_config() const;
};

/// Token-selection policy for serving: Sampling::Greedy() (the argmax of
/// bit-identical logits — the policy the cross-backend equivalence
/// guarantee was first stated for), Sampling::TopK(k, temperature) or
/// Sampling::Temperature(t). The stochastic policies draw from a
/// per-request RNG stream split from (seed, request id), which extends the
/// token-identity guarantee to them: same seed → same tokens on Threads
/// and Reference, on any replica, in any batch composition.
using runtime::Sampling;
using runtime::StopReason;
using runtime::QueuePolicy;
using runtime::FaultInjection;

/// Serving-session configuration (hanayo::InferenceSession). `sched.B` is
/// ignored: the engine compiles one forward-only schedule per concurrent
/// batch size as the request mix changes.
struct InferenceConfig : EngineConfig {
  int max_batch = 4;        ///< concurrent decode streams (KV-cache slots)
  int max_new_tokens = 16;  ///< default continuation cap per request
  Sampling sampling;        ///< greedy / top-k/top-p / temperature
  /// Emitting any of these ids ends a sequence early (the id is recorded as
  /// the last token; the Completion says StopReason::StopToken); the KV
  /// slot frees at the next pass boundary.
  std::vector<int64_t> stop_tokens;
  /// Half-precision KV-cache storage: cached K/V panels are stored as fp16
  /// words and converted back for the attention kernels, halving
  /// slot_bytes() (decode logits change within fp16 rounding; the
  /// cross-backend token-identity guarantee still holds, because every
  /// engine quantizes identically).
  bool kv_fp16 = false;
  /// Paged KV storage with cross-request prefix caching
  /// (runtime/kv_store.hpp): per-stream K/V rows live in pooled fixed-size
  /// pages, admission is priced in pages actually needed, and requests
  /// sharing a prompt prefix reuse cached pages (skipping the shared
  /// prefill). Decode tokens stay bitwise identical to the contiguous path.
  bool paged_kv = false;
  int kv_page_tokens = 16;  ///< token rows per page, per attention layer
  /// Per-replica pool size in pages; 0 derives the contiguous-equivalent
  /// capacity (max_batch worst-case streams always fit).
  int64_t kv_pool_pages = 0;
  /// Cross-request prefix caching (only meaningful with paged_kv). Off
  /// keeps paging but makes every stream's pages private.
  bool prefix_cache = true;
  /// Nominal prompt length used by predict() and the Sim backend (the
  /// measured backends use real request lengths). Defaults to half the
  /// model's positions, clamped so prompt + continuation fits.
  std::optional<int64_t> prompt_tokens;
  /// Default per-request SLA (seconds from enqueue; 0 = none). A request
  /// that misses it — queued or mid-decode — aborts with
  /// StopReason::DeadlineExceeded within one pass of the deadline.
  double deadline_s = 0.0;
  /// Admission control for the shared request queue (backpressure under
  /// open-loop load); refused requests complete as StopReason::Rejected.
  QueuePolicy queue_policy = QueuePolicy::Unbounded;
  /// Bounded-queue capacity; 0 derives dp * max_batch (one full turnover
  /// of the cluster's KV slots — see runtime::InferConfig::max_queue).
  int max_queue = 0;
  /// Deterministic fault injection (tests/benches; see
  /// runtime::FaultInjection and the HANAYO_FAULT_SEED hook).
  FaultInjection fault;
  /// Pre-size hint for each worker's pass-lifetime tensor arena, in MiB
  /// (0 derives the reserve from the model/schedule shapes). A hint, not a
  /// limit: the arena still grows during warm-up if the estimate is short,
  /// and steady-state decode stays zero-allocation either way.
  int arena_reserve_mb = 0;
  /// Offered open-loop arrival rate (requests/s) for predict(): when > 0,
  /// predict_serving also evaluates the fluid overload model — capacity,
  /// utilization, rejection/timeout rates — against this rate, the
  /// deadline and the queue bound (the numbers plan_serving ranks under).
  double offered_req_s = 0.0;

  int64_t effective_prompt_tokens() const;

  /// Lowering to the serving runtime's native config.
  runtime::InferConfig infer_config() const;

  /// Lowering to the unified planning core's serving cell — the single
  /// definition behind predict() ≡ Sim ≡ the serving planner's rows.
  perf::ServingPoint serving_point() const;
};

/// The cluster a planning call falls back on before P/dp are fixed:
/// calibrated to this machine when a valid calibration is given, else the
/// homogeneous spec default — the same rule as EngineConfig::
/// effective_cluster, parameterised by an explicit device count.
sim::Cluster planning_cluster(int devices,
                              const std::optional<perf::Calibration>& cal);

}  // namespace hanayo::api
