#pragma once
// Internal: the four concrete engines behind api::make_backend. Not part of
// the public surface — include "api/session.hpp" instead.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "runtime/async_trainer.hpp"
#include "runtime/engine.hpp"
#include "runtime/trainer.hpp"

namespace hanayo::api {

/// Multi-threaded pipeline workers — wraps runtime::Trainer.
class ThreadBackend final : public Backend {
 public:
  explicit ThreadBackend(const SessionConfig& cfg);

  BackendKind kind() const override { return BackendKind::Threads; }
  StepReport step(const runtime::Batch& batch, int step_index) override;
  int64_t batch_rows() const override { return trainer_.batch_rows(); }
  const schedule::Schedule* schedule() const override {
    return &trainer_.schedule();
  }
  std::map<std::string, tensor::Tensor> snapshot_params() override {
    return trainer_.snapshot_params();
  }
  void save_checkpoint(const std::string& path,
                       bool include_optimizer) override {
    trainer_.save_checkpoint(path, include_optimizer);
  }
  void load_checkpoint(const std::string& path) override {
    trainer_.load_checkpoint(path);
  }
  void finalize(RunReport& report) const override;

 private:
  SessionConfig cfg_;
  runtime::Trainer trainer_;
};

/// Single-process sequential ground truth — wraps runtime::SequentialEngine.
class ReferenceBackend final : public Backend {
 public:
  explicit ReferenceBackend(const SessionConfig& cfg);

  BackendKind kind() const override { return BackendKind::Reference; }
  StepReport step(const runtime::Batch& batch, int step_index) override;
  int64_t batch_rows() const override;
  std::map<std::string, tensor::Tensor> snapshot_params() override;
  void save_checkpoint(const std::string& path,
                       bool include_optimizer) override;
  void load_checkpoint(const std::string& path) override;
  void finalize(RunReport& report) const override;

 private:
  SessionConfig cfg_;
  runtime::SequentialEngine engine_;
};

/// Discrete-event dry run — wraps sim::simulate + perf::evaluate. Steps
/// execute nothing; they report the predicted iteration makespan.
class SimBackend final : public Backend {
 public:
  explicit SimBackend(const SessionConfig& cfg);

  BackendKind kind() const override { return BackendKind::Sim; }
  StepReport step(const runtime::Batch& batch, int step_index) override;
  int64_t batch_rows() const override;
  /// Null when the configuration was infeasible (no schedule compiled).
  const schedule::Schedule* schedule() const override;
  void finalize(RunReport& report) const override;

 private:
  SessionConfig cfg_;
  schedule::Schedule sched_;
  sim::SimResult result_;
  perf::Candidate candidate_;
};

/// Asynchronous no-flush pipeline — wraps runtime::AsyncTrainer.
class AsyncBackend final : public Backend {
 public:
  explicit AsyncBackend(const SessionConfig& cfg);

  BackendKind kind() const override { return BackendKind::Async; }
  StepReport step(const runtime::Batch& batch, int step_index) override;
  std::vector<StepReport> run(const runtime::Batch& batch, int steps,
                              int first_index) override;
  int64_t batch_rows() const override { return trainer_.batch_rows(); }
  const schedule::Schedule* schedule() const override {
    return &trainer_.schedule();
  }
  std::map<std::string, tensor::Tensor> snapshot_params() override {
    return trainer_.snapshot_params();
  }
  void finalize(RunReport& report) const override;

 private:
  SessionConfig cfg_;
  runtime::AsyncTrainer trainer_;
};

}  // namespace hanayo::api
