#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "api/backends_impl.hpp"
#include "sim/cost_model.hpp"

namespace hanayo::api {

SimBackend::SimBackend(const SessionConfig& cfg) : cfg_(cfg) {
  const sim::Cluster cluster = cfg.effective_cluster();

  candidate_.algo = cfg.sched.algo;
  candidate_.D = cfg.dp;
  candidate_.P = cfg.sched.P;
  candidate_.W = cfg.effective_W();
  candidate_.B = cfg.sched.B;
  candidate_.mb_sequences = cfg.mb_sequences;

  // Feasibility gates match perf::evaluate, and — like the planner — an
  // infeasible configuration is a *result*, not an exception: the point of
  // a dry run is to find out before paying for real execution.
  if (!cfg.sim_costs) {
    if (cfg.sched.algo == schedule::Algo::Chimera &&
        (cfg.sched.P % 2 != 0 || cfg.sched.B < 2)) {
      candidate_.feasible = false;
      candidate_.note = "Chimera needs even P and B >= 2";
      return;
    }
    const int S = schedule::stages_for(cfg.sched);
    const int total_layers = static_cast<int>(cfg.model.layer_descs().size());
    if (S > total_layers) {
      candidate_.feasible = false;
      candidate_.note = "stages (" + std::to_string(S) + ") exceed layers (" +
                        std::to_string(total_layers) + ")";
      return;
    }
  }

  sched_ = schedule::make_schedule(cfg.effective_sched());
  const int S = sched_.placement.stages();
  const double bwd_ratio =
      cfg.calibration && cfg.calibration->bwd_fwd_ratio > 0
          ? cfg.calibration->bwd_fwd_ratio
          : sim::kBwdFwdRatio;
  const sim::PipelineCosts costs =
      cfg.sim_costs ? *cfg.sim_costs
                    : sim::compute_costs(cfg.model, S, cfg.mb_sequences,
                                         cluster, cfg.recompute, bwd_ratio);

  sim::SimOptions opt;
  opt.dp = cfg.dp;
  opt.devmap = sim::DeviceMap{cfg.sched.P, 0};
  opt.record_timeline = cfg.record_timeline;
  result_ = sim::simulate(sched_, costs, cluster, opt);

  // Same schedule, same costs, same simulation as perf::evaluate — which is
  // exactly why these numbers are bit-identical to a planner row (asserted
  // in tests/api/test_session.cpp) without running the simulation twice.
  candidate_.throughput_seq_s =
      result_.throughput_seq_per_s(cfg.sched.B * cfg.mb_sequences) * cfg.dp;
  candidate_.bubble_ratio = result_.bubble_ratio;
  double peak = 0.0;
  for (double x : result_.peak_mem_bytes) peak = std::max(peak, x);
  candidate_.peak_mem_gb = peak / 1e9;
  candidate_.oom = result_.oom;
}

StepReport SimBackend::step(const runtime::Batch&, int step_index) {
  StepReport r;
  r.step = step_index;
  r.loss = std::numeric_limits<float>::quiet_NaN();  // nothing executed
  r.wall_s = result_.makespan;
  r.predicted = true;
  return r;
}

const schedule::Schedule* SimBackend::schedule() const {
  // Infeasible configurations compile no schedule; hand back null so
  // Session::schedule() throws instead of exposing an empty Schedule.
  return sched_.scripts.empty() ? nullptr : &sched_;
}

int64_t SimBackend::batch_rows() const {
  return static_cast<int64_t>(cfg_.dp) * cfg_.sched.B * cfg_.mb_sequences;
}

void SimBackend::finalize(RunReport& report) const {
  report.backend = BackendKind::Sim;
  report.sim = result_;
  report.candidate = candidate_;
}

}  // namespace hanayo::api
