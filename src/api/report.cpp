#include "api/report.hpp"

#include <limits>

#include "perf/format.hpp"

namespace hanayo::api {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Threads: return "threads";
    case BackendKind::Reference: return "reference";
    case BackendKind::Sim: return "sim";
    case BackendKind::Async: return "async";
  }
  return "?";
}

float RunReport::final_loss() const {
  if (steps.empty()) return std::numeric_limits<float>::quiet_NaN();
  return steps.back().loss;
}

double RunReport::total_wall_s() const {
  double total = 0.0;
  for (const StepReport& s : steps) total += s.wall_s;
  return total;
}

std::string RunReport::to_string() const {
  perf::PerfRow row;
  row.algo = candidate.algo;
  row.D = candidate.D;
  row.P = candidate.P;
  row.W = candidate.W;
  row.B = candidate.B;
  row.mb_sequences = candidate.mb_sequences;
  row.throughput_seq_s = candidate.throughput_seq_s;
  row.bubble_ratio = candidate.bubble_ratio;
  row.peak_mem_gb = candidate.peak_mem_gb;
  row.oom = candidate.oom;
  row.feasible = candidate.feasible;
  row.note = candidate.note.empty() ? backend_name(backend) : candidate.note;
  return perf::format_row(row);
}

}  // namespace hanayo::api
