#include "api/report.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "perf/format.hpp"

namespace hanayo::api {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Threads: return "threads";
    case BackendKind::Reference: return "reference";
    case BackendKind::Sim: return "sim";
    case BackendKind::Async: return "async";
  }
  return "?";
}

float RunReport::final_loss() const {
  if (steps.empty()) return std::numeric_limits<float>::quiet_NaN();
  return steps.back().loss;
}

double RunReport::total_wall_s() const {
  double total = 0.0;
  for (const StepReport& s : steps) total += s.wall_s;
  return total;
}

std::string RunReport::to_string() const {
  perf::PerfRow row;
  row.algo = candidate.algo;
  row.D = candidate.D;
  row.P = candidate.P;
  row.W = candidate.W;
  row.B = candidate.B;
  row.mb_sequences = candidate.mb_sequences;
  row.throughput_seq_s = candidate.throughput_seq_s;
  row.bubble_ratio = candidate.bubble_ratio;
  row.peak_mem_gb = candidate.peak_mem_gb;
  row.oom = candidate.oom;
  row.feasible = candidate.feasible;
  row.note = candidate.note.empty() ? backend_name(backend) : candidate.note;
  return perf::format_row(row);
}

void ServeReport::set_totals(const runtime::ServeStats& st) {
  requests = st.requests;
  prompt_tokens = st.prompt_tokens;
  generated_tokens = st.generated_tokens;
  prefill_passes = st.prefill_passes;
  decode_passes = st.decode_passes;
  prefill_s = st.prefill_s;
  decode_s = st.decode_s;
  peak_kv_bytes = st.peak_kv_bytes;
  kv_pages_in_use = st.kv_pages_in_use;
  kv_pages_peak = st.kv_pages_peak;
  prefix_hits = st.prefix_hits;
  prefix_hit_tokens = st.prefix_hit_tokens;
  submitted = st.submitted;
  completed = st.completed;
  rejected = st.rejected;
  cancelled = st.cancelled;
  timed_out = st.timed_out;
  ttft_samples_s = st.ttft_samples_s;
  per_token_samples_s = st.per_token_samples_s;
}

runtime::ServeStats ServeReport::totals() const {
  runtime::ServeStats st;
  st.requests = requests;
  st.prompt_tokens = prompt_tokens;
  st.generated_tokens = generated_tokens;
  st.prefill_passes = prefill_passes;
  st.decode_passes = decode_passes;
  st.prefill_s = prefill_s;
  st.decode_s = decode_s;
  st.peak_kv_bytes = peak_kv_bytes;
  st.kv_pages_in_use = kv_pages_in_use;
  st.kv_pages_peak = kv_pages_peak;
  st.prefix_hits = prefix_hits;
  st.prefix_hit_tokens = prefix_hit_tokens;
  st.submitted = submitted;
  st.completed = completed;
  st.rejected = rejected;
  st.cancelled = cancelled;
  st.timed_out = timed_out;
  st.ttft_samples_s = ttft_samples_s;
  st.per_token_samples_s = per_token_samples_s;
  return st;
}

// All rate accessors delegate to the runtime::serve_* arithmetic — the
// same functions the serving planner's candidate rows use, which is what
// makes planner ≡ predict() equality structural.

double ServeReport::wall_estimate_s() const {
  return runtime::serve_wall_estimate_s(totals(), replicas, dp);
}

double ServeReport::prefill_wall_estimate_s() const {
  return runtime::serve_prefill_wall_estimate_s(totals(), replicas, dp);
}

double ServeReport::prefill_tokens_per_s() const {
  return runtime::serve_prefill_tokens_per_s(totals(), replicas, dp);
}

double ServeReport::tokens_per_s() const {
  return runtime::serve_tokens_per_s(totals(), replicas, dp);
}

double ServeReport::per_token_latency_s() const {
  return runtime::serve_per_token_latency_s(totals());
}

double ServeReport::p50_ttft_s() const {
  return runtime::quantile_nearest_rank(ttft_samples_s, 0.50);
}

double ServeReport::p99_ttft_s() const {
  return runtime::quantile_nearest_rank(ttft_samples_s, 0.99);
}

double ServeReport::p50_request_token_latency_s() const {
  return runtime::quantile_nearest_rank(per_token_samples_s, 0.50);
}

double ServeReport::p99_request_token_latency_s() const {
  return runtime::quantile_nearest_rank(per_token_samples_s, 0.99);
}

std::string ServeReport::to_string() const {
  if (!feasible) {
    return std::string("serve [") + backend_name(backend) +
           "] infeasible: " + note;
  }
  char dp_tag[24] = "";
  if (dp > 1) std::snprintf(dp_tag, sizeof(dp_tag), ", dp=%d", dp);
  char oom_tag[48] = "";
  if (oom) {
    std::snprintf(oom_tag, sizeof(oom_tag), " [OOM, peak %.2f GB]",
                  peak_mem_gb);
  }
  // SLA outcomes appear only when admission control / deadlines /
  // cancellation actually fired — the classic closed-loop line is stable.
  char sla_tag[96] = "";
  if (rejected + cancelled + timed_out > 0) {
    std::snprintf(sla_tag, sizeof(sla_tag),
                  " (%lld rejected, %lld cancelled, %lld timed out)",
                  static_cast<long long>(rejected),
                  static_cast<long long>(cancelled),
                  static_cast<long long>(timed_out));
  }
  // Paged-KV line appears only when the prefix cache actually hit — the
  // classic line (and every golden-output test around it) is stable.
  char page_tag[96] = "";
  if (prefix_hit_tokens > 0) {
    std::snprintf(page_tag, sizeof(page_tag),
                  " [prefix cache: %lld tok saved, %.0f%% hit, peak %lld pages]",
                  static_cast<long long>(prefix_hit_tokens),
                  prefix_hit_rate() * 100.0,
                  static_cast<long long>(kv_pages_peak));
  }
  char buf[500];
  std::snprintf(buf, sizeof(buf),
                "serve [%s%s%s] %lld req, %lld prompt tok @ %.0f tok/s prefill, "
                "%lld new tok @ %.0f tok/s, %.2f ms/token%s%s%s",
                backend_name(backend), dp_tag, predicted ? ", predicted" : "",
                static_cast<long long>(requests),
                static_cast<long long>(prompt_tokens), prefill_tokens_per_s(),
                static_cast<long long>(generated_tokens), tokens_per_s(),
                per_token_latency_s() * 1e3, oom_tag, sla_tag, page_tag);
  return buf;
}

}  // namespace hanayo::api
