#include <chrono>

#include "api/backends_impl.hpp"

namespace hanayo::api {

AsyncBackend::AsyncBackend(const SessionConfig& cfg)
    : cfg_(cfg), trainer_(cfg.async_config()) {}

StepReport AsyncBackend::step(const runtime::Batch& batch, int step_index) {
  return run(batch, 1, step_index).front();
}

std::vector<StepReport> AsyncBackend::run(const runtime::Batch& batch,
                                          int steps, int first_index) {
  // One continuous stream of steps * B micro-batches, so the pipeline never
  // drains between logical steps — splitting this into per-step calls would
  // reintroduce the flush the asynchronous scheme exists to remove.
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<float> losses = trainer_.train(batch, steps);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<StepReport> out;
  out.reserve(losses.size());
  for (size_t i = 0; i < losses.size(); ++i) {
    StepReport r;
    r.step = first_index + static_cast<int>(i);
    r.loss = losses[i];
    r.wall_s = wall / static_cast<double>(losses.size());
    out.push_back(r);
  }
  return out;
}

void AsyncBackend::finalize(RunReport& report) const {
  report.backend = BackendKind::Async;
  const runtime::AsyncStats& stats = trainer_.last_stats();
  report.memory.stash_bytes = stats.stash_bytes;
  report.memory.stash_entries = stats.stash_entries;

  perf::Candidate& c = report.candidate;
  c.algo = schedule::Algo::PipeDream;  // the async engine runs one schedule
  c.D = 1;
  c.P = cfg_.sched.P;
  c.W = 1;
  c.B = cfg_.sched.B;
  c.mb_sequences = cfg_.mb_sequences;
  c.note = "measured, async (no flush)";
  const double wall = report.total_wall_s();
  if (wall > 0.0 && !report.steps.empty()) {
    c.throughput_seq_s =
        static_cast<double>(report.steps.size()) * trainer_.batch_rows() /
        wall;
  }
}

}  // namespace hanayo::api
