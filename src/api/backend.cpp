#include "api/backend.hpp"

#include <stdexcept>

#include "api/backends_impl.hpp"

namespace hanayo::api {

std::vector<StepReport> Backend::run(const runtime::Batch& batch, int steps,
                                     int first_index) {
  std::vector<StepReport> out;
  out.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    out.push_back(step(batch, first_index + i));
  }
  return out;
}

std::map<std::string, tensor::Tensor> Backend::snapshot_params() {
  throw std::logic_error(std::string(backend_name(kind())) +
                         " backend holds no parameters to snapshot");
}

void Backend::save_checkpoint(const std::string&, bool) {
  throw std::logic_error(std::string(backend_name(kind())) +
                         " backend cannot save checkpoints");
}

void Backend::load_checkpoint(const std::string&) {
  throw std::logic_error(std::string(backend_name(kind())) +
                         " backend cannot load checkpoints");
}

std::unique_ptr<Backend> make_backend(const SessionConfig& cfg) {
  switch (cfg.backend) {
    case BackendKind::Threads:
      return std::make_unique<ThreadBackend>(cfg);
    case BackendKind::Reference:
      return std::make_unique<ReferenceBackend>(cfg);
    case BackendKind::Sim:
      return std::make_unique<SimBackend>(cfg);
    case BackendKind::Async:
      return std::make_unique<AsyncBackend>(cfg);
  }
  throw std::invalid_argument("unknown backend kind");
}

}  // namespace hanayo::api
