#include "api/config.hpp"

#include <algorithm>

#include "tensor/parallel.hpp"

namespace hanayo::api {

sim::Cluster planning_cluster(int devices,
                              const std::optional<perf::Calibration>& cal) {
  if (cal && cal->valid()) {
    // This machine's measured compute rate and transport fit.
    return perf::calibrated_cluster(devices, *cal);
  }
  // Homogeneous stand-in: A100-ish compute, 40 GB, PCIe-class links. The
  // paper's calibrated clusters (sim::Cluster::tacc/pc/fc/tc) are a builder
  // call away; this default just makes predict() usable out of the box.
  return sim::Cluster::uniform(devices, 100e12, 40e9, 12e9, 5e-6);
}

sim::Cluster EngineConfig::effective_cluster() const {
  if (cluster) return *cluster;
  const int devices = std::max(1, dp) * std::max(1, sched.P);
  return planning_cluster(devices, calibration);
}

int EngineConfig::effective_intra_op_threads() const {
  if (intra_op_threads > 0) return intra_op_threads;
  const bool multi_worker =
      (backend == BackendKind::Threads || backend == BackendKind::Async) &&
      std::max(1, dp) * std::max(1, sched.P) > 1;
  return multi_worker ? 1 : tensor::max_intra_op_threads();
}

schedule::ScheduleRequest EngineConfig::effective_sched() const {
  schedule::ScheduleRequest req = sched;
  if (calibration && calibration->bwd_fwd_ratio > 0) {
    req.tb = req.tf * calibration->bwd_fwd_ratio;
  }
  return req;
}

runtime::TrainerConfig SessionConfig::trainer_config() const {
  runtime::TrainerConfig tc;
  tc.model = model;
  tc.sched = effective_sched();
  tc.dp = dp;
  tc.mb_sequences = mb_sequences;
  tc.seed = seed;
  tc.opt = opt;
  tc.lr = lr;
  tc.momentum = momentum;
  tc.prefetch_depth = prefetch_depth;
  tc.recompute = recompute;
  tc.zero1 = zero1;
  tc.fp16_comm = fp16_comm;
  tc.max_grad_norm = max_grad_norm;
  tc.lr_schedule = lr_schedule;
  tc.record_timeline = record_timeline;
  return tc;
}

runtime::AsyncTrainerConfig SessionConfig::async_config() const {
  runtime::AsyncTrainerConfig ac;
  ac.model = model;
  ac.P = sched.P;
  ac.micro_batches = sched.B;
  ac.mb_sequences = mb_sequences;
  ac.seed = seed;
  ac.opt = opt;
  ac.lr = lr;
  ac.momentum = momentum;
  ac.weight_stashing = weight_stashing;
  ac.prefetch_depth = prefetch_depth;
  return ac;
}

int64_t InferenceConfig::effective_prompt_tokens() const {
  if (prompt_tokens) return *prompt_tokens;
  return perf::Engine::default_prompt_tokens(model, max_new_tokens);
}

runtime::InferConfig InferenceConfig::infer_config() const {
  runtime::InferConfig ic;
  ic.model = model;
  ic.sched = effective_sched();
  ic.dp = dp;
  ic.max_batch = max_batch;
  ic.max_new_tokens = max_new_tokens;
  ic.sampling = sampling;
  ic.stop_tokens = stop_tokens;
  ic.kv_fp16 = kv_fp16;
  ic.paged_kv = paged_kv;
  ic.kv_page_tokens = kv_page_tokens;
  ic.kv_pool_pages = kv_pool_pages;
  ic.prefix_cache = prefix_cache;
  ic.seed = seed;
  ic.prefetch_depth = prefetch_depth;
  ic.arena_reserve_mb = arena_reserve_mb;
  ic.deadline_s = deadline_s;
  ic.queue_policy = queue_policy;
  ic.max_queue = max_queue;
  ic.fault = fault;
  return ic;
}

}  // namespace hanayo::api
