#pragma once
// hanayo::Session — the training front door of the library.
//
// The paper's claim is that a single wave-scheduling framework subsumes
// GPipe/DAPPLE/Chimera-style pipelines under one performance model; the
// Session is that claim as an API. One builder configures model, schedule
// and execution engine; one result vocabulary (StepReport / RunReport)
// comes back, whether the engine is real worker threads, the sequential
// reference, the no-flush asynchronous runtime, or the discrete-event
// simulator — so any configuration can be dry-run for predicted
// throughput/memory before paying for real execution.
//
//   auto session = hanayo::Session::builder()
//                      .model(hanayo::ModelConfig::tiny(14))
//                      .algo(hanayo::Algo::Hanayo)
//                      .pipeline(4).micro_batches(8).waves(2)
//                      .backend(hanayo::BackendKind::Threads)
//                      .learning_rate(0.05f).seed(42)
//                      .build();
//   auto batch = hanayo::synthetic_batch(...);
//   auto step = session.step(batch);          // StepReport{loss, wall_s}
//   auto pred = session.predict();            // planner row, no execution
//   auto report = session.report();           // RunReport for the session
//
// The serving counterpart (hanayo::InferenceSession, api/inference.hpp)
// shares this builder core: the same model/schedule/backend chain plus
// serving knobs builds a forward-only wave pipeline with KV-cache decode.

#include <map>
#include <memory>
#include <string>

#include "api/backend.hpp"
#include "api/config.hpp"
#include "api/report.hpp"

namespace hanayo::api {

/// The chainable configuration core shared by every session builder:
/// setters for the EngineConfig fields, each returning the concrete builder
/// so training- and serving-specific setters chain freely in any order.
/// `Config` must derive from EngineConfig.
template <class Derived, class Config>
class BuilderCore {
 public:
  Derived& model(model::ModelConfig m) { cfg_.model = std::move(m); return self(); }
  Derived& algo(schedule::Algo a) { cfg_.sched.algo = a; return self(); }
  Derived& pipeline(int P) { cfg_.sched.P = P; return self(); }
  Derived& waves(int W) { cfg_.sched.waves = W; return self(); }
  Derived& vchunks(int V) { cfg_.sched.vchunks = V; return self(); }
  /// Wholesale schedule request (algo, P, B, waves, vchunks, tf, tb).
  Derived& schedule(schedule::ScheduleRequest req) { cfg_.sched = req; return self(); }
  Derived& backend(BackendKind kind) { cfg_.backend = kind; return self(); }
  Derived& mb_sequences(int n) { cfg_.mb_sequences = n; return self(); }
  Derived& seed(uint64_t s) { cfg_.seed = s; return self(); }
  Derived& prefetch_depth(int d) { cfg_.prefetch_depth = d; return self(); }
  /// Kernel threads per worker; 0 picks automatically (see EngineConfig).
  Derived& intra_op_threads(int n) { cfg_.intra_op_threads = n; return self(); }
  Derived& record_timeline(bool on = true) { cfg_.record_timeline = on; return self(); }
  Derived& cluster(sim::Cluster c) { cfg_.cluster = std::move(c); return self(); }
  /// Feed this machine's measured kernel/transport numbers (perf::calibrate)
  /// into the schedule ordering costs and the predict()/Sim cost model.
  Derived& calibration(perf::Calibration cal) { cfg_.calibration = std::move(cal); return self(); }
  /// Feed fitted serving-side coefficients (perf::calibrate_serving) into
  /// predict()/plan_serving pass pricing. Training paths ignore it.
  Derived& serving_calibration(perf::ServingCalibration sc) { cfg_.serving_calibration = std::move(sc); return self(); }

  const Config& config() const { return cfg_; }

 protected:
  Config cfg_;

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

class Session {
 public:
  class Builder;

  /// Entry point: Session::builder().model(...)....build().
  static Builder builder();

  /// Builds and validates the configured engine. Throws on configurations
  /// the engine rejects (invalid schedules, unpartitionable models, ...).
  explicit Session(SessionConfig cfg);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// One training step (for Sim: one predicted iteration).
  StepReport step(const runtime::Batch& batch);

  /// `steps` consecutive steps over the same batch; returns the cumulative
  /// session report. On the Async backend the whole span runs as one
  /// continuous micro-batch stream.
  RunReport run(const runtime::Batch& batch, int steps);

  /// Cumulative report of everything this session has executed, including
  /// backend-specific memory/timeline/simulation extras.
  RunReport report() const;

  /// Planner's verdict on this configuration (perf::evaluate against the
  /// session's cluster) — available on every backend, no execution.
  perf::Candidate predict() const;

  /// Batch rows one step consumes.
  int64_t batch_rows() const { return backend_->batch_rows(); }

  /// The compiled schedule, or nullptr when the engine executes none (the
  /// sequential Reference, or an infeasible Sim dry run).
  const schedule::Schedule* schedule() const { return backend_->schedule(); }

  /// Parameters by name (replica 0) — the cross-backend equivalence hook.
  std::map<std::string, tensor::Tensor> snapshot_params() {
    return backend_->snapshot_params();
  }

  /// Name-addressed checkpoint I/O; restores across different (P, W)
  /// session configurations.
  void save_checkpoint(const std::string& path,
                       bool include_optimizer = false) {
    backend_->save_checkpoint(path, include_optimizer);
  }
  void load_checkpoint(const std::string& path) {
    backend_->load_checkpoint(path);
  }

  const SessionConfig& config() const { return cfg_; }
  Backend& backend() { return *backend_; }

 private:
  SessionConfig cfg_;
  std::unique_ptr<Backend> backend_;
  std::vector<StepReport> steps_;
};

/// Training builder: the shared core plus optimizer/regularisation knobs.
/// Unset fields keep the SessionConfig defaults.
class Session::Builder : public BuilderCore<Session::Builder, SessionConfig> {
 public:
  Builder& micro_batches(int B) { cfg_.sched.B = B; return *this; }
  Builder& data_parallel(int dp) { cfg_.dp = dp; return *this; }
  Builder& optimizer(runtime::OptKind k) { cfg_.opt = k; return *this; }
  Builder& learning_rate(float lr) { cfg_.lr = lr; return *this; }
  Builder& momentum(float m) { cfg_.momentum = m; return *this; }
  Builder& recompute(bool on = true) { cfg_.recompute = on; return *this; }
  Builder& zero1(bool on = true) { cfg_.zero1 = on; return *this; }
  Builder& fp16_comm(bool on = true) { cfg_.fp16_comm = on; return *this; }
  Builder& max_grad_norm(float v) { cfg_.max_grad_norm = v; return *this; }
  Builder& lr_schedule(model::LrSchedule s) { cfg_.lr_schedule = std::move(s); return *this; }
  Builder& weight_stashing(bool on) { cfg_.weight_stashing = on; return *this; }
  Builder& sim_costs(sim::PipelineCosts c) { cfg_.sim_costs = std::move(c); return *this; }

  Session build() { return Session(cfg_); }
};

}  // namespace hanayo::api
