#include "api/inference.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "perf/engine.hpp"
#include "perf/serve_planner.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::api {

InferenceSession::Builder InferenceSession::builder() { return Builder(); }

InferenceSession::InferenceSession(InferenceConfig cfg)
    : cfg_(std::move(cfg)), backend_(make_infer_backend(cfg_)) {}

int64_t InferenceSession::enqueue(tensor::Tensor prompt, int max_new_tokens,
                                  TokenCallback on_token, double deadline_s) {
  return backend_->enqueue(std::move(prompt), max_new_tokens,
                           std::move(on_token), deadline_s);
}

std::vector<Completion> InferenceSession::run() {
  // Same process-global kernel-pool rule as Session::step: serving workers
  // are inter-op threads, so the auto rule gives each one inline kernels;
  // the single-worker Reference generator gets the whole pool.
  tensor::IntraOpScope scope(cfg_.effective_intra_op_threads());
  return backend_->drain();
}

ServeReport InferenceSession::report() const {
  ServeReport rep;
  rep.backend = backend_->kind();
  backend_->finalize(rep);
  return rep;
}

perf::ServingPoint InferenceConfig::serving_point() const {
  perf::ServingPoint pt;
  pt.algo = sched.algo;
  pt.P = sched.P;
  pt.W = effective_W();
  pt.max_batch = max_batch;
  pt.prompt_tokens = effective_prompt_tokens();
  pt.max_new_tokens = max_new_tokens;
  pt.stop_tokens = stop_tokens;
  pt.kv_fp16 = kv_fp16;
  pt.kv_page_tokens = paged_kv ? kv_page_tokens : 0;
  pt.kv_pool_pages = paged_kv ? kv_pool_pages : 0;
  pt.tf = sched.tf;
  pt.tb = sched.tb;
  return pt;
}

ServeReport predict_serving(const InferenceConfig& cfg) {
  ServeReport rep;
  rep.backend = cfg.backend;
  rep.predicted = true;

  // The unified planning core does the work (feasibility is a result, not
  // an exception — same stance as the Sim backend); this frontend only
  // replicates the one-replica prediction over dp, which is exact because
  // replicas are fully independent (disjoint devices, no collective).
  const perf::Engine eng(cfg.model, cfg.effective_cluster(), cfg.calibration,
                         cfg.serving_calibration);
  const perf::ServePrediction pred = eng.calibrated_serving(
      eng.evaluate_serving(cfg.serving_point()), std::max(1, cfg.dp));
  if (!pred.feasible) {
    rep.feasible = false;
    rep.note = pred.note;
    return rep;
  }
  // The memory verdict rides along: a dry run exists to catch an
  // over-memory configuration before an engine is built, so the same
  // pruning signal the planner uses is surfaced here, timings and all.
  rep.oom = pred.oom;
  rep.peak_mem_gb = pred.peak_mem_gb;

  // dp replicas drain the same load concurrently: sums over replicas, same
  // convention as the measured merge (runtime::merge_stats).
  rep.dp = std::max(1, cfg.dp);
  rep.replicas.assign(static_cast<size_t>(rep.dp), pred.per_replica);
  rep.set_totals(runtime::merge_stats(rep.replicas));

  // Offered-load pricing: the same fluid overload model the serving
  // planner ranks under, evaluated at this config's arrival rate.
  if (cfg.offered_req_s > 0.0) {
    perf::LoadPoint load;
    load.offered_req_s = cfg.offered_req_s;
    load.deadline_s = cfg.deadline_s;
    load.queue_cap = cfg.queue_policy != QueuePolicy::Unbounded
                         ? (cfg.max_queue > 0
                                ? cfg.max_queue
                                : runtime::derived_queue_cap(cfg.infer_config()))
                         : 0;
    const perf::LoadPrediction lp =
        perf::predict_load(pred, rep.dp, load);
    rep.offered_req_s = load.offered_req_s;
    rep.capacity_req_s = lp.capacity_req_s;
    rep.utilization = lp.utilization;
    rep.predicted_rejected_rate = lp.rejected_rate;
    rep.predicted_timeout_rate = lp.timeout_rate;
    rep.predicted_backlogged_rate = lp.backlogged_rate;
    rep.predicted_queue_wait_s = lp.queue_wait_s;
    rep.predicted_p50_ttft_s = lp.p50_ttft_s;
    rep.predicted_p99_ttft_s = lp.p99_ttft_s;
  }
  return rep;
}

InferenceSession::Builder& InferenceSession::Builder::auto_plan(
    const perf::ServeTarget& target) {
  // The planner needs a concrete cluster before P/dp are chosen: an
  // explicit .cluster() wins, else the target's device count is lowered
  // through the same calibrated-or-spec-default rule as effective_cluster.
  // Every knob the target leaves unset is back-filled from the builder
  // BEFORE planning, and the merged values are adopted back afterwards —
  // so earlier builder calls are never silently clobbered by target
  // defaults, and a later predict() prices the session exactly as the
  // planner ranked it.
  perf::ServeTarget t = target;
  if (!t.calibration) t.calibration = cfg_.calibration;
  cfg_.calibration = t.calibration;
  if (!t.serving_calibration) t.serving_calibration = cfg_.serving_calibration;
  cfg_.serving_calibration = t.serving_calibration;
  if (t.max_new_tokens <= 0) t.max_new_tokens = cfg_.max_new_tokens;
  if (t.stop_tokens.empty()) t.stop_tokens = cfg_.stop_tokens;
  t.kv_fp16 = t.kv_fp16 || cfg_.kv_fp16;
  if (t.kv_page_tokens <= 0 && cfg_.paged_kv) {
    t.kv_page_tokens = cfg_.kv_page_tokens;
    if (t.kv_pool_pages <= 0) t.kv_pool_pages = cfg_.kv_pool_pages;
  }
  // Load assumptions follow the same back-fill-then-adopt rule, so a
  // builder-configured deadline or offered rate prices the search and a
  // target-specified one lands back in the session config.
  if (t.offered_req_s <= 0.0) t.offered_req_s = cfg_.offered_req_s;
  if (t.deadline_s <= 0.0) t.deadline_s = cfg_.deadline_s;
  if (t.queue_cap <= 0 && cfg_.queue_policy != QueuePolicy::Unbounded) {
    t.queue_cap = cfg_.max_queue;
  }
  const sim::Cluster cluster =
      cfg_.cluster ? *cfg_.cluster
                   : api::planning_cluster(t.total_devices, t.calibration);
  const auto cands = perf::plan_serving(cluster, cfg_.model, t);
  const auto pick = perf::best_serving(cands);
  if (!pick) {
    throw std::invalid_argument(
        "auto_plan: no feasible serving configuration for " +
        std::to_string(t.total_devices) + " devices (model layers: " +
        std::to_string(cfg_.model.layer_descs().size()) + ")");
  }
  // Adopt the winning (algo, P, W, max_batch, dp) plus the load assumptions
  // it was scored under, so a subsequent predict() reproduces the planner's
  // winning row bit-for-bit.
  cfg_.sched.algo = pick->algo;
  cfg_.sched.P = pick->P;
  cfg_.sched.waves = pick->W;
  cfg_.sched.vchunks = pick->W;
  cfg_.dp = pick->dp;
  cfg_.max_batch = pick->max_batch;
  cfg_.max_new_tokens = t.max_new_tokens;
  cfg_.stop_tokens = t.stop_tokens;
  cfg_.kv_fp16 = t.kv_fp16;
  if (t.kv_page_tokens > 0) {
    cfg_.paged_kv = true;
    cfg_.kv_page_tokens = t.kv_page_tokens;
    if (t.kv_pool_pages > 0) cfg_.kv_pool_pages = t.kv_pool_pages;
  }
  cfg_.offered_req_s = t.offered_req_s;
  cfg_.deadline_s = t.deadline_s;
  if (t.queue_cap > 0) {
    cfg_.max_queue = t.queue_cap;
    if (cfg_.queue_policy == QueuePolicy::Unbounded) {
      cfg_.queue_policy = QueuePolicy::RejectNew;
    }
  }
  // An unset target prompt length means the candidates were scored under
  // the default rule — clear any earlier builder override so predict()
  // resolves to the same length the planner used.
  if (t.prompt_tokens > 0) {
    cfg_.prompt_tokens = t.prompt_tokens;
  } else {
    cfg_.prompt_tokens.reset();
  }
  return *this;
}

}  // namespace hanayo::api
