#include "api/inference.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "schedule/validate.hpp"
#include "sim/event_sim.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::api {

InferenceSession::Builder InferenceSession::builder() { return Builder(); }

InferenceSession::InferenceSession(InferenceConfig cfg)
    : cfg_(std::move(cfg)), backend_(make_infer_backend(cfg_)) {}

int64_t InferenceSession::enqueue(tensor::Tensor prompt, int max_new_tokens) {
  return backend_->enqueue(std::move(prompt), max_new_tokens);
}

std::vector<Completion> InferenceSession::run() {
  // Same process-global kernel-pool rule as Session::step: serving workers
  // are inter-op threads, so the auto rule gives each one inline kernels;
  // the single-worker Reference generator gets the whole pool.
  tensor::IntraOpScope scope(cfg_.effective_intra_op_threads());
  return backend_->drain();
}

ServeReport InferenceSession::report() const {
  ServeReport rep;
  rep.backend = backend_->kind();
  backend_->finalize(rep);
  return rep;
}

namespace {

/// Expected per-sequence continuation length under stop tokens, for the
/// dry-run cost model: each generated token is approximated as uniform over
/// the vocabulary, so a set of s distinct stop ids stops a sequence with
/// p = s/V per token and E[len] = sum_{t=1..cap} (1-p)^(t-1) — the
/// geometric partial sum, capped by max_new_tokens. (An approximation by
/// construction: real logits are anything but uniform. It exists so dp / SLA
/// planning can account for early exits at all; the measured backends
/// report real lengths.)
int expected_new_tokens(const InferenceConfig& cfg) {
  if (cfg.stop_tokens.empty()) return cfg.max_new_tokens;
  std::vector<int64_t> uniq = cfg.stop_tokens;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const double p = std::min(
      1.0, static_cast<double>(uniq.size()) /
               static_cast<double>(std::max<int64_t>(cfg.model.vocab, 1)));
  if (p >= 1.0) return 1;
  const double cap = static_cast<double>(cfg.max_new_tokens);
  const double e_len = (1.0 - std::pow(1.0 - p, cap)) / p;
  return std::max(1, static_cast<int>(std::llround(e_len)));
}

}  // namespace

ServeReport predict_serving(const InferenceConfig& cfg) {
  ServeReport rep;
  rep.backend = cfg.backend;
  rep.predicted = true;

  // Feasibility is a result, not an exception — the point of a dry run is
  // to find out before building an engine (same stance as the Sim backend).
  if (!cfg.model.causal) {
    rep.feasible = false;
    rep.note = "greedy decode needs a causal model";
    return rep;
  }
  if (cfg.sched.algo == schedule::Algo::Chimera ||
      cfg.sched.algo == schedule::Algo::PipeDream) {
    rep.feasible = false;
    rep.note = std::string(schedule::algo_name(cfg.sched.algo)) +
               " has no forward-only program";
    return rep;
  }
  schedule::ScheduleRequest req = cfg.effective_sched();
  req.B = cfg.max_batch;
  const int S = schedule::stages_for(req);
  const int total_layers = static_cast<int>(cfg.model.layer_descs().size());
  if (S > total_layers) {
    rep.feasible = false;
    rep.note = "stages (" + std::to_string(S) + ") exceed layers (" +
               std::to_string(total_layers) + ")";
    return rep;
  }

  const sim::Cluster cluster = cfg.effective_cluster();
  const schedule::Schedule sched = schedule::make_forward_schedule(req);
  // Replicas are fully independent (disjoint devices, no collective), so
  // event-simulating one replica's timeline and replicating the numbers is
  // exact, not an approximation.
  sim::SimOptions opt;
  opt.dp = 1;
  opt.state_factor = 1.0;  // inference holds weights, no grads/optimizer
  opt.devmap = sim::DeviceMap{cfg.sched.P, 0};

  const int dp = std::max(1, cfg.dp);
  const int64_t plen = cfg.effective_prompt_tokens();
  // Stop tokens shorten the modelled continuation (see expected_new_tokens).
  const int steps = expected_new_tokens(cfg);

  // One full-batch prefill pass: every micro-batch carries a whole prompt.
  const sim::PipelineCosts prefill_costs =
      sim::infer_costs(cfg.model, S, 1, plen, plen, cluster);
  const sim::SimResult prefill =
      sim::simulate(sched, prefill_costs, cluster, opt);

  // steps - 1 decode passes (the prefill emits the first token), costed at
  // the mean KV-cache depth of the decode phase.
  sim::SimResult decode;
  if (steps > 1) {
    const int64_t mean_ctx = plen + steps / 2;
    const sim::PipelineCosts decode_costs =
        sim::infer_costs(cfg.model, S, 1, 1, mean_ctx, cluster);
    decode = sim::simulate(sched, decode_costs, cluster, opt);
  }

  // Per-replica nominal load: one full batch of prompts to completion.
  runtime::ServeStats per;
  per.requests = cfg.max_batch;
  per.prompt_tokens = static_cast<int64_t>(cfg.max_batch) * plen;
  per.generated_tokens = static_cast<int64_t>(cfg.max_batch) * steps;
  per.prefill_passes = 1;
  per.decode_passes = steps - 1;
  per.prefill_s = prefill.makespan;
  per.decode_s = decode.makespan * (steps - 1);
  // KV rows resident at the end: per device, the per-pass act bytes times
  // the final context length of every stream.
  double kv = 0.0;
  for (double x : prefill_costs.act_bytes) kv += x;
  per.peak_kv_bytes = static_cast<int64_t>(
      kv / static_cast<double>(plen) *
      static_cast<double>(plen + steps - 1) * cfg.max_batch);

  // dp replicas drain the same load concurrently: sums over replicas, same
  // convention as the measured merge (runtime::merge_stats).
  rep.dp = dp;
  rep.replicas.assign(static_cast<size_t>(dp), per);
  rep.set_totals(runtime::merge_stats(rep.replicas));
  return rep;
}

}  // namespace hanayo::api
