#include "api/inference.hpp"

#include <algorithm>
#include <string>

#include "schedule/validate.hpp"
#include "sim/event_sim.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::api {

InferenceSession::Builder InferenceSession::builder() { return Builder(); }

InferenceSession::InferenceSession(InferenceConfig cfg)
    : cfg_(std::move(cfg)), backend_(make_infer_backend(cfg_)) {}

int64_t InferenceSession::enqueue(tensor::Tensor prompt, int max_new_tokens) {
  return backend_->enqueue(std::move(prompt), max_new_tokens);
}

std::vector<Completion> InferenceSession::run() {
  // Same process-global kernel-pool rule as Session::step: serving workers
  // are inter-op threads, so the auto rule gives each one inline kernels;
  // the single-worker Reference generator gets the whole pool.
  tensor::IntraOpScope scope(cfg_.effective_intra_op_threads());
  return backend_->drain();
}

ServeReport InferenceSession::report() const {
  ServeReport rep;
  rep.backend = backend_->kind();
  backend_->finalize(rep);
  return rep;
}

ServeReport predict_serving(const InferenceConfig& cfg) {
  ServeReport rep;
  rep.backend = cfg.backend;
  rep.predicted = true;

  // Feasibility is a result, not an exception — the point of a dry run is
  // to find out before building an engine (same stance as the Sim backend).
  if (!cfg.model.causal) {
    rep.feasible = false;
    rep.note = "greedy decode needs a causal model";
    return rep;
  }
  if (cfg.sched.algo == schedule::Algo::Chimera ||
      cfg.sched.algo == schedule::Algo::PipeDream) {
    rep.feasible = false;
    rep.note = std::string(schedule::algo_name(cfg.sched.algo)) +
               " has no forward-only program";
    return rep;
  }
  schedule::ScheduleRequest req = cfg.effective_sched();
  req.B = cfg.max_batch;
  const int S = schedule::stages_for(req);
  const int total_layers = static_cast<int>(cfg.model.layer_descs().size());
  if (S > total_layers) {
    rep.feasible = false;
    rep.note = "stages (" + std::to_string(S) + ") exceed layers (" +
               std::to_string(total_layers) + ")";
    return rep;
  }

  const sim::Cluster cluster = cfg.effective_cluster();
  const schedule::Schedule sched = schedule::make_forward_schedule(req);
  sim::SimOptions opt;
  opt.dp = 1;
  opt.state_factor = 1.0;  // inference holds weights, no grads/optimizer
  opt.devmap = sim::DeviceMap{cfg.sched.P, 0};

  const int64_t plen = cfg.effective_prompt_tokens();
  const int steps = cfg.max_new_tokens;

  // One full-batch prefill pass: every micro-batch carries a whole prompt.
  const sim::PipelineCosts prefill_costs =
      sim::infer_costs(cfg.model, S, 1, plen, plen, cluster);
  const sim::SimResult prefill =
      sim::simulate(sched, prefill_costs, cluster, opt);

  // steps - 1 decode passes (the prefill emits the first token), costed at
  // the mean KV-cache depth of the decode phase.
  sim::SimResult decode;
  if (steps > 1) {
    const int64_t mean_ctx = plen + steps / 2;
    const sim::PipelineCosts decode_costs =
        sim::infer_costs(cfg.model, S, 1, 1, mean_ctx, cluster);
    decode = sim::simulate(sched, decode_costs, cluster, opt);
  }

  rep.requests = cfg.max_batch;
  rep.prompt_tokens = static_cast<int64_t>(cfg.max_batch) * plen;
  rep.generated_tokens = static_cast<int64_t>(cfg.max_batch) * steps;
  rep.prefill_passes = 1;
  rep.decode_passes = steps - 1;
  rep.prefill_s = prefill.makespan;
  rep.decode_s = decode.makespan * (steps - 1);
  // KV rows resident at the end: per device, the per-pass act bytes times
  // the final context length of every stream.
  double kv = 0.0;
  for (double x : prefill_costs.act_bytes) kv += x;
  rep.peak_kv_bytes = static_cast<int64_t>(
      kv / static_cast<double>(plen) *
      static_cast<double>(plen + steps - 1) * cfg.max_batch);
  return rep;
}

}  // namespace hanayo::api
