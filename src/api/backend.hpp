#pragma once
// The pluggable execution engine behind a Session. Three engines ship:
// worker threads (the real pipeline runtime), the sequential reference, and
// the discrete-event simulator — plus the asynchronous no-flush runtime.
// All of them speak StepReport/RunReport, so callers swap engines without
// touching the rest of their code.

#include <map>
#include <memory>
#include <string>

#include "api/config.hpp"
#include "api/report.hpp"

namespace hanayo::api {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;

  /// Executes (or, for Sim, predicts) one training step. `step_index` is
  /// the session's 0-based step counter.
  virtual StepReport step(const runtime::Batch& batch, int step_index) = 0;

  /// Executes `steps` consecutive steps over the same batch. The default
  /// loops step(); the Async engine overrides it to keep its pipeline
  /// continuously full across the whole span (its defining property).
  virtual std::vector<StepReport> run(const runtime::Batch& batch, int steps,
                                      int first_index);

  /// Batch rows one step consumes.
  virtual int64_t batch_rows() const = 0;

  /// The compiled schedule, when the engine executes one (null for the
  /// sequential reference).
  virtual const schedule::Schedule* schedule() const { return nullptr; }

  /// Parameters by name (replica 0). Throws std::logic_error when the
  /// engine holds no real parameters (Sim).
  virtual std::map<std::string, tensor::Tensor> snapshot_params();

  /// Name-addressed checkpoint I/O; partition-independent, so a session
  /// saved under one (P, W) restores under any other. Throws
  /// std::logic_error on engines without parameter state.
  virtual void save_checkpoint(const std::string& path,
                               bool include_optimizer);
  virtual void load_checkpoint(const std::string& path);

  /// Adds backend-specific results (memory ledger, timeline, simulated or
  /// measured candidate numbers) to the session's cumulative report.
  virtual void finalize(RunReport& report) const = 0;
};

/// Builds the engine `cfg.backend` names. Throws std::invalid_argument on
/// configurations the engine rejects (the validator's diagnosis included).
std::unique_ptr<Backend> make_backend(const SessionConfig& cfg);

}  // namespace hanayo::api
