// The three concrete serving engines behind api::make_infer_backend:
// pipelined worker threads (runtime::InferencePipeline), the sequential
// full-prefix-recompute reference, and the forward-only event simulation.

#include <chrono>
#include <deque>
#include <stdexcept>
#include <string>

#include "api/inference.hpp"
#include "runtime/infer.hpp"

namespace hanayo::api {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Pipelined forward-only wave schedules with KV-cache decode and
/// continuous batching — wraps runtime::InferencePipeline.
class ThreadInferBackend final : public InferBackend {
 public:
  explicit ThreadInferBackend(const InferenceConfig& cfg)
      : cfg_(cfg), pipeline_(cfg.infer_config()) {}

  BackendKind kind() const override { return BackendKind::Threads; }

  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens) override {
    return pipeline_.enqueue(std::move(prompt), max_new_tokens);
  }

  std::vector<Completion> drain() override { return pipeline_.drain(); }

  const schedule::Schedule* schedule() const override {
    // The full-batch program — representative of the steady serving state.
    return &const_cast<runtime::InferencePipeline&>(pipeline_).schedule_for(
        cfg_.max_batch);
  }

  void finalize(ServeReport& rep) const override {
    const runtime::ServeStats& st = pipeline_.stats();
    rep.backend = BackendKind::Threads;
    rep.requests = st.requests;
    rep.prompt_tokens = st.prompt_tokens;
    rep.generated_tokens = st.generated_tokens;
    rep.prefill_passes = st.prefill_passes;
    rep.decode_passes = st.decode_passes;
    rep.prefill_s = st.prefill_s;
    rep.decode_s = st.decode_s;
    rep.peak_kv_bytes = st.peak_kv_bytes;
  }

 private:
  InferenceConfig cfg_;
  runtime::InferencePipeline pipeline_;
};

/// Sequential ground truth: one full-prefix recompute per generated token,
/// no KV reuse across steps, no pipeline. Greedy tokens are bit-identical
/// to the Threads backend — that equivalence is the serving analogue of the
/// Threads-vs-Reference training-loss guarantee.
class ReferenceInferBackend final : public InferBackend {
 public:
  explicit ReferenceInferBackend(const InferenceConfig& cfg)
      : cfg_(cfg),
        module_(cfg.model.layer_descs(), 0,
                static_cast<int>(cfg.model.layer_descs().size()), cfg.seed,
                cfg.model.init_std) {}

  BackendKind kind() const override { return BackendKind::Reference; }

  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens) override {
    // Same admission rules as the pipeline, by construction (shared helper).
    runtime::InferRequest r = runtime::make_infer_request(
        std::move(prompt), max_new_tokens, cfg_.max_new_tokens,
        cfg_.model.seq, next_id_++);
    const int64_t id = r.id;
    stats_.requests += 1;
    stats_.prompt_tokens += r.prompt.size(1);
    queue_.push_back(std::move(r));
    return id;
  }

  std::vector<Completion> drain() override {
    std::vector<Completion> out;
    while (!queue_.empty()) {
      runtime::InferRequest r = std::move(queue_.front());
      queue_.pop_front();
      std::vector<int64_t> seq;
      for (int64_t i = 0; i < r.prompt.size(1); ++i) {
        seq.push_back(static_cast<int64_t>(r.prompt[i]));
      }
      Completion c;
      c.id = r.id;
      c.prompt_tokens = r.prompt.size(1);
      for (int step = 0; step < r.max_new_tokens; ++step) {
        const auto t0 = std::chrono::steady_clock::now();
        tensor::Tensor x({1, static_cast<int64_t>(seq.size())});
        for (size_t i = 0; i < seq.size(); ++i) {
          x[static_cast<int64_t>(i)] = static_cast<float>(seq[i]);
        }
        // Full-prefix recompute: a fresh KV stream every step.
        module_.drop_slot(0);
        tensor::Tensor y = module_.decode(x, 0, 0);
        stats_.peak_kv_bytes =
            std::max(stats_.peak_kv_bytes, module_.slot_bytes());
        const int64_t best = runtime::greedy_argmax_last_row(y);
        seq.push_back(best);
        c.tokens.push_back(best);
        stats_.generated_tokens += 1;
        const double wall = seconds_since(t0);
        if (step == 0) {
          stats_.prefill_passes += 1;
          stats_.prefill_s += wall;
        } else {
          stats_.decode_passes += 1;
          stats_.decode_s += wall;
        }
      }
      module_.drop_slot(0);
      out.push_back(std::move(c));
    }
    return out;
  }

  void finalize(ServeReport& rep) const override {
    rep.backend = BackendKind::Reference;
    rep.requests = stats_.requests;
    rep.prompt_tokens = stats_.prompt_tokens;
    rep.generated_tokens = stats_.generated_tokens;
    rep.prefill_passes = stats_.prefill_passes;
    rep.decode_passes = stats_.decode_passes;
    rep.prefill_s = stats_.prefill_s;
    rep.decode_s = stats_.decode_s;
    rep.peak_kv_bytes = stats_.peak_kv_bytes;
  }

 private:
  struct Stats {
    int64_t requests = 0, prompt_tokens = 0, generated_tokens = 0;
    int prefill_passes = 0, decode_passes = 0;
    double prefill_s = 0.0, decode_s = 0.0;
    int64_t peak_kv_bytes = 0;
  };

  InferenceConfig cfg_;
  model::StageModule module_;
  std::deque<runtime::InferRequest> queue_;
  int64_t next_id_ = 0;
  Stats stats_;
};

/// Forward-only dry run: executes nothing; enqueue/drain book-keep request
/// ids and the report is predict_serving's event-simulated timeline — the
/// same code path as InferenceSession::predict(), hence exact agreement.
class SimInferBackend final : public InferBackend {
 public:
  explicit SimInferBackend(const InferenceConfig& cfg) : cfg_(cfg) {}

  BackendKind kind() const override { return BackendKind::Sim; }

  int64_t enqueue(tensor::Tensor, int) override { return next_id_++; }

  std::vector<Completion> drain() override {
    std::vector<Completion> out;
    for (int64_t id = drained_; id < next_id_; ++id) {
      Completion c;
      c.id = id;
      out.push_back(std::move(c));  // predicted: no tokens are produced
    }
    drained_ = next_id_;
    return out;
  }

  const schedule::Schedule* schedule() const override {
    if (sched_.scripts.empty()) {
      schedule::ScheduleRequest req = cfg_.effective_sched();
      req.B = cfg_.max_batch;
      const int S = schedule::stages_for(req);
      if (S > static_cast<int>(cfg_.model.layer_descs().size())) {
        return nullptr;  // infeasible: no schedule compiles
      }
      sched_ = schedule::make_forward_schedule(req);
    }
    return &sched_;
  }

  void finalize(ServeReport& rep) const override {
    rep = predict_serving(cfg_);
    rep.backend = BackendKind::Sim;
  }

 private:
  InferenceConfig cfg_;
  mutable schedule::Schedule sched_;
  int64_t next_id_ = 0;
  int64_t drained_ = 0;
};

}  // namespace

std::unique_ptr<InferBackend> make_infer_backend(const InferenceConfig& cfg) {
  // Causality is a model property, not a feasibility result: no serving
  // engine — not even the dry run — can greedily extend a bidirectional
  // model's prefix, so every backend rejects it up front.
  if (!cfg.model.causal) {
    throw std::invalid_argument(
        "inference: greedy decode needs a causal model (each new token may "
        "only extend, never revise, the prefix)");
  }
  switch (cfg.backend) {
    case BackendKind::Threads:
      return std::make_unique<ThreadInferBackend>(cfg);
    case BackendKind::Reference:
      return std::make_unique<ReferenceInferBackend>(cfg);
    case BackendKind::Sim:
      return std::make_unique<SimInferBackend>(cfg);
    case BackendKind::Async:
      throw std::invalid_argument(
          "inference: the Async (no-flush) runtime is a training engine; "
          "serving uses Threads, Reference or Sim");
  }
  throw std::invalid_argument("unknown backend kind");
}

}  // namespace hanayo::api
