// The three concrete serving engines behind api::make_infer_backend:
// data-parallel pipelined worker replicas (runtime::InferenceServer), the
// sequential full-prefix-recompute reference, and the forward-only event
// simulation.

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <string>

#include "api/inference.hpp"
#include "runtime/infer.hpp"
#include "tensor/rng.hpp"

namespace hanayo::api {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Pipelined forward-only wave schedules with KV-cache decode and
/// continuous batching; dp > 1 runs that many pipeline replicas off one
/// shared request queue — wraps runtime::InferenceServer.
class ThreadInferBackend final : public InferBackend {
 public:
  explicit ThreadInferBackend(const InferenceConfig& cfg)
      : cfg_(cfg), server_(cfg.infer_config()) {}

  BackendKind kind() const override { return BackendKind::Threads; }

  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens,
                  TokenCallback on_token, double deadline_s) override {
    return server_.enqueue(std::move(prompt), max_new_tokens,
                           std::move(on_token), deadline_s);
  }

  void cancel(int64_t id) override { server_.cancel(id); }

  std::vector<Completion> drain() override { return server_.drain(); }

  const schedule::Schedule* schedule() const override {
    // The full-batch program — representative of the steady serving state.
    return &const_cast<runtime::InferenceServer&>(server_).schedule_for(
        cfg_.max_batch);
  }

  void finalize(ServeReport& rep) const override {
    rep.backend = BackendKind::Threads;
    rep.dp = server_.dp();
    rep.replicas = server_.replica_stats();
    // server_.stats() (not a bare merge): the submitted/rejected counters
    // live on the server's enqueue side, outside any replica.
    rep.set_totals(server_.stats());
  }

 private:
  InferenceConfig cfg_;
  runtime::InferenceServer server_;
};

/// Sequential ground truth: one full-prefix recompute per generated token,
/// no KV reuse across steps, no pipeline, no replication (dp is ignored —
/// replicas hold identical weights, so the reference for any assignment is
/// the same). Tokens are bit-identical to the Threads backend under every
/// sampling policy: logits match bitwise, and both engines select through
/// sample_last_row with the same per-request (seed, id) RNG stream.
class ReferenceInferBackend final : public InferBackend {
 public:
  explicit ReferenceInferBackend(const InferenceConfig& cfg)
      : cfg_(cfg),
        module_(cfg.model.layer_descs(), 0,
                static_cast<int>(cfg.model.layer_descs().size()), cfg.seed,
                cfg.model.init_std) {
    // Same half-precision cache quantization as the pipeline workers, so
    // the token-identity guarantee extends to kv_fp16 runs.
    module_.set_kv_fp16(cfg.kv_fp16);
  }

  BackendKind kind() const override { return BackendKind::Reference; }

  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens,
                  TokenCallback on_token, double deadline_s) override {
    // Same admission rules as the pipeline, by construction (shared helper).
    // The reference queue itself stays unbounded — bounded-queue
    // backpressure is a property of the live server's shared queue, not of
    // the sequential ground truth.
    runtime::InferRequest r = runtime::make_infer_request(
        std::move(prompt), max_new_tokens, cfg_.max_new_tokens,
        cfg_.model.seq, next_id_++, deadline_s, cfg_.deadline_s);
    r.on_token = std::move(on_token);
    const int64_t id = r.id;
    queue_.push_back(std::move(r));
    stats_.submitted += 1;
    return id;
  }

  void cancel(int64_t id) override { cancelled_.push_back(id); }

  std::vector<Completion> drain() override {
    std::vector<Completion> out;
    while (!queue_.empty()) {
      runtime::InferRequest r = std::move(queue_.front());
      queue_.pop_front();
      // The sequential analogue of the pipeline's admission checks: a
      // cancelled or already-expired request terminates without decoding.
      if (consume_cancelled(r.id)) {
        out.push_back(unserved(r, runtime::StopReason::Cancelled));
        stats_.cancelled += 1;
        continue;
      }
      if (r.deadline_s > 0.0 && runtime::serve_clock_s() > r.deadline_s) {
        out.push_back(unserved(r, runtime::StopReason::DeadlineExceeded));
        stats_.timed_out += 1;
        continue;
      }
      stats_.requests += 1;
      stats_.prompt_tokens += r.prompt.size(1);
      // The request's own sampling stream — the same split the pipeline
      // replicas use, which is what makes stochastic decodes comparable.
      tensor::Rng rng(
          tensor::Rng::split(cfg_.seed, static_cast<uint64_t>(r.id)));
      std::vector<int64_t> seq;
      for (int64_t i = 0; i < r.prompt.size(1); ++i) {
        seq.push_back(static_cast<int64_t>(r.prompt[i]));
      }
      Completion c;
      c.id = r.id;
      c.prompt_tokens = r.prompt.size(1);
      c.enqueue_s = r.enqueue_s;
      c.admit_s = runtime::serve_clock_s();
      for (int step = 0; step < r.max_new_tokens; ++step) {
        // Step boundary == the sequential engine's pass boundary: cancel
        // marks and deadline misses abort here with the partial tokens.
        if (consume_cancelled(r.id)) {
          c.stop_reason = runtime::StopReason::Cancelled;
          stats_.cancelled += 1;
          break;
        }
        if (r.deadline_s > 0.0 && runtime::serve_clock_s() > r.deadline_s) {
          c.stop_reason = runtime::StopReason::DeadlineExceeded;
          stats_.timed_out += 1;
          break;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const float u = cfg_.sampling.stochastic() ? rng.uniform() : 0.0f;
        tensor::Tensor x({1, static_cast<int64_t>(seq.size())});
        for (size_t i = 0; i < seq.size(); ++i) {
          x[static_cast<int64_t>(i)] = static_cast<float>(seq[i]);
        }
        // Full-prefix recompute: a fresh KV stream every step.
        module_.drop_slot(0);
        tensor::Tensor y = module_.decode(x, 0, 0);
        stats_.peak_kv_bytes =
            std::max(stats_.peak_kv_bytes, module_.slot_bytes());
        const int64_t best = runtime::sample_last_row(y, cfg_.sampling, u);
        seq.push_back(best);
        if (c.tokens.empty()) c.first_token_s = runtime::serve_clock_s();
        c.tokens.push_back(best);
        stats_.generated_tokens += 1;
        const double wall = seconds_since(t0);
        if (step == 0) {
          stats_.prefill_passes += 1;
          stats_.prefill_s += wall;
        } else {
          stats_.decode_passes += 1;
          stats_.decode_s += wall;
        }
        const bool hit_stop = runtime::is_stop_token(cfg_.stop_tokens, best);
        // Streaming: one event per selected token, same boundary semantics
        // as the pipeline's pass boundary.
        if (r.on_token) {
          r.on_token(runtime::TokenEvent{
              r.id, best, step, hit_stop || step + 1 == r.max_new_tokens});
        }
        if (hit_stop) {
          c.stop_reason = runtime::StopReason::StopToken;
          break;
        }
      }
      module_.drop_slot(0);
      c.finish_s = runtime::serve_clock_s();
      if (c.served()) {
        stats_.completed += 1;
        stats_.ttft_samples_s.push_back(c.ttft_s());
        const double per_tok = c.per_token_s();
        if (per_tok >= 0.0) stats_.per_token_samples_s.push_back(per_tok);
      }
      out.push_back(std::move(c));
    }
    return out;
  }

  void finalize(ServeReport& rep) const override {
    rep.backend = BackendKind::Reference;
    rep.dp = 1;  // sequential: there is nothing to replicate
    rep.set_totals(stats_);
  }

 private:
  bool consume_cancelled(int64_t id) {
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end()) return false;
    cancelled_.erase(it);
    return true;
  }

  static Completion unserved(const runtime::InferRequest& r,
                             runtime::StopReason why) {
    Completion c;
    c.id = r.id;
    c.prompt_tokens = r.prompt.size(1);
    c.stop_reason = why;
    c.enqueue_s = r.enqueue_s;
    c.finish_s = runtime::serve_clock_s();
    return c;
  }

  InferenceConfig cfg_;
  model::StageModule module_;
  std::deque<runtime::InferRequest> queue_;
  std::vector<int64_t> cancelled_;
  int64_t next_id_ = 0;
  runtime::ServeStats stats_;
};

/// Forward-only dry run: executes nothing; enqueue/drain book-keep request
/// ids and the report is predict_serving's event-simulated timeline — the
/// same code path as InferenceSession::predict(), hence exact agreement.
class SimInferBackend final : public InferBackend {
 public:
  explicit SimInferBackend(const InferenceConfig& cfg) : cfg_(cfg) {}

  BackendKind kind() const override { return BackendKind::Sim; }

  // A dry run produces no tokens, so the streaming callback never fires
  // (and deadlines/cancellation have nothing to abort).
  int64_t enqueue(tensor::Tensor, int, TokenCallback, double) override {
    return next_id_++;
  }

  std::vector<Completion> drain() override {
    std::vector<Completion> out;
    for (int64_t id = drained_; id < next_id_; ++id) {
      Completion c;
      c.id = id;
      out.push_back(std::move(c));  // predicted: no tokens are produced
    }
    drained_ = next_id_;
    return out;
  }

  const schedule::Schedule* schedule() const override {
    if (sched_.scripts.empty()) {
      schedule::ScheduleRequest req = cfg_.effective_sched();
      req.B = cfg_.max_batch;
      const int S = schedule::stages_for(req);
      if (S > static_cast<int>(cfg_.model.layer_descs().size())) {
        return nullptr;  // infeasible: no schedule compiles
      }
      sched_ = schedule::make_forward_schedule(req);
    }
    return &sched_;
  }

  void finalize(ServeReport& rep) const override {
    rep = predict_serving(cfg_);
    rep.backend = BackendKind::Sim;
  }

 private:
  InferenceConfig cfg_;
  mutable schedule::Schedule sched_;
  int64_t next_id_ = 0;
  int64_t drained_ = 0;
};

}  // namespace

std::unique_ptr<InferBackend> make_infer_backend(const InferenceConfig& cfg) {
  // Causality is a model property, not a feasibility result: no serving
  // engine — not even the dry run — can extend a bidirectional model's
  // prefix token by token, so every backend rejects it up front. The same
  // goes for unusable sampling parameters and replica counts.
  if (!cfg.model.causal) {
    throw std::invalid_argument(
        "inference: decode needs a causal model (each new token may "
        "only extend, never revise, the prefix)");
  }
  cfg.sampling.validate();
  if (cfg.dp < 1) {
    throw std::invalid_argument("inference: dp < 1");
  }
  switch (cfg.backend) {
    case BackendKind::Threads:
      return std::make_unique<ThreadInferBackend>(cfg);
    case BackendKind::Reference:
      return std::make_unique<ReferenceInferBackend>(cfg);
    case BackendKind::Sim:
      return std::make_unique<SimInferBackend>(cfg);
    case BackendKind::Async:
      throw std::invalid_argument(
          "inference: the Async (no-flush) runtime is a training engine; "
          "serving uses Threads, Reference or Sim");
  }
  throw std::invalid_argument("unknown backend kind");
}

}  // namespace hanayo::api
