#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::tensor {

namespace {
void check_2d(const Tensor& t, const char* who) {
  if (t.dim() != 2) throw std::invalid_argument(std::string(who) + ": need 2-d tensor");
}

// Elementwise ops below this size run inline; above it they split across
// the intra-op pool (each index is independent, so any split is exact).
constexpr int64_t kRowGrain = 16;
constexpr int64_t kElemGrain = 1 << 14;
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul");
  check_2d(b, "matmul");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  kernels::gemm(m, n, k, a.data(), k, b.data(), n, c.data(), n, false);
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_bt");
  check_2d(b, "matmul_bt");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  if (b.size(1) != k) throw std::invalid_argument("matmul_bt: inner dim mismatch");
  Tensor c({m, n});
  kernels::gemm_bt(m, n, k, a.data(), k, b.data(), k, c.data(), n, false);
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_at");
  check_2d(b, "matmul_at");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul_at: inner dim mismatch");
  Tensor c({m, n});
  kernels::gemm_at(m, n, k, a.data(), m, b.data(), n, c.data(), n, false);
  return c;
}

Tensor transpose(const Tensor& a) {
  check_2d(a, "transpose");
  Tensor t({a.size(1), a.size(0)});
  transpose_into(a, t);
  return t;
}

namespace {
template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, F f, const char* who) {
  if (!a.same_shape(b)) throw std::invalid_argument(std::string(who) + ": shape mismatch");
  Tensor c(a.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) c[i] = f(a[i], b[i]);
  return c;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x * y; }, "mul");
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor c = a;
  for (float& x : c.flat()) x += s;
  return c;
}
Tensor mul_scalar(const Tensor& a, float s) {
  Tensor c = a;
  c.scale_(s);
  return c;
}

void add_bias_(Tensor& a, const Tensor& bias) {
  const int64_t n = a.size(-1);
  if (bias.numel() != n) throw std::invalid_argument("add_bias: bias length mismatch");
  const int64_t rows = a.numel() / n;
  float* data = a.data();
  const float* bp = bias.data();
  parallel_for(rows, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = data + i * n;
      for (int64_t j = 0; j < n; ++j) row[j] += bp[j];
    }
  });
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  Tensor c = a;
  add_bias_(c, bias);
  return c;
}

void col_sum_accum(const Tensor& a, Tensor& out) {
  const int64_t n = a.size(-1);
  if (out.numel() != n) throw std::invalid_argument("col_sum: output length mismatch");
  const int64_t rows = a.numel() / n;
  const float* data = a.data();
  float* op = out.data();
  parallel_for(n, 64, [&](int64_t c0, int64_t c1) {
    for (int64_t i = 0; i < rows; ++i) {
      const float* row = data + i * n;
      for (int64_t j = c0; j < c1; ++j) op[j] += row[j];
    }
  });
}

Tensor col_sum(const Tensor& a) {
  Tensor s({a.size(-1)});
  col_sum_accum(a, s);
  return s;
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (float x : a.flat()) acc += x;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float x : a.flat()) m = std::max(m, std::fabs(x));
  return m;
}

Tensor softmax_lastdim(const Tensor& a) {
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  Tensor out = a;
  float* data = out.data();
  parallel_for(rows, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = data + i * n;
      float mx = row[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
      double denom = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        row[j] = std::exp(row[j] - mx);
        denom += row[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < n; ++j) row[j] *= inv;
    }
  });
  return out;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor gelu(const Tensor& a) {
  Tensor out = a;
  float* data = out.data();
  parallel_for(out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float x = data[i];
      const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
      data[i] = 0.5f * x * (1.0f + t);
    }
  });
  return out;
}

Tensor gelu_grad(const Tensor& x, const Tensor& dy) {
  if (!x.same_shape(dy)) throw std::invalid_argument("gelu_grad: shape mismatch");
  Tensor dx(x.shape());
  const float* xp = x.data();
  const float* dyp = dy.data();
  float* dxp = dx.data();
  parallel_for(x.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float v = xp[i];
      const float inner = kGeluC * (v + 0.044715f * v * v * v);
      const float t = std::tanh(inner);
      const float sech2 = 1.0f - t * t;
      const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
      const float g = 0.5f * (1.0f + t) + 0.5f * v * sech2 * dinner;
      dxp[i] = dyp[i] * g;
    }
  });
  return dx;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace hanayo::tensor
