#include "tensor/tensor.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "tensor/arena.hpp"

namespace hanayo::tensor {

Shape::Shape(std::initializer_list<int64_t> dims) {
  if (static_cast<int64_t>(dims.size()) > kMaxRank) {
    throw std::invalid_argument("Shape: rank exceeds kMaxRank");
  }
  for (int64_t d : dims) d_[static_cast<size_t>(n_++)] = d;
}

void Shape::push_back(int64_t v) {
  if (n_ >= kMaxRank) throw std::invalid_argument("Shape: rank overflow");
  d_[static_cast<size_t>(n_++)] = v;
}

bool operator==(const Shape& a, const Shape& b) {
  if (a.n_ != b.n_) return false;
  for (int64_t i = 0; i < a.n_; ++i) {
    if (a.d_[static_cast<size_t>(i)] != b.d_[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

Buffer::Buffer(int64_t n) : n_(n) {
  if (n_ <= 0) {
    n_ = 0;
    return;
  }
  if (Arena* a = Arena::current()) {
    p_ = a->alloc_floats(n_);
    arena_ = a;
  } else {
    p_ = new float[static_cast<size_t>(n_)];
  }
}

Buffer::Buffer(const Buffer& o) : Buffer(o.n_) {
  if (n_ > 0) std::memcpy(p_, o.p_, static_cast<size_t>(n_) * sizeof(float));
}

Buffer::Buffer(Buffer&& o) noexcept : p_(o.p_), n_(o.n_), arena_(o.arena_) {
  o.p_ = nullptr;
  o.n_ = 0;
  o.arena_ = nullptr;
}

Buffer& Buffer::operator=(const Buffer& o) {
  if (this == &o) return *this;
  // Allocate-from-current-context semantics, like the copy constructor:
  // the copy's lifetime belongs to whoever is making it now.
  Buffer tmp(o);
  *this = std::move(tmp);
  return *this;
}

Buffer& Buffer::operator=(Buffer&& o) noexcept {
  if (this == &o) return *this;
  release();
  p_ = o.p_;
  n_ = o.n_;
  arena_ = o.arena_;
  o.p_ = nullptr;
  o.n_ = 0;
  o.arena_ = nullptr;
  return *this;
}

void Buffer::release() {
  // Arena-backed payloads are reclaimed in bulk by Arena::reset(); this
  // destructor must not touch the pointer at all — the arena may already
  // have been reset by its owner thread by the time a cross-thread
  // consumer drops its (moved-from or copied) handle.
  if (arena_ == nullptr && p_ != nullptr) delete[] p_;
  p_ = nullptr;
  n_ = 0;
  arena_ = nullptr;
}

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape),
      data_(shape_numel(shape_)),
      last_dim_(shape_.empty() ? 0 : shape_.back()) {
  this->fill(fill);
}

Tensor::Tensor(Shape shape, const std::vector<float>& data)
    : shape_(shape),
      data_(shape_numel(shape_)),
      last_dim_(shape_.empty() ? 0 : shape_.back()) {
  if (data_.size() != static_cast<int64_t>(data.size())) {
    throw std::invalid_argument("data size does not match shape");
  }
  if (data_.size() > 0) {
    std::memcpy(data_.data(), data.data(),
                static_cast<size_t>(data_.size()) * sizeof(float));
  }
}

int64_t Tensor::size(int64_t i) const {
  const int64_t d = dim();
  if (i < 0) i += d;
  if (i < 0 || i >= d) throw std::out_of_range("Tensor::size index");
  return shape_[i];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch");
  }
  Tensor out;
  out.shape_ = new_shape;
  out.last_dim_ = out.shape_.empty() ? 0 : out.shape_.back();
  out.data_ = data_;
  return out;
}

Tensor Tensor::flattened_2d() const {
  if (dim() < 2) throw std::invalid_argument("flattened_2d: need dim>=2");
  int64_t cols = size(-1);
  return reshaped({numel() / cols, cols});
}

void Tensor::fill(float v) {
  float* p = data_.data();
  const int64_t n = data_.size();
  for (int64_t i = 0; i < n; ++i) p[i] = v;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("add_: shape mismatch");
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::scale_(float s) {
  float* p = data_.data();
  const int64_t n = data_.size();
  for (int64_t i = 0; i < n; ++i) p[i] *= s;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (int64_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace hanayo::tensor
