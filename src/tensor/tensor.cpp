#include "tensor/tensor.hpp"

#include <sstream>
#include <stdexcept>

namespace hanayo::tensor {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_numel(shape_)), fill),
      last_dim_(shape_.empty() ? 0 : shape_.back()) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)),
      data_(std::move(data)),
      last_dim_(shape_.empty() ? 0 : shape_.back()) {
  if (shape_numel(shape_) != static_cast<int64_t>(data_.size())) {
    throw std::invalid_argument("data size does not match shape");
  }
}

int64_t Tensor::size(int64_t i) const {
  const int64_t d = dim();
  if (i < 0) i += d;
  if (i < 0 || i >= d) throw std::out_of_range("Tensor::size index");
  return shape_[static_cast<size_t>(i)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.last_dim_ = out.shape_.empty() ? 0 : out.shape_.back();
  out.data_ = data_;
  return out;
}

Tensor Tensor::flattened_2d() const {
  if (dim() < 2) throw std::invalid_argument("flattened_2d: need dim>=2");
  int64_t cols = size(-1);
  return reshaped({numel() / cols, cols});
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("add_: shape mismatch");
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::scale_(float s) {
  for (float& x : data_) x *= s;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace hanayo::tensor
