#include "tensor/arena.hpp"

#include <algorithm>
#include <new>

namespace hanayo::tensor {

namespace {

// The active arena is a per-thread context so a pass running on one
// worker never sees another worker's arena. Plain pointer: install and
// lookup are both single-thread operations.
thread_local Arena* t_current = nullptr;

// First slab when no reservation was given: big enough that the tiny
// models in tests warm up in one or two growth events, small enough not
// to matter on a laptop.
constexpr int64_t kDefaultFirstSlab = 1 << 20;  // 1 MiB

int64_t align_up(int64_t n) {
  return (n + Arena::kAlign - 1) & ~(Arena::kAlign - 1);
}

}  // namespace

Arena* Arena::current() { return t_current; }

Arena::Arena(int64_t reserve_bytes) {
  // Reserve the slab directory itself up front: pushing a new slab during
  // warm-up must not make the vector reallocate mid-pass and muddy the
  // "what allocated?" picture. 32 geometric slabs cover any realistic
  // growth run.
  slabs_.reserve(32);
  next_cap_ = std::max<int64_t>(reserve_bytes, kDefaultFirstSlab);
  if (reserve_bytes > 0) grow(reserve_bytes);
  grow_count_ = 0;  // the up-front reservation is not "growth"
}

Arena::~Arena() {
  for (Slab& s : slabs_) delete[] s.raw;
}

void Arena::grow(int64_t min_bytes) {
  // A frozen arena growing means the steady state still discovers new
  // working set — exactly the bug class this assert exists to catch.
  assert(!frozen_ && "Arena grew after freeze(): pass working set not "
                     "covered by warm-up/reservation");
  const int64_t cap = align_up(std::max(min_bytes, next_cap_));
  next_cap_ = cap * 2;  // geometric: growth events are log-bounded
  char* raw = new char[static_cast<size_t>(cap + kAlign)];
  char* base = reinterpret_cast<char*>(
      align_up(reinterpret_cast<int64_t>(raw)));
  slabs_.push_back(Slab{raw, base, cap});
  ++grow_count_;
  cur_ = slabs_.size() - 1;
  used_ = 0;
}

int64_t Arena::live_bytes() const {
  int64_t n = used_;
  for (size_t i = 0; i < cur_; ++i) n += slabs_[i].cap;
  return n;
}

void* Arena::alloc(int64_t bytes) {
  const int64_t need = align_up(std::max<int64_t>(bytes, 1));
  // Walk forward over retained slabs before growing: a reset arena
  // re-fills the same slabs in the same order, heap-free.
  while (cur_ < slabs_.size() && used_ + need > slabs_[cur_].cap) {
    ++cur_;
    used_ = 0;
  }
  if (cur_ >= slabs_.size()) grow(need);
  char* p = slabs_[cur_].base + used_;
  used_ += need;
  high_water_ = std::max(high_water_, live_bytes());
  return p;
}

void Arena::reset() {
  cur_ = 0;
  used_ = 0;
}

void Arena::rewind(Mark m) {
  assert(m.slab <= cur_ && (m.slab < cur_ || m.used <= used_));
  cur_ = m.slab;
  used_ = m.used;
}

int64_t Arena::reserved() const {
  int64_t n = 0;
  for (const Slab& s : slabs_) n += s.cap;
  return n;
}

ArenaScope::ArenaScope(Arena& a) : prev_(t_current) {
  t_current = &a;
  a.reset();  // reclaim the previous pass now that its barrier has passed
}

ArenaScope::~ArenaScope() { t_current = prev_; }

ArenaPause::ArenaPause() : prev_(t_current) { t_current = nullptr; }

ArenaPause::~ArenaPause() { t_current = prev_; }

ScratchBuffer::ScratchBuffer(int64_t n_floats, std::vector<float>& fallback) {
  if (n_floats <= 0) return;
  if (Arena* ar = t_current) {
    arena_ = ar;
    mark_ = ar->mark();
    p_ = ar->alloc_floats(n_floats);
  } else {
    if (static_cast<int64_t>(fallback.size()) < n_floats) {
      // Geometric, never exact: an exact resize would re-allocate every
      // time a decode context grows by one token.
      fallback.resize(static_cast<size_t>(std::max(
          n_floats, 2 * static_cast<int64_t>(fallback.size()))));
    }
    p_ = fallback.data();
  }
}

ScratchBuffer::~ScratchBuffer() {
  if (arena_ != nullptr) arena_->rewind(mark_);
}

}  // namespace hanayo::tensor
