#pragma once
// Heap-allocation accounting for hot-path budgets.
//
// The ROADMAP's zero-allocation steady-state item needs a measurement, not
// a hope: this hook counts every `operator new` / `operator delete` in the
// process so tests can assert "a decode pass performs at most N heap
// allocations" and ratchet N toward zero as arenas land.
//
// Mechanism: alloc_stats.cpp defines the replaceable global allocation
// functions (funnelling through std::malloc/std::free) with relaxed atomic
// counters in front. Linking rule: the translation unit is pulled into a
// binary exactly when something references `alloc_stats()` — a test that
// asks for the numbers is counting, a binary that never asks keeps the
// stock allocator. The counters are process-wide and thread-safe; take a
// snapshot before and after the region of interest and subtract.

#include <cstdint>

namespace hanayo::tensor {

/// Cumulative process-wide allocation counters since start.
struct AllocStats {
  int64_t allocs = 0;  ///< operator new calls
  int64_t frees = 0;   ///< operator delete calls (non-null)
  int64_t bytes = 0;   ///< bytes requested across all allocs

  AllocStats operator-(const AllocStats& rhs) const {
    return {allocs - rhs.allocs, frees - rhs.frees, bytes - rhs.bytes};
  }
};

/// Snapshot of the counters. First use activates counting for the whole
/// binary (see linking rule above).
AllocStats alloc_stats();

/// Diagnostic tap for hunting the last allocations on a "zero" path: while
/// enabled, every counted allocation writes a short backtrace to stderr
/// (via backtrace_symbols_fd — itself allocation-free, so the tap cannot
/// recurse). Process-wide; flip it around the narrowest region possible.
/// No-op on platforms without <execinfo.h>.
void alloc_stats_trace(bool on);

}  // namespace hanayo::tensor
