#pragma once
// Pass-lifetime bump/slab arena — the zero-allocation steady-state engine.
//
// A decode pass (and a training iteration) allocates a storm of tensors
// whose lifetimes all end at the same instant: the pass boundary. The
// general-purpose allocator charges per-object costs (and p99 jitter) for
// a lifetime pattern that needs none. `Arena` is the alternative: an
// aligned bump pointer over pre-reserved slabs. Allocation is a pointer
// increment, deallocation is a no-op, and `reset()` reclaims everything
// in O(1) at the pass boundary. Slabs grow geometrically while the
// working set is being discovered (warm-up) and are retained across
// resets, so steady state performs zero heap traffic — the property
// tests/runtime/test_alloc_decode.cpp locks at a budget of 0.
//
// Threading model: the active arena is a thread-local *context*
// (`Arena::current()`), installed by `ArenaScope` for the duration of a
// pass. Tensor and scratch constructors consult the context; code that
// must allocate long-lived state mid-pass (KV growth, optimizer slots)
// suspends it with `ArenaPause`. An Arena object itself is single-
// threaded: one owner thread bumps it at a time. Cross-thread *reads* of
// arena-backed payloads are safe under the same fences that make any
// tensor hand-off safe; the owner must simply not reset until consumers
// are done (in this codebase, pass/iteration barriers guarantee that).
//
// Contributor rule (see core/hanayo.hpp): pass-lifetime buffers come
// from the arena — never bare `new` / `std::vector::resize` on a hot
// path. If the alloc ratchet trips, move the buffer into the arena
// rather than raising the budget.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hanayo::tensor {

class Arena {
 public:
  /// Payload alignment: one cache line, enough for any SIMD width we use.
  static constexpr int64_t kAlign = 64;

  /// `reserve_bytes` > 0 pre-allocates one slab of that size up front so
  /// a correctly-sized arena never grows at all (pass `sim/memory`-derived
  /// estimates here). 0 starts empty and discovers the working set during
  /// warm-up via geometric slab growth.
  explicit Arena(int64_t reserve_bytes = 0);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` (rounded up to kAlign), growing by a new slab
  /// only when every retained slab is exhausted. Never fails for
  /// reasonable sizes; throws std::bad_alloc like any allocator would.
  void* alloc(int64_t bytes);

  float* alloc_floats(int64_t n) {
    return static_cast<float*>(alloc(n * static_cast<int64_t>(sizeof(float))));
  }

  /// O(1) reclamation of every allocation since construction/last reset.
  /// Slabs are retained: after warm-up, reset + re-allocate touches the
  /// heap zero times. Callers own the proof that no consumer still reads
  /// arena-backed payloads (pass barriers provide it in this repo).
  void reset();

  /// A LIFO checkpoint for nested scratch (kernel pack panels): rewind
  /// frees everything allocated since the matching mark().
  struct Mark {
    size_t slab;
    int64_t used;
  };
  Mark mark() const { return Mark{cur_, used_}; }
  void rewind(Mark m);

  /// After warm-up a frozen arena asserts (Debug) on any further slab
  /// growth — the canary that a "steady state" still discovers new
  /// working set. Release builds grow gracefully.
  void freeze(bool on = true) { frozen_ = on; }

  /// Total bytes across retained slabs.
  int64_t reserved() const;
  /// Peak bytes live at once since construction — the number to feed back
  /// into reserve_bytes when pre-sizing.
  int64_t high_water() const { return high_water_; }
  /// Slab-growth events since construction (0 after warm-up = steady).
  int64_t grow_count() const { return grow_count_; }

  /// The calling thread's active arena context, or nullptr when
  /// allocations should go to the general-purpose heap.
  static Arena* current();

 private:
  friend class ArenaScope;
  friend class ArenaPause;

  struct Slab {
    char* raw;   // owning pointer (new char[])
    char* base;  // kAlign-aligned payload start
    int64_t cap;
  };

  void grow(int64_t min_bytes);
  int64_t live_bytes() const;

  std::vector<Slab> slabs_;
  size_t cur_ = 0;     // slab currently being bumped
  int64_t used_ = 0;   // bytes bumped in slabs_[cur_]
  int64_t next_cap_ = 0;
  int64_t high_water_ = 0;
  int64_t grow_count_ = 0;
  bool frozen_ = false;
};

/// RAII arena context: installs `a` as the calling thread's active arena
/// and — crucially — resets it at ENTRY, not exit. Resetting at the top
/// of the next pass (rather than the bottom of the current one) means
/// arena-backed payloads stay valid through the pass barrier that
/// publishes them to other threads; the destructor only restores the
/// previous context.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// A pass-lifetime float scratch panel with a LIFO discipline: drawn from
/// the active arena under mark/rewind when one is installed, otherwise
/// backed by a caller-supplied grow-only vector (typically thread_local at
/// the use site) with geometric growth. Either way, steady state performs
/// zero heap allocations; the arena path additionally keeps pool-free
/// threads from accumulating unbounded per-thread buffers.
class ScratchBuffer {
 public:
  ScratchBuffer(int64_t n_floats, std::vector<float>& fallback);
  ~ScratchBuffer();
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  float* data() { return p_; }

 private:
  float* p_ = nullptr;
  Arena* arena_ = nullptr;
  Arena::Mark mark_{};
};

/// Suspends the active arena for allocations that must outlive the pass
/// (KV-cache growth, lazily-created optimizer state): inside the pause,
/// Tensor/scratch constructors fall back to the heap.
class ArenaPause {
 public:
  ArenaPause();
  ~ArenaPause();
  ArenaPause(const ArenaPause&) = delete;
  ArenaPause& operator=(const ArenaPause&) = delete;

 private:
  Arena* prev_;
};

}  // namespace hanayo::tensor
