#pragma once
// Intra-op parallelism for the tensor kernels.
//
// A single persistent pool of worker threads, shared by every kernel in the
// process, partitions index ranges into contiguous chunks. Determinism is a
// hard requirement (the test suite compares pipeline-parallel training
// against a sequential reference bit-for-bit), so the partition is static:
// chunk boundaries depend only on the range and the thread count, and every
// output element is produced by exactly one chunk in a fixed order. A kernel
// that keeps its per-element accumulation order independent of the partition
// is therefore bit-identical for 1 and N threads.
//
// The intra-op thread count composes with the runtime's inter-op threads
// (the Trainer spawns one thread per pipeline worker): when many workers are
// running, each should use 1 intra-op thread; a single-worker session can
// give the whole machine to the kernels. `Session` plumbs this through
// `SessionConfig::intra_op_threads` (0 = pick automatically).

#include <cstdint>
#include <type_traits>

namespace hanayo::tensor {

/// Current intra-op thread count (>= 1).
int intra_op_threads();

/// Sets the intra-op thread count. n <= 0 selects the hardware concurrency.
/// Threads are created lazily on first use and persist for the process.
void set_intra_op_threads(int n);

/// Hardware concurrency as seen by the pool (>= 1).
int max_intra_op_threads();

/// A non-owning view of a `void(int64_t, int64_t)` callable — the
/// parallel_for chunk body. Unlike std::function, constructing one never
/// allocates (it is a {object pointer, trampoline} pair), which is what
/// keeps a steady-state decode pass at zero heap traffic no matter how
/// many kernels fan out per layer. Binding a temporary lambda is safe
/// here because parallel_for blocks until every chunk has retired, and a
/// temporary lives to the end of the full-expression that spawned it.
class ChunkFn {
 public:
  ChunkFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ChunkFn> &&
                std::is_invocable_v<const F&, int64_t, int64_t>>>
  ChunkFn(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* o, int64_t b, int64_t e) {
          (*static_cast<const F*>(o))(b, e);
        }) {}

  void operator()(int64_t begin, int64_t end) const {
    call_(obj_, begin, end);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, int64_t, int64_t) = nullptr;
};

/// Runs fn(begin, end) over a static partition of [0, n) into at most
/// intra_op_threads() contiguous chunks. Ranges shorter than `grain` run
/// inline on the caller; nested calls from inside a pool worker also run
/// inline (no recursive fan-out). Blocks until every chunk has finished.
/// Allocation-free on every path (pool submission included).
void parallel_for(int64_t n, int64_t grain, ChunkFn fn);

/// RAII override of the intra-op thread count (used by benches and tests to
/// compare 1-vs-N results on the same process-wide pool).
class IntraOpScope {
 public:
  explicit IntraOpScope(int n) : saved_(intra_op_threads()) {
    set_intra_op_threads(n);
  }
  ~IntraOpScope() { set_intra_op_threads(saved_); }
  IntraOpScope(const IntraOpScope&) = delete;
  IntraOpScope& operator=(const IntraOpScope&) = delete;

 private:
  int saved_;
};

}  // namespace hanayo::tensor
