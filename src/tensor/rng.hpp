#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the repo (weight init, synthetic workload
// generation) draws from an explicitly seeded `Rng` so that pipeline runs on
// P workers can be compared bit-for-bit against a sequential baseline.

#include <cstdint>

#include "tensor/tensor.hpp"

namespace hanayo::tensor {

/// xoshiro256** — small, fast, high-quality PRNG; deterministic across
/// platforms (unlike std::normal_distribution, whose output is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 1).
  float uniform();
  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box-Muller (deterministic given the seed).
  float normal();
  /// Uniform integer in [0, n).
  int64_t index(int64_t n);

  /// Tensor with iid N(0, std^2) entries.
  Tensor randn(Shape shape, float std = 1.0f);
  /// Tensor with iid U[lo, hi) entries.
  Tensor rand(Shape shape, float lo = 0.0f, float hi = 1.0f);

  uint64_t next_u64();

  /// Derives an independent child seed from (seed, stream) — splitmix64 of
  /// the hashed seed plus the stream id. Serving uses this to give every
  /// request its own decode-sampling stream: `Rng(Rng::split(seed, id))`
  /// draws the same values no matter which worker, replica, or batch
  /// composition serves the request.
  static uint64_t split(uint64_t seed, uint64_t stream);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace hanayo::tensor
