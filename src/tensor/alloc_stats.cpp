#include "tensor/alloc_stats.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HANAYO_HAVE_EXECINFO 1
#endif
#endif

namespace hanayo::tensor {
namespace {

// Relaxed is enough: tests snapshot around a joined region, and the joins
// themselves order the counts; the counters never synchronize anything.
std::atomic<int64_t> g_allocs{0};
std::atomic<int64_t> g_frees{0};
std::atomic<int64_t> g_bytes{0};
std::atomic<bool> g_trace{false};

void trace_alloc(std::size_t n) {
#if defined(HANAYO_HAVE_EXECINFO)
  // backtrace_symbols_fd writes straight to the fd without allocating, so
  // the tap cannot recurse into the counters it observes.
  static thread_local bool in_trace = false;
  if (in_trace) return;
  in_trace = true;
  std::fprintf(stderr, "[alloc_stats] operator new(%zu)\n", n);
  void* frames[32];
  const int depth = backtrace(frames, 32);
  backtrace_symbols_fd(frames, depth, 2);
  in_trace = false;
#else
  (void)n;
#endif
}

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_alloc(n);
  // Zero-size new must return a unique pointer; malloc(0) may return null.
  void* p = std::malloc(n == 0 ? 1 : n);
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_alloc(n);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t sz = ((n == 0 ? 1 : n) + a - 1) / a * a;
  return std::aligned_alloc(a, sz);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocStats alloc_stats() {
  AllocStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

void alloc_stats_trace(bool on) {
  g_trace.store(on, std::memory_order_relaxed);
}

}  // namespace hanayo::tensor

// Replaceable global allocation functions ([new.delete.single] /
// [new.delete.array]). Everything funnels through the two counted helpers
// so the counts cover scalar, array, nothrow and sized forms alike. The
// sanitizers intercept the underlying malloc/free, so ASan's poisoning and
// leak detection see every allocation exactly as without this hook.

void* operator new(std::size_t n) {
  void* p = hanayo::tensor::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = hanayo::tensor::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc(n);
}

void operator delete(void* p) noexcept { hanayo::tensor::counted_free(p); }
void operator delete[](void* p) noexcept { hanayo::tensor::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hanayo::tensor::counted_free(p);
}

// Over-aligned forms ([new.delete.single] p3): without these, an
// over-aligned allocation (e.g. a cache-line-aligned pool) would bypass
// the counters and make a "zero allocations" claim dishonest. glibc's
// free() handles aligned_alloc pointers, so the frees funnel unchanged.

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = hanayo::tensor::counted_alloc_aligned(n, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = hanayo::tensor::counted_alloc_aligned(n, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc_aligned(n, al);
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc_aligned(n, al);
}

void operator delete(void* p, std::align_val_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hanayo::tensor::counted_free(p);
}
