#include "tensor/alloc_stats.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace hanayo::tensor {
namespace {

// Relaxed is enough: tests snapshot around a joined region, and the joins
// themselves order the counts; the counters never synchronize anything.
std::atomic<int64_t> g_allocs{0};
std::atomic<int64_t> g_frees{0};
std::atomic<int64_t> g_bytes{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  // Zero-size new must return a unique pointer; malloc(0) may return null.
  void* p = std::malloc(n == 0 ? 1 : n);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocStats alloc_stats() {
  AllocStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hanayo::tensor

// Replaceable global allocation functions ([new.delete.single] /
// [new.delete.array]). Everything funnels through the two counted helpers
// so the counts cover scalar, array, nothrow and sized forms alike. The
// sanitizers intercept the underlying malloc/free, so ASan's poisoning and
// leak detection see every allocation exactly as without this hook.

void* operator new(std::size_t n) {
  void* p = hanayo::tensor::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = hanayo::tensor::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return hanayo::tensor::counted_alloc(n);
}

void operator delete(void* p) noexcept { hanayo::tensor::counted_free(p); }
void operator delete[](void* p) noexcept { hanayo::tensor::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hanayo::tensor::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hanayo::tensor::counted_free(p);
}
