#pragma once
// Blocked, SIMD-friendly compute kernels for the tensor substrate.
//
// The raw `kernels::gemm*` entry points operate on strided float panels so
// the model layer can multiply slices of larger tensors (per-head Q/K/V
// panels inside a [b, t, 3h] projection, weight matrices inside parameter
// structs) without materialising transposes or copies. The Tensor-level
// `*_into` / `*_accum` wrappers write into caller-owned outputs and
// accumulate into gradients without temporaries.
//
// Determinism contract: for a given problem, every output element is
// accumulated in ascending-k order regardless of blocking, SIMD width or
// the intra-op thread count. Threads partition output *rows* only, so the
// per-element reduction order never changes and results are bit-identical
// for 1 and N intra-op threads — the property the Threads-vs-Reference
// session equivalence tests rely on.

#include "tensor/tensor.hpp"

namespace hanayo::tensor::kernels {

/// C (m x n, row stride ldc) = or += A (m x k, lda) * B (k x n, ldb).
/// Cache-blocked with an MR x NR register micro-kernel whose inner loop is
/// contiguous in B and C rows (vectorisable, FMA-able). When `accumulate`
/// is false C is overwritten, otherwise the product is added to it.
void gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          const float* b, int64_t ldb, float* c, int64_t ldc,
          bool accumulate);

/// C (m x n, ldc) = or += A (m x k, lda) * B^T where B is n x k (ldb).
/// B is packed transposed into a per-thread scratch once, then reuses the
/// contiguous-inner-loop kernel; no caller-visible transpose temporary.
void gemm_bt(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// C (m x n, ldc) = or += A^T * B where A is k x m (lda) and B is k x n
/// (ldb). A is packed transposed into a per-thread scratch.
void gemm_at(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// dst (cols x rows, dense) = transpose of src (rows x cols, row stride
/// ld). Cache-blocked; also the packing primitive behind gemm_bt/gemm_at.
void transpose_pack(const float* src, int64_t rows, int64_t cols, int64_t ld,
                    float* dst);

/// A-panel packing toggle (default on). When enabled, large-k gemms copy
/// each thread's full-MR row blocks of A into contiguous MR-strided
/// panels once and stream the micro-kernel from the packed copy — same
/// values, same ascending-k per-element FMA order, so results stay
/// bitwise identical to the unpacked path (the bench and the kernel
/// tests A/B this switch to prove both claims).
void set_gemm_pack_a(bool on);
bool gemm_pack_a();

}  // namespace hanayo::tensor::kernels

namespace hanayo::tensor {

/// out (m x n) = a (m x k) * b (k x n); out must be pre-shaped {m, n}.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out += a * b (gradient accumulation without a temporary).
void matmul_accum(const Tensor& a, const Tensor& b, Tensor& out);

/// out (m x n) = a (m x k) * b^T with b (n x k).
void matmul_bt_into(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_bt_accum(const Tensor& a, const Tensor& b, Tensor& out);

/// out (m x n) = a^T * b with a (k x m), b (k x n).
void matmul_at_into(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_at_accum(const Tensor& a, const Tensor& b, Tensor& out);

/// out (n x m) = transpose of 2-d a (m x n); out must be pre-shaped.
void transpose_into(const Tensor& a, Tensor& out);

}  // namespace hanayo::tensor
