#include "tensor/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/arena.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::tensor::kernels {

namespace {

// Register micro-tile: MR rows of A against NR columns of B/C, sized per
// ISA so the accumulator tile exactly fills the SIMD register file
// (measured on a 2.1 GHz AVX-512 Xeon: 8x3 zmm accumulators ~130 GF/s vs
// ~21 GF/s for the seed's naive loop; the 6x2 ymm shape is the AVX2
// sweet spot at ~70 GF/s).
#if defined(__AVX512F__)
constexpr int64_t MR = 8;   // rows per register tile
constexpr int64_t NV = 3;   // vectors per row
constexpr int64_t VLEN = 16;  // floats per vector
#else
constexpr int64_t MR = 6;
constexpr int64_t NV = 2;
constexpr int64_t VLEN = 8;
#endif
constexpr int64_t NR = NV * VLEN;
// K-panel so the streamed B rows stay cache-resident between row blocks.
constexpr int64_t KC = 256;
// Unroll of the k loop inside the micro-kernel (hides FMA latency).
constexpr int64_t KU = 2;
// Problems below this many flops are not worth a trip through the pool.
constexpr int64_t kParallelFlops = int64_t{1} << 18;

// A-panel packing engages for k at least this deep: below it the pack
// traffic (m*k extra reads+writes) outweighs the contiguous-load win in
// the micro-kernel. Decode-shaped gemms (m = 1, no full MR block) never
// pack regardless.
constexpr int64_t kPackMinK = 64;

std::atomic<bool> g_pack_a{true};

// C[MR x NR] += A-panel * B-panel over kc steps. The accumulator tile is
// expressed as explicit VLEN-wide vector values (GCC/Clang vector
// extension) so it provably lives in SIMD registers — written as a plain
// float array the compiler spills it to the stack once this kernel is
// inlined into the blocking loops, which costs ~10x. Lane j of a vector is
// column j of C, so each element still accumulates one multiply-add per kk
// in ascending-kk order, the same sequence as the scalar edge kernel.
// `noinline` keeps the register allocation of this leaf isolated from the
// caller's loop nest. On compilers without the extension the scalar edge
// kernel below handles everything.
#if defined(__GNUC__) || defined(__clang__)
#define HANAYO_VECTOR_KERNEL 1
typedef float vf __attribute__((vector_size(VLEN * sizeof(float)),
                                aligned(alignof(float))));

// Scalar-to-vector broadcast. The braced form compiles to one
// vbroadcastss; arithmetic splats like `vf{} + x` cost an extra vector add
// (x + 0.0f is not foldable under signed-zero semantics). A macro rather
// than a function: returning a wide vector by value trips GCC's unfixable
// -Wpsabi ABI note on pre-AVX targets.
#if defined(__AVX512F__)
#define HANAYO_SPLAT(x) \
  (vf) { x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x }
#else
#define HANAYO_SPLAT(x) \
  (vf) { x, x, x, x, x, x, x, x }
#endif

// One k step for a register tile of MR x NVt vectors.
template <int64_t NVt>
inline void micro_step(int64_t kk, const float* a, int64_t lda,
                       const float* b, int64_t ldb, vf acc[MR][NVt]) {
  vf bv[NVt];
  for (int64_t q = 0; q < NVt; ++q)
    std::memcpy(&bv[q], b + kk * ldb + VLEN * q, sizeof(vf));
  for (int64_t r = 0; r < MR; ++r) {
    const vf avv = HANAYO_SPLAT(a[r * lda + kk]);
    for (int64_t q = 0; q < NVt; ++q) acc[r][q] += avv * bv[q];
  }
}

// Full-height register tile covering NVt vectors of columns; NVt < NV
// instantiations serve the column tail so it stays vectorised. When
// `load_c` is false the accumulators start from zero instead of reading C,
// so an overwriting gemm never needs a separate output-clearing pass
// (0 + ascending-k FMAs is the same per-element sequence either way).
template <int64_t NVt>
__attribute__((noinline)) void micro_tile(int64_t kc, const float* a,
                                          int64_t lda, const float* b,
                                          int64_t ldb, float* c, int64_t ldc,
                                          bool load_c) {
  vf acc[MR][NVt];
  if (load_c) {
    for (int64_t r = 0; r < MR; ++r)
      for (int64_t q = 0; q < NVt; ++q)
        std::memcpy(&acc[r][q], c + r * ldc + VLEN * q, sizeof(vf));
  } else {
    for (int64_t r = 0; r < MR; ++r)
      for (int64_t q = 0; q < NVt; ++q) acc[r][q] = vf{};
  }
  int64_t kk = 0;
  for (; kk + KU <= kc; kk += KU)
    for (int64_t u = 0; u < KU; ++u)
      micro_step<NVt>(kk + u, a, lda, b, ldb, acc);
  for (; kk < kc; ++kk) micro_step<NVt>(kk, a, lda, b, ldb, acc);
  for (int64_t r = 0; r < MR; ++r)
    for (int64_t q = 0; q < NVt; ++q)
      std::memcpy(c + r * ldc + VLEN * q, &acc[r][q], sizeof(vf));
}

// Column tail of nv whole vectors (nv in [1, NV)).
inline void micro_tile_tail(int64_t nv, int64_t kc, const float* a,
                            int64_t lda, const float* b, int64_t ldb,
                            float* c, int64_t ldc, bool load_c) {
  if (nv == 1) {
    micro_tile<1>(kc, a, lda, b, ldb, c, ldc, load_c);
  } else {
    static_assert(NV <= 3, "extend the tail dispatch for wider tiles");
    micro_tile<2>(kc, a, lda, b, ldb, c, ldc, load_c);
  }
}

// Packed-A variants: `ap` is an MR-strided panel (element (r, kk) at
// ap[kk * MR + r]) packed once per thread row-range, so the kk loop walks
// A contiguously instead of striding lda floats per row. The per-element
// FMA sequence is identical to the strided kernel — same values, same
// ascending-kk order — which keeps packed results bitwise equal to
// unpacked ones (locked by KernelsTest.PackABitIdentical).
template <int64_t NVt>
inline void micro_step_packed(int64_t kk, const float* ap, const float* b,
                              int64_t ldb, vf acc[MR][NVt]) {
  vf bv[NVt];
  for (int64_t q = 0; q < NVt; ++q)
    std::memcpy(&bv[q], b + kk * ldb + VLEN * q, sizeof(vf));
  const float* arow = ap + kk * MR;
  for (int64_t r = 0; r < MR; ++r) {
    const vf avv = HANAYO_SPLAT(arow[r]);
    for (int64_t q = 0; q < NVt; ++q) acc[r][q] += avv * bv[q];
  }
}

template <int64_t NVt>
__attribute__((noinline)) void micro_tile_packed(int64_t kc, const float* ap,
                                                 const float* b, int64_t ldb,
                                                 float* c, int64_t ldc,
                                                 bool load_c) {
  vf acc[MR][NVt];
  if (load_c) {
    for (int64_t r = 0; r < MR; ++r)
      for (int64_t q = 0; q < NVt; ++q)
        std::memcpy(&acc[r][q], c + r * ldc + VLEN * q, sizeof(vf));
  } else {
    for (int64_t r = 0; r < MR; ++r)
      for (int64_t q = 0; q < NVt; ++q) acc[r][q] = vf{};
  }
  int64_t kk = 0;
  for (; kk + KU <= kc; kk += KU)
    for (int64_t u = 0; u < KU; ++u)
      micro_step_packed<NVt>(kk + u, ap, b, ldb, acc);
  for (; kk < kc; ++kk) micro_step_packed<NVt>(kk, ap, b, ldb, acc);
  for (int64_t r = 0; r < MR; ++r)
    for (int64_t q = 0; q < NVt; ++q)
      std::memcpy(c + r * ldc + VLEN * q, &acc[r][q], sizeof(vf));
}

inline void micro_tile_tail_packed(int64_t nv, int64_t kc, const float* ap,
                                   const float* b, int64_t ldb, float* c,
                                   int64_t ldc, bool load_c) {
  if (nv == 1) {
    micro_tile_packed<1>(kc, ap, b, ldb, c, ldc, load_c);
  } else {
    micro_tile_packed<2>(kc, ap, b, ldb, c, ldc, load_c);
  }
}
#endif

// Ragged edge tiles (mr < MR and/or nr < NR); same loop structure and the
// same ascending-kk order per element.
inline void micro_edge(int64_t mr, int64_t nr, int64_t kc, const float* a,
                       int64_t lda, const float* b, int64_t ldb, float* c,
                       int64_t ldc, bool load_c) {
  float acc[MR][NR];
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = load_c ? c[r * ldc + j] : 0.0f;
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
}

// Pack-panel scratch. Two independent pools because they nest: gemm_bt
// holds its transposed-B panel across the inner gemm call, whose
// gemm_rows may pack A on the same thread — one shared buffer would be
// clobbered mid-product. When the calling thread has an active
// pass-lifetime arena the panel comes from it under a LIFO mark/rewind
// (the B mark strictly encloses the A mark, so rewinds pair up); without
// one (pool worker threads, cold paths) a grow-only thread_local backs it
// with geometric growth, so steady state allocates nothing either way.
std::vector<float>& pack_fallback_b() {
  thread_local std::vector<float> v;
  return v;
}

std::vector<float>& pack_fallback_a() {
  thread_local std::vector<float> v;
  return v;
}

// One thread's share of a gemm: rows [i0, i1) of C. The first k-panel of
// an overwriting gemm starts its accumulators from zero instead of reading
// C, so no separate output-clearing pass is needed. For deep-k problems
// the thread packs its full MR row blocks of A once into MR-strided
// panels, reused across every k-block and the whole column sweep; ragged
// row tails and small problems stream A in place.
void gemm_rows(int64_t i0, int64_t i1, int64_t n, int64_t k, const float* a,
               int64_t lda, const float* b, int64_t ldb, float* c,
               int64_t ldc, bool accumulate) {
  if (k <= 0) {  // degenerate product: all-zero (or untouched) output
    if (!accumulate) {
      for (int64_t i = i0; i < i1; ++i)
        std::memset(c + i * ldc, 0, static_cast<size_t>(n) * sizeof(float));
    }
    return;
  }
#ifdef HANAYO_VECTOR_KERNEL
  const int64_t full_blocks =
      (g_pack_a.load(std::memory_order_relaxed) && k >= kPackMinK &&
       n >= VLEN)
          ? (i1 - i0) / MR
          : 0;
#else
  const int64_t full_blocks = 0;
#endif
  ScratchBuffer apack(full_blocks * k * MR, pack_fallback_a());
#ifdef HANAYO_VECTOR_KERNEL
  if (full_blocks > 0) {
    for (int64_t blk = 0; blk < full_blocks; ++blk) {
      const float* src = a + (i0 + blk * MR) * lda;
      float* panel = apack.data() + blk * k * MR;
      for (int64_t kk = 0; kk < k; ++kk)
        for (int64_t r = 0; r < MR; ++r) panel[kk * MR + r] = src[r * lda + kk];
    }
  }
#endif
  for (int64_t kb = 0; kb < k; kb += KC) {
    const int64_t kc = std::min(KC, k - kb);
    const bool load_c = accumulate || kb > 0;
    for (int64_t i = i0; i < i1; i += MR) {
      const int64_t mr = std::min(MR, i1 - i);
      const float* apanel = a + i * lda + kb;
      const float* bpanel = b + kb * ldb;
      float* crow = c + i * ldc;
      int64_t j = 0;
#ifdef HANAYO_VECTOR_KERNEL
      if (mr == MR) {
        const int64_t blk = (i - i0) / MR;
        if (blk < full_blocks) {
          const float* ap = apack.data() + blk * k * MR + kb * MR;
          for (; j + NR <= n; j += NR)
            micro_tile_packed<NV>(kc, ap, bpanel + j, ldb, crow + j, ldc,
                                  load_c);
          const int64_t nv_tail = (n - j) / VLEN;
          if (nv_tail > 0) {
            micro_tile_tail_packed(nv_tail, kc, ap, bpanel + j, ldb, crow + j,
                                   ldc, load_c);
            j += nv_tail * VLEN;
          }
        } else {
          for (; j + NR <= n; j += NR)
            micro_tile<NV>(kc, apanel, lda, bpanel + j, ldb, crow + j, ldc,
                           load_c);
          const int64_t nv_tail = (n - j) / VLEN;
          if (nv_tail > 0) {
            micro_tile_tail(nv_tail, kc, apanel, lda, bpanel + j, ldb,
                            crow + j, ldc, load_c);
            j += nv_tail * VLEN;
          }
        }
      }
#endif
      // Ragged rows (m % MR) and the sub-vector column remainder.
      for (; j < n; j += NR) {
        micro_edge(mr, std::min(NR, n - j), kc, apanel, lda, bpanel + j, ldb,
                   crow + j, ldc, load_c);
      }
    }
  }
}

}  // namespace

void gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          const float* b, int64_t ldb, float* c, int64_t ldc,
          bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (2 * m * n * std::max<int64_t>(k, 1) < kParallelFlops) {
    gemm_rows(0, m, n, k, a, lda, b, ldb, c, ldc, accumulate);
    return;
  }
  // Partition whole MR row-blocks, so which rows share a register tile —
  // and therefore which micro-kernel touches them — depends only on m,
  // never on the thread count. That keeps results bit-identical for 1 and
  // N threads even if the full and edge kernels round differently.
  const int64_t row_blocks = (m + MR - 1) / MR;
  parallel_for(row_blocks, 1, [&](int64_t b0, int64_t b1) {
    gemm_rows(b0 * MR, std::min(b1 * MR, m), n, k, a, lda, b, ldb, c, ldc,
              accumulate);
  });
}

void gemm_bt(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate) {
  if (m <= 0 || n <= 0) return;
  ScratchBuffer pack(k * n, pack_fallback_b());
  float* bt = pack.data();
  transpose_pack(b, n, k, ldb, bt);  // n x k -> k x n
  gemm(m, n, k, a, lda, bt, n, c, ldc, accumulate);
}

void gemm_at(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate) {
  if (m <= 0 || n <= 0) return;
  ScratchBuffer pack(k * m, pack_fallback_b());
  float* at = pack.data();
  transpose_pack(a, k, m, lda, at);  // k x m -> m x k
  gemm(m, n, k, at, k, b, ldb, c, ldc, accumulate);
}

void set_gemm_pack_a(bool on) {
  g_pack_a.store(on, std::memory_order_relaxed);
}

bool gemm_pack_a() { return g_pack_a.load(std::memory_order_relaxed); }

void transpose_pack(const float* src, int64_t rows, int64_t cols, int64_t ld,
                    float* dst) {
  constexpr int64_t BT = 32;  // tile fits L1 in both orientations
  for (int64_t r0 = 0; r0 < rows; r0 += BT) {
    const int64_t r1 = std::min(r0 + BT, rows);
    for (int64_t c0 = 0; c0 < cols; c0 += BT) {
      const int64_t c1 = std::min(c0 + BT, cols);
      for (int64_t r = r0; r < r1; ++r) {
        const float* s = src + r * ld;
        for (int64_t c = c0; c < c1; ++c) dst[c * rows + r] = s[c];
      }
    }
  }
}

}  // namespace hanayo::tensor::kernels

namespace hanayo::tensor {

namespace {

void check_2d(const Tensor& t, const char* who) {
  if (t.dim() != 2) {
    throw std::invalid_argument(std::string(who) + ": need 2-d tensor");
  }
}

void check_out(const Tensor& out, int64_t m, int64_t n, const char* who) {
  if (out.dim() != 2 || out.size(0) != m || out.size(1) != n) {
    throw std::invalid_argument(std::string(who) + ": output must be " +
                                std::to_string(m) + "x" + std::to_string(n) +
                                ", got " + out.shape_str());
  }
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_into");
  check_2d(b, "matmul_into");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul_into: inner dim mismatch");
  check_out(out, m, n, "matmul_into");
  kernels::gemm(m, n, k, a.data(), k, b.data(), n, out.data(), n, false);
}

void matmul_accum(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_accum");
  check_2d(b, "matmul_accum");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul_accum: inner dim mismatch");
  check_out(out, m, n, "matmul_accum");
  kernels::gemm(m, n, k, a.data(), k, b.data(), n, out.data(), n, true);
}

void matmul_bt_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_bt_into");
  check_2d(b, "matmul_bt_into");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  if (b.size(1) != k) throw std::invalid_argument("matmul_bt_into: inner dim mismatch");
  check_out(out, m, n, "matmul_bt_into");
  kernels::gemm_bt(m, n, k, a.data(), k, b.data(), k, out.data(), n, false);
}

void matmul_bt_accum(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_bt_accum");
  check_2d(b, "matmul_bt_accum");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  if (b.size(1) != k) throw std::invalid_argument("matmul_bt_accum: inner dim mismatch");
  check_out(out, m, n, "matmul_bt_accum");
  kernels::gemm_bt(m, n, k, a.data(), k, b.data(), k, out.data(), n, true);
}

void matmul_at_into(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_at_into");
  check_2d(b, "matmul_at_into");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul_at_into: inner dim mismatch");
  check_out(out, m, n, "matmul_at_into");
  kernels::gemm_at(m, n, k, a.data(), m, b.data(), n, out.data(), n, false);
}

void matmul_at_accum(const Tensor& a, const Tensor& b, Tensor& out) {
  check_2d(a, "matmul_at_accum");
  check_2d(b, "matmul_at_accum");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul_at_accum: inner dim mismatch");
  check_out(out, m, n, "matmul_at_accum");
  kernels::gemm_at(m, n, k, a.data(), m, b.data(), n, out.data(), n, true);
}

void transpose_into(const Tensor& a, Tensor& out) {
  check_2d(a, "transpose_into");
  const int64_t m = a.size(0), n = a.size(1);
  check_out(out, n, m, "transpose_into");
  kernels::transpose_pack(a.data(), m, n, n, out.data());
}

}  // namespace hanayo::tensor
