#pragma once
// Numerical ops used by the model substrate.
//
// The GEMM variants and the row-wise ops are backed by the blocked,
// intra-op-parallel kernels in tensor/kernels.hpp. Every op keeps a fixed
// per-element summation order that is independent of blocking and thread
// count — determinism still matters more than raw speed, because the test
// suite compares pipeline-parallel training against a sequential baseline.
// Hot paths that want to avoid the returned temporaries should call the
// `*_into` / `*_accum` forms in tensor/kernels.hpp directly.

#include "tensor/tensor.hpp"

namespace hanayo::tensor {

/// C = A (m×k) * B (k×n). A and B must be 2-d.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A (m×k) * B^T (n×k). Used for backward passes without materialising
/// the transpose.
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// C = A^T (k×m) * B (k×n).
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// 2-d transpose.
Tensor transpose(const Tensor& a);

/// Elementwise binary ops (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// Scalar ops.
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

/// Adds a length-n bias row to every row of a (..., n) tensor.
Tensor add_bias(const Tensor& a, const Tensor& bias);
/// In-place form: a += bias on every row (no copy; the Linear epilogue).
void add_bias_(Tensor& a, const Tensor& bias);

/// Column-wise sum of a 2-d tensor -> length-n vector. (Bias gradient.)
Tensor col_sum(const Tensor& a);
/// Accumulating form: out += column sums of a (..., n); out has length n.
/// Columns are split across threads, each summed over rows in ascending
/// order, so the result is thread-count independent.
void col_sum_accum(const Tensor& a, Tensor& out);

/// Full reductions.
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);

/// Row-wise softmax over the last dimension (any rank; treated as 2-d).
Tensor softmax_lastdim(const Tensor& a);

/// GELU (tanh approximation) and its derivative given the forward input.
Tensor gelu(const Tensor& a);
Tensor gelu_grad(const Tensor& x, const Tensor& dy);

/// max elementwise |a - b|; used heavily in tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// true iff all |a-b| <= atol + rtol*|b| elementwise and shapes match.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace hanayo::tensor
