#pragma once
// Dense row-major float tensor.
//
// This is the computational substrate for the Hanayo runtime: activations,
// gradients and parameters are all `Tensor`s. The class is deliberately
// value-semantic (copyable, movable) so that the message-passing layer can
// move payloads between workers without sharing mutable state.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hanayo::tensor {

/// Shape of a tensor; up to 4 dimensions are used in practice
/// ([batch, seq, hidden] for activations, [rows, cols] for weights).
using Shape = std::vector<int64_t>;

class Tensor {
 public:
  /// An empty 0-d tensor (numel() == 0).
  Tensor() = default;

  /// A tensor of the given shape with every element set to `fill`.
  explicit Tensor(Shape shape, float fill = 0.0f);

  /// A tensor wrapping existing data (copied); data.size() must equal the
  /// product of `shape`.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// Number of elements.
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  /// Number of dimensions.
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  /// Extent of dimension `i` (supports negative indices, python-style).
  int64_t size(int64_t i) const;
  const Shape& shape() const { return shape_; }
  bool empty() const { return data_.empty(); }
  /// Bytes occupied by the payload (used by the memory accountant).
  int64_t bytes() const { return numel() * static_cast<int64_t>(sizeof(float)); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-d element access: (row, col). Unchecked and inline against the
  /// cached row stride — cheap enough to use in element loops.
  float& at(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * last_dim_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * last_dim_ + c)];
  }
  /// 3-d element access: (n, t, h). Unchecked.
  float& at(int64_t n, int64_t t, int64_t h) {
    return data_[static_cast<size_t>((n * shape_[1] + t) * shape_[2] + h)];
  }
  float at(int64_t n, int64_t t, int64_t h) const {
    return data_[static_cast<size_t>((n * shape_[1] + t) * shape_[2] + h)];
  }

  /// Returns a tensor with the same data and a new shape; numel must match.
  Tensor reshaped(Shape new_shape) const;
  /// Reinterprets [a, b, c] as [a*b, c] (no copy of semantics, data shared
  /// by value copy). Requires dim() >= 2.
  Tensor flattened_2d() const;

  /// In-place fill.
  void fill(float v);
  /// In-place zero.
  void zero() { fill(0.0f); }

  /// Elementwise in-place accumulate: *this += other. Shapes must match.
  void add_(const Tensor& other);
  /// Elementwise in-place scale: *this *= s.
  void scale_(float s);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable "[2, 3, 4]" string for diagnostics.
  std::string shape_str() const;

 private:
  Shape shape_;
  std::vector<float> data_;
  /// Extent of the last dimension, cached so at(r, c) is a single multiply
  /// rather than a bounds-checked size(-1) call per element access.
  int64_t last_dim_ = 0;
};

/// Product of all extents; throws on negative extents.
int64_t shape_numel(const Shape& shape);

}  // namespace hanayo::tensor
