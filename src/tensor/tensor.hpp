#pragma once
// Dense row-major float tensor.
//
// This is the computational substrate for the Hanayo runtime: activations,
// gradients and parameters are all `Tensor`s. The class is deliberately
// value-semantic (copyable, movable) so that the message-passing layer can
// move payloads between workers without sharing mutable state.
//
// Storage is arena-aware: when a pass-lifetime arena is the calling
// thread's active context (tensor/arena.hpp), new tensors draw their
// payload from it — a bump-pointer increment instead of operator new —
// and their destructors are no-ops. Outside an arena context (weights,
// KV slots, anything long-lived) storage comes from the heap as before.
// A tensor remembers which regime it was born into, so heap tensors and
// arena tensors mix freely; moving a tensor moves the payload without
// touching either allocator.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace hanayo::tensor {

class Arena;

/// Shape of a tensor; up to 4 dimensions are used in practice
/// ([batch, seq, hidden] for activations, [rows, cols] for weights).
/// Stored inline (fixed capacity, no heap) so that constructing a
/// pass-lifetime tensor performs zero allocations.
class Shape {
 public:
  static constexpr int64_t kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);

  int64_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  int64_t& operator[](int64_t i) { return d_[static_cast<size_t>(i)]; }
  int64_t operator[](int64_t i) const { return d_[static_cast<size_t>(i)]; }

  int64_t& back() { return d_[static_cast<size_t>(n_ - 1)]; }
  int64_t back() const { return d_[static_cast<size_t>(n_ - 1)]; }

  void push_back(int64_t v);
  void clear() { n_ = 0; }

  const int64_t* begin() const { return d_; }
  const int64_t* end() const { return d_ + n_; }

  friend bool operator==(const Shape& a, const Shape& b);
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  int64_t d_[kMaxRank] = {};
  int64_t n_ = 0;
};

/// The payload of a Tensor: a float block owned either by the heap or by
/// the arena that was active when it was created. Arena-backed buffers
/// have no-op destructors (the arena reclaims in bulk at reset), which is
/// what lets a whole pass tear down without a single free().
class Buffer {
 public:
  Buffer() = default;
  /// Uninitialized storage for n floats from the active context.
  explicit Buffer(int64_t n);
  Buffer(const Buffer& o);
  Buffer(Buffer&& o) noexcept;
  Buffer& operator=(const Buffer& o);
  Buffer& operator=(Buffer&& o) noexcept;
  ~Buffer() { release(); }

  float* data() { return p_; }
  const float* data() const { return p_; }
  int64_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

 private:
  void release();

  float* p_ = nullptr;
  int64_t n_ = 0;
  /// Non-null: `p_` lives in this arena and must never be freed here
  /// (the arena resets in bulk). Null: `p_` is `new float[]` and the
  /// destructor releases it.
  Arena* arena_ = nullptr;
};

class Tensor {
 public:
  /// An empty 0-d tensor (numel() == 0).
  Tensor() = default;

  /// A tensor of the given shape with every element set to `fill`.
  explicit Tensor(Shape shape, float fill = 0.0f);

  /// A tensor wrapping existing data (copied); data.size() must equal the
  /// product of `shape`.
  Tensor(Shape shape, const std::vector<float>& data);

  static Tensor zeros(Shape shape) { return Tensor(shape, 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(shape, 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(shape, v); }

  /// Number of elements.
  int64_t numel() const { return data_.size(); }
  /// Number of dimensions.
  int64_t dim() const { return shape_.size(); }
  /// Extent of dimension `i` (supports negative indices, python-style).
  int64_t size(int64_t i) const;
  const Shape& shape() const { return shape_; }
  bool empty() const { return data_.empty(); }
  /// Bytes occupied by the payload (used by the memory accountant).
  int64_t bytes() const { return numel() * static_cast<int64_t>(sizeof(float)); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() {
    return {data_.data(), static_cast<size_t>(data_.size())};
  }
  std::span<const float> flat() const {
    return {data_.data(), static_cast<size_t>(data_.size())};
  }

  float& operator[](int64_t i) { return data_.data()[i]; }
  float operator[](int64_t i) const { return data_.data()[i]; }

  /// 2-d element access: (row, col). Unchecked and inline against the
  /// cached row stride — cheap enough to use in element loops.
  float& at(int64_t r, int64_t c) { return data_.data()[r * last_dim_ + c]; }
  float at(int64_t r, int64_t c) const {
    return data_.data()[r * last_dim_ + c];
  }
  /// 3-d element access: (n, t, h). Unchecked.
  float& at(int64_t n, int64_t t, int64_t h) {
    return data_.data()[(n * shape_[1] + t) * shape_[2] + h];
  }
  float at(int64_t n, int64_t t, int64_t h) const {
    return data_.data()[(n * shape_[1] + t) * shape_[2] + h];
  }

  /// Returns a tensor with the same data and a new shape; numel must match.
  Tensor reshaped(Shape new_shape) const;
  /// Reinterprets [a, b, c] as [a*b, c] (no copy of semantics, data shared
  /// by value copy). Requires dim() >= 2.
  Tensor flattened_2d() const;

  /// In-place fill.
  void fill(float v);
  /// In-place zero.
  void zero() { fill(0.0f); }

  /// Elementwise in-place accumulate: *this += other. Shapes must match.
  void add_(const Tensor& other);
  /// Elementwise in-place scale: *this *= s.
  void scale_(float s);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable "[2, 3, 4]" string for diagnostics.
  std::string shape_str() const;

 private:
  Shape shape_;
  Buffer data_;
  /// Extent of the last dimension, cached so at(r, c) is a single multiply
  /// rather than a bounds-checked size(-1) call per element access.
  int64_t last_dim_ = 0;
};

/// Product of all extents; throws on negative extents.
int64_t shape_numel(const Shape& shape);

}  // namespace hanayo::tensor
