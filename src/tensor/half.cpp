#include "tensor/half.hpp"

#include <bit>

namespace hanayo::tensor {

uint16_t float_to_half(float f) {
  const uint32_t bits = std::bit_cast<uint32_t>(f);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;

  if (exp == 0xFFu) {
    // Inf / NaN: keep a non-zero mantissa bit for NaN.
    return static_cast<uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }

  // Unbiased exponent; fp16 bias is 15, fp32 bias is 127.
  const int32_t e = static_cast<int32_t>(exp) - 127 + 15;

  if (e >= 0x1F) {
    // Overflow: saturate to infinity.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {
    // Subnormal or zero. Shift the (implicit-1) mantissa right; round to
    // nearest even on the bits shifted out.
    if (e < -10) return static_cast<uint16_t>(sign);  // underflow to ±0
    mant |= 0x800000u;                                // implicit leading 1
    const int shift = 14 - e;                         // 14..24
    const uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    uint32_t rounded = half_mant;
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++rounded;
    return static_cast<uint16_t>(sign | rounded);
  }

  // Normal: round mantissa from 23 to 10 bits, to nearest even.
  uint32_t half = sign | (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // may carry into the exponent — that is correct (1.111.. -> 10.0)
  }
  return static_cast<uint16_t>(half);
}

float half_to_float(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;

  uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal: normalise.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

Tensor fp16_round_trip(const Tensor& t) {
  Tensor out(t.shape());
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    out[i] = half_to_float(float_to_half(t[i]));
  }
  return out;
}

}  // namespace hanayo::tensor
