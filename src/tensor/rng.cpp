#include "tensor/rng.hpp"

#include <cmath>

namespace hanayo::tensor {

namespace {
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::split(uint64_t seed, uint64_t stream) {
  uint64_t x = seed;
  uint64_t h = splitmix64(x);  // avalanche the seed before folding the stream
  h += stream;
  return splitmix64(h);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1).
  return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  float u1 = uniform();
  if (u1 < 1e-12f) u1 = 1e-12f;
  const float u2 = uniform();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 6.283185307179586f * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

int64_t Rng::index(int64_t n) {
  return static_cast<int64_t>(next_u64() % static_cast<uint64_t>(n));
}

Tensor Rng::randn(Shape shape, float std) {
  Tensor t(std::move(shape));
  for (float& x : t.flat()) x = normal() * std;
  return t;
}

Tensor Rng::rand(Shape shape, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.flat()) x = uniform(lo, hi);
  return t;
}

}  // namespace hanayo::tensor
