#include "tensor/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace hanayo::tensor {

namespace {

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

std::atomic<int> g_intra_op_threads{1};

// True while the current thread is executing inside a parallel_for region
// (pool workers permanently; the submitter for the duration of its chunks).
// Nested parallel_for calls run inline instead of deadlocking on the pool
// that is executing them.
thread_local bool t_in_parallel_region = false;

// One job = one parallel_for call: a static partition of [0, n) into
// `chunks` pieces. Workers claim chunk indices from an atomic counter; the
// partition itself (and therefore every result) does not depend on which
// thread runs which chunk. The job is shared-owned so a worker that wakes
// late — after the submitter has already returned — still reads valid
// memory when it finds no chunk left to claim. `fn` lives on the
// submitter's stack, which is safe: a chunk can only be claimed while the
// submitter is still blocked waiting for that chunk to finish.
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t n = 0;
  int chunks = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  // First exception thrown by any chunk (submitter or worker); rethrown on
  // the submitter after every chunk has retired, so `fn` stays alive until
  // no thread can touch it.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
};

// RAII for the nesting flag so an exception unwinding through a chunk
// cannot leave the thread permanently marked as inside a parallel region.
struct ParallelRegionGuard {
  ParallelRegionGuard() { t_in_parallel_region = true; }
  ~ParallelRegionGuard() { t_in_parallel_region = false; }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool* p = new Pool();  // leaked: workers must outlive static dtors
    return *p;
  }

  void run(const std::function<void(int64_t, int64_t)>& fn, int64_t n,
           int chunks) {
    // One job at a time. A submitter that finds the pool busy (e.g. two
    // pipeline workers both configured with >1 intra-op threads) runs its
    // whole range inline instead of idling on the lock — degrading to
    // inter-op parallelism rather than serialising it. The partition
    // changing from N chunks to 1 is result-neutral by the determinism
    // contract.
    std::unique_lock submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      fn(0, n);
      return;
    }
    ensure_workers(chunks - 1);
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->chunks = chunks;
    {
      std::lock_guard lk(mu_);
      job_ = job;
      ++generation_;
    }
    cv_.notify_all();
    {
      // The submitter is a chunk executor too; flag it so kernels it calls
      // from inside a chunk don't try to re-enter the pool.
      ParallelRegionGuard guard;
      work_on(*job);
    }
    {
      std::unique_lock lk(mu_);
      done_cv_.wait(lk, [&] {
        return job->done.load(std::memory_order_acquire) >= job->chunks;
      });
      job_.reset();
    }
    // Safe to rethrow only now: every chunk has retired, so no thread can
    // still dereference the caller's fn.
    if (job->failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(job->error);
    }
  }

 private:
  Pool() = default;

  static void run_chunk(const Job& job, int c) {
    const int64_t per = job.n / job.chunks;
    const int64_t extra = job.n % job.chunks;
    const int64_t begin = c * per + std::min<int64_t>(c, extra);
    const int64_t end = begin + per + (c < extra ? 1 : 0);
    (*job.fn)(begin, end);
  }

  // Claims and runs chunks until none remain; returns after contributing
  // this thread's completions to job.done (with a wakeup if it finished the
  // job). A throwing chunk records its exception on the job and still
  // counts as done, so the submitter's wait always terminates and can
  // rethrow afterwards.
  void work_on(Job& job) {
    bool finished_job = false;
    for (int c = job.next.fetch_add(1, std::memory_order_relaxed);
         c < job.chunks; c = job.next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        run_chunk(job, c);
      } catch (...) {
        // First failure wins; its error write is published to the
        // submitter by this thread's done increment below. Remaining
        // chunks still run (they are independent), keeping the done count
        // exact so the submitter's wait always terminates.
        if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
          job.error = std::current_exception();
        }
      }
      const int d = job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
      finished_job = (d == job.chunks);
    }
    if (finished_job) {
      std::lock_guard lk(mu_);
      done_cv_.notify_all();
    }
  }

  void ensure_workers(int want) {
    std::lock_guard lk(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { worker_loop(); });
      workers_.back().detach();
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return generation_ != seen && job_ != nullptr; });
        seen = generation_;
        job = job_;
      }
      work_on(*job);
    }
  }

  sync::Mutex<sync::Rank::IntraOpSubmit> submit_mu_;
  sync::Mutex<sync::Rank::IntraOpPool> mu_;
  sync::CondVar cv_;
  sync::CondVar done_cv_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace

int intra_op_threads() {
  return g_intra_op_threads.load(std::memory_order_relaxed);
}

void set_intra_op_threads(int n) {
  if (n <= 0) n = hardware_threads();
  g_intra_op_threads.store(n, std::memory_order_relaxed);
}

int max_intra_op_threads() { return hardware_threads(); }

void parallel_for(int64_t n, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = intra_op_threads();
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int chunks = static_cast<int>(std::min<int64_t>(threads, max_chunks));
  if (chunks <= 1 || t_in_parallel_region) {
    fn(0, n);
    return;
  }
  Pool::instance().run(fn, n, chunks);
}

}  // namespace hanayo::tensor
