#include "tensor/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace hanayo::tensor {

namespace {

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

std::atomic<int> g_intra_op_threads{1};

// True while the current thread is executing inside a parallel_for region
// (pool workers permanently; the submitter for the duration of its chunks).
// Nested parallel_for calls run inline instead of deadlocking on the pool
// that is executing them.
thread_local bool t_in_parallel_region = false;

// RAII for the nesting flag so an exception unwinding through a chunk
// cannot leave the thread permanently marked as inside a parallel region.
struct ParallelRegionGuard {
  ParallelRegionGuard() { t_in_parallel_region = true; }
  ~ParallelRegionGuard() { t_in_parallel_region = false; }
};

// One job = one parallel_for call: a static partition of [0, n) into
// `chunks` pieces. Determinism contract: chunk boundaries depend only on
// (n, chunks), and every output element is produced by exactly one chunk
// in a fixed order, so results are independent of which thread runs which
// chunk.
//
// The job state lives *inside* the leaked Pool singleton — there is no
// per-submission allocation of any kind. Safe reuse across submissions is
// the subtle part: a worker descheduled mid-claim must not be able to
// steal a chunk of a *later* job. Chunks are therefore claimed from a
// single 64-bit ticket that packs (epoch << kIdxBits) | next_chunk and is
// advanced by CAS, never fetch_add: a stale worker's CAS fails the moment
// the epoch in the ticket no longer matches the epoch it snapshotted at
// wake-up, and it backs off without mutating anything.
constexpr int kIdxBits = 20;  // 1M chunks per job; chunks <= thread count
constexpr uint64_t kIdxMask = (uint64_t{1} << kIdxBits) - 1;

// Per-wake snapshot of the published job: taken under the pool mutex, so
// fn/n/chunks are the ones written for `epoch`.
struct JobView {
  ChunkFn fn;
  int64_t n = 0;
  int chunks = 0;
  uint64_t epoch = 0;
};

class Pool {
 public:
  static Pool& instance() {
    static Pool* p = new Pool();  // leaked: workers must outlive static dtors
    return *p;
  }

  void run(ChunkFn fn, int64_t n, int chunks) {
    // One job at a time. A submitter that finds the pool busy (e.g. two
    // pipeline workers both configured with >1 intra-op threads) runs its
    // whole range inline instead of idling on the lock — degrading to
    // inter-op parallelism rather than serialising it. The partition
    // changing from N chunks to 1 is result-neutral by the determinism
    // contract.
    std::unique_lock submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      fn(0, n);
      return;
    }
    ensure_workers(chunks - 1);
    JobView view;
    {
      std::lock_guard lk(mu_);
      fn_ = fn;
      n_ = n;
      chunks_ = chunks;
      done_.store(0, std::memory_order_relaxed);
      failed_.store(false, std::memory_order_relaxed);
      view = JobView{fn, n, chunks, ++generation_};
      // Publishing the ticket (epoch, chunk 0) opens the job for claiming.
      ticket_.store(view.epoch << kIdxBits, std::memory_order_release);
    }
    cv_.notify_all();
    {
      // The submitter is a chunk executor too; flag it so kernels it calls
      // from inside a chunk don't try to re-enter the pool.
      ParallelRegionGuard guard;
      work_on(view);
    }
    {
      std::unique_lock lk(mu_);
      done_cv_.wait(lk, [&] {
        return done_.load(std::memory_order_acquire) >= chunks_;
      });
    }
    // Safe to rethrow only now: every chunk has retired, so no thread can
    // still dereference the caller's fn. (The exceptional path may
    // allocate; the hot path never does.)
    if (failed_.load(std::memory_order_acquire)) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  Pool() { workers_.reserve(static_cast<size_t>(hardware_threads())); }

  static void run_chunk(const JobView& job, int c) {
    const int64_t per = job.n / job.chunks;
    const int64_t extra = job.n % job.chunks;
    const int64_t begin = c * per + std::min<int64_t>(c, extra);
    const int64_t end = begin + per + (c < extra ? 1 : 0);
    job.fn(begin, end);
  }

  // CAS-claims the next chunk of the job `view` describes. Fails — without
  // side effects — if the published ticket's epoch is not view.epoch (a
  // newer job was published, or this one is already torn down) or every
  // chunk is claimed.
  bool claim(const JobView& view, int& c) {
    uint64_t t = ticket_.load(std::memory_order_acquire);
    for (;;) {
      if ((t >> kIdxBits) != view.epoch) return false;
      const int idx = static_cast<int>(t & kIdxMask);
      if (idx >= view.chunks) return false;
      if (ticket_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        c = idx;
        return true;
      }
    }
  }

  // Claims and runs chunks until none remain; contributes this thread's
  // completions to done_ (with a wakeup if it finished the job). A
  // throwing chunk records its exception and still counts as done, so the
  // submitter's wait always terminates and can rethrow afterwards.
  void work_on(const JobView& view) {
    bool finished_job = false;
    for (int c = 0; claim(view, c);) {
      try {
        run_chunk(view, c);
      } catch (...) {
        // First failure wins; its error write is published to the
        // submitter by this thread's done increment below. Remaining
        // chunks still run (they are independent), keeping the done count
        // exact so the submitter's wait always terminates.
        if (!failed_.exchange(true, std::memory_order_acq_rel)) {
          error_ = std::current_exception();
        }
      }
      const int d = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
      finished_job = (d == view.chunks);
    }
    if (finished_job) {
      std::lock_guard lk(mu_);
      done_cv_.notify_all();
    }
  }

  void ensure_workers(int want) {
    std::lock_guard lk(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { worker_loop(); });
      workers_.back().detach();
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    uint64_t seen = 0;
    for (;;) {
      JobView view;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return generation_ != seen; });
        seen = generation_;
        view = JobView{fn_, n_, chunks_, generation_};
      }
      // A worker that slept through a whole job wakes here after it is
      // done; its claims fail on the exhausted/stale ticket and it goes
      // back to sleep without touching anything.
      work_on(view);
    }
  }

  sync::Mutex<sync::Rank::IntraOpSubmit> submit_mu_;
  sync::Mutex<sync::Rank::IntraOpPool> mu_;
  sync::CondVar cv_;
  sync::CondVar done_cv_;

  // Published job state (guarded by mu_; ticket_/done_/failed_ are the
  // lock-free fast paths).
  ChunkFn fn_;
  int64_t n_ = 0;
  int chunks_ = 0;
  uint64_t generation_ = 0;
  std::atomic<uint64_t> ticket_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;

  std::vector<std::thread> workers_;
};

}  // namespace

int intra_op_threads() {
  return g_intra_op_threads.load(std::memory_order_relaxed);
}

void set_intra_op_threads(int n) {
  if (n <= 0) n = hardware_threads();
  g_intra_op_threads.store(n, std::memory_order_relaxed);
}

int max_intra_op_threads() { return hardware_threads(); }

void parallel_for(int64_t n, int64_t grain, ChunkFn fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = intra_op_threads();
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int chunks = static_cast<int>(std::min<int64_t>(threads, max_chunks));
  if (chunks <= 1 || t_in_parallel_region) {
    fn(0, n);
    return;
  }
  Pool::instance().run(fn, n, chunks);
}

}  // namespace hanayo::tensor
