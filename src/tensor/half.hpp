#pragma once
// IEEE 754 binary16 conversion, from scratch.
//
// The paper's training setup is mixed precision (§6 cites Micikevicius et
// al.): activations and the P2P transfers between pipeline stages are fp16,
// halving both the activation memory (the Ma axis of Fig. 3) and the
// communication volume that the bubble model charges as T_C. This module is
// the codec; comm/fp16.hpp applies it to pipeline transfers.
//
// Conversion follows the standard: round-to-nearest-even, gradual underflow
// to subnormals, saturation of out-of-range magnitudes to ±inf, NaN
// preservation.

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace hanayo::tensor {

/// Converts one float to binary16 bits (round-to-nearest-even).
uint16_t float_to_half(float f);

/// Converts binary16 bits to float (exact).
float half_to_float(uint16_t h);

/// Quantizes every element through fp16 and back — the numerical effect of
/// storing/transmitting the tensor in half precision.
Tensor fp16_round_trip(const Tensor& t);

/// Largest finite fp16 value (65504) and smallest positive normal (2^-14).
inline constexpr float kHalfMax = 65504.0f;
inline constexpr float kHalfMinNormal = 6.103515625e-05f;

/// Maximum relative rounding error of fp16 for normal values: 2^-11.
inline constexpr float kHalfEps = 4.8828125e-04f;

}  // namespace hanayo::tensor
