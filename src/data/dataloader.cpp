#include "data/dataloader.hpp"

#include <numeric>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace hanayo::data {

DataLoader::DataLoader(const SyntheticCorpus* corpus, LoaderConfig cfg)
    : corpus_(corpus), cfg_(cfg) {
  if (corpus == nullptr) throw std::invalid_argument("DataLoader: null corpus");
  if (cfg.dataset_sequences < 1 || cfg.seq_len < 1 || cfg.micro_batches < 1 ||
      cfg.mb_sequences < 1 || cfg.dp < 1) {
    throw std::invalid_argument("DataLoader: all sizes must be positive");
  }
  if (batch_rows() > cfg.dataset_sequences) {
    throw std::invalid_argument("DataLoader: dataset smaller than one batch");
  }
}

int64_t DataLoader::batch_rows() const {
  return static_cast<int64_t>(cfg_.dp) * cfg_.micro_batches * cfg_.mb_sequences;
}

int64_t DataLoader::batches_per_epoch() const {
  return cfg_.dataset_sequences / batch_rows();
}

std::vector<int64_t> DataLoader::epoch_permutation(int64_t epoch) const {
  std::vector<int64_t> idx(static_cast<size_t>(cfg_.dataset_sequences));
  std::iota(idx.begin(), idx.end(), 0);
  if (!cfg_.shuffle) return idx;
  // Fisher-Yates with the library RNG, seeded by (seed, epoch): identical
  // on every rank, different across epochs.
  tensor::Rng rng(cfg_.seed * 0x9E3779B9ull + static_cast<uint64_t>(epoch) + 1);
  for (int64_t i = cfg_.dataset_sequences - 1; i > 0; --i) {
    const int64_t j = rng.index(i + 1);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  return idx;
}

std::vector<int64_t> DataLoader::batch_indices(int64_t epoch, int64_t step) const {
  if (epoch < 0 || step < 0 || step >= batches_per_epoch()) {
    throw std::out_of_range("DataLoader: step out of range");
  }
  const auto perm = epoch_permutation(epoch);
  const int64_t rows = batch_rows();
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    out[static_cast<size_t>(r)] = perm[static_cast<size_t>(step * rows + r)];
  }
  return out;
}

runtime::Batch DataLoader::batch(int64_t epoch, int64_t step) const {
  const auto indices = batch_indices(epoch, step);
  const int64_t rows = static_cast<int64_t>(indices.size());
  runtime::Batch b;
  b.inputs = tensor::Tensor({rows, cfg_.seq_len});
  b.targets = tensor::Tensor({rows, cfg_.seq_len});
  for (int64_t r = 0; r < rows; ++r) {
    tensor::Tensor in, tgt;
    corpus_->fill_batch(indices[static_cast<size_t>(r)], 1, cfg_.seq_len, &in,
                        &tgt);
    for (int64_t t = 0; t < cfg_.seq_len; ++t) {
      b.inputs.at(r, t) = in.at(0, t);
      b.targets.at(r, t) = tgt.at(0, t);
    }
  }
  return b;
}

}  // namespace hanayo::data
