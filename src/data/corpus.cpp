#include "data/corpus.hpp"

#include <cmath>
#include <stdexcept>

namespace hanayo::data {

namespace {

/// Tokens are generated in independent blocks ("documents"): the chain
/// restarts at each block boundary, so any position is computable from its
/// block start in at most kBlock steps — random access without replaying
/// the whole stream.
constexpr int64_t kBlock = 64;

/// Probability mass given to the preferred successors (the rest smooths
/// uniformly over the vocabulary, so every transition stays possible).
constexpr double kPeak = 0.9;

uint64_t mix(uint64_t x) {
  // splitmix64 finaliser.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SyntheticCorpus::SyntheticCorpus(int64_t vocab, uint64_t seed, int branching)
    : vocab_(vocab), seed_(seed), branching_(branching) {
  if (vocab < 2 || branching < 1 || branching > 16) {
    throw std::invalid_argument("SyntheticCorpus: need vocab >= 2, 1 <= branching <= 16");
  }
}

int32_t SyntheticCorpus::successor(int32_t cur, int k) const {
  return static_cast<int32_t>(
      mix(seed_ ^ (static_cast<uint64_t>(cur) << 20) ^ static_cast<uint64_t>(k)) %
      static_cast<uint64_t>(vocab_));
}

double SyntheticCorpus::unit(int64_t position) const {
  const uint64_t h = mix(seed_ * 0x51ul ^ static_cast<uint64_t>(position));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int32_t SyntheticCorpus::sample_next(int32_t cur, int64_t position) const {
  double u = unit(position);
  if (u < kPeak) {
    // Geometric preference over the branching successors: successor k gets
    // kPeak * 2^-(k+1) / (1 - 2^-branching).
    u /= kPeak;
    const double norm = 1.0 - std::ldexp(1.0, -branching_);
    double acc = 0.0;
    for (int k = 0; k < branching_; ++k) {
      acc += std::ldexp(1.0, -(k + 1)) / norm;
      if (u < acc || k == branching_ - 1) return successor(cur, k);
    }
  }
  // Smoothing: uniform over the vocabulary.
  const double v = (u - kPeak) / (1.0 - kPeak);
  return static_cast<int32_t>(
      std::min<int64_t>(vocab_ - 1, static_cast<int64_t>(v * static_cast<double>(vocab_))));
}

double SyntheticCorpus::transition_prob(int32_t cur, int32_t next) const {
  const double norm = 1.0 - std::ldexp(1.0, -branching_);
  double p = (1.0 - kPeak) / static_cast<double>(vocab_);
  for (int k = 0; k < branching_; ++k) {
    if (successor(cur, k) == next) {
      p += kPeak * std::ldexp(1.0, -(k + 1)) / norm;
    }
  }
  return p;
}

std::vector<int32_t> SyntheticCorpus::tokens(int64_t offset, int64_t count) const {
  if (offset < 0 || count < 0) {
    throw std::invalid_argument("SyntheticCorpus::tokens: negative range");
  }
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(count));
  int64_t pos = offset;
  while (out.size() < static_cast<size_t>(count)) {
    const int64_t block = pos / kBlock;
    const int64_t in_block = pos % kBlock;
    // Replay the block's chain up to the requested position, then continue
    // emitting until the block (or the request) ends.
    int32_t cur = static_cast<int32_t>(
        mix(seed_ ^ 0xB10Cull ^ static_cast<uint64_t>(block)) %
        static_cast<uint64_t>(vocab_));
    for (int64_t i = 0; i < in_block; ++i) {
      cur = sample_next(cur, block * kBlock + i);
    }
    for (int64_t i = in_block;
         i < kBlock && out.size() < static_cast<size_t>(count); ++i) {
      out.push_back(cur);
      cur = sample_next(cur, block * kBlock + i);
      ++pos;
    }
  }
  return out;
}

void SyntheticCorpus::fill_batch(int64_t first_sequence, int64_t sequences,
                                 int64_t seq_len, tensor::Tensor* inputs,
                                 tensor::Tensor* targets) const {
  if (inputs == nullptr || targets == nullptr) {
    throw std::invalid_argument("SyntheticCorpus::fill_batch: null outputs");
  }
  *inputs = tensor::Tensor({sequences, seq_len});
  *targets = tensor::Tensor({sequences, seq_len});
  for (int64_t s = 0; s < sequences; ++s) {
    // +1 token so the target of the last position exists.
    const auto toks = tokens((first_sequence + s) * (seq_len + 1), seq_len + 1);
    for (int64_t t = 0; t < seq_len; ++t) {
      inputs->at(s, t) = static_cast<float>(toks[static_cast<size_t>(t)]);
      targets->at(s, t) = static_cast<float>(toks[static_cast<size_t>(t) + 1]);
    }
  }
}

}  // namespace hanayo::data
