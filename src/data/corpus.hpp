#pragma once
// Synthetic training corpus.
//
// The paper's models train on large text corpora (GPT-3: 45 TB of text).
// That data is unavailable here, so this module generates the closest
// synthetic equivalent that exercises the same code path: a deterministic
// stream of token sequences with *learnable* structure — an order-1 Markov
// chain with a skewed (Zipf-like) stationary distribution, so a language
// model trained on it actually reduces its loss (unlike uniform noise,
// whose cross-entropy floor is log V). Compute and communication per token
// are identical to real text.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hanayo::data {

/// Deterministic Markov-chain token source. The transition structure is a
/// pure function of (vocab, seed): two corpora built with the same
/// arguments produce identical token streams.
class SyntheticCorpus {
 public:
  /// `branching` controls how peaked each row of the transition matrix is:
  /// every token has `branching` likely successors (plus smoothing mass).
  SyntheticCorpus(int64_t vocab, uint64_t seed, int branching = 4);

  int64_t vocab() const { return vocab_; }

  /// The next `count` tokens of the stream, starting at `offset`. Sampling
  /// is random-access: token i depends only on (seed, i and the chain state
  /// reconstruction), so shards can be generated independently.
  std::vector<int32_t> tokens(int64_t offset, int64_t count) const;

  /// Fills a [sequences, seq_len] pair of input/target tensors with
  /// consecutive windows starting at sequence index `first_sequence`:
  /// targets are inputs shifted by one (next-token prediction).
  void fill_batch(int64_t first_sequence, int64_t sequences, int64_t seq_len,
                  tensor::Tensor* inputs, tensor::Tensor* targets) const;

  /// Transition probability P(next | cur) implied by the generator
  /// (exposed so tests can verify the stream actually follows it).
  double transition_prob(int32_t cur, int32_t next) const;

 private:
  int64_t vocab_;
  uint64_t seed_;
  int branching_;

  /// The `branching` preferred successors of `cur`, in preference order.
  int32_t successor(int32_t cur, int k) const;
  /// Deterministic per-position random number in [0, 1).
  double unit(int64_t position) const;
  int32_t sample_next(int32_t cur, int64_t position) const;
};

}  // namespace hanayo::data
