#pragma once
// Deterministic sharded data loading for data-parallel training.
//
// Each of the D replicas must see a disjoint slice of every global batch,
// and a run must be exactly reproducible (the equivalence tests — and any
// serious large-model training job — depend on it). The loader owns the
// epoch permutation: sequence indices are shuffled with a seed derived
// from (seed, epoch), identically on every rank, then dealt out
// replica-major so rank r takes rows [r*B, (r+1)*B) of each global batch —
// the layout runtime::Trainer expects.

#include <cstdint>

#include "data/corpus.hpp"
#include "runtime/worker.hpp"

namespace hanayo::data {

struct LoaderConfig {
  int64_t dataset_sequences = 1024;  ///< epoch size, in sequences
  int64_t seq_len = 32;
  int micro_batches = 4;   ///< B: micro-batches per replica per step
  int mb_sequences = 1;    ///< sequences per micro-batch
  int dp = 1;              ///< data-parallel replicas
  uint64_t seed = 1;
  bool shuffle = true;
};

/// Iterates a SyntheticCorpus in trainer-shaped global batches. Incomplete
/// final batches are dropped (the usual drop_last), so every step has the
/// full dp * B * mb_sequences rows.
class DataLoader {
 public:
  DataLoader(const SyntheticCorpus* corpus, LoaderConfig cfg);

  /// Rows per global batch: dp * micro_batches * mb_sequences.
  int64_t batch_rows() const;
  /// Full batches per epoch.
  int64_t batches_per_epoch() const;

  /// The `step`-th global batch of epoch `epoch` (both 0-based; `step` must
  /// be < batches_per_epoch()). Deterministic: the same (epoch, step) always
  /// returns the same rows in the same order.
  runtime::Batch batch(int64_t epoch, int64_t step) const;

  /// The dataset sequence indices making up that batch, in row order
  /// (exposed so tests can verify sharding discipline).
  std::vector<int64_t> batch_indices(int64_t epoch, int64_t step) const;

 private:
  const SyntheticCorpus* corpus_;
  LoaderConfig cfg_;

  std::vector<int64_t> epoch_permutation(int64_t epoch) const;
};

}  // namespace hanayo::data
