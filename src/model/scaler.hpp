#pragma once
// Dynamic loss scaling for mixed-precision training (Micikevicius et al.,
// cited by the paper's related work §6).
//
// With fp16 gradients, small values underflow to zero. The standard remedy
// multiplies the loss by a scale S (so every gradient is S times larger),
// and divides it back out before the optimizer step. The scale adapts:
//  * if any gradient is non-finite (the scaled backward overflowed), the
//    step is SKIPPED and S is multiplied by `backoff` (< 1);
//  * after `growth_interval` consecutive good steps, S is multiplied by
//    `growth` (> 1), probing for the largest safe scale.

#include <cstdint>
#include <vector>

#include "model/layers.hpp"

namespace hanayo::model {

class DynamicLossScaler {
 public:
  struct Options {
    float initial_scale = 65536.0f;
    float growth = 2.0f;
    float backoff = 0.5f;
    int growth_interval = 2000;
    float min_scale = 1.0f;
    float max_scale = 16777216.0f;  // 2^24
  };

  DynamicLossScaler() : DynamicLossScaler(Options{}) {}
  explicit DynamicLossScaler(Options opt);

  /// Current multiplier to apply to the loss before backward.
  float scale() const { return scale_; }

  /// Number of steps skipped because of overflow, and taken successfully.
  int64_t skipped_steps() const { return skipped_; }
  int64_t good_steps() const { return good_; }

  /// Inspects the (scaled) gradients. If all are finite, divides them by
  /// the scale in place and returns true (caller should step the
  /// optimizer). Otherwise zeroes them, backs the scale off, and returns
  /// false (caller must skip the step).
  bool unscale_and_check(const std::vector<Param*>& params);

  /// True if `v` is NaN or ±inf (exposed for tests).
  static bool non_finite(float v);

 private:
  Options opt_;
  float scale_;
  int streak_ = 0;
  int64_t skipped_ = 0;
  int64_t good_ = 0;
};

}  // namespace hanayo::model
