#pragma once
// Learning-rate schedules for large-model training.
//
// BERT/GPT pre-training (the paper's workloads) universally uses linear
// warmup followed by linear or cosine decay; the schedule is evaluated at
// the synchronous flush, so every pipeline worker applies the same rate at
// the same optimizer step regardless of the parallel layout.

#include <cstdint>

namespace hanayo::model {

/// Value-type schedule: lr = at(step), step counting optimizer updates from 0.
struct LrSchedule {
  enum class Kind {
    Constant,       ///< base forever
    WarmupLinear,   ///< 0 -> base over `warmup`, then linear to min_lr at `total`
    WarmupCosine,   ///< 0 -> base over `warmup`, then half-cosine to min_lr at `total`
  };

  Kind kind = Kind::Constant;
  float base = 0.1f;
  int64_t warmup = 0;  ///< steps of linear ramp (0 disables warmup)
  int64_t total = 0;   ///< step at which decay reaches min_lr
  float min_lr = 0.0f;

  /// Learning rate at optimizer step `step` (>= 0). After `total`, decaying
  /// schedules hold min_lr.
  float at(int64_t step) const;

  static LrSchedule constant(float base);
  static LrSchedule warmup_linear(float base, int64_t warmup, int64_t total,
                                  float min_lr = 0.0f);
  static LrSchedule warmup_cosine(float base, int64_t warmup, int64_t total,
                                  float min_lr = 0.0f);
};

}  // namespace hanayo::model
