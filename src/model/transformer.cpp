#include "model/transformer.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hanayo::model {

// ------------------------------------------------------------- LayerDesc

int64_t LayerDesc::param_count() const {
  switch (type) {
    case Type::Embedding:
      return vocab * hidden + seq * hidden;
    case Type::Block:
      // qkv: h*3h + 3h, out: h*h + h, 2 LN: 4h, mlp: h*f + f + f*h + h
      return hidden * 3 * hidden + 3 * hidden + hidden * hidden + hidden +
             4 * hidden + hidden * ffn + ffn + ffn * hidden + hidden;
    case Type::AttnHalf:
      return hidden * 3 * hidden + 3 * hidden + hidden * hidden + hidden +
             2 * hidden;
    case Type::MlpHalf:
      return 2 * hidden + hidden * ffn + ffn + ffn * hidden + hidden;
    case Type::FinalNorm:
      return 2 * hidden;
    case Type::LMHead:
      return hidden * vocab + vocab;
  }
  return 0;
}

double LayerDesc::fwd_flops(int64_t tokens) const {
  const double t = static_cast<double>(tokens);
  const double h = static_cast<double>(hidden);
  switch (type) {
    case Type::Embedding:
      return t * h;  // gather + add
    case Type::Block: {
      const double f = static_cast<double>(ffn);
      const double qkv = 2.0 * t * h * 3.0 * h;
      const double attn = 2.0 * 2.0 * t * static_cast<double>(seq) * h;
      const double out = 2.0 * t * h * h;
      const double mlp = 2.0 * t * h * f * 2.0;
      return qkv + attn + out + mlp;
    }
    case Type::AttnHalf: {
      const double qkv = 2.0 * t * h * 3.0 * h;
      const double attn = 2.0 * 2.0 * t * static_cast<double>(seq) * h;
      const double out = 2.0 * t * h * h;
      return qkv + attn + out;
    }
    case Type::MlpHalf:
      return 2.0 * t * h * static_cast<double>(ffn) * 2.0;
    case Type::FinalNorm:
      return 8.0 * t * h;
    case Type::LMHead:
      return 2.0 * t * h * static_cast<double>(vocab);
  }
  return 0.0;
}

int64_t LayerDesc::activation_bytes(int64_t tokens) const {
  // Mixed-precision training (the paper's setup): activations are fp16.
  const int64_t f4 = 2;
  switch (type) {
    case Type::Embedding:
      return tokens * f4;  // cached token ids
    case Type::Block: {
      // ln1 xhat + qkv + probs + ctx + ln2 xhat + fc1 in + gelu in + fc2 in
      const int64_t probs = (tokens / (seq > 0 ? seq : 1)) * heads * seq * seq;
      return (tokens * hidden * 5 + tokens * 3 * hidden + probs +
              tokens * ffn * 2) * f4;
    }
    case Type::AttnHalf: {
      const int64_t probs = (tokens / (seq > 0 ? seq : 1)) * heads * seq * seq;
      return (tokens * hidden * 4 + tokens * 3 * hidden + probs) * f4;
    }
    case Type::MlpHalf:
      return (tokens * hidden * 2 + tokens * ffn * 2) * f4;
    case Type::FinalNorm:
      return tokens * hidden * f4;
    case Type::LMHead:
      return tokens * hidden * f4;
  }
  return 0;
}

int64_t LayerDesc::output_bytes(int64_t tokens) const {
  // fp16 activations cross stage boundaries in mixed-precision training.
  switch (type) {
    case Type::LMHead:
      return tokens * vocab * 2;
    default:
      return tokens * hidden * 2;
  }
}

// ------------------------------------------------------------ ModelConfig

ModelConfig ModelConfig::gpt_paper() {
  ModelConfig c;
  c.name = "gpt-128L";
  c.layers = 128;
  c.heads = 16;
  c.hidden = 1024;
  c.vocab = 50257;
  c.seq = 1024;
  c.causal = true;
  return c;
}

ModelConfig ModelConfig::bert_paper() {
  ModelConfig c;
  c.name = "bert-64L";
  c.layers = 64;
  c.heads = 64;
  c.hidden = 2560;
  c.vocab = 30522;
  c.seq = 512;
  c.causal = false;
  return c;
}

ModelConfig ModelConfig::tiny(int64_t layers, int64_t hidden, int64_t heads,
                              int64_t vocab, int64_t seq, bool causal) {
  ModelConfig c;
  c.name = "tiny";
  c.layers = layers;
  c.hidden = hidden;
  c.heads = heads;
  c.vocab = vocab;
  c.seq = seq;
  c.causal = causal;
  return c;
}

namespace {
ModelConfig preset(const char* name, int64_t layers, int64_t heads,
                   int64_t hidden, int64_t vocab, int64_t seq, bool causal) {
  ModelConfig c;
  c.name = name;
  c.layers = layers;
  c.heads = heads;
  c.hidden = hidden;
  c.vocab = vocab;
  c.seq = seq;
  c.causal = causal;
  return c;
}
}  // namespace

ModelConfig ModelConfig::gpt2_small() {
  return preset("gpt2-small", 12, 12, 768, 50257, 1024, true);
}
ModelConfig ModelConfig::gpt2_medium() {
  return preset("gpt2-medium", 24, 16, 1024, 50257, 1024, true);
}
ModelConfig ModelConfig::gpt2_xl() {
  return preset("gpt2-xl", 48, 25, 1600, 50257, 1024, true);
}
ModelConfig ModelConfig::bert_base() {
  return preset("bert-base", 12, 12, 768, 30522, 512, false);
}
ModelConfig ModelConfig::bert_large() {
  return preset("bert-large", 24, 16, 1024, 30522, 512, false);
}

std::vector<LayerDesc> ModelConfig::layer_descs() const {
  std::vector<LayerDesc> out;
  out.reserve(static_cast<size_t>(layers + 3));
  int idx = 0;
  LayerDesc emb;
  emb.type = LayerDesc::Type::Embedding;
  emb.index = idx++;
  emb.hidden = hidden;
  emb.vocab = vocab;
  emb.seq = seq;
  emb.causal = causal;
  out.push_back(emb);
  for (int64_t i = 0; i < layers; ++i) {
    LayerDesc b;
    b.index = idx;
    b.hidden = hidden;
    b.heads = heads;
    b.ffn = 4 * hidden;
    b.seq = seq;
    b.causal = causal;
    if (split_blocks) {
      b.type = LayerDesc::Type::AttnHalf;
      b.index = idx++;
      out.push_back(b);
      b.type = LayerDesc::Type::MlpHalf;
      b.index = idx++;
      out.push_back(b);
    } else {
      b.type = LayerDesc::Type::Block;
      b.index = idx++;
      out.push_back(b);
    }
  }
  LayerDesc fn;
  fn.type = LayerDesc::Type::FinalNorm;
  fn.index = idx++;
  fn.hidden = hidden;
  fn.seq = seq;
  out.push_back(fn);
  LayerDesc head;
  head.type = LayerDesc::Type::LMHead;
  head.index = idx++;
  head.hidden = hidden;
  head.vocab = vocab;
  head.seq = seq;
  out.push_back(head);
  return out;
}

int64_t ModelConfig::total_params() const {
  int64_t n = 0;
  for (const LayerDesc& d : layer_descs()) n += d.param_count();
  return n;
}

// ----------------------------------------------------------------- Block

Block::Block(std::string name, int64_t hidden, int64_t heads, bool causal,
             Rng& rng, float init_std)
    : name_(std::move(name)),
      ln1_(name_ + ".ln1", hidden),
      attn_(name_ + ".attn", hidden, heads, causal, rng, init_std),
      ln2_(name_ + ".ln2", hidden),
      fc1_(name_ + ".fc1", hidden, 4 * hidden, rng, init_std),
      act_(name_ + ".gelu"),
      fc2_(name_ + ".fc2", 4 * hidden, hidden, rng, init_std) {}

Tensor Block::forward(const Tensor& x, int mb) {
  Tensor a = attn_.forward(ln1_.forward(x, mb), mb);
  Tensor r1 = tensor::add(x, a);
  Tensor m = fc2_.forward(act_.forward(fc1_.forward(ln2_.forward(r1, mb), mb), mb), mb);
  return tensor::add(r1, m);
}

Tensor Block::backward(const Tensor& dy, int mb) {
  // y = r1 + mlp(ln2(r1)); dy flows to both branches.
  Tensor dmlp = ln2_.backward(
      fc1_.backward(act_.backward(fc2_.backward(dy, mb), mb), mb), mb);
  Tensor dr1 = tensor::add(dy, dmlp);
  // r1 = x + attn(ln1(x))
  Tensor dattn = ln1_.backward(attn_.backward(dr1, mb), mb);
  return tensor::add(dr1, dattn);
}

Tensor Block::forward_infer(const Tensor& x, int64_t pos0, int slot) {
  Tensor a = attn_.forward_infer(ln1_.forward_infer(x, pos0, slot), pos0, slot);
  Tensor r1 = tensor::add(x, a);
  Tensor m = fc2_.forward_infer(
      act_.forward_infer(
          fc1_.forward_infer(ln2_.forward_infer(r1, pos0, slot), pos0, slot),
          pos0, slot),
      pos0, slot);
  return tensor::add(r1, m);
}

void Block::collect_params(std::vector<Param*>& out) {
  ln1_.collect_params(out);
  attn_.collect_params(out);
  ln2_.collect_params(out);
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

int64_t Block::cached_bytes() const {
  return ln1_.cached_bytes() + attn_.cached_bytes() + ln2_.cached_bytes() +
         fc1_.cached_bytes() + act_.cached_bytes() + fc2_.cached_bytes();
}

void Block::drop_cache(int mb) {
  ln1_.drop_cache(mb);
  attn_.drop_cache(mb);
  ln2_.drop_cache(mb);
  fc1_.drop_cache(mb);
  act_.drop_cache(mb);
  fc2_.drop_cache(mb);
}

// ---------------------------------------------------------- AttnResidual

AttnResidual::AttnResidual(std::string name, int64_t hidden, int64_t heads,
                           bool causal, Rng& rng, float init_std)
    : name_(std::move(name)),
      ln_(name_ + ".ln", hidden),
      attn_(name_ + ".attn", hidden, heads, causal, rng, init_std) {}

Tensor AttnResidual::forward(const Tensor& x, int mb) {
  return tensor::add(x, attn_.forward(ln_.forward(x, mb), mb));
}

Tensor AttnResidual::backward(const Tensor& dy, int mb) {
  Tensor dbranch = ln_.backward(attn_.backward(dy, mb), mb);
  return tensor::add(dy, dbranch);
}

Tensor AttnResidual::forward_infer(const Tensor& x, int64_t pos0, int slot) {
  return tensor::add(
      x, attn_.forward_infer(ln_.forward_infer(x, pos0, slot), pos0, slot));
}

void AttnResidual::collect_params(std::vector<Param*>& out) {
  ln_.collect_params(out);
  attn_.collect_params(out);
}

int64_t AttnResidual::cached_bytes() const {
  return ln_.cached_bytes() + attn_.cached_bytes();
}

void AttnResidual::drop_cache(int mb) {
  ln_.drop_cache(mb);
  attn_.drop_cache(mb);
}

// ----------------------------------------------------------- MlpResidual

MlpResidual::MlpResidual(std::string name, int64_t hidden, Rng& rng,
                         float init_std)
    : name_(std::move(name)),
      ln_(name_ + ".ln", hidden),
      fc1_(name_ + ".fc1", hidden, 4 * hidden, rng, init_std),
      act_(name_ + ".gelu"),
      fc2_(name_ + ".fc2", 4 * hidden, hidden, rng, init_std) {}

Tensor MlpResidual::forward(const Tensor& x, int mb) {
  Tensor m = fc2_.forward(act_.forward(fc1_.forward(ln_.forward(x, mb), mb), mb), mb);
  return tensor::add(x, m);
}

Tensor MlpResidual::backward(const Tensor& dy, int mb) {
  Tensor dbranch = ln_.backward(
      fc1_.backward(act_.backward(fc2_.backward(dy, mb), mb), mb), mb);
  return tensor::add(dy, dbranch);
}

Tensor MlpResidual::forward_infer(const Tensor& x, int64_t pos0, int slot) {
  Tensor m = fc2_.forward_infer(
      act_.forward_infer(
          fc1_.forward_infer(ln_.forward_infer(x, pos0, slot), pos0, slot),
          pos0, slot),
      pos0, slot);
  return tensor::add(x, m);
}

void MlpResidual::collect_params(std::vector<Param*>& out) {
  ln_.collect_params(out);
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

int64_t MlpResidual::cached_bytes() const {
  return ln_.cached_bytes() + fc1_.cached_bytes() + act_.cached_bytes() +
         fc2_.cached_bytes();
}

void MlpResidual::drop_cache(int mb) {
  ln_.drop_cache(mb);
  fc1_.drop_cache(mb);
  act_.drop_cache(mb);
  fc2_.drop_cache(mb);
}

// ------------------------------------------------------------ build_layer

std::unique_ptr<Layer> build_layer(const LayerDesc& d, uint64_t base_seed,
                                   float init_std) {
  // One RNG per layer, seeded by the global layer index: init is independent
  // of which worker builds the layer and of build order.
  Rng rng(base_seed * 0x1000193ULL + static_cast<uint64_t>(d.index) + 1);
  // Built via append rather than `"L" + std::to_string(...)`: the rvalue
  // operator+ overload trips GCC 12's -Wrestrict false positive (PR105651)
  // under -O2, and CI compiles with -Werror.
  std::string nm = "L";
  nm += std::to_string(d.index);
  switch (d.type) {
    case LayerDesc::Type::Embedding:
      return std::make_unique<Embedding>(nm + ".emb", d.vocab, d.seq, d.hidden,
                                         rng, init_std);
    case LayerDesc::Type::Block:
      return std::make_unique<Block>(nm + ".blk", d.hidden, d.heads, d.causal,
                                     rng, init_std);
    case LayerDesc::Type::AttnHalf:
      return std::make_unique<AttnResidual>(nm + ".attn", d.hidden, d.heads,
                                            d.causal, rng, init_std);
    case LayerDesc::Type::MlpHalf:
      return std::make_unique<MlpResidual>(nm + ".mlp", d.hidden, rng, init_std);
    case LayerDesc::Type::FinalNorm:
      return std::make_unique<LayerNorm>(nm + ".lnf", d.hidden);
    case LayerDesc::Type::LMHead:
      return std::make_unique<Linear>(nm + ".head", d.hidden, d.vocab, rng,
                                      init_std);
  }
  throw std::logic_error("build_layer: unknown type");
}

// ------------------------------------------------------------ StageModule

StageModule::StageModule(const std::vector<LayerDesc>& descs, int begin,
                         int end, uint64_t base_seed, float init_std)
    : begin_(begin), end_(end) {
  if (begin < 0 || end > static_cast<int>(descs.size()) || begin > end) {
    throw std::invalid_argument("StageModule: bad layer range");
  }
  for (int i = begin; i < end; ++i) {
    layers_.push_back(build_layer(descs[static_cast<size_t>(i)], base_seed, init_std));
  }
}

Tensor StageModule::forward(const Tensor& x, int mb) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, mb);
  if (recompute_) {
    for (auto& l : layers_) l->drop_cache(mb);
    saved_inputs_[mb] = x;
  }
  return h;
}

Tensor StageModule::backward(const Tensor& dy, int mb) {
  if (recompute_) {
    const auto it = saved_inputs_.find(mb);
    if (it == saved_inputs_.end()) {
      throw std::logic_error("StageModule: recompute backward without forward");
    }
    // Rebuild the caches with a second forward pass (deterministic, so the
    // gradients are bit-identical to the cached path).
    Tensor h = it->second;
    for (auto& l : layers_) h = l->forward(h, mb);
    saved_inputs_.erase(it);
  }
  Tensor g = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g, mb);
  }
  return g;
}

Tensor StageModule::decode(const Tensor& x, int64_t pos0, int slot) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward_infer(h, pos0, slot);
  return h;
}

void StageModule::drop_slot(int slot) {
  for (auto& l : layers_) l->drop_slot(slot);
}

int64_t StageModule::slot_bytes() const {
  int64_t b = 0;
  for (const auto& l : layers_) b += l->slot_bytes();
  return b;
}

void StageModule::set_kv_fp16(bool on) {
  for (auto& l : layers_) l->set_kv_fp16(on);
}

void StageModule::set_kv_store(runtime::KvStore* store) {
  for (auto& l : layers_) l->set_kv_store(store);
}

void StageModule::set_kv_capacity(int64_t tokens) {
  for (auto& l : layers_) l->set_kv_capacity(tokens);
}

std::vector<Param*> StageModule::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) l->collect_params(out);
  return out;
}

void StageModule::zero_grads() {
  for (Param* p : params()) p->zero_grad();
}

int64_t StageModule::cached_bytes() const {
  int64_t b = 0;
  for (const auto& l : layers_) b += l->cached_bytes();
  for (const auto& [mb, t] : saved_inputs_) b += t.bytes();
  return b;
}

int64_t StageModule::param_count() const {
  int64_t n = 0;
  for (const auto& l : layers_) {
    std::vector<Param*> ps;
    const_cast<Layer&>(*l).collect_params(ps);
    for (Param* p : ps) n += p->value.numel();
  }
  return n;
}

}  // namespace hanayo::model
