#pragma once
// Parameter checkpointing: save/restore named parameters to a compact
// binary format. Enables the paper's fine-tuning scenario (§5.5: "users
// seek to adjust the released public model weights") — pre-train with one
// parallel configuration, reload with another: the name-addressed format is
// partition-independent.

#include <map>
#include <string>
#include <vector>

#include "model/layers.hpp"

namespace hanayo::model {

/// Writes (name, shape, fp32 data) records for every parameter.
/// Overwrites `path`. Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params);

/// Loads parameters by name into `params`. Parameters present in `params`
/// but absent from the file throw; extra records in the file are ignored
/// (a worker owning one pipeline stage loads just its slice). Shape
/// mismatches throw.
void load_checkpoint(const std::string& path,
                     const std::vector<Param*>& params);

/// Names stored in a checkpoint, in file order.
std::vector<std::string> checkpoint_names(const std::string& path);

/// A named tensor record for non-parameter state (optimizer slots, step
/// counters). The tensor is borrowed for the duration of the call.
struct NamedTensor {
  std::string name;
  const tensor::Tensor* tensor = nullptr;
};

/// Writes a checkpoint from explicit (name, tensor) records — the generic
/// form used for full training-state checkpoints.
void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records);

/// Loads every record in the file. For selective loads prefer
/// `load_checkpoint(path, params)`.
std::map<std::string, tensor::Tensor> load_all(const std::string& path);

}  // namespace hanayo::model
