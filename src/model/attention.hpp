#pragma once
// Multi-head self-attention with manual backward.

#include "model/layers.hpp"

namespace hanayo::model {

/// Standard transformer MHA: fused QKV projection, per-head scaled dot
/// product, optional causal masking (GPT-style), output projection.
/// Input/output shape: [b, t, h].
class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(std::string name, int64_t hidden, int64_t heads,
                     bool causal, Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  /// Incremental-decode forward. Appends the K/V rows of `x`'s tokens to the
  /// slot's cache, then attends each new token over the whole cached prefix
  /// with the strided gemm_bt/gemm kernels. `pos0` must equal the cached
  /// length (tokens arrive in order). The last row is bit-identical to a
  /// full-prefix recompute: K/V rows are per-token ascending-k dots whichever
  /// call produced them, and the final row's score/context extents coincide
  /// with the row-blocked training path's.
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void drop_slot(int slot) override { kv_.erase(slot); }
  int64_t slot_bytes() const override;
  /// Half-precision KV-cache storage: new slots keep their K/V panels as
  /// fp16 words (tensor/half converters) and materialise fp32 panels for
  /// the attention kernels per decode call — half the resident bytes for
  /// one conversion pass. Throws if streams are already in flight.
  void set_kv_fp16(bool on) override;
  /// Paged KV mode: rows are appended into `store`'s pooled pages (one
  /// registered lane per layer) and gathered back into contiguous member
  /// panels before the unchanged attention kernels run — the gather copies
  /// are bitwise-exact (memcpy for fp32, the same quantise-once/dequantise
  /// path as contiguous fp16), so incremental decode keeps its
  /// full-prefix-recompute identity. Paged streams are batch-1 (serving
  /// micro-batches). Throws if streams are already in flight.
  void set_kv_store(runtime::KvStore* store) override;
  /// Worst-case tokens per decode stream: fresh slots (and the paged
  /// gather panels) pre-reserve to this capacity so steady-state decode
  /// never grows KV storage mid-pass. 0 = grow geometrically on demand.
  void set_kv_capacity(int64_t tokens) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  struct Saved {
    Tensor qkv;    // [b, t, 3h]
    Tensor probs;  // [b, heads, t, t] post-softmax attention
    Tensor ctx;    // [b, t, h] pre-output-projection context
  };

  /// Per-decode-stream KV cache, time-major so appending a token appends
  /// one contiguous row: k/v are [cap, b*heads*dk]; row j holds every
  /// (batch, head)'s key/value of token j, and the per-(b,head) panel at
  /// column (n*heads + hh)*dk has constant row stride b*heads*dk — exactly
  /// the strided layout gemm_bt/gemm consume. With kv_fp16_ the rows live
  /// in k16/v16 as binary16 words instead (same [len, row] layout, half
  /// the bytes) and k/v stay empty.
  struct KvSlot {
    Tensor k, v;
    std::vector<uint16_t> k16, v16;
    int64_t len = 0;
    int64_t batch = 0;
  };

  std::string name_;
  int64_t hidden_, heads_, dk_;
  bool causal_;
  bool kv_fp16_ = false;
  Linear qkv_proj_;
  Linear out_proj_;
  std::unordered_map<int, Saved> cache_;
  std::unordered_map<int, KvSlot> kv_;
  /// Paged mode (set_kv_store): non-owning store handle, this layer's lane,
  /// and member gather panels reused across passes (grown geometrically, so
  /// steady-state decode stays allocation-free; members rather than
  /// thread_local because the runtime spawns fresh worker threads per pass).
  runtime::KvStore* store_ = nullptr;
  int lane_ = -1;
  std::vector<float> gk_, gv_;
  /// Pre-reservation hint from set_kv_capacity (tokens per stream).
  int64_t kv_capacity_ = 0;
};

}  // namespace hanayo::model
