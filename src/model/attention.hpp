#pragma once
// Multi-head self-attention with manual backward.

#include "model/layers.hpp"

namespace hanayo::model {

/// Standard transformer MHA: fused QKV projection, per-head scaled dot
/// product, optional causal masking (GPT-style), output projection.
/// Input/output shape: [b, t, h].
class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(std::string name, int64_t hidden, int64_t heads,
                     bool causal, Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  struct Saved {
    Tensor qkv;    // [b, t, 3h]
    Tensor probs;  // [b, heads, t, t] post-softmax attention
    Tensor ctx;    // [b, t, h] pre-output-projection context
  };

  std::string name_;
  int64_t hidden_, heads_, dk_;
  bool causal_;
  Linear qkv_proj_;
  Linear out_proj_;
  std::unordered_map<int, Saved> cache_;
};

}  // namespace hanayo::model
