#include "model/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hanayo::model {

DynamicLossScaler::DynamicLossScaler(Options opt)
    : opt_(opt), scale_(opt.initial_scale) {
  if (opt.initial_scale <= 0 || opt.growth <= 1.0f || opt.backoff >= 1.0f ||
      opt.backoff <= 0.0f || opt.growth_interval < 1) {
    throw std::invalid_argument("DynamicLossScaler: bad options");
  }
}

bool DynamicLossScaler::non_finite(float v) { return !std::isfinite(v); }

bool DynamicLossScaler::unscale_and_check(const std::vector<Param*>& params) {
  bool overflow = false;
  for (const Param* p : params) {
    const int64_t n = p->grad.numel();
    for (int64_t i = 0; i < n && !overflow; ++i) {
      if (non_finite(p->grad[i])) overflow = true;
    }
    if (overflow) break;
  }

  if (overflow) {
    for (Param* p : params) p->zero_grad();
    scale_ = std::max(opt_.min_scale, scale_ * opt_.backoff);
    streak_ = 0;
    ++skipped_;
    return false;
  }

  const float inv = 1.0f / scale_;
  for (Param* p : params) {
    const int64_t n = p->grad.numel();
    for (int64_t i = 0; i < n; ++i) p->grad[i] *= inv;
  }
  ++good_;
  if (++streak_ >= opt_.growth_interval) {
    scale_ = std::min(opt_.max_scale, scale_ * opt_.growth);
    streak_ = 0;
  }
  return true;
}

}  // namespace hanayo::model
