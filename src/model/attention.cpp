#include "model/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace hanayo::model {

using namespace hanayo::tensor;

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t hidden,
                                       int64_t heads, bool causal, Rng& rng,
                                       float init_std)
    : name_(std::move(name)),
      hidden_(hidden),
      heads_(heads),
      dk_(hidden / heads),
      causal_(causal),
      qkv_proj_(name_ + ".qkv", hidden, 3 * hidden, rng, init_std),
      out_proj_(name_ + ".out", hidden, hidden, rng, init_std) {
  if (hidden % heads != 0) {
    throw std::invalid_argument(name_ + ": hidden must divide by heads");
  }
}

Tensor MultiHeadAttention::forward(const Tensor& x, int mb) {
  const int64_t b = x.size(0), t = x.size(1);
  Tensor qkv = qkv_proj_.forward(x, mb);  // [b, t, 3h]
  Tensor probs({b, heads_, t, t});
  Tensor ctx({b, t, hidden_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));

  for (int64_t n = 0; n < b; ++n) {
    for (int64_t hh = 0; hh < heads_; ++hh) {
      const int64_t qoff = hh * dk_;
      const int64_t koff = hidden_ + hh * dk_;
      const int64_t voff = 2 * hidden_ + hh * dk_;
      float* prob = probs.data() + ((n * heads_ + hh) * t) * t;
      // scores + softmax row by row
      for (int64_t i = 0; i < t; ++i) {
        const float* q = qkv.data() + (n * t + i) * 3 * hidden_ + qoff;
        float* prow = prob + i * t;
        const int64_t jmax = causal_ ? i + 1 : t;
        float mx = -1e30f;
        for (int64_t j = 0; j < jmax; ++j) {
          const float* k = qkv.data() + (n * t + j) * 3 * hidden_ + koff;
          float s = 0.0f;
          for (int64_t d = 0; d < dk_; ++d) s += q[d] * k[d];
          s *= scale;
          prow[j] = s;
          mx = std::max(mx, s);
        }
        double denom = 0.0;
        for (int64_t j = 0; j < jmax; ++j) {
          prow[j] = std::exp(prow[j] - mx);
          denom += prow[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t j = 0; j < jmax; ++j) prow[j] *= inv;
        for (int64_t j = jmax; j < t; ++j) prow[j] = 0.0f;
        // context = probs @ V
        float* c = ctx.data() + (n * t + i) * hidden_ + hh * dk_;
        for (int64_t d = 0; d < dk_; ++d) c[d] = 0.0f;
        for (int64_t j = 0; j < jmax; ++j) {
          const float p = prow[j];
          if (p == 0.0f) continue;
          const float* v = qkv.data() + (n * t + j) * 3 * hidden_ + voff;
          for (int64_t d = 0; d < dk_; ++d) c[d] += p * v[d];
        }
      }
    }
  }

  Tensor y = out_proj_.forward(ctx, mb);
  cache_[mb] = Saved{std::move(qkv), std::move(probs), std::move(ctx)};
  return y;
}

Tensor MultiHeadAttention::backward(const Tensor& dy, int mb) {
  auto it = cache_.find(mb);
  if (it == cache_.end()) throw std::logic_error(name_ + ": backward without forward");
  Saved& sv = it->second;
  const Tensor& qkv = sv.qkv;
  const Tensor& probs = sv.probs;

  Tensor dctx = out_proj_.backward(dy, mb);  // [b, t, h]
  const int64_t b = dctx.size(0), t = dctx.size(1);
  Tensor dqkv({b, t, 3 * hidden_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));

  for (int64_t n = 0; n < b; ++n) {
    for (int64_t hh = 0; hh < heads_; ++hh) {
      const int64_t qoff = hh * dk_;
      const int64_t koff = hidden_ + hh * dk_;
      const int64_t voff = 2 * hidden_ + hh * dk_;
      const float* prob = probs.data() + ((n * heads_ + hh) * t) * t;
      for (int64_t i = 0; i < t; ++i) {
        const int64_t jmax = causal_ ? i + 1 : t;
        const float* dc = dctx.data() + (n * t + i) * hidden_ + hh * dk_;
        const float* prow = prob + i * t;
        // dV[j] += P[i,j] * dctx[i];  dP[i,j] = dctx[i] . V[j]
        // dS = P * (dP - sum_j dP*P)   (softmax backward)
        // dQ[i] += dS[i,j] * K[j] * scale;  dK[j] += dS[i,j] * Q[i] * scale
        double dot_dp_p = 0.0;
        // First pass: dP and the softmax-correction dot product.
        // Store dP temporarily in a small stack buffer via two passes.
        for (int64_t j = 0; j < jmax; ++j) {
          const float* v = qkv.data() + (n * t + j) * 3 * hidden_ + voff;
          float dp = 0.0f;
          for (int64_t d = 0; d < dk_; ++d) dp += dc[d] * v[d];
          dot_dp_p += static_cast<double>(dp) * prow[j];
        }
        const float* q = qkv.data() + (n * t + i) * 3 * hidden_ + qoff;
        float* dq = dqkv.data() + (n * t + i) * 3 * hidden_ + qoff;
        for (int64_t j = 0; j < jmax; ++j) {
          const float* v = qkv.data() + (n * t + j) * 3 * hidden_ + voff;
          const float* k = qkv.data() + (n * t + j) * 3 * hidden_ + koff;
          float* dv = dqkv.data() + (n * t + j) * 3 * hidden_ + voff;
          float* dk = dqkv.data() + (n * t + j) * 3 * hidden_ + koff;
          const float p = prow[j];
          float dp = 0.0f;
          for (int64_t d = 0; d < dk_; ++d) {
            dv[d] += p * dc[d];
            dp += dc[d] * v[d];
          }
          const float ds = p * (dp - static_cast<float>(dot_dp_p)) * scale;
          for (int64_t d = 0; d < dk_; ++d) {
            dq[d] += ds * k[d];
            dk[d] += ds * q[d];
          }
        }
      }
    }
  }

  cache_.erase(it);
  return qkv_proj_.backward(dqkv, mb);
}

void MultiHeadAttention::collect_params(std::vector<Param*>& out) {
  qkv_proj_.collect_params(out);
  out_proj_.collect_params(out);
}

void MultiHeadAttention::drop_cache(int mb) {
  qkv_proj_.drop_cache(mb);
  out_proj_.drop_cache(mb);
  cache_.erase(mb);
}

int64_t MultiHeadAttention::cached_bytes() const {
  int64_t bytes = qkv_proj_.cached_bytes() + out_proj_.cached_bytes();
  for (const auto& [k, sv] : cache_) {
    bytes += sv.qkv.bytes() + sv.probs.bytes() + sv.ctx.bytes();
  }
  return bytes;
}

}  // namespace hanayo::model
