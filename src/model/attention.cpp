#include "model/attention.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "runtime/kv_store.hpp"
#include "tensor/arena.hpp"
#include "tensor/half.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::model {

using namespace hanayo::tensor;

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t hidden,
                                       int64_t heads, bool causal, Rng& rng,
                                       float init_std)
    : name_(std::move(name)),
      hidden_(hidden),
      heads_(heads),
      dk_(hidden / heads),
      causal_(causal),
      qkv_proj_(name_ + ".qkv", hidden, 3 * hidden, rng, init_std),
      out_proj_(name_ + ".out", hidden, hidden, rng, init_std) {
  if (hidden % heads != 0) {
    throw std::invalid_argument(name_ + ": hidden must divide by heads");
  }
}

// The (batch, head) pairs are fully independent: each one reads its own
// Q/K/V panels (strided slices of the fused [b, t, 3h] projection) and
// writes disjoint slices of probs/ctx (forward) or dqkv (backward). The
// intra-op pool splits the pairs; inside a pair the blocked GEMM kernels
// run inline, so results are bit-identical for any thread count.
//
// Within a pair, the score-matrix rows are processed in fixed blocks of
// kRowBlock; a causal pair bounds every GEMM's column extent by the
// block's last row (jext), so the masked upper triangle costs no FLOPs —
// the same triangular saving the seed's scalar loops had. The extent
// depends only on the row index, never on the thread count.
namespace {
constexpr int64_t kRowBlock = 64;
}

Tensor MultiHeadAttention::forward(const Tensor& x, int mb) {
  const int64_t b = x.size(0), t = x.size(1);
  Tensor qkv = qkv_proj_.forward(x, mb);  // [b, t, 3h]
  Tensor probs({b, heads_, t, t});
  Tensor ctx({b, t, hidden_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  const int64_t h3 = 3 * hidden_;
  const float* qkvp = qkv.data();
  float* probsp = probs.data();
  float* ctxp = ctx.data();
  const bool causal = causal_;
  const int64_t heads = heads_, dk = dk_, hidden = hidden_;

  parallel_for(b * heads, 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t n = p / heads, hh = p % heads;
      const float* q = qkvp + n * t * h3 + hh * dk;
      const float* k = q + hidden;
      const float* v = k + hidden;
      float* prob = probsp + p * t * t;
      for (int64_t i0 = 0; i0 < t; i0 += kRowBlock) {
        const int64_t i1 = std::min(i0 + kRowBlock, t);
        const int64_t jext = causal ? i1 : t;  // columns rows < i1 can see
        // scores = Q K^T for this row block (blocked GEMM, triangular cut)
        kernels::gemm_bt(i1 - i0, jext, dk, q + i0 * h3, h3, k, h3,
                         prob + i0 * t, t, false);
        // scale + causal mask + row softmax
        for (int64_t i = i0; i < i1; ++i) {
          float* prow = prob + i * t;
          const int64_t jmax = causal ? i + 1 : t;
          float mx = -1e30f;
          for (int64_t j = 0; j < jmax; ++j) {
            prow[j] *= scale;
            mx = std::max(mx, prow[j]);
          }
          double denom = 0.0;
          for (int64_t j = 0; j < jmax; ++j) {
            prow[j] = std::exp(prow[j] - mx);
            denom += prow[j];
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (int64_t j = 0; j < jmax; ++j) prow[j] *= inv;
          for (int64_t j = jmax; j < t; ++j) prow[j] = 0.0f;
        }
        // context = probs @ V over the visible columns only
        kernels::gemm(i1 - i0, dk, jext, prob + i0 * t, t, v, h3,
                      ctxp + (n * t + i0) * hidden + hh * dk, hidden, false);
      }
    }
  });

  Tensor y = out_proj_.forward(ctx, mb);
  cache_[mb] = Saved{std::move(qkv), std::move(probs), std::move(ctx)};
  return y;
}

Tensor MultiHeadAttention::backward(const Tensor& dy, int mb) {
  auto it = cache_.find(mb);
  if (it == cache_.end()) throw std::logic_error(name_ + ": backward without forward");
  Saved& sv = it->second;
  const Tensor& qkv = sv.qkv;
  const Tensor& probs = sv.probs;

  Tensor dctx = out_proj_.backward(dy, mb);  // [b, t, h]
  const int64_t b = dctx.size(0), t = dctx.size(1);
  Tensor dqkv({b, t, 3 * hidden_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  const int64_t h3 = 3 * hidden_;
  const float* qkvp = qkv.data();
  const float* probsp = probs.data();
  const float* dctxp = dctx.data();
  float* dqkvp = dqkv.data();
  const bool causal = causal_;
  const int64_t heads = heads_, dk = dk_, hidden = hidden_;

  parallel_for(b * heads, 1, [&](int64_t p0, int64_t p1) {
    // dP/dS scratch for this chunk. On the submitting worker it comes from
    // the iteration arena (mark/rewind, freed at chunk exit); pool threads
    // without an arena fall back to a bounded geometric thread_local
    // instead of the old unbounded exact-size one.
    thread_local std::vector<float> fallback;
    ScratchBuffer scratch(t * t, fallback);
    float* ds = scratch.data();
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t n = p / heads, hh = p % heads;
      const float* q = qkvp + n * t * h3 + hh * dk;
      const float* k = q + hidden;
      const float* v = k + hidden;
      float* dq = dqkvp + n * t * h3 + hh * dk;
      float* dkp = dq + hidden;
      float* dv = dkp + hidden;
      const float* prob = probsp + p * t * t;
      const float* dc = dctxp + n * t * hidden + hh * dk;
      for (int64_t i0 = 0; i0 < t; i0 += kRowBlock) {
        const int64_t i1 = std::min(i0 + kRowBlock, t);
        const int64_t mbr = i1 - i0;
        const int64_t jext = causal ? i1 : t;
        const float* prob_b = prob + i0 * t;
        const float* dc_b = dc + i0 * hidden;
        float* ds_b = ds + i0 * t;
        // dV[0:jext] += P^T dctx over this row block (row blocks ascend,
        // so each dV element still accumulates in ascending-i order)
        kernels::gemm_at(jext, dk, mbr, prob_b, t, dc_b, hidden, dv, h3,
                         true);
        // dP = dctx V^T for the visible columns
        kernels::gemm_bt(mbr, jext, dk, dc_b, hidden, v, h3, ds_b, t, false);
        // dS = P * (dP - sum_j dP*P) * scale (softmax backward), masked
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t jmax = causal ? i + 1 : t;
          const float* prow = prob + i * t;
          float* dsrow = ds + i * t;
          double dot_dp_p = 0.0;
          for (int64_t j = 0; j < jmax; ++j) {
            dot_dp_p += static_cast<double>(dsrow[j]) * prow[j];
          }
          const float dot = static_cast<float>(dot_dp_p);
          for (int64_t j = 0; j < jmax; ++j) {
            dsrow[j] = prow[j] * (dsrow[j] - dot) * scale;
          }
          for (int64_t j = jmax; j < t; ++j) dsrow[j] = 0.0f;
        }
        // dQ += dS K;  dK += dS^T Q — visible columns only
        kernels::gemm(mbr, dk, jext, ds_b, t, k, h3, dq + i0 * h3, h3, true);
        kernels::gemm_at(jext, dk, mbr, ds_b, t, q + i0 * h3, h3, dkp, h3,
                         true);
      }
    }
  });

  cache_.erase(it);
  return qkv_proj_.backward(dqkv, mb);
}

Tensor MultiHeadAttention::forward_infer(const Tensor& x, int64_t pos0,
                                         int slot) {
  const int64_t b = x.size(0), t = x.size(1);
  Tensor qkv = qkv_proj_.forward_infer(x, pos0, slot);  // [b, t, 3h]

  const int64_t row = b * hidden_;  // b * heads * dk
  const int64_t h3 = 3 * hidden_;
  const int64_t total = pos0 + t;
  const float* kcache = nullptr;
  const float* vcache = nullptr;
  Tensor kf, vf;  // fp16 contiguous mode: per-call fp32 panels

  if (store_ != nullptr) {
    // Paged mode: append rows into pooled pages, then gather the whole
    // prefix back into contiguous member panels. The copies are
    // bitwise-exact (memcpy, or the contiguous path's own
    // quantise-once/dequantise pair), so the kernels below see the exact
    // panels the contiguous path would build.
    if (b != 1) {
      throw std::invalid_argument(name_ +
                                  ": paged KV requires batch-1 streams");
    }
    const int64_t cached = store_->lane_len(lane_, slot);
    if (pos0 != cached) {
      throw std::logic_error(name_ + ": decode out of order (pos0 " +
                             std::to_string(pos0) + ", cached " +
                             std::to_string(cached) + ")");
    }
    for (int64_t j = 0; j < t; ++j) {
      const float* src = qkv.data() + j * h3;
      store_->append(lane_, slot, src + hidden_, src + 2 * hidden_);
    }
    const size_t need = static_cast<size_t>(total * row);
    if (gk_.capacity() < need) {
      // First touch jumps straight to the configured stream capacity
      // (set_kv_capacity), so decode never grows these panels mid-stream;
      // without the hint, geometric growth still reaches steady state.
      const size_t floor = static_cast<size_t>(
          (kv_capacity_ > 0 ? kv_capacity_ : 16) * row);
      const size_t newcap = std::max({need, 2 * gk_.capacity(), floor});
      gk_.reserve(newcap);
      gv_.reserve(newcap);
    }
    gk_.resize(need);
    gv_.resize(need);
    store_->gather(lane_, slot, total, gk_.data(), gv_.data());
    kcache = gk_.data();
    vcache = gv_.data();
  } else {
  KvSlot& kv = kv_[slot];
  if (kv.len == 0) kv.batch = b;
  if (kv.batch != b) {
    throw std::invalid_argument(name_ + ": slot batch changed mid-stream");
  }
  if (pos0 != kv.len) {
    throw std::logic_error(name_ + ": decode out of order (pos0 " +
                           std::to_string(pos0) + ", cached " +
                           std::to_string(kv.len) + ")");
  }

  // Append this call's K/V rows (time-major: one contiguous row per token).
  if (kv_fp16_) {
    // Half-precision storage: same [len, row] layout, binary16 words. Rows
    // quantize on append — once per token, whichever call produced it — so
    // incremental decode and full-prefix recompute still see identical
    // cached bits.
    const size_t need = static_cast<size_t>(total * row);
    if (kv.k16.capacity() < need) {
      // Fresh slots reserve the whole configured stream capacity up
      // front (a per-request cost), so no decode pass reallocates.
      const size_t floor = static_cast<size_t>(
          (kv_capacity_ > 0 ? kv_capacity_ : 16) * row);
      const size_t newcap = std::max({need, 2 * kv.k16.capacity(), floor});
      kv.k16.reserve(newcap);
      kv.v16.reserve(newcap);
    }
    kv.k16.resize(need);
    kv.v16.resize(need);
    for (int64_t j = 0; j < t; ++j) {
      for (int64_t n = 0; n < b; ++n) {
        const float* src = qkv.data() + (n * t + j) * h3;
        uint16_t* kdst = kv.k16.data() + (kv.len + j) * row + n * hidden_;
        uint16_t* vdst = kv.v16.data() + (kv.len + j) * row + n * hidden_;
        for (int64_t i = 0; i < hidden_; ++i) {
          kdst[i] = float_to_half(src[hidden_ + i]);
          vdst[i] = float_to_half(src[2 * hidden_ + i]);
        }
      }
    }
  } else {
    if (kv.k.numel() < total * row) {
      // KV panels outlive the pass, so they must not come from the pass
      // arena; fresh slots also jump straight to the configured stream
      // capacity so steady-state decode never re-allocates them.
      tensor::ArenaPause heap_kv;
      const int64_t cap = kv.k.numel() / std::max<int64_t>(row, 1);
      const int64_t newcap = std::max<int64_t>(
          {total, 2 * cap, kv_capacity_ > 0 ? kv_capacity_ : 16});
      Tensor nk({newcap, row}), nv({newcap, row});
      if (kv.len > 0) {
        std::memcpy(nk.data(), kv.k.data(),
                    static_cast<size_t>(kv.len * row) * sizeof(float));
        std::memcpy(nv.data(), kv.v.data(),
                    static_cast<size_t>(kv.len * row) * sizeof(float));
      }
      kv.k = std::move(nk);
      kv.v = std::move(nv);
    }
    for (int64_t j = 0; j < t; ++j) {
      for (int64_t n = 0; n < b; ++n) {
        const float* src = qkv.data() + (n * t + j) * h3;
        float* kdst = kv.k.data() + (kv.len + j) * row + n * hidden_;
        float* vdst = kv.v.data() + (kv.len + j) * row + n * hidden_;
        std::memcpy(kdst, src + hidden_,
                    static_cast<size_t>(hidden_) * sizeof(float));
        std::memcpy(vdst, src + 2 * hidden_,
                    static_cast<size_t>(hidden_) * sizeof(float));
      }
    }
  }
  kv.len = total;

  // fp16 storage: materialise fp32 panels for the kernels, one conversion
  // pass per decode call (the resident cache stays half precision).
  if (kv_fp16_) {
    kf = Tensor({total, row});
    vf = Tensor({total, row});
    float* kp = kf.data();
    float* vp = vf.data();
    for (int64_t i = 0; i < total * row; ++i) {
      kp[i] = half_to_float(kv.k16[static_cast<size_t>(i)]);
      vp[i] = half_to_float(kv.v16[static_cast<size_t>(i)]);
    }
    kcache = kf.data();
    vcache = vf.data();
  } else {
    kcache = kv.k.data();
    vcache = kv.v.data();
  }
  }

  // Attend each new token over the cached prefix. Extents are per *row*
  // (jext = absolute position + 1), so every row's value is identical
  // whether the prefix arrived in one prefill call or token by token.
  Tensor probs({b * heads_, t, total});
  Tensor ctx({b, t, hidden_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  const float* qkvp = qkv.data();
  float* probsp = probs.data();
  float* ctxp = ctx.data();
  const bool causal = causal_;
  const int64_t heads = heads_, dk = dk_, hidden = hidden_;

  parallel_for(b * heads, 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t n = p / heads, hh = p % heads;
      const float* q = qkvp + n * t * h3 + hh * dk;
      const float* kc = kcache + (n * heads + hh) * dk;
      const float* vc = vcache + (n * heads + hh) * dk;
      float* prob = probsp + p * t * total;
      for (int64_t r = 0; r < t; ++r) {
        const int64_t jmax = causal ? pos0 + r + 1 : total;
        float* prow = prob + r * total;
        // scores = q_r K^T over the visible prefix (strided cache panel)
        kernels::gemm_bt(1, jmax, dk, q + r * h3, h3, kc, row, prow, total,
                         false);
        // scale + row softmax — the same arithmetic as the training forward
        float mx = -1e30f;
        for (int64_t j = 0; j < jmax; ++j) {
          prow[j] *= scale;
          mx = std::max(mx, prow[j]);
        }
        double denom = 0.0;
        for (int64_t j = 0; j < jmax; ++j) {
          prow[j] = std::exp(prow[j] - mx);
          denom += prow[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t j = 0; j < jmax; ++j) prow[j] *= inv;
        // context = probs @ V over the visible prefix
        kernels::gemm(1, dk, jmax, prow, total, vc, row,
                      ctxp + (n * t + r) * hidden + hh * dk, hidden, false);
      }
    }
  });

  return out_proj_.forward_infer(ctx, pos0, slot);
}

int64_t MultiHeadAttention::slot_bytes() const {
  int64_t bytes = 0;
  for (const auto& [s, kv] : kv_) {
    bytes += kv.k.bytes() + kv.v.bytes();
    bytes += static_cast<int64_t>((kv.k16.size() + kv.v16.size()) *
                                  sizeof(uint16_t));
  }
  return bytes;
}

void MultiHeadAttention::set_kv_fp16(bool on) {
  if (on != kv_fp16_ && !kv_.empty()) {
    throw std::logic_error(name_ +
                           ": set_kv_fp16 while decode streams are in flight");
  }
  kv_fp16_ = on;
}

void MultiHeadAttention::set_kv_capacity(int64_t tokens) {
  kv_capacity_ = tokens;
}

void MultiHeadAttention::set_kv_store(runtime::KvStore* store) {
  if (!kv_.empty()) {
    throw std::logic_error(
        name_ + ": set_kv_store while decode streams are in flight");
  }
  store_ = store;
  lane_ = store != nullptr ? store->register_lane() : -1;
}

void MultiHeadAttention::collect_params(std::vector<Param*>& out) {
  qkv_proj_.collect_params(out);
  out_proj_.collect_params(out);
}

void MultiHeadAttention::drop_cache(int mb) {
  qkv_proj_.drop_cache(mb);
  out_proj_.drop_cache(mb);
  cache_.erase(mb);
}

int64_t MultiHeadAttention::cached_bytes() const {
  int64_t bytes = qkv_proj_.cached_bytes() + out_proj_.cached_bytes();
  for (const auto& [k, sv] : cache_) {
    bytes += sv.qkv.bytes() + sv.probs.bytes() + sv.ctx.bytes();
  }
  return bytes;
}

}  // namespace hanayo::model
