#pragma once
// Layer -> stage partitioner.
//
// Splits the network's layer list into S contiguous stages, balancing the
// per-stage forward FLOPs (the quantity that sets T_F in the paper's cost
// model). Used both by the runtime (to decide which layers a chunk owns) and
// by the simulator (to cost each stage).

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"

namespace hanayo::model {

/// Half-open layer range [begin, end) of one stage.
struct StageRange {
  int begin = 0;
  int end = 0;
  int size() const { return end - begin; }
};

/// Balanced contiguous partition of `descs` into `stages` ranges, minimising
/// the maximum per-stage FLOPs (exact, via binary search over capacity).
/// Requires stages <= descs.size(); every stage receives >= 1 layer.
std::vector<StageRange> partition_layers(const std::vector<LayerDesc>& descs,
                                         int stages, int64_t tokens_per_mb);

/// Per-stage summary used by cost and memory models.
struct StageStats {
  double fwd_flops = 0.0;       ///< forward FLOPs for one micro-batch
  int64_t param_bytes = 0;      ///< weight bytes (fp32)
  int64_t activation_bytes = 0; ///< saved-for-backward bytes per micro-batch
  int64_t output_bytes = 0;     ///< activation bytes crossing to next stage
};

StageStats stage_stats(const std::vector<LayerDesc>& descs,
                       const StageRange& range, int64_t tokens_per_mb);

}  // namespace hanayo::model
