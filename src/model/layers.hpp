#pragma once
// Neural-network layers with explicit, per-micro-batch activation caches.
//
// Pipeline parallelism interleaves the forward passes of many micro-batches
// before their backwards run, so unlike a tape-based autograd, every layer
// here stores its saved-for-backward tensors keyed by micro-batch id. The
// cache footprint (`cached_bytes`) is exactly the `Ma` quantity the paper
// tracks in Figs. 3 and 8: it grows when a forward completes and shrinks
// when the matching backward consumes it.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hanayo::runtime {
class KvStore;  // paged KV storage (runtime/kv_store.hpp); layers hold a
                // non-owning pointer wired by the serving runtime
}  // namespace hanayo::runtime

namespace hanayo::model {

using tensor::Rng;
using tensor::Tensor;

/// A learnable parameter with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
  void zero_grad() { grad.zero(); }
};

/// Base class for all layers.
///
/// Contract: `forward(x, mb)` may be called for several micro-batches before
/// any `backward`; `backward(dy, mb)` consumes (and frees) the cache of
/// micro-batch `mb` and accumulates parameter gradients (+=).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, int mb) = 0;
  virtual Tensor backward(const Tensor& dy, int mb) = 0;

  /// Inference forward: computes exactly the same function as `forward` but
  /// saves nothing for backward. `pos0` is the absolute sequence position of
  /// the first row of `x` (tokens [pos0, pos0 + t) of the sequence); `slot`
  /// identifies the decode stream, so stateful layers (attention's KV cache)
  /// can keep one incremental context per in-flight sequence. Stateless
  /// layers ignore both. Numerics contract: for causal models, the *last
  /// row* of the result is bit-identical whether the prefix was processed in
  /// one call (pos0 = 0) or token-by-token through the same slot — the
  /// ascending-k kernels make KV-cache decode match full-prefix recompute.
  virtual Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) = 0;

  /// Frees any per-stream inference state held for `slot` (KV caches).
  virtual void drop_slot(int slot) { (void)slot; }

  /// Bytes of per-stream inference state (KV caches) currently held.
  virtual int64_t slot_bytes() const { return 0; }

  /// Store per-stream inference state (KV caches) in half precision:
  /// halves slot_bytes at the cost of fp16 rounding on the cached panels.
  /// Stateless layers ignore it. Must be set before any slot is populated.
  virtual void set_kv_fp16(bool on) { (void)on; }

  /// Attach a paged KV store: stateful layers register a lane and keep
  /// their per-stream K/V rows in pooled pages (prefix sharing, COW)
  /// instead of contiguous per-slot slabs. nullptr restores the contiguous
  /// path. Stateless layers ignore it. Must be set before any slot is
  /// populated.
  virtual void set_kv_store(runtime::KvStore* store) { (void)store; }

  /// Worst-case tokens per decode stream. Stateful layers pre-reserve
  /// their per-stream KV storage (and shared gather panels) to this
  /// capacity so steady-state decode performs zero heap allocations; the
  /// serving runtime wires the model's max sequence length through here.
  /// Stateless layers ignore it. 0 = grow geometrically on demand.
  virtual void set_kv_capacity(int64_t tokens) { (void)tokens; }

  /// Appends pointers to this layer's parameters (stable across calls).
  virtual void collect_params(std::vector<Param*>& out) = 0;

  /// Discards the saved-for-backward cache of micro-batch `mb` without
  /// running a backward — used by activation recomputation, which re-runs
  /// the forward later to rebuild it.
  virtual void drop_cache(int mb) = 0;

  virtual std::string name() const = 0;

  /// Bytes currently held in saved-for-backward caches.
  virtual int64_t cached_bytes() const = 0;
};

/// y = x W + b over the last dimension.
class Linear : public Layer {
 public:
  /// Weights ~ N(0, init_std^2), bias zero; deterministic given `rng`.
  Linear(std::string name, int64_t in, int64_t out, Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

  void drop_cache(int mb) override;

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::string name_;
  int64_t in_, out_;
  Param w_, b_;
  std::unordered_map<int, Tensor> cache_x_;  // forward input (original shape)
};

/// LayerNorm over the last dimension with learned gain/bias.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, int64_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  int64_t dim_;
  float eps_;
  Param g_, b_;
  std::unordered_map<int, Tensor> cache_xhat_;     // normalised input
  std::unordered_map<int, Tensor> cache_inv_std_;  // per-row 1/sigma
};

/// Elementwise GELU.
class Gelu : public Layer {
 public:
  explicit Gelu(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void collect_params(std::vector<Param*>&) override {}
  void drop_cache(int mb) override { cache_x_.erase(mb); }
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  std::unordered_map<int, Tensor> cache_x_;
};

/// Token + learned positional embedding. Input: [b, t] of token ids (stored
/// as floats); output: [b, t, h]. backward() returns an empty tensor (there
/// is no gradient w.r.t. token ids).
class Embedding : public Layer {
 public:
  Embedding(std::string name, int64_t vocab, int64_t max_seq, int64_t hidden,
            Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  /// Positional rows are read at `pos0 + j`: decoding token `pos0` embeds
  /// with the same positional vector the full-prefix forward would use.
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override { cache_ids_.erase(mb); }
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  int64_t vocab_, max_seq_, hidden_;
  Param tok_, pos_;
  std::unordered_map<int, Tensor> cache_ids_;
};

}  // namespace hanayo::model
