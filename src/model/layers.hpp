#pragma once
// Neural-network layers with explicit, per-micro-batch activation caches.
//
// Pipeline parallelism interleaves the forward passes of many micro-batches
// before their backwards run, so unlike a tape-based autograd, every layer
// here stores its saved-for-backward tensors keyed by micro-batch id. The
// cache footprint (`cached_bytes`) is exactly the `Ma` quantity the paper
// tracks in Figs. 3 and 8: it grows when a forward completes and shrinks
// when the matching backward consumes it.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hanayo::model {

using tensor::Rng;
using tensor::Tensor;

/// A learnable parameter with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
  void zero_grad() { grad.zero(); }
};

/// Base class for all layers.
///
/// Contract: `forward(x, mb)` may be called for several micro-batches before
/// any `backward`; `backward(dy, mb)` consumes (and frees) the cache of
/// micro-batch `mb` and accumulates parameter gradients (+=).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, int mb) = 0;
  virtual Tensor backward(const Tensor& dy, int mb) = 0;

  /// Appends pointers to this layer's parameters (stable across calls).
  virtual void collect_params(std::vector<Param*>& out) = 0;

  /// Discards the saved-for-backward cache of micro-batch `mb` without
  /// running a backward — used by activation recomputation, which re-runs
  /// the forward later to rebuild it.
  virtual void drop_cache(int mb) = 0;

  virtual std::string name() const = 0;

  /// Bytes currently held in saved-for-backward caches.
  virtual int64_t cached_bytes() const = 0;
};

/// y = x W + b over the last dimension.
class Linear : public Layer {
 public:
  /// Weights ~ N(0, init_std^2), bias zero; deterministic given `rng`.
  Linear(std::string name, int64_t in, int64_t out, Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

  void drop_cache(int mb) override;

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  std::string name_;
  int64_t in_, out_;
  Param w_, b_;
  std::unordered_map<int, Tensor> cache_x_;  // forward input (original shape)
};

/// LayerNorm over the last dimension with learned gain/bias.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, int64_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  int64_t dim_;
  float eps_;
  Param g_, b_;
  std::unordered_map<int, Tensor> cache_xhat_;     // normalised input
  std::unordered_map<int, Tensor> cache_inv_std_;  // per-row 1/sigma
};

/// Elementwise GELU.
class Gelu : public Layer {
 public:
  explicit Gelu(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  void collect_params(std::vector<Param*>&) override {}
  void drop_cache(int mb) override { cache_x_.erase(mb); }
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  std::unordered_map<int, Tensor> cache_x_;
};

/// Token + learned positional embedding. Input: [b, t] of token ids (stored
/// as floats); output: [b, t, h]. backward() returns an empty tensor (there
/// is no gradient w.r.t. token ids).
class Embedding : public Layer {
 public:
  Embedding(std::string name, int64_t vocab, int64_t max_seq, int64_t hidden,
            Rng& rng, float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override { cache_ids_.erase(mb); }
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  int64_t vocab_, max_seq_, hidden_;
  Param tok_, pos_;
  std::unordered_map<int, Tensor> cache_ids_;
};

}  // namespace hanayo::model
