#pragma once
// Model descriptions (GPT-style / BERT-style, as evaluated in the paper §5)
// and the stage-module container that pipeline workers execute.
//
// Two representations:
//  * `LayerDesc` — a lightweight planning record (parameter count, FLOPs,
//    activation bytes) used by the partitioner, cost model and simulator.
//  * `Layer` objects — the runnable layers, instantiated lazily by each
//    worker only for the stages it owns (this is what keeps Mw at
//    "one model / P" per device, the paper's memory headline).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/attention.hpp"
#include "model/layers.hpp"

namespace hanayo::model {

/// Planning record for one layer of the network. `AttnHalf`/`MlpHalf` are
/// the two residual sub-layers of a transformer block, used when a
/// configuration needs more pipeline stages than there are whole blocks
/// (operator-granularity partitioning, as Megatron-LM does).
struct LayerDesc {
  enum class Type { Embedding, Block, AttnHalf, MlpHalf, FinalNorm, LMHead };

  Type type = Type::Block;
  int index = 0;  ///< global position in the network (also the init seed salt)
  int64_t hidden = 0;
  int64_t heads = 0;
  int64_t ffn = 0;    ///< MLP inner dim (4*hidden)
  int64_t vocab = 0;  ///< used by Embedding / LMHead
  int64_t seq = 0;
  bool causal = true;

  /// Number of learnable scalars.
  int64_t param_count() const;
  /// Forward FLOPs for a micro-batch of `tokens` tokens (b*t).
  double fwd_flops(int64_t tokens) const;
  /// Bytes of saved-for-backward state for a micro-batch of `tokens`.
  int64_t activation_bytes(int64_t tokens) const;
  /// Bytes of the output activation crossing to the next layer.
  int64_t output_bytes(int64_t tokens) const;
};

/// Architecture hyper-parameters. `causal=true` gives the GPT-style decoder,
/// `causal=false` the BERT-style encoder; both are trained with a token-level
/// cross-entropy head (the throughput-relevant computation is identical).
struct ModelConfig {
  std::string name = "model";
  int64_t layers = 4;
  int64_t heads = 4;
  int64_t hidden = 64;
  int64_t vocab = 1000;
  int64_t seq = 32;
  bool causal = true;
  float init_std = 0.02f;
  /// Emit each transformer block as two half-layers (attention, MLP) so the
  /// partitioner can form up to ~2x more stages. Purely a granularity
  /// choice; the math is identical.
  bool split_blocks = false;

  /// Paper §5: "GPT-style model has 128 layers, 16 attention heads, and a
  /// hidden size of 1024".
  static ModelConfig gpt_paper();
  /// Paper §5: "BERT-style model consists of 64 layers, 64 attention heads,
  /// and a hidden size of 2560".
  static ModelConfig bert_paper();
  /// Small configuration for unit tests and examples (runs in milliseconds).
  static ModelConfig tiny(int64_t layers = 4, int64_t hidden = 32,
                          int64_t heads = 2, int64_t vocab = 67,
                          int64_t seq = 8, bool causal = true);

  /// Model zoo for the planner/examples: standard public shapes.
  static ModelConfig gpt2_small();   ///< 12L, 12H, 768
  static ModelConfig gpt2_medium();  ///< 24L, 16H, 1024
  static ModelConfig gpt2_xl();      ///< 48L, 25H, 1600
  static ModelConfig bert_base();    ///< 12L, 12H, 768, bidirectional
  static ModelConfig bert_large();   ///< 24L, 16H, 1024, bidirectional

  /// The full layer list: Embedding, `layers` transformer blocks, FinalNorm,
  /// LMHead.
  std::vector<LayerDesc> layer_descs() const;

  int64_t total_params() const;
};

/// Pre-LN transformer block: x + MHA(LN(x)), then x + MLP(LN(x)).
class Block : public Layer {
 public:
  Block(std::string name, int64_t hidden, int64_t heads, bool causal, Rng& rng,
        float init_std);

  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void drop_slot(int slot) override { attn_.drop_slot(slot); }
  int64_t slot_bytes() const override { return attn_.slot_bytes(); }
  void set_kv_fp16(bool on) override { attn_.set_kv_fp16(on); }
  void set_kv_store(runtime::KvStore* s) override { attn_.set_kv_store(s); }
  void set_kv_capacity(int64_t tokens) override {
    attn_.set_kv_capacity(tokens);
  }
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear fc1_;
  Gelu act_;
  Linear fc2_;
};

/// The attention half of a block: x + MHA(LN(x)).
class AttnResidual : public Layer {
 public:
  AttnResidual(std::string name, int64_t hidden, int64_t heads, bool causal,
               Rng& rng, float init_std);
  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void drop_slot(int slot) override { attn_.drop_slot(slot); }
  int64_t slot_bytes() const override { return attn_.slot_bytes(); }
  void set_kv_fp16(bool on) override { attn_.set_kv_fp16(on); }
  void set_kv_store(runtime::KvStore* s) override { attn_.set_kv_store(s); }
  void set_kv_capacity(int64_t tokens) override {
    attn_.set_kv_capacity(tokens);
  }
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  LayerNorm ln_;
  MultiHeadAttention attn_;
};

/// The MLP half of a block: x + FC2(GELU(FC1(LN(x)))).
class MlpResidual : public Layer {
 public:
  MlpResidual(std::string name, int64_t hidden, Rng& rng, float init_std);
  Tensor forward(const Tensor& x, int mb) override;
  Tensor backward(const Tensor& dy, int mb) override;
  Tensor forward_infer(const Tensor& x, int64_t pos0, int slot) override;
  void collect_params(std::vector<Param*>& out) override;
  void drop_cache(int mb) override;
  std::string name() const override { return name_; }
  int64_t cached_bytes() const override;

 private:
  std::string name_;
  LayerNorm ln_;
  Linear fc1_;
  Gelu act_;
  Linear fc2_;
};

/// Instantiates the runnable layer for a planning record. `base_seed` makes
/// initialisation a pure function of (seed, layer index): a layer gets
/// identical weights no matter which worker builds it or in which order —
/// the property the pipeline-vs-sequential equivalence tests rely on.
std::unique_ptr<Layer> build_layer(const LayerDesc& d, uint64_t base_seed,
                                   float init_std);

/// A contiguous run of layers owned by one (device, chunk). This is the
/// paper's "local module": the unit referenced by the action list's local
/// module rank.
class StageModule {
 public:
  StageModule() = default;
  StageModule(const std::vector<LayerDesc>& descs, int begin, int end,
              uint64_t base_seed, float init_std);

  Tensor forward(const Tensor& x, int mb);
  Tensor backward(const Tensor& dy, int mb);

  /// Incremental-decode forward through this stage's layers: nothing is
  /// saved for backward, attention layers extend their per-`slot` KV cache,
  /// and positional state is read at absolute offset `pos0`. For causal
  /// models the last row of the result is bit-identical to a full-prefix
  /// recompute (see Layer::forward_infer).
  Tensor decode(const Tensor& x, int64_t pos0, int slot);

  /// Frees the KV caches of one decode stream (called when a served
  /// sequence completes and its slot is recycled).
  void drop_slot(int slot);

  /// Bytes of KV-cache state currently held across all decode streams —
  /// the serving analogue of `cached_bytes`.
  int64_t slot_bytes() const;

  /// Half-precision KV-cache storage for every attention layer in this
  /// stage (InferConfig::kv_fp16). Set before the first decode call.
  void set_kv_fp16(bool on);

  /// Attaches a paged KV store to every attention layer in this stage
  /// (InferConfig::paged_kv): each layer registers one lane. Set before
  /// the first decode call, in deterministic worker construction order.
  void set_kv_store(runtime::KvStore* store);

  /// Pre-reserves every attention layer's per-stream KV storage for
  /// `tokens` rows (the model's max sequence length), so steady-state
  /// decode never grows KV mid-pass.
  void set_kv_capacity(int64_t tokens);

  /// Activation recomputation (gradient checkpointing, Chen et al. 2016 —
  /// one of the orthogonal memory techniques the paper's related work
  /// combines with pipeline parallelism). When enabled, `forward` discards
  /// all layer caches and stores only the stage *input*; `backward` re-runs
  /// the forward to rebuild them. Trades ~50% more stage compute for O(1)
  /// cached tensors per in-flight micro-batch.
  void set_recompute(bool on) { recompute_ = on; }
  bool recompute() const { return recompute_; }

  std::vector<Param*> params();
  void zero_grads();
  int64_t cached_bytes() const;
  int64_t param_count() const;
  int layer_begin() const { return begin_; }
  int layer_end() const { return end_; }

 private:
  int begin_ = 0, end_ = 0;
  bool recompute_ = false;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unordered_map<int, Tensor> saved_inputs_;
};

}  // namespace hanayo::model
