#include "model/partition.hpp"

#include <stdexcept>

namespace hanayo::model {

namespace {

/// Can `descs` be split into at most `stages` contiguous parts, each with
/// total weight <= cap?
bool feasible(const std::vector<double>& w, int stages, double cap) {
  int used = 1;
  double cur = 0.0;
  for (double x : w) {
    if (x > cap) return false;
    if (cur + x > cap) {
      ++used;
      cur = x;
      if (used > stages) return false;
    } else {
      cur += x;
    }
  }
  return true;
}

}  // namespace

std::vector<StageRange> partition_layers(const std::vector<LayerDesc>& descs,
                                         int stages, int64_t tokens_per_mb) {
  const int n = static_cast<int>(descs.size());
  if (stages <= 0) throw std::invalid_argument("partition_layers: stages <= 0");
  if (stages > n) {
    throw std::invalid_argument("partition_layers: more stages than layers (" +
                                std::to_string(stages) + " > " + std::to_string(n) + ")");
  }
  std::vector<double> w(static_cast<size_t>(n));
  double lo = 0.0, hi = 0.0;
  for (int i = 0; i < n; ++i) {
    w[static_cast<size_t>(i)] = descs[static_cast<size_t>(i)].fwd_flops(tokens_per_mb);
    lo = std::max(lo, w[static_cast<size_t>(i)]);
    hi += w[static_cast<size_t>(i)];
  }
  // Binary search on the bottleneck capacity.
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(w, stages, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Greedy fill at capacity `hi`, but never leave fewer layers than stages
  // remaining (every stage must be non-empty).
  std::vector<StageRange> out;
  out.reserve(static_cast<size_t>(stages));
  int begin = 0;
  for (int s = 0; s < stages; ++s) {
    const int remaining_stages = stages - s - 1;
    int end = begin + 1;  // at least one layer
    double cur = w[static_cast<size_t>(begin)];
    while (end < n - remaining_stages && cur + w[static_cast<size_t>(end)] <= hi * (1.0 + 1e-9)) {
      cur += w[static_cast<size_t>(end)];
      ++end;
    }
    if (remaining_stages == 0) end = n;  // last stage takes the tail
    out.push_back(StageRange{begin, end});
    begin = end;
  }
  if (begin != n) {
    // Capacity search should prevent this; guard anyway.
    out.back().end = n;
  }
  return out;
}

StageStats stage_stats(const std::vector<LayerDesc>& descs,
                       const StageRange& range, int64_t tokens_per_mb) {
  StageStats s;
  for (int i = range.begin; i < range.end; ++i) {
    const LayerDesc& d = descs[static_cast<size_t>(i)];
    s.fwd_flops += d.fwd_flops(tokens_per_mb);
    s.param_bytes += d.param_count() * 4;
    s.activation_bytes += d.activation_bytes(tokens_per_mb);
  }
  if (range.size() > 0) {
    s.output_bytes = descs[static_cast<size_t>(range.end - 1)].output_bytes(tokens_per_mb);
  }
  return s;
}

}  // namespace hanayo::model
