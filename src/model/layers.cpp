#include "model/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace hanayo::model {

using namespace hanayo::tensor;

namespace {
int64_t map_bytes(const std::unordered_map<int, Tensor>& m) {
  int64_t b = 0;
  for (const auto& [k, v] : m) b += v.bytes();
  return b;
}
}  // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(std::string name, int64_t in, int64_t out, Rng& rng,
               float init_std)
    : name_(std::move(name)),
      in_(in),
      out_(out),
      w_(name_ + ".w", rng.randn({in, out}, init_std)),
      b_(name_ + ".b", Tensor({out})) {}

Tensor Linear::forward(const Tensor& x, int mb) {
  if (x.dim() < 2 || x.size(-1) != in_) {
    throw std::invalid_argument(name_ + ": input dim " + x.shape_str());
  }
  // The GEMM reads x as [rows, in_] in place — no flatten copy, no reshape
  // copy on the way out; the bias is a row-wise epilogue over y.
  const int64_t rows = x.numel() / in_;
  tensor::Shape out_shape = x.shape();
  out_shape.back() = out_;
  Tensor y(std::move(out_shape));
  kernels::gemm(rows, out_, in_, x.data(), in_, w_.value.data(), out_,
                y.data(), out_, /*accumulate=*/false);
  add_bias_(y, b_.value);
  cache_x_[mb] = x;
  return y;
}

Tensor Linear::backward(const Tensor& dy, int mb) {
  auto it = cache_x_.find(mb);
  if (it == cache_x_.end()) {
    throw std::logic_error(name_ + ": backward without forward for mb " +
                           std::to_string(mb));
  }
  const Tensor& x = it->second;
  const int64_t rows = x.numel() / in_;
  // dW += x^T dy, accumulated straight into the gradient — no temporary.
  kernels::gemm_at(in_, out_, rows, x.data(), in_, dy.data(), out_,
                   w_.grad.data(), out_, /*accumulate=*/true);
  // db += column sums of dy, straight into the gradient.
  col_sum_accum(dy, b_.grad);
  // dx = dy W^T, written into a tensor that already has the input's shape.
  Tensor dx(x.shape());
  kernels::gemm_bt(rows, in_, out_, dy.data(), out_, w_.value.data(), out_,
                   dx.data(), in_, /*accumulate=*/false);
  cache_x_.erase(it);
  return dx;
}

Tensor Linear::forward_infer(const Tensor& x, int64_t, int) {
  if (x.dim() < 2 || x.size(-1) != in_) {
    throw std::invalid_argument(name_ + ": input dim " + x.shape_str());
  }
  // Same GEMM + bias epilogue as forward(); nothing saved. Each output
  // element is an independent ascending-k dot, so a row's result does not
  // depend on how many rows share the call — the property KV-cache decode
  // relies on.
  const int64_t rows = x.numel() / in_;
  tensor::Shape out_shape = x.shape();
  out_shape.back() = out_;
  Tensor y(std::move(out_shape));
  kernels::gemm(rows, out_, in_, x.data(), in_, w_.value.data(), out_,
                y.data(), out_, /*accumulate=*/false);
  add_bias_(y, b_.value);
  return y;
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

int64_t Linear::cached_bytes() const { return map_bytes(cache_x_); }

void Linear::drop_cache(int mb) { cache_x_.erase(mb); }

// -------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(std::string name, int64_t dim, float eps)
    : name_(std::move(name)),
      dim_(dim),
      eps_(eps),
      g_(name_ + ".g", Tensor::ones({dim})),
      b_(name_ + ".b", Tensor({dim})) {}

Tensor LayerNorm::forward(const Tensor& x, int mb) {
  const int64_t n = x.size(-1);
  if (n != dim_) throw std::invalid_argument(name_ + ": dim mismatch");
  const int64_t rows = x.numel() / n;
  Tensor xhat(x.shape());
  Tensor inv_std({rows});
  Tensor y(x.shape());
  // Rows are independent (the learned gain/bias are read-only here), so the
  // intra-op pool can split them; per-row accumulation order is unchanged.
  parallel_for(rows, 16, [&](int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* row = x.data() + i * n;
    double mu = 0.0;
    for (int64_t j = 0; j < n; ++j) mu += row[j];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const double d = row[j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps_));
    inv_std[i] = is;
    float* xh = xhat.data() + i * n;
    float* yr = y.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      xh[j] = (row[j] - static_cast<float>(mu)) * is;
      yr[j] = xh[j] * g_.value[j] + b_.value[j];
    }
  }
  });
  cache_xhat_[mb] = std::move(xhat);
  cache_inv_std_[mb] = std::move(inv_std);
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy, int mb) {
  auto it = cache_xhat_.find(mb);
  if (it == cache_xhat_.end()) {
    throw std::logic_error(name_ + ": backward without forward");
  }
  const Tensor& xhat = it->second;
  const Tensor& inv_std = cache_inv_std_[mb];
  const int64_t n = dim_;
  const int64_t rows = dy.numel() / n;
  Tensor dx(dy.shape());
  for (int64_t i = 0; i < rows; ++i) {
    const float* dyr = dy.data() + i * n;
    const float* xh = xhat.data() + i * n;
    float* dxr = dx.data() + i * n;
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const float dxhat = dyr[j] * g_.value[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[j];
      g_.grad[j] += dyr[j] * xh[j];
      b_.grad[j] += dyr[j];
    }
    const float m1 = static_cast<float>(sum_dxhat / static_cast<double>(n));
    const float m2 = static_cast<float>(sum_dxhat_xhat / static_cast<double>(n));
    const float is = inv_std[i];
    for (int64_t j = 0; j < n; ++j) {
      const float dxhat = dyr[j] * g_.value[j];
      dxr[j] = is * (dxhat - m1 - xh[j] * m2);
    }
  }
  cache_xhat_.erase(it);
  cache_inv_std_.erase(mb);
  return dx;
}

Tensor LayerNorm::forward_infer(const Tensor& x, int64_t, int) {
  const int64_t n = x.size(-1);
  if (n != dim_) throw std::invalid_argument(name_ + ": dim mismatch");
  const int64_t rows = x.numel() / n;
  Tensor y(x.shape());
  // Row-for-row the same arithmetic as forward(), without the xhat/inv_std
  // caches.
  parallel_for(rows, 16, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x.data() + i * n;
      double mu = 0.0;
      for (int64_t j = 0; j < n; ++j) mu += row[j];
      mu /= static_cast<double>(n);
      double var = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const double d = row[j] - mu;
        var += d * d;
      }
      var /= static_cast<double>(n);
      const float is = static_cast<float>(1.0 / std::sqrt(var + eps_));
      float* yr = y.data() + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float xh = (row[j] - static_cast<float>(mu)) * is;
        yr[j] = xh * g_.value[j] + b_.value[j];
      }
    }
  });
  return y;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&g_);
  out.push_back(&b_);
}

int64_t LayerNorm::cached_bytes() const {
  return map_bytes(cache_xhat_) + map_bytes(cache_inv_std_);
}

void LayerNorm::drop_cache(int mb) {
  cache_xhat_.erase(mb);
  cache_inv_std_.erase(mb);
}

// ------------------------------------------------------------------ Gelu

Tensor Gelu::forward(const Tensor& x, int mb) {
  cache_x_[mb] = x;
  return gelu(x);
}

Tensor Gelu::backward(const Tensor& dy, int mb) {
  auto it = cache_x_.find(mb);
  if (it == cache_x_.end()) throw std::logic_error(name_ + ": backward without forward");
  Tensor dx = gelu_grad(it->second, dy);
  cache_x_.erase(it);
  return dx;
}

Tensor Gelu::forward_infer(const Tensor& x, int64_t, int) { return gelu(x); }

int64_t Gelu::cached_bytes() const { return map_bytes(cache_x_); }

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::string name, int64_t vocab, int64_t max_seq,
                     int64_t hidden, Rng& rng, float init_std)
    : name_(std::move(name)),
      vocab_(vocab),
      max_seq_(max_seq),
      hidden_(hidden),
      tok_(name_ + ".tok", rng.randn({vocab, hidden}, init_std)),
      pos_(name_ + ".pos", rng.randn({max_seq, hidden}, init_std)) {}

Tensor Embedding::forward(const Tensor& x, int mb) {
  if (x.dim() != 2) throw std::invalid_argument(name_ + ": expect [b, t] ids");
  const int64_t b = x.size(0), t = x.size(1);
  if (t > max_seq_) throw std::invalid_argument(name_ + ": sequence too long");
  Tensor y({b, t, hidden_});
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      const auto id = static_cast<int64_t>(x.at(i, j));
      if (id < 0 || id >= vocab_) throw std::out_of_range(name_ + ": token id");
      const float* trow = tok_.value.data() + id * hidden_;
      const float* prow = pos_.value.data() + j * hidden_;
      float* yrow = y.data() + (i * t + j) * hidden_;
      for (int64_t h = 0; h < hidden_; ++h) yrow[h] = trow[h] + prow[h];
    }
  }
  cache_ids_[mb] = x;
  return y;
}

Tensor Embedding::backward(const Tensor& dy, int mb) {
  auto it = cache_ids_.find(mb);
  if (it == cache_ids_.end()) throw std::logic_error(name_ + ": backward without forward");
  const Tensor& ids = it->second;
  const int64_t b = ids.size(0), t = ids.size(1);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      const auto id = static_cast<int64_t>(ids.at(i, j));
      const float* dyrow = dy.data() + (i * t + j) * hidden_;
      float* tg = tok_.grad.data() + id * hidden_;
      float* pg = pos_.grad.data() + j * hidden_;
      for (int64_t h = 0; h < hidden_; ++h) {
        tg[h] += dyrow[h];
        pg[h] += dyrow[h];
      }
    }
  }
  cache_ids_.erase(it);
  return Tensor();  // no upstream gradient for token ids
}

Tensor Embedding::forward_infer(const Tensor& x, int64_t pos0, int) {
  if (x.dim() != 2) throw std::invalid_argument(name_ + ": expect [b, t] ids");
  const int64_t b = x.size(0), t = x.size(1);
  if (pos0 < 0 || pos0 + t > max_seq_) {
    throw std::invalid_argument(name_ + ": decode past max sequence length");
  }
  Tensor y({b, t, hidden_});
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      const auto id = static_cast<int64_t>(x.at(i, j));
      if (id < 0 || id >= vocab_) throw std::out_of_range(name_ + ": token id");
      const float* trow = tok_.value.data() + id * hidden_;
      const float* prow = pos_.value.data() + (pos0 + j) * hidden_;
      float* yrow = y.data() + (i * t + j) * hidden_;
      for (int64_t h = 0; h < hidden_; ++h) yrow[h] = trow[h] + prow[h];
    }
  }
  return y;
}

void Embedding::collect_params(std::vector<Param*>& out) {
  out.push_back(&tok_);
  out.push_back(&pos_);
}

int64_t Embedding::cached_bytes() const { return map_bytes(cache_ids_); }

}  // namespace hanayo::model
