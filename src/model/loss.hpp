#pragma once
// Token-level cross-entropy loss, computed at the route's final stage.

#include <utility>

#include "tensor/tensor.hpp"

namespace hanayo::model {

/// Softmax cross-entropy over the last dimension.
///
/// logits: [b, t, V] (or any shape flattening to [N, V]);
/// targets: token ids with N entries (stored as floats).
/// Returns {mean loss, dLoss/dlogits} where the gradient is already divided
/// by N (and optionally by `loss_scale` — used to average across
/// micro-batches so that pipeline runs match a full-batch baseline).
std::pair<float, tensor::Tensor> cross_entropy(const tensor::Tensor& logits,
                                               const tensor::Tensor& targets,
                                               float loss_scale = 1.0f);

}  // namespace hanayo::model
