#pragma once
// Optimizers applied at the synchronous flush (paper Fig. 4a).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/layers.hpp"

namespace hanayo::model {

/// A contiguous flat slice [begin, end) of one parameter — the unit ZeRO-1
/// optimizer-state sharding updates (each data-parallel rank owns one shard
/// of every parameter and keeps optimizer state only for it).
struct ParamShard {
  Param* param = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using each param's accumulated gradient, then the
  /// caller is expected to zero the grads (the runtime does this).
  virtual void step(const std::vector<Param*>& params) = 0;
  /// Shard-wise update: touches only value[begin, end) of each entry and
  /// allocates optimizer state sized to the shard. Updating every shard of a
  /// parameter (across ranks) is element-wise identical to a full `step`.
  virtual void step_shards(const std::vector<ParamShard>& shards) = 0;
  /// Bytes of optimizer state currently held — what ZeRO-1 shrinks by D.
  virtual int64_t state_bytes() const = 0;
  /// Learning rate (mutable so schedules can drive it between steps).
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;

  /// Exports the state for `params` as name-addressed tensors (snapshot
  /// copies): "opt.<algo>.<slot>.<param name>" plus scalar bookkeeping like
  /// "opt.adamw.t". Params without state yet (never stepped) are omitted.
  /// Not supported for shard-sized state (ZeRO-1) — use a fresh optimizer
  /// after a ZeRO restore instead.
  virtual std::vector<std::pair<std::string, tensor::Tensor>> state_snapshot(
      const std::vector<Param*>& params) const = 0;

  /// Restores state written by `state_snapshot`. Entries missing from
  /// `state` leave the slot uninitialised (fresh-start semantics); shape
  /// mismatches throw.
  virtual void load_state(
      const std::vector<Param*>& params,
      const std::map<std::string, tensor::Tensor>& state) = 0;
};

/// Sum of squared gradient elements of `p` over the flat range [begin, end).
double grad_sq_sum(const Param& p, int64_t begin, int64_t end);

/// Multiplies every gradient of every param by `factor` in place.
void scale_grads(const std::vector<Param*>& params, float factor);

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step(const std::vector<Param*>& params) override;
  void step_shards(const std::vector<ParamShard>& shards) override;
  int64_t state_bytes() const override;
  std::vector<std::pair<std::string, tensor::Tensor>> state_snapshot(
      const std::vector<Param*>& params) const override;
  void load_state(const std::vector<Param*>& params,
                  const std::map<std::string, tensor::Tensor>& state) override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_, momentum_;
  std::unordered_map<Param*, tensor::Tensor> velocity_;
};

/// AdamW (decoupled weight decay).
class AdamW : public Optimizer {
 public:
  AdamW(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
        float weight_decay = 0.0f);
  void step(const std::vector<Param*>& params) override;
  void step_shards(const std::vector<ParamShard>& shards) override;
  int64_t state_bytes() const override;
  std::vector<std::pair<std::string, tensor::Tensor>> state_snapshot(
      const std::vector<Param*>& params) const override;
  void load_state(const std::vector<Param*>& params,
                  const std::map<std::string, tensor::Tensor>& state) override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  struct Slot {
    tensor::Tensor m, v;
  };
  float lr_, beta1_, beta2_, eps_, wd_;
  int64_t t_ = 0;
  std::unordered_map<Param*, Slot> slots_;
};

}  // namespace hanayo::model
