#include "model/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

namespace hanayo::model {

namespace {

constexpr char kMagic[8] = {'H', 'A', 'N', 'A', 'Y', 'O', '0', '1'};

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

uint64_t read_u64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

struct Record {
  tensor::Shape shape;
  std::streampos data_pos;
};

/// Scans the file and returns name -> (shape, data offset).
std::map<std::string, Record> scan(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  if (!is || std::memcmp(magic, kMagic, 8) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const uint64_t count = read_u64(is);
  std::map<std::string, Record> out;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t ndims = read_u64(is);
    tensor::Shape shape;
    int64_t numel = 1;
    for (uint64_t d = 0; d < ndims; ++d) {
      shape.push_back(static_cast<int64_t>(read_u64(is)));
      numel *= shape.back();
    }
    if (!is) throw std::runtime_error("checkpoint: truncated header");
    out.emplace(std::move(name), Record{std::move(shape), is.tellg()});
    is.seekg(numel * static_cast<int64_t>(sizeof(float)), std::ios::cur);
  }
  return out;
}

}  // namespace

void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  os.write(kMagic, 8);
  write_u64(os, records.size());
  for (const NamedTensor& r : records) {
    if (r.tensor == nullptr) {
      throw std::invalid_argument("checkpoint: null tensor for " + r.name);
    }
    write_u64(os, r.name.size());
    os.write(r.name.data(), static_cast<std::streamsize>(r.name.size()));
    write_u64(os, r.tensor->shape().size());
    for (int64_t d : r.tensor->shape()) write_u64(os, static_cast<uint64_t>(d));
    os.write(reinterpret_cast<const char*>(r.tensor->data()),
             static_cast<std::streamsize>(r.tensor->bytes()));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

void save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params) {
  std::vector<NamedTensor> records;
  records.reserve(params.size());
  for (const Param* p : params) records.push_back({p->name, &p->value});
  save_checkpoint(path, records);
}

std::map<std::string, tensor::Tensor> load_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  const auto records = scan(is);
  is.clear();
  std::map<std::string, tensor::Tensor> out;
  for (const auto& [name, rec] : records) {
    tensor::Tensor t(rec.shape);
    is.seekg(rec.data_pos);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.bytes()));
    if (!is) throw std::runtime_error("checkpoint: truncated data for " + name);
    out.emplace(name, std::move(t));
  }
  return out;
}

void load_checkpoint(const std::string& path,
                     const std::vector<Param*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  const auto records = scan(is);
  is.clear();
  for (Param* p : params) {
    const auto it = records.find(p->name);
    if (it == records.end()) {
      throw std::runtime_error("checkpoint: missing parameter " + p->name);
    }
    if (it->second.shape != p->value.shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + p->name);
    }
    is.seekg(it->second.data_pos);
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.bytes()));
    if (!is) throw std::runtime_error("checkpoint: truncated data for " + p->name);
  }
}

std::vector<std::string> checkpoint_names(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::string> names;
  for (const auto& [name, rec] : scan(is)) names.push_back(name);
  return names;
}

}  // namespace hanayo::model
