#include "model/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace hanayo::model {

using tensor::Tensor;

std::pair<float, Tensor> cross_entropy(const Tensor& logits,
                                       const Tensor& targets,
                                       float loss_scale) {
  const int64_t v = logits.size(-1);
  const int64_t n = logits.numel() / v;
  if (targets.numel() != n) {
    throw std::invalid_argument("cross_entropy: target count mismatch");
  }
  Tensor dlogits(logits.shape());
  double total = 0.0;
  const float inv_n = loss_scale / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * v;
    float* drow = dlogits.data() + i * v;
    const auto tgt = static_cast<int64_t>(targets[i]);
    if (tgt < 0 || tgt >= v) throw std::out_of_range("cross_entropy: target id");
    float mx = row[0];
    for (int64_t j = 1; j < v; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < v; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[tgt] - mx) - log_denom);
    for (int64_t j = 0; j < v; ++j) {
      const float p = static_cast<float>(std::exp(static_cast<double>(row[j] - mx)) / denom);
      drow[j] = (p - (j == tgt ? 1.0f : 0.0f)) * inv_n;
    }
  }
  return {static_cast<float>(total / static_cast<double>(n)) * loss_scale,
          std::move(dlogits)};
}

}  // namespace hanayo::model
