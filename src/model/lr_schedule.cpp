#include "model/lr_schedule.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hanayo::model {

float LrSchedule::at(int64_t step) const {
  if (step < 0) throw std::invalid_argument("LrSchedule::at: negative step");
  if (kind == Kind::Constant) return base;

  if (warmup > 0 && step < warmup) {
    return base * static_cast<float>(step + 1) / static_cast<float>(warmup);
  }
  if (total <= warmup || step >= total) return min_lr;

  const float progress = static_cast<float>(step - warmup) /
                         static_cast<float>(total - warmup);
  if (kind == Kind::WarmupLinear) {
    return min_lr + (base - min_lr) * (1.0f - progress);
  }
  // WarmupCosine
  const float cos_factor =
      0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * progress));
  return min_lr + (base - min_lr) * cos_factor;
}

LrSchedule LrSchedule::constant(float base) {
  return {Kind::Constant, base, 0, 0, 0.0f};
}

LrSchedule LrSchedule::warmup_linear(float base, int64_t warmup, int64_t total,
                                     float min_lr) {
  if (warmup < 0 || total < warmup) {
    throw std::invalid_argument("warmup_linear: need 0 <= warmup <= total");
  }
  return {Kind::WarmupLinear, base, warmup, total, min_lr};
}

LrSchedule LrSchedule::warmup_cosine(float base, int64_t warmup, int64_t total,
                                     float min_lr) {
  if (warmup < 0 || total < warmup) {
    throw std::invalid_argument("warmup_cosine: need 0 <= warmup <= total");
  }
  return {Kind::WarmupCosine, base, warmup, total, min_lr};
}

}  // namespace hanayo::model
