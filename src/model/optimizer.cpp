#include "model/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace hanayo::model {

namespace {
void check_shard(const ParamShard& s) {
  if (s.param == nullptr || s.begin < 0 || s.end < s.begin ||
      s.end > s.param->value.numel()) {
    throw std::invalid_argument("step_shards: shard out of range");
  }
}
}  // namespace

double grad_sq_sum(const Param& p, int64_t begin, int64_t end) {
  if (begin < 0 || end < begin || end > p.grad.numel()) {
    throw std::invalid_argument("grad_sq_sum: range out of bounds");
  }
  double s = 0.0;
  for (int64_t i = begin; i < end; ++i) {
    s += static_cast<double>(p.grad[i]) * static_cast<double>(p.grad[i]);
  }
  return s;
}

void scale_grads(const std::vector<Param*>& params, float factor) {
  for (Param* p : params) p->grad.scale_(factor);
}

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (momentum_ == 0.0f) {
      const int64_t n = p->value.numel();
      for (int64_t i = 0; i < n; ++i) p->value[i] -= lr_ * p->grad[i];
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    tensor::Tensor& v = it->second;
    const int64_t n = p->value.numel();
    for (int64_t i = 0; i < n; ++i) {
      v[i] = momentum_ * v[i] + p->grad[i];
      p->value[i] -= lr_ * v[i];
    }
  }
}

void Sgd::step_shards(const std::vector<ParamShard>& shards) {
  for (const ParamShard& s : shards) {
    check_shard(s);
    Param* p = s.param;
    if (momentum_ == 0.0f) {
      for (int64_t i = s.begin; i < s.end; ++i) {
        p->value[i] -= lr_ * p->grad[i];
      }
      continue;
    }
    // Velocity is allocated at shard size; index i maps to i - begin.
    auto [it, inserted] =
        velocity_.try_emplace(p, tensor::Shape{s.end - s.begin});
    tensor::Tensor& v = it->second;
    if (v.numel() != s.end - s.begin) {
      throw std::invalid_argument("Sgd::step_shards: shard bounds changed");
    }
    for (int64_t i = s.begin; i < s.end; ++i) {
      const int64_t k = i - s.begin;
      v[k] = momentum_ * v[k] + p->grad[i];
      p->value[i] -= lr_ * v[k];
    }
  }
}

int64_t Sgd::state_bytes() const {
  int64_t total = 0;
  for (const auto& [p, v] : velocity_) total += v.bytes();
  return total;
}

std::vector<std::pair<std::string, tensor::Tensor>> Sgd::state_snapshot(
    const std::vector<Param*>& params) const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  for (const Param* p : params) {
    const auto it = velocity_.find(const_cast<Param*>(p));
    if (it == velocity_.end()) continue;
    if (it->second.numel() != p->value.numel()) {
      throw std::logic_error("Sgd::state_snapshot: shard-sized state");
    }
    out.emplace_back("opt.sgd.v." + p->name, it->second);
  }
  return out;
}

void Sgd::load_state(const std::vector<Param*>& params,
                     const std::map<std::string, tensor::Tensor>& state) {
  for (Param* p : params) {
    const auto it = state.find("opt.sgd.v." + p->name);
    if (it == state.end()) continue;
    if (it->second.numel() != p->value.numel()) {
      throw std::invalid_argument("Sgd::load_state: shape mismatch for " +
                                  p->name);
    }
    velocity_[p] = it->second;
  }
}

AdamW::AdamW(float lr, float beta1, float beta2, float eps, float weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), wd_(weight_decay) {}

void AdamW::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    auto [it, inserted] = slots_.try_emplace(
        p, Slot{tensor::Tensor(p->value.shape()), tensor::Tensor(p->value.shape())});
    Slot& s = it->second;
    const int64_t n = p->value.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float g = p->grad[i];
      s.m[i] = beta1_ * s.m[i] + (1.0f - beta1_) * g;
      s.v[i] = beta2_ * s.v[i] + (1.0f - beta2_) * g * g;
      const float mhat = s.m[i] / bc1;
      const float vhat = s.v[i] / bc2;
      p->value[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + wd_ * p->value[i]);
    }
  }
}

void AdamW::step_shards(const std::vector<ParamShard>& shards) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const ParamShard& sh : shards) {
    check_shard(sh);
    Param* p = sh.param;
    const int64_t len = sh.end - sh.begin;
    auto [it, inserted] = slots_.try_emplace(
        p, Slot{tensor::Tensor(tensor::Shape{len}), tensor::Tensor(tensor::Shape{len})});
    Slot& s = it->second;
    if (s.m.numel() != len) {
      throw std::invalid_argument("AdamW::step_shards: shard bounds changed");
    }
    for (int64_t i = sh.begin; i < sh.end; ++i) {
      const int64_t k = i - sh.begin;
      const float g = p->grad[i];
      s.m[k] = beta1_ * s.m[k] + (1.0f - beta1_) * g;
      s.v[k] = beta2_ * s.v[k] + (1.0f - beta2_) * g * g;
      const float mhat = s.m[k] / bc1;
      const float vhat = s.v[k] / bc2;
      p->value[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + wd_ * p->value[i]);
    }
  }
}

int64_t AdamW::state_bytes() const {
  int64_t total = 0;
  for (const auto& [p, s] : slots_) total += s.m.bytes() + s.v.bytes();
  return total;
}

std::vector<std::pair<std::string, tensor::Tensor>> AdamW::state_snapshot(
    const std::vector<Param*>& params) const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  tensor::Tensor t({1});
  t[0] = static_cast<float>(t_);
  out.emplace_back("opt.adamw.t", std::move(t));
  for (const Param* p : params) {
    const auto it = slots_.find(const_cast<Param*>(p));
    if (it == slots_.end()) continue;
    if (it->second.m.numel() != p->value.numel()) {
      throw std::logic_error("AdamW::state_snapshot: shard-sized state");
    }
    out.emplace_back("opt.adamw.m." + p->name, it->second.m);
    out.emplace_back("opt.adamw.v." + p->name, it->second.v);
  }
  return out;
}

void AdamW::load_state(const std::vector<Param*>& params,
                       const std::map<std::string, tensor::Tensor>& state) {
  if (const auto it = state.find("opt.adamw.t"); it != state.end()) {
    t_ = static_cast<int64_t>(it->second[0]);
  }
  for (Param* p : params) {
    const auto mi = state.find("opt.adamw.m." + p->name);
    const auto vi = state.find("opt.adamw.v." + p->name);
    if (mi == state.end() || vi == state.end()) continue;
    if (mi->second.numel() != p->value.numel() ||
        vi->second.numel() != p->value.numel()) {
      throw std::invalid_argument("AdamW::load_state: shape mismatch for " +
                                  p->name);
    }
    slots_[p] = Slot{mi->second, vi->second};
  }
}

}  // namespace hanayo::model
