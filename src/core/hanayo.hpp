#pragma once
// Hanayo — wave-like pipeline parallelism (SC '23 reproduction).
//
// Single-include public API. Typical use:
//
//   #include "core/hanayo.hpp"
//
//   hanayo::TrainerConfig cfg;
//   cfg.model = hanayo::ModelConfig::tiny(/*layers=*/8);
//   cfg.sched.algo = hanayo::Algo::Hanayo;
//   cfg.sched.P = 4;        // pipeline workers
//   cfg.sched.B = 8;        // micro-batches
//   cfg.sched.waves = 2;    // W
//   hanayo::Trainer trainer(cfg);
//   float loss = trainer.train_step(batch);
//
// For planning without running (what the paper's Fig. 10 search does):
//
//   auto plans = hanayo::plan({.model = ..., .cluster = hanayo::Cluster::tacc(32),
//                              .total_devices = 32, .batch_sequences = 8});

#include "comm/collectives.hpp"
#include "comm/fp16.hpp"
#include "data/corpus.hpp"
#include "data/dataloader.hpp"
#include "model/checkpoint.hpp"
#include "model/loss.hpp"
#include "model/lr_schedule.hpp"
#include "model/optimizer.hpp"
#include "model/partition.hpp"
#include "model/scaler.hpp"
#include "model/transformer.hpp"
#include "perf/analytic.hpp"
#include "perf/calibrate.hpp"
#include "perf/hybrid.hpp"
#include "perf/planner.hpp"
#include "perf/zones.hpp"
#include "runtime/async_trainer.hpp"
#include "runtime/engine.hpp"
#include "runtime/trainer.hpp"
#include "schedule/algorithms.hpp"
#include "schedule/async.hpp"
#include "schedule/validate.hpp"
#include "sim/cluster.hpp"
#include "sim/event_sim.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace hanayo {

// Re-export the primary vocabulary types at the top level.
using data::DataLoader;
using data::LoaderConfig;
using data::SyntheticCorpus;
using model::DynamicLossScaler;
using model::LrSchedule;
using model::ModelConfig;
using perf::Candidate;
using perf::plan;
using perf::PlanRequest;
using runtime::AsyncTrainer;
using runtime::AsyncTrainerConfig;
using runtime::Batch;
using runtime::OptKind;
using runtime::SequentialEngine;
using runtime::Trainer;
using runtime::TrainerConfig;
using schedule::Algo;
using schedule::make_async_schedule;
using schedule::make_schedule;
using schedule::Placement;
using schedule::Schedule;
using schedule::ScheduleRequest;
using sim::Cluster;
using sim::simulate;
using tensor::Rng;
using tensor::Tensor;

/// Generates a synthetic language-modelling batch: random token ids with
/// next-token targets (targets[i] = inputs shifted by one within the
/// sequence, wrapping) — a stand-in for the text corpora the paper trains
/// on; the compute and communication are identical.
Batch synthetic_batch(const ModelConfig& model, int64_t sequences, Rng& rng);

/// Library version string.
const char* version();

}  // namespace hanayo
