#pragma once
// Hanayo — wave-like pipeline parallelism (SC '23 reproduction).
//
// Single-include public API. The front door is hanayo::Session: one builder
// for model + schedule + execution engine, one result vocabulary
// (StepReport / RunReport) for every engine:
//
//   #include "core/hanayo.hpp"
//
//   auto session = hanayo::Session::builder()
//                      .model(hanayo::ModelConfig::tiny(/*layers=*/14))
//                      .algo(hanayo::Algo::Hanayo)
//                      .pipeline(4)        // P workers
//                      .micro_batches(8)   // B per iteration
//                      .waves(2)           // W
//                      .backend(hanayo::BackendKind::Threads)
//                      .build();
//   hanayo::Rng rng(7);
//   const auto batch = hanayo::synthetic_batch(session.config().model,
//                                              session.batch_rows(), rng);
//   float loss = session.step(batch).loss;
//
// Swap .backend(BackendKind::Sim) to dry-run the same configuration on the
// discrete-event cost model (predicted throughput/memory, nothing
// executed), or call session.predict() on any session. For the paper's
// Fig. 10 configuration search over a whole cluster:
//
//   hanayo::PlanRequest req;
//   req.model = hanayo::ModelConfig::bert_paper();
//   req.cluster = hanayo::Cluster::tacc(32);
//   req.total_devices = 32;
//   req.batch_sequences = 8;
//   auto plans = hanayo::plan(req);  // ranked perf::Candidate rows
//
// Serving is the same builder chain with serving knobs: a forward-only wave
// pipeline with per-stream KV caches, continuous batching up to max_batch,
// seeded sampling (greedy / top-k / temperature), stop tokens, and dp
// pipeline replicas behind one shared queue — with decode that is
// token-identical across Threads and Reference, replicas, and runs:
//
//   auto server = hanayo::InferenceSession::builder()
//                     .model(hanayo::ModelConfig::tiny(/*layers=*/14))
//                     .algo(hanayo::Algo::Hanayo)
//                     .pipeline(4).waves(2)
//                     .backend(hanayo::BackendKind::Threads)
//                     .max_batch(4).max_new_tokens(4)
//                     .sampling(hanayo::Sampling::TopK(8, 0.8f))
//                     .eos(2)               // stop-token id
//                     .data_parallel(2)     // dp replicas, one shared queue
//                     .seed(7)              // per-request sampling streams
//                     .build();
//   hanayo::Tensor prompt({1, 5});          // token ids
//   server.enqueue(prompt);
//   auto completions = server.run();        // Completion{id, tokens, stop_reason}
//   auto serve_report = server.report();    // tokens/sec, ms/token, per-replica
//   auto sla = server.predict();            // forward-only dry run (models dp)
//
// Serving also has its Fig. 10: the decode-aware planner searches
// (algo, P, W, max_batch, dp) against a cluster and an SLA target, pruning
// by KV/weight memory and event-simulating the mixed prefill/decode
// timeline of each surviving cell. A session can self-configure from the
// winning candidate (whose predicted numbers its predict() then reproduces
// bit-for-bit):
//
//   hanayo::ServeTarget target;
//   target.total_devices = 8;
//   target.prompt_tokens = 12;
//   target.max_new_tokens = 8;
//   auto rows = hanayo::plan_serving(hanayo::Cluster::fc(),
//                                    hanayo::ModelConfig::tiny(14), target);
//   std::puts(rows.front().to_string().c_str());  // ranked ServeCandidate
//
//   auto planned = hanayo::InferenceSession::builder()
//                      .model(hanayo::ModelConfig::tiny(14))
//                      .backend(hanayo::BackendKind::Sim)
//                      .cluster(hanayo::Cluster::fc())  // plan + predict on it
//                      .auto_plan(target)   // adopts (algo, P, W, batch, dp)
//                      .build();
//   auto picked_sla = planned.predict();   // == the winning row's numbers
//
// Streaming completions ride on the same enqueue call: pass an on_token
// callback and each selected token is delivered at the pass boundary that
// produced it —
//
//   server.enqueue(prompt, 0, [](const hanayo::TokenEvent& e) {
//     std::printf("req %lld token %lld%s", (long long)e.request_id,
//                 (long long)e.token, e.last ? " (done)\n" : "\n");
//   });
//
// Serving under load adds per-request SLAs on the same chain: a deadline
// (relative seconds from enqueue; misses complete as
// StopReason::DeadlineExceeded within one pass), a bounded admission queue
// (refusals complete as StopReason::Rejected instead of waiting forever),
// and a cancel handle honoured mid-decode at the next pass boundary. After
// a drain, the outcome counters conserve:
// submitted == served + rejected + cancelled + timed_out.
//
//   auto sla_server = hanayo::InferenceSession::builder()
//                         .model(hanayo::ModelConfig::tiny(/*layers=*/6))
//                         .backend(hanayo::BackendKind::Threads)
//                         .pipeline(2).max_batch(2).max_new_tokens(4)
//                         .deadline_s(0.5)  // default per-request SLA
//                         .queue(hanayo::QueuePolicy::RejectNew, 4)
//                         .build();
//   hanayo::Tensor p({1, 5});
//   auto id = sla_server.enqueue(p);        // config deadline applies
//   sla_server.enqueue(p, 0, {}, 2.0);      // per-request override
//   sla_server.cancel(id);                  // -> StopReason::Cancelled
//   auto outcome = sla_server.run();        // enqueue/admit/first_token/
//                                           // finish timestamps on each
//   auto load_rep = sla_server.report();    // p50/p99 TTFT over survivors
//
// Paged KV & prefix caching swap the per-stream contiguous KV slabs for a
// pooled page allocator with a cross-request prefix cache: fixed-size pages
// (kv_page_tokens rows per attention layer), admission priced in pages a
// request can actually need instead of a worst-case slot, and requests that
// share a prompt head (a common system prompt) adopting the published pages
// and skipping that part of prefill — while decoding tokens that stay
// bitwise identical to the contiguous path. Chat-style reuse:
//
//   auto paged = hanayo::InferenceSession::builder()
//                    .model(hanayo::ModelConfig::tiny(6, 32, 2, 67,
//                                                     /*seq=*/24))
//                    .backend(hanayo::BackendKind::Threads)
//                    .pipeline(2).max_batch(1).max_new_tokens(4)
//                    .paged_kv()           // pooled pages + prefix cache
//                    .kv_page_tokens(8)    // rows per page per layer
//                    .build();
//   hanayo::Tensor turn1({1, 12}), turn2({1, 12});  // ids: same first 8
//   paged.enqueue(turn1);                  //      tokens, different tails
//   paged.run();                           // prefills all 12, publishes
//   paged.enqueue(turn2);
//   paged.run();                           // prefills the 4-token tail only
//   auto page_rep = paged.report();
//   page_rep.prefill_tokens_saved();       // == 8: head served from cache
//   page_rep.prefix_hit_rate();            // fraction of prompt tokens hit
//   page_rep.kv_pages_peak;                // pool high-water mark (pages)
//
// (.kv_pool_pages(n) bounds the per-replica pool — a dry pool holds
// requests back or sheds them under QueuePolicy instead of deadlocking;
// .prefix_cache(false) keeps paging but disables cross-request sharing.)
//
// The pre-Session entry points (Trainer, AsyncTrainer, SequentialEngine and
// their config structs) remain available below as compatibility shims; the
// Session backends are thin wrappers over them.
//
// Contributor rules (enforced by CI, see README "Correctness & CI"):
//
//   * Locks: never declare a raw std::mutex / std::condition_variable. Use
//     sync::Mutex<Rank> / sync::CondVar from core/sync.hpp; the rank table
//     there is the single global acquisition order, and debug/sanitizer
//     builds abort on the first out-of-order acquire. Holding two locks
//     means taking them in strictly increasing rank order — if your new
//     lock does not fit between existing ranks, add a named rank and
//     document what it protects.
//   * Sanitizers: CI runs the full suite under TSan and ASan+UBSan with no
//     suppression files. A race or lifetime bug anywhere in the threaded
//     stack fails the build; do not add suppressions, fix the bug.
//   * Hot-path allocations: tensor::alloc_stats() meters the global heap;
//     tests/runtime/test_alloc_decode.cpp pins the steady-state decode
//     pass at ZERO heap allocations and budgets the training step. If the
//     gate trips, move the allocation into the arena — never raise the
//     bound.
//   * Arenas: every buffer whose lifetime ends at the pass/iteration
//     boundary comes from the active tensor::Arena (installed by
//     ArenaScope in the worker loops; Tensor and ScratchBuffer
//     constructors consult it automatically) — never bare `new`, a
//     std::vector::resize, or a std::make_unique on a hot path. State
//     that must outlive the pass (KV growth, optimizer slots) allocates
//     under tensor::ArenaPause. Diagnose stray allocations with
//     tensor::alloc_stats_trace(true).

#include "api/inference.hpp"
#include "api/session.hpp"
#include "comm/collectives.hpp"
#include "comm/fp16.hpp"
#include "data/corpus.hpp"
#include "data/dataloader.hpp"
#include "model/checkpoint.hpp"
#include "model/loss.hpp"
#include "model/lr_schedule.hpp"
#include "model/optimizer.hpp"
#include "model/partition.hpp"
#include "model/scaler.hpp"
#include "model/transformer.hpp"
#include "perf/analytic.hpp"
#include "perf/calibrate.hpp"
#include "perf/engine.hpp"
#include "perf/hybrid.hpp"
#include "perf/planner.hpp"
#include "perf/serve_planner.hpp"
#include "perf/zones.hpp"
#include "runtime/async_trainer.hpp"
#include "runtime/engine.hpp"
#include "runtime/trainer.hpp"
#include "schedule/algorithms.hpp"
#include "schedule/async.hpp"
#include "schedule/validate.hpp"
#include "sim/cluster.hpp"
#include "sim/event_sim.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace hanayo {

// Re-export the primary vocabulary types at the top level.
using api::Backend;
using api::BackendKind;
using api::Completion;
using api::EngineConfig;
using api::FaultInjection;
using api::InferenceConfig;
using api::InferenceSession;
using api::MemoryReport;
using api::QueuePolicy;
using api::RunReport;
using api::Sampling;
using api::ServeReport;
using api::StopReason;
using api::Session;
using api::SessionConfig;
using api::StepReport;
using data::DataLoader;
using data::LoaderConfig;
using data::SyntheticCorpus;
using api::TokenCallback;
using api::TokenEvent;
using model::DynamicLossScaler;
using model::LrSchedule;
using model::ModelConfig;
using perf::best_serving;
using perf::calibrate_serving;
using perf::Candidate;
using perf::Engine;
using perf::measure_serving_rates;
using perf::plan;
using perf::plan_serving;
using perf::PlanRequest;
using perf::ServeCandidate;
using perf::ServeTarget;
using perf::ServingCalibration;
using perf::ServingPoint;
using perf::ServingSample;
using runtime::AsyncTrainer;
using runtime::AsyncTrainerConfig;
using runtime::Batch;
using runtime::OptKind;
using runtime::SequentialEngine;
using runtime::Trainer;
using runtime::TrainerConfig;
using schedule::Algo;
using schedule::make_async_schedule;
using schedule::make_schedule;
using schedule::Placement;
using schedule::Schedule;
using schedule::ScheduleRequest;
using sim::Cluster;
using sim::simulate;
using tensor::Rng;
using tensor::Tensor;

/// Generates a synthetic language-modelling batch: random token ids with
/// next-token targets (targets[i] = inputs shifted by one within the
/// sequence, wrapping) — a stand-in for the text corpora the paper trains
/// on; the compute and communication are identical.
Batch synthetic_batch(const ModelConfig& model, int64_t sequences, Rng& rng);

/// Library version string.
const char* version();

}  // namespace hanayo
