#include "core/sync.hpp"

#include <cstdio>
#include <cstdlib>

namespace hanayo::sync {

const char* rank_name(Rank r) {
  switch (r) {
    case Rank::IntraOpSubmit:
      return "IntraOpSubmit";
    case Rank::IntraOpPool:
      return "IntraOpPool";
    case Rank::ServeQueue:
      return "ServeQueue";
    case Rank::InferGang:
      return "InferGang";
    case Rank::WorldBarrier:
      return "WorldBarrier";
    case Rank::Mailbox:
      return "Mailbox";
    case Rank::CommRequest:
      return "CommRequest";
    case Rank::KvPool:
      return "KvPool";
    case Rank::CommPool:
      return "CommPool";
  }
  return "?";
}

#if defined(HANAYO_SYNC_CHECKS)

namespace detail {

namespace {
// Held ranks of the current thread, outermost first. A fixed array keeps
// the tracking allocation-free (the checker must not perturb the
// allocation counts the hot-path tests assert on); depth beyond the
// capacity would itself be a hierarchy bug worth aborting on.
constexpr int kMaxHeld = 16;
thread_local Rank t_held[kMaxHeld];
thread_local int t_depth = 0;
}  // namespace

void note_acquire(Rank r) {
  if (t_depth > 0) {
    const Rank top = t_held[t_depth - 1];
    if (static_cast<int>(r) <= static_cast<int>(top)) {
      std::fprintf(stderr,
                   "hanayo::sync lock-rank inversion: acquiring %s(%d) while "
                   "holding %s(%d); locks must be taken in strictly "
                   "increasing rank order\n",
                   rank_name(r), static_cast<int>(r), rank_name(top),
                   static_cast<int>(top));
      std::abort();
    }
  }
  if (t_depth >= kMaxHeld) {
    std::fprintf(stderr, "hanayo::sync: more than %d locks held\n", kMaxHeld);
    std::abort();
  }
  t_held[t_depth++] = r;
}

void note_release(Rank r) {
  // Scoped guards release in LIFO order, but std::unique_lock allows any
  // order; drop the innermost matching entry.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i] == r) {
      for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
      --t_depth;
      return;
    }
  }
  std::fprintf(stderr,
               "hanayo::sync: releasing %s(%d) which this thread does not "
               "hold\n",
               rank_name(r), static_cast<int>(r));
  std::abort();
}

int held_depth() { return t_depth; }

}  // namespace detail

#endif  // HANAYO_SYNC_CHECKS

}  // namespace hanayo::sync
