#include "core/hanayo.hpp"

namespace hanayo {

Batch synthetic_batch(const ModelConfig& model, int64_t sequences, Rng& rng) {
  Batch b;
  b.inputs = Tensor({sequences, model.seq});
  b.targets = Tensor({sequences, model.seq});
  for (int64_t r = 0; r < sequences; ++r) {
    for (int64_t t = 0; t < model.seq; ++t) {
      b.inputs.at(r, t) = static_cast<float>(rng.index(model.vocab));
    }
    for (int64_t t = 0; t < model.seq; ++t) {
      const int64_t next = (t + 1) % model.seq;
      b.targets.at(r, t) = b.inputs.at(r, next);
    }
  }
  return b;
}

const char* version() { return "1.0.0"; }

}  // namespace hanayo
