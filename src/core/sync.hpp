#pragma once
// Lock-rank checked synchronization primitives.
//
// Every mutex in the repo carries a compile-time rank, and a thread may
// only acquire locks in strictly increasing rank order. That single rule
// makes lock-order deadlocks structurally impossible: a cycle in the
// waits-for graph would need at least one edge from a higher rank to a
// lower one, which the checker (or a code review against the table below)
// rejects. The rank table is the repo's whole locking policy in one place:
//
//   IntraOpSubmit (10)  tensor/parallel — pool submission gate; held across
//                       the whole parallel_for region, so it must be the
//                       outermost lock a kernel thread can own.
//   IntraOpPool   (20)  tensor/parallel — pool job/wakeup state; acquired
//                       while IntraOpSubmit is held (10 < 20).
//   ServeQueue    (30)  runtime/infer — shared request FIFO dp replicas
//                       drain; never held across model or comm calls.
//   InferGang     (35)  runtime/infer — the persistent per-replica pass
//                       gang's generation/rendezvous state. Held only at
//                       pass hand-off (publish/collect), never across the
//                       pass body, so workers' comm and kernel locks nest
//                       inside legally (35 < 40/50/60/70/80).
//   WorldBarrier  (40)  comm/mailbox — World::barrier rendezvous.
//   Mailbox       (50)  comm/mailbox — one rank's message queue. The
//                       transport completes requests only after releasing
//                       this (50 < 60 keeps even an accidental nesting
//                       legal in the deadlock-free direction).
//   CommRequest   (60)  comm/mailbox — per-operation completion handles;
//                       innermost, no code path acquires anything under it.
//   KvPool        (70)  runtime/kv_store — paged KV pool free-list,
//                       refcounts and prefix-tree state; a leaf taken by
//                       worker threads mid-pass (page alloc/COW) and by the
//                       pipeline thread between passes, never held across
//                       kernels or parallel_for.
//   CommPool      (80)  comm/communicator — the recycling block pool
//                       behind irecv request handles. A true leaf: taken
//                       for a free-list push/pop only, while no other
//                       lock is held (allocation happens before the
//                       mailbox lock, deallocation after every unlock).
//
// New subsystems add a named rank here (never reuse a value, leave gaps
// for future layers) and document which existing ranks they may hold
// concurrently. Checking is active when HANAYO_SYNC_CHECKS is defined
// (Debug and sanitizer builds wire it up in CMake): each thread keeps a
// stack of held ranks and a violating acquisition aborts with both ranks
// named. In Release the wrappers compile down to the raw std::mutex —
// ranks cost nothing at runtime, but every lock site still names its
// place in the hierarchy.

#include <condition_variable>
#include <mutex>

namespace hanayo::sync {

/// The global lock hierarchy. Values are the acquisition order: a thread
/// holding rank r may only acquire ranks strictly greater than r.
enum class Rank : int {
  IntraOpSubmit = 10,
  IntraOpPool = 20,
  ServeQueue = 30,
  InferGang = 35,
  WorldBarrier = 40,
  Mailbox = 50,
  CommRequest = 60,
  KvPool = 70,
  CommPool = 80,
};

/// Human-readable rank name for diagnostics.
const char* rank_name(Rank r);

namespace detail {
#if defined(HANAYO_SYNC_CHECKS)
/// Aborts (after printing both ranks) unless `r` is strictly greater than
/// every rank the calling thread already holds; records the acquisition.
void note_acquire(Rank r);
/// Records a successful try_lock — same ordering rule as note_acquire.
void note_release(Rank r);
/// Number of ranks the calling thread currently holds (tests).
int held_depth();
#else
inline void note_acquire(Rank) {}
inline void note_release(Rank) {}
inline int held_depth() { return 0; }
#endif
}  // namespace detail

/// A std::mutex at a fixed place in the lock hierarchy. Satisfies
/// *Lockable*, so std::lock_guard / std::unique_lock / std::scoped_lock
/// work unchanged — porting a lock site is a type swap.
template <Rank R>
class Mutex {
 public:
  static constexpr Rank rank = R;

  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    detail::note_acquire(R);
    mu_.lock();
  }

  bool try_lock() {
    // The order check happens only on success: a failed try_lock leaves
    // the thread's held set unchanged, and a blocking fallback would be
    // checked by its own lock() call.
    if (!mu_.try_lock()) return false;
    detail::note_acquire(R);
    return true;
  }

  void unlock() {
    detail::note_release(R);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// Condition variable usable with any ranked Mutex (condition_variable_any
/// re-locks through Mutex::lock/unlock, so the held-rank stack stays exact
/// across the wait's release/reacquire cycle).
class CondVar {
 public:
  template <class Lock>
  void wait(Lock& lk) {
    cv_.wait(lk);
  }
  template <class Lock, class Pred>
  void wait(Lock& lk, Pred pred) {
    cv_.wait(lk, std::move(pred));
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hanayo::sync
