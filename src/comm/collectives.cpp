#include "comm/collectives.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace hanayo::comm {

int Group::index_of(int rank) const {
  for (size_t i = 0; i < ranks.size(); ++i) {
    if (ranks[i] == rank) return static_cast<int>(i);
  }
  return -1;
}

namespace {

Tag coll_tag(int phase, int step) {
  return make_tag(Kind::Collective, step, 0, phase);
}

int require_member(const Group& group, const Communicator& comm,
                   const char* what) {
  const int me = group.index_of(comm.rank());
  if (me < 0) {
    throw std::invalid_argument(std::string(what) + ": rank not in group");
  }
  return me;
}

/// Sums `src` into `dst[offset..offset+len)`.
void accumulate(float* dst, const float* src, int64_t len) {
  for (int64_t i = 0; i < len; ++i) dst[i] += src[i];
}

/// Ring allreduce: n−1 reduce-scatter steps followed by n−1 allgather steps,
/// each moving one of n contiguous chunks around the ring. Bandwidth per rank
/// is 2·(n−1)/n · numel — the NCCL ring bound.
void allreduce_ring(Communicator& comm, const Group& group, tensor::Tensor& t,
                    int phase) {
  const int me = group.index_of(comm.rank());
  const int n = group.size();
  const int64_t numel = t.numel();
  const int next = group.ranks[static_cast<size_t>((me + 1) % n)];
  const int prev = group.ranks[static_cast<size_t>((me + n - 1) % n)];

  auto chunk_of = [&](int idx) { return shard_bounds(numel, n, ((idx % n) + n) % n); };

  // Reduce-scatter phase: after step s, rank r holds the partial sum of
  // chunk (r − s) over s+1 contributions; after n−1 steps rank r owns the
  // full sum of chunk (r + 1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    auto [sb, se] = chunk_of(me - s);
    tensor::Tensor out({se - sb});
    std::memcpy(out.data(), t.data() + sb,
                static_cast<size_t>(se - sb) * sizeof(float));
    Request sreq = comm.isend(next, coll_tag(phase, s), std::move(out));
    auto [rb, re] = chunk_of(me - s - 1);
    tensor::Tensor in;
    Request rreq = comm.irecv(prev, coll_tag(phase, s), &in);
    rreq->wait();
    accumulate(t.data() + rb, in.data(), re - rb);
    sreq->wait();
  }
  // Allgather phase: circulate the completed chunks.
  for (int s = 0; s < n - 1; ++s) {
    auto [sb, se] = chunk_of(me + 1 - s);
    tensor::Tensor out({se - sb});
    std::memcpy(out.data(), t.data() + sb,
                static_cast<size_t>(se - sb) * sizeof(float));
    Request sreq = comm.isend(next, coll_tag(phase, n + s), std::move(out));
    auto [rb, re] = chunk_of(me - s);
    tensor::Tensor in;
    Request rreq = comm.irecv(prev, coll_tag(phase, n + s), &in);
    rreq->wait();
    std::memcpy(t.data() + rb, in.data(),
                static_cast<size_t>(re - rb) * sizeof(float));
    sreq->wait();
  }
}

/// Recursive doubling: in round k, ranks whose indices differ in bit k
/// exchange full buffers and add. Requires power-of-two group size.
void allreduce_recursive_doubling(Communicator& comm, const Group& group,
                                  tensor::Tensor& t, int phase) {
  const int me = group.index_of(comm.rank());
  const int n = group.size();
  for (int mask = 1, round = 0; mask < n; mask <<= 1, ++round) {
    const int peer_idx = me ^ mask;
    const int peer = group.ranks[static_cast<size_t>(peer_idx)];
    tensor::Tensor copy = t;
    // Both sides post the send before the receive (the transport's sends are
    // non-blocking eager deposits, so mutual exchange cannot deadlock).
    Request sreq = comm.isend(peer, coll_tag(phase, round), std::move(copy));
    tensor::Tensor in;
    Request rreq = comm.irecv(peer, coll_tag(phase, round), &in);
    rreq->wait();
    // Fixed order: lower index first, so both peers compute the same sum.
    // Either way the result lands in t's own storage: callers pass
    // long-lived tensors (Param::grad), and adopting the received buffer
    // would alias them into the sender's pass arena.
    if (me < peer_idx) {
      t.add_(in);
    } else {
      in.add_(t);
      std::memcpy(t.data(), in.data(),
                  static_cast<size_t>(t.numel()) * sizeof(float));
    }
    sreq->wait();
  }
}

}  // namespace

std::pair<int64_t, int64_t> shard_bounds(int64_t numel, int n, int i) {
  if (n <= 0 || i < 0 || i >= n) {
    throw std::invalid_argument("shard_bounds: bad shard index");
  }
  const int64_t base = numel / n;
  const int64_t rem = numel % n;
  const int64_t begin = base * i + std::min<int64_t>(i, rem);
  const int64_t len = base + (i < rem ? 1 : 0);
  return {begin, begin + len};
}

void allreduce_sum(Communicator& comm, const Group& group, tensor::Tensor& t,
                   int phase, AllreduceAlgo algo) {
  const int me = require_member(group, comm, "allreduce_sum");
  const int n = group.size();
  if (n == 1) return;
  switch (algo) {
    case AllreduceAlgo::Ring:
      if (t.numel() >= n) {
        allreduce_ring(comm, group, t, phase);
        return;
      }
      break;  // degenerate payload: fall through to naive
    case AllreduceAlgo::RecursiveDoubling:
      if (std::has_single_bit(static_cast<unsigned>(n))) {
        allreduce_recursive_doubling(comm, group, t, phase);
        return;
      }
      if (t.numel() >= n) {
        allreduce_ring(comm, group, t, phase);
        return;
      }
      break;
    case AllreduceAlgo::Naive:
      break;
  }
  // Reduce to group rank 0 in fixed order, then broadcast. O(n) messages;
  // determinism (fixed summation order) is the priority, not bandwidth.
  if (me == 0) {
    for (int i = 1; i < n; ++i) {
      tensor::Tensor part =
          comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
      t.add_(part);
    }
  } else {
    comm.send(group.ranks[0], coll_tag(phase, me), t);
  }
  broadcast(comm, group, t, 0, phase + 1);
}

void reduce_sum(Communicator& comm, const Group& group, tensor::Tensor& t,
                int root_index, int phase) {
  const int me = require_member(group, comm, "reduce_sum");
  const int n = group.size();
  if (n == 1) return;
  if (me == root_index) {
    for (int i = 0; i < n; ++i) {
      if (i == root_index) continue;
      tensor::Tensor part =
          comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
      t.add_(part);
    }
  } else {
    comm.send(group.ranks[static_cast<size_t>(root_index)],
              coll_tag(phase, me), t);
  }
}

void broadcast(Communicator& comm, const Group& group, tensor::Tensor& t,
               int root_index, int phase) {
  const int me = require_member(group, comm, "broadcast");
  const int n = group.size();
  if (n == 1) return;
  if (me == root_index) {
    for (int i = 0; i < n; ++i) {
      if (i == root_index) continue;
      comm.send(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i), t);
    }
  } else {
    tensor::Tensor in = comm.recv(group.ranks[static_cast<size_t>(root_index)],
                                  coll_tag(phase, me));
    if (t.numel() == in.numel()) {
      // In place: callers pass long-lived tensors (Param::grad) and the
      // received buffer lives in the root's pass arena — adopting it would
      // dangle once the root's next iteration resets that arena.
      std::memcpy(t.data(), in.data(),
                  static_cast<size_t>(t.numel()) * sizeof(float));
    } else {
      t = std::move(in);  // caller passed an empty placeholder
    }
  }
}

tensor::Tensor allgather(Communicator& comm, const Group& group,
                         const tensor::Tensor& local, int phase) {
  const int me = require_member(group, comm, "allgather");
  const int n = group.size();
  tensor::Shape out_shape;
  out_shape.push_back(n);
  for (int64_t d = 0; d < local.dim(); ++d) out_shape.push_back(local.size(d));
  tensor::Tensor out(std::move(out_shape));
  const int64_t stride = local.numel();
  std::memcpy(out.data() + stride * me, local.data(),
              static_cast<size_t>(stride) * sizeof(float));
  if (n == 1) return out;
  // Everyone sends their slice to everyone else; eager sends first, then the
  // n−1 receives, so mutual exchange cannot deadlock.
  std::vector<Request> sends;
  sends.reserve(static_cast<size_t>(n) - 1);
  for (int i = 0; i < n; ++i) {
    if (i == me) continue;
    tensor::Tensor copy = local;
    sends.push_back(comm.isend(group.ranks[static_cast<size_t>(i)],
                               coll_tag(phase, me), std::move(copy)));
  }
  for (int i = 0; i < n; ++i) {
    if (i == me) continue;
    tensor::Tensor in =
        comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
    if (in.numel() != stride) {
      throw std::runtime_error("allgather: mismatched member sizes");
    }
    std::memcpy(out.data() + stride * i, in.data(),
                static_cast<size_t>(stride) * sizeof(float));
  }
  Communicator::wait_all(sends);
  return out;
}

tensor::Tensor reduce_scatter_sum(Communicator& comm, const Group& group,
                                  tensor::Tensor& t, int phase) {
  const int me = require_member(group, comm, "reduce_scatter_sum");
  const int n = group.size();
  const int64_t numel = t.numel();
  auto [mb, me_end] = shard_bounds(numel, n, me);
  if (n == 1) {
    tensor::Tensor shard({me_end - mb});
    std::memcpy(shard.data(), t.data() + mb,
                static_cast<size_t>(me_end - mb) * sizeof(float));
    return shard;
  }
  // Each rank sends the shard owned by peer i directly to i, then sums the
  // n−1 contributions it receives for its own shard. Summation is performed
  // strictly in group rank order (rank 0's contribution first), so the result
  // is bit-identical to the Naive allreduce — the property the ZeRO-1
  // equivalence tests rely on.
  std::vector<Request> sends;
  sends.reserve(static_cast<size_t>(n) - 1);
  for (int i = 0; i < n; ++i) {
    if (i == me) continue;
    auto [b, e] = shard_bounds(numel, n, i);
    tensor::Tensor piece({e - b});
    std::memcpy(piece.data(), t.data() + b,
                static_cast<size_t>(e - b) * sizeof(float));
    sends.push_back(comm.isend(group.ranks[static_cast<size_t>(i)],
                               coll_tag(phase, me), std::move(piece)));
  }
  tensor::Tensor shard;
  for (int i = 0; i < n; ++i) {
    tensor::Tensor contrib;
    if (i == me) {
      contrib = tensor::Tensor({me_end - mb});
      std::memcpy(contrib.data(), t.data() + mb,
                  static_cast<size_t>(me_end - mb) * sizeof(float));
    } else {
      contrib =
          comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
      if (contrib.numel() != me_end - mb) {
        throw std::runtime_error("reduce_scatter_sum: mismatched shard sizes");
      }
    }
    if (i == 0) {
      shard = std::move(contrib);
    } else {
      shard.add_(contrib);
    }
  }
  Communicator::wait_all(sends);
  return shard;
}

tensor::Tensor allgather_shards(Communicator& comm, const Group& group,
                                const tensor::Tensor& shard, int64_t total,
                                int phase) {
  const int me = require_member(group, comm, "allgather_shards");
  const int n = group.size();
  auto [mb, me_end] = shard_bounds(total, n, me);
  if (shard.numel() != me_end - mb) {
    throw std::invalid_argument("allgather_shards: shard has the wrong size");
  }
  tensor::Tensor out({total});
  std::memcpy(out.data() + mb, shard.data(),
              static_cast<size_t>(shard.numel()) * sizeof(float));
  if (n == 1) return out;
  std::vector<Request> sends;
  sends.reserve(static_cast<size_t>(n) - 1);
  for (int i = 0; i < n; ++i) {
    if (i == me) continue;
    tensor::Tensor copy = shard;
    sends.push_back(comm.isend(group.ranks[static_cast<size_t>(i)],
                               coll_tag(phase, me), std::move(copy)));
  }
  for (int i = 0; i < n; ++i) {
    if (i == me) continue;
    auto [b, e] = shard_bounds(total, n, i);
    tensor::Tensor in =
        comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
    if (in.numel() != e - b) {
      throw std::runtime_error("allgather_shards: mismatched shard sizes");
    }
    std::memcpy(out.data() + b, in.data(),
                static_cast<size_t>(e - b) * sizeof(float));
  }
  Communicator::wait_all(sends);
  return out;
}

std::vector<float> gather_scalar(Communicator& comm, const Group& group,
                                 float value, int phase) {
  const int me = require_member(group, comm, "gather_scalar");
  const int n = group.size();
  if (me == 0) {
    std::vector<float> out(static_cast<size_t>(n));
    out[0] = value;
    for (int i = 1; i < n; ++i) {
      tensor::Tensor t =
          comm.recv(group.ranks[static_cast<size_t>(i)], coll_tag(phase, i));
      out[static_cast<size_t>(i)] = t[0];
    }
    return out;
  }
  tensor::Tensor t({1});
  t[0] = value;
  comm.send(group.ranks[0], coll_tag(phase, me), std::move(t));
  return {};
}

float allreduce_scalar(Communicator& comm, const Group& group, float value,
                       int phase) {
  tensor::Tensor t({1});
  t[0] = value;
  allreduce_sum(comm, group, t, phase);
  return t[0];
}

}  // namespace hanayo::comm
