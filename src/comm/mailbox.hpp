#pragma once
// Point-to-point message transport between worker threads.
//
// This layer plays the role NCCL P2P plays in the paper: each rank owns a
// mailbox; sends deposit a (src, tag, payload) message into the destination
// mailbox; receives match on (src, tag). Matching follows MPI semantics:
// messages between the same (src, dst, tag) triple are delivered in send
// order; different tags are independent.
//
// Storage note: both the message queue and the posted-receive list are
// slot vectors rather than deques. Entries append at the tail; a match can
// vacate any slot (the hole is skipped by later scans); the head index
// walks past leading holes, and once it reaches the tail the vector is
// cleared with its capacity retained. After warm-up the same storage is
// reused forever, so steady-state traffic performs zero heap allocations —
// libstdc++'s deque, by contrast, allocates and frees a map node every few
// pushes no matter how steady the traffic is.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sync.hpp"
#include "tensor/tensor.hpp"

namespace hanayo::comm {

/// Tag namespace: callers encode (kind, micro-batch, stage) into a tag with
/// `make_tag`; the transport treats tags as opaque.
using Tag = int64_t;

struct Message {
  int src = -1;
  Tag tag = 0;
  tensor::Tensor payload;
};

/// Completion handle shared between the poster of an operation and the
/// transport. `wait()` blocks until the operation completed.
class RequestState {
 public:
  void complete();
  void wait();
  bool test();

  /// Re-arm a retired handle for reuse (see the request pool in
  /// communicator.cpp). Only valid once no waiter can still observe it.
  void reset();

 private:
  sync::Mutex<sync::Rank::CommRequest> mu_;
  sync::CondVar cv_;
  bool done_ = false;
};

using Request = std::shared_ptr<RequestState>;

/// One rank's inbox. Thread-safe.
class Mailbox {
 public:
  /// Deposit a message (called by the sender's thread).
  void put(Message msg);

  /// Blocking receive matching (src, tag).
  tensor::Tensor get(int src, Tag tag);

  /// Non-blocking receive: registers `out` + `req`; when a matching message
  /// arrives (or if one is already queued) the payload is moved into *out and
  /// req is completed.
  void get_async(int src, Tag tag, tensor::Tensor* out, Request req);

  /// Number of queued (unmatched) messages; for tests and diagnostics.
  size_t pending() const;

 private:
  struct PendingRecv {
    int src;
    Tag tag;
    tensor::Tensor* out;  // nullptr marks a vacated slot
    Request req;
  };

  // Advance the head indexes past vacated slots and release the vectors
  // back to empty (capacity kept) once fully drained. Callers hold mu_.
  void compact_queue();
  void compact_recvs();

  mutable sync::Mutex<sync::Rank::Mailbox> mu_;
  sync::CondVar cv_;
  std::vector<Message> queue_;  // src < 0 marks a vacated slot
  size_t queue_head_ = 0;
  size_t queue_live_ = 0;  // engaged entries (pending() in O(1))
  std::vector<PendingRecv> recvs_;
  size_t recvs_head_ = 0;
};

/// All mailboxes of a job plus shared counters. One `World` == one training
/// job spanning `nranks` worker threads.
class World {
 public:
  explicit World(int nranks);

  int size() const { return static_cast<int>(boxes_.size()); }
  Mailbox& box(int rank) { return *boxes_[static_cast<size_t>(rank)]; }

  /// Process-wide barrier across all ranks.
  void barrier();

 private:
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  sync::Mutex<sync::Rank::WorldBarrier> barrier_mu_;
  sync::CondVar barrier_cv_;
  int barrier_count_ = 0;
  uint64_t barrier_epoch_ = 0;
};

}  // namespace hanayo::comm
