#pragma once
// Point-to-point message transport between worker threads.
//
// This layer plays the role NCCL P2P plays in the paper: each rank owns a
// mailbox; sends deposit a (src, tag, payload) message into the destination
// mailbox; receives match on (src, tag). Matching follows MPI semantics:
// messages between the same (src, dst, tag) triple are delivered in send
// order; different tags are independent.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/sync.hpp"
#include "tensor/tensor.hpp"

namespace hanayo::comm {

/// Tag namespace: callers encode (kind, micro-batch, stage) into a tag with
/// `make_tag`; the transport treats tags as opaque.
using Tag = int64_t;

struct Message {
  int src = -1;
  Tag tag = 0;
  tensor::Tensor payload;
};

/// Completion handle shared between the poster of an operation and the
/// transport. `wait()` blocks until the operation completed.
class RequestState {
 public:
  void complete();
  void wait();
  bool test();

 private:
  sync::Mutex<sync::Rank::CommRequest> mu_;
  sync::CondVar cv_;
  bool done_ = false;
};

using Request = std::shared_ptr<RequestState>;

/// One rank's inbox. Thread-safe.
class Mailbox {
 public:
  /// Deposit a message (called by the sender's thread).
  void put(Message msg);

  /// Blocking receive matching (src, tag).
  tensor::Tensor get(int src, Tag tag);

  /// Non-blocking receive: registers `out` + `req`; when a matching message
  /// arrives (or if one is already queued) the payload is moved into *out and
  /// req is completed.
  void get_async(int src, Tag tag, tensor::Tensor* out, Request req);

  /// Number of queued (unmatched) messages; for tests and diagnostics.
  size_t pending() const;

 private:
  struct PendingRecv {
    int src;
    Tag tag;
    tensor::Tensor* out;
    Request req;
  };

  mutable sync::Mutex<sync::Rank::Mailbox> mu_;
  sync::CondVar cv_;
  std::deque<Message> queue_;
  std::deque<PendingRecv> recvs_;
};

/// All mailboxes of a job plus shared counters. One `World` == one training
/// job spanning `nranks` worker threads.
class World {
 public:
  explicit World(int nranks);

  int size() const { return static_cast<int>(boxes_.size()); }
  Mailbox& box(int rank) { return *boxes_[static_cast<size_t>(rank)]; }

  /// Process-wide barrier across all ranks.
  void barrier();

 private:
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  sync::Mutex<sync::Rank::WorldBarrier> barrier_mu_;
  sync::CondVar barrier_cv_;
  int barrier_count_ = 0;
  uint64_t barrier_epoch_ = 0;
};

}  // namespace hanayo::comm
