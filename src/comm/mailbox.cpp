#include "comm/mailbox.hpp"

#include <stdexcept>

namespace hanayo::comm {

void RequestState::complete() {
  {
    std::lock_guard lk(mu_);
    done_ = true;
  }
  cv_.notify_all();
}

void RequestState::wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return done_; });
}

bool RequestState::test() {
  std::lock_guard lk(mu_);
  return done_;
}

void RequestState::reset() {
  std::lock_guard lk(mu_);
  done_ = false;
}

void Mailbox::compact_queue() {
  while (queue_head_ < queue_.size() && queue_[queue_head_].src < 0) {
    ++queue_head_;
  }
  if (queue_head_ == queue_.size()) {
    queue_.clear();  // capacity retained; next push reuses the storage
    queue_head_ = 0;
  }
}

void Mailbox::compact_recvs() {
  while (recvs_head_ < recvs_.size() && recvs_[recvs_head_].out == nullptr) {
    ++recvs_head_;
  }
  if (recvs_head_ == recvs_.size()) {
    recvs_.clear();
    recvs_head_ = 0;
  }
}

void Mailbox::put(Message msg) {
  Request matched;
  {
    std::lock_guard lk(mu_);
    // Try to satisfy an already-posted irecv (FIFO across posts with the
    // same signature, per MPI ordering: scan oldest-first from the head).
    for (size_t i = recvs_head_; i < recvs_.size(); ++i) {
      PendingRecv& r = recvs_[i];
      if (r.out != nullptr && r.src == msg.src && r.tag == msg.tag) {
        *r.out = std::move(msg.payload);
        r.out = nullptr;  // vacate the slot
        matched = std::move(r.req);
        compact_recvs();
        break;
      }
    }
    if (!matched) {
      queue_.push_back(std::move(msg));
      ++queue_live_;
    }
  }
  if (matched) {
    matched->complete();
  } else {
    cv_.notify_all();
  }
}

tensor::Tensor Mailbox::get(int src, Tag tag) {
  std::unique_lock lk(mu_);
  for (;;) {
    for (size_t i = queue_head_; i < queue_.size(); ++i) {
      Message& m = queue_[i];
      if (m.src >= 0 && m.src == src && m.tag == tag) {
        tensor::Tensor payload = std::move(m.payload);
        m.src = -1;  // vacate the slot
        --queue_live_;
        compact_queue();
        return payload;
      }
    }
    cv_.wait(lk);
  }
}

void Mailbox::get_async(int src, Tag tag, tensor::Tensor* out, Request req) {
  bool matched = false;
  {
    std::lock_guard lk(mu_);
    for (size_t i = queue_head_; i < queue_.size(); ++i) {
      Message& m = queue_[i];
      if (m.src >= 0 && m.src == src && m.tag == tag) {
        *out = std::move(m.payload);
        m.src = -1;
        --queue_live_;
        compact_queue();
        matched = true;
        break;
      }
    }
    if (!matched) {
      recvs_.push_back(PendingRecv{src, tag, out, std::move(req)});
    }
  }
  if (matched) req->complete();
}

size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_live_;
}

World::World(int nranks) {
  if (nranks <= 0) throw std::invalid_argument("World: nranks must be positive");
  boxes_.reserve(static_cast<size_t>(nranks));
  for (int i = 0; i < nranks; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void World::barrier() {
  std::unique_lock lk(barrier_mu_);
  const uint64_t epoch = barrier_epoch_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_epoch_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lk, [&] { return barrier_epoch_ != epoch; });
  }
}

}  // namespace hanayo::comm
