#include "comm/mailbox.hpp"

#include <stdexcept>

namespace hanayo::comm {

void RequestState::complete() {
  {
    std::lock_guard lk(mu_);
    done_ = true;
  }
  cv_.notify_all();
}

void RequestState::wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return done_; });
}

bool RequestState::test() {
  std::lock_guard lk(mu_);
  return done_;
}

void Mailbox::put(Message msg) {
  PendingRecv matched{};
  bool have_match = false;
  {
    std::lock_guard lk(mu_);
    // Try to satisfy an already-posted irecv (FIFO across posts with the
    // same signature, per MPI ordering).
    for (auto it = recvs_.begin(); it != recvs_.end(); ++it) {
      if (it->src == msg.src && it->tag == msg.tag) {
        matched = std::move(*it);
        recvs_.erase(it);
        have_match = true;
        break;
      }
    }
    if (!have_match) {
      queue_.push_back(std::move(msg));
    } else {
      *matched.out = std::move(msg.payload);
    }
  }
  if (have_match) {
    matched.req->complete();
  } else {
    cv_.notify_all();
  }
}

tensor::Tensor Mailbox::get(int src, Tag tag) {
  std::unique_lock lk(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        tensor::Tensor payload = std::move(it->payload);
        queue_.erase(it);
        return payload;
      }
    }
    cv_.wait(lk);
  }
}

void Mailbox::get_async(int src, Tag tag, tensor::Tensor* out, Request req) {
  bool matched = false;
  {
    std::lock_guard lk(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        *out = std::move(it->payload);
        queue_.erase(it);
        matched = true;
        break;
      }
    }
    if (!matched) recvs_.push_back(PendingRecv{src, tag, out, std::move(req)});
  }
  if (matched) req->complete();
}

size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

World::World(int nranks) {
  if (nranks <= 0) throw std::invalid_argument("World: nranks must be positive");
  boxes_.reserve(static_cast<size_t>(nranks));
  for (int i = 0; i < nranks; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void World::barrier() {
  std::unique_lock lk(barrier_mu_);
  const uint64_t epoch = barrier_epoch_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_epoch_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lk, [&] { return barrier_epoch_ != epoch; });
  }
}

}  // namespace hanayo::comm
