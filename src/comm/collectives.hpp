#pragma once
// Collective operations built on the P2P transport.
//
// Used by the runtime for the data-parallel gradient synchronisation that
// the paper performs at every flush ("the replicas employed by Chimera can
// now be considered as standard data parallelism", §3.2), for scattering
// the loss back to rank 0, and by the ZeRO-1 optimizer-state sharding
// extension (related work §6: "These techniques are independent of pipeline
// parallelism and can be combined").
//
// Three allreduce algorithms are provided, mirroring the choices a real
// NCCL/MPI deployment makes:
//   * Naive              — reduce-to-root then broadcast. O(n) messages from
//                          one hot rank; summation order is fixed (group rank
//                          order) so results are bit-reproducible. Default.
//   * Ring               — bandwidth-optimal reduce-scatter + allgather ring,
//                          2(n−1) steps of numel/n elements each.
//   * RecursiveDoubling  — log2(n) rounds of pairwise exchange; falls back to
//                          Ring for non-power-of-two groups.
// All algorithms produce identical sums up to floating-point reassociation;
// the tests pin the exact tolerance.

#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace hanayo::comm {

/// A static subgroup of ranks (e.g. the D replicas holding the same model
/// chunk). All members must call the collective with the same `group`.
struct Group {
  std::vector<int> ranks;

  /// Index of `rank` within the group; -1 if absent.
  int index_of(int rank) const;
  int size() const { return static_cast<int>(ranks.size()); }
};

enum class AllreduceAlgo { Naive, Ring, RecursiveDoubling };

/// Sum-allreduce of `t` in place across `group`. The default Naive algorithm
/// uses a deterministic reduction order (rank order within the group) so
/// data-parallel runs are exactly reproducible. `phase` disambiguates
/// concurrent collectives on one group.
void allreduce_sum(Communicator& comm, const Group& group, tensor::Tensor& t,
                   int phase, AllreduceAlgo algo = AllreduceAlgo::Naive);

/// Sum-reduce of `t` into the copy held by group.ranks[root_index]; other
/// ranks' tensors are left untouched. Deterministic summation order.
void reduce_sum(Communicator& comm, const Group& group, tensor::Tensor& t,
                int root_index, int phase);

/// Broadcast from group.ranks[root_index] to all members, in place.
void broadcast(Communicator& comm, const Group& group, tensor::Tensor& t,
               int root_index, int phase);

/// Gathers each member's (identically-shaped) tensor; returns the
/// concatenation along a new leading axis, in group rank order, on every
/// member ([n, ...local shape]).
tensor::Tensor allgather(Communicator& comm, const Group& group,
                         const tensor::Tensor& local, int phase);

/// Reduce-scatter: sums `t` across the group and returns this rank's
/// contiguous shard of the flattened sum (shard boundaries from
/// `shard_bounds`). `t` is consumed as scratch (contents unspecified after).
tensor::Tensor reduce_scatter_sum(Communicator& comm, const Group& group,
                                  tensor::Tensor& t, int phase);

/// Inverse of `reduce_scatter_sum`: every member contributes its shard and
/// receives the full flat tensor of `total` elements, shards placed at the
/// positions `shard_bounds` assigns.
tensor::Tensor allgather_shards(Communicator& comm, const Group& group,
                                const tensor::Tensor& shard, int64_t total,
                                int phase);

/// Gathers one float from each member to group.ranks[0]; returns the values
/// (in group rank order) on the root and an empty vector elsewhere.
std::vector<float> gather_scalar(Communicator& comm, const Group& group,
                                 float value, int phase);

/// Sum-allreduce of one scalar across the group; returns the sum on every
/// member. Used for global gradient-norm clipping.
float allreduce_scalar(Communicator& comm, const Group& group, float value,
                       int phase);

/// The contiguous [begin, end) range of flat indices that member `i` of an
/// `n`-way sharding owns, for a tensor of `numel` elements. The remainder
/// (numel % n) is distributed one element each to the first ranks, so shard
/// sizes differ by at most one.
std::pair<int64_t, int64_t> shard_bounds(int64_t numel, int n, int i);

}  // namespace hanayo::comm
