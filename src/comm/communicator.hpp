#pragma once
// Rank-facing communication API, mirroring the subset of
// torch.distributed / NCCL that the paper's runtime uses:
//   isend / irecv / wait  +  batch_isend_irecv  (paper §4.2).
//
// `batch_isend_irecv` exists for the same reason as in NCCL: when two ranks
// simultaneously send to each other (which happens at every wave turn of the
// Hanayo schedule), posting the sends/recvs as one batch avoids the
// head-of-line deadlock a naive blocking order would create.

#include <cstdint>
#include <span>
#include <vector>

#include "comm/mailbox.hpp"

namespace hanayo::comm {

/// What a tagged message carries; combined with (micro-batch, stage) this
/// uniquely names every transfer of one iteration.
enum class Kind : int { Activation = 0, Gradient = 1, Control = 2, Collective = 3 };

/// Packs (kind, micro-batch, stage, phase) into a transport tag.
Tag make_tag(Kind kind, int micro_batch, int stage, int phase = 0);

/// One entry of a batch_isend_irecv call.
struct P2POp {
  enum class Dir { Send, Recv } dir;
  int peer = -1;
  Tag tag = 0;
  /// For Send: payload to transmit (moved from). For Recv: destination slot.
  tensor::Tensor* buffer = nullptr;
};

class Communicator {
 public:
  Communicator(World* world, int rank);

  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  /// Asynchronous send. The payload is moved out immediately, so the caller
  /// may reuse/destroy `t` after the call returns (eager-buffer semantics).
  Request isend(int dst, Tag tag, tensor::Tensor t);

  /// Asynchronous receive into *out; completes when a matching message
  /// arrives.
  Request irecv(int src, Tag tag, tensor::Tensor* out);

  /// Blocking convenience wrappers.
  void send(int dst, Tag tag, tensor::Tensor t);
  tensor::Tensor recv(int src, Tag tag);

  /// Posts all operations before waiting on any, which is what makes
  /// mutual exchanges deadlock-free. Returns one request per op.
  std::vector<Request> batch_isend_irecv(std::span<P2POp> ops);

  static void wait_all(std::span<const Request> reqs);

  void barrier() { world_->barrier(); }

  /// Counters for tests / benchmarks.
  int64_t messages_sent() const { return messages_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

 private:
  World* world_;
  int rank_;
  int64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
};

}  // namespace hanayo::comm
