#pragma once
// Half-precision pipeline transfers.
//
// Mixed-precision training (paper related work §6) transmits activations
// and gradients between stages as fp16, halving the P2P volume — the T_C
// term in the paper's bubble model. The transport moves float tensors, so
// this module packs two binary16 values per float slot:
//
//   [ d, s_0 .. s_{d-1}, packed half words ... ]
//
// where d is the rank and s_i the extents (both stored exactly — small
// integers are representable in float). `pack_fp16`/`unpack_fp16` are
// inverses up to fp16 rounding of the payload; `isend_fp16`/`recv_fp16`
// wrap the communicator. The packed tensor's bytes() is ~half the
// original's, so the existing byte counters and the simulator's cost model
// see the reduced volume.

#include "comm/communicator.hpp"
#include "tensor/half.hpp"

namespace hanayo::comm {

/// Encodes `t` as an fp16-packed float tensor (see header layout above).
tensor::Tensor pack_fp16(const tensor::Tensor& t);

/// Decodes a tensor produced by `pack_fp16`; throws std::invalid_argument
/// on a malformed header.
tensor::Tensor unpack_fp16(const tensor::Tensor& packed);

/// Sends `t` fp16-packed (asynchronously, like Communicator::isend).
Request isend_fp16(Communicator& comm, int dst, Tag tag, const tensor::Tensor& t);

/// Receives and decodes an fp16-packed tensor (blocking).
tensor::Tensor recv_fp16(Communicator& comm, int src, Tag tag);

}  // namespace hanayo::comm
