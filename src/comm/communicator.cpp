#include "comm/communicator.hpp"

#include <cassert>
#include <cstddef>
#include <stdexcept>

#include "core/sync.hpp"

namespace hanayo::comm {

namespace {

// Recycling fixed-block pool behind irecv request handles. Every request
// built by make_request() below carries one shared_ptr control block of a
// single size, so a free-list of raw blocks is enough: steady-state serving
// posts and retires one request per hop per pass, and after warm-up every
// one of those is a free-list pop/push with no heap traffic. Rank::CommPool is a true leaf — the lock guards only
// the free-list vector, and the pool is hit before the mailbox lock is
// taken (allocation at post time) and after every lock is released
// (the last shared_ptr copy dies outside the transport's critical
// sections).
class RequestPool {
 public:
  void* alloc(size_t n) {
    {
      std::lock_guard lk(mu_);
      if (block_size_ == 0) {
        block_size_ = n;
        free_.reserve(kCapacity);
      }
      assert(n == block_size_ && "RequestPool: mixed block sizes");
      if (!free_.empty()) {
        void* p = free_.back();
        free_.pop_back();
        return p;
      }
    }
    return ::operator new(n);
  }

  void dealloc(void* p, size_t n) {
    (void)n;
    {
      std::lock_guard lk(mu_);
      if (free_.size() < kCapacity) {
        free_.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

 private:
  static constexpr size_t kCapacity = 256;  // >> max in-flight requests
  sync::Mutex<sync::Rank::CommPool> mu_;
  std::vector<void*> free_;
  size_t block_size_ = 0;
};

RequestPool& request_pool() {
  // Leaked singleton: requests may outlive any particular World, and a
  // static local that never runs a destructor sidesteps shutdown-order
  // races with threads still retiring handles at exit.
  static RequestPool* pool = new RequestPool;
  return *pool;
}

template <class T>
struct PoolAlloc {
  using value_type = T;
  PoolAlloc() = default;
  template <class U>
  PoolAlloc(const PoolAlloc<U>&) {}  // NOLINT(google-explicit-constructor)
  T* allocate(size_t n) {
    return static_cast<T*>(request_pool().alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { request_pool().dealloc(p, n * sizeof(T)); }
  template <class U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const PoolAlloc<U>&) const {
    return false;
  }
};

// Recycling pool of *constructed* RequestState objects. Pooling raw memory
// is not enough: RequestState owns a CondVar, and libstdc++'s
// condition_variable_any allocates an internal shared_ptr<mutex> in its
// constructor — so every placement-new of a fresh RequestState would still
// hit the heap even on recycled storage. Keeping the objects alive and
// re-arming them with reset() makes that inner allocation a one-time,
// warm-up-only cost.
class StatePool {
 public:
  RequestState* get() {
    {
      std::lock_guard lk(mu_);
      if (!free_.empty()) {
        RequestState* p = free_.back();
        free_.pop_back();
        return p;
      }
    }
    return new RequestState;
  }

  void put(RequestState* p) {
    p->reset();
    {
      std::lock_guard lk(mu_);
      if (free_.size() < kCapacity) {
        if (free_.capacity() == 0) free_.reserve(kCapacity);
        free_.push_back(p);
        return;
      }
    }
    delete p;
  }

 private:
  static constexpr size_t kCapacity = 256;  // >> max in-flight requests
  sync::Mutex<sync::Rank::CommPool> mu_;
  std::vector<RequestState*> free_;
};

StatePool& state_pool() {
  static StatePool* pool = new StatePool;  // leaked: see request_pool()
  return *pool;
}

struct StateRecycler {
  void operator()(RequestState* p) const { state_pool().put(p); }
};

// Pooled handle factory: the RequestState comes from the object pool above
// and goes back to it when the last owner drops the handle; the shared_ptr
// control block comes from the raw-block pool. After warm-up an
// irecv/retire cycle touches only the two free lists, never the heap.
Request make_request() {
  return Request(state_pool().get(), StateRecycler{},
                 PoolAlloc<RequestState>{});
}

// The in-process transport buffers eagerly, so every send is complete the
// moment it is posted. All of them can therefore share one immortal
// pre-completed handle: RequestState is immutable once done_ is set, and
// copying a shared_ptr is a refcount bump, not an allocation.
Request completed_request() {
  static const Request done = [] {
    Request r = make_request();
    r->complete();
    return r;
  }();
  return done;
}

}  // namespace

Tag make_tag(Kind kind, int micro_batch, int stage, int phase) {
  // Layout: [phase:16][stage:20][micro_batch:20][kind:4]
  return (static_cast<Tag>(phase) << 44) | (static_cast<Tag>(stage) << 24) |
         (static_cast<Tag>(micro_batch) << 4) | static_cast<Tag>(kind);
}

Communicator::Communicator(World* world, int rank) : world_(world), rank_(rank) {
  if (rank < 0 || rank >= world->size()) {
    throw std::invalid_argument("Communicator: rank out of range");
  }
}

Request Communicator::isend(int dst, Tag tag, tensor::Tensor t) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("isend: bad dst");
  ++messages_sent_;
  bytes_sent_ += t.bytes();
  world_->box(dst).put(Message{rank_, tag, std::move(t)});
  // Same observable semantics as an NCCL send that landed in the
  // destination's staging buffer: completed at post time.
  return completed_request();
}

Request Communicator::irecv(int src, Tag tag, tensor::Tensor* out) {
  if (src < 0 || src >= size()) throw std::invalid_argument("irecv: bad src");
  Request req = make_request();
  world_->box(rank_).get_async(src, tag, out, req);
  return req;
}

void Communicator::send(int dst, Tag tag, tensor::Tensor t) {
  isend(dst, tag, std::move(t))->wait();
}

tensor::Tensor Communicator::recv(int src, Tag tag) {
  return world_->box(rank_).get(src, tag);
}

std::vector<Request> Communicator::batch_isend_irecv(std::span<P2POp> ops) {
  std::vector<Request> reqs;
  reqs.reserve(ops.size());
  // Post every receive first, then every send: within one batch this
  // guarantees that mutual exchanges cannot block each other regardless of
  // the order the peers call into the transport.
  for (P2POp& op : ops) {
    if (op.dir == P2POp::Dir::Recv) {
      reqs.push_back(irecv(op.peer, op.tag, op.buffer));
    }
  }
  for (P2POp& op : ops) {
    if (op.dir == P2POp::Dir::Send) {
      reqs.push_back(isend(op.peer, op.tag, std::move(*op.buffer)));
    }
  }
  return reqs;
}

void Communicator::wait_all(std::span<const Request> reqs) {
  for (const Request& r : reqs) r->wait();
}

}  // namespace hanayo::comm
