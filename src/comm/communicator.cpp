#include "comm/communicator.hpp"

#include <stdexcept>

namespace hanayo::comm {

Tag make_tag(Kind kind, int micro_batch, int stage, int phase) {
  // Layout: [phase:16][stage:20][micro_batch:20][kind:4]
  return (static_cast<Tag>(phase) << 44) | (static_cast<Tag>(stage) << 24) |
         (static_cast<Tag>(micro_batch) << 4) | static_cast<Tag>(kind);
}

Communicator::Communicator(World* world, int rank) : world_(world), rank_(rank) {
  if (rank < 0 || rank >= world->size()) {
    throw std::invalid_argument("Communicator: rank out of range");
  }
}

Request Communicator::isend(int dst, Tag tag, tensor::Tensor t) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("isend: bad dst");
  ++messages_sent_;
  bytes_sent_ += t.bytes();
  world_->box(dst).put(Message{rank_, tag, std::move(t)});
  // The in-process transport buffers eagerly, so a send completes at post
  // time (same observable semantics as an NCCL send that landed in the
  // destination's staging buffer).
  auto req = std::make_shared<RequestState>();
  req->complete();
  return req;
}

Request Communicator::irecv(int src, Tag tag, tensor::Tensor* out) {
  if (src < 0 || src >= size()) throw std::invalid_argument("irecv: bad src");
  auto req = std::make_shared<RequestState>();
  world_->box(rank_).get_async(src, tag, out, req);
  return req;
}

void Communicator::send(int dst, Tag tag, tensor::Tensor t) {
  isend(dst, tag, std::move(t))->wait();
}

tensor::Tensor Communicator::recv(int src, Tag tag) {
  return world_->box(rank_).get(src, tag);
}

std::vector<Request> Communicator::batch_isend_irecv(std::span<P2POp> ops) {
  std::vector<Request> reqs;
  reqs.reserve(ops.size());
  // Post every receive first, then every send: within one batch this
  // guarantees that mutual exchanges cannot block each other regardless of
  // the order the peers call into the transport.
  for (P2POp& op : ops) {
    if (op.dir == P2POp::Dir::Recv) {
      reqs.push_back(irecv(op.peer, op.tag, op.buffer));
    }
  }
  for (P2POp& op : ops) {
    if (op.dir == P2POp::Dir::Send) {
      reqs.push_back(isend(op.peer, op.tag, std::move(*op.buffer)));
    }
  }
  return reqs;
}

void Communicator::wait_all(std::span<const Request> reqs) {
  for (const Request& r : reqs) r->wait();
}

}  // namespace hanayo::comm
