#include "comm/fp16.hpp"

#include <bit>
#include <stdexcept>

namespace hanayo::comm {

using tensor::Tensor;

Tensor pack_fp16(const Tensor& t) {
  const int64_t d = t.dim();
  const int64_t n = t.numel();
  if (n == 0) throw std::invalid_argument("pack_fp16: empty tensor");
  const int64_t header = 1 + d;
  const int64_t words = (n + 1) / 2;  // two halves per float slot
  Tensor out({header + words});
  out[0] = static_cast<float>(d);
  for (int64_t i = 0; i < d; ++i) out[1 + i] = static_cast<float>(t.size(i));
  for (int64_t i = 0; i < words; ++i) {
    const uint32_t lo = tensor::float_to_half(t[2 * i]);
    const uint32_t hi =
        (2 * i + 1 < n) ? tensor::float_to_half(t[2 * i + 1]) : 0u;
    out[header + i] = std::bit_cast<float>(lo | (hi << 16));
  }
  return out;
}

Tensor unpack_fp16(const Tensor& packed) {
  if (packed.numel() < 1) {
    throw std::invalid_argument("unpack_fp16: empty payload");
  }
  const int64_t d = static_cast<int64_t>(packed[0]);
  if (d < 0 || d > 8 || packed.numel() < 1 + d) {
    throw std::invalid_argument("unpack_fp16: malformed header");
  }
  tensor::Shape shape;
  int64_t n = 1;
  for (int64_t i = 0; i < d; ++i) {
    const int64_t s = static_cast<int64_t>(packed[1 + i]);
    if (s < 0) throw std::invalid_argument("unpack_fp16: negative extent");
    shape.push_back(s);
    n *= s;
  }
  const int64_t header = 1 + d;
  const int64_t words = (n + 1) / 2;
  if (packed.numel() != header + words) {
    throw std::invalid_argument("unpack_fp16: payload size mismatch");
  }
  Tensor out(std::move(shape));
  for (int64_t i = 0; i < words; ++i) {
    const uint32_t w = std::bit_cast<uint32_t>(packed[header + i]);
    out[2 * i] = tensor::half_to_float(static_cast<uint16_t>(w & 0xFFFFu));
    if (2 * i + 1 < n) {
      out[2 * i + 1] = tensor::half_to_float(static_cast<uint16_t>(w >> 16));
    }
  }
  return out;
}

Request isend_fp16(Communicator& comm, int dst, Tag tag, const Tensor& t) {
  return comm.isend(dst, tag, pack_fp16(t));
}

Tensor recv_fp16(Communicator& comm, int src, Tag tag) {
  return unpack_fp16(comm.recv(src, tag));
}

}  // namespace hanayo::comm
