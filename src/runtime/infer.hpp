#pragma once
// Forward-only pipeline serving runtime.
//
// The training runtime interprets a wave schedule's F/B program; serving is
// the same machinery with the backward half removed and a feedback edge
// added: the last stage's selected token re-enters stage 0 as the next
// decode step's input. The engine keeps a FIFO request queue and batches
// admitted sequences up to `max_batch` concurrent decode streams —
// continuous batching at pass granularity: whenever a sequence completes
// (its continuation cap, or a stop token), the freed KV slot is handed to
// the next queued request at the following pass boundary, and that
// request's prefill micro-batch rides through the pipeline alongside the
// ongoing sequences' decode micro-batches.
//
// Token selection is a policy (`Sampling`): greedy argmax, or seeded
// top-k / temperature sampling driven by a per-request RNG stream split
// from (InferConfig::seed, request id) — so stochastic decodes are
// bit-identical across the Threads and Reference engines, across runs, and
// across data-parallel replica assignment.
//
// `dp > 1` scales out with `InferenceServer`: dp independent
// InferencePipeline replicas (each its own comm::World of P workers)
// drain one shared mutex-guarded RequestQueue, and per-replica ServeStats
// merge into cluster totals.

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "model/transformer.hpp"
#include "runtime/worker.hpp"
#include "schedule/algorithms.hpp"
#include "tensor/arena.hpp"
#include "tensor/rng.hpp"

namespace hanayo::runtime {

/// Monotonic seconds since a process-wide epoch (first call). Every serving
/// timestamp — enqueue, admission, first token, finish, deadlines — is a
/// double on this one clock, so durations computed across threads and
/// replicas are consistent.
double serve_clock_s();

/// Nearest-rank (ceil) quantile of `samples` (copied and sorted here);
/// 0 when empty. The same indexing rule as the planner's p99 passes: for
/// n <= 100 samples the p99 is the largest one, so an SLA bound checked
/// against it errs on the safe side.
double quantile_nearest_rank(std::vector<double> samples, double q);

/// Token-selection policy for serving. The factories mirror the historical
/// enum spelling: `Sampling::Greedy()` is the deterministic argmax the
/// cross-backend token-identity guarantee was first stated for; TopK, TopP
/// (nucleus) and Temperature are the stochastic policies, driven by one
/// uniform draw per generated token from the request's seeded RNG stream —
/// which is what keeps them equally testable.
struct Sampling {
  enum class Kind { Greedy, TopK, TopP, Temperature };
  Kind kind = Kind::Greedy;
  int k = 0;                 ///< TopK: candidate-pool size (>= 1)
  float p = 1.0f;            ///< TopP: nucleus probability mass (0 < p <= 1)
  float temperature = 1.0f;  ///< softmax temperature (> 0)

  static Sampling Greedy() { return {}; }
  static Sampling TopK(int k, float temperature = 1.0f) {
    Sampling s;
    s.kind = Kind::TopK;
    s.k = k;
    s.temperature = temperature;
    return s;
  }
  /// Nucleus sampling (Holtzman et al.): the candidate pool is the smallest
  /// probability-ranked prefix of the vocabulary whose softmax mass reaches
  /// `p`; the draw inverts the renormalised CDF of that pool.
  static Sampling TopP(float p, float temperature = 1.0f) {
    Sampling s;
    s.kind = Kind::TopP;
    s.p = p;
    s.temperature = temperature;
    return s;
  }
  static Sampling Temperature(float t) {
    Sampling s;
    s.kind = Kind::Temperature;
    s.temperature = t;
    return s;
  }

  /// True when decoding consumes RNG draws (anything but greedy).
  bool stochastic() const { return kind != Kind::Greedy; }

  /// Throws std::invalid_argument on unusable parameters (TopK k < 1,
  /// TopP p outside (0, 1], temperature <= 0).
  void validate() const;
};

/// One streamed token: fired at the pass boundary that selected it, before
/// the next pass starts — token-at-a-time streaming completions.
struct TokenEvent {
  int64_t request_id = -1;
  int64_t token = -1;
  int index = 0;      ///< 0-based position within the continuation
  bool last = false;  ///< this token completes the request (stop/cap)
};

/// Per-request streaming callback. Events of one request arrive in
/// generation order from the replica serving it; with dp > 1, callbacks of
/// different requests may run concurrently (one per replica thread).
using TokenCallback = std::function<void(const TokenEvent&)>;

/// One queued generation request. `prompt` is a [t] or [1, t] tensor of
/// token ids.
struct InferRequest {
  int64_t id = -1;
  tensor::Tensor prompt;
  int max_new_tokens = 0;
  TokenCallback on_token;   ///< optional streaming callback
  double enqueue_s = 0.0;   ///< serve_clock_s() at enqueue
  /// Absolute serve_clock_s() deadline; 0 = none. Checked on admission and
  /// at every pass boundary: an expired sequence is aborted mid-decode, its
  /// KV slot freed immediately, and its Completion stamped
  /// StopReason::DeadlineExceeded within one pass of the deadline.
  double deadline_s = 0.0;
};

/// Why a sequence stopped generating.
enum class StopReason {
  MaxTokens,         ///< hit its continuation cap
  StopToken,         ///< emitted one of the configured stop tokens
  DeadlineExceeded,  ///< missed its deadline (queued or mid-decode)
  Cancelled,         ///< client-side cancel() before completion
  Rejected,          ///< bounded queue refused admission (backpressure)
};

/// One finished request: the decoded continuation, in generation order
/// (tokens of one sequence are never reordered). A stop token, when one
/// ends the sequence, is the last entry of `tokens`. Aborted requests
/// (deadline / cancel / reject) carry whatever tokens were generated
/// before the abort — possibly none.
///
/// Timestamps are serve_clock_s() values; `admit_s` and `first_token_s`
/// are -1 when the request was never admitted / never produced a token.
struct Completion {
  int64_t id = -1;
  int64_t prompt_tokens = 0;
  std::vector<int64_t> tokens;
  StopReason stop_reason = StopReason::MaxTokens;
  double enqueue_s = 0.0;
  double admit_s = -1.0;
  double first_token_s = -1.0;
  double finish_s = 0.0;

  /// Time to first token (enqueue -> first token); -1 when none emitted.
  double ttft_s() const {
    return first_token_s < 0 ? -1.0 : first_token_s - enqueue_s;
  }
  /// Mean inter-token latency after the first token; -1 below 2 tokens.
  double per_token_s() const {
    return tokens.size() < 2 || first_token_s < 0
               ? -1.0
               : (finish_s - first_token_s) /
                     static_cast<double>(tokens.size() - 1);
  }
  /// True for the normal terminal states (cap or stop token).
  bool served() const {
    return stop_reason == StopReason::MaxTokens ||
           stop_reason == StopReason::StopToken;
  }
};

/// Admission policy of a bounded RequestQueue (backpressure).
enum class QueuePolicy {
  Unbounded,   ///< classic behaviour: every enqueue is eventually served
  RejectNew,   ///< queue full -> the new request is refused (Rejected)
  ShedOldest,  ///< queue full -> the oldest queued request is evicted
};

/// Deterministic fault injection, a test hook for graceful-degradation
/// proofs: all faults derive from one seed (split per replica), so a
/// failing run replays exactly. `seed == 0` disables everything;
/// `from_env()` reads HANAYO_FAULT_SEED so stress binaries can be
/// fault-injected without a rebuild. Faults only ever add latency —
/// correctness invariants (conservation, token identity, slot-leak
/// freedom) must hold under any injection.
struct FaultInjection {
  uint64_t seed = 0;            ///< 0 = off
  double slow_pass_prob = 0.0;  ///< per-pass chance of an injected stall
  int slow_pass_us = 0;         ///< stall length for a slow pass
  int stuck_replica = -1;       ///< replica index to wedge (-1 = none)
  int stuck_passes = 0;         ///< number of initial passes it stays wedged
  int stuck_us = 0;             ///< stall length per wedged pass

  bool enabled() const { return seed != 0; }
  /// HANAYO_FAULT_SEED=<n> -> {seed=n, slow_pass_prob=0.25,
  /// slow_pass_us=200}; unset/0 -> disabled.
  static FaultInjection from_env();
};

struct InferConfig {
  model::ModelConfig model;
  /// algo, P, waves/vchunks and the tf/tb ordering costs. `B` is ignored:
  /// the engine compiles one forward-only schedule per concurrent-sequence
  /// count as the batch composition changes.
  schedule::ScheduleRequest sched;
  int dp = 1;              ///< data-parallel pipeline replicas (InferenceServer)
  int max_batch = 4;       ///< concurrent decode streams (KV-cache slots)
  int max_new_tokens = 16; ///< default continuation cap per request
  Sampling sampling;       ///< token-selection policy (default greedy)
  /// Emitting any of these ids ends the sequence early (the id itself is
  /// recorded); its KV slot frees at the next pass boundary.
  std::vector<int64_t> stop_tokens;
  /// Store cached K/V panels as fp16 words (converted back for the
  /// attention kernels): halves every slot's resident bytes; decode logits
  /// move within fp16 rounding of the fp32-cache run.
  bool kv_fp16 = false;
  /// Paged KV storage (runtime/kv_store.hpp): per-stream K/V rows live in
  /// fixed-size pooled pages instead of contiguous worst-case slots, so
  /// admission is priced in pages actually needed and requests sharing a
  /// prompt prefix share immutable pages (skipping the shared prefill).
  /// Decode stays bitwise identical to the contiguous path.
  bool paged_kv = false;
  int kv_page_tokens = 16;  ///< token rows per page (per attention layer)
  /// Total pages in the per-replica pool. 0 derives
  /// max_batch * ceil((seq)/page_tokens) * lanes — contiguous-equivalent
  /// capacity, so paging never admits less than the slot design did.
  int64_t kv_pool_pages = 0;
  /// Cross-request prefix caching (radix tree + copy-on-write). Off keeps
  /// paging but makes every stream's pages private.
  bool prefix_cache = true;
  uint64_t seed = 1;
  int prefetch_depth = 2;
  /// Default per-request SLA, seconds from enqueue; 0 = no deadline.
  /// enqueue()'s per-request deadline overrides it.
  double deadline_s = 0.0;
  /// Admission control: with a bounded policy, at most `max_queue` requests
  /// wait (excess handled per the policy and stamped Rejected).
  QueuePolicy queue_policy = QueuePolicy::Unbounded;
  /// Queue capacity for the bounded policies; 0 derives `dp * max_batch` —
  /// the queue never holds more work than one full turnover of the
  /// cluster's KV slots (the `slot_bytes` budget), so admitted-but-waiting
  /// work is bounded by the same memory model the planner prices.
  int max_queue = 0;
  FaultInjection fault;  ///< deterministic fault injection (tests/benches)
  /// Pass-arena reserve per pipeline worker, MiB. Every pass-lifetime
  /// tensor (activations, logits, kernel scratch, the pass plan's inputs)
  /// comes from a per-worker bump arena that resets at the pass boundary;
  /// this knob pre-sizes it so even warm-up never grows a slab. 0 derives
  /// an estimate from the model/schedule shapes (the arena still grows
  /// geometrically on demand if the estimate falls short — sizing is a
  /// performance hint, never a correctness limit).
  int arena_reserve_mb = 0;
};

/// The derived bounded-queue capacity (see InferConfig::max_queue). With
/// paging on, the per-replica stream count derives from pool capacity
/// (worst-case full-context streams the pool can hold, capped by
/// max_batch) instead of assuming max_batch worst-case slots.
int derived_queue_cap(const InferConfig& cfg);

/// Attention lanes the model registers with a paged store: one per
/// Block/AttnHalf layer desc.
int kv_lanes(const model::ModelConfig& model);

/// The derived per-replica pool size (see InferConfig::kv_pool_pages).
int64_t derived_pool_pages(const InferConfig& cfg);

/// Cumulative serving counters (see api::ServeReport for the user-facing
/// vocabulary these feed).
///
/// Outcome conservation: every submitted request reaches exactly one
/// terminal state, so after a full drain
///   submitted == completed + cancelled + timed_out + rejected
/// holds on merged cluster totals (`terminal()` is the right-hand side).
/// `submitted`/`rejected` are stamped at the enqueue side (the server, or
/// a pipeline owning its queue); the serving replica stamps the other
/// three — so per-replica rows conserve only in aggregate.
struct ServeStats {
  int64_t requests = 0;  ///< admitted into a KV slot (not: submitted)
  int64_t prompt_tokens = 0;
  int64_t generated_tokens = 0;
  int prefill_passes = 0;  ///< passes containing at least one prefill entry
  int decode_passes = 0;   ///< pure decode passes
  double prefill_s = 0.0;
  double decode_s = 0.0;
  int64_t peak_kv_bytes = 0;  ///< max over passes, summed across devices

  /// Paged-KV accounting (zero when paging is off). `kv_pages_in_use` is a
  /// gauge sampled at stats() time; the peak is tracked per pass. Prefix
  /// hits count admissions that reused cached prompt pages; hit tokens are
  /// exactly the prefill tokens those admissions skipped.
  int64_t kv_pages_in_use = 0;
  int64_t kv_pages_peak = 0;
  int64_t prefix_hits = 0;
  int64_t prefix_hit_tokens = 0;

  int64_t submitted = 0;  ///< enqueue() calls (before admission control)
  int64_t completed = 0;  ///< served to MaxTokens / StopToken
  int64_t rejected = 0;   ///< refused by the bounded queue
  int64_t cancelled = 0;  ///< client cancel() (queued or mid-decode)
  int64_t timed_out = 0;  ///< deadline exceeded (queued or mid-decode)

  /// Requests that reached a terminal state (conservation right-hand side).
  int64_t terminal() const {
    return completed + rejected + cancelled + timed_out;
  }

  /// Latency samples of *served* requests (aborted ones excluded — SLA
  /// quantiles describe survivors). Appended at completion time, never on
  /// the steady-state decode path, so the per-pass allocation budget
  /// (tests/runtime/test_alloc_decode.cpp) is untouched.
  std::vector<double> ttft_samples_s;       ///< enqueue -> first token
  std::vector<double> per_token_samples_s;  ///< mean inter-token, per request
};

/// Element-wise sum — replica stats into cluster totals. Counters and busy
/// seconds add; peak_kv_bytes adds too, because replicas occupy disjoint
/// devices (the sum is the cluster-wide footprint when peaks coincide).
/// Latency samples concatenate, so quantiles over the merge span every
/// replica's survivors.
ServeStats merge_stats(const std::vector<ServeStats>& per_replica);

/// The one arithmetic behind every serving throughput/latency number —
/// api::ServeReport's accessors and the serving planner's candidate rows
/// both delegate here, which is what makes their equality structural
/// rather than maintained by parallel edits. `totals` are the merged
/// counters; `replicas` the per-replica breakdown (may be empty, e.g. the
/// sequential Reference), `dp` the replica count the sums span.
///
/// Elapsed-time estimate for concurrent replicas: the slowest replica's
/// busy seconds when the breakdown is present (robust to skewed admission
/// — an idle replica contributes nothing), else summed seconds over dp.
double serve_wall_estimate_s(const ServeStats& totals,
                             const std::vector<ServeStats>& replicas, int dp);
double serve_prefill_wall_estimate_s(const ServeStats& totals,
                                     const std::vector<ServeStats>& replicas,
                                     int dp);
/// Prompt tokens absorbed per second of (concurrent) prefill time.
double serve_prefill_tokens_per_s(const ServeStats& totals,
                                  const std::vector<ServeStats>& replicas,
                                  int dp);
/// Generated tokens per second over the whole run (scales with dp).
double serve_tokens_per_s(const ServeStats& totals,
                          const std::vector<ServeStats>& replicas, int dp);
/// Mean decode-pass latency (a per-pass mean, so dp leaves it unchanged).
double serve_per_token_latency_s(const ServeStats& totals);

/// Greedy head shared by every serving engine: the argmax of the final
/// row of a [1, t, V] logits tensor, first index winning ties. Threads and
/// Reference both select through this, which is what makes their
/// token-identity guarantee a single-definition property.
int64_t greedy_argmax_last_row(const tensor::Tensor& logits);

/// The full selection head: greedy dispatches to the argmax; TopK /
/// Temperature invert the (temperature-scaled, stable-softmax) CDF of the
/// candidate pool at the request's uniform draw `u` in [0, 1). TopK ranks
/// its pool (logit desc, index asc); Temperature walks the whole
/// vocabulary in index order, O(V). Either way the walk order is fixed and
/// the accumulation sequential double — bit-identical wherever the logits
/// are.
int64_t sample_last_row(const tensor::Tensor& logits, const Sampling& s,
                        float u);

/// True when `tok` is one of the configured stop tokens.
bool is_stop_token(const std::vector<int64_t>& stop_tokens, int64_t tok);

/// Shared request admission: normalises a [t] or [1, t] prompt, applies the
/// config-default continuation length, and enforces the positional bound
/// (prompt + continuation - 1 must fit `model_seq`; the last generated
/// token never re-enters the cache). Stamps `enqueue_s` with the current
/// serve clock and resolves the deadline: `deadline_s` > 0 is a relative
/// SLA from now, 0 falls back to `default_deadline_s` (the config default;
/// 0 again means none). Throws std::invalid_argument.
InferRequest make_infer_request(tensor::Tensor prompt, int max_new_tokens,
                                int default_new_tokens, int64_t model_seq,
                                int64_t id, double deadline_s = 0.0,
                                double default_deadline_s = 0.0);

/// Mutex-guarded FIFO of pending requests — the single queue dp pipeline
/// replicas drain concurrently (each pop hands one request to whichever
/// replica has a free KV slot first). Also the cancellation rendezvous:
/// cancel(id) records the id here, and whichever replica holds (or pops)
/// the request consumes the mark at its next pass boundary.
class RequestQueue {
 public:
  /// Sets the admission policy; `cap` is ignored for Unbounded.
  void configure(QueuePolicy policy, int cap);

  /// Enqueues under the admission policy. Returns the refused requests for
  /// the caller to stamp Rejected: under RejectNew the refused one is `r`
  /// itself (when full); under ShedOldest it is the evicted queue head(s).
  /// Unbounded never refuses.
  std::vector<InferRequest> push(InferRequest r);
  /// Returns a popped request to the queue head, preserving FIFO order —
  /// used by paged admission when the KV pool cannot reserve pages for the
  /// oldest request yet (it stays first in line; no policy check, the
  /// request was already admitted past it once).
  void push_front(InferRequest r);
  /// Pops the oldest request into `out`; false when empty.
  bool pop(InferRequest& out);
  /// Removes and returns every queued request whose deadline has passed —
  /// called by replicas each admission sweep, so queued requests time out
  /// within one pass of their deadline even when all slots are busy.
  std::vector<InferRequest> take_expired(double now_s);
  /// Marks `id` for cancellation (thread-safe, any time). The mark is
  /// honoured at the serving replica's next pass boundary — or at pop time
  /// if the request is still queued. Unknown/finished ids are a no-op
  /// (the mark sits in the registry until consumed or forgotten by it).
  void cancel(int64_t id);
  /// True (and consumes the mark) if `id` was cancelled.
  bool consume_cancelled(int64_t id);
  /// True when any cancel mark is pending — the replicas' cheap pass-
  /// boundary guard before the per-sequence consume_cancelled sweep.
  bool any_cancelled() const;
  bool empty() const;
  int size() const;

 private:
  mutable sync::Mutex<sync::Rank::ServeQueue> mu_;
  std::deque<InferRequest> q_;
  std::vector<int64_t> cancelled_;  ///< pending cancel marks (few at a time)
  QueuePolicy policy_ = QueuePolicy::Unbounded;
  int cap_ = 0;
};

/// One micro-batch of one pipeline pass (internal, shared with InferWorker).
struct PassEntry {
  int slot = 0;        ///< KV-cache stream
  int64_t pos0 = 0;    ///< absolute position of input's first token
  bool fresh = false;  ///< first pass of a sequence: reset the slot first
  float u = 0.0f;      ///< this step's uniform draw (stochastic sampling)
  tensor::Tensor input;  ///< [1, t] token ids (prompt, or one decoded token)
};

class InferWorker;
class KvStore;

class InferencePipeline {
 public:
  /// Builds one pipeline replica of `cfg.sched.P` worker devices. Requires
  /// a causal model (decode re-feeds the last position) and a
  /// unidirectional algorithm (no Chimera). When `shared` is non-null the
  /// replica admits from that queue instead of its own (InferenceServer);
  /// `cfg.dp` is ignored here — replication lives in InferenceServer.
  /// `replica_index` selects this replica's fault-injection stream.
  explicit InferencePipeline(InferConfig cfg, RequestQueue* shared = nullptr,
                             int replica_index = 0);
  ~InferencePipeline();

  /// Queues a prompt; returns the request id (also the cancel handle).
  /// `max_new_tokens` of 0 uses the config default. `on_token` (optional)
  /// streams each selected token at the pass boundary that produced it;
  /// an aborted request's stream simply stops (its last event has
  /// last == false). `deadline_s` > 0 is a relative SLA from now; 0 uses
  /// the config default. Throws if prompt length + continuation would
  /// exceed the model's positional table (`model.seq`).
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0,
                  TokenCallback on_token = {}, double deadline_s = 0.0);

  /// Requests cancellation of `id` (thread-safe, callable concurrently
  /// with drain). Honoured at the next pass boundary: the sequence's KV
  /// slot frees immediately and its Completion is stamped Cancelled with
  /// whatever tokens were already generated. Unknown or already-finished
  /// ids are a harmless no-op.
  void cancel(int64_t id) { queue_->cancel(id); }

  /// Runs pipeline passes until the request queue is empty and every
  /// admitted sequence has completed or aborted; returns the completions
  /// of this drain in request-id (enqueue) order.
  std::vector<Completion> drain();

  bool idle() const { return queue_->empty() && active_.empty(); }
  /// Replica counters, including enqueue-side submitted/rejected when this
  /// pipeline owns its queue. Not meaningful concurrently with drain().
  ServeStats stats() const;
  const InferConfig& config() const { return cfg_; }

  /// KV-cache bytes currently resident across this replica's workers —
  /// 0 whenever no sequence is mid-flight (the no-slot-leak invariant).
  /// Paged mode reports the bytes of pages referenced by live slots (the
  /// prefix cache's retained pages are excluded — they are reclaimable).
  int64_t slot_bytes() const;

  /// Pages currently allocated from this replica's pool (slots + prefix
  /// cache); 0 when paging is off. After clear_prefix_cache() on a drained
  /// replica this returns 0 — the paged no-leak invariant.
  int64_t pages_in_use() const;
  /// Drops every unreferenced prefix-cache page (no-op when paging is off).
  void clear_prefix_cache();

  /// The forward-only schedule compiled for `batch` concurrent sequences
  /// (compiled and validated on first use, then cached).
  const schedule::Schedule& schedule_for(int batch);

 private:
  struct ActiveSeq {
    int64_t id = -1;
    int slot = -1;
    int64_t len = 0;          ///< tokens already in the KV cache
    int64_t prompt_tokens = 0;
    int remaining = 0;        ///< new tokens still to generate
    bool prefilled = false;
    int64_t last_token = -1;
    tensor::Tensor input_prompt;  ///< pending prompt (dropped after prefill)
    /// Paged mode: the prompt as token ids (kept until the prefix tree has
    /// been offered the prompt via KvStore::publish), and how many leading
    /// tokens admission found already cached (prefill starts at that
    /// position).
    std::vector<int64_t> prompt_ids;
    int64_t shared_tokens = 0;
    tensor::Rng rng{0};       ///< per-request sampling stream (seed, id)
    std::vector<int64_t> generated;
    TokenCallback on_token;   ///< streaming callback (may be empty)
    double enqueue_s = 0.0;
    double deadline_s = 0.0;  ///< absolute; 0 = none
    double admit_s = 0.0;
    double first_token_s = -1.0;
  };

  void admit();
  /// Stamps a terminal Completion for a request that never got (or no
  /// longer holds) a KV slot, and counts the matching stats_ outcome.
  void finish_unserved(const InferRequest& r, StopReason why);
  /// Pass-boundary abort sweep: cancelled or deadline-expired active
  /// sequences drop their slot now (KV freed immediately) and complete
  /// with their partial tokens.
  void reap_aborted();
  void finish_active(ActiveSeq& seq, StopReason why, double now_s);
  void inject_faults();
  void run_pass();
  /// Body of gang thread `i`: waits for the next published pass epoch,
  /// runs workers_[i]->run_pass, reports completion. See gang_* members.
  void gang_main(size_t i);

  InferConfig cfg_;
  schedule::Placement placement_;
  int last_stage_device_ = 0;
  int replica_index_ = 0;
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<InferWorker>> workers_;
  std::map<int, schedule::Schedule> sched_cache_;
  RequestQueue own_queue_;
  RequestQueue* queue_ = nullptr;  ///< own_queue_, or the server's shared one
  std::unique_ptr<KvStore> store_;  ///< paged KV pool (null = contiguous)
  std::vector<ActiveSeq> active_;
  std::vector<int> free_slots_;
  std::vector<Completion> done_;
  int64_t next_id_ = 0;
  ServeStats stats_;
  ServeStats enqueue_stats_;  ///< submitted/rejected (own-queue mode only)
  std::vector<Completion> rejected_done_;  ///< own-queue-mode rejections
  /// Guards enqueue_stats_/rejected_done_: enqueue() may race drain().
  /// Rank::ServeQueue like the queue mutex — never held at the same time
  /// as it (sequential same-rank acquisition is legal under the checker).
  mutable sync::Mutex<sync::Rank::ServeQueue> enqueue_mu_;
  tensor::Rng fault_rng_{0};  ///< per-replica fault stream (seed, replica)
  int passes_run_ = 0;        ///< lifetime pass count (fault scheduling)

  /// Persistent pass gang: one long-lived thread per pipeline worker,
  /// rendezvousing with the driver through an epoch counter instead of
  /// being spawned and joined per pass (a steady-state decode pass must
  /// not create threads — thread stacks are heap allocations). The
  /// Rank::InferGang mutex is held only at the hand-off (publish epoch /
  /// count completions), never across a pass body, so worker-side comm
  /// and kernel locks nest inside it legally.
  std::vector<std::thread> gang_threads_;
  std::vector<std::exception_ptr> gang_errors_;  ///< slot i: thread i only
  sync::Mutex<sync::Rank::InferGang> gang_mu_;
  sync::CondVar gang_cv_;
  uint64_t gang_epoch_ = 0;
  int gang_done_ = 0;
  bool gang_quit_ = false;
  const schedule::Schedule* gang_sched_ = nullptr;  ///< valid for one epoch

  /// Driver-side pass arena (plan inputs, per-pass temporaries) plus the
  /// reused pass containers — cleared, never shrunk, each pass.
  tensor::Arena driver_arena_;
  std::vector<PassEntry> plan_;
  std::vector<ActiveSeq> still_;
};

/// Data-parallel serving: `cfg.dp` independent InferencePipeline replicas
/// (identical weights — same seed — on disjoint comm::Worlds) drain one
/// shared RequestQueue concurrently. Completions merge in request-id order;
/// ServeStats are kept per replica and merged on demand. Because sampling
/// streams are split from (seed, request id), which replica serves a
/// request never changes its tokens.
class InferenceServer {
 public:
  explicit InferenceServer(InferConfig cfg);
  ~InferenceServer();

  /// Queues a prompt on the shared queue; returns the request id (also the
  /// cancel handle). `on_token` streams the request's tokens from whichever
  /// replica serves it (events of one request are ordered; different
  /// requests' callbacks may run concurrently, one per replica thread).
  /// `deadline_s` > 0 is a relative SLA from now; 0 uses the config
  /// default. Under a bounded queue policy the request may be refused (or
  /// evict the oldest queued one) — the refused request surfaces as a
  /// StopReason::Rejected completion from the next drain().
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0,
                  TokenCallback on_token = {}, double deadline_s = 0.0);

  /// Requests cancellation of `id` (thread-safe, callable concurrently with
  /// drain); honoured at the serving replica's next pass boundary.
  void cancel(int64_t id) { queue_.cancel(id); }

  /// Drains the shared queue on all replicas concurrently (one thread per
  /// replica when dp > 1); completions of this drain in request-id order.
  std::vector<Completion> drain();

  int dp() const { return static_cast<int>(replicas_.size()); }
  const InferConfig& config() const { return cfg_; }

  /// Cluster totals: merge_stats over the replicas plus the server-side
  /// submitted/rejected counters (admission control happens here, before
  /// any replica sees the request — so those two live in totals only).
  ServeStats stats() const;
  /// Per-replica counters, index = replica id.
  std::vector<ServeStats> replica_stats() const;

  /// Resident KV bytes summed over replicas — 0 when fully drained.
  int64_t slot_bytes() const;

  /// Allocated pages summed over replicas (0 when paging is off); see
  /// InferencePipeline::pages_in_use.
  int64_t pages_in_use() const;
  /// Drops unreferenced prefix-cache pages on every replica.
  void clear_prefix_cache();

  /// Replica 0's compiled forward-only schedule for `batch` streams (all
  /// replicas compile identical programs).
  const schedule::Schedule& schedule_for(int batch) {
    return replicas_[0]->schedule_for(batch);
  }

 private:
  InferConfig cfg_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<InferencePipeline>> replicas_;
  int64_t next_id_ = 0;
  ServeStats enqueue_stats_;          ///< submitted/rejected counters
  std::vector<Completion> rejected_done_;  ///< pending Rejected completions
  /// Guards the two members above (enqueue can race a running drain).
  /// Same rank as the queue mutex; the two are only ever held one after
  /// the other, never nested.
  mutable sync::Mutex<sync::Rank::ServeQueue> enqueue_mu_;
};

}  // namespace hanayo::runtime
