#pragma once
// Forward-only pipeline serving runtime.
//
// The training runtime interprets a wave schedule's F/B program; serving is
// the same machinery with the backward half removed and a feedback edge
// added: the last stage's selected token re-enters stage 0 as the next
// decode step's input. The engine keeps a FIFO request queue and batches
// admitted sequences up to `max_batch` concurrent decode streams —
// continuous batching at pass granularity: whenever a sequence completes
// (its continuation cap, or a stop token), the freed KV slot is handed to
// the next queued request at the following pass boundary, and that
// request's prefill micro-batch rides through the pipeline alongside the
// ongoing sequences' decode micro-batches.
//
// Token selection is a policy (`Sampling`): greedy argmax, or seeded
// top-k / temperature sampling driven by a per-request RNG stream split
// from (InferConfig::seed, request id) — so stochastic decodes are
// bit-identical across the Threads and Reference engines, across runs, and
// across data-parallel replica assignment.
//
// `dp > 1` scales out with `InferenceServer`: dp independent
// InferencePipeline replicas (each its own comm::World of P workers)
// drain one shared mutex-guarded RequestQueue, and per-replica ServeStats
// merge into cluster totals.

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/sync.hpp"
#include "model/transformer.hpp"
#include "runtime/worker.hpp"
#include "schedule/algorithms.hpp"
#include "tensor/rng.hpp"

namespace hanayo::runtime {

/// Token-selection policy for serving. The factories mirror the historical
/// enum spelling: `Sampling::Greedy()` is the deterministic argmax the
/// cross-backend token-identity guarantee was first stated for; TopK, TopP
/// (nucleus) and Temperature are the stochastic policies, driven by one
/// uniform draw per generated token from the request's seeded RNG stream —
/// which is what keeps them equally testable.
struct Sampling {
  enum class Kind { Greedy, TopK, TopP, Temperature };
  Kind kind = Kind::Greedy;
  int k = 0;                 ///< TopK: candidate-pool size (>= 1)
  float p = 1.0f;            ///< TopP: nucleus probability mass (0 < p <= 1)
  float temperature = 1.0f;  ///< softmax temperature (> 0)

  static Sampling Greedy() { return {}; }
  static Sampling TopK(int k, float temperature = 1.0f) {
    Sampling s;
    s.kind = Kind::TopK;
    s.k = k;
    s.temperature = temperature;
    return s;
  }
  /// Nucleus sampling (Holtzman et al.): the candidate pool is the smallest
  /// probability-ranked prefix of the vocabulary whose softmax mass reaches
  /// `p`; the draw inverts the renormalised CDF of that pool.
  static Sampling TopP(float p, float temperature = 1.0f) {
    Sampling s;
    s.kind = Kind::TopP;
    s.p = p;
    s.temperature = temperature;
    return s;
  }
  static Sampling Temperature(float t) {
    Sampling s;
    s.kind = Kind::Temperature;
    s.temperature = t;
    return s;
  }

  /// True when decoding consumes RNG draws (anything but greedy).
  bool stochastic() const { return kind != Kind::Greedy; }

  /// Throws std::invalid_argument on unusable parameters (TopK k < 1,
  /// TopP p outside (0, 1], temperature <= 0).
  void validate() const;
};

/// One streamed token: fired at the pass boundary that selected it, before
/// the next pass starts — token-at-a-time streaming completions.
struct TokenEvent {
  int64_t request_id = -1;
  int64_t token = -1;
  int index = 0;      ///< 0-based position within the continuation
  bool last = false;  ///< this token completes the request (stop/cap)
};

/// Per-request streaming callback. Events of one request arrive in
/// generation order from the replica serving it; with dp > 1, callbacks of
/// different requests may run concurrently (one per replica thread).
using TokenCallback = std::function<void(const TokenEvent&)>;

/// One queued generation request. `prompt` is a [t] or [1, t] tensor of
/// token ids.
struct InferRequest {
  int64_t id = -1;
  tensor::Tensor prompt;
  int max_new_tokens = 0;
  TokenCallback on_token;  ///< optional streaming callback
};

/// Why a sequence stopped generating.
enum class StopReason {
  MaxTokens,  ///< hit its continuation cap
  StopToken,  ///< emitted one of the configured stop tokens
};

/// One finished request: the decoded continuation, in generation order
/// (tokens of one sequence are never reordered). A stop token, when one
/// ends the sequence, is the last entry of `tokens`.
struct Completion {
  int64_t id = -1;
  int64_t prompt_tokens = 0;
  std::vector<int64_t> tokens;
  StopReason stop_reason = StopReason::MaxTokens;
};

struct InferConfig {
  model::ModelConfig model;
  /// algo, P, waves/vchunks and the tf/tb ordering costs. `B` is ignored:
  /// the engine compiles one forward-only schedule per concurrent-sequence
  /// count as the batch composition changes.
  schedule::ScheduleRequest sched;
  int dp = 1;              ///< data-parallel pipeline replicas (InferenceServer)
  int max_batch = 4;       ///< concurrent decode streams (KV-cache slots)
  int max_new_tokens = 16; ///< default continuation cap per request
  Sampling sampling;       ///< token-selection policy (default greedy)
  /// Emitting any of these ids ends the sequence early (the id itself is
  /// recorded); its KV slot frees at the next pass boundary.
  std::vector<int64_t> stop_tokens;
  /// Store cached K/V panels as fp16 words (converted back for the
  /// attention kernels): halves every slot's resident bytes; decode logits
  /// move within fp16 rounding of the fp32-cache run.
  bool kv_fp16 = false;
  uint64_t seed = 1;
  int prefetch_depth = 2;
};

/// Cumulative serving counters (see api::ServeReport for the user-facing
/// vocabulary these feed).
struct ServeStats {
  int64_t requests = 0;
  int64_t prompt_tokens = 0;
  int64_t generated_tokens = 0;
  int prefill_passes = 0;  ///< passes containing at least one prefill entry
  int decode_passes = 0;   ///< pure decode passes
  double prefill_s = 0.0;
  double decode_s = 0.0;
  int64_t peak_kv_bytes = 0;  ///< max over passes, summed across devices
};

/// Element-wise sum — replica stats into cluster totals. Counters and busy
/// seconds add; peak_kv_bytes adds too, because replicas occupy disjoint
/// devices (the sum is the cluster-wide footprint when peaks coincide).
ServeStats merge_stats(const std::vector<ServeStats>& per_replica);

/// The one arithmetic behind every serving throughput/latency number —
/// api::ServeReport's accessors and the serving planner's candidate rows
/// both delegate here, which is what makes their equality structural
/// rather than maintained by parallel edits. `totals` are the merged
/// counters; `replicas` the per-replica breakdown (may be empty, e.g. the
/// sequential Reference), `dp` the replica count the sums span.
///
/// Elapsed-time estimate for concurrent replicas: the slowest replica's
/// busy seconds when the breakdown is present (robust to skewed admission
/// — an idle replica contributes nothing), else summed seconds over dp.
double serve_wall_estimate_s(const ServeStats& totals,
                             const std::vector<ServeStats>& replicas, int dp);
double serve_prefill_wall_estimate_s(const ServeStats& totals,
                                     const std::vector<ServeStats>& replicas,
                                     int dp);
/// Prompt tokens absorbed per second of (concurrent) prefill time.
double serve_prefill_tokens_per_s(const ServeStats& totals,
                                  const std::vector<ServeStats>& replicas,
                                  int dp);
/// Generated tokens per second over the whole run (scales with dp).
double serve_tokens_per_s(const ServeStats& totals,
                          const std::vector<ServeStats>& replicas, int dp);
/// Mean decode-pass latency (a per-pass mean, so dp leaves it unchanged).
double serve_per_token_latency_s(const ServeStats& totals);

/// Greedy head shared by every serving engine: the argmax of the final
/// row of a [1, t, V] logits tensor, first index winning ties. Threads and
/// Reference both select through this, which is what makes their
/// token-identity guarantee a single-definition property.
int64_t greedy_argmax_last_row(const tensor::Tensor& logits);

/// The full selection head: greedy dispatches to the argmax; TopK /
/// Temperature invert the (temperature-scaled, stable-softmax) CDF of the
/// candidate pool at the request's uniform draw `u` in [0, 1). TopK ranks
/// its pool (logit desc, index asc); Temperature walks the whole
/// vocabulary in index order, O(V). Either way the walk order is fixed and
/// the accumulation sequential double — bit-identical wherever the logits
/// are.
int64_t sample_last_row(const tensor::Tensor& logits, const Sampling& s,
                        float u);

/// True when `tok` is one of the configured stop tokens.
bool is_stop_token(const std::vector<int64_t>& stop_tokens, int64_t tok);

/// Shared request admission: normalises a [t] or [1, t] prompt, applies the
/// config-default continuation length, and enforces the positional bound
/// (prompt + continuation - 1 must fit `model_seq`; the last generated
/// token never re-enters the cache). Throws std::invalid_argument.
InferRequest make_infer_request(tensor::Tensor prompt, int max_new_tokens,
                                int default_new_tokens, int64_t model_seq,
                                int64_t id);

/// Mutex-guarded FIFO of pending requests — the single queue dp pipeline
/// replicas drain concurrently (each pop hands one request to whichever
/// replica has a free KV slot first).
class RequestQueue {
 public:
  void push(InferRequest r);
  /// Pops the oldest request into `out`; false when empty.
  bool pop(InferRequest& out);
  bool empty() const;

 private:
  mutable sync::Mutex<sync::Rank::ServeQueue> mu_;
  std::deque<InferRequest> q_;
};

/// One micro-batch of one pipeline pass (internal, shared with InferWorker).
struct PassEntry {
  int slot = 0;        ///< KV-cache stream
  int64_t pos0 = 0;    ///< absolute position of input's first token
  bool fresh = false;  ///< first pass of a sequence: reset the slot first
  float u = 0.0f;      ///< this step's uniform draw (stochastic sampling)
  tensor::Tensor input;  ///< [1, t] token ids (prompt, or one decoded token)
};

class InferWorker;

class InferencePipeline {
 public:
  /// Builds one pipeline replica of `cfg.sched.P` worker devices. Requires
  /// a causal model (decode re-feeds the last position) and a
  /// unidirectional algorithm (no Chimera). When `shared` is non-null the
  /// replica admits from that queue instead of its own (InferenceServer);
  /// `cfg.dp` is ignored here — replication lives in InferenceServer.
  explicit InferencePipeline(InferConfig cfg, RequestQueue* shared = nullptr);
  ~InferencePipeline();

  /// Queues a prompt; returns the request id. `max_new_tokens` of 0 uses the
  /// config default. `on_token` (optional) streams each selected token at
  /// the pass boundary that produced it. Throws if prompt length +
  /// continuation would exceed the model's positional table (`model.seq`).
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0,
                  TokenCallback on_token = {});

  /// Runs pipeline passes until the request queue is empty and every
  /// admitted sequence has completed; returns the completions of this drain
  /// in request-id (enqueue) order.
  std::vector<Completion> drain();

  bool idle() const { return queue_->empty() && active_.empty(); }
  const ServeStats& stats() const { return stats_; }
  const InferConfig& config() const { return cfg_; }

  /// KV-cache bytes currently resident across this replica's workers —
  /// 0 whenever no sequence is mid-flight (the no-slot-leak invariant).
  int64_t slot_bytes() const;

  /// The forward-only schedule compiled for `batch` concurrent sequences
  /// (compiled and validated on first use, then cached).
  const schedule::Schedule& schedule_for(int batch);

 private:
  struct ActiveSeq {
    int64_t id = -1;
    int slot = -1;
    int64_t len = 0;          ///< tokens already in the KV cache
    int64_t prompt_tokens = 0;
    int remaining = 0;        ///< new tokens still to generate
    bool prefilled = false;
    int64_t last_token = -1;
    tensor::Tensor input_prompt;  ///< pending prompt (dropped after prefill)
    tensor::Rng rng{0};       ///< per-request sampling stream (seed, id)
    std::vector<int64_t> generated;
    TokenCallback on_token;   ///< streaming callback (may be empty)
  };

  void admit();
  void run_pass();

  InferConfig cfg_;
  schedule::Placement placement_;
  int last_stage_device_ = 0;
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<InferWorker>> workers_;
  std::map<int, schedule::Schedule> sched_cache_;
  RequestQueue own_queue_;
  RequestQueue* queue_ = nullptr;  ///< own_queue_, or the server's shared one
  std::vector<ActiveSeq> active_;
  std::vector<int> free_slots_;
  std::vector<Completion> done_;
  int64_t next_id_ = 0;
  ServeStats stats_;
};

/// Data-parallel serving: `cfg.dp` independent InferencePipeline replicas
/// (identical weights — same seed — on disjoint comm::Worlds) drain one
/// shared RequestQueue concurrently. Completions merge in request-id order;
/// ServeStats are kept per replica and merged on demand. Because sampling
/// streams are split from (seed, request id), which replica serves a
/// request never changes its tokens.
class InferenceServer {
 public:
  explicit InferenceServer(InferConfig cfg);
  ~InferenceServer();

  /// Queues a prompt on the shared queue; returns the request id.
  /// `on_token` streams the request's tokens from whichever replica serves
  /// it (events of one request are ordered; different requests' callbacks
  /// may run concurrently, one per replica thread).
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0,
                  TokenCallback on_token = {});

  /// Drains the shared queue on all replicas concurrently (one thread per
  /// replica when dp > 1); completions of this drain in request-id order.
  std::vector<Completion> drain();

  int dp() const { return static_cast<int>(replicas_.size()); }
  const InferConfig& config() const { return cfg_; }

  /// Cluster totals (merge_stats over the replicas).
  ServeStats stats() const;
  /// Per-replica counters, index = replica id.
  std::vector<ServeStats> replica_stats() const;

  /// Resident KV bytes summed over replicas — 0 when fully drained.
  int64_t slot_bytes() const;

  /// Replica 0's compiled forward-only schedule for `batch` streams (all
  /// replicas compile identical programs).
  const schedule::Schedule& schedule_for(int batch) {
    return replicas_[0]->schedule_for(batch);
  }

 private:
  InferConfig cfg_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<InferencePipeline>> replicas_;
  int64_t next_id_ = 0;
};

}  // namespace hanayo::runtime
