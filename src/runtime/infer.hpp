#pragma once
// Forward-only pipeline serving runtime.
//
// The training runtime interprets a wave schedule's F/B program; serving is
// the same machinery with the backward half removed and a feedback edge
// added: the last stage's greedy token re-enters stage 0 as the next decode
// step's input. The engine keeps a FIFO request queue and batches admitted
// sequences up to `max_batch` concurrent decode streams — continuous
// batching at pass granularity: whenever a sequence completes, the freed
// slot is handed to the next queued request at the following pass boundary,
// and that request's prefill micro-batch rides through the pipeline
// alongside the ongoing sequences' decode micro-batches.

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "model/transformer.hpp"
#include "runtime/worker.hpp"
#include "schedule/algorithms.hpp"

namespace hanayo::runtime {

/// One queued generation request. `prompt` is a [t] or [1, t] tensor of
/// token ids.
struct InferRequest {
  int64_t id = -1;
  tensor::Tensor prompt;
  int max_new_tokens = 0;
};

/// One finished request: the greedily decoded continuation, in generation
/// order (tokens of one sequence are never reordered).
struct Completion {
  int64_t id = -1;
  int64_t prompt_tokens = 0;
  std::vector<int64_t> tokens;
};

struct InferConfig {
  model::ModelConfig model;
  /// algo, P, waves/vchunks and the tf/tb ordering costs. `B` is ignored:
  /// the engine compiles one forward-only schedule per concurrent-sequence
  /// count as the batch composition changes.
  schedule::ScheduleRequest sched;
  int max_batch = 4;       ///< concurrent decode streams (KV-cache slots)
  int max_new_tokens = 16; ///< default continuation length per request
  uint64_t seed = 1;
  int prefetch_depth = 2;
};

/// Cumulative serving counters (see api::ServeReport for the user-facing
/// vocabulary these feed).
struct ServeStats {
  int64_t requests = 0;
  int64_t prompt_tokens = 0;
  int64_t generated_tokens = 0;
  int prefill_passes = 0;  ///< passes containing at least one prefill entry
  int decode_passes = 0;   ///< pure decode passes
  double prefill_s = 0.0;
  double decode_s = 0.0;
  int64_t peak_kv_bytes = 0;  ///< max over passes, summed across devices
};

/// Greedy head shared by every serving engine: the argmax of the final
/// row of a [1, t, V] logits tensor, first index winning ties. Threads and
/// Reference both select through this, which is what makes their
/// token-identity guarantee a single-definition property.
int64_t greedy_argmax_last_row(const tensor::Tensor& logits);

/// Shared request admission: normalises a [t] or [1, t] prompt, applies the
/// config-default continuation length, and enforces the positional bound
/// (prompt + continuation - 1 must fit `model_seq`; the last generated
/// token never re-enters the cache). Throws std::invalid_argument.
InferRequest make_infer_request(tensor::Tensor prompt, int max_new_tokens,
                                int default_new_tokens, int64_t model_seq,
                                int64_t id);

/// One micro-batch of one pipeline pass (internal, shared with InferWorker).
struct PassEntry {
  int slot = 0;        ///< KV-cache stream
  int64_t pos0 = 0;    ///< absolute position of input's first token
  bool fresh = false;  ///< first pass of a sequence: reset the slot first
  tensor::Tensor input;  ///< [1, t] token ids (prompt, or one decoded token)
};

class InferWorker;

class InferencePipeline {
 public:
  /// Builds dp=1 pipeline workers for `cfg.sched.P` devices. Requires a
  /// causal model (greedy decode re-feeds the last position) and a
  /// unidirectional algorithm (no Chimera).
  explicit InferencePipeline(InferConfig cfg);
  ~InferencePipeline();

  /// Queues a prompt; returns the request id. `max_new_tokens` of 0 uses the
  /// config default. Throws if prompt length + continuation would exceed the
  /// model's positional table (`model.seq`).
  int64_t enqueue(tensor::Tensor prompt, int max_new_tokens = 0);

  /// Runs pipeline passes until every queued request has completed; returns
  /// the completions of this drain in enqueue order.
  std::vector<Completion> drain();

  bool idle() const { return queue_.empty() && active_.empty(); }
  const ServeStats& stats() const { return stats_; }
  const InferConfig& config() const { return cfg_; }

  /// The forward-only schedule compiled for `batch` concurrent sequences
  /// (compiled and validated on first use, then cached).
  const schedule::Schedule& schedule_for(int batch);

 private:
  struct ActiveSeq {
    int64_t id = -1;
    int slot = -1;
    int64_t len = 0;          ///< tokens already in the KV cache
    int64_t prompt_tokens = 0;
    int remaining = 0;        ///< new tokens still to generate
    bool prefilled = false;
    int64_t last_token = -1;
    tensor::Tensor input_prompt;  ///< pending prompt (dropped after prefill)
    std::vector<int64_t> generated;
  };

  void admit();
  void run_pass();

  InferConfig cfg_;
  schedule::Placement placement_;
  int last_stage_device_ = 0;
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<InferWorker>> workers_;
  std::map<int, schedule::Schedule> sched_cache_;
  std::deque<InferRequest> queue_;
  std::vector<ActiveSeq> active_;
  std::vector<int> free_slots_;
  std::vector<Completion> done_;
  int64_t next_id_ = 0;
  ServeStats stats_;
};

}  // namespace hanayo::runtime
