#pragma once
// Multi-threaded pipeline trainer: builds the schedule, spawns one worker
// per (replica, pipeline rank), and drives training steps.

#include <map>
#include <memory>
#include <string>

#include "runtime/engine.hpp"
#include "runtime/worker.hpp"
#include "schedule/algorithms.hpp"

namespace hanayo::runtime {

struct TrainerConfig {
  model::ModelConfig model;
  schedule::ScheduleRequest sched;  ///< algo, P, B, waves
  int dp = 1;                       ///< data-parallel replicas
  int mb_sequences = 1;             ///< sequences per micro-batch
  uint64_t seed = 1;
  OptKind opt = OptKind::Sgd;
  float lr = 0.1f;
  float momentum = 0.0f;
  int prefetch_depth = 2;
  /// Enable activation recomputation (gradient checkpointing) on all stages.
  bool recompute = false;
  /// Enable ZeRO-1 optimizer-state sharding across each stage's
  /// gradient-sync group (no-op when every stage has a single holder).
  bool zero1 = false;
  /// Transmit stage-boundary activations/gradients as packed fp16.
  bool fp16_comm = false;
  /// Global gradient-norm clipping threshold (0 disables).
  float max_grad_norm = 0.0f;
  /// Per-step learning-rate schedule; overrides `lr` when set.
  std::optional<model::LrSchedule> lr_schedule;
  /// Record real wall-clock Forward/Backward spans each step (see
  /// Trainer::last_timeline).
  bool record_timeline = false;
};

class Trainer {
 public:
  /// Builds and validates the schedule, partitions the model, constructs
  /// dp * P workers. Throws on invalid configurations (with the validator's
  /// diagnosis in the message).
  explicit Trainer(TrainerConfig cfg);
  ~Trainer();

  /// Runs one synchronous training iteration. `batch` must contain
  /// dp * B * mb_sequences rows. Returns the global mean loss.
  float train_step(const Batch& batch);

  /// Number of batch rows expected per step.
  int64_t batch_rows() const;

  /// Copies of all parameters of replica 0, keyed by name — used to compare
  /// against the sequential reference.
  std::map<std::string, tensor::Tensor> snapshot_params();

  /// Writes all parameters (replica 0's copy) to a checkpoint file. With
  /// `include_optimizer` the optimizer slots and step counter are written
  /// too (name-addressed, so a full-state resume works across parallel
  /// configurations). Optimizer state cannot be exported under ZeRO-1
  /// (it is shard-sized); that combination throws.
  void save_checkpoint(const std::string& path,
                       bool include_optimizer = false);
  /// Loads parameters by name into every worker (all replicas and both
  /// Chimera copies), so a checkpoint taken under one parallel
  /// configuration restores under any other. Optimizer records, when
  /// present in the file, are restored as well — training then continues
  /// exactly as if it had never stopped.
  void load_checkpoint(const std::string& path);

  const schedule::Schedule& schedule() const { return sched_; }
  /// Peak runtime cache bytes per pipeline rank (replica 0), last step.
  std::vector<int64_t> peak_cache_bytes() const;
  /// Optimizer-state bytes per worker (all replicas, replica-major). Under
  /// ZeRO-1 each entry is ~1/D of the unsharded value.
  std::vector<int64_t> optimizer_state_bytes() const;
  /// Real compute spans of the last step, per pipeline rank (replica 0),
  /// all measured against one shared origin so overlap across devices is
  /// directly visible. Empty unless TrainerConfig::record_timeline.
  std::vector<std::vector<ComputeSpan>> last_timeline() const;

 private:
  TrainerConfig cfg_;
  schedule::Schedule sched_;
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<Worker>> workers_;  // replica-major
  std::chrono::steady_clock::time_point timeline_origin_;
};

}  // namespace hanayo::runtime
