#include "runtime/trainer.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "model/checkpoint.hpp"
#include "schedule/validate.hpp"

namespace hanayo::runtime {

Trainer::Trainer(TrainerConfig cfg) : cfg_(std::move(cfg)) {
  sched_ = schedule::make_schedule(cfg_.sched);
  const schedule::ValidationResult vr = schedule::validate(sched_);
  if (!vr.ok) throw std::logic_error("Trainer: invalid schedule: " + vr.error);

  const int P = sched_.P;
  const int D = cfg_.dp;
  world_ = std::make_unique<comm::World>(D * P);

  // Gradient-sync groups: for each model stage, every (replica, device,
  // chunk) holding that stage.
  const schedule::Placement& pl = sched_.placement;
  std::vector<comm::Group> stage_group(static_cast<size_t>(pl.stages()));
  for (int r = 0; r < D; ++r) {
    for (int d = 0; d < P; ++d) {
      for (int c = 0; c < pl.chunks_per_device(); ++c) {
        stage_group[static_cast<size_t>(pl.stage_of(d, c))].ranks.push_back(r * P + d);
      }
    }
  }
  for (auto& g : stage_group) std::sort(g.ranks.begin(), g.ranks.end());

  comm::Group world_group;
  for (int i = 0; i < D * P; ++i) world_group.ranks.push_back(i);

  for (int r = 0; r < D; ++r) {
    for (int d = 0; d < P; ++d) {
      WorkerParams wp;
      wp.model = cfg_.model;
      wp.sched = &sched_;
      wp.pipeline_rank = d;
      wp.replica = r;
      wp.dp = D;
      wp.mb_sequences = cfg_.mb_sequences;
      wp.seed = cfg_.seed;
      wp.opt = cfg_.opt;
      wp.lr = cfg_.lr;
      wp.momentum = cfg_.momentum;
      wp.prefetch_depth = cfg_.prefetch_depth;
      wp.recompute = cfg_.recompute;
      wp.zero_shard = cfg_.zero1;
      wp.fp16_comm = cfg_.fp16_comm;
      wp.max_grad_norm = cfg_.max_grad_norm;
      wp.lr_schedule = cfg_.lr_schedule;
      if (cfg_.record_timeline) wp.timeline_origin = &timeline_origin_;
      wp.world_group = world_group;
      for (int c = 0; c < pl.chunks_per_device(); ++c) {
        wp.chunk_groups.push_back(stage_group[static_cast<size_t>(pl.stage_of(d, c))]);
      }
      workers_.push_back(std::make_unique<Worker>(
          std::move(wp), comm::Communicator(world_.get(), r * P + d)));
    }
  }
}

Trainer::~Trainer() = default;

int64_t Trainer::batch_rows() const {
  return static_cast<int64_t>(cfg_.dp) * sched_.B * cfg_.mb_sequences;
}

float Trainer::train_step(const Batch& batch) {
  if (batch.inputs.size(0) != batch_rows()) {
    throw std::invalid_argument("train_step: batch has " +
                                std::to_string(batch.inputs.size(0)) +
                                " rows, expected " + std::to_string(batch_rows()));
  }
  timeline_origin_ = std::chrono::steady_clock::now();
  std::vector<float> losses(workers_.size(), 0.0f);
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  std::vector<std::exception_ptr> errors(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        losses[i] = workers_[i]->run_iteration(batch);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return losses[0];
}

std::map<std::string, tensor::Tensor> Trainer::snapshot_params() {
  std::map<std::string, tensor::Tensor> out;
  const int P = sched_.P;
  for (int d = 0; d < P; ++d) {
    Worker& w = *workers_[static_cast<size_t>(d)];  // replica 0
    for (auto& chunk : w.chunks()) {
      for (model::Param* p : chunk.params()) {
        out.emplace(p->name, p->value);  // Chimera copies are identical;
                                         // keep the first encountered.
      }
    }
  }
  return out;
}

void Trainer::save_checkpoint(const std::string& path,
                              bool include_optimizer) {
  if (include_optimizer && cfg_.zero1) {
    throw std::logic_error(
        "save_checkpoint: optimizer state is shard-sized under ZeRO-1; "
        "save parameters only and restart the optimizer after restore");
  }
  // Collect a single copy of every parameter (replica 0; first Chimera
  // holder wins — copies are identical).
  std::map<std::string, model::Param*> by_name;
  for (int d = 0; d < sched_.P; ++d) {
    for (auto& chunk : workers_[static_cast<size_t>(d)]->chunks()) {
      for (model::Param* p : chunk.params()) by_name.emplace(p->name, p);
    }
  }
  std::vector<model::NamedTensor> records;
  records.reserve(by_name.size());
  for (auto& [name, p] : by_name) records.push_back({name, &p->value});

  // Optimizer slots, deduplicated by record name (replica 0's workers;
  // Chimera's two holders carry identical state).
  std::map<std::string, tensor::Tensor> opt_state;
  tensor::Tensor steps({1});
  if (include_optimizer) {
    for (int d = 0; d < sched_.P; ++d) {
      for (auto& [name, t] :
           workers_[static_cast<size_t>(d)]->optimizer_state_snapshot()) {
        opt_state.emplace(name, std::move(t));
      }
    }
    for (const auto& [name, t] : opt_state) records.push_back({name, &t});
    steps[0] = static_cast<float>(workers_[0]->opt_steps());
    records.push_back({"trainer.opt_steps", &steps});
  }
  model::save_checkpoint(path, records);
}

void Trainer::load_checkpoint(const std::string& path) {
  const auto all = model::load_all(path);
  for (auto& w : workers_) {
    for (auto& chunk : w->chunks()) {
      for (model::Param* p : chunk.params()) {
        const auto it = all.find(p->name);
        if (it == all.end()) {
          throw std::runtime_error("load_checkpoint: missing parameter " +
                                   p->name);
        }
        if (it->second.shape() != p->value.shape()) {
          throw std::runtime_error("load_checkpoint: shape mismatch for " +
                                   p->name);
        }
        p->value = it->second;
      }
    }
    w->load_optimizer_state(all);
    if (const auto it = all.find("trainer.opt_steps"); it != all.end()) {
      w->set_opt_steps(static_cast<int64_t>(it->second[0]));
    }
  }
}

std::vector<int64_t> Trainer::peak_cache_bytes() const {
  std::vector<int64_t> out;
  for (int d = 0; d < sched_.P; ++d) {
    out.push_back(workers_[static_cast<size_t>(d)]->last_peak_cache_bytes());
  }
  return out;
}

std::vector<int64_t> Trainer::optimizer_state_bytes() const {
  std::vector<int64_t> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w->optimizer_state_bytes());
  return out;
}

std::vector<std::vector<ComputeSpan>> Trainer::last_timeline() const {
  std::vector<std::vector<ComputeSpan>> out;
  for (int d = 0; d < sched_.P; ++d) {
    out.push_back(workers_[static_cast<size_t>(d)]->last_timeline());
  }
  return out;
}

}  // namespace hanayo::runtime
