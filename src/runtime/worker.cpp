#include "runtime/worker.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "comm/fp16.hpp"
#include "model/loss.hpp"

namespace hanayo::runtime {

using comm::Kind;
using comm::make_tag;
using model::StageModule;
using schedule::Action;
using schedule::Op;
using tensor::Tensor;

Worker::Worker(WorkerParams params, comm::Communicator comm)
    : p_(std::move(params)), comm_(std::move(comm)) {
  const schedule::Placement& pl = p_.sched->placement;
  const int d = p_.pipeline_rank;
  const auto descs = p_.model.layer_descs();
  const int64_t tokens = static_cast<int64_t>(p_.mb_sequences) * p_.model.seq;
  const auto ranges = model::partition_layers(descs, pl.stages(), tokens);

  for (int c = 0; c < pl.chunks_per_device(); ++c) {
    const int st = pl.stage_of(d, c);
    chunk_stages_.push_back(st);
    chunk_of_stage_[st] = c;
    const model::StageRange& r = ranges[static_cast<size_t>(st)];
    chunks_.emplace_back(descs, r.begin, r.end, p_.seed, p_.model.init_std);
    chunks_.back().set_recompute(p_.recompute);
  }
  if (p_.opt == OptKind::Sgd) {
    optimizer_ = std::make_unique<model::Sgd>(p_.lr, p_.momentum);
  } else {
    optimizer_ = std::make_unique<model::AdamW>(p_.lr);
  }
  if (static_cast<int>(p_.chunk_groups.size()) != pl.chunks_per_device()) {
    throw std::invalid_argument("Worker: chunk_groups size mismatch");
  }
}

Tensor Worker::input_slice(const Batch& batch, int m) const {
  const int64_t seq = batch.inputs.size(1);
  const int64_t row0 = (static_cast<int64_t>(p_.replica) * p_.sched->B + m) * p_.mb_sequences;
  Tensor out({p_.mb_sequences, seq});
  for (int64_t r = 0; r < p_.mb_sequences; ++r) {
    for (int64_t t = 0; t < seq; ++t) out.at(r, t) = batch.inputs.at(row0 + r, t);
  }
  return out;
}

Tensor Worker::target_slice(const Batch& batch, int m) const {
  const int64_t seq = batch.targets.size(1);
  const int64_t row0 = (static_cast<int64_t>(p_.replica) * p_.sched->B + m) * p_.mb_sequences;
  Tensor out({p_.mb_sequences * seq});
  for (int64_t r = 0; r < p_.mb_sequences; ++r) {
    for (int64_t t = 0; t < seq; ++t) out[r * seq + t] = batch.targets.at(row0 + r, t);
  }
  return out;
}

void Worker::note_memory() {
  int64_t cur = 0;
  for (const StageModule& c : chunks_) cur += c.cached_bytes();
  for (const auto& [k, v] : act_) cur += v.bytes();
  for (const auto& [k, v] : grad_) cur += v.bytes();
  peak_cache_bytes_ = std::max(peak_cache_bytes_, cur);
}

float Worker::run_iteration(const Batch& batch) {
  // Everything with iteration lifetime bump-allocates from the worker's
  // arena; the reset at scope entry recycles last iteration's slabs (safe:
  // the previous iteration's Flush barrier guaranteed consumption).
  tensor::ArenaScope iter_arena(arena_);
  const schedule::Schedule& sched = *p_.sched;
  const schedule::DeviceScript& script = sched.scripts[static_cast<size_t>(p_.pipeline_rank)];
  const int S = sched.placement.stages();
  const int B = sched.B;
  const float scale = 1.0f / static_cast<float>(B * p_.dp);

  act_.clear();
  grad_.clear();
  peak_cache_bytes_ = 0;
  timeline_.clear();
  float loss_local = 0.0f;

  const auto since_origin = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         *p_.timeline_origin)
        .count();
  };

  // ---- Prefetching (paper §4.2): post up to `prefetch_depth` receive
  // requests ahead of the interpreter's program counter.
  struct Posted {
    comm::Request req;
    std::unique_ptr<Tensor> slot;
  };
  std::map<size_t, Posted> posted;
  size_t scan = 0;
  int outstanding = 0;
  const auto post_recv = [&](size_t idx) {
    const Action& a = script.actions[idx];
    Posted ps;
    ps.slot = std::make_unique<Tensor>();
    if (a.op == Op::RecvAct) {
      ps.req = comm_.irecv(a.peer + p_.replica * sched.P,
                           make_tag(Kind::Activation, a.mb, a.pos - 1), ps.slot.get());
    } else {
      ps.req = comm_.irecv(a.peer + p_.replica * sched.P,
                           make_tag(Kind::Gradient, a.mb, a.pos + 1), ps.slot.get());
    }
    posted.emplace(idx, std::move(ps));
  };
  const auto prefetch = [&] {
    while (scan < script.actions.size() && outstanding < p_.prefetch_depth) {
      const Op op = script.actions[scan].op;
      if (op == Op::Flush) break;
      if (op == Op::RecvAct || op == Op::RecvGrad) {
        post_recv(scan);
        ++outstanding;
      }
      ++scan;
    }
  };
  prefetch();

  for (size_t i = 0; i < script.actions.size(); ++i) {
    const Action& a = script.actions[i];
    switch (a.op) {
      case Op::LoadInput:
        act_[{a.mb, -1}] = input_slice(batch, a.mb);
        break;

      case Op::RecvAct:
      case Op::RecvGrad: {
        auto it = posted.find(i);
        if (it == posted.end()) {
          // Not prefetched (depth exhausted); post now and wait.
          post_recv(i);
          ++outstanding;
          if (scan <= i) scan = i + 1;
          it = posted.find(i);
        }
        it->second.req->wait();
        --outstanding;
        Tensor got = std::move(*it->second.slot);
        if (p_.fp16_comm) got = comm::unpack_fp16(got);
        if (a.op == Op::RecvAct) {
          act_[{a.mb, a.pos - 1}] = std::move(got);
        } else {
          grad_[{a.mb, a.pos + 1}] = std::move(got);
        }
        posted.erase(it);
        prefetch();
        break;
      }

      case Op::Forward: {
        const auto key = std::pair<int, int>{a.mb, a.pos == 0 ? -1 : a.pos - 1};
        const auto it = act_.find(key);
        if (it == act_.end()) {
          throw std::logic_error("Forward: missing input activation");
        }
        StageModule& chunk = chunks_[static_cast<size_t>(a.chunk)];
        const double t0 = p_.timeline_origin ? since_origin() : 0.0;
        Tensor y = chunk.forward(it->second, a.mb);
        if (p_.timeline_origin) {
          timeline_.push_back({a.mb, a.pos, false, t0, since_origin()});
        }
        act_.erase(it);
        act_[{a.mb, a.pos}] = std::move(y);
        note_memory();
        prefetch();
        break;
      }

      case Op::SendAct: {
        const auto it = act_.find({a.mb, a.pos});
        if (it == act_.end()) throw std::logic_error("SendAct: missing activation");
        Tensor payload = p_.fp16_comm ? comm::pack_fp16(it->second)
                                      : std::move(it->second);
        comm_.isend(a.peer + p_.replica * sched.P,
                    make_tag(Kind::Activation, a.mb, a.pos), std::move(payload));
        act_.erase(it);
        break;
      }

      case Op::Backward: {
        Tensor dy;
        if (a.pos == S - 1) {
          const auto it = act_.find({a.mb, a.pos});
          if (it == act_.end()) throw std::logic_error("Backward: missing logits");
          auto [loss, dlogits] =
              model::cross_entropy(it->second, target_slice(batch, a.mb), scale);
          loss_local += loss;
          dy = std::move(dlogits);
          act_.erase(it);
        } else {
          const auto it = grad_.find({a.mb, a.pos + 1});
          if (it == grad_.end()) throw std::logic_error("Backward: missing gradient");
          dy = std::move(it->second);
          grad_.erase(it);
        }
        StageModule& chunk = chunks_[static_cast<size_t>(a.chunk)];
        const double t0 = p_.timeline_origin ? since_origin() : 0.0;
        Tensor dx = chunk.backward(dy, a.mb);
        if (p_.timeline_origin) {
          timeline_.push_back({a.mb, a.pos, true, t0, since_origin()});
        }
        if (a.pos > 0) grad_[{a.mb, a.pos}] = std::move(dx);
        note_memory();
        prefetch();
        break;
      }

      case Op::SendGrad: {
        const auto it = grad_.find({a.mb, a.pos});
        if (it == grad_.end()) throw std::logic_error("SendGrad: missing gradient");
        Tensor payload = p_.fp16_comm ? comm::pack_fp16(it->second)
                                      : std::move(it->second);
        comm_.isend(a.peer + p_.replica * sched.P,
                    make_tag(Kind::Gradient, a.mb, a.pos), std::move(payload));
        grad_.erase(it);
        break;
      }

      case Op::Flush: {
        comm_.barrier();
        // Global mean loss (sum of the per-micro-batch scaled losses).
        tensor::Tensor lt({1});
        lt[0] = loss_local;
        comm::allreduce_sum(comm_, p_.world_group, lt, /*phase=*/900000);
        loss_local = lt[0];
        // Gradient sync: per chunk, across every holder of the same stage
        // (data-parallel replicas, plus Chimera's bidirectional copy).
        // Under ZeRO-1 the allreduce becomes a reduce-scatter: each holder
        // only needs the summed gradient of the parameter shard it owns.
        //
        // Chunks are processed in GLOBAL stage order, not local chunk order:
        // the collectives block, and two devices that hold the same pair of
        // stages in opposite local order (exactly what Chimera's mirrored
        // placement produces) would otherwise each start with a different
        // group and deadlock. A total order over stages makes every device's
        // collective sequence a subsequence of the same global sequence, so
        // no cyclic wait can form.
        for (const size_t c : stage_ordered_chunks()) {
          const comm::Group& g = p_.chunk_groups[c];
          if (g.size() <= 1) continue;
          const auto params = chunks_[c].params();
          for (size_t pi = 0; pi < params.size(); ++pi) {
            const int phase = static_cast<int>((static_cast<size_t>(chunk_stages_[c]) * 4096 + pi) * 2);
            Tensor& grad = params[pi]->grad;
            if (p_.zero_shard) {
              const int gi = g.index_of(comm_.rank());
              Tensor shard = comm::reduce_scatter_sum(comm_, g, grad, phase);
              const auto [b, e] =
                  comm::shard_bounds(grad.numel(), g.size(), gi);
              std::memcpy(grad.data() + b, shard.data(),
                          static_cast<size_t>(e - b) * sizeof(float));
            } else {
              comm::allreduce_sum(comm_, g, grad, phase);
            }
          }
        }
        // Global gradient clipping: ||g|| over every distinct parameter.
        // Each holder of a stage contributes its (synced, identical) sum of
        // squares divided by the holder count — under ZeRO-1 it contributes
        // its disjoint shard fully — so the world allreduce counts every
        // element exactly once.
        if (p_.max_grad_norm > 0.0f) {
          double local_sq = 0.0;
          for (size_t c = 0; c < chunks_.size(); ++c) {
            const comm::Group& g = p_.chunk_groups[c];
            for (model::Param* pp : chunks_[c].params()) {
              if (p_.zero_shard && g.size() > 1) {
                const int gi = g.index_of(comm_.rank());
                const auto [b, e] =
                    comm::shard_bounds(pp->grad.numel(), g.size(), gi);
                local_sq += model::grad_sq_sum(*pp, b, e);
              } else {
                local_sq += model::grad_sq_sum(*pp, 0, pp->grad.numel()) /
                            static_cast<double>(g.size());
              }
            }
          }
          const float total_sq = comm::allreduce_scalar(
              comm_, p_.world_group, static_cast<float>(local_sq),
              /*phase=*/910000);
          const double norm = std::sqrt(static_cast<double>(total_sq));
          if (norm > p_.max_grad_norm) {
            const float coef = p_.max_grad_norm / static_cast<float>(norm);
            for (StageModule& c : chunks_) {
              model::scale_grads(c.params(), coef);
            }
          }
        }
        break;
      }

      case Op::OptStep: {
        // Optimizer state (momentum / Adam moments) is created lazily on
        // the first step and must outlive every iteration — keep it off
        // the pass arena.
        tensor::ArenaPause no_arena;
        if (p_.lr_schedule.has_value()) {
          optimizer_->set_lr(p_.lr_schedule->at(opt_steps_));
        }
        if (p_.zero_shard) {
          zero_opt_step();
        } else {
          std::vector<model::Param*> all;
          for (StageModule& c : chunks_) {
            for (model::Param* pp : c.params()) all.push_back(pp);
          }
          optimizer_->step(all);
          for (model::Param* pp : all) pp->zero_grad();
        }
        ++opt_steps_;
        break;
      }
    }
  }
  return loss_local;
}

std::vector<size_t> Worker::stage_ordered_chunks() const {
  std::vector<size_t> order(chunks_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return chunk_stages_[a] < chunk_stages_[b];
  });
  return order;
}

void Worker::zero_opt_step() {
  // Each member of a chunk's gradient-sync group updates only its parameter
  // shard (its summed gradients were placed there by the flush's
  // reduce-scatter), then the updated shards are allgathered so every holder
  // ends with the complete — and identical — new parameter values.
  std::vector<model::ParamShard> shards;
  struct Gather {
    model::Param* param;
    const comm::Group* group;
    int64_t begin, end;
    int phase;
  };
  std::vector<Gather> gathers;
  std::vector<model::Param*> all;
  // Same global stage order as the flush (see run_iteration): the
  // allgathers block, so every group member must reach them in the same
  // sequence.
  for (const size_t c : stage_ordered_chunks()) {
    const comm::Group& g = p_.chunk_groups[c];
    const auto params = chunks_[c].params();
    for (size_t pi = 0; pi < params.size(); ++pi) {
      model::Param* pp = params[pi];
      all.push_back(pp);
      if (g.size() <= 1) {
        shards.push_back({pp, 0, pp->value.numel()});
        continue;
      }
      const int gi = g.index_of(comm_.rank());
      const auto [b, e] = comm::shard_bounds(pp->value.numel(), g.size(), gi);
      shards.push_back({pp, b, e});
      const int phase = static_cast<int>(
          (static_cast<size_t>(chunk_stages_[c]) * 4096 + pi) * 2 + 1);
      gathers.push_back({pp, &g, b, e, phase});
    }
  }
  optimizer_->step_shards(shards);
  for (const Gather& ga : gathers) {
    Tensor mine({ga.end - ga.begin});
    std::memcpy(mine.data(), ga.param->value.data() + ga.begin,
                static_cast<size_t>(ga.end - ga.begin) * sizeof(float));
    Tensor full = comm::allgather_shards(comm_, *ga.group, mine,
                                         ga.param->value.numel(), ga.phase);
    std::memcpy(ga.param->value.data(), full.data(),
                static_cast<size_t>(full.numel()) * sizeof(float));
  }
  for (model::Param* pp : all) pp->zero_grad();
}

int64_t Worker::optimizer_state_bytes() const {
  return optimizer_->state_bytes();
}

std::vector<std::pair<std::string, tensor::Tensor>>
Worker::optimizer_state_snapshot() {
  std::vector<model::Param*> all;
  for (StageModule& c : chunks_) {
    for (model::Param* pp : c.params()) all.push_back(pp);
  }
  return optimizer_->state_snapshot(all);
}

void Worker::load_optimizer_state(
    const std::map<std::string, tensor::Tensor>& state) {
  std::vector<model::Param*> all;
  for (StageModule& c : chunks_) {
    for (model::Param* pp : c.params()) all.push_back(pp);
  }
  optimizer_->load_state(all, state);
}

}  // namespace hanayo::runtime
