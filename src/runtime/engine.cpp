#include "runtime/engine.hpp"

#include <cmath>
#include <stdexcept>

#include "model/loss.hpp"

namespace hanayo::runtime {

using tensor::Tensor;

SequentialEngine::SequentialEngine(const model::ModelConfig& cfg,
                                   int micro_batches, int mb_sequences,
                                   uint64_t seed, OptKind opt, float lr,
                                   float momentum)
    : micro_batches_(micro_batches),
      mb_sequences_(mb_sequences),
      module_(cfg.layer_descs(), 0, static_cast<int>(cfg.layer_descs().size()),
              seed, cfg.init_std) {
  if (opt == OptKind::Sgd) {
    optimizer_ = std::make_unique<model::Sgd>(lr, momentum);
  } else {
    optimizer_ = std::make_unique<model::AdamW>(lr);
  }
}

namespace {
Tensor rows(const Tensor& t, int64_t row0, int64_t n) {
  const int64_t cols = t.size(1);
  Tensor out({n, cols});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < cols; ++c) out.at(r, c) = t.at(row0 + r, c);
  }
  return out;
}
}  // namespace

float SequentialEngine::train_step(const Batch& batch) {
  const int64_t expect = static_cast<int64_t>(micro_batches_) * mb_sequences_;
  if (batch.inputs.size(0) != expect) {
    throw std::invalid_argument("SequentialEngine: batch rows != B * mb_sequences");
  }
  const float scale = 1.0f / static_cast<float>(micro_batches_);
  float total = 0.0f;
  for (int m = 0; m < micro_batches_; ++m) {
    const int64_t row0 = static_cast<int64_t>(m) * mb_sequences_;
    Tensor x = rows(batch.inputs, row0, mb_sequences_);
    Tensor tgt = rows(batch.targets, row0, mb_sequences_).reshaped(
        {static_cast<int64_t>(mb_sequences_) * batch.targets.size(1)});
    Tensor logits = module_.forward(x, m);
    auto [loss, dlogits] = model::cross_entropy(logits, tgt, scale);
    total += loss;
    module_.backward(dlogits, m);
  }
  const auto params = module_.params();
  if (max_grad_norm_ > 0.0f) {
    double sq = 0.0;
    for (const model::Param* p : params) {
      sq += model::grad_sq_sum(*p, 0, p->grad.numel());
    }
    // Match the runtime's arithmetic: the distributed path reduces the sum
    // of squares as a float before taking the root.
    const double norm = std::sqrt(static_cast<double>(static_cast<float>(sq)));
    if (norm > max_grad_norm_) {
      model::scale_grads(params, max_grad_norm_ / static_cast<float>(norm));
    }
  }
  if (lr_schedule_.has_value()) {
    optimizer_->set_lr(lr_schedule_->at(opt_steps_));
  }
  optimizer_->step(params);
  for (model::Param* p : params) p->zero_grad();
  ++opt_steps_;
  return total;
}

float SequentialEngine::eval(const Batch& batch) {
  const int64_t n = batch.inputs.size(0);
  float total = 0.0f;
  int count = 0;
  for (int64_t row0 = 0; row0 < n; row0 += mb_sequences_, ++count) {
    Tensor x = rows(batch.inputs, row0, mb_sequences_);
    Tensor tgt = rows(batch.targets, row0, mb_sequences_).reshaped(
        {static_cast<int64_t>(mb_sequences_) * batch.targets.size(1)});
    Tensor logits = module_.forward(x, /*mb=*/10000 + count);
    auto [loss, dlogits] = model::cross_entropy(logits, tgt, 1.0f);
    (void)dlogits;
    total += loss;
    // Free the forward caches by running a zero backward? Cheaper: backward
    // with zero gradient would still cost compute; instead run backward on
    // the real gradient and discard grads afterwards.
    module_.backward(dlogits, 10000 + count);
  }
  for (model::Param* p : module_.params()) p->zero_grad();
  return count > 0 ? total / static_cast<float>(count) : 0.0f;
}

}  // namespace hanayo::runtime
