#pragma once
// Paged KV-cache store: pooled fixed-size pages + cross-request prefix
// sharing.
//
// The seed design gives every decode stream one contiguous worst-case KV
// region (model/attention.cpp, KvSlot), so max_batch is gated on peak
// full-context memory and identical prompt heads are re-prefilled per
// request. This subsystem replaces the slab with fixed-size pages drawn
// from a pooled free-list allocator (the rt_pool idiom: O(1) alloc/free,
// zero steady-state heap traffic) and layers a radix-tree prefix index on
// top so requests with a common prompt prefix share immutable pages:
//
//   * A page holds `page_tokens` K rows and `page_tokens` V rows for ONE
//     attention layer ("lane"), fp32 or fp16 per `kv_fp16` — one uniform
//     page size per store, so the free list is a plain stack.
//   * Each (lane, slot) owns a page table: the ordered page ids covering
//     that stream's cached positions. Attention appends one row per
//     decoded token and gathers [0, len) back into contiguous panels, so
//     the decode kernels run unchanged and incremental decode stays
//     bitwise identical to a full-prefix recompute.
//   * After a prefill, the prompt's pages are published into a radix tree
//     keyed by token ids (one node = one page). A later request walks the
//     tree at admission, adopts every matching page (full-page matches and
//     a partial match of the last node), and skips prefill for the shared
//     tokens. Shared pages are immutable: a write into a page referenced
//     by the tree or by another slot copies it first (copy-on-write on
//     divergence).
//   * Admission is priced in pages, not worst-case slots: open_slot()
//     reserves the worst-case page count for the request's final length
//     minus its fully shared prefix, so a stream admitted once can never
//     exhaust the pool mid-decode. When the pool runs dry the caller
//     evicts unreferenced cached pages and retries, or rejects/requeues
//     under its QueuePolicy.
//
// Threading contract (matches the serving runtime's phase structure): the
// pipeline thread calls open_slot/publish/drop_slot/evict between passes;
// worker threads call append/gather for their own lanes during a pass.
// Page tables and page payloads are single-writer by construction (a lane
// belongs to one worker, tree mutations happen only between passes); the
// shared pool state — free list, refcounts, reservations, counters — is
// guarded by one leaf-rank mutex (sync::Rank::KvPool) so lanes on
// different workers can allocate concurrently. The mutex is never held
// across kernels or parallel_for.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sync.hpp"

namespace hanayo::runtime {

/// Construction-time shape of a KvStore. All fields are required;
/// `pool_pages` must already be resolved (the serving runtime derives a
/// default from max_batch x ceil(seq / page_tokens) x lanes).
struct KvStoreConfig {
  int page_tokens = 16;    ///< token rows per page (per lane)
  int64_t pool_pages = 0;  ///< total pages in the pool, shared by all lanes
  int64_t row_elems = 0;   ///< floats per K (and per V) row: batch * hidden
  int max_slots = 0;       ///< decode streams (page-table sets per lane)
  bool fp16 = false;       ///< half-precision page payloads (kv_fp16)
  bool prefix_cache = true;  ///< publish/lookup the radix prefix index
};

/// Pooled paged KV storage with prefix sharing. One instance per pipeline
/// replica, shared by every attention layer of every stage worker.
class KvStore {
 public:
  explicit KvStore(const KvStoreConfig& cfg);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Registers one attention layer; returns its lane id. Called once per
  /// layer at wiring time (before any slot is opened), in deterministic
  /// construction order.
  int register_lane();

  int lanes() const { return lanes_; }
  int page_tokens() const { return cfg_.page_tokens; }
  int64_t pool_pages() const { return cfg_.pool_pages; }
  int64_t page_bytes() const;

  /// Worst-case pages (across all lanes) a stream of `final_len` cached
  /// tokens needs when `shared_tokens` of its prompt arrive from the
  /// prefix cache. This is what open_slot() reserves.
  int64_t pages_needed(int64_t final_len, int64_t shared_tokens) const;

  /// Admits a stream into `slot`: looks up the longest cached prefix of
  /// `ids` (capped at ids.size() - 1 — a prefill must compute at least one
  /// token to produce logits), installs the shared pages into every lane's
  /// page table, and reserves worst-case pages for `final_len` total
  /// cached tokens. Returns false — with no state change — when the pool
  /// cannot cover the reservation; `*shared_out` gets the shared token
  /// count on success.
  bool open_slot(int slot, const std::vector<int64_t>& ids, int64_t final_len,
                 int64_t* shared_out);

  /// Publishes `slot`'s prompt pages into the prefix tree (no-op when the
  /// prefix cache is off). Call once, right after the stream's prefill
  /// pass. Existing nodes win on conflict, except that a cached partial
  /// page extended by this prompt is upgraded in place.
  void publish(int slot, const std::vector<int64_t>& ids);

  /// Releases every page reference and the remaining reservation of
  /// `slot`. Pages also referenced by the tree (or by other slots) stay
  /// resident; exclusively owned pages return to the free list.
  void drop_slot(int slot);

  /// Appends one token row (fp32 `krow` / `vrow`, row_elems each) to
  /// `lane`'s table for `slot`, converting to fp16 when configured and
  /// copying-on-write when the target page is shared. Worker-thread API.
  void append(int lane, int slot, const float* krow, const float* vrow);

  /// Gathers rows [0, len) of `lane`'s cache for `slot` into contiguous
  /// fp32 panels (`kout` / `vout`, len * row_elems floats each),
  /// dequantizing fp16 pages. Worker-thread API.
  void gather(int lane, int slot, int64_t len, float* kout,
              float* vout) const;

  /// Cached tokens appended (or adopted from the prefix cache) for
  /// (lane, slot). Decode-order validation hook for attention.
  int64_t lane_len(int lane, int slot) const;

  /// Drops every prefix-tree entry whose pages no open slot references;
  /// returns the number of pages freed. This is the preemption valve the
  /// runtime pulls before rejecting an admission.
  int64_t evict_unreferenced();

  /// Drops the whole prefix tree (slot-held pages stay resident).
  void clear_prefix_cache();

  /// Pages currently allocated (slot- or tree-referenced).
  int64_t pages_in_use() const;
  /// High-water mark of pages_in_use() over the store's lifetime.
  int64_t peak_pages() const;
  /// Pages referenced by at least one open slot — the paged analogue of
  /// slot_bytes()'s leak probe: zero once every stream has dropped.
  int64_t slot_ref_pages() const;
  int64_t free_pages() const;
  /// Bytes behind pages_in_use() / slot_ref_pages().
  int64_t bytes_in_use() const;
  int64_t slot_ref_bytes() const;

  /// Admissions that adopted a non-empty cached prefix / prompt tokens
  /// those admissions skipped at prefill (== prefill tokens saved).
  int64_t prefix_hits() const;
  int64_t prefix_hit_tokens() const;

 private:
  struct Page {
    int32_t refs = 0;       ///< open-slot references
    int32_t tree_refs = 0;  ///< 0/1: referenced by a prefix-tree node
  };
  struct LaneSlot {
    std::vector<int32_t> table;  ///< page ids covering rows [0, len)
    int64_t len = 0;
  };
  struct SlotInfo {
    bool open = false;
    int64_t reserved = 0;  ///< pages still promised to this slot
    int64_t shared = 0;    ///< prefix tokens adopted at open
  };
  struct Node;  // radix-tree node: tokens chunk + one page per lane

  LaneSlot& lane_slot(int lane, int slot);
  const LaneSlot& lane_slot(int lane, int slot) const;
  // Pool primitives; all require mu_ held.
  int32_t alloc_page_locked(int slot);
  void ref_page_locked(int32_t p);
  void unref_page_locked(int32_t p);
  void tree_unref_locked(int32_t p);
  void free_if_unreferenced_locked(int32_t p);
  int64_t prune_nodes_locked(std::vector<std::unique_ptr<Node>>& nodes);
  void drop_nodes_locked(std::vector<std::unique_ptr<Node>>& nodes);
  bool page_shared(int32_t p) const;
  // Payload access (no lock: single-writer pages).
  float* k_row32(int32_t page, int row);
  uint16_t* k_row16(int32_t page, int row);
  int64_t page_elems() const;  ///< floats (or halves) per page: 2 * pg * row

  KvStoreConfig cfg_;
  int lanes_ = 0;
  std::vector<float> data32_;     ///< fp32 payload: pool_pages * page_elems
  std::vector<uint16_t> data16_;  ///< fp16 payload (kv_fp16)

  mutable sync::Mutex<sync::Rank::KvPool> mu_;
  std::vector<Page> pages_;
  std::vector<int32_t> free_;         ///< free-list stack (pre-reserved)
  std::vector<LaneSlot> lane_slots_;  ///< [lane * max_slots + slot]
  std::vector<SlotInfo> slots_;
  std::vector<std::unique_ptr<Node>> roots_;
  int64_t reserved_total_ = 0;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t slot_ref_pages_ = 0;
  int64_t hits_ = 0;
  int64_t hit_tokens_ = 0;
};

}  // namespace hanayo::runtime
