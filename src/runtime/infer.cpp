#include "runtime/infer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "runtime/kv_store.hpp"
#include "schedule/validate.hpp"

namespace hanayo::runtime {

using comm::Kind;
using comm::make_tag;
using schedule::Action;
using schedule::Op;
using tensor::Rng;
using tensor::Tensor;

double serve_clock_s() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

double quantile_nearest_rank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  auto rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return samples[rank - 1];
}

FaultInjection FaultInjection::from_env() {
  FaultInjection f;
  const char* s = std::getenv("HANAYO_FAULT_SEED");
  if (s == nullptr || *s == '\0') return f;
  f.seed = std::strtoull(s, nullptr, 10);
  if (f.seed != 0) {
    f.slow_pass_prob = 0.25;
    f.slow_pass_us = 200;
  }
  return f;
}

int kv_lanes(const model::ModelConfig& model) {
  int lanes = 0;
  for (const model::LayerDesc& d : model.layer_descs()) {
    if (d.type == model::LayerDesc::Type::Block ||
        d.type == model::LayerDesc::Type::AttnHalf) {
      ++lanes;
    }
  }
  return lanes;
}

// Worst-case page demand of one full-context stream: its KV rows for every
// lane, plus — when the prefix cache is live — one copy-on-write spare page
// per lane (after a stream publishes its prefix, appending to the now-shared
// tail page copies it first). This is the unit both the default pool sizing
// and the derived queue cap price in, so a default-sized pool always admits
// max_batch worst-case streams.
static int64_t worst_case_stream_pages(const InferConfig& cfg) {
  const int64_t pg = std::max(1, cfg.kv_page_tokens);
  const int64_t per_seq =
      (cfg.model.seq + pg - 1) / pg + (cfg.prefix_cache ? 1 : 0);
  return per_seq * std::max(1, kv_lanes(cfg.model));
}

int64_t derived_pool_pages(const InferConfig& cfg) {
  if (cfg.kv_pool_pages > 0) return cfg.kv_pool_pages;
  return static_cast<int64_t>(std::max(1, cfg.max_batch)) *
         worst_case_stream_pages(cfg);
}

int derived_queue_cap(const InferConfig& cfg) {
  int streams = std::max(1, cfg.max_batch);
  if (cfg.paged_kv) {
    // Pool-derived stream count: how many worst-case full-context
    // sequences the page pool can hold at once (never above max_batch —
    // slots still bound concurrency). With the default pool sizing this
    // equals max_batch, so paging never shrinks the derived cap.
    const int64_t per_seq = worst_case_stream_pages(cfg);
    const int64_t fit = derived_pool_pages(cfg) / std::max<int64_t>(1, per_seq);
    streams = static_cast<int>(
        std::min<int64_t>(std::max<int64_t>(fit, 1), streams));
  }
  return std::max(1, cfg.dp) * streams;
}

void Sampling::validate() const {
  if (kind == Kind::TopK && k < 1) {
    throw std::invalid_argument("sampling: top-k needs k >= 1");
  }
  if (kind == Kind::TopP && !(p > 0.0f && p <= 1.0f)) {
    throw std::invalid_argument("sampling: top-p needs p in (0, 1]");
  }
  if (stochastic() && !(temperature > 0.0f)) {
    throw std::invalid_argument("sampling: temperature must be > 0");
  }
}

int64_t greedy_argmax_last_row(const Tensor& logits) {
  const int64_t t = logits.size(1), V = logits.size(2);
  const float* row = logits.data() + (t - 1) * V;
  int64_t best = 0;
  for (int64_t v = 1; v < V; ++v) {
    if (row[v] > row[best]) best = v;
  }
  return best;
}

int64_t sample_last_row(const Tensor& logits, const Sampling& s, float u) {
  if (!s.stochastic()) return greedy_argmax_last_row(logits);
  const int64_t t = logits.size(1), V = logits.size(2);
  const float* row = logits.data() + (t - 1) * V;
  const double T = static_cast<double>(s.temperature);

  if (s.kind == Sampling::Kind::TopK) {
    // Candidate pool: the k best ids, ranked (logit desc, index asc). The
    // rank order doubles as the CDF walk order, so ties and rounding
    // resolve identically on every backend, and u = 0 always lands on the
    // most likely candidate.
    const int64_t k = std::min<int64_t>(std::max(s.k, 1), V);
    std::vector<int64_t> cand(static_cast<size_t>(V));
    std::iota(cand.begin(), cand.end(), int64_t{0});
    const auto by_logit = [row](int64_t a, int64_t b) {
      return row[a] > row[b] || (row[a] == row[b] && a < b);
    };
    std::partial_sort(cand.begin(), cand.begin() + k, cand.end(), by_logit);
    cand.resize(static_cast<size_t>(k));
    // Stable softmax at temperature T; invert the CDF at u. Sequential
    // double accumulation: deterministic given identical logits.
    const double mx = static_cast<double>(row[cand.front()]);
    double total = 0.0;
    std::vector<double> cum(cand.size());
    for (size_t i = 0; i < cand.size(); ++i) {
      total += std::exp((static_cast<double>(row[cand[i]]) - mx) / T);
      cum[i] = total;
    }
    const double target = static_cast<double>(u) * total;
    for (size_t i = 0; i < cand.size(); ++i) {
      if (cum[i] > target) return cand[i];
    }
    return cand.back();
  }

  if (s.kind == Sampling::Kind::TopP) {
    // Nucleus pool: rank the whole vocabulary (logit desc, index asc), take
    // the shortest prefix whose softmax mass reaches p of the total, then
    // invert the pool's CDF at u. Rank order doubles as the walk order, so
    // ties and rounding resolve identically on every backend; p = 1 admits
    // the full vocabulary (the same distribution as Temperature, though the
    // two walk orders map the same u to different tokens), and u = 0 lands
    // on the most likely candidate. One O(V log V) sort plus sequential
    // double accumulation — deterministic given identical logits.
    std::vector<int64_t> cand(static_cast<size_t>(V));
    std::iota(cand.begin(), cand.end(), int64_t{0});
    std::sort(cand.begin(), cand.end(), [row](int64_t a, int64_t b) {
      return row[a] > row[b] || (row[a] == row[b] && a < b);
    });
    const double mx = static_cast<double>(row[cand.front()]);
    double total = 0.0;
    std::vector<double> mass(cand.size());
    for (size_t i = 0; i < cand.size(); ++i) {
      mass[i] = std::exp((static_cast<double>(row[cand[i]]) - mx) / T);
      total += mass[i];
    }
    const double want = static_cast<double>(s.p) * total;
    double pool = 0.0;
    size_t n = 0;
    while (n < cand.size()) {
      pool += mass[n];
      ++n;
      if (pool >= want) break;  // always admits at least one candidate
    }
    const double target = static_cast<double>(u) * pool;
    double cum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      cum += mass[i];
      if (cum > target) return cand[i];
    }
    return cand[n - 1];
  }

  // Temperature over the full vocabulary: three O(V) passes in ascending
  // index order, no scratch — this runs per generated token on the serving
  // hot path. The walk order is arbitrary for a CDF inversion; the
  // cross-backend guarantee only needs it fixed and the accumulation
  // sequential (identical bits wherever the logits came from).
  double mx = static_cast<double>(row[0]);
  for (int64_t v = 1; v < V; ++v) {
    mx = std::max(mx, static_cast<double>(row[v]));
  }
  double total = 0.0;
  for (int64_t v = 0; v < V; ++v) {
    total += std::exp((static_cast<double>(row[v]) - mx) / T);
  }
  const double target = static_cast<double>(u) * total;
  double cum = 0.0;
  for (int64_t v = 0; v < V; ++v) {
    cum += std::exp((static_cast<double>(row[v]) - mx) / T);
    if (cum > target) return v;
  }
  return V - 1;
}

bool is_stop_token(const std::vector<int64_t>& stop_tokens, int64_t tok) {
  return std::find(stop_tokens.begin(), stop_tokens.end(), tok) !=
         stop_tokens.end();
}

ServeStats merge_stats(const std::vector<ServeStats>& per_replica) {
  ServeStats m;
  for (const ServeStats& s : per_replica) {
    m.requests += s.requests;
    m.prompt_tokens += s.prompt_tokens;
    m.generated_tokens += s.generated_tokens;
    m.prefill_passes += s.prefill_passes;
    m.decode_passes += s.decode_passes;
    m.prefill_s += s.prefill_s;
    m.decode_s += s.decode_s;
    m.peak_kv_bytes += s.peak_kv_bytes;
    m.kv_pages_in_use += s.kv_pages_in_use;
    m.kv_pages_peak += s.kv_pages_peak;
    m.prefix_hits += s.prefix_hits;
    m.prefix_hit_tokens += s.prefix_hit_tokens;
    m.submitted += s.submitted;
    m.completed += s.completed;
    m.rejected += s.rejected;
    m.cancelled += s.cancelled;
    m.timed_out += s.timed_out;
    m.ttft_samples_s.insert(m.ttft_samples_s.end(), s.ttft_samples_s.begin(),
                            s.ttft_samples_s.end());
    m.per_token_samples_s.insert(m.per_token_samples_s.end(),
                                 s.per_token_samples_s.begin(),
                                 s.per_token_samples_s.end());
  }
  return m;
}

double serve_wall_estimate_s(const ServeStats& totals,
                             const std::vector<ServeStats>& replicas, int dp) {
  if (replicas.empty()) {
    return (totals.prefill_s + totals.decode_s) / std::max(1, dp);
  }
  double w = 0.0;
  for (const ServeStats& r : replicas) w = std::max(w, r.prefill_s + r.decode_s);
  return w;
}

double serve_prefill_wall_estimate_s(const ServeStats& totals,
                                     const std::vector<ServeStats>& replicas,
                                     int dp) {
  if (replicas.empty()) return totals.prefill_s / std::max(1, dp);
  double w = 0.0;
  for (const ServeStats& r : replicas) w = std::max(w, r.prefill_s);
  return w;
}

double serve_prefill_tokens_per_s(const ServeStats& totals,
                                  const std::vector<ServeStats>& replicas,
                                  int dp) {
  const double wall = serve_prefill_wall_estimate_s(totals, replicas, dp);
  return wall > 0.0 ? static_cast<double>(totals.prompt_tokens) / wall : 0.0;
}

double serve_tokens_per_s(const ServeStats& totals,
                          const std::vector<ServeStats>& replicas, int dp) {
  const double wall = serve_wall_estimate_s(totals, replicas, dp);
  return wall > 0.0 ? static_cast<double>(totals.generated_tokens) / wall
                    : 0.0;
}

double serve_per_token_latency_s(const ServeStats& totals) {
  return totals.decode_passes > 0 ? totals.decode_s / totals.decode_passes
                                  : 0.0;
}

InferRequest make_infer_request(Tensor prompt, int max_new_tokens,
                                int default_new_tokens, int64_t model_seq,
                                int64_t id, double deadline_s,
                                double default_deadline_s) {
  if (prompt.dim() == 1) prompt = prompt.reshaped({1, prompt.numel()});
  if (prompt.dim() != 2 || prompt.size(0) != 1 || prompt.numel() < 1) {
    throw std::invalid_argument("enqueue: prompt must be [t] or [1, t] ids");
  }
  const int want = max_new_tokens > 0 ? max_new_tokens : default_new_tokens;
  if (prompt.size(1) + want - 1 > model_seq) {
    throw std::invalid_argument(
        "enqueue: prompt + continuation exceeds the model's " +
        std::to_string(model_seq) + " positions");
  }
  InferRequest r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = want;
  r.enqueue_s = serve_clock_s();
  const double sla = deadline_s > 0.0 ? deadline_s : default_deadline_s;
  r.deadline_s = sla > 0.0 ? r.enqueue_s + sla : 0.0;
  return r;
}

namespace {

/// Terminal Completion for a request aborted without (or after losing) a KV
/// slot: reject at enqueue, cancel/timeout while queued.
Completion unserved_completion(const InferRequest& r, StopReason why) {
  Completion c;
  c.id = r.id;
  c.prompt_tokens = r.prompt.size(1);
  c.stop_reason = why;
  c.enqueue_s = r.enqueue_s;
  c.finish_s = serve_clock_s();
  return c;
}

}  // namespace

// ------------------------------------------------------------ RequestQueue

void RequestQueue::configure(QueuePolicy policy, int cap) {
  std::lock_guard lk(mu_);
  policy_ = policy;
  cap_ = cap;
}

std::vector<InferRequest> RequestQueue::push(InferRequest r) {
  std::lock_guard lk(mu_);
  std::vector<InferRequest> refused;
  const bool bounded = policy_ != QueuePolicy::Unbounded && cap_ > 0;
  if (bounded && policy_ == QueuePolicy::RejectNew &&
      static_cast<int>(q_.size()) >= cap_) {
    refused.push_back(std::move(r));
    return refused;
  }
  q_.push_back(std::move(r));
  if (bounded && policy_ == QueuePolicy::ShedOldest) {
    while (static_cast<int>(q_.size()) > cap_) {
      refused.push_back(std::move(q_.front()));
      q_.pop_front();
    }
  }
  return refused;
}

void RequestQueue::push_front(InferRequest r) {
  std::lock_guard lk(mu_);
  q_.push_front(std::move(r));
}

bool RequestQueue::pop(InferRequest& out) {
  std::lock_guard lk(mu_);
  if (q_.empty()) return false;
  out = std::move(q_.front());
  q_.pop_front();
  return true;
}

std::vector<InferRequest> RequestQueue::take_expired(double now_s) {
  std::lock_guard lk(mu_);
  std::vector<InferRequest> out;
  for (auto it = q_.begin(); it != q_.end();) {
    if (it->deadline_s > 0.0 && now_s > it->deadline_s) {
      out.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void RequestQueue::cancel(int64_t id) {
  std::lock_guard lk(mu_);
  if (std::find(cancelled_.begin(), cancelled_.end(), id) ==
      cancelled_.end()) {
    cancelled_.push_back(id);
  }
}

bool RequestQueue::consume_cancelled(int64_t id) {
  std::lock_guard lk(mu_);
  const auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

bool RequestQueue::any_cancelled() const {
  std::lock_guard lk(mu_);
  return !cancelled_.empty();
}

bool RequestQueue::empty() const {
  std::lock_guard lk(mu_);
  return q_.empty();
}

int RequestQueue::size() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(q_.size());
}

// ----------------------------------------------------------- InferWorker

/// Activation-footprint estimate for one worker's pass arena, derived from
/// the model/schedule shapes the way sim/memory derives weight bytes. A
/// pass's arena high-water is the *sum* of its allocations (bump pointers
/// reclaim only at reset), so the worst case — every stream prefilling a
/// full context — sums the per-layer temporaries (QKV/MLP panels, O(t*h)
/// floats each; attention probs, O(heads*t^2)) over this device's share of
/// the layers plus one logits row. The estimate is deliberately generous
/// (the arena retains whatever it grows to) but capped: sizing is a hint,
/// growth remains legal.
static int64_t derived_arena_bytes(const InferConfig& cfg) {
  if (cfg.arena_reserve_mb > 0) {
    return static_cast<int64_t>(cfg.arena_reserve_mb) << 20;
  }
  const model::ModelConfig& m = cfg.model;
  const int64_t t = std::max<int64_t>(1, m.seq);
  const int64_t h = std::max<int64_t>(1, m.hidden);
  const int64_t stages = std::max(1, cfg.sched.P);
  const int64_t layers_per_dev = (m.layers + stages - 1) / stages + 2;
  const int64_t per_layer = 16 * t * h + m.heads * t * t;
  const int64_t floats =
      static_cast<int64_t>(std::max(1, cfg.max_batch)) *
      (per_layer * layers_per_dev + 2 * t * std::max<int64_t>(h, m.vocab));
  const int64_t bytes = floats * static_cast<int64_t>(sizeof(float));
  return std::min<int64_t>(bytes, int64_t{256} << 20);
}

/// One serving pipeline worker: owns the local stage chunks (the same
/// partition the trainer would build) and interprets the forward-only action
/// list of one pass, with the trainer's receive prefetching. The last-stage
/// worker additionally turns each micro-batch's final-row logits into the
/// next token via the configured sampling policy (the micro-batch's uniform
/// draw rides in on its PassEntry).
///
/// Zero-allocation steady state: every pass-lifetime tensor this worker
/// creates (received activations, chunk outputs, kernel scratch) draws from
/// the worker's own arena, reset at pass entry; the interpreter's working
/// state (activation slots, posted receives, next tokens) lives in member
/// vectors that are cleared — never shrunk — per pass.
class InferWorker {
 public:
  InferWorker(const InferConfig& cfg, const schedule::Placement& pl, int rank,
              comm::Communicator comm)
      : rank_(rank), prefetch_depth_(cfg.prefetch_depth),
        sampling_(cfg.sampling), comm_(std::move(comm)),
        arena_(derived_arena_bytes(cfg)) {
    const auto descs = cfg.model.layer_descs();
    const auto ranges =
        model::partition_layers(descs, pl.stages(), cfg.model.seq);
    for (int c = 0; c < pl.chunks_per_device(); ++c) {
      const model::StageRange& r =
          ranges[static_cast<size_t>(pl.stage_of(rank, c))];
      chunks_.emplace_back(descs, r.begin, r.end, cfg.seed,
                           cfg.model.init_std);
      if (cfg.kv_fp16) chunks_.back().set_kv_fp16(true);
      // Pre-reserve every stream's KV storage to the model's positional
      // capacity: decode never grows KV mid-pass (the growth would be a
      // per-pass heap allocation — and under an active arena, a lifetime
      // bug).
      chunks_.back().set_kv_capacity(cfg.model.seq);
    }
    // Stable Posted entries: `slot` addresses are handed to irecv, so the
    // vector is sized once (outstanding <= prefetch_depth, +1 for the
    // not-prefetched inline post) and never reallocated.
    posted_.resize(static_cast<size_t>(std::max(0, prefetch_depth_)) + 1);
  }

  /// Interprets this device's script for one pass. `plan[mb]` describes
  /// micro-batch mb's decode stream.
  void run_pass(const schedule::Schedule& sched,
                const std::vector<PassEntry>& plan) {
    // Reset-at-entry (see ArenaScope): the previous pass's payloads —
    // including activations sent to peers — were all consumed before its
    // Flush barrier released us, so reclaiming them here is safe.
    tensor::ArenaScope pass_arena(arena_);
    const schedule::DeviceScript& script =
        sched.scripts[static_cast<size_t>(rank_)];
    const int S = sched.placement.stages();
    // Activation slot (mb, pos) lives at mb*(S+1) + (pos+1); an empty
    // tensor (numel 0 — moves leave tensors empty) marks a vacant slot.
    act_.clear();
    act_.resize(plan.size() * static_cast<size_t>(S + 1));
    const auto act_at = [&](int mb, int pos) -> Tensor& {
      return act_[static_cast<size_t>(mb) * static_cast<size_t>(S + 1) +
                  static_cast<size_t>(pos + 1)];
    };
    next_tokens_.assign(plan.size(), -1);
    for (const PassEntry& e : plan) {
      if (e.fresh) {
        for (model::StageModule& c : chunks_) c.drop_slot(e.slot);
      }
    }

    // Receive prefetching, as in Worker::run_iteration (paper §4.2).
    for (Posted& p : posted_) {
      p.live = false;
      p.req.reset();
    }
    size_t scan = 0;
    int outstanding = 0;
    const auto find_posted = [&](size_t idx) -> Posted* {
      for (Posted& p : posted_) {
        if (p.live && p.idx == idx) return &p;
      }
      return nullptr;
    };
    const auto post_recv = [&](size_t idx) {
      Posted* ps = nullptr;
      for (Posted& p : posted_) {
        if (!p.live) {
          ps = &p;
          break;
        }
      }
      // posted_ holds prefetch_depth+1 entries and at most prefetch_depth
      // are outstanding before an inline post, so a free one always exists.
      const Action& a = script.actions[idx];
      ps->idx = idx;
      ps->live = true;
      ps->slot = Tensor();
      ps->req = comm_.irecv(a.peer, make_tag(Kind::Activation, a.mb, a.pos - 1),
                            &ps->slot);
    };
    const auto prefetch = [&] {
      while (scan < script.actions.size() && outstanding < prefetch_depth_) {
        const Op op = script.actions[scan].op;
        if (op == Op::Flush) break;
        if (op == Op::RecvAct) {
          post_recv(scan);
          ++outstanding;
        }
        ++scan;
      }
    };
    prefetch();

    for (size_t i = 0; i < script.actions.size(); ++i) {
      const Action& a = script.actions[i];
      switch (a.op) {
        case Op::LoadInput:
          act_at(a.mb, -1) = plan[static_cast<size_t>(a.mb)].input;
          break;

        case Op::RecvAct: {
          Posted* ps = find_posted(i);
          if (ps == nullptr) {
            post_recv(i);
            ++outstanding;
            if (scan <= i) scan = i + 1;
            ps = find_posted(i);
          }
          ps->req->wait();
          --outstanding;
          act_at(a.mb, a.pos - 1) = std::move(ps->slot);
          ps->req.reset();
          ps->live = false;
          prefetch();
          break;
        }

        case Op::Forward: {
          Tensor& x = act_at(a.mb, a.pos == 0 ? -1 : a.pos - 1);
          if (x.numel() == 0) {
            throw std::logic_error("InferWorker: missing input activation");
          }
          const PassEntry& e = plan[static_cast<size_t>(a.mb)];
          Tensor y =
              chunks_[static_cast<size_t>(a.chunk)].decode(x, e.pos0, e.slot);
          x = Tensor();
          if (a.pos == S - 1) {
            next_tokens_[static_cast<size_t>(a.mb)] =
                sample_last_row(y, sampling_, e.u);
          } else {
            act_at(a.mb, a.pos) = std::move(y);
          }
          prefetch();
          break;
        }

        case Op::SendAct: {
          Tensor& y = act_at(a.mb, a.pos);
          if (y.numel() == 0) {
            throw std::logic_error("InferWorker: missing activation to send");
          }
          comm_.isend(a.peer, make_tag(Kind::Activation, a.mb, a.pos),
                      std::move(y));
          y = Tensor();
          break;
        }

        case Op::Flush:
          comm_.barrier();
          break;

        default:
          throw std::logic_error(
              "InferWorker: backward-phase action in forward-only schedule");
      }
    }
  }

  const std::vector<int64_t>& next_tokens() const { return next_tokens_; }

  /// Attaches the replica's paged store to every attention layer this
  /// worker owns (each registers one lane). Called once at construction
  /// time, before any decode stream exists.
  void set_kv_store(KvStore* store) {
    for (model::StageModule& c : chunks_) c.set_kv_store(store);
  }

  void drop_slot(int slot) {
    for (model::StageModule& c : chunks_) c.drop_slot(slot);
  }

  int64_t kv_bytes() const {
    int64_t b = 0;
    for (const model::StageModule& c : chunks_) b += c.slot_bytes();
    return b;
  }

 private:
  /// One posted-ahead receive; `slot` must stay address-stable while the
  /// request is outstanding, so these live in a fixed-size vector.
  struct Posted {
    size_t idx = 0;
    bool live = false;
    comm::Request req;
    Tensor slot;
  };

  int rank_;
  int prefetch_depth_;
  Sampling sampling_;
  comm::Communicator comm_;
  std::vector<model::StageModule> chunks_;
  std::vector<int64_t> next_tokens_;
  std::vector<Tensor> act_;  ///< flat (mb, pos) slots, rebuilt per pass
  std::vector<Posted> posted_;
  tensor::Arena arena_;  ///< pass-lifetime allocations, reset per pass
};

// ------------------------------------------------------ InferencePipeline

InferencePipeline::InferencePipeline(InferConfig cfg, RequestQueue* shared,
                                     int replica_index)
    : cfg_(std::move(cfg)), replica_index_(replica_index),
      queue_(shared ? shared : &own_queue_),
      driver_arena_(int64_t{1} << 20) {
  if (!cfg_.model.causal) {
    throw std::invalid_argument(
        "InferencePipeline: decode needs a causal model (each new "
        "token may only extend, never revise, the prefix)");
  }
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("InferencePipeline: max_batch < 1");
  }
  if (cfg_.max_new_tokens < 1) {
    throw std::invalid_argument("InferencePipeline: max_new_tokens < 1");
  }
  cfg_.sampling.validate();
  if (!cfg_.fault.enabled()) cfg_.fault = FaultInjection::from_env();
  if (cfg_.fault.enabled()) {
    fault_rng_ = Rng(
        Rng::split(cfg_.fault.seed, static_cast<uint64_t>(replica_index_)));
  }
  if (shared == nullptr) {
    // Standalone replica: admission control applies to the owned queue too
    // (one replica's worth of the derived slot-turnover capacity — or the
    // pool-derived stream count when paging is on).
    InferConfig solo = cfg_;
    solo.dp = 1;
    own_queue_.configure(cfg_.queue_policy, cfg_.max_queue > 0
                                                ? cfg_.max_queue
                                                : derived_queue_cap(solo));
  }
  // Compiling B=1 up front surfaces unsupported algorithms (Chimera,
  // PipeDream) and infeasible stage counts at construction time.
  (void)schedule_for(1);
  placement_ = schedule::make_placement(cfg_.sched);
  last_stage_device_ = placement_.at(0, placement_.stages() - 1).device;

  const int P = cfg_.sched.P;
  world_ = std::make_unique<comm::World>(P);
  for (int d = 0; d < P; ++d) {
    workers_.push_back(std::make_unique<InferWorker>(
        cfg_, placement_, d, comm::Communicator(world_.get(), d)));
  }
  if (cfg_.paged_kv) {
    KvStoreConfig kc;
    kc.page_tokens = cfg_.kv_page_tokens;
    kc.pool_pages = derived_pool_pages(cfg_);
    kc.row_elems = cfg_.model.hidden;
    kc.max_slots = cfg_.max_batch;
    kc.fp16 = cfg_.kv_fp16;
    kc.prefix_cache = cfg_.prefix_cache;
    store_ = std::make_unique<KvStore>(kc);
    for (auto& w : workers_) w->set_kv_store(store_.get());
  }
  for (int s = cfg_.max_batch - 1; s >= 0; --s) free_slots_.push_back(s);
  active_.reserve(static_cast<size_t>(cfg_.max_batch));
  still_.reserve(static_cast<size_t>(cfg_.max_batch));
  plan_.reserve(static_cast<size_t>(cfg_.max_batch));

  // Persistent pass gang: spawned once here, woken per pass by epoch.
  gang_errors_.resize(workers_.size());
  gang_threads_.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    gang_threads_.emplace_back([this, i] { gang_main(i); });
  }
}

InferencePipeline::~InferencePipeline() {
  {
    std::lock_guard lk(gang_mu_);
    gang_quit_ = true;
  }
  gang_cv_.notify_all();
  for (std::thread& t : gang_threads_) t.join();
}

void InferencePipeline::gang_main(size_t i) {
  uint64_t seen = 0;
  for (;;) {
    const schedule::Schedule* sched = nullptr;
    {
      std::unique_lock lk(gang_mu_);
      gang_cv_.wait(lk, [&] { return gang_quit_ || gang_epoch_ != seen; });
      if (gang_quit_) return;
      seen = gang_epoch_;
      sched = gang_sched_;
    }
    // The pass body runs with no gang lock held: worker-side locks
    // (IntraOpSubmit, Mailbox, ...) start from an empty held set.
    try {
      workers_[i]->run_pass(*sched, plan_);
    } catch (...) {
      gang_errors_[i] = std::current_exception();  // slot i: this thread only
    }
    {
      std::lock_guard lk(gang_mu_);
      ++gang_done_;
    }
    gang_cv_.notify_all();
  }
}

const schedule::Schedule& InferencePipeline::schedule_for(int batch) {
  auto it = sched_cache_.find(batch);
  if (it == sched_cache_.end()) {
    schedule::ScheduleRequest req = cfg_.sched;
    req.B = batch;
    schedule::Schedule sched = schedule::make_forward_schedule(req);
    const schedule::ValidationResult vr = schedule::validate(sched);
    if (!vr.ok) {
      throw std::logic_error("InferencePipeline: invalid schedule: " + vr.error);
    }
    it = sched_cache_.emplace(batch, std::move(sched)).first;
  }
  return it->second;
}

int64_t InferencePipeline::slot_bytes() const {
  if (store_ != nullptr) return store_->slot_ref_bytes();
  int64_t b = 0;
  for (const auto& w : workers_) b += w->kv_bytes();
  return b;
}

int64_t InferencePipeline::pages_in_use() const {
  return store_ != nullptr ? store_->pages_in_use() : 0;
}

void InferencePipeline::clear_prefix_cache() {
  if (store_ != nullptr) store_->clear_prefix_cache();
}

int64_t InferencePipeline::enqueue(tensor::Tensor prompt, int max_new_tokens,
                                   TokenCallback on_token, double deadline_s) {
  InferRequest r = make_infer_request(std::move(prompt), max_new_tokens,
                                      cfg_.max_new_tokens, cfg_.model.seq,
                                      next_id_++, deadline_s, cfg_.deadline_s);
  r.on_token = std::move(on_token);
  const int64_t id = r.id;
  std::vector<InferRequest> refused = queue_->push(std::move(r));
  std::lock_guard lk(enqueue_mu_);
  ++enqueue_stats_.submitted;
  for (const InferRequest& ref : refused) {
    ++enqueue_stats_.rejected;
    rejected_done_.push_back(unserved_completion(ref, StopReason::Rejected));
  }
  return id;
}

void InferencePipeline::finish_unserved(const InferRequest& r,
                                        StopReason why) {
  done_.push_back(unserved_completion(r, why));
  if (why == StopReason::Cancelled) {
    ++stats_.cancelled;
  } else if (why == StopReason::Rejected) {
    ++stats_.rejected;
  } else {
    ++stats_.timed_out;
  }
}

void InferencePipeline::admit() {
  // A request counts toward this replica's stats when the replica actually
  // admits it — with a shared queue, that is what makes per-replica stats
  // merge into exact cluster totals.
  const double now = serve_clock_s();
  // Deadline sweep of the whole queue first: queued requests time out
  // within one pass of their deadline even while every slot is busy.
  for (const InferRequest& r : queue_->take_expired(now)) {
    finish_unserved(r, StopReason::DeadlineExceeded);
  }
  while (!free_slots_.empty()) {
    InferRequest r;
    if (!queue_->pop(r)) break;
    if (queue_->consume_cancelled(r.id)) {
      finish_unserved(r, StopReason::Cancelled);
      continue;
    }
    if (r.deadline_s > 0.0 && now > r.deadline_s) {
      finish_unserved(r, StopReason::DeadlineExceeded);
      continue;
    }
    ActiveSeq seq;
    seq.slot = free_slots_.back();
    if (store_ != nullptr) {
      // Paged admission: price the request in pages it can actually need
      // (worst-case growth minus cached prefix pages), not a worst-case
      // contiguous slot. open_slot reserves that budget atomically, so an
      // admitted stream can never hit pool exhaustion mid-decode.
      const int64_t t = r.prompt.size(1);
      seq.prompt_ids.resize(static_cast<size_t>(t));
      const float* p = r.prompt.data();
      for (int64_t j = 0; j < t; ++j) {
        seq.prompt_ids[static_cast<size_t>(j)] = static_cast<int64_t>(p[j]);
      }
      const int64_t final_len = t + r.max_new_tokens - 1;
      int64_t shared = 0;
      bool ok = store_->open_slot(seq.slot, seq.prompt_ids, final_len, &shared);
      if (!ok) {
        // Preempt the reclaimable part of the prefix cache and retry: the
        // first attempt maximises sharing, this one maximises free pages.
        (void)store_->evict_unreferenced();
        ok = store_->open_slot(seq.slot, seq.prompt_ids, final_len, &shared);
      }
      if (!ok) {
        if (active_.empty()) {
          // Even a fully drained, evicted pool cannot reserve this
          // request's worst case — admitting it would wedge the drain, so
          // refuse it outright (backpressure, like a full bounded queue).
          finish_unserved(r, StopReason::Rejected);
          continue;
        }
        // Pool dry under load: the request keeps its place in line and
        // retries once a finishing stream releases its reservation.
        queue_->push_front(std::move(r));
        break;
      }
      seq.shared_tokens = shared;
    }
    ++stats_.requests;
    stats_.prompt_tokens += r.prompt.size(1);
    seq.id = r.id;
    free_slots_.pop_back();
    seq.prompt_tokens = r.prompt.size(1);
    seq.remaining = r.max_new_tokens;
    // One admission-time reservation keeps the per-token push_back off the
    // steady-state decode pass's allocation budget.
    seq.generated.reserve(static_cast<size_t>(r.max_new_tokens));
    seq.input_prompt = std::move(r.prompt);
    seq.rng = Rng(Rng::split(cfg_.seed, static_cast<uint64_t>(seq.id)));
    seq.on_token = std::move(r.on_token);
    seq.enqueue_s = r.enqueue_s;
    seq.deadline_s = r.deadline_s;
    seq.admit_s = now;
    active_.push_back(std::move(seq));
  }
}

void InferencePipeline::finish_active(ActiveSeq& seq, StopReason why,
                                      double now_s) {
  Completion c;
  c.id = seq.id;
  c.prompt_tokens = seq.prompt_tokens;
  c.tokens = std::move(seq.generated);
  c.stop_reason = why;
  c.enqueue_s = seq.enqueue_s;
  c.admit_s = seq.admit_s;
  c.first_token_s = seq.first_token_s;
  c.finish_s = now_s;
  done_.push_back(std::move(c));
  for (auto& w : workers_) w->drop_slot(seq.slot);
  if (store_ != nullptr) store_->drop_slot(seq.slot);
  free_slots_.push_back(seq.slot);
  if (why == StopReason::Cancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.timed_out;
  }
}

void InferencePipeline::reap_aborted() {
  if (active_.empty()) return;
  const double now = serve_clock_s();
  // Fast path for the steady state (no deadlines hit, no cancel marks):
  // no allocation, no rebuild — the per-pass allocation budget of
  // tests/runtime/test_alloc_decode.cpp stays untouched.
  bool any = queue_->any_cancelled();
  for (const ActiveSeq& s : active_) {
    if (any) break;
    any = s.deadline_s > 0.0 && now > s.deadline_s;
  }
  if (!any) return;
  std::vector<ActiveSeq> still;
  still.reserve(active_.size());
  for (ActiveSeq& seq : active_) {
    if (queue_->consume_cancelled(seq.id)) {
      finish_active(seq, StopReason::Cancelled, now);
    } else if (seq.deadline_s > 0.0 && now > seq.deadline_s) {
      finish_active(seq, StopReason::DeadlineExceeded, now);
    } else {
      still.push_back(std::move(seq));
    }
  }
  active_ = std::move(still);
}

void InferencePipeline::inject_faults() {
  const FaultInjection& f = cfg_.fault;
  if (!f.enabled()) return;
  int stall_us = 0;
  if (replica_index_ == f.stuck_replica && passes_run_ < f.stuck_passes) {
    stall_us += f.stuck_us;
  }
  if (f.slow_pass_prob > 0.0 &&
      static_cast<double>(fault_rng_.uniform()) < f.slow_pass_prob) {
    stall_us += f.slow_pass_us;
  }
  if (stall_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

void InferencePipeline::run_pass() {
  // Driver-side pass arena: the plan's input tensors (the [1, 1] decode
  // feeds, prefix-hit prompt tails, prompt copies) live exactly one pass —
  // the gang consumes them before its Flush barrier — so they draw from
  // this arena, reclaimed wholesale at the next pass's entry.
  tensor::ArenaScope pass_arena(driver_arena_);
  plan_.clear();
  bool any_prefill = false;
  for (ActiveSeq& seq : active_) {
    PassEntry e;
    e.slot = seq.slot;
    // One uniform per generated token, drawn from the request's own stream:
    // draw order is per-sequence, so batch composition, pass interleaving
    // and replica assignment cannot shift it.
    if (cfg_.sampling.stochastic()) e.u = seq.rng.uniform();
    if (!seq.prefilled) {
      if (store_ != nullptr && seq.shared_tokens > 0) {
        // Prefix hit: the first shared_tokens rows are already in cached
        // pages (bitwise what this prefill would have computed), so the
        // prefill micro-batch carries only the unshared suffix.
        e.pos0 = seq.shared_tokens;
        e.fresh = false;
        const int64_t rest = seq.prompt_tokens - seq.shared_tokens;
        Tensor tail({1, rest});
        const float* src = seq.input_prompt.data() + seq.shared_tokens;
        std::copy(src, src + rest, tail.data());
        e.input = std::move(tail);
      } else {
        e.pos0 = 0;
        // Paged slots are reset by open_slot/drop_slot; fresh would only
        // clear the (empty) contiguous caches.
        e.fresh = store_ == nullptr;
        e.input = seq.input_prompt;
      }
      any_prefill = true;
    } else {
      e.pos0 = seq.len;
      Tensor one({1, 1});
      one[0] = static_cast<float>(seq.last_token);
      e.input = std::move(one);
    }
    plan_.push_back(std::move(e));
  }

  const schedule::Schedule& sched =
      schedule_for(static_cast<int>(plan_.size()));
  const auto t0 = std::chrono::steady_clock::now();
  // Injected stalls land inside the timed region: a fault-degraded run
  // shows its degradation in prefill_s/decode_s like a real slow device.
  inject_faults();
  ++passes_run_;
  // Hand the pass to the persistent gang and wait for every worker.
  {
    std::lock_guard lk(gang_mu_);
    gang_sched_ = &sched;
    gang_done_ = 0;
    for (std::exception_ptr& e : gang_errors_) e = nullptr;
    ++gang_epoch_;
  }
  gang_cv_.notify_all();
  {
    std::unique_lock lk(gang_mu_);
    gang_cv_.wait(lk,
                  [&] { return gang_done_ == static_cast<int>(workers_.size()); });
  }
  for (std::exception_ptr& e : gang_errors_) {
    if (e) {
      std::exception_ptr ex = e;
      e = nullptr;
      std::rethrow_exception(ex);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (any_prefill) {
    ++stats_.prefill_passes;
    stats_.prefill_s += wall;
  } else {
    ++stats_.decode_passes;
    stats_.decode_s += wall;
  }

  // Sample the KV footprint before completed streams are dropped: the pass
  // that finishes a sequence is exactly when its cache is fullest.
  stats_.peak_kv_bytes = std::max(stats_.peak_kv_bytes, slot_bytes());
  if (store_ != nullptr) {
    stats_.kv_pages_peak =
        std::max(stats_.kv_pages_peak, store_->pages_in_use());
  }

  const double now = serve_clock_s();
  const std::vector<int64_t>& toks =
      workers_[static_cast<size_t>(last_stage_device_)]->next_tokens();
  still_.clear();
  for (size_t i = 0; i < active_.size(); ++i) {
    ActiveSeq& seq = active_[i];
    const int64_t tok = toks[i];
    if (!seq.prefilled) {
      seq.prefilled = true;
      seq.len = seq.prompt_tokens;
      if (store_ != nullptr) {
        // Offer the completed prompt to the prefix tree so later requests
        // with a common prefix can share its pages (before any potential
        // drop below, so a one-token completion still seeds the cache).
        store_->publish(seq.slot, seq.prompt_ids);
        seq.prompt_ids.clear();
        seq.prompt_ids.shrink_to_fit();
      }
      seq.input_prompt = Tensor();
    } else {
      seq.len += 1;
    }
    if (seq.generated.empty()) seq.first_token_s = now;
    seq.generated.push_back(tok);
    seq.last_token = tok;
    --seq.remaining;
    ++stats_.generated_tokens;
    // A stop token ends the sequence at this pass boundary (the token is
    // recorded); otherwise the continuation cap decides.
    const bool hit_stop = is_stop_token(cfg_.stop_tokens, tok);
    // Streaming: the token leaves the engine at the pass boundary that
    // selected it, before the next pass starts.
    if (seq.on_token) {
      seq.on_token(TokenEvent{seq.id, tok,
                              static_cast<int>(seq.generated.size()) - 1,
                              hit_stop || seq.remaining == 0});
    }
    if (hit_stop || seq.remaining == 0) {
      Completion c;
      c.id = seq.id;
      c.prompt_tokens = seq.prompt_tokens;
      c.tokens = std::move(seq.generated);
      c.stop_reason = hit_stop ? StopReason::StopToken : StopReason::MaxTokens;
      c.enqueue_s = seq.enqueue_s;
      c.admit_s = seq.admit_s;
      c.first_token_s = seq.first_token_s;
      c.finish_s = now;
      ++stats_.completed;
      stats_.ttft_samples_s.push_back(seq.first_token_s - seq.enqueue_s);
      if (c.tokens.size() >= 2) {
        stats_.per_token_samples_s.push_back(
            (now - seq.first_token_s) /
            static_cast<double>(c.tokens.size() - 1));
      }
      done_.push_back(std::move(c));
      for (auto& w : workers_) w->drop_slot(seq.slot);
      if (store_ != nullptr) store_->drop_slot(seq.slot);
      free_slots_.push_back(seq.slot);
    } else {
      still_.push_back(std::move(seq));
    }
  }
  // Ping-pong swap: both vectors retain their capacity across passes.
  active_.swap(still_);
}

std::vector<Completion> InferencePipeline::drain() {
  for (;;) {
    admit();
    // Pass boundary: cancelled / deadline-expired sequences abort here,
    // their KV slots freed before the next pass is planned.
    reap_aborted();
    if (active_.empty()) {
      // Aborts may have freed every slot while the queue still holds
      // work — loop back to admit; momentarily-empty queue ends the drain.
      if (queue_->empty()) break;
      continue;
    }
    run_pass();
  }
  std::vector<Completion> out = std::move(done_);
  done_.clear();
  {
    std::lock_guard lk(enqueue_mu_);
    out.insert(out.end(), std::make_move_iterator(rejected_done_.begin()),
               std::make_move_iterator(rejected_done_.end()));
    rejected_done_.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  return out;
}

ServeStats InferencePipeline::stats() const {
  ServeStats out = stats_;
  if (store_ != nullptr) {
    out.kv_pages_in_use = store_->pages_in_use();
    out.prefix_hits = store_->prefix_hits();
    out.prefix_hit_tokens = store_->prefix_hit_tokens();
  }
  std::lock_guard lk(enqueue_mu_);
  out.submitted += enqueue_stats_.submitted;
  out.rejected += enqueue_stats_.rejected;
  return out;
}

// ------------------------------------------------------- InferenceServer

InferenceServer::InferenceServer(InferConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.dp < 1) {
    throw std::invalid_argument("InferenceServer: dp < 1");
  }
  queue_.configure(cfg_.queue_policy, cfg_.max_queue > 0
                                          ? cfg_.max_queue
                                          : derived_queue_cap(cfg_));
  for (int r = 0; r < cfg_.dp; ++r) {
    replicas_.push_back(std::make_unique<InferencePipeline>(cfg_, &queue_, r));
  }
}

InferenceServer::~InferenceServer() = default;

int64_t InferenceServer::enqueue(tensor::Tensor prompt, int max_new_tokens,
                                 TokenCallback on_token, double deadline_s) {
  InferRequest r = make_infer_request(std::move(prompt), max_new_tokens,
                                      cfg_.max_new_tokens, cfg_.model.seq,
                                      next_id_++, deadline_s, cfg_.deadline_s);
  r.on_token = std::move(on_token);
  const int64_t id = r.id;
  std::vector<InferRequest> refused = queue_.push(std::move(r));
  std::lock_guard lk(enqueue_mu_);
  ++enqueue_stats_.submitted;
  for (const InferRequest& ref : refused) {
    ++enqueue_stats_.rejected;
    rejected_done_.push_back(unserved_completion(ref, StopReason::Rejected));
  }
  return id;
}

std::vector<Completion> InferenceServer::drain() {
  std::vector<std::vector<Completion>> per(replicas_.size());
  if (replicas_.size() == 1) {
    per[0] = replicas_[0]->drain();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(replicas_.size());
    std::vector<std::exception_ptr> errors(replicas_.size());
    for (size_t r = 0; r < replicas_.size(); ++r) {
      threads.emplace_back([&, r] {
        try {
          per[r] = replicas_[r]->drain();
        } catch (...) {
          errors[r] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  std::vector<Completion> out;
  for (auto& v : per) {
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  {
    std::lock_guard lk(enqueue_mu_);
    out.insert(out.end(), std::make_move_iterator(rejected_done_.begin()),
               std::make_move_iterator(rejected_done_.end()));
    rejected_done_.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  return out;
}

ServeStats InferenceServer::stats() const {
  ServeStats out = merge_stats(replica_stats());
  std::lock_guard lk(enqueue_mu_);
  out.submitted += enqueue_stats_.submitted;
  out.rejected += enqueue_stats_.rejected;
  return out;
}

std::vector<ServeStats> InferenceServer::replica_stats() const {
  std::vector<ServeStats> out;
  out.reserve(replicas_.size());
  for (const auto& r : replicas_) out.push_back(r->stats());
  return out;
}

int64_t InferenceServer::slot_bytes() const {
  int64_t b = 0;
  for (const auto& r : replicas_) b += r->slot_bytes();
  return b;
}

int64_t InferenceServer::pages_in_use() const {
  int64_t p = 0;
  for (const auto& r : replicas_) p += r->pages_in_use();
  return p;
}

void InferenceServer::clear_prefix_cache() {
  for (const auto& r : replicas_) r->clear_prefix_cache();
}

}  // namespace hanayo::runtime
