#pragma once
// One pipeline worker: owns the local model chunks and interprets its
// device's action list (paper §4.1) with communication prefetching (§4.2).

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include <chrono>
#include <optional>

#include "comm/collectives.hpp"
#include "model/lr_schedule.hpp"
#include "model/optimizer.hpp"
#include "model/partition.hpp"
#include "model/transformer.hpp"
#include "schedule/actions.hpp"
#include "tensor/arena.hpp"

namespace hanayo::runtime {

/// One iteration's data: token ids shaped [sequences, seq_len], row-aligned
/// with targets. Rows are grouped replica-major, micro-batch-minor.
struct Batch {
  tensor::Tensor inputs;
  tensor::Tensor targets;
};

enum class OptKind { Sgd, AdamW };

/// One executed compute action with real wall-clock endpoints, in seconds
/// relative to the trainer's iteration origin — the runtime analogue of the
/// simulator's TimelineSpan, used to visualise real overlap.
struct ComputeSpan {
  int mb = 0;
  int pos = 0;
  bool backward = false;
  double start = 0.0;
  double end = 0.0;
};

struct WorkerParams {
  model::ModelConfig model;
  const schedule::Schedule* sched = nullptr;  ///< shared, owned by Trainer
  int pipeline_rank = 0;
  int replica = 0;
  int dp = 1;
  int mb_sequences = 1;
  uint64_t seed = 1;
  OptKind opt = OptKind::Sgd;
  float lr = 0.1f;
  float momentum = 0.0f;
  /// Maximum number of receive requests posted ahead of need (0 disables
  /// prefetching — then receives block at the consuming action).
  int prefetch_depth = 2;
  /// Activation recomputation on every chunk (see StageModule::set_recompute).
  bool recompute = false;
  /// Transmit activations/gradients between stages as packed fp16 (mixed
  /// precision, related work §6): halves the P2P volume at the cost of
  /// fp16 rounding on every boundary crossing.
  bool fp16_comm = false;
  /// Global gradient-norm clipping (0 disables). The norm spans every
  /// distinct model parameter exactly once, computed with a world-wide
  /// scalar allreduce at the flush, so every worker scales identically.
  float max_grad_norm = 0.0f;
  /// Per-step learning rate; overrides `lr` when set. All workers evaluate
  /// the same step counter, so rates stay globally consistent.
  std::optional<model::LrSchedule> lr_schedule;
  /// When non-null, Forward/Backward wall-clock spans are recorded relative
  /// to this shared origin (set by the Trainer just before the step).
  const std::chrono::steady_clock::time_point* timeline_origin = nullptr;
  /// ZeRO-1 optimizer-state sharding (related work §6): each member of a
  /// chunk's gradient-sync group owns one shard of every parameter. At the
  /// flush, gradients are reduce-scattered instead of allreduced; at the
  /// optimizer step each rank updates only its shard and the updated values
  /// are allgathered. Optimizer state shrinks by the group size; results are
  /// bit-identical to unsharded training.
  bool zero_shard = false;
  /// Gradient-sync group per local chunk (ranks holding the same stage
  /// across replicas — and, for Chimera, across the bidirectional copies).
  std::vector<comm::Group> chunk_groups;
  /// All ranks, for the loss reduction.
  comm::Group world_group;
};

class Worker {
 public:
  Worker(WorkerParams params, comm::Communicator comm);

  /// Executes one full iteration of this worker's action list. Returns the
  /// globally reduced mean loss (identical on every worker after the flush).
  float run_iteration(const Batch& batch);

  int global_rank() const { return comm_.rank(); }
  /// Local chunks, ordered by local module rank (for tests/snapshots).
  std::vector<model::StageModule>& chunks() { return chunks_; }
  /// Stage id per local chunk.
  const std::vector<int>& chunk_stages() const { return chunk_stages_; }
  /// Peak of (sum of layer caches + in-transit buffers) observed during the
  /// last iteration, in bytes. The runtime analogue of the simulator's Ma.
  int64_t last_peak_cache_bytes() const { return peak_cache_bytes_; }
  /// Bytes of optimizer state this worker holds (ZeRO-1 shrinks this by the
  /// gradient-sync group size).
  int64_t optimizer_state_bytes() const;
  /// Name-addressed snapshot of this worker's optimizer state (for
  /// checkpoints). Throws under ZeRO-1, where state is shard-sized.
  std::vector<std::pair<std::string, tensor::Tensor>> optimizer_state_snapshot();
  /// Restores optimizer state saved by `optimizer_state_snapshot`.
  void load_optimizer_state(const std::map<std::string, tensor::Tensor>& state);
  /// Optimizer steps taken (drives the LR schedule across a resume).
  int64_t opt_steps() const { return opt_steps_; }
  void set_opt_steps(int64_t n) { opt_steps_ = n; }
  /// Wall-clock compute spans of the last iteration (empty unless
  /// WorkerParams::timeline_origin was set).
  const std::vector<ComputeSpan>& last_timeline() const { return timeline_; }

 private:
  tensor::Tensor input_slice(const Batch& batch, int m) const;
  tensor::Tensor target_slice(const Batch& batch, int m) const;
  void note_memory();
  void zero_opt_step();
  /// Local chunk indices sorted by global stage id — the iteration order for
  /// blocking collectives (see the deadlock note at the flush).
  std::vector<size_t> stage_ordered_chunks() const;

  WorkerParams p_;
  comm::Communicator comm_;
  std::vector<model::StageModule> chunks_;
  std::vector<int> chunk_stages_;
  std::map<int, int> chunk_of_stage_;  // stage id -> local chunk index
  std::unique_ptr<model::Optimizer> optimizer_;
  int64_t peak_cache_bytes_ = 0;
  int64_t opt_steps_ = 0;
  std::vector<ComputeSpan> timeline_;

  // Iteration-scoped state (cleared per run).
  std::map<std::pair<int, int>, tensor::Tensor> act_;   // (m, pos) -> activation
  std::map<std::pair<int, int>, tensor::Tensor> grad_;  // (m, pos) -> input-grad of pos

  /// Iteration-lifetime tensor arena: run_iteration opens an ArenaScope on
  /// it, so activations, gradients-in-flight, attention scratch and comm
  /// staging bump-allocate here and the slabs are reused every step. The
  /// scope resets at ENTRY, which is safe because the previous iteration
  /// ended with a Flush barrier — every cross-worker payload has been
  /// consumed by then. Long-lived allocations inside the scope (lazily
  /// created optimizer state) are wrapped in ArenaPause.
  tensor::Arena arena_;
};

}  // namespace hanayo::runtime
