#include "runtime/kv_store.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "tensor/half.hpp"

namespace hanayo::runtime {

// One radix-tree node covers one page worth of token ids (the tail node
// may cover fewer) and pins one page per lane while it lives. Children
// are keyed by their first token; every non-tail node spans exactly
// page_tokens ids, so a root-to-node path always lands on the page grid.
struct KvStore::Node {
  std::vector<int64_t> tokens;
  std::vector<int32_t> pages;  // [lanes]
  std::vector<std::unique_ptr<Node>> kids;

  static Node* find_child(const std::vector<std::unique_ptr<Node>>& kids,
                          int64_t first) {
    for (const auto& k : kids) {
      if (!k->tokens.empty() && k->tokens[0] == first) return k.get();
    }
    return nullptr;
  }
};

namespace {

/// Longest common prefix of `tokens` and `ids[pos, pos + limit)`.
int64_t match_len(const std::vector<int64_t>& tokens,
                  const std::vector<int64_t>& ids, int64_t pos,
                  int64_t limit) {
  const int64_t n = std::min<int64_t>(static_cast<int64_t>(tokens.size()),
                                      limit);
  int64_t m = 0;
  while (m < n && tokens[static_cast<size_t>(m)] ==
                      ids[static_cast<size_t>(pos + m)]) {
    ++m;
  }
  return m;
}

}  // namespace

KvStore::KvStore(const KvStoreConfig& cfg) : cfg_(cfg) {
  if (cfg_.page_tokens < 1) {
    throw std::invalid_argument("KvStore: page_tokens must be >= 1");
  }
  if (cfg_.pool_pages < 1) {
    throw std::invalid_argument("KvStore: pool_pages must be >= 1");
  }
  if (cfg_.row_elems < 1 || cfg_.max_slots < 1) {
    throw std::invalid_argument("KvStore: row_elems and max_slots required");
  }
  const int64_t elems = cfg_.pool_pages * page_elems();
  if (cfg_.fp16) {
    data16_.assign(static_cast<size_t>(elems), 0);
  } else {
    data32_.assign(static_cast<size_t>(elems), 0.0f);
  }
  pages_.assign(static_cast<size_t>(cfg_.pool_pages), Page{});
  free_.reserve(static_cast<size_t>(cfg_.pool_pages));
  for (int64_t p = cfg_.pool_pages - 1; p >= 0; --p) {
    free_.push_back(static_cast<int32_t>(p));
  }
  slots_.assign(static_cast<size_t>(cfg_.max_slots), SlotInfo{});
}

KvStore::~KvStore() = default;

int KvStore::register_lane() {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  const int lane = lanes_++;
  lane_slots_.resize(static_cast<size_t>(lanes_) *
                     static_cast<size_t>(cfg_.max_slots));
  return lane;
}

int64_t KvStore::page_elems() const {
  return 2ll * cfg_.page_tokens * cfg_.row_elems;
}

int64_t KvStore::page_bytes() const {
  return page_elems() * static_cast<int64_t>(cfg_.fp16 ? sizeof(uint16_t)
                                                       : sizeof(float));
}

KvStore::LaneSlot& KvStore::lane_slot(int lane, int slot) {
  return lane_slots_[static_cast<size_t>(lane) *
                         static_cast<size_t>(cfg_.max_slots) +
                     static_cast<size_t>(slot)];
}

const KvStore::LaneSlot& KvStore::lane_slot(int lane, int slot) const {
  return lane_slots_[static_cast<size_t>(lane) *
                         static_cast<size_t>(cfg_.max_slots) +
                     static_cast<size_t>(slot)];
}

float* KvStore::k_row32(int32_t page, int row) {
  return data32_.data() + page * page_elems() +
         static_cast<int64_t>(row) * cfg_.row_elems;
}

uint16_t* KvStore::k_row16(int32_t page, int row) {
  return data16_.data() + page * page_elems() +
         static_cast<int64_t>(row) * cfg_.row_elems;
}

int64_t KvStore::pages_needed(int64_t final_len, int64_t shared_tokens) const {
  const int64_t pg = cfg_.page_tokens;
  // Worst case per lane: every page from the first non-fully-shared one
  // through the final token, plus one copy-on-write spare when the prefix
  // cache may publish (and so share) this stream's own partial tail page.
  int64_t per_lane = (final_len + pg - 1) / pg - shared_tokens / pg;
  if (cfg_.prefix_cache) per_lane += 1;
  if (per_lane < 0) per_lane = 0;
  return per_lane * std::max(1, lanes_);
}

int32_t KvStore::alloc_page_locked(int slot) {
  SlotInfo& si = slots_[static_cast<size_t>(slot)];
  if (si.reserved <= 0 || free_.empty()) {
    throw std::logic_error("KvStore: page reservation exhausted");
  }
  const int32_t p = free_.back();
  free_.pop_back();
  pages_[static_cast<size_t>(p)] = Page{/*refs=*/1, /*tree_refs=*/0};
  ++slot_ref_pages_;
  ++in_use_;
  peak_ = std::max(peak_, in_use_);
  --si.reserved;
  --reserved_total_;
  return p;
}

void KvStore::ref_page_locked(int32_t p) {
  if (pages_[static_cast<size_t>(p)].refs++ == 0) ++slot_ref_pages_;
}

void KvStore::free_if_unreferenced_locked(int32_t p) {
  Page& pg = pages_[static_cast<size_t>(p)];
  if (pg.refs == 0 && pg.tree_refs == 0) {
    free_.push_back(p);
    --in_use_;
  }
}

void KvStore::unref_page_locked(int32_t p) {
  if (--pages_[static_cast<size_t>(p)].refs == 0) {
    --slot_ref_pages_;
    free_if_unreferenced_locked(p);
  }
}

void KvStore::tree_unref_locked(int32_t p) {
  --pages_[static_cast<size_t>(p)].tree_refs;
  free_if_unreferenced_locked(p);
}

bool KvStore::page_shared(int32_t p) const {
  const Page& pg = pages_[static_cast<size_t>(p)];
  return pg.refs + pg.tree_refs > 1;
}

bool KvStore::open_slot(int slot, const std::vector<int64_t>& ids,
                        int64_t final_len, int64_t* shared_out) {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  if (lanes_ == 0) throw std::logic_error("KvStore: no lanes registered");
  if (slot < 0 || slot >= cfg_.max_slots) {
    throw std::invalid_argument("KvStore: slot out of range");
  }
  SlotInfo& si = slots_[static_cast<size_t>(slot)];
  if (si.open) throw std::logic_error("KvStore: slot already open");

  // Longest cached prefix, capped so the prefill computes >= 1 token.
  const int64_t cap =
      cfg_.prefix_cache ? static_cast<int64_t>(ids.size()) - 1 : 0;
  std::vector<const Node*> matched;
  int64_t shared = 0;
  const std::vector<std::unique_ptr<Node>>* level = &roots_;
  while (shared < cap) {
    const Node* c = Node::find_child(*level, ids[static_cast<size_t>(shared)]);
    if (c == nullptr) break;
    const int64_t m = match_len(c->tokens, ids, shared, cap - shared);
    if (m == 0) break;
    matched.push_back(c);
    shared += m;
    // Descending past a node is only sound when the node matched in full
    // (its page's rows beyond a partial match belong to someone else's
    // prompt) and spans a whole page (tail nodes have no children).
    if (m < static_cast<int64_t>(c->tokens.size()) ||
        static_cast<int64_t>(c->tokens.size()) < cfg_.page_tokens) {
      break;
    }
    level = &c->kids;
  }

  const int64_t need = pages_needed(final_len, shared);
  if (need > static_cast<int64_t>(free_.size()) - reserved_total_) {
    return false;  // pool dry: caller evicts and retries, or sheds load
  }

  for (const Node* n : matched) {
    for (int lane = 0; lane < lanes_; ++lane) {
      ref_page_locked(n->pages[static_cast<size_t>(lane)]);
      lane_slot(lane, slot).table.push_back(
          n->pages[static_cast<size_t>(lane)]);
    }
  }
  for (int lane = 0; lane < lanes_; ++lane) lane_slot(lane, slot).len = shared;
  si.open = true;
  si.reserved = need;
  si.shared = shared;
  reserved_total_ += need;
  if (shared > 0) {
    ++hits_;
    hit_tokens_ += shared;
  }
  if (shared_out != nullptr) *shared_out = shared;
  return true;
}

void KvStore::publish(int slot, const std::vector<int64_t>& ids) {
  if (!cfg_.prefix_cache) return;
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  const int64_t pg = cfg_.page_tokens;
  const int64_t n = static_cast<int64_t>(ids.size());
  std::vector<std::unique_ptr<Node>>* level = &roots_;
  int64_t pos = 0;
  int page_idx = 0;
  while (pos < n) {
    const int64_t chunk = std::min<int64_t>(pg, n - pos);
    Node* c = Node::find_child(*level, ids[static_cast<size_t>(pos)]);
    if (c != nullptr) {
      const int64_t m = match_len(c->tokens, ids, pos, chunk);
      const int64_t clen = static_cast<int64_t>(c->tokens.size());
      if (m == clen && m == chunk) {
        // Identical chunk already cached; our copy of the page stays
        // private (first writer wins) and we continue below it.
        pos += m;
        ++page_idx;
        if (chunk < pg) break;
        level = &c->kids;
        continue;
      }
      if (m == clen && m < chunk && c->kids.empty() && clen < pg) {
        // The cached tail is a strict prefix of our chunk: upgrade the
        // node in place to the longer page.
        for (int lane = 0; lane < lanes_; ++lane) {
          const int32_t ours =
              lane_slot(lane, slot).table[static_cast<size_t>(page_idx)];
          ++pages_[static_cast<size_t>(ours)].tree_refs;
          tree_unref_locked(c->pages[static_cast<size_t>(lane)]);
          c->pages[static_cast<size_t>(lane)] = ours;
        }
        c->tokens.assign(ids.begin() + pos, ids.begin() + pos + chunk);
        pos += chunk;
        ++page_idx;
        if (chunk < pg) break;
        level = &c->kids;
        continue;
      }
      break;  // diverges mid-node: first writer wins
    }
    auto node = std::make_unique<Node>();
    node->tokens.assign(ids.begin() + pos, ids.begin() + pos + chunk);
    node->pages.resize(static_cast<size_t>(lanes_));
    for (int lane = 0; lane < lanes_; ++lane) {
      const int32_t ours =
          lane_slot(lane, slot).table[static_cast<size_t>(page_idx)];
      ++pages_[static_cast<size_t>(ours)].tree_refs;
      node->pages[static_cast<size_t>(lane)] = ours;
    }
    Node* made = node.get();
    level->push_back(std::move(node));
    pos += chunk;
    ++page_idx;
    if (chunk < pg) break;
    level = &made->kids;
  }
}

void KvStore::drop_slot(int slot) {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  SlotInfo& si = slots_[static_cast<size_t>(slot)];
  if (!si.open) return;
  for (int lane = 0; lane < lanes_; ++lane) {
    LaneSlot& ls = lane_slot(lane, slot);
    for (const int32_t p : ls.table) unref_page_locked(p);
    ls.table.clear();
    ls.len = 0;
  }
  reserved_total_ -= si.reserved;
  si = SlotInfo{};
}

void KvStore::append(int lane, int slot, const float* krow,
                     const float* vrow) {
  LaneSlot& ls = lane_slot(lane, slot);
  const int64_t pg = cfg_.page_tokens;
  const int64_t pi = ls.len / pg;
  const int off = static_cast<int>(ls.len % pg);
  if (pi == static_cast<int64_t>(ls.table.size())) {
    std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
    ls.table.push_back(alloc_page_locked(slot));
  } else {
    int32_t fresh = -1;
    int32_t old = ls.table[static_cast<size_t>(pi)];
    {
      std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
      if (page_shared(old)) fresh = alloc_page_locked(slot);
    }
    if (fresh >= 0) {
      // Copy-on-write: clone the rows this stream already owns, then
      // release the shared original. The source page cannot be freed
      // underneath us — this slot still holds a reference to it.
      if (cfg_.fp16) {
        std::memcpy(k_row16(fresh, 0), k_row16(old, 0),
                    static_cast<size_t>(off) * cfg_.row_elems *
                        sizeof(uint16_t));
        std::memcpy(k_row16(fresh, cfg_.page_tokens),
                    k_row16(old, cfg_.page_tokens),
                    static_cast<size_t>(off) * cfg_.row_elems *
                        sizeof(uint16_t));
      } else {
        std::memcpy(k_row32(fresh, 0), k_row32(old, 0),
                    static_cast<size_t>(off) * cfg_.row_elems *
                        sizeof(float));
        std::memcpy(k_row32(fresh, cfg_.page_tokens),
                    k_row32(old, cfg_.page_tokens),
                    static_cast<size_t>(off) * cfg_.row_elems *
                        sizeof(float));
      }
      ls.table[static_cast<size_t>(pi)] = fresh;
      std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
      unref_page_locked(old);
    }
  }
  const int32_t page = ls.table[static_cast<size_t>(pi)];
  if (cfg_.fp16) {
    uint16_t* kdst = k_row16(page, off);
    uint16_t* vdst = k_row16(page, cfg_.page_tokens + off);
    for (int64_t i = 0; i < cfg_.row_elems; ++i) {
      kdst[i] = tensor::float_to_half(krow[i]);
      vdst[i] = tensor::float_to_half(vrow[i]);
    }
  } else {
    std::memcpy(k_row32(page, off), krow,
                static_cast<size_t>(cfg_.row_elems) * sizeof(float));
    std::memcpy(k_row32(page, cfg_.page_tokens + off), vrow,
                static_cast<size_t>(cfg_.row_elems) * sizeof(float));
  }
  ls.len += 1;
}

void KvStore::gather(int lane, int slot, int64_t len, float* kout,
                     float* vout) const {
  const LaneSlot& ls = lane_slot(lane, slot);
  if (len > ls.len) throw std::logic_error("KvStore: gather past cached len");
  auto* self = const_cast<KvStore*>(this);
  const int64_t pg = cfg_.page_tokens;
  int64_t done = 0;
  for (size_t pi = 0; done < len; ++pi) {
    const int32_t page = ls.table[pi];
    const int64_t rows = std::min<int64_t>(pg, len - done);
    if (cfg_.fp16) {
      const uint16_t* ksrc = self->k_row16(page, 0);
      const uint16_t* vsrc = self->k_row16(page, cfg_.page_tokens);
      float* kdst = kout + done * cfg_.row_elems;
      float* vdst = vout + done * cfg_.row_elems;
      for (int64_t i = 0; i < rows * cfg_.row_elems; ++i) {
        kdst[i] = tensor::half_to_float(ksrc[i]);
        vdst[i] = tensor::half_to_float(vsrc[i]);
      }
    } else {
      std::memcpy(kout + done * cfg_.row_elems, self->k_row32(page, 0),
                  static_cast<size_t>(rows * cfg_.row_elems) * sizeof(float));
      std::memcpy(vout + done * cfg_.row_elems,
                  self->k_row32(page, cfg_.page_tokens),
                  static_cast<size_t>(rows * cfg_.row_elems) * sizeof(float));
    }
    done += rows;
  }
}

int64_t KvStore::lane_len(int lane, int slot) const {
  return lane_slot(lane, slot).len;
}

int64_t KvStore::prune_nodes_locked(
    std::vector<std::unique_ptr<Node>>& nodes) {
  int64_t freed = 0;
  for (auto& n : nodes) freed += prune_nodes_locked(n->kids);
  auto removable = [this](const std::unique_ptr<Node>& n) {
    if (!n->kids.empty()) return false;
    for (const int32_t p : n->pages) {
      if (pages_[static_cast<size_t>(p)].refs != 0) return false;
    }
    return true;
  };
  for (auto it = nodes.begin(); it != nodes.end();) {
    if (removable(*it)) {
      for (const int32_t p : (*it)->pages) {
        tree_unref_locked(p);
        ++freed;
      }
      it = nodes.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

int64_t KvStore::evict_unreferenced() {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return prune_nodes_locked(roots_);
}

void KvStore::drop_nodes_locked(std::vector<std::unique_ptr<Node>>& nodes) {
  for (auto& n : nodes) {
    drop_nodes_locked(n->kids);
    for (const int32_t p : n->pages) tree_unref_locked(p);
  }
  nodes.clear();
}

void KvStore::clear_prefix_cache() {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  drop_nodes_locked(roots_);
}

int64_t KvStore::pages_in_use() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return in_use_;
}

int64_t KvStore::peak_pages() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return peak_;
}

int64_t KvStore::slot_ref_pages() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return slot_ref_pages_;
}

int64_t KvStore::free_pages() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return static_cast<int64_t>(free_.size());
}

int64_t KvStore::bytes_in_use() const { return pages_in_use() * page_bytes(); }

int64_t KvStore::slot_ref_bytes() const {
  return slot_ref_pages() * page_bytes();
}

int64_t KvStore::prefix_hits() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return hits_;
}

int64_t KvStore::prefix_hit_tokens() const {
  std::lock_guard<sync::Mutex<sync::Rank::KvPool>> g(mu_);
  return hit_tokens_;
}

}  // namespace hanayo::runtime
