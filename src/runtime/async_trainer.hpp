#pragma once
// Asynchronous pipeline runtime (paper §2.3 / Fig. 4b): PipeDream-style
// 1F1B execution with no flush and per-micro-batch optimizer updates.
//
// Weight stashing: when enabled (the PipeDream scheme), each stage keeps the
// parameter version a micro-batch used in its forward pass and restores it
// for that micro-batch's backward, so the gradient is mathematically
// consistent (computed at a single — if stale — weight vector). Updates are
// always applied to the latest weights. When disabled, backward runs on the
// latest weights ("discrepancy", as tolerated by PipeMare-style schemes),
// which trades the stash memory for gradient bias.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "runtime/worker.hpp"
#include "schedule/async.hpp"

namespace hanayo::runtime {

struct AsyncTrainerConfig {
  model::ModelConfig model;
  int P = 4;               ///< pipeline devices (= stages)
  int micro_batches = 8;   ///< micro-batches per reported step (batch rows)
  int mb_sequences = 1;    ///< sequences per micro-batch
  uint64_t seed = 1;
  OptKind opt = OptKind::Sgd;
  float lr = 0.05f;
  float momentum = 0.0f;
  bool weight_stashing = true;
  int prefetch_depth = 2;
};

/// Per-step report of the asynchronous run.
struct AsyncStats {
  float mean_loss = 0.0f;            ///< mean over the step's micro-batches
  std::vector<int64_t> stash_bytes;  ///< peak stash size per device
  std::vector<int> stash_entries;    ///< peak stashed versions per device
};

/// Drives `P` worker threads through the continuous asynchronous schedule.
/// One call to `train` consumes the stream of `steps * micro_batches`
/// micro-batches (cycling over the batch rows) and returns per-step losses.
class AsyncTrainer {
 public:
  explicit AsyncTrainer(AsyncTrainerConfig cfg);
  ~AsyncTrainer();

  /// Runs the asynchronous pipeline for `steps` logical steps over `batch`
  /// (which must hold `micro_batches * mb_sequences` rows). Returns the mean
  /// loss of each step, in order — under asynchronous updates these are the
  /// convergence signal the paper's §2.3 discusses.
  std::vector<float> train(const Batch& batch, int steps);

  /// Copies of all parameters, keyed by name (after `train` returned).
  std::map<std::string, tensor::Tensor> snapshot_params();

  /// Statistics from the last `train` call.
  const AsyncStats& last_stats() const { return stats_; }

  int64_t batch_rows() const {
    return static_cast<int64_t>(cfg_.micro_batches) * cfg_.mb_sequences;
  }
  const schedule::Schedule& schedule() const { return sched_; }

 private:
  class StageWorker;

  AsyncTrainerConfig cfg_;
  schedule::Schedule sched_;  ///< rebuilt per train() for the stream length
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<StageWorker>> workers_;
  AsyncStats stats_;
};

}  // namespace hanayo::runtime
