#pragma once
// Single-process reference engine: executes the same model, loss and
// optimizer sequentially, with no pipeline. This is the ground truth the
// equivalence tests compare every schedule against, and the baseline the
// examples print speedups over.

#include <memory>

#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "runtime/worker.hpp"

namespace hanayo::runtime {

class SequentialEngine {
 public:
  /// `micro_batches` and `mb_sequences` describe how the batch rows are
  /// grouped; gradients are scaled exactly like the pipeline runtime's
  /// (1 / micro_batches), so results are comparable.
  SequentialEngine(const model::ModelConfig& cfg, int micro_batches,
                   int mb_sequences, uint64_t seed, OptKind opt, float lr,
                   float momentum = 0.0f);

  /// One full training step over the batch; returns the mean loss.
  float train_step(const Batch& batch);

  /// Global gradient-norm clipping (0 disables) — the single-process
  /// reference for the pipeline runtime's distributed clip.
  void set_max_grad_norm(float v) { max_grad_norm_ = v; }
  /// Per-step learning-rate schedule; mirrors TrainerConfig::lr_schedule.
  void set_lr_schedule(model::LrSchedule s) { lr_schedule_ = s; }

  /// Forward-only evaluation; returns mean loss.
  float eval(const Batch& batch);

  model::StageModule& module() { return module_; }

 private:
  int micro_batches_;
  int mb_sequences_;
  model::StageModule module_;
  std::unique_ptr<model::Optimizer> optimizer_;
  float max_grad_norm_ = 0.0f;
  std::optional<model::LrSchedule> lr_schedule_;
  int64_t opt_steps_ = 0;
};

}  // namespace hanayo::runtime
