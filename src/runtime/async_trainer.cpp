#include "runtime/async_trainer.hpp"

#include <stdexcept>
#include <thread>

#include "model/loss.hpp"
#include "model/partition.hpp"

namespace hanayo::runtime {

using comm::Kind;
using comm::make_tag;
using schedule::Action;
using schedule::Op;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// StageWorker: one device of the asynchronous pipeline.

class AsyncTrainer::StageWorker {
 public:
  StageWorker(const AsyncTrainerConfig& cfg, int device,
              comm::Communicator comm)
      : cfg_(cfg), device_(device), comm_(std::move(comm)) {
    const auto descs = cfg.model.layer_descs();
    const int64_t tokens =
        static_cast<int64_t>(cfg.mb_sequences) * cfg.model.seq;
    const auto ranges = model::partition_layers(descs, cfg.P, tokens);
    const model::StageRange& r = ranges[static_cast<size_t>(device)];
    module_ = model::StageModule(descs, r.begin, r.end, cfg.seed,
                                 cfg.model.init_std);
    if (cfg.opt == OptKind::Sgd) {
      optimizer_ = std::make_unique<model::Sgd>(cfg.lr, cfg.momentum);
    } else {
      optimizer_ = std::make_unique<model::AdamW>(cfg.lr);
    }
  }

  /// Interprets this device's action list over the continuous stream.
  /// `mb_loss` (length = stream size) is filled on the last device.
  void run(const schedule::Schedule& sched, const Batch& batch,
           std::vector<float>* mb_loss) {
    const schedule::DeviceScript& script =
        sched.scripts[static_cast<size_t>(device_)];
    const int P = sched.P;
    stash_peak_bytes_ = 0;
    stash_peak_entries_ = 0;

    // Communication prefetch (paper §4.2), identical in spirit to the
    // synchronous Worker: post up to prefetch_depth receives ahead.
    struct Posted {
      comm::Request req;
      std::unique_ptr<Tensor> slot;
    };
    std::map<size_t, Posted> posted;
    size_t scan = 0;
    int outstanding = 0;
    const auto post_recv = [&](size_t idx) {
      const Action& a = script.actions[idx];
      Posted ps;
      ps.slot = std::make_unique<Tensor>();
      if (a.op == Op::RecvAct) {
        ps.req = comm_.irecv(a.peer, make_tag(Kind::Activation, a.mb, a.pos - 1),
                             ps.slot.get());
      } else {
        ps.req = comm_.irecv(a.peer, make_tag(Kind::Gradient, a.mb, a.pos + 1),
                             ps.slot.get());
      }
      posted.emplace(idx, std::move(ps));
    };
    const auto prefetch = [&] {
      while (scan < script.actions.size() && outstanding < cfg_.prefetch_depth) {
        const Op op = script.actions[scan].op;
        if (op == Op::RecvAct || op == Op::RecvGrad) {
          post_recv(scan);
          ++outstanding;
        }
        ++scan;
      }
    };
    prefetch();

    std::map<int, Tensor> act_in;    // mb -> input activation
    std::map<int, Tensor> act_out;   // mb -> output (kept on last stage)
    std::map<int, Tensor> grad_in;   // mb -> output-gradient
    std::map<int, Tensor> grad_out;  // mb -> input-gradient to send

    for (size_t i = 0; i < script.actions.size(); ++i) {
      const Action& a = script.actions[i];
      switch (a.op) {
        case Op::LoadInput:
          act_in[a.mb] = input_slice(batch, a.mb);
          break;

        case Op::RecvAct:
        case Op::RecvGrad: {
          auto it = posted.find(i);
          if (it == posted.end()) {
            post_recv(i);
            ++outstanding;
            if (scan <= i) scan = i + 1;
            it = posted.find(i);
          }
          it->second.req->wait();
          --outstanding;
          if (a.op == Op::RecvAct) {
            act_in[a.mb] = std::move(*it->second.slot);
          } else {
            grad_in[a.mb] = std::move(*it->second.slot);
          }
          posted.erase(it);
          prefetch();
          break;
        }

        case Op::Forward: {
          const auto it = act_in.find(a.mb);
          if (it == act_in.end()) {
            throw std::logic_error("async Forward: missing input");
          }
          if (cfg_.weight_stashing) stash_params(a.mb);
          Tensor y = module_.forward(it->second, a.mb);
          act_in.erase(it);
          act_out[a.mb] = std::move(y);
          prefetch();
          break;
        }

        case Op::SendAct: {
          const auto it = act_out.find(a.mb);
          if (it == act_out.end()) {
            throw std::logic_error("async SendAct: missing activation");
          }
          comm_.isend(a.peer, make_tag(Kind::Activation, a.mb, a.pos),
                      std::move(it->second));
          act_out.erase(it);
          break;
        }

        case Op::Backward: {
          Tensor dy;
          if (device_ == P - 1) {
            const auto it = act_out.find(a.mb);
            if (it == act_out.end()) {
              throw std::logic_error("async Backward: missing logits");
            }
            auto [loss, dlogits] =
                model::cross_entropy(it->second, target_slice(batch, a.mb));
            if (mb_loss != nullptr) {
              (*mb_loss)[static_cast<size_t>(a.mb)] = loss;
            }
            dy = std::move(dlogits);
            act_out.erase(it);
          } else {
            const auto it = grad_in.find(a.mb);
            if (it == grad_in.end()) {
              throw std::logic_error("async Backward: missing gradient");
            }
            dy = std::move(it->second);
            grad_in.erase(it);
          }
          Tensor dx;
          if (cfg_.weight_stashing) {
            // PipeDream semantics: the backward runs against the weight
            // version the forward used; the update is applied (by the
            // following OptStep) to the *latest* weights.
            swap_with_stash(a.mb);
            dx = module_.backward(dy, a.mb);
            swap_with_stash(a.mb);
            drop_stash(a.mb);
          } else {
            dx = module_.backward(dy, a.mb);
          }
          if (device_ > 0) grad_out[a.mb] = std::move(dx);
          prefetch();
          break;
        }

        case Op::SendGrad: {
          const auto it = grad_out.find(a.mb);
          if (it == grad_out.end()) {
            throw std::logic_error("async SendGrad: missing gradient");
          }
          comm_.isend(a.peer, make_tag(Kind::Gradient, a.mb, a.pos),
                      std::move(it->second));
          grad_out.erase(it);
          break;
        }

        case Op::OptStep: {
          const auto params = module_.params();
          optimizer_->step(params);
          for (model::Param* p : params) p->zero_grad();
          break;
        }

        case Op::Flush:
          throw std::logic_error("async schedule contains Flush");
      }
    }
  }

  model::StageModule& module() { return module_; }
  int64_t stash_peak_bytes() const { return stash_peak_bytes_; }
  int stash_peak_entries() const { return stash_peak_entries_; }

 private:
  Tensor input_slice(const Batch& batch, int m) const {
    const int64_t seq = batch.inputs.size(1);
    const int64_t row0 =
        static_cast<int64_t>(m % cfg_.micro_batches) * cfg_.mb_sequences;
    Tensor out({cfg_.mb_sequences, seq});
    for (int64_t r = 0; r < cfg_.mb_sequences; ++r) {
      for (int64_t t = 0; t < seq; ++t) out.at(r, t) = batch.inputs.at(row0 + r, t);
    }
    return out;
  }

  Tensor target_slice(const Batch& batch, int m) const {
    const int64_t seq = batch.targets.size(1);
    const int64_t row0 =
        static_cast<int64_t>(m % cfg_.micro_batches) * cfg_.mb_sequences;
    Tensor out({cfg_.mb_sequences * seq});
    for (int64_t r = 0; r < cfg_.mb_sequences; ++r) {
      for (int64_t t = 0; t < seq; ++t) out[r * seq + t] = batch.targets.at(row0 + r, t);
    }
    return out;
  }

  void stash_params(int mb) {
    std::vector<Tensor> copy;
    int64_t bytes = 0;
    for (model::Param* p : module_.params()) {
      copy.push_back(p->value);
      bytes += p->value.bytes();
    }
    stash_[mb] = std::move(copy);
    stash_peak_entries_ =
        std::max(stash_peak_entries_, static_cast<int>(stash_.size()));
    int64_t total = 0;
    for (const auto& [m, vs] : stash_) {
      for (const Tensor& t : vs) total += t.bytes();
    }
    stash_peak_bytes_ = std::max(stash_peak_bytes_, total);
    (void)bytes;
  }

  void swap_with_stash(int mb) {
    const auto it = stash_.find(mb);
    if (it == stash_.end()) {
      throw std::logic_error("async: missing stashed weights");
    }
    const auto params = module_.params();
    if (params.size() != it->second.size()) {
      throw std::logic_error("async: stash size mismatch");
    }
    for (size_t k = 0; k < params.size(); ++k) {
      std::swap(params[k]->value, it->second[k]);
    }
  }

  void drop_stash(int mb) { stash_.erase(mb); }

  AsyncTrainerConfig cfg_;
  int device_;
  comm::Communicator comm_;
  model::StageModule module_;
  std::unique_ptr<model::Optimizer> optimizer_;
  std::map<int, std::vector<Tensor>> stash_;  // mb -> weight version
  int64_t stash_peak_bytes_ = 0;
  int stash_peak_entries_ = 0;
};

// ---------------------------------------------------------------------------
// AsyncTrainer

AsyncTrainer::AsyncTrainer(AsyncTrainerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.P < 1 || cfg_.micro_batches < 1) {
    throw std::invalid_argument("AsyncTrainer: P and micro_batches >= 1");
  }
  world_ = std::make_unique<comm::World>(cfg_.P);
  for (int d = 0; d < cfg_.P; ++d) {
    workers_.push_back(std::make_unique<StageWorker>(
        cfg_, d, comm::Communicator(world_.get(), d)));
  }
}

AsyncTrainer::~AsyncTrainer() = default;

std::vector<float> AsyncTrainer::train(const Batch& batch, int steps) {
  if (batch.inputs.size(0) != batch_rows()) {
    throw std::invalid_argument("AsyncTrainer::train: batch has " +
                                std::to_string(batch.inputs.size(0)) +
                                " rows, expected " +
                                std::to_string(batch_rows()));
  }
  if (steps < 1) throw std::invalid_argument("AsyncTrainer::train: steps >= 1");

  const int N = steps * cfg_.micro_batches;
  schedule::AsyncRequest req;
  req.P = cfg_.P;
  req.total_micro_batches = N;
  sched_ = schedule::make_async_schedule(req);
  const schedule::ValidationResult vr = schedule::validate_async(sched_);
  if (!vr.ok) throw std::logic_error("AsyncTrainer: invalid schedule: " + vr.error);

  std::vector<float> mb_loss(static_cast<size_t>(N), 0.0f);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(workers_.size());
  for (size_t d = 0; d < workers_.size(); ++d) {
    threads.emplace_back([&, d] {
      try {
        workers_[d]->run(sched_, batch,
                         d + 1 == workers_.size() ? &mb_loss : nullptr);
      } catch (...) {
        errors[d] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  stats_ = AsyncStats{};
  for (const auto& w : workers_) {
    stats_.stash_bytes.push_back(w->stash_peak_bytes());
    stats_.stash_entries.push_back(w->stash_peak_entries());
  }
  std::vector<float> step_loss(static_cast<size_t>(steps), 0.0f);
  for (int s = 0; s < steps; ++s) {
    float sum = 0.0f;
    for (int m = 0; m < cfg_.micro_batches; ++m) {
      sum += mb_loss[static_cast<size_t>(s * cfg_.micro_batches + m)];
    }
    step_loss[static_cast<size_t>(s)] = sum / static_cast<float>(cfg_.micro_batches);
  }
  stats_.mean_loss = step_loss.back();
  return step_loss;
}

std::map<std::string, tensor::Tensor> AsyncTrainer::snapshot_params() {
  std::map<std::string, tensor::Tensor> out;
  for (const auto& w : workers_) {
    for (model::Param* p : w->module().params()) {
      out.emplace(p->name, p->value);
    }
  }
  return out;
}

}  // namespace hanayo::runtime
