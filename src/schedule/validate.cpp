#include "schedule/validate.hpp"

#include <map>
#include <set>
#include <sstream>

namespace hanayo::schedule {

namespace {

std::string where(int device, size_t idx, const Action& a) {
  std::ostringstream os;
  os << "dev" << device << "[" << idx << "] " << op_name(a.op) << "(mb=" << a.mb
     << ", pos=" << a.pos << ", peer=" << a.peer << ")";
  return os.str();
}

}  // namespace

ValidationResult validate(const Schedule& sched) {
  const Placement& pl = sched.placement;
  const int S = pl.stages();
  const int B = sched.B;
  const auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };

  if (static_cast<int>(sched.scripts.size()) != sched.P) {
    return fail("script count != P");
  }

  // ---- (1) completeness + device correctness, (2) comm pairing.
  std::map<std::pair<int, int>, int> fwd_count, bwd_count;
  // key: (mb, pos, src, dst) -> count, separately for act and grad
  std::map<std::tuple<int, int, int, int>, int> act_send, act_recv, grad_send, grad_recv;

  for (const DeviceScript& ds : sched.scripts) {
    bool saw_flush = false, saw_opt = false;
    for (size_t i = 0; i < ds.actions.size(); ++i) {
      const Action& a = ds.actions[i];
      if (saw_opt) return fail("action after OptStep: " + where(ds.device, i, a));
      if (sched.forward_only && saw_flush) {
        return fail("action after Flush: " + where(ds.device, i, a));
      }
      if (sched.forward_only &&
          (a.op == Op::Backward || a.op == Op::SendGrad ||
           a.op == Op::RecvGrad || a.op == Op::OptStep)) {
        return fail("backward-phase action in forward-only schedule: " +
                    where(ds.device, i, a));
      }
      switch (a.op) {
        case Op::Forward:
        case Op::Backward: {
          if (a.mb < 0 || a.mb >= B || a.pos < 0 || a.pos >= S) {
            return fail("compute out of range: " + where(ds.device, i, a));
          }
          const DevChunk dc = pl.at(pl.route_of_mb(a.mb, B), a.pos);
          if (dc.device != ds.device) {
            return fail("compute on wrong device: " + where(ds.device, i, a));
          }
          if (dc.chunk != a.chunk) {
            return fail("compute on wrong chunk: " + where(ds.device, i, a));
          }
          auto& cnt = (a.op == Op::Forward) ? fwd_count : bwd_count;
          ++cnt[{a.mb, a.pos}];
          break;
        }
        case Op::SendAct:
          ++act_send[{a.mb, a.pos, ds.device, a.peer}];
          break;
        case Op::RecvAct:
          // RecvAct at pos expects the activation produced at pos-1.
          ++act_recv[{a.mb, a.pos - 1, a.peer, ds.device}];
          break;
        case Op::SendGrad:
          ++grad_send[{a.mb, a.pos, ds.device, a.peer}];
          break;
        case Op::RecvGrad:
          // RecvGrad at pos expects the gradient produced by pos+1.
          ++grad_recv[{a.mb, a.pos + 1, a.peer, ds.device}];
          break;
        case Op::LoadInput:
          if (a.pos != 0) return fail("LoadInput at pos!=0: " + where(ds.device, i, a));
          break;
        case Op::Flush:
          saw_flush = true;
          break;
        case Op::OptStep:
          if (!saw_flush) return fail("OptStep before Flush on dev" + std::to_string(ds.device));
          saw_opt = true;
          break;
      }
    }
    if (sched.forward_only) {
      if (!saw_flush) {
        return fail("dev" + std::to_string(ds.device) + " missing Flush");
      }
    } else if (!saw_flush || !saw_opt) {
      return fail("dev" + std::to_string(ds.device) + " missing Flush/OptStep");
    }
  }

  for (int m = 0; m < B; ++m) {
    for (int pos = 0; pos < S; ++pos) {
      if (fwd_count[{m, pos}] != 1) {
        return fail("F(" + std::to_string(m) + "," + std::to_string(pos) + ") count != 1");
      }
      if (!sched.forward_only && bwd_count[{m, pos}] != 1) {
        return fail("B(" + std::to_string(m) + "," + std::to_string(pos) + ") count != 1");
      }
    }
  }
  if (act_send != act_recv) return fail("activation sends and recvs do not pair up");
  if (grad_send != grad_recv) return fail("gradient sends and recvs do not pair up");

  // ---- (3) executability with blocking receives.
  // Executed message sets, keyed like the pairing maps.
  std::set<std::tuple<int, int, int, int>> acts_sent, grads_sent;
  // Data availability per device: activations/grads a device can consume.
  // produced[(dev, mb, pos)] for forward outputs present on dev;
  // gradin[(dev, mb, pos)] for output-gradients present on dev.
  std::set<std::tuple<int, int, int>> fwd_out, grad_out, loaded;
  std::vector<size_t> pc(static_cast<size_t>(sched.P), 0);

  bool progress = true;
  size_t total_done = 0, total_actions = 0;
  for (const auto& ds : sched.scripts) total_actions += ds.actions.size();

  while (progress) {
    progress = false;
    for (const DeviceScript& ds : sched.scripts) {
      auto& i = pc[static_cast<size_t>(ds.device)];
      while (i < ds.actions.size()) {
        const Action& a = ds.actions[i];
        const int d = ds.device;
        bool can = false;
        switch (a.op) {
          case Op::LoadInput:
            loaded.insert({d, a.mb, 0});
            can = true;
            break;
          case Op::Forward: {
            if (a.pos == 0) {
              can = loaded.count({d, a.mb, 0}) > 0;
            } else {
              can = fwd_out.count({d, a.mb, a.pos - 1}) > 0;
            }
            if (can) fwd_out.insert({d, a.mb, a.pos});
            break;
          }
          case Op::SendAct:
            can = fwd_out.count({d, a.mb, a.pos}) > 0;
            if (can) acts_sent.insert({a.mb, a.pos, d, a.peer});
            break;
          case Op::RecvAct:
            can = acts_sent.count({a.mb, a.pos - 1, a.peer, d}) > 0;
            if (can) fwd_out.insert({d, a.mb, a.pos - 1});
            break;
          case Op::Backward: {
            // Needs own forward done and, unless last position, the gradient
            // from pos+1 (local or received).
            const bool fwd_ok = fwd_out.count({d, a.mb, a.pos}) > 0;
            const bool grad_ok =
                (a.pos == S - 1) || grad_out.count({d, a.mb, a.pos + 1}) > 0;
            can = fwd_ok && grad_ok;
            if (can) grad_out.insert({d, a.mb, a.pos});
            break;
          }
          case Op::SendGrad:
            can = grad_out.count({d, a.mb, a.pos}) > 0;
            if (can) grads_sent.insert({a.mb, a.pos, d, a.peer});
            break;
          case Op::RecvGrad:
            can = grads_sent.count({a.mb, a.pos + 1, a.peer, d}) > 0;
            if (can) grad_out.insert({d, a.mb, a.pos + 1});
            break;
          case Op::Flush:
          case Op::OptStep:
            can = true;
            break;
        }
        if (!can) break;
        ++i;
        ++total_done;
        progress = true;
      }
    }
  }
  if (total_done != total_actions) {
    for (const DeviceScript& ds : sched.scripts) {
      const size_t i = pc[static_cast<size_t>(ds.device)];
      if (i < ds.actions.size()) {
        return fail("deadlock: stuck at " + where(ds.device, i, ds.actions[i]));
      }
    }
    return fail("deadlock (unknown site)");
  }

  return {};
}

}  // namespace hanayo::schedule
