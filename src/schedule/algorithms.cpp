#include "schedule/algorithms.hpp"

#include <stdexcept>

namespace hanayo::schedule {

Placement make_placement(const ScheduleRequest& req) {
  switch (req.algo) {
    case Algo::GPipe:
    case Algo::Dapple:
      return Placement::linear(req.P);
    case Algo::Interleaved:
      return Placement::interleaved(req.P, req.vchunks);
    case Algo::Chimera:
      return Placement::chimera(req.P);
    case Algo::ChimeraWave:
      // The Fig. 5 transform: one wave, replicas re-interpreted as data
      // parallelism (handled by the caller's D).
      return Placement::zigzag(req.P, 1);
    case Algo::Hanayo:
      return Placement::zigzag(req.P, req.waves);
    case Algo::PipeDream:
      return Placement::linear(req.P);
  }
  throw std::invalid_argument("make_placement: unknown algo");
}

Schedule make_schedule(const ScheduleRequest& req) {
  if (req.algo == Algo::PipeDream) {
    throw std::invalid_argument(
        "make_schedule: PipeDream is asynchronous; use make_async_schedule");
  }
  GenOptions opt;
  opt.tf = req.tf;
  opt.tb = req.tb;
  opt.all_forward_first = (req.algo == Algo::GPipe);
  // The steady-state in-flight cap is exact for the linear 1F1B placement
  // (it reproduces DAPPLE's classic P-rank warmup). For wave/interleaved/
  // bidirectional placements the same bound throttles the warmup phase —
  // a backward is a full wave round-trip away, so capping forwards at the
  // steady-state level just idles the device. Those schedules rely on the
  // eager backward-first policy to bound activation lifetime instead
  // (paper: "a schedule that consumes the activation as soon as it is
  // generated").
  opt.inflight_cap = (req.algo == Algo::Dapple);
  const int waves = (req.algo == Algo::Hanayo)        ? req.waves
                    : (req.algo == Algo::ChimeraWave) ? 1
                    : (req.algo == Algo::Interleaved) ? req.vchunks
                                                      : 0;
  return generate(req.algo, waves, make_placement(req), req.B, opt);
}

Schedule make_forward_schedule(const ScheduleRequest& req) {
  if (req.algo == Algo::PipeDream) {
    throw std::invalid_argument(
        "make_forward_schedule: PipeDream is asynchronous training only");
  }
  if (req.algo == Algo::Chimera) {
    throw std::invalid_argument(
        "make_forward_schedule: Chimera's bidirectional routes need backward "
        "waves; use Hanayo/ChimeraWave for forward-only pipelines");
  }
  GenOptions opt;
  opt.tf = req.tf;
  opt.tb = req.tb;
  opt.forward_only = true;
  opt.inflight_cap = false;  // nothing ever consumes an activation
  const int waves = (req.algo == Algo::Hanayo)        ? req.waves
                    : (req.algo == Algo::ChimeraWave) ? 1
                    : (req.algo == Algo::Interleaved) ? req.vchunks
                                                      : 0;
  return generate(req.algo, waves, make_placement(req), req.B, opt);
}

int stages_for(const ScheduleRequest& req) {
  return make_placement(req).stages();
}

int weight_replication_factor(Algo algo) {
  return algo == Algo::Chimera ? 2 : 1;
}

}  // namespace hanayo::schedule
