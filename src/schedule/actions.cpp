#include "schedule/actions.hpp"

#include <sstream>

namespace hanayo::schedule {

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::GPipe: return "GPipe";
    case Algo::Dapple: return "DAPPLE";
    case Algo::Interleaved: return "Interleaved";
    case Algo::Chimera: return "Chimera";
    case Algo::ChimeraWave: return "Chimera-wave";
    case Algo::Hanayo: return "Hanayo";
    case Algo::PipeDream: return "PipeDream";
  }
  return "?";
}

std::string op_name(Op op) {
  switch (op) {
    case Op::LoadInput: return "LoadInput";
    case Op::Forward: return "F";
    case Op::SendAct: return "SendAct";
    case Op::RecvAct: return "RecvAct";
    case Op::Backward: return "B";
    case Op::SendGrad: return "SendGrad";
    case Op::RecvGrad: return "RecvGrad";
    case Op::Flush: return "Flush";
    case Op::OptStep: return "OptStep";
  }
  return "?";
}

int Schedule::count(Op op) const {
  int n = 0;
  for (const DeviceScript& s : scripts) {
    for (const Action& a : s.actions) {
      if (a.op == op) ++n;
    }
  }
  return n;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << algo_name(algo) << " P=" << P << " B=" << B;
  if (W > 0) os << " W=" << W;
  os << " S=" << placement.stages() << "\n";
  for (const DeviceScript& s : scripts) {
    os << "  dev" << s.device << ":";
    for (const Action& a : s.actions) {
      os << ' ' << op_name(a.op);
      if (a.mb >= 0) os << '(' << a.mb << ',' << a.pos << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hanayo::schedule
