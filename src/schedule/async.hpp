#pragma once
// Asynchronous pipeline parallelism (paper §2.3, Fig. 4b).
//
// Asynchronous schemes "remove the flush and allow for more relaxed
// dependency constraints. As a result, they tend to have a lower bubble
// ratio" — at the cost of weight staleness: the weights used for a
// micro-batch's backward are older than the latest update. PipeDream
// compensates with weight stashing (each stage keeps the weight version a
// micro-batch saw in its forward and reuses it in the backward); without
// stashing the scheme behaves like PipeMare's discrepancy-tolerant variant.
//
// This module generates the PipeDream 1F1B schedule over a continuous
// stream of micro-batches (no Flush; an OptStep follows every Backward),
// plus its own validator and staleness analysis. The paper evaluates only
// synchronous schemes but explicitly notes "the strategies and
// optimizations we propose can also be applied to asynchronous pipeline
// parallelism implementation" — this module is that application.

#include "schedule/actions.hpp"
#include "schedule/validate.hpp"

namespace hanayo::schedule {

struct AsyncRequest {
  int P = 4;                  ///< pipeline devices (= stages, linear placement)
  int total_micro_batches = 16;  ///< length of the continuous stream
};

/// Builds the per-device action lists of the asynchronous 1F1B pipeline:
/// device d runs P−1−d warmup forwards, then strict one-forward-one-backward
/// with an OptStep applied immediately after every Backward, then drains.
/// There is no Flush. Schedule::B is the stream length.
Schedule make_async_schedule(const AsyncRequest& req);

/// Async counterpart of `validate`: completeness (every (mb, stage) has one
/// Forward and one Backward on the owning device), send/recv pairing,
/// deadlock-freedom with blocking receives, one OptStep directly after each
/// Backward, and the absence of Flush.
ValidationResult validate_async(const Schedule& sched);

/// Weight staleness of device d: the maximum number of optimizer updates
/// applied between a micro-batch's Forward and its Backward on that device.
/// For the PipeDream 1F1B schedule this is exactly P−1−d (the number of
/// weight versions a stashing implementation must keep, minus one).
int async_staleness(const Schedule& sched, int device);

}  // namespace hanayo::schedule
