#pragma once
// Static schedule verification.
//
// Before a schedule reaches the runtime or the simulator it is proven:
//  (1) complete  — every (micro-batch, position) has exactly one Forward and
//      one Backward, on the device the placement dictates;
//  (2) paired    — every SendAct/SendGrad has exactly one matching
//      RecvAct/RecvGrad with inverse endpoints;
//  (3) executable — interpreting all device scripts concurrently with
//      blocking receives reaches completion (no deadlock, no use of data
//      that was never produced);
//  (4) terminated — each device ends with Flush followed by OptStep.
//
// Forward-only schedules (Schedule::forward_only, the serving programs) are
// held to the same standard with the backward half removed: exactly one
// Forward per (micro-batch, position), no Backward/SendGrad/RecvGrad/OptStep
// anywhere, activation sends paired, executable, and each device terminated
// by Flush alone.

#include <string>

#include "schedule/actions.hpp"

namespace hanayo::schedule {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< first problem found, empty when ok
};

ValidationResult validate(const Schedule& sched);

}  // namespace hanayo::schedule
