#pragma once
// Catalogue of the synchronous pipeline algorithms evaluated in the paper.

#include "schedule/generator.hpp"

namespace hanayo::schedule {

/// Everything needed to build one pipeline's schedule.
struct ScheduleRequest {
  Algo algo = Algo::Hanayo;
  int P = 4;       ///< pipeline devices
  int B = 8;       ///< micro-batches per iteration
  int waves = 1;   ///< Hanayo W; ignored elsewhere
  int vchunks = 2; ///< Interleaved chunk count V; ignored elsewhere
  /// Relative stage costs used for scheduling-order decisions.
  double tf = 1.0;
  double tb = 2.0;
};

/// Builds the placement an algorithm uses.
Placement make_placement(const ScheduleRequest& req);

/// Builds the complete per-device action lists for an algorithm.
Schedule make_schedule(const ScheduleRequest& req);

/// Builds the forward-only (inference) program of an algorithm: the same
/// placement and wavefront ordering, but only the F-chain of every
/// micro-batch — no Backward/SendGrad/RecvGrad/OptStep. The serving runtime
/// streams prefill micro-batches and decode steps through these schedules.
/// Chimera is rejected (its bidirectional routes exist to overlap backward
/// waves; forward-only it degenerates to two half-pipelines).
Schedule make_forward_schedule(const ScheduleRequest& req);

/// Number of model stages the algorithm partitions the network into.
int stages_for(const ScheduleRequest& req);

/// Weight-memory factor relative to "one model / P" (2 for Chimera because
/// of the replica; 1 for everything else, which is the paper's point).
int weight_replication_factor(Algo algo);

}  // namespace hanayo::schedule
