#include "schedule/placement.hpp"

#include <stdexcept>

namespace hanayo::schedule {

int Placement::route_of_mb(int m, int B) const {
  if (routes() == 1) return 0;
  return (m < (B + 1) / 2) ? 0 : 1;
}

Placement Placement::linear(int P) {
  if (P <= 0) throw std::invalid_argument("linear placement: P <= 0");
  Placement p;
  p.kind_ = "linear";
  p.devices_ = P;
  p.chunks_per_device_ = 1;
  p.stages_ = P;
  p.route_map_.resize(1);
  p.stage_of_.assign(static_cast<size_t>(P), {});
  for (int s = 0; s < P; ++s) {
    p.route_map_[0].push_back(DevChunk{s, 0});
    p.stage_of_[static_cast<size_t>(s)] = {s};
  }
  return p;
}

Placement Placement::interleaved(int P, int V) {
  if (P <= 0 || V <= 0) throw std::invalid_argument("interleaved placement: bad P/V");
  Placement p;
  p.kind_ = "interleaved";
  p.devices_ = P;
  p.chunks_per_device_ = V;
  p.stages_ = P * V;
  p.route_map_.resize(1);
  p.stage_of_.assign(static_cast<size_t>(P), std::vector<int>(static_cast<size_t>(V), -1));
  for (int s = 0; s < p.stages_; ++s) {
    const int d = s % P;
    const int c = s / P;
    p.route_map_[0].push_back(DevChunk{d, c});
    p.stage_of_[static_cast<size_t>(d)][static_cast<size_t>(c)] = s;
  }
  return p;
}

Placement Placement::zigzag(int P, int W) {
  if (P <= 0 || W <= 0) throw std::invalid_argument("zigzag placement: bad P/W");
  Placement p;
  p.kind_ = "zigzag";
  p.devices_ = P;
  p.chunks_per_device_ = 2 * W;
  p.stages_ = 2 * W * P;
  p.route_map_.resize(1);
  p.stage_of_.assign(static_cast<size_t>(P), {});
  std::vector<int> next_chunk(static_cast<size_t>(P), 0);
  for (int s = 0; s < p.stages_; ++s) {
    const int leg = s / P;          // which monotone run
    const int off = s % P;          // offset within the run
    const int d = (leg % 2 == 0) ? off : (P - 1 - off);
    const int c = next_chunk[static_cast<size_t>(d)]++;
    p.route_map_[0].push_back(DevChunk{d, c});
    p.stage_of_[static_cast<size_t>(d)].push_back(s);
  }
  return p;
}

Placement Placement::chimera(int P) {
  if (P <= 0 || P % 2 != 0) {
    throw std::invalid_argument("chimera placement: P must be positive and even");
  }
  Placement p;
  p.kind_ = "chimera";
  p.devices_ = P;
  p.chunks_per_device_ = 2;
  p.stages_ = P;
  p.replicas_ = 2;
  p.route_map_.resize(2);
  p.stage_of_.assign(static_cast<size_t>(P), std::vector<int>(2, -1));
  for (int s = 0; s < P; ++s) {
    // Route 0 (down): stage s on device s, chunk 0.
    p.route_map_[0].push_back(DevChunk{s, 0});
    p.stage_of_[static_cast<size_t>(s)][0] = s;
    // Route 1 (up): stage s on device P-1-s, chunk 1.
    p.route_map_[1].push_back(DevChunk{P - 1 - s, 1});
    p.stage_of_[static_cast<size_t>(P - 1 - s)][1] = s;
  }
  return p;
}

}  // namespace hanayo::schedule
