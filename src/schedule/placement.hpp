#pragma once
// Stage placements — where each pipeline stage lives.
//
// The paper's unified framework (§3) separates *what* is computed (the chain
// of S model stages per micro-batch) from *where* (which device, which local
// module a.k.a. chunk) and *when* (the scheduling policy, see generator.hpp).
// A `Placement` answers the "where":
//
//  * linear      — stage s on device s (GPipe, DAPPLE).           S = P
//  * interleaved — stage s on device s mod P (Megatron).          S = V*P
//  * zigzag      — the wave path 0,1,…,P−1,P−1,…,1,0,0,1,… (Hanayo with W
//                  waves; also Chimera-wave with W=1).            S = 2*W*P
//                  Consecutive stages at the turning points share a device,
//                  which is exactly the "no communication" property of the
//                  Fig. 5 transform.
//  * chimera     — two mirrored linear pipelines sharing devices; route 0
//                  runs down (stage s on device s), route 1 runs up (stage s
//                  on device P−1−s). Each device holds 2 model replicas'
//                  chunks.                                         S = P

#include <string>
#include <vector>

namespace hanayo::schedule {

/// Identifies a (device, local module rank) pair.
struct DevChunk {
  int device = -1;
  int chunk = -1;
  bool operator==(const DevChunk&) const = default;
};

class Placement {
 public:
  /// P.
  int devices() const { return devices_; }
  /// Local modules per device (the paper's "local module rank" space).
  int chunks_per_device() const { return chunks_per_device_; }
  /// Model stages (positions along one route).
  int stages() const { return stages_; }
  /// Independent micro-batch routes (2 for Chimera, else 1).
  int routes() const { return static_cast<int>(route_map_.size()); }
  /// How many copies of each model stage's weights exist (2 for Chimera).
  int replicas() const { return replicas_; }

  /// Where position `pos` of route `r` executes.
  DevChunk at(int route, int pos) const { return route_map_[static_cast<size_t>(route)][static_cast<size_t>(pos)]; }

  /// Model stage whose weights live at (device, chunk). With replicas > 1,
  /// several (device, chunk) pairs may map to the same stage.
  int stage_of(int device, int chunk) const { return stage_of_[static_cast<size_t>(device)][static_cast<size_t>(chunk)]; }

  /// Which route micro-batch m (of B) takes. Chimera sends the first half
  /// down and the second half up (Fig. 3c); everything else uses route 0.
  int route_of_mb(int m, int B) const;

  const std::string& kind() const { return kind_; }

  static Placement linear(int P);
  static Placement interleaved(int P, int V);
  static Placement zigzag(int P, int W);
  static Placement chimera(int P);

 private:
  std::string kind_;
  int devices_ = 0;
  int chunks_per_device_ = 0;
  int stages_ = 0;
  int replicas_ = 1;
  std::vector<std::vector<DevChunk>> route_map_;  // [route][pos]
  std::vector<std::vector<int>> stage_of_;        // [device][chunk]
};

}  // namespace hanayo::schedule
