#include "schedule/async.hpp"

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace hanayo::schedule {

namespace {

/// Emits the receive + compute + send block for one forward of `m` on
/// device `d` of a P-stage linear pipeline.
void emit_forward(DeviceScript& ds, int m, int d, int P) {
  if (d == 0) {
    ds.actions.push_back({Op::LoadInput, m, 0, 0, 0, -1});
  } else {
    ds.actions.push_back({Op::RecvAct, m, d, 0, 0, d - 1});
  }
  ds.actions.push_back({Op::Forward, m, d, 0, 0, -1});
  if (d < P - 1) {
    ds.actions.push_back({Op::SendAct, m, d, 0, 0, d + 1});
  }
}

/// Emits the receive + compute + update + send block for one backward.
void emit_backward(DeviceScript& ds, int m, int d, int P) {
  if (d < P - 1) {
    ds.actions.push_back({Op::RecvGrad, m, d, 0, 0, d + 1});
  }
  ds.actions.push_back({Op::Backward, m, d, 0, 0, -1});
  if (d > 0) {
    ds.actions.push_back({Op::SendGrad, m, d, 0, 0, d - 1});
  }
  // Apply this micro-batch's gradient immediately — the defining property
  // of the asynchronous scheme (no flush, per-micro-batch updates).
  ds.actions.push_back({Op::OptStep, m, d, 0, 0, -1});
}

std::string at(int device, size_t idx, const Action& a) {
  std::ostringstream os;
  os << "dev" << device << "[" << idx << "] " << op_name(a.op)
     << "(mb=" << a.mb << ", pos=" << a.pos << ", peer=" << a.peer << ")";
  return os.str();
}

}  // namespace

Schedule make_async_schedule(const AsyncRequest& req) {
  if (req.P < 1 || req.total_micro_batches < 1) {
    throw std::invalid_argument("make_async_schedule: P and stream >= 1");
  }
  const int P = req.P;
  const int N = req.total_micro_batches;

  Schedule sched;
  sched.algo = Algo::PipeDream;
  sched.P = P;
  sched.B = N;
  sched.W = 0;
  sched.placement = Placement::linear(P);
  sched.scripts.resize(static_cast<size_t>(P));

  for (int d = 0; d < P; ++d) {
    DeviceScript& ds = sched.scripts[static_cast<size_t>(d)];
    ds.device = d;
    const int warmup = std::min(P - 1 - d, N);
    for (int m = 0; m < warmup; ++m) emit_forward(ds, m, d, P);
    // Steady state: strict 1F1B until the stream of forwards runs dry.
    int nb = 0;
    for (int nf = warmup; nf < N; ++nf) {
      emit_forward(ds, nf, d, P);
      emit_backward(ds, nb++, d, P);
    }
    // Drain the remaining backwards.
    for (; nb < N; ++nb) emit_backward(ds, nb, d, P);
  }
  return sched;
}

ValidationResult validate_async(const Schedule& sched) {
  const int P = sched.P;
  const int N = sched.B;
  const auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };
  if (static_cast<int>(sched.scripts.size()) != P) {
    return fail("script count != P");
  }

  // (1) completeness on the owning device, OptStep placement, no Flush;
  // (2) send/recv pairing.
  std::map<std::pair<int, int>, int> fwd_count, bwd_count;
  std::map<std::tuple<int, int, int, int>, int> act_send, act_recv, grad_send,
      grad_recv;

  for (const DeviceScript& ds : sched.scripts) {
    const int d = ds.device;
    int last_backward_mb = -1;
    bool opt_pending = false;  // a Backward awaiting its OptStep
    for (size_t i = 0; i < ds.actions.size(); ++i) {
      const Action& a = ds.actions[i];
      switch (a.op) {
        case Op::Forward:
        case Op::Backward: {
          if (a.mb < 0 || a.mb >= N || a.pos != d) {
            return fail("compute out of range/place: " + at(d, i, a));
          }
          if (a.op == Op::Backward) {
            if (opt_pending) {
              return fail("Backward before previous OptStep: " + at(d, i, a));
            }
            last_backward_mb = a.mb;
            opt_pending = true;
          }
          auto& cnt = (a.op == Op::Forward) ? fwd_count : bwd_count;
          ++cnt[{a.mb, a.pos}];
          break;
        }
        case Op::OptStep:
          if (!opt_pending || a.mb != last_backward_mb) {
            return fail("OptStep without matching Backward: " + at(d, i, a));
          }
          opt_pending = false;
          break;
        case Op::SendAct:
          ++act_send[{a.mb, a.pos, d, a.peer}];
          break;
        case Op::RecvAct:
          ++act_recv[{a.mb, a.pos - 1, a.peer, d}];
          break;
        case Op::SendGrad:
          ++grad_send[{a.mb, a.pos, d, a.peer}];
          break;
        case Op::RecvGrad:
          ++grad_recv[{a.mb, a.pos + 1, a.peer, d}];
          break;
        case Op::LoadInput:
          if (d != 0) return fail("LoadInput off device 0: " + at(d, i, a));
          break;
        case Op::Flush:
          return fail("async schedule contains Flush: " + at(d, i, a));
      }
    }
    if (opt_pending) {
      return fail("dev" + std::to_string(d) + " ends with an unapplied Backward");
    }
  }
  for (int m = 0; m < N; ++m) {
    for (int d = 0; d < P; ++d) {
      if (fwd_count[{m, d}] != 1) {
        return fail("F(" + std::to_string(m) + "," + std::to_string(d) + ") count != 1");
      }
      if (bwd_count[{m, d}] != 1) {
        return fail("B(" + std::to_string(m) + "," + std::to_string(d) + ") count != 1");
      }
    }
  }
  if (act_send != act_recv) return fail("activation sends and recvs do not pair up");
  if (grad_send != grad_recv) return fail("gradient sends and recvs do not pair up");

  // (3) executability with blocking receives (no flush barrier involved).
  std::set<std::tuple<int, int, int, int>> acts_sent, grads_sent;
  std::set<std::tuple<int, int, int>> fwd_out, grad_out;
  std::vector<size_t> pc(static_cast<size_t>(P), 0);
  size_t total_done = 0, total_actions = 0;
  for (const auto& ds : sched.scripts) total_actions += ds.actions.size();

  bool progress = true;
  while (progress) {
    progress = false;
    for (const DeviceScript& ds : sched.scripts) {
      const int d = ds.device;
      auto& i = pc[static_cast<size_t>(d)];
      while (i < ds.actions.size()) {
        const Action& a = ds.actions[i];
        bool can = false;
        switch (a.op) {
          case Op::LoadInput:
            fwd_out.insert({d, a.mb, -1});
            can = true;
            break;
          case Op::Forward:
            can = fwd_out.count({d, a.mb, a.pos == 0 ? -1 : a.pos - 1}) > 0;
            if (can) fwd_out.insert({d, a.mb, a.pos});
            break;
          case Op::SendAct:
            can = fwd_out.count({d, a.mb, a.pos}) > 0;
            if (can) acts_sent.insert({a.mb, a.pos, d, a.peer});
            break;
          case Op::RecvAct:
            can = acts_sent.count({a.mb, a.pos - 1, a.peer, d}) > 0;
            if (can) fwd_out.insert({d, a.mb, a.pos - 1});
            break;
          case Op::Backward: {
            const bool fwd_ok = fwd_out.count({d, a.mb, a.pos}) > 0;
            const bool grad_ok =
                (a.pos == P - 1) || grad_out.count({d, a.mb, a.pos + 1}) > 0;
            can = fwd_ok && grad_ok;
            if (can) grad_out.insert({d, a.mb, a.pos});
            break;
          }
          case Op::SendGrad:
            can = grad_out.count({d, a.mb, a.pos}) > 0;
            if (can) grads_sent.insert({a.mb, a.pos, d, a.peer});
            break;
          case Op::RecvGrad:
            can = grads_sent.count({a.mb, a.pos + 1, a.peer, d}) > 0;
            if (can) grad_out.insert({d, a.mb, a.pos + 1});
            break;
          case Op::OptStep:
            can = true;
            break;
          case Op::Flush:
            can = false;  // already rejected above
            break;
        }
        if (!can) break;
        ++i;
        ++total_done;
        progress = true;
      }
    }
  }
  if (total_done != total_actions) {
    for (const DeviceScript& ds : sched.scripts) {
      const size_t i = pc[static_cast<size_t>(ds.device)];
      if (i < ds.actions.size()) {
        return fail("deadlock: stuck at " + at(ds.device, i, ds.actions[i]));
      }
    }
    return fail("deadlock (unknown site)");
  }
  return {};
}

int async_staleness(const Schedule& sched, int device) {
  if (device < 0 || device >= sched.P) {
    throw std::invalid_argument("async_staleness: device out of range");
  }
  const DeviceScript& ds = sched.scripts[static_cast<size_t>(device)];
  // For each micro-batch, count OptSteps executed between its Forward and
  // its Backward in this device's program order.
  std::map<int, int> opt_at_forward;  // mb -> #OptSteps seen at its Forward
  int opts = 0;
  int worst = 0;
  for (const Action& a : ds.actions) {
    if (a.op == Op::Forward) {
      opt_at_forward[a.mb] = opts;
    } else if (a.op == Op::Backward) {
      const auto it = opt_at_forward.find(a.mb);
      if (it != opt_at_forward.end()) {
        worst = std::max(worst, opts - it->second);
      }
    } else if (a.op == Op::OptStep) {
      ++opts;
    }
  }
  return worst;
}

}  // namespace hanayo::schedule
