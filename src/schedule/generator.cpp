#include "schedule/generator.hpp"

#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <tuple>

namespace hanayo::schedule {

namespace {

/// One compute node of the iteration DAG.
struct Node {
  int m = 0;        // micro-batch
  int pos = 0;      // route position
  int route = 0;
  bool backward = false;
  int device = -1;
  int chunk = -1;
};

/// Priority key: wavefront depth, then micro-batch, then backward-first.
using Key = std::tuple<int, int, int>;  // (depth, m, pos)

}  // namespace

int inflight_cap_for(int pos, int stages, int chunks_per_device, double tf,
                     double tb) {
  // An activation produced at position `pos` is consumed after the
  // micro-batch travels to the end of the route and back:
  //   round_trip = (S-1-pos) * (tf + tb) + tb.
  // In steady state a device finishes one micro-batch's worth of work every
  //   period = chunks_per_device * (tf + tb),
  // so the chunk accumulates ceil(round_trip / period) live activations.
  const double round_trip = (stages - 1 - pos) * (tf + tb) + tb;
  const double period = chunks_per_device * (tf + tb);
  const int cap = static_cast<int>(std::ceil(round_trip / period - 1e-9));
  return cap < 1 ? 1 : cap;
}

Schedule generate(Algo algo, int waves, const Placement& pl, int B,
                  const GenOptions& opt) {
  if (B < 1) throw std::invalid_argument("generate: B < 1");
  const int S = pl.stages();
  const int P = pl.devices();
  if (S < 1 || P < 1) throw std::invalid_argument("generate: empty placement");
  if (pl.routes() == 2 && B < 2) {
    throw std::invalid_argument("generate: bidirectional placement needs B >= 2");
  }

  // ---- Build the node table. Node id: ((m * S) + pos) * ops + backward,
  // where ops is 1 for forward-only programs (no backward nodes exist).
  const int ops = opt.forward_only ? 1 : 2;
  const auto node_id = [S, ops](int m, int pos, bool bw) {
    return ((m * S) + pos) * ops + (bw ? 1 : 0);
  };
  std::vector<Node> nodes(static_cast<size_t>(B * S * ops));
  std::vector<int> route_of(static_cast<size_t>(B));
  std::vector<int> route_start(static_cast<size_t>(pl.routes()), -1);
  for (int m = 0; m < B; ++m) {
    const int r = pl.route_of_mb(m, B);
    route_of[static_cast<size_t>(m)] = r;
    if (route_start[static_cast<size_t>(r)] < 0) route_start[static_cast<size_t>(r)] = m;
    for (int pos = 0; pos < S; ++pos) {
      const DevChunk dc = pl.at(r, pos);
      for (int bw = 0; bw < ops; ++bw) {
        Node& n = nodes[static_cast<size_t>(node_id(m, pos, bw != 0))];
        n.m = m;
        n.pos = pos;
        n.route = r;
        n.backward = (bw != 0);
        n.device = dc.device;
        n.chunk = dc.chunk;
      }
    }
  }

  // ---- Greedy earliest-ready list scheduling.
  const double tfb = opt.tf + opt.tb;
  std::vector<double> dev_free(static_cast<size_t>(P), 0.0);
  std::vector<std::set<std::pair<Key, int>>> ready_f(static_cast<size_t>(P));
  std::vector<std::set<std::pair<Key, int>>> ready_b(static_cast<size_t>(P));
  std::vector<char> done(nodes.size(), 0);
  std::vector<char> started(nodes.size(), 0);
  // In-flight activations per (device, chunk): F started minus B completed.
  std::vector<std::vector<int>> inflight(static_cast<size_t>(P),
                                         std::vector<int>(static_cast<size_t>(pl.chunks_per_device()), 0));
  // Remaining forwards per device, for the GPipe phase barrier.
  std::vector<int> fwd_remaining(static_cast<size_t>(P), 0);
  for (int m = 0; m < B; ++m) {
    for (int pos = 0; pos < S; ++pos) {
      ++fwd_remaining[static_cast<size_t>(nodes[static_cast<size_t>(node_id(m, pos, false))].device)];
    }
  }

  const auto f_key = [&](const Node& n) {
    const int mloc = n.m - route_start[static_cast<size_t>(n.route)];
    return Key{mloc + n.pos, n.m, n.pos};
  };
  const auto b_key = [&](const Node& n) {
    const int mloc = n.m - route_start[static_cast<size_t>(n.route)];
    return Key{mloc + (S - 1 - n.pos), n.m, S - 1 - n.pos};
  };

  for (int m = 0; m < B; ++m) {
    const Node& n = nodes[static_cast<size_t>(node_id(m, 0, false))];
    ready_f[static_cast<size_t>(n.device)].insert({f_key(n), node_id(m, 0, false)});
  }

  // Completion events: (time, node id). Order ties by node id for determinism.
  using Event = std::pair<double, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // Per-device order of started compute nodes — this *is* the schedule.
  std::vector<std::vector<int>> order(static_cast<size_t>(P));

  const auto try_start = [&](int d, double now) {
    if (dev_free[static_cast<size_t>(d)] > now + 1e-12) return;  // busy
    auto& rf = ready_f[static_cast<size_t>(d)];
    auto& rb = ready_b[static_cast<size_t>(d)];
    int pick = -1;
    if (opt.all_forward_first) {
      if (!rf.empty()) {
        pick = rf.begin()->second;
        rf.erase(rf.begin());
      } else if (fwd_remaining[static_cast<size_t>(d)] == 0 && !rb.empty()) {
        pick = rb.begin()->second;
        rb.erase(rb.begin());
      }
    } else {
      if (!rb.empty()) {
        pick = rb.begin()->second;
        rb.erase(rb.begin());
      } else if (!rf.empty()) {
        // Respect the in-flight cap: scan ready forwards in priority order
        // and take the first admissible one.
        for (auto it = rf.begin(); it != rf.end(); ++it) {
          const Node& n = nodes[static_cast<size_t>(it->second)];
          if (opt.inflight_cap && !opt.forward_only) {
            const int cap = inflight_cap_for(n.pos, S, pl.chunks_per_device(), opt.tf, opt.tb);
            if (inflight[static_cast<size_t>(d)][static_cast<size_t>(n.chunk)] >= cap) continue;
          }
          pick = it->second;
          rf.erase(it);
          break;
        }
      }
    }
    if (pick < 0) return;
    const Node& n = nodes[static_cast<size_t>(pick)];
    started[static_cast<size_t>(pick)] = 1;
    if (!n.backward) {
      ++inflight[static_cast<size_t>(d)][static_cast<size_t>(n.chunk)];
      --fwd_remaining[static_cast<size_t>(d)];
    }
    const double cost = n.backward ? opt.tb : opt.tf;
    dev_free[static_cast<size_t>(d)] = now + cost;
    order[static_cast<size_t>(d)].push_back(pick);
    events.push({now + cost, pick});
  };

  for (int d = 0; d < P; ++d) try_start(d, 0.0);

  size_t completed = 0;
  const size_t total = nodes.size();
  (void)tfb;
  while (!events.empty()) {
    const auto [t, id] = events.top();
    events.pop();
    done[static_cast<size_t>(id)] = 1;
    ++completed;
    const Node& n = nodes[static_cast<size_t>(id)];

    // Release successors.
    std::vector<int> touched_devices;
    const auto make_ready = [&](int succ_id, bool bw) {
      const Node& s = nodes[static_cast<size_t>(succ_id)];
      if (bw) {
        ready_b[static_cast<size_t>(s.device)].insert({b_key(s), succ_id});
      } else {
        ready_f[static_cast<size_t>(s.device)].insert({f_key(s), succ_id});
      }
      touched_devices.push_back(s.device);
    };

    if (!n.backward) {
      if (n.pos + 1 < S) {
        make_ready(node_id(n.m, n.pos + 1, false), false);
      } else if (!opt.forward_only) {
        make_ready(node_id(n.m, n.pos, true), true);  // B(m, S-1) after F(m, S-1)
      }
    } else {
      --inflight[static_cast<size_t>(n.device)][static_cast<size_t>(n.chunk)];
      if (n.pos > 0) make_ready(node_id(n.m, n.pos - 1, true), true);
    }

    // The finishing device is free again; devices with new ready work may
    // also start (they may have been idle since before `t`).
    try_start(n.device, t);
    for (int d : touched_devices) try_start(d, std::max(t, dev_free[static_cast<size_t>(d)]));
    // A device whose cap blocked it may now be unblocked (its inflight
    // decreased); `n.device` is covered above, caps only change there.
  }
  if (completed != total) {
    throw std::logic_error("generate: scheduling did not complete (internal)");
  }

  // ---- Emit action lists from the per-device start order.
  Schedule sched;
  sched.algo = algo;
  sched.P = P;
  sched.B = B;
  sched.W = waves;
  sched.forward_only = opt.forward_only;
  sched.placement = pl;
  sched.scripts.resize(static_cast<size_t>(P));
  for (int d = 0; d < P; ++d) {
    DeviceScript& ds = sched.scripts[static_cast<size_t>(d)];
    ds.device = d;
    for (int id : order[static_cast<size_t>(d)]) {
      const Node& n = nodes[static_cast<size_t>(id)];
      if (!n.backward) {
        if (n.pos == 0) {
          ds.actions.push_back(Action{Op::LoadInput, n.m, 0, n.route, n.chunk, -1});
        } else {
          const DevChunk prod = pl.at(n.route, n.pos - 1);
          if (prod.device != d) {
            ds.actions.push_back(Action{Op::RecvAct, n.m, n.pos, n.route, n.chunk, prod.device});
          }
        }
        ds.actions.push_back(Action{Op::Forward, n.m, n.pos, n.route, n.chunk, -1});
        if (n.pos + 1 < S) {
          const DevChunk cons = pl.at(n.route, n.pos + 1);
          if (cons.device != d) {
            ds.actions.push_back(Action{Op::SendAct, n.m, n.pos, n.route, n.chunk, cons.device});
          }
        }
      } else {
        if (n.pos + 1 < S) {
          const DevChunk prod = pl.at(n.route, n.pos + 1);
          if (prod.device != d) {
            ds.actions.push_back(Action{Op::RecvGrad, n.m, n.pos, n.route, n.chunk, prod.device});
          }
        }
        ds.actions.push_back(Action{Op::Backward, n.m, n.pos, n.route, n.chunk, -1});
        if (n.pos > 0) {
          const DevChunk cons = pl.at(n.route, n.pos - 1);
          if (cons.device != d) {
            ds.actions.push_back(Action{Op::SendGrad, n.m, n.pos, n.route, n.chunk, cons.device});
          }
        }
      }
    }
    ds.actions.push_back(Action{Op::Flush, -1, -1, 0, -1, -1});
    if (!opt.forward_only) {
      ds.actions.push_back(Action{Op::OptStep, -1, -1, 0, -1, -1});
    }
  }
  return sched;
}

}  // namespace hanayo::schedule
