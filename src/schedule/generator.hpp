#pragma once
// The unified schedule generator (paper §3: "the Hanayo unified framework
// enables the expression of mainstream pipeline parallel algorithms in a
// universal manner").
//
// Every synchronous pipeline algorithm is expressed as
//     placement  +  scheduling policy
// and compiled by one greedy earliest-ready list scheduler into per-device
// action lists. Dependencies are the per-micro-batch chain
//     F(m,0) -> ... -> F(m,S-1) -> B(m,S-1) -> ... -> B(m,0).
//
// Policies:
//  * AllForwardThenBackward — a device runs backwards only after finishing
//    every forward assigned to it (GPipe, Fig. 3a).
//  * OneFOneB — backwards run as soon as they are ready and take priority
//    over forwards (consume the activation as early as possible); forward
//    admission is limited by a per-chunk in-flight cap derived from the
//    activation round-trip time, which reproduces DAPPLE's classic
//    "P − rank" warmup exactly and generalises it to interleaved/wave
//    placements.
//
// Ties are broken by the wavefront order (m + pos, m) for forwards and
// (m + S−1−pos, m) for backwards, which yields the paper's drawn schedules.

#include "schedule/actions.hpp"

namespace hanayo::schedule {

struct GenOptions {
  /// Relative per-stage compute costs used for ordering decisions. The paper
  /// draws (and we default to) backward = 2x forward.
  double tf = 1.0;
  double tb = 2.0;
  /// GPipe phase barrier.
  bool all_forward_first = false;
  /// Enable the 1F1B in-flight cap (off for GPipe).
  bool inflight_cap = true;
  /// Emit the F-chain only (inference): no Backward/SendGrad/RecvGrad nodes
  /// and no OptStep — each device ends with the Flush pass barrier. The
  /// in-flight cap is ignored (no backward ever releases an activation).
  bool forward_only = false;
};

/// Compiles (placement, B, policy) into a complete schedule. Throws on
/// infeasible inputs (B < 1, placement empty, Chimera with odd B when
/// routes = 2 is allowed — the halves just differ by one).
Schedule generate(Algo algo, int waves, const Placement& placement, int B,
                  const GenOptions& opt);

/// The in-flight cap used by the OneFOneB policy for a chunk whose route
/// position is `pos` (exposed for tests): number of activations this chunk
/// may hold before its first backward returns, in steady state.
int inflight_cap_for(int pos, int stages, int chunks_per_device, double tf,
                     double tb);

}  // namespace hanayo::schedule
