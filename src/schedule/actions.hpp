#pragma once
// The action-list IR (paper §4.1).
//
// DeepSpeed-style instructions broken into finer granularity and augmented
// with the target device rank and the local module rank, exactly as the
// paper describes. A `Schedule` is the complete static program of one
// training iteration: one ordered action list per device.

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/placement.hpp"

namespace hanayo::schedule {

enum class Algo {
  GPipe,
  Dapple,        ///< 1F1B
  Interleaved,   ///< Megatron-LM interleaved 1F1B
  Chimera,       ///< bidirectional, 2 model replicas
  ChimeraWave,   ///< Chimera after the Fig. 5 wave transform (= zigzag W=1)
  Hanayo,        ///< wave pipeline, parameterised by W
  PipeDream,     ///< asynchronous 1F1B, no flush (paper §2.3 / Fig. 4b);
                 ///< built by make_async_schedule, not make_schedule
};

std::string algo_name(Algo a);

enum class Op : uint8_t {
  LoadInput,   ///< fetch micro-batch inputs (first position of a route)
  Forward,     ///< forward of (mb, pos) on local chunk
  SendAct,     ///< send activation of (mb, pos) to peer
  RecvAct,     ///< receive activation of (mb, pos-1) from peer
  Backward,    ///< backward of (mb, pos); at the last position this also
               ///< computes the loss from the stored logits
  SendGrad,    ///< send input-gradient of (mb, pos) to peer
  RecvGrad,    ///< receive output-gradient (produced by (mb, pos+1)) from peer
  Flush,       ///< synchronisation point: all compute done, DP allreduce
  OptStep,     ///< apply optimizer to local chunks
};

std::string op_name(Op op);

struct Action {
  Op op = Op::Forward;
  int mb = -1;     ///< micro-batch index
  int pos = -1;    ///< position along the route (= model stage index)
  int route = 0;
  int chunk = -1;  ///< local module rank executing / owning the data
  int peer = -1;   ///< remote device rank for Send*/Recv*
};

struct DeviceScript {
  int device = -1;
  std::vector<Action> actions;
};

struct Schedule {
  Algo algo = Algo::GPipe;
  int P = 0;      ///< pipeline devices
  int B = 0;      ///< micro-batches per iteration
  int W = 0;      ///< waves (Hanayo), interleave depth V (Interleaved), else 0
  /// Forward-only (inference) program: the F-chain of every micro-batch with
  /// no Backward/SendGrad/RecvGrad/OptStep actions. Each device still ends
  /// with Flush, which the serving runtime uses as the pass barrier.
  bool forward_only = false;
  Placement placement;
  std::vector<DeviceScript> scripts;

  /// Total count of a given op across all devices.
  int count(Op op) const;
  /// Multi-line human-readable dump (for debugging / the gallery example).
  std::string to_string() const;
};

}  // namespace hanayo::schedule
