// Fig. 4 — synchronous vs asynchronous pipeline parallelism (paper §2.3).
// The paper illustrates that removing the per-iteration flush lets the next
// iteration's forwards fill the drain bubble, at the cost of weight
// staleness (which is why Hanayo stays synchronous).
//
// Three views, all on the real machinery:
//  1. Timing: k synchronous DAPPLE iterations (flush serialises them)
//     versus the genuine PipeDream schedule from make_async_schedule —
//     the same k*B micro-batches as one continuous flush-free stream —
//     executed by the same event simulator.
//  2. The staleness ledger: weight versions per device that the
//     asynchronous scheme must stash (the memory the paper's Fig. 2 chart
//     charges PipeDream-style schemes).
//  3. Convergence: the real multi-threaded runtime trains the same tiny
//     model synchronously and asynchronously; async pays a visible loss gap
//     on the same step budget — the paper's reason to stay synchronous.

#include <cstdio>

#include "bench_common.hpp"
#include "runtime/async_trainer.hpp"
#include "schedule/async.hpp"

using namespace hanayo;

namespace {

sim::PipelineCosts unit_costs(int S) {
  sim::PipelineCosts costs;
  costs.fwd_s.assign(static_cast<size_t>(S), 1.0);
  costs.bwd_s.assign(static_cast<size_t>(S), 2.0);
  costs.boundary_bytes.assign(static_cast<size_t>(S > 0 ? S - 1 : 0), 0.0);
  costs.weight_bytes.assign(static_cast<size_t>(S), 0.0);
  costs.act_bytes.assign(static_cast<size_t>(S), 1.0);
  return costs;
}

}  // namespace

int main() {
  bench::print_header("Figure 4: synchronous vs asynchronous 1F1B (unit costs)");
  const int P = 4, B = 4, iters = 4;
  const auto cluster = Cluster::uniform(P, 1.0, 1e18, 1e18, 0.0);

  schedule::ScheduleRequest sync_req;
  sync_req.algo = Algo::Dapple;
  sync_req.P = P;
  sync_req.B = B;
  const auto sync_res =
      simulate(make_schedule(sync_req), unit_costs(P), cluster);
  const double sync_total = iters * sync_res.makespan;

  const auto async_sched = schedule::make_async_schedule(
      {.P = P, .total_micro_batches = B * iters});
  const auto async_res = simulate(async_sched, unit_costs(P), cluster);

  std::printf("  P=%d, B=%d per iteration, %d iterations\n", P, B, iters);
  std::printf("  synchronous  (flush each iter): %6.1f units  (%.1f/iter, bubble %.1f%%)\n",
              sync_total, sync_res.makespan, 100.0 * sync_res.bubble_ratio);
  std::printf("  asynchronous (PipeDream)      : %6.1f units  (bubble %.1f%%)\n",
              async_res.makespan, 100.0 * async_res.bubble_ratio);
  std::printf("  async speedup: %.2fx — the fill/drain bubble is paid once\n"
              "  instead of %d times.\n",
              sync_total / async_res.makespan, iters);

  std::printf("\n  the price — stale weight versions per device (stash depth):\n");
  for (int d = 0; d < P; ++d) {
    std::printf("    device %d: staleness %d -> %d stashed version(s)\n", d,
                schedule::async_staleness(async_sched, d),
                schedule::async_staleness(async_sched, d) + 1);
  }

  // --- Real-runtime convergence comparison on a tiny model. -------------
  const auto model = ModelConfig::tiny(/*layers=*/6, /*hidden=*/16,
                                       /*heads=*/2, /*vocab=*/29, /*seq=*/6);
  const int steps = 12;

  // Same Session API, two execution engines: synchronous worker threads
  // and the flush-free asynchronous runtime.
  Session sync_tr = Session::builder()
                        .model(model)
                        .algo(Algo::Dapple)
                        .pipeline(3)
                        .micro_batches(4)
                        .learning_rate(0.2f)  // one update/step, full batch
                        .seed(7)
                        .backend(BackendKind::Threads)
                        .build();
  Session async_tr = Session::builder()
                         .model(model)
                         .pipeline(3)
                         .micro_batches(4)
                         .learning_rate(0.05f)  // 4x more updates per step
                         .seed(7)
                         .weight_stashing(true)
                         .backend(BackendKind::Async)
                         .build();

  Rng rng(5);
  const Batch batch = synthetic_batch(model, sync_tr.batch_rows(), rng);
  const RunReport sync_rep = sync_tr.run(batch, steps);
  const RunReport async_rep = async_tr.run(batch, steps);

  std::printf("\n  convergence on a fixed tiny batch, %d steps (real runtime):\n", steps);
  std::printf("    sync  DAPPLE   : loss %.3f -> %.3f\n",
              sync_rep.steps.front().loss, sync_rep.final_loss());
  std::printf("    async PipeDream: loss %.3f -> %.3f  (stale gradients)\n",
              async_rep.steps.front().loss, async_rep.final_loss());
  std::printf(
      "\nThe paper (and this library) stays synchronous: asynchronous updates\n"
      "train on stale weights and complicate convergence (§2.3). The bubble\n"
      "the flush re-introduces is exactly what the wave schedule attacks.\n");
  return 0;
}
