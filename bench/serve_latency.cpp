// Serving latency/throughput sweep: prefill tokens/sec and per-token decode
// latency across pipeline depth, wave count, concurrent batch size and
// data-parallel replica count, measured on the real forward-only runtime and
// set against the forward-only event simulation's prediction for the same
// configuration.
//
//   $ ./bench/serve_latency [out.json] [max_dp]
//
// Prediction units: the cost model is calibrated to THIS machine first
// (perf::calibrate measures sec/FLOP and transport latency/bandwidth on the
// real kernel and comm stacks), so `predicted_per_token_ms` is directly
// comparable to `per_token_ms`. Historically the column was ~25-50x below
// the measured one — it was costed against the default spec cluster
// (100 TFLOP/s, an A100-ish accelerator), not against the CPU the bench
// actually ran on. The residual, post-calibration gap (reported per row as
// `meas_over_pred`) is real modelling error worth keeping visible: the
// event model prices compute and transfers but not the per-pass thread
// orchestration (spawn/join + barriers), which dominates when a decode pass
// computes almost nothing.
//
// Emits BENCH_serve.json (CI's bench-smoke job runs this with max_dp=2 and
// uploads it per PR, mirroring BENCH_gemm.json for the kernel layer).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

struct Row {
  std::string algo;
  int P = 0, W = 0, batch = 0, dp = 1;
  bool paged = false;
  int64_t prompt_tokens = 0;
  int new_tokens = 0;
  double prefill_tok_s = 0.0;
  double overall_tok_s = 0.0;  ///< generated tokens / (prefill + decode) wall
  double per_token_ms = 0.0;   ///< mean decode-pass latency
  double predicted_per_token_ms = 0.0;  ///< calibrated event-sim prediction
  int64_t kv_pages_peak = 0;        ///< paged rows: pool high-water mark
  int64_t prefix_hit_tokens = 0;    ///< paged rows: prompt tokens from cache
};

Row run_config(const ModelConfig& model, const perf::Calibration& cal,
               Algo algo, int P, int W, int batch, int dp, int64_t prompt_len,
               int new_tokens, bool paged = false) {
  auto builder = InferenceSession::builder();
  builder.model(model)
      .algo(algo)
      .pipeline(P)
      .waves(W)
      .backend(BackendKind::Threads)
      .max_batch(batch)
      .max_new_tokens(new_tokens)
      .prompt_tokens(prompt_len)
      .data_parallel(dp)
      .calibration(cal)
      .seed(7);
  if (paged) builder.paged_kv().kv_page_tokens(16);
  auto server = builder.build();
  Rng rng(13);
  // Two full batches per replica: the second re-fills freed slots
  // (continuous batching) on every replica of the shared queue.
  for (int r = 0; r < 2 * batch * dp; ++r) {
    Tensor prompt({1, prompt_len});
    for (int64_t i = 0; i < prompt_len; ++i) {
      prompt[i] = static_cast<float>(rng.index(model.vocab));
    }
    server.enqueue(prompt);
  }
  (void)server.run();
  const ServeReport rep = server.report();
  const ServeReport sla = server.predict();

  Row row;
  row.algo = schedule::algo_name(algo);
  row.P = P;
  row.W = W;
  row.batch = batch;
  row.dp = dp;
  row.paged = paged;
  row.kv_pages_peak = rep.kv_pages_peak;
  row.prefix_hit_tokens = rep.prefix_hit_tokens;
  row.prompt_tokens = rep.prompt_tokens;
  row.new_tokens = new_tokens;
  row.prefill_tok_s = rep.prefill_tokens_per_s();
  row.overall_tok_s = rep.tokens_per_s();
  row.per_token_ms = rep.per_token_latency_s() * 1e3;
  row.predicted_per_token_ms = sla.per_token_latency_s() * 1e3;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: serve_latency [out.json] [max_dp] [--short]
  // --short: smoke-sized sweep for the sanitizer CI legs, where the point
  // is exercising the threaded serving stack under TSan/ASan (~10x slower),
  // not producing comparable latency numbers.
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  int max_dp = 2;
  bool short_mode = false;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--short") {
      short_mode = true;
    } else {
      max_dp = std::atoi(argv[i]);
    }
  }
  const ModelConfig model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/64,
                                              /*heads=*/4, /*vocab=*/512,
                                              /*seq=*/64);
  const int64_t prompt_len = 16;
  const int new_tokens = short_mode ? 4 : 8;

  // Measure this machine before predicting for it (see file comment).
  std::printf("calibrating cost model against the local kernel stack ...\n");
  const perf::Calibration cal =
      perf::calibrate(model, /*mb_sequences=*/1, /*compute_repeats=*/3,
                      /*comm_repeats=*/short_mode ? 10 : 50);
  std::printf("  sec/flop %.3e, bwd/fwd %.2f, %.2f GB/s, %.1f us/msg\n",
              cal.sec_per_flop, cal.bwd_fwd_ratio, cal.bytes_per_s / 1e9,
              cal.latency_s * 1e6);

  struct Config {
    Algo algo;
    int P, W;
  };
  std::vector<Config> grid = {
      {Algo::GPipe, 2, 1},  {Algo::Dapple, 2, 1}, {Algo::Hanayo, 2, 1},
      {Algo::Hanayo, 2, 2}, {Algo::Hanayo, 4, 1},
  };
  // One deep and one wavy config still cover prefill/decode interleaving,
  // continuous batching and (with max_dp=2) the shared-queue replicas.
  if (short_mode) grid = {{Algo::Hanayo, 2, 2}, {Algo::Hanayo, 4, 1}};

  std::vector<Row> rows;
  const std::vector<int> batches = short_mode ? std::vector<int>{2}
                                              : std::vector<int>{1, 4};
  for (const Config& c : grid) {
    for (int batch : batches) {
      for (int dp = 1; dp <= max_dp; dp *= 2) {
        std::printf("serve %-8s P=%d W=%d batch=%d dp=%d ...\n",
                    schedule::algo_name(c.algo).c_str(), c.P, c.W, batch, dp);
        rows.push_back(run_config(model, cal, c.algo, c.P, c.W, batch, dp,
                                  prompt_len, new_tokens));
      }
    }
  }
  // One paged-KV point next to its contiguous twin: same closed batch, KV
  // through the page pool (kv_pages_peak / prefix_hit_tokens columns show
  // the pool footprint; prompts are random here, so cache hits are
  // incidental — the shared-prefix workload lives in bench/traffic).
  {
    const int batch = short_mode ? 2 : 4;
    std::printf("serve hanayo   P=2 W=2 batch=%d dp=1 [paged] ...\n", batch);
    rows.push_back(run_config(model, cal, Algo::Hanayo, 2, 2, batch, 1,
                              prompt_len, new_tokens, /*paged=*/true));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_latency\",\n");
  std::fprintf(f, "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
               "\"seq\": %lld, \"vocab\": %lld},\n",
               static_cast<long long>(model.layers),
               static_cast<long long>(model.hidden),
               static_cast<long long>(model.seq),
               static_cast<long long>(model.vocab));
  std::fprintf(f, "  \"prompt_tokens_per_seq\": %lld,\n",
               static_cast<long long>(prompt_len));
  std::fprintf(f, "  \"new_tokens_per_seq\": %d,\n", new_tokens);
  std::fprintf(f,
               "  \"calibration\": {\"sec_per_flop\": %.4e, "
               "\"bytes_per_s\": %.4e, \"latency_s\": %.4e},\n",
               cal.sec_per_flop, cal.bytes_per_s, cal.latency_s);
  std::fprintf(f,
               "  \"note\": \"predicted_per_token_ms uses the calibrated "
               "(local-machine) cost model — previously it was costed "
               "against the 100 TFLOP/s spec default and sat 25-50x below "
               "the measured column. meas_over_pred > 1 is modelling error "
               "the event sim does not price: per-pass thread orchestration "
               "(spawn/join + barriers), and on hosts with fewer cores than "
               "dp*P workers, replicas time-sharing the CPU\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ratio = r.predicted_per_token_ms > 0.0
                             ? r.per_token_ms / r.predicted_per_token_ms
                             : 0.0;
    std::fprintf(
        f,
        "    {\"algo\": \"%s\", \"P\": %d, \"W\": %d, \"max_batch\": %d, "
        "\"dp\": %d, \"paged\": %s, \"prompt_tokens\": %lld, "
        "\"prefill_tok_s\": %.1f, "
        "\"overall_tok_s\": %.1f, \"per_token_ms\": %.4f, "
        "\"predicted_per_token_ms\": %.4f, \"meas_over_pred\": %.2f, "
        "\"kv_pages_peak\": %lld, \"prefix_hit_tokens\": %lld}%s\n",
        r.algo.c_str(), r.P, r.W, r.batch, r.dp, r.paged ? "true" : "false",
        static_cast<long long>(r.prompt_tokens), r.prefill_tok_s,
        r.overall_tok_s, r.per_token_ms, r.predicted_per_token_ms, ratio,
        static_cast<long long>(r.kv_pages_peak),
        static_cast<long long>(r.prefix_hit_tokens),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}
