// Serving latency/throughput sweep: prefill tokens/sec and per-token decode
// latency across pipeline depth, wave count and concurrent batch size,
// measured on the real forward-only runtime and set against the forward-only
// event simulation's prediction for the same configuration.
//
//   $ ./bench/serve_latency [out.json]
//
// Emits BENCH_serve.json (CI's bench-smoke job uploads it per PR, mirroring
// BENCH_gemm.json for the kernel layer).

#include <cstdio>
#include <string>
#include <vector>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

struct Row {
  std::string algo;
  int P = 0, W = 0, batch = 0;
  int64_t prompt_tokens = 0;
  int new_tokens = 0;
  double prefill_tok_s = 0.0;
  double overall_tok_s = 0.0;  ///< generated tokens / (prefill + decode) wall
  double per_token_ms = 0.0;   ///< mean decode-pass latency
  double predicted_per_token_ms = 0.0;
};

Row run_config(const ModelConfig& model, Algo algo, int P, int W, int batch,
               int64_t prompt_len, int new_tokens) {
  auto server = InferenceSession::builder()
                    .model(model)
                    .algo(algo)
                    .pipeline(P)
                    .waves(W)
                    .backend(BackendKind::Threads)
                    .max_batch(batch)
                    .max_new_tokens(new_tokens)
                    .prompt_tokens(prompt_len)
                    .seed(7)
                    .build();
  Rng rng(13);
  // Two full batches: the second re-fills freed slots (continuous batching).
  for (int r = 0; r < 2 * batch; ++r) {
    Tensor prompt({1, prompt_len});
    for (int64_t i = 0; i < prompt_len; ++i) {
      prompt[i] = static_cast<float>(rng.index(model.vocab));
    }
    server.enqueue(prompt);
  }
  (void)server.run();
  const ServeReport rep = server.report();
  const ServeReport sla = server.predict();

  Row row;
  row.algo = schedule::algo_name(algo);
  row.P = P;
  row.W = W;
  row.batch = batch;
  row.prompt_tokens = rep.prompt_tokens;
  row.new_tokens = new_tokens;
  row.prefill_tok_s = rep.prefill_tokens_per_s();
  row.overall_tok_s = rep.tokens_per_s();
  row.per_token_ms = rep.per_token_latency_s() * 1e3;
  row.predicted_per_token_ms = sla.per_token_latency_s() * 1e3;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const ModelConfig model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/64,
                                              /*heads=*/4, /*vocab=*/512,
                                              /*seq=*/64);
  const int64_t prompt_len = 16;
  const int new_tokens = 8;

  struct Config {
    Algo algo;
    int P, W;
  };
  const std::vector<Config> grid = {
      {Algo::GPipe, 2, 1},  {Algo::Dapple, 2, 1}, {Algo::Hanayo, 2, 1},
      {Algo::Hanayo, 2, 2}, {Algo::Hanayo, 4, 1},
  };

  std::vector<Row> rows;
  for (const Config& c : grid) {
    for (int batch : {1, 4}) {
      std::printf("serve %-8s P=%d W=%d batch=%d ...\n",
                  schedule::algo_name(c.algo).c_str(), c.P, c.W, batch);
      rows.push_back(
          run_config(model, c.algo, c.P, c.W, batch, prompt_len, new_tokens));
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_latency\",\n");
  std::fprintf(f, "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
               "\"seq\": %lld, \"vocab\": %lld},\n",
               static_cast<long long>(model.layers),
               static_cast<long long>(model.hidden),
               static_cast<long long>(model.seq),
               static_cast<long long>(model.vocab));
  std::fprintf(f, "  \"prompt_tokens_per_seq\": %lld,\n",
               static_cast<long long>(prompt_len));
  std::fprintf(f, "  \"new_tokens_per_seq\": %d,\n", new_tokens);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"algo\": \"%s\", \"P\": %d, \"W\": %d, \"max_batch\": %d, "
        "\"prompt_tokens\": %lld, \"prefill_tok_s\": %.1f, "
        "\"overall_tok_s\": %.1f, \"per_token_ms\": %.4f, "
        "\"predicted_per_token_ms\": %.4f}%s\n",
        r.algo.c_str(), r.P, r.W, r.batch,
        static_cast<long long>(r.prompt_tokens), r.prefill_tok_s,
        r.overall_tok_s, r.per_token_ms, r.predicted_per_token_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}
