// Serving latency/throughput sweep: prefill tokens/sec and per-token decode
// latency across pipeline depth, wave count, concurrent batch size and
// data-parallel replica count, measured on the real forward-only runtime and
// set against the forward-only event simulation's prediction for the same
// configuration.
//
//   $ ./bench/serve_latency [out.json] [max_dp] [--short] [--no-gate]
//                           [--alloc-gate]
//
// Prediction units: the cost model is calibrated to THIS machine first
// (perf::calibrate measures sec/FLOP and transport latency/bandwidth on the
// real kernel and comm stacks). On top of that, the sweep's own measured
// rows feed perf::calibrate_serving: the forward-only rate scales are
// measured single-thread (so the remaining residual is attributable), and
// the per-pass orchestration overhead + CPU-oversubscription factor are
// fitted from the rows. `predicted_per_token_ms` applies the full serving
// calibration; `uncal_predicted_per_token_ms` keeps the raw event-sim
// prediction visible so the correction itself stays auditable. Residuals
// are reported in BOTH directions (the raw model both under-prices
// oversubscribed multi-replica rows and over-prices single-stream decode,
// which runs faster per counted FLOP than the training-forward rate the
// base calibration measures).
//
// Emits BENCH_serve.json plus a <out>_cal.json coefficient artifact (CI's
// bench-smoke job runs this with max_dp=2, gates on the calibrated
// residual band, and uploads both). Exit status: 0 on success, 2 when the
// median |log(meas/pred)| exceeds the gate (suppressed by --no-gate, which
// the sanitizer legs use — TSan/ASan timing is not comparable).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hanayo.hpp"
#include "tensor/alloc_stats.hpp"

using namespace hanayo;

namespace {

struct Row {
  Algo algo = Algo::Hanayo;
  std::string algo_name;
  int P = 0, W = 0, batch = 0, dp = 1;
  bool paged = false;
  int64_t prompt_tokens = 0;
  int new_tokens = 0;
  double prefill_tok_s = 0.0;
  double overall_tok_s = 0.0;  ///< generated tokens / (prefill + decode) wall
  double per_token_ms = 0.0;   ///< mean decode-pass latency
  double p99_per_token_ms = 0.0;  ///< p99 across per-request means (pooled)
  double meas_prefill_pass_ms = 0.0;       ///< mean measured prefill pass
  double uncal_predicted_per_token_ms = 0.0;  ///< raw event-sim prediction
  double predicted_per_token_ms = 0.0;        ///< + fitted serving calibration
  int64_t kv_pages_peak = 0;        ///< paged rows: pool high-water mark
  int64_t prefix_hit_tokens = 0;    ///< paged rows: prompt tokens from cache
};

InferenceSession::Builder config_builder(const ModelConfig& model,
                                         const perf::Calibration& cal,
                                         Algo algo, int P, int W, int batch,
                                         int dp, int64_t prompt_len,
                                         int new_tokens, bool paged) {
  auto builder = InferenceSession::builder();
  builder.model(model)
      .algo(algo)
      .pipeline(P)
      .waves(W)
      .backend(BackendKind::Threads)
      .max_batch(batch)
      .max_new_tokens(new_tokens)
      .prompt_tokens(prompt_len)
      .data_parallel(dp)
      .calibration(cal)
      .seed(7);
  if (paged) builder.paged_kv().kv_page_tokens(16);
  return builder;
}

double p99(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      std::ceil(0.99 * static_cast<double>(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

Row run_config(const ModelConfig& model, const perf::Calibration& cal,
               Algo algo, int P, int W, int batch, int dp, int64_t prompt_len,
               int new_tokens, int run_repeats, bool paged = false) {
  // Whether concurrent replica/worker passes collide on the host's cores is
  // a per-drain scheduling lottery — within one drain the overlap phase
  // persists, so averaging more passes inside one drain does not converge
  // (the distribution across drains is bimodal: collide or anti-align).
  // Repeat the whole drain and pool the pass counters across repeats — the
  // pooled mean estimates the true collision rate, which is the quantity
  // the calibration's oversubscription factor models.
  std::vector<runtime::ServeStats> drains;
  ServeReport rep;
  ServeReport sla;
  for (int r = 0; r < run_repeats; ++r) {
    auto server = config_builder(model, cal, algo, P, W, batch, dp, prompt_len,
                                 new_tokens, paged)
                      .build();
    Rng rng(13);
    // Two full batches per replica: the second re-fills freed slots
    // (continuous batching) on every replica of the shared queue.
    for (int q = 0; q < 2 * batch * dp; ++q) {
      Tensor prompt({1, prompt_len});
      for (int64_t i = 0; i < prompt_len; ++i) {
        prompt[i] = static_cast<float>(rng.index(model.vocab));
      }
      server.enqueue(prompt);
    }
    (void)server.run();
    if (r == 0) {
      rep = server.report();  // keeps kv/prefix columns of a single drain
      sla = server.predict();
    }
    drains.push_back(server.report().totals());
  }
  const runtime::ServeStats pooled = runtime::merge_stats(drains);
  rep.set_totals(pooled);

  Row row;
  row.algo = algo;
  row.algo_name = schedule::algo_name(algo);
  row.P = P;
  row.W = W;
  row.batch = batch;
  row.dp = dp;
  row.paged = paged;
  row.kv_pages_peak = rep.kv_pages_peak;
  row.prefix_hit_tokens = rep.prefix_hit_tokens;
  row.prompt_tokens = rep.prompt_tokens;
  row.new_tokens = new_tokens;
  row.prefill_tok_s = rep.prefill_tokens_per_s();
  row.overall_tok_s = rep.tokens_per_s();
  row.per_token_ms = rep.per_token_latency_s() * 1e3;
  row.p99_per_token_ms = p99(pooled.per_token_samples_s) * 1e3;
  const runtime::ServeStats tot = rep.totals();
  row.meas_prefill_pass_ms =
      tot.prefill_passes > 0 ? tot.prefill_s / tot.prefill_passes * 1e3 : 0.0;
  row.uncal_predicted_per_token_ms = sla.per_token_latency_s() * 1e3;
  return row;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Marginal heap allocations of one steady-state decode pass — the same
// differential methodology as tests/runtime/test_alloc_decode.cpp (two
// drains on a warmed pipeline differing only in continuation length, so
// per-request costs cancel). The arena work drove this to zero; the
// --alloc-gate flag turns any regression into a failing bench-smoke run
// before it can show up as p99 jitter.
int64_t steady_decode_allocs_per_pass(bool paged) {
  runtime::InferConfig cfg;
  cfg.model = ModelConfig::tiny(6, 32, 2, 67, 96);
  cfg.sched.algo = Algo::Hanayo;
  cfg.sched.P = 2;
  cfg.sched.waves = 1;
  cfg.max_batch = 1;
  cfg.max_new_tokens = 64;
  cfg.seed = 5;
  cfg.paged_kv = paged;
  if (paged) cfg.kv_page_tokens = 16;
  runtime::InferencePipeline pipe(cfg);
  Tensor prompt({1, 8});
  for (int64_t i = 0; i < prompt.numel(); ++i) {
    prompt[i] = static_cast<float>(1 + i);
  }
  const auto drain_with = [&](int max_new) {
    pipe.enqueue(prompt, max_new);
    const tensor::AllocStats before = tensor::alloc_stats();
    (void)pipe.drain();
    return tensor::alloc_stats() - before;
  };
  (void)drain_with(4);  // warm-up: arenas, pools, KV slot
  const tensor::AllocStats a = drain_with(4);
  const tensor::AllocStats b = drain_with(36);
  return (b.allocs - a.allocs) / 32;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: serve_latency [out.json] [max_dp] [--short] [--no-gate]
  //                      [--alloc-gate]
  // --short: smoke-sized sweep for the sanitizer CI legs, where the point
  // is exercising the threaded serving stack under TSan/ASan (~10x slower),
  // not producing comparable latency numbers.
  // --no-gate: still fit and report residuals, but never fail the run on
  // them (sanitizer timing would trip any honest band).
  // --alloc-gate: fail (exit 3) when a steady-state decode pass performs
  // any heap allocation — the zero-alloc arena invariant, enforced in CI
  // where timing gates would be too noisy.
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  int max_dp = 2;
  bool short_mode = false;
  bool gate = true;
  bool alloc_gate = false;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--short") {
      short_mode = true;
    } else if (std::string(argv[i]) == "--no-gate") {
      gate = false;
    } else if (std::string(argv[i]) == "--alloc-gate") {
      alloc_gate = true;
    } else {
      max_dp = std::atoi(argv[i]);
    }
  }
  const ModelConfig model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/64,
                                              /*heads=*/4, /*vocab=*/512,
                                              /*seq=*/64);
  const int64_t prompt_len = 16;
  const int new_tokens = short_mode ? 4 : 8;

  // Measure this machine before predicting for it (see file comment).
  std::printf("calibrating cost model against the local kernel stack ...\n");
  const perf::Calibration cal =
      perf::calibrate(model, /*mb_sequences=*/1, /*compute_repeats=*/3,
                      /*comm_repeats=*/short_mode ? 10 : 50);
  std::printf("  sec/flop %.3e, bwd/fwd %.2f, %.2f GB/s, %.1f us/msg\n",
              cal.sec_per_flop, cal.bwd_fwd_ratio, cal.bytes_per_s / 1e9,
              cal.latency_s * 1e6);
  std::printf("measuring forward-only rate scales (single-thread) ...\n");
  const perf::ServingCalibration rate_seed = perf::measure_serving_rates(
      model, cal, prompt_len, /*repeats=*/short_mode ? 5 : 20);
  std::printf("  prefill %.3fx, decode %.3fx of the flop model, %d cores\n",
              rate_seed.prefill_rate_scale, rate_seed.decode_rate_scale,
              rate_seed.host_cores);

  struct Config {
    Algo algo;
    int P, W;
  };
  std::vector<Config> grid = {
      {Algo::GPipe, 2, 1},  {Algo::Dapple, 2, 1}, {Algo::Hanayo, 2, 1},
      {Algo::Hanayo, 2, 2}, {Algo::Hanayo, 4, 1},
  };
  // One deep and one wavy config still cover prefill/decode interleaving,
  // continuous batching and (with max_dp=2) the shared-queue replicas.
  if (short_mode) grid = {{Algo::Hanayo, 2, 2}, {Algo::Hanayo, 4, 1}};

  std::vector<Row> rows;
  const std::vector<int> batches = short_mode ? std::vector<int>{2}
                                              : std::vector<int>{1, 4};
  for (const Config& c : grid) {
    for (int batch : batches) {
      for (int dp = 1; dp <= max_dp; dp *= 2) {
        // Small drains (few streams) see the widest collide/anti-align
        // spread per drain, so they get many more repeats; their drains
        // are also the cheapest to repeat.
        const int run_repeats =
            short_mode ? 1 : (batch * dp <= 2 ? 21 : (batch * dp <= 4 ? 9 : 5));
        std::printf("serve %-8s P=%d W=%d batch=%d dp=%d ...\n",
                    schedule::algo_name(c.algo).c_str(), c.P, c.W, batch, dp);
        rows.push_back(run_config(model, cal, c.algo, c.P, c.W, batch, dp,
                                  prompt_len, new_tokens, run_repeats));
      }
    }
  }
  // One paged-KV point next to its contiguous twin: same closed batch, KV
  // through the page pool (kv_pages_peak / prefix_hit_tokens columns show
  // the pool footprint; prompts are random here, so cache hits are
  // incidental — the shared-prefix workload lives in bench/traffic).
  {
    const int batch = short_mode ? 2 : 4;
    std::printf("serve hanayo   P=2 W=2 batch=%d dp=1 [paged] ...\n", batch);
    rows.push_back(run_config(model, cal, Algo::Hanayo, 2, 2, batch, 1,
                              prompt_len, new_tokens, short_mode ? 1 : 5,
                              /*paged=*/true));
  }

  // Fit the serving-side coefficients from the sweep's own measured rows,
  // then re-predict every row with the calibration applied.
  std::vector<perf::ServingSample> samples;
  for (const Row& r : rows) {
    perf::ServingSample s;
    s.algo = r.algo;
    s.P = r.P;
    s.W = r.W;
    s.max_batch = r.batch;
    s.dp = r.dp;
    s.prompt_tokens = prompt_len;
    s.max_new_tokens = r.new_tokens;
    s.measured_decode_pass_s = r.per_token_ms * 1e-3;
    s.measured_prefill_pass_s = r.meas_prefill_pass_ms * 1e-3;
    samples.push_back(s);
  }
  const perf::ServingCalibration sc = perf::calibrate_serving(
      model, api::planning_cluster(8, cal), cal, samples, rate_seed);
  std::printf(
      "fitted serving calibration: overhead %.1f us/pass + %.1f us/worker, "
      "oversub %.2f (%d cores), %d fit rows, residual log-rms %.3f\n",
      sc.pass_overhead_s * 1e6, sc.worker_overhead_s * 1e6, sc.oversub_factor,
      sc.host_cores, sc.fit_rows, sc.residual_log_rms);
  for (Row& r : rows) {
    auto builder = config_builder(model, cal, r.algo, r.P, r.W, r.batch, r.dp,
                                  prompt_len, r.new_tokens, r.paged);
    builder.serving_calibration(sc);
    const ServeReport pred = api::predict_serving(builder.config());
    r.predicted_per_token_ms = pred.per_token_latency_s() * 1e3;
  }

  // Steady-state decode allocation audit (differential, both KV layouts).
  std::printf("measuring steady-state decode allocations ...\n");
  const int64_t allocs_contig = steady_decode_allocs_per_pass(false);
  const int64_t allocs_paged = steady_decode_allocs_per_pass(true);
  std::printf("  allocs/pass: contiguous %lld, paged %lld (target 0)\n",
              static_cast<long long>(allocs_contig),
              static_cast<long long>(allocs_paged));

  // Residual band over the calibrated predictions, both directions.
  std::vector<double> abs_logs;
  double max_over = 0.0, max_under = 1e300;
  for (const Row& r : rows) {
    if (r.predicted_per_token_ms <= 0.0 || r.per_token_ms <= 0.0) continue;
    const double ratio = r.per_token_ms / r.predicted_per_token_ms;
    abs_logs.push_back(std::fabs(std::log(ratio)));
    max_over = std::max(max_over, ratio);
    max_under = std::min(max_under, ratio);
  }
  const double median_abs_log = median(abs_logs);
  // Generous: ln(1.5) — the fit is in-sample, so exceeding this means the
  // model's *shape* is wrong (a new unpriced mechanism), not just noise.
  const double gate_band = std::log(1.5);
  std::printf(
      "calibrated residuals: median |log(meas/pred)| %.3f (gate %.3f), "
      "meas/pred in [%.2f, %.2f]\n",
      median_abs_log, gate_band, max_under, max_over);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_latency\",\n");
  std::fprintf(f, "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
               "\"seq\": %lld, \"vocab\": %lld},\n",
               static_cast<long long>(model.layers),
               static_cast<long long>(model.hidden),
               static_cast<long long>(model.seq),
               static_cast<long long>(model.vocab));
  std::fprintf(f, "  \"prompt_tokens_per_seq\": %lld,\n",
               static_cast<long long>(prompt_len));
  std::fprintf(f, "  \"new_tokens_per_seq\": %d,\n", new_tokens);
  std::fprintf(f,
               "  \"calibration\": {\"sec_per_flop\": %.4e, "
               "\"bytes_per_s\": %.4e, \"latency_s\": %.4e},\n",
               cal.sec_per_flop, cal.bytes_per_s, cal.latency_s);
  std::fprintf(f,
               "  \"serving_calibration\": {\"prefill_rate_scale\": %.4f, "
               "\"decode_rate_scale\": %.4f, \"pass_overhead_s\": %.4e, "
               "\"worker_overhead_s\": %.4e, "
               "\"oversub_factor\": %.2f, \"host_cores\": %d, "
               "\"fit_rows\": %d, \"residual_log_rms\": %.4f},\n",
               sc.prefill_rate_scale, sc.decode_rate_scale, sc.pass_overhead_s,
               sc.worker_overhead_s, sc.oversub_factor, sc.host_cores,
               sc.fit_rows, sc.residual_log_rms);
  std::fprintf(f,
               "  \"steady_decode_allocs_per_pass\": {\"contiguous\": %lld, "
               "\"paged\": %lld, \"gated\": %s},\n",
               static_cast<long long>(allocs_contig),
               static_cast<long long>(allocs_paged),
               alloc_gate ? "true" : "false");
  std::fprintf(f,
               "  \"residuals\": {\"median_abs_log\": %.4f, "
               "\"max_over\": %.3f, \"max_under\": %.3f, "
               "\"gate_abs_log\": %.4f, \"gated\": %s},\n",
               median_abs_log, max_over, max_under, gate_band,
               gate ? "true" : "false");
  std::fprintf(f,
               "  \"note\": \"predicted_per_token_ms applies the fitted "
               "serving calibration (forward-only rate scales measured "
               "single-thread; per-pass orchestration overhead and CPU "
               "oversubscription fitted from these rows); "
               "uncal_predicted_per_token_ms is the raw calibrated event-sim "
               "prediction. Residuals run in BOTH directions: "
               "meas_over_pred > 1 means the model still under-prices the "
               "row, < 1 means it over-prices it (the raw model did both — "
               "orchestration/oversubscription pushed multi-worker rows "
               "over, and billing decode at the training-forward rate pushed "
               "single-stream rows under)\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ratio = r.predicted_per_token_ms > 0.0
                             ? r.per_token_ms / r.predicted_per_token_ms
                             : 0.0;
    const double uncal_ratio =
        r.uncal_predicted_per_token_ms > 0.0
            ? r.per_token_ms / r.uncal_predicted_per_token_ms
            : 0.0;
    std::fprintf(
        f,
        "    {\"algo\": \"%s\", \"P\": %d, \"W\": %d, \"max_batch\": %d, "
        "\"dp\": %d, \"paged\": %s, \"prompt_tokens\": %lld, "
        "\"prefill_tok_s\": %.1f, "
        "\"overall_tok_s\": %.1f, \"per_token_ms\": %.4f, "
        "\"p99_per_token_ms\": %.4f, "
        "\"predicted_per_token_ms\": %.4f, \"meas_over_pred\": %.2f, "
        "\"uncal_predicted_per_token_ms\": %.4f, "
        "\"uncal_meas_over_pred\": %.2f, "
        "\"kv_pages_peak\": %lld, \"prefix_hit_tokens\": %lld}%s\n",
        r.algo_name.c_str(), r.P, r.W, r.batch, r.dp,
        r.paged ? "true" : "false", static_cast<long long>(r.prompt_tokens),
        r.prefill_tok_s, r.overall_tok_s, r.per_token_ms, r.p99_per_token_ms,
        r.predicted_per_token_ms, ratio, r.uncal_predicted_per_token_ms,
        uncal_ratio, static_cast<long long>(r.kv_pages_peak),
        static_cast<long long>(r.prefix_hit_tokens),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());

  // Coefficient artifact next to the main JSON (CI uploads both).
  std::string cal_path = out_path;
  const std::string suffix = ".json";
  if (cal_path.size() >= suffix.size() &&
      cal_path.compare(cal_path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    cal_path.resize(cal_path.size() - suffix.size());
  }
  cal_path += "_cal.json";
  if (FILE* cf = std::fopen(cal_path.c_str(), "w")) {
    std::fprintf(cf,
                 "{\n  \"artifact\": \"serving_calibration\",\n"
                 "  \"prefill_rate_scale\": %.6f,\n"
                 "  \"decode_rate_scale\": %.6f,\n"
                 "  \"pass_overhead_s\": %.6e,\n"
                 "  \"worker_overhead_s\": %.6e,\n"
                 "  \"oversub_factor\": %.4f,\n"
                 "  \"host_cores\": %d,\n"
                 "  \"fit_rows\": %d,\n"
                 "  \"residual_log_rms\": %.6f\n}\n",
                 sc.prefill_rate_scale, sc.decode_rate_scale,
                 sc.pass_overhead_s, sc.worker_overhead_s, sc.oversub_factor,
                 sc.host_cores, sc.fit_rows, sc.residual_log_rms);
    std::fclose(cf);
    std::printf("wrote %s\n", cal_path.c_str());
  }

  if (gate && median_abs_log > gate_band) {
    std::fprintf(stderr,
                 "FAIL: calibrated residual band exceeded — median "
                 "|log(meas/pred)| %.3f > %.3f\n",
                 median_abs_log, gate_band);
    return 2;
  }
  if (alloc_gate && (allocs_contig > 0 || allocs_paged > 0)) {
    std::fprintf(stderr,
                 "FAIL: steady-state decode allocates (contiguous %lld, "
                 "paged %lld per pass; target 0) — a pass-lifetime buffer "
                 "left the arena\n",
                 static_cast<long long>(allocs_contig),
                 static_cast<long long>(allocs_paged));
    return 3;
  }
  return 0;
}
