// Ablation: activation recomputation (gradient checkpointing) x pipeline
// scheme — one of the orthogonal memory techniques the paper's related work
// says "can be combined to improve large model training" (§6). Shows the
// memory/throughput tradeoff on the paper's BERT model and which OOM cells
// of the Fig. 10 search become feasible.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

void run(const ModelConfig& model, const Cluster& cluster, Algo algo, int W,
         int P, int B, bool recompute) {
  schedule::ScheduleRequest req;
  req.algo = algo;
  req.P = P;
  req.B = B;
  req.waves = W;
  const int S = schedule::stages_for(req);
  if (S > static_cast<int>(model.layer_descs().size())) {
    std::printf("%24s\n", "n/a");
    return;
  }
  const auto sched = make_schedule(req);
  const auto costs = sim::compute_costs(model, S, 1, cluster, recompute);
  const auto res = simulate(sched, costs, cluster);
  double peak = 0.0;
  for (double x : res.peak_mem_bytes) peak = std::max(peak, x);
  std::printf("  %6.2f seq/s  peak %6.2f GB%s\n",
              res.throughput_seq_per_s(B), peak / 1e9, res.oom ? "  [OOM]" : "");
}

}  // namespace

int main() {
  bench::print_header("Ablation: activation recomputation (BERT, TACC, P=8, B=16)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  const Cluster tacc = Cluster::tacc(8);

  struct Row {
    const char* label;
    Algo algo;
    int W;
  };
  for (const Row& r : {Row{"GPipe", Algo::GPipe, 1}, Row{"DAPPLE", Algo::Dapple, 1},
                       Row{"Hanayo W=2", Algo::Hanayo, 2},
                       Row{"Hanayo W=4", Algo::Hanayo, 4}}) {
    std::printf("%-12s cached:    ", r.label);
    run(bert, tacc, r.algo, r.W, 8, 16, false);
    std::printf("%-12s recompute: ", "");
    run(bert, tacc, r.algo, r.W, 8, 16, true);
  }
  std::printf(
      "\nExpected shape: recomputation cuts peak memory several-fold for the\n"
      "activation-heavy schemes (GPipe most of all) at ~33%% extra backward\n"
      "compute; bit-exactness of the recomputed gradients is proven in\n"
      "tests/model/test_recompute.cpp.\n");
  return 0;
}
