// Ablation: wave count vs. interconnect quality (the §5.2 observation that
// "Hanayo's optimal wave configuration can vary with the communication
// environment"). Sweeps W on interpolated interconnects between FC-class
// NVLink and sub-TACC Ethernet, printing the simulated throughput and the
// share of the makespan lost to un-overlapped communication.

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

int main() {
  bench::print_header("Ablation: wave count vs interconnect bandwidth (BERT, P=8, B=8)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;

  std::printf("%-22s %8s %8s %8s %8s %8s | best\n", "interconnect", "W=1",
              "W=2", "W=4", "W=8", "W=16");
  for (const auto& [label, bw] : std::vector<std::pair<const char*, double>>{
           {"230 GB/s (NVSwitch)", 230e9},
           {"45 GB/s (NVLink)", 45e9},
           {"22 GB/s (PCIe)", 22e9},
           {"11 GB/s (IB)", 11e9},
           {"3 GB/s (25GbE)", 3e9},
           {"1 GB/s (10GbE)", 1e9}}) {
    const Cluster cluster = Cluster::uniform(8, 95e12, 80e9, bw, 5e-6);
    std::printf("%-22s", label);
    double best = 0.0;
    int best_w = 0;
    for (int W : {1, 2, 4, 8, 16}) {
      const auto c = bench::eval(bert, cluster, Algo::Hanayo, 1, 8, W, 8, 1);
      if (!c.feasible || c.oom) {
        std::printf("%8s", c.oom ? "OOM" : "n/a");
        continue;
      }
      std::printf("%8.2f", c.throughput_seq_s);
      if (c.throughput_seq_s > best) {
        best = c.throughput_seq_s;
        best_w = W;
      }
    }
    std::printf(" | W=%d\n", best_w);
  }

  std::printf(
      "\nExpected shape: on fast links the bubble shrink of more waves wins\n"
      "(optimum at high W); as bandwidth drops, the extra boundary transfers\n"
      "dominate and the optimal wave count falls toward 1 — the paper's\n"
      "TACC-vs-NVLink observation as a continuous sweep.\n");

  bench::print_header("Ablation: schedule policy (Hanayo placement, P=4, B=8, W=2)");
  // Compare the eager backward-first policy against GPipe-style
  // all-forward-first on the *same* zigzag placement: isolates the policy
  // contribution from the placement contribution.
  const Placement pl = Placement::zigzag(4, 2);
  const Cluster fast = Cluster::uniform(4, 95e12, 80e9, 230e9, 2e-6);
  const auto costs = sim::compute_costs(bert, pl.stages(), 1, fast);
  for (const auto& [label, aff] :
       std::vector<std::pair<const char*, bool>>{{"eager 1F1B (Hanayo)", false},
                                                 {"all-forward-first", true}}) {
    schedule::GenOptions opt;
    opt.all_forward_first = aff;
    opt.inflight_cap = false;
    const Schedule s = schedule::generate(Algo::Hanayo, 2, pl, 8, opt);
    const auto res = simulate(s, costs, fast);
    std::printf("  %-24s makespan %.4f s, bubble %5.1f%%, peak act %.2f GB\n",
                label, res.makespan, 100.0 * res.bubble_ratio,
                (res.peak_mem_bytes[0] - res.weight_mem_bytes[0]) / 1e9);
  }
  std::printf(
      "\nExpected: same placement, but the eager policy both lowers the\n"
      "bubble and frees activations earlier.\n");
  return 0;
}
