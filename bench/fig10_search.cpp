// Fig. 10 — the parallelism-configuration search: throughput of each scheme
// for (P, D) in {(8,4), (16,2), (32,1)} on the 32-GPU TACC cluster, with
// OOM cells marked. The best cell per scheme is what Figs. 11/12 use.
//
// Batch semantics follow the paper: "The batch size is set to 4 and 8 to
// maximize GPU memory usage" — a fixed PER-PIPELINE micro-batch count, so
// deepening the pipeline at a constant batch starves it (the fill/drain
// dominates at P=32, B=8) while data parallelism keeps the pipeline full.
// That trade-off is exactly why the paper's search lands on (P=8, D=4).

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

int main() {
  bench::print_header("Figure 10: configuration search, BERT-style, 32 GPUs (TACC)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  const Cluster cluster = Cluster::tacc(32);

  struct Method {
    const char* label;
    Algo algo;
  };
  const Method methods[] = {{"GPipe", Algo::GPipe},
                            {"DAPPLE", Algo::Dapple},
                            {"Chimera-wave", Algo::ChimeraWave},
                            {"Hanayo", Algo::Hanayo}};
  const int waves[] = {1, 2, 4, 8};

  for (int batch : {4, 8}) {
    std::printf("\nper-pipeline batch = %d micro-batches\n", batch);
    std::printf("%-14s %14s %14s %14s\n", "scheme", "(P=8,D=4)", "(P=16,D=2)",
                "(P=32,D=1)");
    for (const Method& m : methods) {
      std::printf("%-14s", m.label);
      for (const auto& [P, D] : std::vector<std::pair<int, int>>{{8, 4}, {16, 2}, {32, 1}}) {
        const int B = batch;
        double best = 0.0;
        bool any_feasible = false, all_oom = true;
        int best_w = 1;
        for (int W : waves) {
          if (m.algo != Algo::Hanayo && W > 1) break;
          const auto c = bench::eval(bert, cluster, m.algo, D, P, W, B, 1);
          if (!c.feasible) continue;
          any_feasible = true;
          if (c.oom) continue;
          all_oom = false;
          if (c.throughput_seq_s > best) {
            best = c.throughput_seq_s;
            best_w = W;
          }
        }
        if (!any_feasible) {
          std::printf("%14s", "n/a");
        } else if (all_oom) {
          std::printf("%14s", "OOM");
        } else if (m.algo == Algo::Hanayo) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.3f (W=%d)", best, best_w);
          std::printf("%14s", buf);
        } else {
          std::printf("%14.3f", best);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): (P=8, D=4) is the best configuration for all\n"
      "methods; Hanayo's best wave count there is 2.\n");
  return 0;
}
