// Fig. 8 — distribution of peak memory consumption for GPipe, DAPPLE,
// Chimera and Hanayo when training the paper's BERT-style and GPT-style
// models on 32 GPUs of the TACC Lonestar6 cluster, for the two parallel
// configurations (P=8, N=4, B=2) and (P=16, N=2, B=4). N is the paper's
// name for the data-parallel size.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

void run_setting(const ModelConfig& model, int P, int N, int B) {
  std::printf("\n--- %s (P=%d, N=%d, B=%d, H=%lld) ---\n", model.name.c_str(), P,
              N, B, static_cast<long long>(model.hidden));
  std::printf("%-14s %10s %10s %10s %10s %6s\n", "scheme", "min GB", "max GB",
              "mean GB", "variance", "OOM?");
  const Cluster cluster = Cluster::tacc(32);
  struct Row {
    const char* name;
    Algo algo;
    int W;
  };
  // "Chimera" follows the paper's evaluation protocol (the wave-transformed
  // variant, replicas counted as data parallelism); "Chimera-2rep" shows the
  // untransformed bidirectional original with its 2x weight replication.
  for (const Row& r : {Row{"GPipe", Algo::GPipe, 1}, Row{"DAPPLE", Algo::Dapple, 1},
                       Row{"Chimera", Algo::ChimeraWave, 1},
                       Row{"Chimera-2rep", Algo::Chimera, 1},
                       Row{"Hanayo", Algo::Hanayo, 2}}) {
    schedule::ScheduleRequest req;
    req.algo = r.algo;
    req.P = P;
    req.B = B;
    req.waves = r.W;
    const int S = schedule::stages_for(req);
    if (S > static_cast<int>(model.layer_descs().size())) {
      std::printf("%-14s   (infeasible: %d stages > layers)\n", r.name, S);
      continue;
    }
    const auto sched = make_schedule(req);
    const auto costs = sim::compute_costs(model, S, /*mb_sequences=*/1, cluster);
    sim::SimOptions opt;
    opt.dp = N;
    const auto res = simulate(sched, costs, cluster, opt);
    std::vector<double> gb;
    for (double x : res.peak_mem_bytes) gb.push_back(x / 1e9);
    const double mn = *std::min_element(gb.begin(), gb.end());
    const double mx = *std::max_element(gb.begin(), gb.end());
    const double mean = std::accumulate(gb.begin(), gb.end(), 0.0) / gb.size();
    double var = 0.0;
    for (double x : gb) var += (x - mean) * (x - mean);
    var /= gb.size();
    std::printf("%-14s %10.2f %10.2f %10.2f %10.2f %6s\n", r.name, mn, mx, mean,
                var, res.oom ? "OOM" : "-");
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 8: peak memory distribution, TACC Lonestar6 (40 GB A100)");
  ModelConfig bert = ModelConfig::bert_paper();
  ModelConfig gpt = ModelConfig::gpt_paper();
  run_setting(bert, 8, 4, 2);
  run_setting(bert, 16, 2, 4);
  run_setting(gpt, 8, 4, 2);
  run_setting(gpt, 16, 2, 4);
  std::printf(
      "\nExpected shape (paper): GPipe highest peaks (OOM-prone), DAPPLE high\n"
      "variance, Chimera/Hanayo lower peaks, Hanayo lowest variance among the\n"
      "low-memory schemes.\n");
  return 0;
}
