// Planner search bench: runs the training configuration search (perf::plan,
// Fig. 10) and the decode-aware serving search (perf::plan_serving) on a
// spec cluster, and emits BENCH_plan.json — the ranked candidates, the
// chosen configuration, and the search wall-time — so CI records how the
// unified planning core behaves (and how long it takes) on every PR.
//
//   $ ./bench/plan_search [out.json] [devices]
//
// Wall-times here measure the planner itself (schedule generation + event
// simulation per cell), not the served model: the search is the product.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_plan.json";
  const int devices = argc > 2 ? std::atoi(argv[2]) : 8;

  const ModelConfig model = ModelConfig::tiny(/*layers=*/14, /*hidden=*/64,
                                              /*heads=*/4, /*vocab=*/512,
                                              /*seq=*/64);
  const auto cluster = sim::Cluster::uniform(devices, 100e12, 40e9, 12e9, 5e-6);

  // ---- Training search (Fig. 10) ----------------------------------------
  PlanRequest treq;
  treq.model = model;
  treq.cluster = cluster;
  treq.total_devices = devices;
  treq.batch_sequences = devices;
  treq.wave_options = {1, 2, 4};
  const auto t0 = std::chrono::steady_clock::now();
  const auto train_rows = plan(treq);
  const double train_wall = seconds_since(t0);
  const auto train_best = perf::best(train_rows);

  // ---- Serving search (decode-aware) ------------------------------------
  ServeTarget starget;
  starget.total_devices = devices;
  starget.prompt_tokens = 16;
  starget.max_new_tokens = 8;
  starget.wave_options = {1, 2, 4};
  starget.batch_options = {1, 2, 4, 8};
  const auto t1 = std::chrono::steady_clock::now();
  const auto serve_rows = plan_serving(cluster, model, starget);
  const double serve_wall = seconds_since(t1);
  const auto serve_best = best_serving(serve_rows);

  std::printf("training: %zu candidates in %.3f s\n", train_rows.size(),
              train_wall);
  if (train_best) std::printf("  best: %s\n", train_best->to_string().c_str());
  std::printf("serving:  %zu candidates in %.3f s\n", serve_rows.size(),
              serve_wall);
  if (serve_best) std::printf("  best: %s\n", serve_best->to_string().c_str());

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"plan_search\",\n");
  std::fprintf(f, "  \"devices\": %d,\n", devices);
  std::fprintf(f,
               "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
               "\"seq\": %lld, \"vocab\": %lld},\n",
               static_cast<long long>(model.layers),
               static_cast<long long>(model.hidden),
               static_cast<long long>(model.seq),
               static_cast<long long>(model.vocab));

  std::fprintf(f, "  \"training\": {\n");
  std::fprintf(f, "    \"candidates\": %zu,\n", train_rows.size());
  std::fprintf(f, "    \"search_wall_s\": %.6f,\n", train_wall);
  std::fprintf(f, "    \"chosen\": \"%s\",\n",
               train_best ? json_escape(train_best->to_string()).c_str() : "");
  std::fprintf(f, "    \"top\": [\n");
  const size_t ttop = std::min<size_t>(train_rows.size(), 10);
  for (size_t i = 0; i < ttop; ++i) {
    std::fprintf(f, "      \"%s\"%s\n",
                 json_escape(train_rows[i].to_string()).c_str(),
                 i + 1 < ttop ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");

  std::fprintf(f, "  \"serving\": {\n");
  std::fprintf(f, "    \"candidates\": %zu,\n", serve_rows.size());
  std::fprintf(f, "    \"search_wall_s\": %.6f,\n", serve_wall);
  if (serve_best) {
    std::fprintf(f,
                 "    \"chosen\": {\"algo\": \"%s\", \"dp\": %d, \"P\": %d, "
                 "\"W\": %d, \"max_batch\": %d, \"tokens_per_s\": %.1f, "
                 "\"per_token_ms\": %.6f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
                 "\"ttft_ms\": %.6f, \"peak_mem_gb\": %.4f},\n",
                 schedule::algo_name(serve_best->algo).c_str(),
                 serve_best->dp, serve_best->P, serve_best->W,
                 serve_best->max_batch, serve_best->tokens_per_s,
                 serve_best->token_latency_s * 1e3,
                 serve_best->p50_token_latency_s * 1e3,
                 serve_best->p99_token_latency_s * 1e3,
                 serve_best->ttft_s * 1e3, serve_best->peak_mem_gb);
  } else {
    std::fprintf(f, "    \"chosen\": null,\n");
  }
  std::fprintf(f, "    \"top\": [\n");
  const size_t stop_n = std::min<size_t>(serve_rows.size(), 10);
  for (size_t i = 0; i < stop_n; ++i) {
    std::fprintf(f, "      \"%s\"%s\n",
                 json_escape(serve_rows[i].to_string()).c_str(),
                 i + 1 < stop_n ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
