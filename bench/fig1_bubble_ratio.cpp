// Fig. 1 — theoretical bubble ratio of synchronous pipeline schemes at
// devices = 8 and devices = 32 (B = P, T_B = 2 T_F, T_C = 0), plus the
// Fig. 2 comparison table rows.

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

int main() {
  bench::print_header("Figure 1: theoretical bubble ratio (%)");
  std::printf("%-22s %12s %12s\n", "scheme", "devices=8", "devices=32");
  for (const auto& [name, f] :
       std::vector<std::pair<const char*, double (*)(const perf::AnalyticParams&)>>{
           {"GPipe", perf::bubble_ratio_gpipe},
           {"DAPPLE", perf::bubble_ratio_dapple},
           {"GEMS", perf::bubble_ratio_gems},
           {"Chimera (replica=2)", perf::bubble_ratio_chimera},
       }) {
    perf::AnalyticParams p8{8, 8, 1, 1.0, 2.0, 0.0};
    perf::AnalyticParams p32{32, 32, 1, 1.0, 2.0, 0.0};
    std::printf("%-22s %11.1f%% %11.1f%%\n", name, 100.0 * f(p8), 100.0 * f(p32));
  }
  for (int W : {2, 4}) {
    std::printf("Hanayo (wave=%d)      %11.1f%% %11.1f%%\n", W,
                100.0 * perf::bubble_ratio_hanayo_simplified(8, W),
                100.0 * perf::bubble_ratio_hanayo_simplified(32, W));
  }

  bench::print_header("Figure 2: comparison of SOTA approaches");
  std::printf("%-14s %22s %12s %12s\n", "scheme", "bubble ratio (P=8,B=8)",
              "Mw factor", "Ma units");
  perf::AnalyticParams p{8, 8, 2, 1.0, 2.0, 0.0};
  std::printf("%-14s %21.1f%% %12.1f %12.1f\n", "GPipe",
              100.0 * perf::bubble_ratio_gpipe(p), perf::weight_factor_gpipe(),
              perf::act_units_gpipe(8));
  std::printf("%-14s %21.1f%% %12.1f %12.1f\n", "DAPPLE",
              100.0 * perf::bubble_ratio_dapple(p), perf::weight_factor_dapple(),
              perf::act_units_dapple(8, 8));
  std::printf("%-14s %21.1f%% %12.1f %12.1f\n", "Chimera",
              100.0 * perf::bubble_ratio_chimera(p), perf::weight_factor_chimera(),
              perf::act_units_dapple(8, 8) / 2.0);
  std::printf("%-14s %21.1f%% %12.1f %12.1f\n", "Hanayo (W=2)",
              100.0 * perf::bubble_ratio_hanayo(p), perf::weight_factor_hanayo(),
              perf::act_units_hanayo(8, 2, 8));

  // Cross-check the paper's Eq. (1) against its simplified closed form.
  bench::print_header("Eq. (1) consistency check");
  for (int P : {8, 32}) {
    for (int W : {1, 2, 4, 8}) {
      perf::AnalyticParams q{P, P, W, 1.0, 2.0, 0.0};
      std::printf("  P=%-3d W=%-2d  Eq.(1)=%.4f  simplified=%.4f\n", P, W,
                  perf::bubble_ratio_hanayo(q),
                  perf::bubble_ratio_hanayo_simplified(P, W));
    }
  }
  return 0;
}
