// Fig. 12 — strong scaling of the BERT-style model on TACC: the global
// batch is fixed while devices scale 8 -> 16 -> 32 (the fine-tuning
// scenario the paper motivates).

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

double best_throughput(const ModelConfig& model, const Cluster& cluster,
                       Algo algo, int devices, int batch) {
  perf::PlanRequest req;
  req.model = model;
  req.cluster = cluster;
  req.total_devices = devices;
  req.batch_sequences = batch;
  req.algos = {algo};
  req.wave_options = (algo == Algo::Hanayo) ? std::vector<int>{1, 2, 4, 8}
                                            : std::vector<int>{1};
  req.min_pipeline = 4;
  const auto b = perf::best(perf::plan(req));
  return b ? b->throughput_seq_s : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Figure 12: strong scaling, BERT-style, TACC, fixed batch (seq/s)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  const int batch = 32;  // fixed global batch (sequences)

  std::printf("%-14s %12s %12s %12s\n", "scheme", "devices=8", "devices=16",
              "devices=32");
  std::vector<std::vector<double>> table;
  struct Method {
    const char* label;
    Algo algo;
  };
  for (const Method& m :
       {Method{"GPipe", Algo::GPipe}, Method{"DAPPLE", Algo::Dapple},
        // §5: "the Chimera that we compare with in evaluation is the
        // optimized wave version, Chimera-wave".
        Method{"Chimera-wave", Algo::ChimeraWave}, Method{"Hanayo", Algo::Hanayo}}) {
    std::printf("%-14s", m.label);
    std::vector<double> row;
    for (int devices : {8, 16, 32}) {
      const double t = best_throughput(bert, Cluster::tacc(devices), m.algo,
                                       devices, batch);
      row.push_back(t);
      if (t > 0.0) {
        std::printf("%12.3f", t);
      } else {
        std::printf("%12s", "OOM");
      }
    }
    table.push_back(row);
    std::printf("\n");
  }

  const auto& h = table.back();
  if (h[0] > 0.0) {
    std::printf("\nHanayo speedup over 8 devices: x%.2f (16 dev), x%.2f (32 dev)\n",
                h[1] / h[0], h[2] / h[0]);
  }
  std::printf(
      "\nExpected shape (paper): throughput grows with device count (speedups\n"
      "~1.9x and ~3.4x); Hanayo highest in all three columns, ~8-9%% over\n"
      "Chimera; GPipe/DAPPLE OOM at 8 devices in the paper's 40 GB setting.\n");
  return 0;
}
