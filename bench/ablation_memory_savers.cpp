// Ablation: the related-work §6 memory/volume techniques composed with the
// wave pipeline, at paper scale on the TACC cluster model.
//
// "These techniques are independent of pipeline parallelism and can be
// combined to improve large model training." — we quantify each knob on
// the simulator for BERT-64L (P=8, D=4, the paper's best Fig. 10 layout):
//   * ZeRO-1    — optimizer state sharded across D replicas: the weight
//                 state factor drops from 3.0 (w+g+m) to 2 + 1/D;
//   * recompute — stages keep only their input activation; backward pays
//                 an extra forward;
//   * fp16 P2P  — boundary transfer volume halves.
// The runtime counterparts are measured live in examples/memory_saver and
// proven correct in tests/runtime/test_zero1.cpp (bit-identical training).

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

struct Knobs {
  const char* name;
  bool zero1;
  bool recompute;
  bool fp16;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: ZeRO-1 / recomputation / fp16 transfers on Hanayo (sim)");

  const auto model = ModelConfig::bert_paper();
  const auto cluster = Cluster::tacc(32);
  const int D = 4, P = 8, B = 8, W = 2, mb = 1;

  schedule::ScheduleRequest req;
  req.algo = Algo::Hanayo;
  req.P = P;
  req.B = B;
  req.waves = W;
  const auto sched = make_schedule(req);
  const int S = schedule::stages_for(req);

  const Knobs variants[] = {
      {"baseline", false, false, false},
      {"+ ZeRO-1", true, false, false},
      {"+ recompute", true, true, false},
      {"+ fp16 P2P", true, true, true},
  };

  std::printf("  BERT-64L, D=%d x P=%d, B=%d, W=%d on %s\n", D, P, B, W,
              cluster.name.c_str());
  std::printf("\n  %-14s %12s %12s %14s %8s\n", "variant", "peak GB",
              "seq/s", "comm MB/iter", "OOM");

  for (const Knobs& k : variants) {
    sim::PipelineCosts costs =
        sim::compute_costs(model, S, mb, cluster, k.recompute);
    if (k.fp16) {
      for (double& b : costs.boundary_bytes) b *= 0.5;
    }
    sim::SimOptions opt;
    opt.dp = D;
    // Weight state: weights + grads + AdamW moments. ZeRO-1 shards the
    // optimizer part across the D replicas.
    opt.state_factor = k.zero1 ? 2.0 + 1.0 / D : 3.0;
    const auto res = simulate(sched, costs, cluster, opt);
    const double peak_gb =
        *std::max_element(res.peak_mem_bytes.begin(), res.peak_mem_bytes.end()) /
        1e9;
    std::printf("  %-14s %12.2f %12.3f %14.1f %8s\n", k.name, peak_gb,
                D * res.throughput_seq_per_s(B * mb), res.comm_bytes / 1e6,
                res.oom ? "yes" : "no");
  }

  std::printf(
      "\nReading: each knob attacks a different axis — ZeRO-1 the weight\n"
      "state, recomputation the activation residency (for a ~%d%% compute\n"
      "tax visible in seq/s), fp16 the transfer volume. All compose with\n"
      "the wave schedule because none of them changes the action list.\n",
      33);
  return 0;
}
