// Fig. 11 — weak scaling of the BERT-style model on TACC: devices scale
// 8 -> 16 -> 32 with the batch growing proportionally. Each scheme uses its
// best (P, D, W) configuration per the Fig. 10 search.

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

double best_throughput(const ModelConfig& model, const Cluster& cluster,
                       Algo algo, int devices, int batch) {
  perf::PlanRequest req;
  req.model = model;
  req.cluster = cluster;
  req.total_devices = devices;
  req.batch_sequences = batch;
  req.algos = {algo};
  req.wave_options = (algo == Algo::Hanayo) ? std::vector<int>{1, 2, 4, 8}
                                            : std::vector<int>{1};
  req.min_pipeline = 4;
  const auto b = perf::best(perf::plan(req));
  return b ? b->throughput_seq_s : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Figure 11: weak scaling, BERT-style, TACC (seq/s)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;

  std::printf("%-14s %12s %12s %12s\n", "scheme", "devices=8", "devices=16",
              "devices=32");
  struct Method {
    const char* label;
    Algo algo;
  };
  std::vector<std::vector<double>> table;
  for (const Method& m :
       {Method{"GPipe", Algo::GPipe}, Method{"DAPPLE", Algo::Dapple},
        Method{"Chimera-wave", Algo::ChimeraWave}, Method{"Hanayo", Algo::Hanayo}}) {
    std::printf("%-14s", m.label);
    std::vector<double> row;
    for (const auto& [devices, batch] :
         std::vector<std::pair<int, int>>{{8, 8}, {16, 16}, {32, 32}}) {
      const double t = best_throughput(bert, Cluster::tacc(devices), m.algo,
                                       devices, batch);
      row.push_back(t);
      if (t > 0.0) {
        std::printf("%12.3f", t);
      } else {
        std::printf("%12s", "OOM");
      }
    }
    table.push_back(row);
    std::printf("\n");
  }

  // Parallel efficiency of Hanayo (throughput scaling vs device scaling).
  const auto& h = table.back();
  if (h[0] > 0.0) {
    std::printf("\nHanayo parallel efficiency: 16 dev: %.1f%%   32 dev: %.1f%%\n",
                100.0 * h[1] / (2.0 * h[0]), 100.0 * h[2] / (4.0 * h[0]));
  }
  if (table[2][0] > 0.0) {
    std::printf("Hanayo vs Chimera-wave:     %+5.1f%% / %+5.1f%% / %+5.1f%%\n",
                bench::gain_pct(h[0], table[2][0]), bench::gain_pct(h[1], table[2][1]),
                bench::gain_pct(h[2], table[2][2]));
  }
  std::printf(
      "\nExpected shape (paper): near-100%% parallel efficiency for Hanayo;\n"
      "Hanayo ~8%% over Chimera and ~33%% over GPipe/DAPPLE at every scale.\n");
  return 0;
}
