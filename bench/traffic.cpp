// Open-loop traffic generator: SLA behaviour under offered load.
//
// serve_latency answers "how fast does a configuration serve a closed
// batch"; this bench answers the serving question that follows it: what
// happens when requests ARRIVE at a rate the server does not control. A
// generator thread submits prompts on a seeded arrival process (Poisson,
// bursty on/off, diurnal sinusoid) while the main thread drains the
// server, so admission control, deadlines and mid-decode aborts are
// exercised exactly as a live deployment would: enqueue races drain,
// the bounded queue refuses work, and overload sheds load instead of
// growing an unbounded backlog.
//
//   $ ./bench/traffic [out.json] [--short]
//
// Each row sweeps (arrival pattern x load multiplier) against the measured
// sustainable rate (a closed-loop warm-up run on this machine), with a
// per-request deadline and a bounded RejectNew queue. The warm-up drains
// also feed perf::calibrate_serving, so every prediction below is priced
// under a serving cost model fitted to this machine's measured traffic.
// Reported per row: measured p50/p99 TTFT and per-request token latency
// (from Completion timestamps), the outcome split (served / rejected /
// timed out), measured goodput, and the fluid load model's prediction for
// the same offered rate (perf::predict_load via
// InferenceSession::predict()), including its distributional p50/p99 TTFT
// quantiles — the same model the serving planner ranks under, so
// BENCH_traffic.json doubles as its calibration record. A final row re-runs the 1x Poisson point under
// deterministic fault injection (seeded slow passes) to show degradation
// with conservation intact, and a shared-prefix chat row re-runs it with
// the paged KV store on and every prompt carrying a common system-prompt
// head — its prefill_saved_tok / prefix_hit_rate columns are the measured
// prefix-cache savings, and the JSON's paged_admission block records the
// admission arithmetic (streams admissible from one pool under paged vs
// contiguous pricing).
//
// The bench fails (non-zero exit) if any row breaks conservation
// (submitted != served + rejected + cancelled + timed_out): CI's
// bench-smoke leg doubles as an accounting check under real concurrency.
//
// --short: smoke-sized sweep for CI (fewer requests, 2x point only).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

enum class Arrival { Poisson, Bursty, Diurnal };

const char* arrival_name(Arrival a) {
  switch (a) {
    case Arrival::Poisson: return "poisson";
    case Arrival::Bursty: return "bursty";
    case Arrival::Diurnal: return "diurnal";
  }
  return "?";
}

/// Seeded inter-arrival gap (seconds) for request i of n at mean rate
/// `lambda`. Bursty: 25% duty cycle at 4x rate (same mean). Diurnal: the
/// rate swings +-80% over two sinusoid periods across the run.
double next_gap(Arrival a, tensor::Rng& rng, double lambda, int i, int n,
                double elapsed_s) {
  const double u = std::max(1e-9, 1.0 - static_cast<double>(rng.uniform()));
  switch (a) {
    case Arrival::Poisson:
      return -std::log(u) / lambda;
    case Arrival::Bursty: {
      // 6-request bursts at 4x rate, then an off gap that restores the
      // mean: duty 0.25, so off time is 3x the burst's span.
      const int kBurst = 6;
      double gap = -std::log(u) / (4.0 * lambda);
      if (i > 0 && i % kBurst == 0) gap += 3.0 * kBurst / (4.0 * lambda);
      return gap;
    }
    case Arrival::Diurnal: {
      const double period_s = std::max(1e-6, n / (2.0 * lambda));
      const double rate =
          lambda * (1.0 + 0.8 * std::sin(2.0 * M_PI * elapsed_s / period_s));
      return -std::log(u) / std::max(0.2 * lambda, rate);
    }
  }
  return 1.0 / lambda;
}

struct Row {
  std::string pattern;
  std::string workload = "uniform";
  double load_mult = 0.0;
  double offered_req_s = 0.0;
  bool fault = false;
  bool paged = false;
  int64_t pages_peak = 0;          ///< pool high-water mark (paged rows)
  int64_t prefill_saved_tok = 0;   ///< prompt tokens served from the cache
  double prefix_hit_rate = 0.0;
  int64_t submitted = 0, served = 0, rejected = 0, cancelled = 0,
          timed_out = 0;
  double duration_s = 0.0;
  double goodput_req_s = 0.0;  ///< served requests / measured duration
  double p50_ttft_ms = 0.0, p99_ttft_ms = 0.0;
  double p50_tok_ms = 0.0, p99_tok_ms = 0.0;
  // Fluid load-model prediction at the same offered rate (priced under the
  // fitted serving calibration).
  double pred_capacity_req_s = 0.0, pred_utilization = 0.0;
  double pred_rejected_rate = 0.0, pred_timeout_rate = 0.0;
  double pred_backlogged_rate = 0.0;
  double pred_p50_ttft_ms = 0.0, pred_p99_ttft_ms = 0.0;
};

struct Scenario {
  ModelConfig model;
  perf::Calibration cal;
  int64_t prompt_len = 16;
  int new_tokens = 8;
  int max_batch = 4;
  int dp = 2;
  double deadline_s = 0.0;
  double sustainable_req_s = 0.0;
  int requests = 48;
  uint64_t seed = 2026;
  /// Chat workload: a common head of this many fixed tokens prepended to
  /// every prompt (0 = fully random prompts).
  int64_t shared_prefix_tokens = 0;
  bool paged = false;  ///< serve through the paged KV store + prefix cache
  int kv_page_tokens = 16;
  /// Serving-side cost calibration fitted from this run's own warm-up
  /// drains; every server (and hence every predict()) prices under it.
  std::optional<perf::ServingCalibration> scal;
};

InferenceSession build_server(const Scenario& sc, double offered_req_s,
                              const FaultInjection& fault) {
  auto b = InferenceSession::builder();
  b.model(sc.model)
      .algo(Algo::Hanayo)
      .pipeline(2)
      .waves(2)
      .backend(BackendKind::Threads)
      .max_batch(sc.max_batch)
      .max_new_tokens(sc.new_tokens)
      .prompt_tokens(sc.prompt_len)
      .data_parallel(sc.dp)
      .calibration(sc.cal)
      .deadline_s(sc.deadline_s)
      .queue(QueuePolicy::RejectNew)  // derived cap: dp * max_batch
      .offered_load(offered_req_s)
      .fault(fault)
      .seed(7);
  if (sc.scal) b.serving_calibration(*sc.scal);
  if (sc.paged) b.paged_kv().kv_page_tokens(sc.kv_page_tokens);
  return b.build();
}

/// One closed-loop warm drain at (max_batch, dp): every slot always
/// refilled, 2 full batches per replica. The queue must be Unbounded here
/// — the serving sweep's bounded RejectNew queue would refuse half of a
/// pre-enqueued closed batch, and a sustainable rate computed from
/// submitted-but-rejected requests overstates capacity (historically by
/// ~2x: "1x" load rows were actually driving the server at twice its
/// true rate). Returns the drain's ServeReport totals (pass walls +
/// counters, with `completed` the honest numerator) and the wall-clock
/// seconds it took.
std::pair<runtime::ServeStats, double> warm_drain(const Scenario& sc,
                                                  int max_batch, int dp) {
  auto b = InferenceSession::builder();
  b.model(sc.model)
      .algo(Algo::Hanayo)
      .pipeline(2)
      .waves(2)
      .backend(BackendKind::Threads)
      .max_batch(max_batch)
      .max_new_tokens(sc.new_tokens)
      .prompt_tokens(sc.prompt_len)
      .data_parallel(dp)
      .calibration(sc.cal)
      .queue(QueuePolicy::Unbounded)
      .seed(7);
  auto warm = b.build();
  const int warm_n = 2 * max_batch * dp;
  tensor::Rng rng(13);
  for (int r = 0; r < warm_n; ++r) {
    Tensor prompt({1, sc.prompt_len});
    for (int64_t j = 0; j < sc.prompt_len; ++j) {
      prompt[j] = static_cast<float>(rng.index(sc.model.vocab));
    }
    warm.enqueue(prompt);
  }
  const double w0 = runtime::serve_clock_s();
  (void)warm.run();
  return {warm.report().totals(), runtime::serve_clock_s() - w0};
}

Row run_point(const Scenario& sc, Arrival pattern, double mult,
              const FaultInjection& fault = {}) {
  const double lambda = mult * sc.sustainable_req_s;
  auto server = build_server(sc, lambda, fault);

  // Open loop: the generator owns arrivals, the main thread owns draining.
  // enqueue() and run() race by design — the request queue and the
  // admission-side counters are what make that safe.
  const double t0 = runtime::serve_clock_s();
  std::thread generator([&] {
    tensor::Rng gaps(sc.seed + static_cast<uint64_t>(pattern) * 101 +
                     static_cast<uint64_t>(mult * 8.0));
    tensor::Rng toks(sc.seed ^ 0x9e3779b9ull);
    for (int i = 0; i < sc.requests; ++i) {
      const double gap = next_gap(pattern, gaps, lambda, i, sc.requests,
                                  runtime::serve_clock_s() - t0);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::min(gap, 2.0)));
      Tensor prompt({1, sc.prompt_len});
      for (int64_t j = 0; j < sc.prompt_len; ++j) {
        // A chat workload's system prompt: the first shared_prefix_tokens
        // ids are the same fixed sequence for every request.
        prompt[j] = j < sc.shared_prefix_tokens
                        ? static_cast<float>((7 * j + 3) % sc.model.vocab)
                        : static_cast<float>(toks.index(sc.model.vocab));
      }
      server.enqueue(prompt);
    }
  });

  // Drain until every submitted request has a terminal completion. run()
  // returns whenever the server is momentarily idle, so keep calling it
  // while arrivals are still trickling in.
  std::vector<Completion> done;
  while (static_cast<int>(done.size()) < sc.requests) {
    auto batch = server.run();
    done.insert(done.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
    if (static_cast<int>(done.size()) < sc.requests) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  generator.join();
  const double duration = runtime::serve_clock_s() - t0;

  const ServeReport rep = server.report();
  const ServeReport pred = server.predict();

  Row row;
  row.pattern = arrival_name(pattern);
  row.workload = sc.shared_prefix_tokens > 0 ? "shared_prefix" : "uniform";
  row.load_mult = mult;
  row.offered_req_s = lambda;
  row.fault = fault.enabled();
  row.paged = sc.paged;
  row.pages_peak = rep.kv_pages_peak;
  row.prefill_saved_tok = rep.prefill_tokens_saved();
  row.prefix_hit_rate = rep.prefix_hit_rate();
  row.submitted = rep.submitted;
  row.served = rep.completed;
  row.rejected = rep.rejected;
  row.cancelled = rep.cancelled;
  row.timed_out = rep.timed_out;
  row.duration_s = duration;
  row.goodput_req_s = duration > 0.0 ? rep.completed / duration : 0.0;
  row.p50_ttft_ms = rep.p50_ttft_s() * 1e3;
  row.p99_ttft_ms = rep.p99_ttft_s() * 1e3;
  row.p50_tok_ms = rep.p50_request_token_latency_s() * 1e3;
  row.p99_tok_ms = rep.p99_request_token_latency_s() * 1e3;
  row.pred_capacity_req_s = pred.capacity_req_s;
  row.pred_utilization = pred.utilization;
  row.pred_rejected_rate = pred.predicted_rejected_rate;
  row.pred_timeout_rate = pred.predicted_timeout_rate;
  row.pred_backlogged_rate = pred.predicted_backlogged_rate;
  row.pred_p50_ttft_ms = pred.predicted_p50_ttft_s * 1e3;
  row.pred_p99_ttft_ms = pred.predicted_p99_ttft_s * 1e3;

  const int64_t terminal =
      rep.completed + rep.rejected + rep.cancelled + rep.timed_out;
  if (rep.submitted != sc.requests || terminal != rep.submitted) {
    std::fprintf(stderr,
                 "CONSERVATION VIOLATION %s x%.1f: submitted %lld (want %d) "
                 "!= served %lld + rejected %lld + cancelled %lld + "
                 "timed_out %lld\n",
                 row.pattern.c_str(), mult,
                 static_cast<long long>(rep.submitted), sc.requests,
                 static_cast<long long>(rep.completed),
                 static_cast<long long>(rep.rejected),
                 static_cast<long long>(rep.cancelled),
                 static_cast<long long>(rep.timed_out));
    std::exit(1);
  }
  std::printf(
      "  %-7s x%.1f  %5.1f req/s  served %2lld  rejected %2lld  timed_out "
      "%2lld  p50/p99 ttft %6.1f/%6.1f ms (pred %6.1f/%6.1f)%s",
      row.pattern.c_str(), mult, lambda, static_cast<long long>(rep.completed),
      static_cast<long long>(rep.rejected),
      static_cast<long long>(rep.timed_out), row.p50_ttft_ms, row.p99_ttft_ms,
      row.pred_p50_ttft_ms, row.pred_p99_ttft_ms,
      fault.enabled() ? "  [fault]" : "");
  if (sc.paged) {
    std::printf("  [paged: %lld tok saved, %.0f%% hit, peak %lld pages]",
                static_cast<long long>(row.prefill_saved_tok),
                row.prefix_hit_rate * 100.0,
                static_cast<long long>(row.pages_peak));
  }
  std::printf("\n");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_traffic.json";
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--short") {
      short_mode = true;
    } else {
      out_path = argv[i];
    }
  }

  Scenario sc;
  sc.model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/64, /*heads=*/4,
                               /*vocab=*/512, /*seq=*/64);
  sc.new_tokens = short_mode ? 4 : 8;
  sc.requests = short_mode ? 16 : 48;

  std::printf("calibrating cost model against the local kernel stack ...\n");
  sc.cal = perf::calibrate(sc.model, /*mb_sequences=*/1, /*compute_repeats=*/3,
                           /*comm_repeats=*/short_mode ? 10 : 50);

  // Warm-up drains do double duty. (1) Sustainable rate: a closed-loop
  // run at the serving configuration (every slot always refilled) measures
  // this machine's completion rate; offered loads are multiples of it, so
  // "2x" means the same thing on any host. (2) Serving calibration: the
  // same drains, swept over (batch, dp), are the measured rows
  // perf::calibrate_serving fits the orchestration-overhead and
  // CPU-oversubscription coefficients from — so every pred_* column below
  // is priced by a cost model fitted to THIS machine's measured traffic,
  // not the raw event simulation.
  {
    std::printf("measuring forward-only rate scales (single-thread) ...\n");
    const perf::ServingCalibration rate_seed = perf::measure_serving_rates(
        sc.model, sc.cal, sc.prompt_len, short_mode ? 5 : 20);
    struct WarmPoint {
      int batch, dp;
    };
    const std::vector<WarmPoint> points =
        short_mode ? std::vector<WarmPoint>{{sc.max_batch, sc.dp}}
                   : std::vector<WarmPoint>{
                         {1, 1}, {sc.max_batch, 1}, {1, sc.dp},
                         {sc.max_batch, sc.dp}};
    const int warm_repeats = short_mode ? 1 : 5;
    std::vector<perf::ServingSample> samples;
    for (const WarmPoint& p : points) {
      std::vector<runtime::ServeStats> drains;
      double wall = 0.0;
      for (int r = 0; r < warm_repeats; ++r) {
        auto [stats, secs] = warm_drain(sc, p.batch, p.dp);
        drains.push_back(stats);
        wall += secs;
      }
      const runtime::ServeStats pooled = runtime::merge_stats(drains);
      if (pooled.completed !=
          static_cast<int64_t>(warm_repeats) * 2 * p.batch * p.dp) {
        std::fprintf(stderr,
                     "warm drain (batch=%d dp=%d) served %lld of %d\n",
                     p.batch, p.dp, static_cast<long long>(pooled.completed),
                     warm_repeats * 2 * p.batch * p.dp);
        return 1;
      }
      perf::ServingSample s;
      s.algo = Algo::Hanayo;
      s.P = 2;
      s.W = 2;
      s.max_batch = p.batch;
      s.dp = p.dp;
      s.prompt_tokens = sc.prompt_len;
      s.max_new_tokens = sc.new_tokens;
      s.measured_decode_pass_s =
          pooled.decode_passes > 0 ? pooled.decode_s / pooled.decode_passes
                                   : 0.0;
      s.measured_prefill_pass_s =
          pooled.prefill_passes > 0 ? pooled.prefill_s / pooled.prefill_passes
                                    : 0.0;
      samples.push_back(s);
      if (p.batch == sc.max_batch && p.dp == sc.dp) {
        sc.sustainable_req_s =
            static_cast<double>(pooled.completed) / std::max(1e-6, wall);
      }
    }
    sc.scal = perf::calibrate_serving(
        sc.model, api::planning_cluster(8, sc.cal), sc.cal, samples,
        rate_seed);
    std::printf(
        "fitted serving calibration: overhead %.1f us/pass + %.1f us/worker, "
        "oversub %.2f (%d cores), %d fit rows, residual log-rms %.3f\n",
        sc.scal->pass_overhead_s * 1e6, sc.scal->worker_overhead_s * 1e6,
        sc.scal->oversub_factor, sc.scal->host_cores, sc.scal->fit_rows,
        sc.scal->residual_log_rms);
    // Deadline: four batch turnarounds. Comfortable at <=1x load, binding
    // once a 2x backlog forms — so overload splits between queue rejections
    // and deadline misses instead of unbounded waiting.
    const double turnaround_s =
        sc.max_batch * sc.dp / std::max(1e-6, sc.sustainable_req_s);
    sc.deadline_s = 4.0 * turnaround_s;
    std::printf("sustainable %.1f req/s, deadline %.0f ms\n",
                sc.sustainable_req_s, sc.deadline_s * 1e3);
  }

  const std::vector<Arrival> patterns = {Arrival::Poisson, Arrival::Bursty,
                                         Arrival::Diurnal};
  const std::vector<double> mults =
      short_mode ? std::vector<double>{2.0} : std::vector<double>{0.5, 1.0, 2.0};

  std::vector<Row> rows;
  for (Arrival a : patterns) {
    for (double m : mults) {
      rows.push_back(run_point(sc, a, m));
    }
  }
  // Degraded service: deterministic slow passes on the same 1x Poisson
  // point (2x in short mode, matching the sweep). Conservation and the
  // deadline machinery must hold when passes stall.
  FaultInjection fault;
  fault.seed = 99;
  fault.slow_pass_prob = 0.5;
  fault.slow_pass_us = 2000;
  rows.push_back(
      run_point(sc, Arrival::Poisson, short_mode ? 2.0 : 1.0, fault));

  // Chat workload through the paged KV store: every request carries the
  // same 16-token system-prompt head, so after the first stream on each
  // replica publishes it, later admissions adopt the cached pages and
  // prefill only their unique tail. The row's prefill_saved_tok /
  // prefix_hit_rate columns are the measured savings.
  Scenario chat = sc;
  chat.paged = true;
  chat.shared_prefix_tokens = 16;
  chat.prompt_len = 24;  // 16 shared head + 8 unique per request
  rows.push_back(run_point(chat, Arrival::Poisson, short_mode ? 2.0 : 1.0));

  // TTFT quantile check: on clearly sub-critical, fault-free rows
  // (utilization < 0.9 — at the critical point the steady-state wait is
  // 1/(1-rho)-divergent while a finite open-loop run never builds that
  // queue, so neither side of the comparison is meaningful there) the
  // predicted p99 TTFT should land within 2x of the measured one in
  // either direction. Advisory, not fatal: arrival patterns are bursty by
  // construction and a 48-request sample's p99 is one request's timing —
  // but a systematic miss across rows means the wait model drifted.
  int ttft_checked = 0, ttft_off = 0;
  for (const Row& r : rows) {
    if (r.fault || r.pred_utilization >= 0.9) continue;
    if (r.p99_ttft_ms <= 0.0 || r.pred_p99_ttft_ms <= 0.0) continue;
    ++ttft_checked;
    const double ratio = r.p99_ttft_ms / r.pred_p99_ttft_ms;
    if (ratio > 2.0 || ratio < 0.5) {
      ++ttft_off;
      std::fprintf(stderr,
                   "  WARN p99 TTFT mispredict %s x%.1f: measured %.1f ms vs "
                   "predicted %.1f ms (%.2fx)\n",
                   r.pattern.c_str(), r.load_mult, r.p99_ttft_ms,
                   r.pred_p99_ttft_ms, ratio);
    }
  }
  std::printf("p99 TTFT within 2x on %d/%d sub-critical rows\n",
              ttft_checked - ttft_off, ttft_checked);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"traffic\",\n");
  std::fprintf(f,
               "  \"model\": {\"layers\": %lld, \"hidden\": %lld, "
               "\"seq\": %lld, \"vocab\": %lld},\n",
               static_cast<long long>(sc.model.layers),
               static_cast<long long>(sc.model.hidden),
               static_cast<long long>(sc.model.seq),
               static_cast<long long>(sc.model.vocab));
  std::fprintf(f, "  \"config\": {\"algo\": \"hanayo\", \"P\": 2, \"W\": 2, "
               "\"max_batch\": %d, \"dp\": %d, \"queue\": \"reject_new\", "
               "\"queue_cap\": %d},\n",
               sc.max_batch, sc.dp, sc.max_batch * sc.dp);
  std::fprintf(f, "  \"prompt_tokens_per_seq\": %lld,\n",
               static_cast<long long>(sc.prompt_len));
  std::fprintf(f, "  \"new_tokens_per_seq\": %d,\n", sc.new_tokens);
  std::fprintf(f, "  \"requests_per_point\": %d,\n", sc.requests);
  std::fprintf(f, "  \"sustainable_req_s\": %.2f,\n", sc.sustainable_req_s);
  std::fprintf(f, "  \"deadline_ms\": %.1f,\n", sc.deadline_s * 1e3);
  if (sc.scal) {
    std::fprintf(f,
                 "  \"serving_calibration\": {\"prefill_rate_scale\": %.4f, "
                 "\"decode_rate_scale\": %.4f, \"pass_overhead_s\": %.3e, "
                 "\"worker_overhead_s\": %.3e, \"oversub_factor\": %.3f, "
                 "\"host_cores\": %d, \"fit_rows\": %d, "
                 "\"residual_log_rms\": %.4f},\n",
                 sc.scal->prefill_rate_scale, sc.scal->decode_rate_scale,
                 sc.scal->pass_overhead_s, sc.scal->worker_overhead_s,
                 sc.scal->oversub_factor, sc.scal->host_cores,
                 sc.scal->fit_rows, sc.scal->residual_log_rms);
  }
  {
    // Admission arithmetic for the shared-prefix chat row: from one
    // per-replica page pool (the derived default — max_batch worst-case
    // full-context streams plus their COW spares), how many streams of the
    // chat workload are admissible under contiguous pricing (a full-seq
    // slab per stream, what the unpaged path reserves) vs paged pricing
    // (KvStore::pages_needed: pages to the final length, minus the cached
    // head's pages, plus one COW spare per lane).
    const int64_t lanes = runtime::kv_lanes(chat.model);
    const int64_t pg = chat.kv_page_tokens;
    const int64_t full_seq_pages = (chat.model.seq + pg - 1) / pg;
    const int64_t pool = chat.max_batch * (full_seq_pages + 1) * lanes;
    const int64_t final_len = chat.prompt_len + chat.new_tokens - 1;
    const int64_t stream_contig = full_seq_pages * lanes;
    const int64_t stream_paged =
        ((final_len + pg - 1) / pg - chat.shared_prefix_tokens / pg + 1) *
        lanes;
    std::fprintf(f,
                 "  \"paged_admission\": {\"kv_page_tokens\": %lld, "
                 "\"lanes\": %lld, \"pool_pages\": %lld, "
                 "\"stream_pages_contiguous\": %lld, "
                 "\"stream_pages_paged_shared\": %lld, "
                 "\"admissible_streams_contiguous\": %lld, "
                 "\"admissible_streams_paged\": %lld},\n",
                 static_cast<long long>(pg), static_cast<long long>(lanes),
                 static_cast<long long>(pool),
                 static_cast<long long>(stream_contig),
                 static_cast<long long>(stream_paged),
                 static_cast<long long>(pool / stream_contig),
                 static_cast<long long>(pool / stream_paged));
  }
  std::fprintf(f,
               "  \"note\": \"open-loop arrivals from a generator thread; "
               "load_mult scales the measured closed-loop sustainable rate. "
               "Every row passed the conservation check submitted == served "
               "+ rejected + cancelled + timed_out. pred_* columns are the "
               "fluid M/D/1-flavoured overload model (perf::predict_load) "
               "the serving planner ranks under, priced through the "
               "serving_calibration block fitted from this run's own warm-up "
               "drains (perf::calibrate_serving); pred_p50/p99_ttft_ms are "
               "its distributional TTFT quantiles, expected within 2x of "
               "the measured ones on sub-critical fault-free rows\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"pattern\": \"%s\", \"workload\": \"%s\", \"load_mult\": %.2f, "
        "\"offered_req_s\": %.2f, \"fault\": %s, \"paged\": %s, "
        "\"submitted\": %lld, "
        "\"served\": %lld, \"rejected\": %lld, \"cancelled\": %lld, "
        "\"timed_out\": %lld, \"duration_s\": %.3f, "
        "\"goodput_req_s\": %.2f, \"p50_ttft_ms\": %.2f, "
        "\"p99_ttft_ms\": %.2f, \"p50_req_token_ms\": %.3f, "
        "\"p99_req_token_ms\": %.3f, \"pred_capacity_req_s\": %.2f, "
        "\"pred_utilization\": %.2f, \"pred_rejected_rate\": %.3f, "
        "\"pred_timeout_rate\": %.3f, \"pred_backlogged_rate\": %.3f, "
        "\"pred_p50_ttft_ms\": %.2f, \"pred_p99_ttft_ms\": %.2f, "
        "\"pages_peak\": %lld, "
        "\"prefill_saved_tok\": %lld, \"prefix_hit_rate\": %.3f}%s\n",
        r.pattern.c_str(), r.workload.c_str(), r.load_mult, r.offered_req_s,
        r.fault ? "true" : "false", r.paged ? "true" : "false",
        static_cast<long long>(r.submitted),
        static_cast<long long>(r.served), static_cast<long long>(r.rejected),
        static_cast<long long>(r.cancelled),
        static_cast<long long>(r.timed_out), r.duration_s, r.goodput_req_s,
        r.p50_ttft_ms, r.p99_ttft_ms, r.p50_tok_ms, r.p99_tok_ms,
        r.pred_capacity_req_s, r.pred_utilization, r.pred_rejected_rate,
        r.pred_timeout_rate, r.pred_backlogged_rate, r.pred_p50_ttft_ms,
        r.pred_p99_ttft_ms, static_cast<long long>(r.pages_peak),
        static_cast<long long>(r.prefill_saved_tok), r.prefix_hit_rate,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}
