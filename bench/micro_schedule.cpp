// google-benchmark microbenchmarks: schedule generation, validation and
// event simulation speed (the planner runs thousands of these).

#include <benchmark/benchmark.h>

#include "schedule/algorithms.hpp"
#include "schedule/validate.hpp"
#include "sim/event_sim.hpp"

namespace hs = hanayo::schedule;
namespace hsim = hanayo::sim;
namespace hm = hanayo::model;

static void BM_GenerateHanayo(benchmark::State& state) {
  hs::ScheduleRequest req;
  req.algo = hs::Algo::Hanayo;
  req.P = static_cast<int>(state.range(0));
  req.B = 2 * req.P;
  req.waves = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs::make_schedule(req));
  }
}
BENCHMARK(BM_GenerateHanayo)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

static void BM_GenerateChimera(benchmark::State& state) {
  hs::ScheduleRequest req;
  req.algo = hs::Algo::Chimera;
  req.P = static_cast<int>(state.range(0));
  req.B = 2 * req.P;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs::make_schedule(req));
  }
}
BENCHMARK(BM_GenerateChimera)->Arg(8)->Arg(32);

static void BM_Validate(benchmark::State& state) {
  hs::ScheduleRequest req;
  req.algo = hs::Algo::Hanayo;
  req.P = 8;
  req.B = 16;
  req.waves = 2;
  const auto s = hs::make_schedule(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs::validate(s));
  }
}
BENCHMARK(BM_Validate);

static void BM_Simulate(benchmark::State& state) {
  hs::ScheduleRequest req;
  req.algo = hs::Algo::Hanayo;
  req.P = 8;
  req.B = 16;
  req.waves = 2;
  const auto s = hs::make_schedule(req);
  auto model = hm::ModelConfig::bert_paper();
  model.split_blocks = true;
  const auto cluster = hsim::Cluster::tacc(8);
  const auto costs = hsim::compute_costs(model, s.placement.stages(), 1, cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsim::simulate(s, costs, cluster));
  }
}
BENCHMARK(BM_Simulate);

BENCHMARK_MAIN();
