// Ablation: the hybrid tensor x data x pipeline search (related work §6,
// "Megatron-LM combines tensor parallelism and pipeline parallelism...
// tensor parallelism within nodes and pipeline parallelism between nodes").
//
// Two regimes on 16 devices:
//  * NVLink-class links + a shallow model (GPT-2 small, 12 layers): the
//    pipeline axis saturates (stages cannot exceed layers), so tensor
//    parallelism is the only way to engage all devices — the hybrid winner
//    uses T > 1.
//  * Slow inter-node links + a deep model (BERT-64L): TP's per-layer
//    allreduces are unaffordable, and the winner collapses to pure
//    pipeline+data parallelism with a wave schedule — the paper's own
//    deployment regime.

#include <cstdio>

#include "bench_common.hpp"
#include "perf/hybrid.hpp"

using namespace hanayo;

namespace {

void search(const char* title, const ModelConfig& model,
            const Cluster& cluster, int devices, int batch) {
  perf::HybridRequest req;
  req.model = model;
  req.cluster = cluster;
  req.total_devices = devices;
  req.batch_sequences = batch;
  const auto cands = perf::plan_hybrid(req);
  std::printf("\n  %s\n", title);
  int shown = 0;
  for (const auto& c : cands) {
    if (!c.usable()) continue;
    std::printf("    %s\n", c.to_string().c_str());
    if (++shown == 5) break;
  }
}

}  // namespace

int main() {
  bench::print_header("Ablation: hybrid TP x DP x PP configuration search");

  search("GPT-2 small (12 layers) on 16 fully-NVLinked devices:",
         ModelConfig::gpt2_small(),
         Cluster::uniform(16, 100e12, 80e9, 200e9, 1e-6), 16, 16);

  search("BERT-64L on 16 devices with slow (IB-class) links:",
         ModelConfig::bert_paper(),
         Cluster::uniform(16, 100e12, 80e9, 12e9, 5e-6), 16, 16);

  std::printf(
      "\nReading: with fast links and a shallow model the top plans use\n"
      "tensor parallelism (the pipeline axis is exhausted at P = layers);\n"
      "with slow links and a deep model the search collapses to the\n"
      "paper's regime — waves + data parallelism, no TP.\n");
  return 0;
}
