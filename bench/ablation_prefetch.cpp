// Ablation: communication prefetching in the real runtime (paper §4.2).
// Measures wall-clock time per training iteration on worker threads with
// prefetch disabled (receives block at the consuming action) vs. enabled
// (receives posted ahead), and reports message counts from the transport.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

double time_steps(int prefetch_depth, int steps) {
  TrainerConfig cfg;
  cfg.model = ModelConfig::tiny(/*layers=*/16, /*hidden=*/48, /*heads=*/4,
                                /*vocab=*/211, /*seq=*/16);
  cfg.sched.algo = Algo::Hanayo;
  cfg.sched.P = 4;
  cfg.sched.B = 8;
  cfg.sched.waves = 2;
  cfg.lr = 0.01f;
  cfg.seed = 7;
  cfg.prefetch_depth = prefetch_depth;
  Trainer trainer(cfg);
  Rng rng(1);
  const Batch batch = synthetic_batch(cfg.model, trainer.batch_rows(), rng);
  trainer.train_step(batch);  // warmup
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) trainer.train_step(batch);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / steps;
}

}  // namespace

int main() {
  bench::print_header("Ablation: runtime communication prefetch (Hanayo W=2, P=4, B=8)");
  const int steps = 5;
  std::printf("%-20s %14s\n", "prefetch depth", "s/iteration");
  for (int depth : {0, 1, 2, 4, 8}) {
    std::printf("%-20d %14.4f\n", depth, time_steps(depth, steps));
  }
  std::printf(
      "\nNote: on a single-core host the threads time-share, so the benefit\n"
      "of overlapping receives with compute is bounded; on real multi-GPU\n"
      "hosts prefetching hides the transfer latency entirely (paper §4.2).\n"
      "The correctness of every depth is proven in\n"
      "tests/runtime/test_equivalence.cpp (PrefetchDepthDoesNotChangeResults).\n");
  return 0;
}
