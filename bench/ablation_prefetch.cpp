// Ablation: communication prefetching in the real runtime (paper §4.2).
// Measures wall-clock time per training iteration on worker threads with
// prefetch disabled (receives block at the consuming action) vs. enabled
// (receives posted ahead), and reports message counts from the transport.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

double time_steps(int prefetch_depth, int steps) {
  const ModelConfig model = ModelConfig::tiny(/*layers=*/16, /*hidden=*/48,
                                              /*heads=*/4, /*vocab=*/211,
                                              /*seq=*/16);
  Session session = Session::builder()
                        .model(model)
                        .algo(Algo::Hanayo)
                        .pipeline(4)
                        .micro_batches(8)
                        .waves(2)
                        .learning_rate(0.01f)
                        .seed(7)
                        .prefetch_depth(prefetch_depth)
                        .build();
  Rng rng(1);
  const Batch batch = synthetic_batch(model, session.batch_rows(), rng);
  session.step(batch);  // warmup
  double total = 0.0;
  for (int i = 0; i < steps; ++i) total += session.step(batch).wall_s;
  return total / steps;
}

}  // namespace

int main() {
  bench::print_header("Ablation: runtime communication prefetch (Hanayo W=2, P=4, B=8)");
  const int steps = 5;
  std::printf("%-20s %14s\n", "prefetch depth", "s/iteration");
  for (int depth : {0, 1, 2, 4, 8}) {
    std::printf("%-20d %14.4f\n", depth, time_steps(depth, steps));
  }
  std::printf(
      "\nNote: on a single-core host the threads time-share, so the benefit\n"
      "of overlapping receives with compute is bounded; on real multi-GPU\n"
      "hosts prefetching hides the transfer latency entirely (paper §4.2).\n"
      "The correctness of every depth is proven in\n"
      "tests/runtime/test_equivalence.cpp (PrefetchDepthDoesNotChangeResults).\n");
  return 0;
}
