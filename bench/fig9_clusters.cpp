// Fig. 9 — throughput of training the BERT-style model on 8 GPUs of four
// different clusters (PC, FC, TACC, TC), under pipeline-only (D=1, P=8) and
// hybrid (D=2, P=4) configurations, for GPipe (G), DAPPLE (D),
// Chimera-wave (C) and Hanayo with 2/4/8 waves (H-2, H-4, H-8).

#include <cstdio>

#include "bench_common.hpp"

using namespace hanayo;

namespace {

struct Method {
  const char* label;
  Algo algo;
  int W;
};

const Method kMethods[] = {
    {"G", Algo::GPipe, 1},     {"D", Algo::Dapple, 1},
    {"C", Algo::ChimeraWave, 1}, {"H-2", Algo::Hanayo, 2},
    {"H-4", Algo::Hanayo, 4},  {"H-8", Algo::Hanayo, 8},
};

void run_cluster(const char* name, const Cluster& cluster,
                 const ModelConfig& model, int D, int P, int B) {
  std::printf("%-6s (D=%d,P=%d) ", name, D, P);
  double best_h = 0.0, chimera = 0.0;
  for (const Method& m : kMethods) {
    const auto c = bench::eval(model, cluster, m.algo, D, P, m.W, B, 1);
    if (!c.feasible) {
      std::printf("%8s", "n/a");
      continue;
    }
    if (c.oom) {
      std::printf("%8s", "OOM");
      continue;
    }
    std::printf("%8.3f", c.throughput_seq_s);
    if (m.algo == Algo::Hanayo) best_h = std::max(best_h, c.throughput_seq_s);
    if (m.algo == Algo::ChimeraWave) chimera = c.throughput_seq_s;
  }
  if (chimera > 0.0 && best_h > 0.0) {
    std::printf("   | Hanayo vs Chimera: %+5.1f%%", bench::gain_pct(best_h, chimera));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Figure 9: BERT-style throughput on four clusters (seq/s)");
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;  // operator-granularity stages, needed for H-8
  const int B = 8;           // micro-batches per pipeline

  std::printf("%-18s", "cluster");
  for (const auto& m : kMethods) std::printf("%8s", m.label);
  std::printf("\n");

  for (const auto& [name, cluster] :
       std::vector<std::pair<const char*, Cluster>>{{"PC", Cluster::pc()},
                                                    {"FC", Cluster::fc()},
                                                    {"TACC", Cluster::tacc(8)},
                                                    {"TC", Cluster::tc()}}) {
    run_cluster(name, cluster, bert, 1, 8, B);
  }
  std::printf("\n");
  for (const auto& [name, cluster] :
       std::vector<std::pair<const char*, Cluster>>{{"PC", Cluster::pc()},
                                                    {"FC", Cluster::fc()},
                                                    {"TACC", Cluster::tacc(8)},
                                                    {"TC", Cluster::tc()}}) {
    run_cluster(name, cluster, bert, 2, 4, B);
  }
  std::printf(
      "\nExpected shape (paper): Hanayo best everywhere (+8%% to +30%% over\n"
      "Chimera-wave); on NVLink clusters more waves help, on TACC the optimal\n"
      "wave count is lower because cross-communication is expensive.\n");
  return 0;
}
