// Microbenchmarks of the collective algorithms and the fp16 codec — the
// communication substrate the wave runtime and the ZeRO-1 flush sit on.

#include <benchmark/benchmark.h>

#include <functional>
#include <thread>

#include "comm/collectives.hpp"
#include "comm/fp16.hpp"

namespace hc = hanayo::comm;
namespace ht = hanayo::tensor;

namespace {

/// Runs `fn` once per rank on its own thread and waits for all of them.
void run_group(int n, const std::function<void(hc::Communicator&)>& fn) {
  hc::World world(n);
  std::vector<std::thread> ts;
  for (int r = 0; r < n; ++r) {
    ts.emplace_back([&world, r, &fn] {
      hc::Communicator c(&world, r);
      fn(c);
    });
  }
  for (auto& t : ts) t.join();
}

hc::Group full_group(int n) {
  hc::Group g;
  for (int r = 0; r < n; ++r) g.ranks.push_back(r);
  return g;
}

void bm_allreduce(benchmark::State& state, hc::AllreduceAlgo algo) {
  const int n = static_cast<int>(state.range(0));
  const int64_t numel = state.range(1);
  const hc::Group g = full_group(n);
  for (auto _ : state) {
    run_group(n, [&](hc::Communicator& c) {
      ht::Tensor t({numel}, std::vector<float>(static_cast<size_t>(numel), 1.0f));
      hc::allreduce_sum(c, g, t, 0, algo);
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * numel * 4 * n);
}

}  // namespace

static void BM_AllreduceNaive(benchmark::State& state) {
  bm_allreduce(state, hc::AllreduceAlgo::Naive);
}
BENCHMARK(BM_AllreduceNaive)->Args({4, 1 << 12})->Args({4, 1 << 16})->Args({8, 1 << 14});

static void BM_AllreduceRing(benchmark::State& state) {
  bm_allreduce(state, hc::AllreduceAlgo::Ring);
}
BENCHMARK(BM_AllreduceRing)->Args({4, 1 << 12})->Args({4, 1 << 16})->Args({8, 1 << 14});

static void BM_AllreduceRecursiveDoubling(benchmark::State& state) {
  bm_allreduce(state, hc::AllreduceAlgo::RecursiveDoubling);
}
BENCHMARK(BM_AllreduceRecursiveDoubling)->Args({4, 1 << 16})->Args({8, 1 << 14});

static void BM_ReduceScatterAllgather(benchmark::State& state) {
  // The ZeRO-1 flush pattern.
  const int n = static_cast<int>(state.range(0));
  const int64_t numel = state.range(1);
  const hc::Group g = full_group(n);
  for (auto _ : state) {
    run_group(n, [&](hc::Communicator& c) {
      ht::Tensor t({numel}, std::vector<float>(static_cast<size_t>(numel), 1.0f));
      ht::Tensor shard = hc::reduce_scatter_sum(c, g, t, 0);
      ht::Tensor full = hc::allgather_shards(c, g, shard, numel, 4);
      benchmark::DoNotOptimize(full.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * numel * 4 * n);
}
BENCHMARK(BM_ReduceScatterAllgather)->Args({4, 1 << 14})->Args({8, 1 << 14});

static void BM_Fp16Pack(benchmark::State& state) {
  ht::Tensor t({state.range(0)});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = 0.001f * static_cast<float>(i);
  for (auto _ : state) {
    ht::Tensor packed = hc::pack_fp16(t);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(state.iterations() * t.numel() * 4);
}
BENCHMARK(BM_Fp16Pack)->Arg(1 << 12)->Arg(1 << 18);

static void BM_Fp16RoundTrip(benchmark::State& state) {
  ht::Tensor t({state.range(0)});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = 0.001f * static_cast<float>(i);
  for (auto _ : state) {
    ht::Tensor back = hc::unpack_fp16(hc::pack_fp16(t));
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() * t.numel() * 4);
}
BENCHMARK(BM_Fp16RoundTrip)->Arg(1 << 12)->Arg(1 << 16);

BENCHMARK_MAIN();
