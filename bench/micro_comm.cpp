// google-benchmark microbenchmarks for the message-passing substrate.

#include <benchmark/benchmark.h>

#include <thread>

#include "comm/collectives.hpp"

namespace hc = hanayo::comm;
namespace ht = hanayo::tensor;

static void BM_SendRecvRoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  hc::World w(2);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    hc::Communicator c(&w, 1);
    for (;;) {
      ht::Tensor t = c.recv(0, 1);
      if (stop.load()) break;
      c.send(0, 2, std::move(t));
    }
  });
  hc::Communicator c(&w, 0);
  ht::Tensor payload({n});
  for (auto _ : state) {
    c.send(1, 1, payload);
    benchmark::DoNotOptimize(c.recv(1, 2));
  }
  stop.store(true);
  c.send(1, 1, ht::Tensor({1}));
  echo.join();
  state.SetBytesProcessed(state.iterations() * n * 4 * 2);
}
BENCHMARK(BM_SendRecvRoundTrip)->Arg(1024)->Arg(1 << 16);

static void BM_PrefetchedIrecv(benchmark::State& state) {
  // irecv posted before the send lands: measures the matching fast path.
  hc::World w(2);
  hc::Communicator c0(&w, 0), c1(&w, 1);
  ht::Tensor payload({1024});
  for (auto _ : state) {
    ht::Tensor slot;
    auto req = c0.irecv(1, 7, &slot);
    c1.isend(0, 7, payload);
    req->wait();
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_PrefetchedIrecv);

static void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  hc::World w(ranks);
  hc::Group g;
  for (int i = 0; i < ranks; ++i) g.ranks.push_back(i);
  for (auto _ : state) {
    std::vector<std::thread> ts;
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&, r] {
        hc::Communicator c(&w, r);
        ht::Tensor t({4096}, 1.0f);
        hc::allreduce_sum(c, g, t, 0);
      });
    }
    for (auto& t : ts) t.join();
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

static void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  hc::World w(ranks);
  for (auto _ : state) {
    std::vector<std::thread> ts;
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&] { w.barrier(); });
    }
    for (auto& t : ts) t.join();
  }
}
BENCHMARK(BM_Barrier)->Arg(4);

BENCHMARK_MAIN();
