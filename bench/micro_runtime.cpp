// google-benchmark microbenchmarks: real threaded execution of one training
// iteration under each schedule on a tiny model — the end-to-end cost of
// the action-list interpreter, prefetching and gradient sync.

#include <benchmark/benchmark.h>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

void run_bench(benchmark::State& state, Algo algo, int W) {
  const int P = static_cast<int>(state.range(0));
  const int B = 8;
  // 14 blocks -> 17 partitionable layers: enough for Hanayo W=2 on P=4
  // (16 stages), the deepest configuration in the sweep.
  const ModelConfig model = ModelConfig::tiny(/*layers=*/14, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/101,
                                              /*seq=*/8);
  Session session = Session::builder()
                        .model(model)
                        .algo(algo)
                        .pipeline(P)
                        .micro_batches(B)
                        .waves(W)
                        .vchunks(W)
                        .seed(1)
                        .learning_rate(0.01f)
                        .build();
  Rng rng(2);
  const Batch batch = synthetic_batch(model, session.batch_rows(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.step(batch).loss);
  }
  state.SetItemsProcessed(state.iterations() * B);
}

}  // namespace

static void BM_TrainStep_GPipe(benchmark::State& state) {
  run_bench(state, Algo::GPipe, 1);
}
static void BM_TrainStep_Dapple(benchmark::State& state) {
  run_bench(state, Algo::Dapple, 1);
}
static void BM_TrainStep_ChimeraWave(benchmark::State& state) {
  run_bench(state, Algo::ChimeraWave, 1);
}
static void BM_TrainStep_Hanayo2(benchmark::State& state) {
  run_bench(state, Algo::Hanayo, 2);
}
BENCHMARK(BM_TrainStep_GPipe)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainStep_Dapple)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainStep_ChimeraWave)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainStep_Hanayo2)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

static void BM_SequentialReference(benchmark::State& state) {
  const auto model = ModelConfig::tiny(12, 32, 2, 101, 8);
  Session session = Session::builder()
                        .model(model)
                        .micro_batches(8)
                        .seed(1)
                        .learning_rate(0.01f)
                        .backend(BackendKind::Reference)
                        .build();
  Rng rng(3);
  const Batch batch = synthetic_batch(model, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.step(batch).loss);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SequentialReference)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
