// google-benchmark microbenchmarks for the tensor substrate.

#include <benchmark/benchmark.h>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

static void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

static void BM_MatmulThreaded(benchmark::State& state) {
  const int64_t n = 512;
  ht::IntraOpScope scope(static_cast<int>(state.range(0)));
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// Wall clock: the main thread's CPU time covers only its own chunk of the
// intra-op pool's work, which would overstate threaded throughput.
BENCHMARK(BM_MatmulThreaded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void BM_Transpose(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(5);
  ht::Tensor a = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::transpose(a));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024);

static void BM_AddBias(benchmark::State& state) {
  ht::Rng rng(6);
  ht::Tensor a = rng.randn({512, 512});
  ht::Tensor bias = rng.randn({512});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::add_bias(a, bias));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_AddBias);

static void BM_ColSum(benchmark::State& state) {
  ht::Rng rng(7);
  ht::Tensor a = rng.randn({512, 512});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::col_sum(a));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_ColSum);

static void BM_MatmulBt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::matmul_bt(a, b));
  }
}
BENCHMARK(BM_MatmulBt)->Arg(64);

static void BM_Softmax(benchmark::State& state) {
  ht::Rng rng(2);
  ht::Tensor a = rng.randn({256, 256});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::softmax_lastdim(a));
  }
}
BENCHMARK(BM_Softmax);

static void BM_Gelu(benchmark::State& state) {
  ht::Rng rng(3);
  ht::Tensor a = rng.randn({1 << 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::gelu(a));
  }
}
BENCHMARK(BM_Gelu);

static void BM_Randn(benchmark::State& state) {
  ht::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.randn({1 << 12}));
  }
}
BENCHMARK(BM_Randn);

BENCHMARK_MAIN();
