// google-benchmark microbenchmarks for the tensor substrate.

#include <benchmark/benchmark.h>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

static void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

static void BM_MatmulBt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::matmul_bt(a, b));
  }
}
BENCHMARK(BM_MatmulBt)->Arg(64);

static void BM_Softmax(benchmark::State& state) {
  ht::Rng rng(2);
  ht::Tensor a = rng.randn({256, 256});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::softmax_lastdim(a));
  }
}
BENCHMARK(BM_Softmax);

static void BM_Gelu(benchmark::State& state) {
  ht::Rng rng(3);
  ht::Tensor a = rng.randn({1 << 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht::gelu(a));
  }
}
BENCHMARK(BM_Gelu);

static void BM_Randn(benchmark::State& state) {
  ht::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.randn({1 << 12}));
  }
}
BENCHMARK(BM_Randn);

BENCHMARK_MAIN();
