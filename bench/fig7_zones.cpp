// Fig. 7 — the four bubble zones of a wave-like pipeline (paper §3.4).
//
// The paper annotates a Hanayo one-wave timeline with Zone A (forward
// ramp-up waits), Zone B (forward/backward turnaround), Zone C (backward
// drain) and cross-communication stalls (our Zone D). This harness runs the
// event simulator on the figure's configuration (P=4, B=4, T_B = 2 T_F),
// decomposes the recorded timeline, and prints the per-zone ledger — then
// repeats with more waves to show each zone shrinking, the mechanism behind
// Eq. (1).

#include <cstdio>

#include "bench_common.hpp"
#include "perf/zones.hpp"

using namespace hanayo;

namespace {

sim::PipelineCosts costs_total(int S, double total_fwd) {
  sim::PipelineCosts c;
  c.fwd_s.assign(static_cast<size_t>(S), total_fwd / S);
  c.bwd_s.assign(static_cast<size_t>(S), 2.0 * total_fwd / S);
  c.boundary_bytes.assign(static_cast<size_t>(S > 0 ? S - 1 : 0), 1.0);
  c.weight_bytes.assign(static_cast<size_t>(S), 1.0);
  c.act_bytes.assign(static_cast<size_t>(S), 1.0);
  return c;
}

void show(Algo algo, int P, int B, int W) {
  schedule::ScheduleRequest req;
  req.algo = algo;
  req.P = P;
  req.B = B;
  req.waves = W;
  const auto sched = make_schedule(req);
  sim::SimOptions opt;
  opt.record_timeline = true;
  const auto res = simulate(sched, costs_total(schedule::stages_for(req), 8.0),
                            Cluster::uniform(P, 1.0, 1e18, 1e12, 0.0), opt);
  const auto zb = perf::decompose_bubbles(res, P);

  const std::string wave_note =
      algo == Algo::Hanayo ? ", W=" + std::to_string(W) : std::string();
  std::printf("\n  %s (P=%d, B=%d%s): makespan %.2f, bubble %.1f%%\n",
              schedule::algo_name(algo).c_str(), P, B, wave_note.c_str(),
              res.makespan, 100.0 * res.bubble_ratio);
  std::printf("    %-38s %8s %8s\n", "zone", "idle", "share");
  const char* desc[] = {
      "A  ramp-up: waiting for fwd activation",
      "B  turnaround: T_B > T_F discrepancy",
      "C  drain: backward chain + flush wait",
      "D  steady-state cross-communication",
  };
  for (int z = 0; z < 4; ++z) {
    const double v = zb.total[static_cast<size_t>(z)];
    std::printf("    %-38s %8.2f %7.1f%%\n", desc[z], v,
                zb.total_idle() > 0 ? 100.0 * v / zb.total_idle() : 0.0);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: bubble-zone decomposition (unit costs, T_B = 2 T_F)");

  // The figure's setting: Hanayo with one wave on 4 devices.
  show(Algo::Hanayo, 4, 4, 1);
  // More waves: every zone's bubbles are halved (paper §3.3).
  show(Algo::Hanayo, 4, 4, 2);
  // Baselines for contrast: GPipe's huge turnaround, DAPPLE's ramp.
  show(Algo::GPipe, 4, 4, 1);
  show(Algo::Dapple, 4, 4, 1);

  std::printf(
      "\nReading: Hanayo's extra waves shrink A and C (smaller stages -> \n"
      "smaller single bubbles) at the price of a little D (cross-\n"
      "communication at wave turns), netting a lower total — Eq. (1).\n");
  return 0;
}
