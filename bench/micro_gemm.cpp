// GEMM kernel microbenchmarks: seed-naive baseline vs the blocked kernels.
//
// The `Naive*` benchmarks are verbatim copies of the seed's triple-loop
// matmuls (including their data-dependent zero-skip branches), kept here so
// the before/after speedup stays measurable in-repo after tensor/ops.cpp
// moved onto tensor/kernels.hpp. `Blocked*` runs the production kernels;
// the `/threads:N` variants measure the intra-op pool (on a single-core CI
// container they time-slice and show no speedup — run on real hardware for
// scaling numbers).
//
//   ./bench/micro_gemm --benchmark_format=json --benchmark_out=BENCH_gemm.json
//
// items_per_second is FLOP/s (2*m*n*k per multiply).

#include <benchmark/benchmark.h>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

namespace {

// ---- seed baselines (src/tensor/ops.cpp as of the v0 seed) --------------

ht::Tensor naive_matmul(const ht::Tensor& a, const ht::Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  ht::Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

ht::Tensor naive_matmul_bt(const ht::Tensor& a, const ht::Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  ht::Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

ht::Tensor naive_matmul_at(const ht::Tensor& a, const ht::Tensor& b) {
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  ht::Tensor c({m, n});
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data() + kk * m;
    const float* brow = b.data() + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void set_flops(benchmark::State& state, int64_t n) {
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

}  // namespace

// ---- matmul -------------------------------------------------------------

static void BM_NaiveMatmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul(a, b));
  set_flops(state, n);
}
BENCHMARK(BM_NaiveMatmul)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

static void BM_BlockedMatmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  ht::IntraOpScope scope(threads);
  ht::Rng rng(1);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  ht::Tensor c({n, n});
  for (auto _ : state) {
    ht::matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_flops(state, n);
}
// UseRealTime: with the intra-op pool the main thread's CPU time covers
// only its own chunk, which would overstate threaded throughput; wall
// clock is the honest denominator.
BENCHMARK(BM_BlockedMatmul)
    ->ArgsProduct({{128, 256, 512}, {1}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockedMatmul)
    ->ArgsProduct({{512}, {2, 4}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- transposed variants ------------------------------------------------

static void BM_NaiveMatmulBt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(2);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_bt(a, b));
  set_flops(state, n);
}
BENCHMARK(BM_NaiveMatmulBt)->Arg(512)->Unit(benchmark::kMillisecond);

static void BM_BlockedMatmulBt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::IntraOpScope scope(1);
  ht::Rng rng(2);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  ht::Tensor c({n, n});
  for (auto _ : state) {
    ht::matmul_bt_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_flops(state, n);
}
BENCHMARK(BM_BlockedMatmulBt)->Arg(512)->Unit(benchmark::kMillisecond);

static void BM_NaiveMatmulAt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::Rng rng(3);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_at(a, b));
  set_flops(state, n);
}
BENCHMARK(BM_NaiveMatmulAt)->Arg(512)->Unit(benchmark::kMillisecond);

static void BM_BlockedMatmulAt(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::IntraOpScope scope(1);
  ht::Rng rng(3);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  ht::Tensor c({n, n});
  for (auto _ : state) {
    ht::matmul_at_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_flops(state, n);
}
BENCHMARK(BM_BlockedMatmulAt)->Arg(512)->Unit(benchmark::kMillisecond);

// ---- A-panel packing (large-k decode shapes) ----------------------------
//
// Packing copies each A panel into a contiguous MR-strided layout once and
// streams the micro-kernel from the copy: past kPackMinK the copy cost is
// amortised and the inner loop stops striding across full A rows. The
// pack=0 rows time the identical kernel with packing forced off — the
// before/after pair behind the BENCH_gemm packed-speedup claim. Shapes are
// decode-like: skinny m, wide k (hidden → vocab projections).

static void BM_MatmulLargeK(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = state.range(1);
  const bool pack = state.range(2) != 0;
  const int64_t n = 256;
  const bool saved = ht::kernels::gemm_pack_a();
  ht::kernels::set_gemm_pack_a(pack);
  ht::IntraOpScope scope(1);
  ht::Rng rng(5);
  ht::Tensor a = rng.randn({m, k});
  ht::Tensor b = rng.randn({k, n});
  ht::Tensor c({m, n});
  for (auto _ : state) {
    ht::matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
  ht::kernels::set_gemm_pack_a(saved);
}
BENCHMARK(BM_MatmulLargeK)
    ->ArgsProduct({{8, 64}, {1024, 4096}, {0, 1}})
    ->ArgNames({"m", "k", "pack"})
    ->Unit(benchmark::kMillisecond);

// ---- accumulate forms (gradient path: no temporary, no zero pass) -------

static void BM_MatmulAtAccum(benchmark::State& state) {
  const int64_t n = state.range(0);
  ht::IntraOpScope scope(1);
  ht::Rng rng(4);
  ht::Tensor a = rng.randn({n, n});
  ht::Tensor b = rng.randn({n, n});
  ht::Tensor grad({n, n});
  for (auto _ : state) {
    ht::matmul_at_accum(a, b, grad);
    benchmark::DoNotOptimize(grad.data());
  }
  set_flops(state, n);
}
BENCHMARK(BM_MatmulAtAccum)->Arg(256)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
