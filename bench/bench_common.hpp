#pragma once
// Shared helpers for the figure-reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "core/hanayo.hpp"

namespace bench {

using namespace hanayo;

/// Simulates one fully specified configuration and returns the planner row;
/// a Session on the Sim backend — the same dry-run every fig* binary would
/// get from Session::predict(), and bit-identical to perf::evaluate.
inline perf::Candidate eval(const ModelConfig& m, const Cluster& cluster,
                            Algo algo, int D, int P, int W, int B, int mb) {
  Session session = Session::builder()
                        .model(m)
                        .algo(algo)
                        .pipeline(P)
                        .micro_batches(B)
                        .waves(W)
                        .data_parallel(D)
                        .mb_sequences(mb)
                        .cluster(cluster)
                        .backend(BackendKind::Sim)
                        .build();
  return session.report().candidate;
}

inline void print_header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

inline void print_row(const std::string& label, double value,
                      const char* unit) {
  std::printf("  %-28s %10.4f %s\n", label.c_str(), value, unit);
}

/// Relative gain of a over b in percent.
inline double gain_pct(double a, double b) { return (a / b - 1.0) * 100.0; }

}  // namespace bench
