#pragma once
// Shared helpers for the figure-reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "core/hanayo.hpp"

namespace bench {

using namespace hanayo;

/// Simulates one fully specified configuration and returns the result;
/// thin wrapper over perf::evaluate used by every fig* binary.
inline perf::Candidate eval(const ModelConfig& m, const Cluster& cluster,
                            Algo algo, int D, int P, int W, int B, int mb) {
  return perf::evaluate(m, cluster, algo, D, P, W, B, mb);
}

inline void print_header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

inline void print_row(const std::string& label, double value,
                      const char* unit) {
  std::printf("  %-28s %10.4f %s\n", label.c_str(), value, unit);
}

/// Relative gain of a over b in percent.
inline double gain_pct(double a, double b) { return (a / b - 1.0) * 100.0; }

}  // namespace bench
