#!/usr/bin/env bash
# clang-tidy runner for the CI lint job (and local use).
#
#   scripts/lint.sh [build-dir]
#
# Lints the API, runtime and core layers (the .clang-tidy at the repo
# root is the single source of truth for which checks run;
# WarningsAsErrors: '*' makes any finding fail the job). Needs a compile database — the build
# dir is configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON if it wasn't.
# Degrades to a skip (exit 0) when clang-tidy is not installed, so the
# script is safe to call from environments without LLVM; CI installs it.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "lint.sh: clang-tidy not found; skipping (install clang-tidy to run)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# The layers the lint gate covers. Widen as warnings elsewhere are fixed.
mapfile -t FILES < <(ls src/api/*.cpp src/runtime/*.cpp src/core/*.cpp)

echo "lint.sh: $("${TIDY}" --version | sed -n 2p | xargs) over ${#FILES[@]} files"
"${TIDY}" -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "lint.sh: clean"
