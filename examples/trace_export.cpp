// Timeline tooling: simulate a schedule, print the paper-style ASCII chart
// (Fig. 3), decompose its bubbles into the Fig. 7 zones, and write a
// Chrome-trace JSON loadable in chrome://tracing or Perfetto.
//
//   ./examples/trace_export [out.json]

#include <cstdio>
#include <fstream>

#include "core/hanayo.hpp"
#include "perf/zones.hpp"
#include "sim/trace.hpp"

using namespace hanayo;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "hanayo_trace.json";

  schedule::ScheduleRequest req;
  req.algo = Algo::Hanayo;
  req.P = 4;
  req.B = 4;
  req.waves = 2;
  const auto sched = make_schedule(req);

  const int S = schedule::stages_for(req);
  sim::PipelineCosts costs;
  costs.fwd_s.assign(static_cast<size_t>(S), 8.0 / S);
  costs.bwd_s.assign(static_cast<size_t>(S), 16.0 / S);
  costs.boundary_bytes.assign(static_cast<size_t>(S - 1), 1e6);
  costs.weight_bytes.assign(static_cast<size_t>(S), 1e6);
  costs.act_bytes.assign(static_cast<size_t>(S), 1e5);

  sim::SimOptions opt;
  opt.record_timeline = true;
  const auto res = simulate(sched, costs, Cluster::fc(), opt);

  std::printf("Hanayo W=%d on P=%d, B=%d — makespan %.2f s, bubble %.1f%%\n\n",
              req.waves, req.P, req.B, res.makespan,
              100.0 * res.bubble_ratio);
  std::printf("%s\n", sim::ascii_timeline(res, req.P, costs.fwd_s[0]).c_str());

  const auto zones = perf::decompose_bubbles(res, req.P);
  std::printf("bubble zones (Fig. 7): A=%.2f  B=%.2f  C=%.2f  D=%.2f\n",
              zones.zone(perf::Zone::A), zones.zone(perf::Zone::B),
              zones.zone(perf::Zone::C), zones.zone(perf::Zone::D));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << sim::chrome_trace_json(res);
  std::printf("\nwrote %s — open in chrome://tracing or ui.perfetto.dev\n",
              out_path.c_str());

  // --- Same schedule on the REAL runtime: record wall-clock spans. -------
  TrainerConfig tc;
  // 16 pipeline stages (P=4, W=2) need >= 16 layers to partition.
  tc.model = ModelConfig::tiny(/*layers=*/14, /*hidden=*/32, /*heads=*/2,
                               /*vocab=*/67, /*seq=*/12);
  tc.sched = req;
  tc.seed = 8;
  tc.record_timeline = true;
  Trainer trainer(tc);
  Rng rng(4);
  const Batch batch = synthetic_batch(tc.model, trainer.batch_rows(), rng);
  trainer.train_step(batch);

  sim::SimResult real;
  double makespan = 0.0;
  const auto timeline = trainer.last_timeline();
  for (int d = 0; d < req.P; ++d) {
    for (const auto& s : timeline[static_cast<size_t>(d)]) {
      real.timeline.push_back(sim::TimelineSpan{d, s.mb, s.pos, s.backward,
                                                s.start, s.end});
      makespan = std::max(makespan, s.end);
    }
  }
  real.makespan = makespan;
  const std::string real_path = "runtime_" + out_path;
  std::ofstream rout(real_path);
  rout << sim::chrome_trace_json(real);
  std::printf("wrote %s — measured spans from the threaded runtime\n",
              real_path.c_str());
  return 0;
}
