// Timeline tooling: simulate a schedule, print the paper-style ASCII chart
// (Fig. 3), decompose its bubbles into the Fig. 7 zones, and write a
// Chrome-trace JSON loadable in chrome://tracing or Perfetto. Both runs —
// the predicted one and the real threaded one — are Sessions; only the
// backend differs.
//
//   ./examples/trace_export [out.json]

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/hanayo.hpp"
#include "perf/zones.hpp"
#include "sim/trace.hpp"

using namespace hanayo;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "hanayo_trace.json";

  const int P = 4, B = 4, W = 2;
  const int S = 2 * W * P;  // wave-path stage count

  sim::PipelineCosts costs;
  costs.fwd_s.assign(static_cast<size_t>(S), 8.0 / S);
  costs.bwd_s.assign(static_cast<size_t>(S), 16.0 / S);
  costs.boundary_bytes.assign(static_cast<size_t>(S - 1), 1e6);
  costs.weight_bytes.assign(static_cast<size_t>(S), 1e6);
  costs.act_bytes.assign(static_cast<size_t>(S), 1e5);

  Session sim_session = Session::builder()
                            .algo(Algo::Hanayo)
                            .pipeline(P)
                            .micro_batches(B)
                            .waves(W)
                            .cluster(Cluster::fc())
                            .sim_costs(costs)
                            .record_timeline()
                            .backend(BackendKind::Sim)
                            .build();
  Batch none;
  const RunReport predicted = sim_session.run(none, 1);
  const sim::SimResult& res = *predicted.sim;

  std::printf("Hanayo W=%d on P=%d, B=%d — makespan %.2f s, bubble %.1f%%\n\n",
              W, P, B, res.makespan, 100.0 * res.bubble_ratio);
  std::printf("%s\n", sim::ascii_timeline(res, P, costs.fwd_s[0]).c_str());

  const auto zones = perf::decompose_bubbles(res, P);
  std::printf("bubble zones (Fig. 7): A=%.2f  B=%.2f  C=%.2f  D=%.2f\n",
              zones.zone(perf::Zone::A), zones.zone(perf::Zone::B),
              zones.zone(perf::Zone::C), zones.zone(perf::Zone::D));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << sim::chrome_trace_json(res);
  std::printf("\nwrote %s — open in chrome://tracing or ui.perfetto.dev\n",
              out_path.c_str());

  // --- Same schedule on the REAL runtime: record wall-clock spans. -------
  // 16 pipeline stages (P=4, W=2) need >= 16 layers to partition.
  Session live = Session::builder()
                     .model(ModelConfig::tiny(/*layers=*/14, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/67,
                                              /*seq=*/12))
                     .algo(Algo::Hanayo)
                     .pipeline(P)
                     .micro_batches(B)
                     .waves(W)
                     .seed(8)
                     .record_timeline()
                     .backend(BackendKind::Threads)
                     .build();
  Rng rng(4);
  const Batch batch =
      synthetic_batch(live.config().model, live.batch_rows(), rng);
  const RunReport measured = live.run(batch, 1);

  sim::SimResult real;
  double makespan = 0.0;
  for (int d = 0; d < P; ++d) {
    for (const auto& s : measured.timeline[static_cast<size_t>(d)]) {
      real.timeline.push_back(sim::TimelineSpan{d, s.mb, s.pos, s.backward,
                                                s.start, s.end});
      makespan = std::max(makespan, s.end);
    }
  }
  real.makespan = makespan;
  const std::string real_path = "runtime_" + out_path;
  std::ofstream rout(real_path);
  rout << sim::chrome_trace_json(real);
  std::printf("wrote %s — measured spans from the threaded runtime\n",
              real_path.c_str());
  return 0;
}
