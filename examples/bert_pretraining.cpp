// BERT-style pre-training scenario (the paper's §5 workload, scaled to run
// on CPU threads): a bidirectional encoder trained with token-level cross
// entropy under every pipeline scheme — one Session per scheme — comparing
// loss trajectories and per-device memory balance.
//
//   $ ./examples/bert_pretraining

#include <cstdio>
#include <vector>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  // A BERT-shaped (bidirectional) model scaled down ~1000x so each scheme
  // trains in seconds on CPU threads. Proportions follow bert_paper().
  ModelConfig bert = ModelConfig::tiny(/*layers=*/16, /*hidden=*/32,
                                       /*heads=*/4, /*vocab=*/499,
                                       /*seq=*/16, /*causal=*/false);
  bert.name = "bert-mini";
  std::printf("%s: %lld layers, %lld params, bidirectional attention\n\n",
              bert.name.c_str(), static_cast<long long>(bert.layers),
              static_cast<long long>(bert.total_params()));

  struct Scheme {
    const char* label;
    Algo algo;
    int W;
  };
  const std::vector<Scheme> schemes = {{"GPipe", Algo::GPipe, 1},
                                       {"DAPPLE", Algo::Dapple, 1},
                                       {"Chimera", Algo::Chimera, 1},
                                       {"Hanayo W=2", Algo::Hanayo, 2}};

  std::printf("%-12s %10s %10s %16s\n", "scheme", "loss@0", "loss@8",
              "peak cache (kB/worker)");
  for (const Scheme& s : schemes) {
    Session session = Session::builder()
                          .model(bert)
                          .algo(s.algo)
                          .pipeline(4)
                          .micro_batches(8)
                          .waves(s.W)
                          .learning_rate(0.05f)
                          .momentum(0.9f)
                          .seed(1234)
                          .build();
    Rng rng(99);  // identical data stream for every scheme
    const Batch fixed = synthetic_batch(bert, session.batch_rows(), rng);
    const RunReport rep = session.run(fixed, 9);
    std::printf("%-12s %10.4f %10.4f       ", s.label, rep.steps.front().loss,
                rep.final_loss());
    for (int64_t p : rep.memory.peak_cache_bytes) {
      std::printf("%5lld ", static_cast<long long>(p / 1024));
    }
    std::printf("\n");
  }

  std::printf(
      "\nAll schemes follow the same loss trajectory (same math, different\n"
      "schedules); the peak-cache columns show GPipe's activation pile-up on\n"
      "early workers versus the balanced profiles of Chimera and Hanayo.\n");
  return 0;
}
