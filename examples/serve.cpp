// Serving quickstart: a forward-only Hanayo wave pipeline decoding
// continuations with per-stream KV caches and continuous batching — first
// greedy on one replica, then seeded top-k sampling with a stop token on
// dp=2 replicas draining one shared queue.
//
//   $ ./examples/serve
//
// Walks through the serving objects: InferenceSession, Completion,
// ServeReport. The same builder core that configures training Sessions
// configures the server; swap .backend() for the sequential reference (it
// decodes token-identical text under every sampling policy) or the Sim dry
// run (predicted tokens/sec before executing anything).

#include <cstdio>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  std::printf("Hanayo serving quickstart (library v%s)\n\n", version());

  // 1. A small causal model. Serving needs causality: each new token may
  //    only extend the prefix, which is what makes the KV cache exact.
  const ModelConfig model = ModelConfig::tiny(/*layers=*/6, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/211,
                                              /*seq=*/48);

  // 2. The serving front door: the training builder chain plus serving
  //    knobs. Underneath, the schedule generator compiles forward-only wave
  //    programs (the F-chain without B actions) per concurrent batch size.
  auto server = InferenceSession::builder()
                    .model(model)
                    .algo(Algo::Hanayo)
                    .pipeline(2)
                    .waves(2)
                    .backend(BackendKind::Threads)
                    .max_batch(3)
                    .max_new_tokens(12)
                    .sampling(Sampling::Greedy())
                    .seed(42)
                    .build();
  const Schedule* sched = server.schedule();
  std::printf("forward-only schedule: %s, %d stages, %d actions on worker 0\n",
              schedule::algo_name(server.config().sched.algo).c_str(),
              sched->placement.stages(),
              static_cast<int>(sched->scripts[0].actions.size()));

  // 3. Dry-run the configuration first: predicted prefill throughput and
  //    per-token latency from the forward-only event simulation.
  const ServeReport sla = server.predict();
  std::printf("predicted: %s\n\n", sla.to_string().c_str());

  // 4. Enqueue a handful of prompts — more than max_batch, so the engine
  //    continuously re-fills freed KV slots from the queue.
  Rng rng(7);
  for (int r = 0; r < 6; ++r) {
    const int64_t plen = 5 + 2 * r;
    Tensor prompt({1, plen});
    for (int64_t i = 0; i < plen; ++i) {
      prompt[i] = static_cast<float>(rng.index(model.vocab));
    }
    server.enqueue(prompt);
  }

  // 5. Serve. Completions come back in enqueue order; each sequence's
  //    tokens are in generation order.
  const auto done = server.run();
  for (const Completion& c : done) {
    std::printf("request %lld (%2lld prompt tokens):",
                static_cast<long long>(c.id),
                static_cast<long long>(c.prompt_tokens));
    for (int64_t t : c.tokens) std::printf(" %lld", static_cast<long long>(t));
    std::printf("\n");
  }

  // 6. The measured serving report — same vocabulary as the prediction.
  const ServeReport rep = server.report();
  std::printf("\nmeasured:  %s\n", rep.to_string().c_str());
  std::printf("           %d prefill + %d decode passes, peak KV %.1f KiB\n",
              rep.prefill_passes, rep.decode_passes,
              static_cast<double>(rep.peak_kv_bytes) / 1024.0);

  // 7. Cross-check: the sequential reference recomputes every prefix from
  //    scratch and must decode exactly the same tokens.
  auto reference = InferenceSession::builder()
                       .model(model)
                       .algo(Algo::Hanayo)
                       .pipeline(2)
                       .waves(2)
                       .backend(BackendKind::Reference)
                       .max_batch(3)
                       .max_new_tokens(12)
                       .seed(42)
                       .build();
  Rng rng2(7);
  for (int r = 0; r < 6; ++r) {
    const int64_t plen = 5 + 2 * r;
    Tensor prompt({1, plen});
    for (int64_t i = 0; i < plen; ++i) {
      prompt[i] = static_cast<float>(rng2.index(model.vocab));
    }
    reference.enqueue(prompt);
  }
  const auto ref_done = reference.run();
  bool identical = ref_done.size() == done.size();
  for (size_t i = 0; identical && i < done.size(); ++i) {
    identical = done[i].tokens == ref_done[i].tokens;
  }
  std::printf("\npipeline tokens %s the sequential reference's.\n",
              identical ? "exactly match" : "DIVERGE FROM");

  // 8. Production knobs: seeded top-k sampling (every request gets its own
  //    RNG stream split from seed + request id, so the decode is
  //    reproducible), a stop token that ends sequences early, and dp=2
  //    pipeline replicas pulling from one shared request queue.
  auto farm = InferenceSession::builder()
                  .model(model)
                  .algo(Algo::Hanayo)
                  .pipeline(2)
                  .waves(1)
                  .backend(BackendKind::Threads)
                  .max_batch(2)
                  .max_new_tokens(12)
                  .sampling(Sampling::TopK(8, 0.8f))
                  .eos(7)  // token id 7 ends a sequence
                  .data_parallel(2)
                  .seed(42)
                  .build();
  Rng rng3(11);
  for (int r = 0; r < 6; ++r) {
    Tensor prompt({1, 6});
    for (int64_t i = 0; i < 6; ++i) {
      prompt[i] = static_cast<float>(rng3.index(model.vocab));
    }
    farm.enqueue(prompt);
  }
  const auto sampled = farm.run();
  std::printf("\ntop-k sampled on dp=2 replicas (stop token 7):\n");
  for (const Completion& c : sampled) {
    std::printf("request %lld [%s]:", static_cast<long long>(c.id),
                c.stop_reason == StopReason::StopToken ? "stop" : "cap");
    for (int64_t t : c.tokens) std::printf(" %lld", static_cast<long long>(t));
    std::printf("\n");
  }
  const ServeReport frep = farm.report();
  std::printf("measured:  %s\n", frep.to_string().c_str());
  std::printf("predicted: %s\n", farm.predict().to_string().c_str());

  // 9. Streaming completions: pass an on_token callback with the enqueue
  //    and every selected token is delivered at the pass boundary that
  //    produced it — token-at-a-time, before the batch finishes.
  auto streamer = InferenceSession::builder()
                      .model(model)
                      .algo(Algo::Hanayo)
                      .pipeline(2)
                      .waves(1)
                      .backend(BackendKind::Threads)
                      .max_batch(2)
                      .max_new_tokens(8)
                      .eos(7)
                      .seed(42)
                      .build();
  Rng rng4(3);
  std::printf("\nstreaming (token-at-a-time):\n");
  for (int r = 0; r < 2; ++r) {
    Tensor prompt({1, 6});
    for (int64_t i = 0; i < 6; ++i) {
      prompt[i] = static_cast<float>(rng4.index(model.vocab));
    }
    streamer.enqueue(prompt, 0, [](const TokenEvent& e) {
      std::printf("  req %lld token[%d] = %lld%s\n",
                  static_cast<long long>(e.request_id), e.index,
                  static_cast<long long>(e.token), e.last ? "  (done)" : "");
    });
  }
  (void)streamer.run();

  // 10. Self-configuration: the decode-aware planner searches
  //     (algo, P, W, max_batch, dp) against a cluster and an SLA target;
  //     auto_plan adopts the winner, and predict() then reproduces the
  //     winning row's numbers bit-for-bit.
  ServeTarget target;
  target.total_devices = 4;
  target.prompt_tokens = 10;
  target.max_new_tokens = 8;
  const auto rows = plan_serving(Cluster::uniform(4, 1e12, 1e9, 1e11, 1e-6),
                                 model, target);
  std::printf("\nserving planner (%zu candidates), top rows:\n", rows.size());
  for (size_t i = 0; i < rows.size() && i < 3; ++i) {
    std::printf("  %s\n", rows[i].to_string().c_str());
  }
  auto planned = InferenceSession::builder()
                     .model(model)
                     .backend(BackendKind::Sim)
                     .cluster(Cluster::uniform(4, 1e12, 1e9, 1e11, 1e-6))
                     .auto_plan(target)
                     .build();
  std::printf("auto_plan adopted: %s P=%d W=%d batch=%d dp=%d\n",
              schedule::algo_name(planned.config().sched.algo).c_str(),
              planned.config().sched.P, planned.config().sched.waves,
              planned.config().max_batch, planned.config().dp);
  std::printf("predict(): %s\n", planned.predict().to_string().c_str());
  return identical ? 0 : 1;
}
