// Schedule gallery: renders the paper's Fig. 3 timelines as ASCII charts —
// GPipe, DAPPLE, Chimera, Hanayo with 1 and 2 waves — each one a Session on
// the Sim backend with normalised per-stage costs, and writes a
// Chrome-trace JSON for the last one.
//
//   $ ./examples/schedule_gallery
//
// Digits are forward slots (value = micro-batch), letters are backward
// slots (2x wide, 'a' = micro-batch 0), '.' is idle.

#include <cstdio>
#include <fstream>

#include "core/hanayo.hpp"
#include "sim/trace.hpp"

using namespace hanayo;

namespace {

sim::SimResult render(const char* title, Algo algo, int P, int B, int W) {
  // Stage count for this scheme, taken from the schedule request.
  schedule::ScheduleRequest req;
  req.algo = algo;
  req.P = P;
  req.B = B;
  req.waves = W;
  const int S = schedule::stages_for(req);

  // Uniform per-stage costs scaled so one *pipeline-equivalent* stage
  // (a P-th of the model) costs 1.0 forward: schemes with more, smaller
  // stages draw narrower boxes, exactly like the paper's figure.
  const double tf = static_cast<double>(P) / S;
  sim::PipelineCosts costs;
  costs.fwd_s.assign(static_cast<size_t>(S), tf);
  costs.bwd_s.assign(static_cast<size_t>(S), 2.0 * tf);
  costs.boundary_bytes.assign(static_cast<size_t>(S - 1), 0.0);
  costs.weight_bytes.assign(static_cast<size_t>(S), 0.0);
  costs.act_bytes.assign(static_cast<size_t>(S), 1.0);

  Session session = Session::builder()
                        .algo(algo)
                        .pipeline(P)
                        .micro_batches(B)
                        .waves(W)
                        .cluster(Cluster::uniform(P, 1.0, 1e18, 1e18, 0.0))
                        .sim_costs(costs)
                        .record_timeline()
                        .backend(BackendKind::Sim)
                        .build();
  Batch none;  // nothing executes on the Sim backend
  const RunReport rep = session.run(none, 1);
  const sim::SimResult& res = *rep.sim;
  std::printf("\n%s   (bubble ratio %.1f%%)\n", title, 100.0 * res.bubble_ratio);
  std::printf("%s", sim::ascii_timeline(res, P, tf).c_str());
  return res;
}

}  // namespace

int main() {
  std::printf("Pipeline schedule gallery (paper Fig. 3).\n");
  render("(a) GPipe, P=4, B=4", Algo::GPipe, 4, 4, 1);
  render("(b) DAPPLE (1F1B), P=4, B=4", Algo::Dapple, 4, 4, 1);
  render("(c) Chimera, P=4, B=4 (two directions)", Algo::Chimera, 4, 4, 1);
  render("(d) Hanayo, one wave, P=4, B=4", Algo::Hanayo, 4, 4, 1);
  render("(e) Hanayo, two waves, P=4, B=4", Algo::Hanayo, 4, 4, 2);
  const auto res = render("(f) Hanayo, two waves, P=8, B=8 (Fig. 6a)", Algo::Hanayo, 8, 8, 2);

  const char* path = "hanayo_w2_p8.trace.json";
  std::ofstream out(path);
  out << sim::chrome_trace_json(res);
  std::printf("\nwrote %s — open in chrome://tracing or ui.perfetto.dev\n", path);
  return 0;
}
