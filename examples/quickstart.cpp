// Quickstart: train a small GPT-style model with Hanayo wave pipeline
// parallelism on 4 worker threads and verify against sequential training.
//
//   $ ./examples/quickstart
//
// Walks through the three core objects: ModelConfig, TrainerConfig, Trainer.

#include <cstdio>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  std::printf("Hanayo quickstart (library v%s)\n\n", version());

  // 1. Describe the model. `tiny` keeps this demo fast; swap in
  //    ModelConfig::gpt_paper() / bert_paper() for the paper's shapes.
  // 14 transformer blocks + embedding/norm/head = 17 partitionable layers,
  // enough for the 16 stages the wave path below needs.
  const ModelConfig model = ModelConfig::tiny(/*layers=*/14, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/211,
                                              /*seq=*/16);
  std::printf("model: %lld layers, hidden %lld, %lld params\n",
              static_cast<long long>(model.layers),
              static_cast<long long>(model.hidden),
              static_cast<long long>(model.total_params()));

  // 2. Pick the parallelism. Hanayo with 2 waves on 4 workers partitions the
  //    network into 2*W*P = 16 stages along the wave path.
  TrainerConfig cfg;
  cfg.model = model;
  cfg.sched.algo = Algo::Hanayo;
  cfg.sched.P = 4;
  cfg.sched.B = 8;      // micro-batches per iteration
  cfg.sched.waves = 2;  // W
  cfg.lr = 0.05f;
  cfg.momentum = 0.9f;
  cfg.seed = 42;
  Trainer trainer(cfg);
  std::printf("schedule: %s, %d stages, %d actions on worker 0\n\n",
              schedule::algo_name(cfg.sched.algo).c_str(),
              trainer.schedule().placement.stages(),
              static_cast<int>(trainer.schedule().scripts[0].actions.size()));

  // 3. Train on synthetic data; a sequential engine cross-checks the math.
  SequentialEngine reference(model, cfg.sched.B, 1, cfg.seed, OptKind::Sgd,
                             cfg.lr, cfg.momentum);
  Rng rng(7);
  for (int step = 0; step < 10; ++step) {
    const Batch batch = synthetic_batch(model, trainer.batch_rows(), rng);
    const float pipeline_loss = trainer.train_step(batch);
    const float sequential_loss = reference.train_step(batch);
    std::printf("step %2d  pipeline loss %.4f   sequential loss %.4f   |diff| %.2e\n",
                step, pipeline_loss, sequential_loss,
                std::abs(pipeline_loss - sequential_loss));
  }

  std::printf("\nLoss decreased and matches sequential training: the wave\n"
              "schedule computes exactly the same gradients, just in parallel.\n");
  return 0;
}
