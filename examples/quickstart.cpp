// Quickstart: train a small GPT-style model with Hanayo wave pipeline
// parallelism on 4 worker threads and verify against sequential training.
//
//   $ ./examples/quickstart
//
// Walks through the core objects: ModelConfig, Session, StepReport. The
// same builder drives every execution engine — swap the .backend() call to
// run the sequential reference or the discrete-event simulator instead.

#include <cstdio>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  std::printf("Hanayo quickstart (library v%s)\n\n", version());

  // 1. Describe the model. `tiny` keeps this demo fast; swap in
  //    ModelConfig::gpt_paper() / bert_paper() for the paper's shapes.
  // 14 transformer blocks + embedding/norm/head = 17 partitionable layers,
  // enough for the 16 stages the wave path below needs.
  const ModelConfig model = ModelConfig::tiny(/*layers=*/14, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/211,
                                              /*seq=*/16);
  std::printf("model: %lld layers, hidden %lld, %lld params\n",
              static_cast<long long>(model.layers),
              static_cast<long long>(model.hidden),
              static_cast<long long>(model.total_params()));

  // 2. Pick the parallelism and the engine. Hanayo with 2 waves on 4
  //    workers partitions the network into 2*W*P = 16 stages.
  auto configured = Session::builder()
                        .model(model)
                        .algo(Algo::Hanayo)
                        .pipeline(4)
                        .micro_batches(8)
                        .waves(2)
                        .learning_rate(0.05f)
                        .momentum(0.9f)
                        .seed(42);
  Session session = configured.backend(BackendKind::Threads).build();
  // schedule() is nullptr on engines that execute none (Reference, an
  // infeasible Sim dry run); the Threads engine always compiles one.
  const Schedule* sched = session.schedule();
  std::printf("schedule: %s, %d stages, %d actions on worker 0\n\n",
              schedule::algo_name(session.config().sched.algo).c_str(),
              sched->placement.stages(),
              static_cast<int>(sched->scripts[0].actions.size()));

  // 3. Train on synthetic data; the Reference backend — same builder,
  //    different engine — cross-checks the math.
  Session reference = configured.backend(BackendKind::Reference).build();
  Rng rng(7);
  for (int step = 0; step < 10; ++step) {
    const Batch batch = synthetic_batch(model, session.batch_rows(), rng);
    const StepReport pipeline = session.step(batch);
    const StepReport sequential = reference.step(batch);
    std::printf("step %2d  pipeline loss %.4f   sequential loss %.4f   |diff| %.2e\n",
                step, pipeline.loss, sequential.loss,
                std::abs(pipeline.loss - sequential.loss));
  }

  // 4. One structured report for the whole run, rendered exactly like a
  //    planner row (same formatter).
  std::printf("\nrun report: %s\n", session.report().to_string().c_str());
  std::printf("\nLoss decreased and matches sequential training: the wave\n"
              "schedule computes exactly the same gradients, just in parallel.\n");
  return 0;
}
