// Custom schedules: the paper's runtime is decoupled from the scheduling
// algorithm — "we also offer interfaces for users to modify existing
// schemes or develop their own" (§4.1). This example builds a non-standard
// placement (an asymmetric zigzag), compiles it with the unified generator,
// validates it, simulates it, and then trains the equivalent configuration
// through the Session front door.
//
//   $ ./examples/custom_schedule

#include <cstdio>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  const int P = 3, B = 6, W = 2;
  std::printf("Building a custom Hanayo variant: P=%d, W=%d, B=%d\n", P, W, B);

  // 1. Pick (or construct) a placement. Any stage->device map expressible as
  //    a Placement works; here we use the library zigzag on an *odd* device
  //    count, which neither Chimera nor GEMS supports.
  const Placement placement = Placement::zigzag(P, W);
  std::printf("placement: %d stages over %d devices, %d chunks each\n",
              placement.stages(), placement.devices(),
              placement.chunks_per_device());

  // 2. Compile with the unified generator, choosing the scheduling policy.
  schedule::GenOptions opt;
  opt.tf = 1.0;
  opt.tb = 2.0;          // the paper's T_B = 2 T_F assumption
  opt.all_forward_first = false;  // 1F1B-style eager backward
  const Schedule sched = schedule::generate(Algo::Hanayo, W, placement, B, opt);

  // 3. Prove it correct before running.
  const auto check = schedule::validate(sched);
  std::printf("validator: %s\n", check.ok ? "OK" : check.error.c_str());
  if (!check.ok) return 1;
  std::printf("%s\n", sched.to_string().c_str());

  // 4. The same action lists drive both the simulator...
  const ModelConfig model = ModelConfig::tiny(14, 32, 2, 101, 8);
  const Cluster cluster = Cluster::uniform(P, 1e12, 1e12, 1e10, 1e-6);
  const auto costs = sim::compute_costs(model, placement.stages(), 1, cluster);
  const auto res = simulate(sched, costs, cluster);
  std::printf("simulated: makespan %.3e s, bubble ratio %.1f%%\n", res.makespan,
              100.0 * res.bubble_ratio);

  // 5. ...and the real runtime, behind the Session front door. The builder
  //    compiles the same zigzag for (Hanayo, P=3, W=2).
  Session session = Session::builder()
                        .model(model)
                        .algo(Algo::Hanayo)
                        .pipeline(P)
                        .micro_batches(B)
                        .waves(W)
                        .learning_rate(0.05f)
                        .seed(5)
                        .build();
  Rng rng(1);
  const Batch batch = synthetic_batch(model, session.batch_rows(), rng);
  const RunReport rep = session.run(batch, 5);
  std::printf("trained 5 steps on %d worker threads, final loss %.4f\n", P,
              rep.final_loss());
  return 0;
}
