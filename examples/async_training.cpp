// Asynchronous pipeline training (paper §2.3, Fig. 4b).
//
// Trains the same tiny GPT twice on real worker threads: synchronously with
// the Hanayo wave schedule (flush + full-batch update per step) and
// asynchronously with the PipeDream schedule (no flush, per-micro-batch
// updates on stale weights, PipeDream-style weight stashing) — both through
// the same Session API, selected by the backend. Prints the loss
// trajectories side by side plus the async scheme's staleness/stash ledger
// — the trade the paper declines.
//
//   ./examples/async_training

#include <cstdio>

#include "core/hanayo.hpp"

using namespace hanayo;

int main() {
  const auto model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/24,
                                       /*heads=*/2, /*vocab=*/67, /*seq=*/8);
  const int P = 4, B = 8, steps = 15;

  Session sync = Session::builder()
                     .model(model)
                     .algo(Algo::Hanayo)
                     .pipeline(P)
                     .micro_batches(B)
                     .waves(1)
                     .learning_rate(0.4f)  // one update per step, full batch
                     .seed(3)
                     .backend(BackendKind::Threads)
                     .build();

  Session async = Session::builder()
                      .model(model)
                      .pipeline(P)
                      .micro_batches(B)
                      .learning_rate(0.05f)  // B updates/step, one mb each
                      .seed(3)
                      .weight_stashing(true)
                      .backend(BackendKind::Async)
                      .build();

  Rng rng(17);
  const Batch batch = synthetic_batch(model, sync.batch_rows(), rng);

  std::printf("training a %lld-layer GPT on %d workers, fixed batch of %d\n",
              static_cast<long long>(model.layers), P, B);
  std::printf("\n  %-6s %-14s %-14s\n", "step", "sync Hanayo", "async PipeDream");

  // The async engine consumes the whole span as one continuous micro-batch
  // stream (no flush between logical steps).
  const RunReport async_rep = async.run(batch, steps);
  for (int s = 0; s < steps; ++s) {
    const StepReport sync_step = sync.step(batch);
    std::printf("  %-6d %-14.4f %-14.4f\n", s, sync_step.loss,
                async_rep.steps[static_cast<size_t>(s)].loss);
  }

  std::printf("\nasync staleness ledger (the cost of removing the flush):\n");
  for (int d = 0; d < P; ++d) {
    std::printf("  device %d: %d weight version(s) stashed, peak %lld bytes\n",
                d, async_rep.memory.stash_entries[static_cast<size_t>(d)],
                static_cast<long long>(
                    async_rep.memory.stash_bytes[static_cast<size_t>(d)]));
  }
  std::printf(
      "\nBoth runs fit the batch; the async run pays stash memory and uses\n"
      "stale gradients, which is why Hanayo (and this library's default\n"
      "path) keeps the synchronous flush and attacks the bubble instead.\n");
  return 0;
}
