// Asynchronous pipeline training (paper §2.3, Fig. 4b).
//
// Trains the same tiny GPT twice on real worker threads: synchronously with
// the Hanayo wave schedule (flush + full-batch update per step) and
// asynchronously with the PipeDream schedule (no flush, per-micro-batch
// updates on stale weights, PipeDream-style weight stashing). Prints the
// loss trajectories side by side plus the async scheme's staleness/stash
// ledger — the trade the paper declines.
//
//   ./examples/async_training

#include <cstdio>

#include "core/hanayo.hpp"
#include "runtime/async_trainer.hpp"

using namespace hanayo;

int main() {
  const auto model = ModelConfig::tiny(/*layers=*/8, /*hidden=*/24,
                                       /*heads=*/2, /*vocab=*/67, /*seq=*/8);
  const int P = 4, B = 8, steps = 15;

  TrainerConfig sync_cfg;
  sync_cfg.model = model;
  sync_cfg.sched.algo = Algo::Hanayo;
  sync_cfg.sched.P = P;
  sync_cfg.sched.B = B;
  sync_cfg.sched.waves = 1;
  sync_cfg.lr = 0.4f;  // one update per step from the averaged batch gradient
  sync_cfg.seed = 3;
  Trainer sync_tr(sync_cfg);

  runtime::AsyncTrainerConfig async_cfg;
  async_cfg.model = model;
  async_cfg.P = P;
  async_cfg.micro_batches = B;
  async_cfg.lr = 0.05f;  // B updates per step, each from one micro-batch
  async_cfg.seed = 3;
  async_cfg.weight_stashing = true;
  runtime::AsyncTrainer async_tr(async_cfg);

  Rng rng(17);
  const Batch batch = synthetic_batch(model, sync_tr.batch_rows(), rng);

  std::printf("training a %lld-layer GPT on %d workers, fixed batch of %d\n",
              static_cast<long long>(model.layers), P, B);
  std::printf("\n  %-6s %-14s %-14s\n", "step", "sync Hanayo", "async PipeDream");

  const auto async_losses = async_tr.train(batch, steps);
  for (int s = 0; s < steps; ++s) {
    const float sl = sync_tr.train_step(batch);
    std::printf("  %-6d %-14.4f %-14.4f\n", s, sl,
                async_losses[static_cast<size_t>(s)]);
  }

  std::printf("\nasync staleness ledger (the cost of removing the flush):\n");
  const auto& st = async_tr.last_stats();
  for (int d = 0; d < P; ++d) {
    std::printf("  device %d: %d weight version(s) stashed, peak %lld bytes\n",
                d, st.stash_entries[static_cast<size_t>(d)],
                static_cast<long long>(st.stash_bytes[static_cast<size_t>(d)]));
  }
  std::printf(
      "\nBoth runs fit the batch; the async run pays stash memory and uses\n"
      "stale gradients, which is why Hanayo (and this library's default\n"
      "path) keeps the synchronous flush and attacks the bubble instead.\n");
  return 0;
}
