// Fine-tuning scenario (paper §5.5: "users seek to adjust the released
// public model weights to achieve better performance on downstream tasks"):
//
//   1. pre-train a small GPT on a broad synthetic distribution with
//      DAPPLE on 2 workers; save a checkpoint;
//   2. reload the checkpoint into a *different* Session configuration —
//      Hanayo on 4 workers (the strong-scaling move of Fig. 12) — and
//      fine-tune on a narrow distribution;
//   3. verify the warm start: the fine-tune loss starts far below a
//      cold-started model's.
//
//   $ ./examples/finetune

#include <cstdio>
#include <filesystem>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

// A "downstream task": sequences drawn from a narrow slice of the vocab.
Batch task_batch(const ModelConfig& model, int64_t sequences, Rng& rng) {
  Batch b = synthetic_batch(model, sequences, rng);
  for (auto& v : b.inputs.flat()) v = static_cast<float>(static_cast<int64_t>(v) % 16);
  for (int64_t r = 0; r < sequences; ++r) {
    for (int64_t t = 0; t < model.seq; ++t) {
      b.targets.at(r, t) = b.inputs.at(r, (t + 1) % model.seq);
    }
  }
  return b;
}

}  // namespace

int main() {
  const ModelConfig model = ModelConfig::tiny(/*layers=*/12, /*hidden=*/32,
                                              /*heads=*/2, /*vocab=*/211,
                                              /*seq=*/12);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "hanayo_finetune_demo.bin").string();

  // ---- Phase 1: pre-train, DAPPLE on 2 workers.
  std::printf("phase 1: pre-training with DAPPLE, P=2, B=8\n");
  {
    Session pre = Session::builder()
                      .model(model)
                      .algo(Algo::Dapple)
                      .pipeline(2)
                      .micro_batches(8)
                      .learning_rate(0.08f)
                      .momentum(0.9f)
                      .seed(1)
                      .build();
    Rng rng(100);
    for (int step = 0; step < 12; ++step) {
      const Batch b = synthetic_batch(model, pre.batch_rows(), rng);
      const StepReport r = pre.step(b);
      if (step % 4 == 0) std::printf("  step %2d  loss %.4f\n", step, r.loss);
    }
    pre.save_checkpoint(ckpt);
    std::printf("  saved %zu parameters to %s\n",
                model::checkpoint_names(ckpt).size(), ckpt.c_str());
  }

  // ---- Phase 2: fine-tune under a different parallel configuration.
  std::printf("\nphase 2: fine-tuning with Hanayo, P=4, B=8 (re-partitioned)\n");
  auto finetune_cfg = Session::builder()
                          .model(model)
                          .algo(Algo::Hanayo)
                          .pipeline(4)
                          .micro_batches(8)
                          .waves(1)
                          .learning_rate(0.04f)
                          .momentum(0.9f)
                          .seed(2);  // different init — overwritten by the ckpt
  Session warm = finetune_cfg.build();
  warm.load_checkpoint(ckpt);
  Session cold = finetune_cfg.build();  // same config, no warm start

  Rng task_rng(7);
  const Batch probe = task_batch(model, warm.batch_rows(), task_rng);
  float warm_loss = 0.0f, cold_loss = 0.0f;
  for (int step = 0; step < 8; ++step) {
    warm_loss = warm.step(probe).loss;
    cold_loss = cold.step(probe).loss;
    std::printf("  step %2d  warm %.4f   cold %.4f\n", step, warm_loss, cold_loss);
  }
  std::printf("\nwarm start finished %.1f%% lower than cold start — the\n"
              "name-addressed checkpoint restored cleanly across a different\n"
              "pipeline depth, wave count and stage partition.\n",
              100.0 * (1.0 - warm_loss / cold_loss));
  std::filesystem::remove(ckpt);
  return warm_loss < cold_loss ? 0 : 1;
}
