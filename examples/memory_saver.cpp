// Composing the orthogonal memory/volume techniques of the paper's related
// work (§6) with the wave pipeline: ZeRO-1 optimizer-state sharding,
// activation recomputation, and fp16 stage transfers — all on the real
// multi-threaded runtime, all combined with data parallelism, all toggled
// from the same Session builder.
//
// Prints, for each configuration, the training loss after a few steps (to
// show nothing broke), the peak activation-cache bytes per worker (what
// recomputation shrinks), and the optimizer-state bytes per worker (what
// ZeRO-1 shards).
//
//   ./examples/memory_saver

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

struct Variant {
  const char* name;
  bool zero1;
  bool recompute;
  bool fp16;
};

}  // namespace

int main() {
  const auto model = ModelConfig::tiny(/*layers=*/10, /*hidden=*/32,
                                       /*heads=*/2, /*vocab=*/101, /*seq=*/12);
  const Variant variants[] = {
      {"baseline", false, false, false},
      {"+ ZeRO-1", true, false, false},
      {"+ recompute", true, true, false},
      {"+ fp16 comm", true, true, true},
  };

  std::printf("P=2 pipeline x D=2 data parallel, AdamW, 5 steps each\n");
  std::printf("\n  %-14s %-10s %-18s %-18s\n", "variant", "loss",
              "peak act cache", "optimizer state");

  for (const Variant& v : variants) {
    Session session = Session::builder()
                          .model(model)
                          .algo(Algo::Hanayo)
                          .pipeline(2)
                          .micro_batches(4)
                          .waves(1)
                          .data_parallel(2)
                          .optimizer(OptKind::AdamW)
                          .learning_rate(1e-3f)
                          .seed(9)
                          .zero1(v.zero1)
                          .recompute(v.recompute)
                          .fp16_comm(v.fp16)
                          .build();

    Rng rng(21);
    float loss = 0.0f;
    for (int s = 0; s < 5; ++s) {
      const Batch batch = synthetic_batch(model, session.batch_rows(), rng);
      loss = session.step(batch).loss;
    }
    const MemoryReport mem = session.report().memory;
    const int64_t cache_max = *std::max_element(mem.peak_cache_bytes.begin(),
                                                mem.peak_cache_bytes.end());
    const int64_t opt_total =
        std::accumulate(mem.optimizer_state_bytes.begin(),
                        mem.optimizer_state_bytes.end(), int64_t{0});
    std::printf("  %-14s %-10.4f %10lld bytes   %10lld bytes\n", v.name, loss,
                static_cast<long long>(cache_max),
                static_cast<long long>(opt_total));
  }

  std::printf(
      "\nReading: ZeRO-1 halves the total optimizer state (sharded across\n"
      "D=2 replicas), recomputation collapses the activation cache to one\n"
      "stage input per in-flight micro-batch, and fp16 transfers halve the\n"
      "boundary traffic — all without changing what the model learns\n"
      "(the ZeRO-1 path is bit-identical; see tests/runtime/test_zero1.cpp).\n");
  return 0;
}
