// Cluster planner: given a model and a cluster, search the parallelism
// configuration space — (D, P), micro-batching, wave count, algorithm — and
// print the ranked plans (the paper's §5.3 / Fig. 10 procedure as a tool).
// The recommended configuration is then dry-run as a Session on the Sim
// backend: the exact session you would .backend(BackendKind::Threads) to
// train for real, validated and priced before any execution.
//
//   $ ./examples/cluster_planner [devices] [batch]

#include <cstdio>
#include <cstdlib>

#include "core/hanayo.hpp"

using namespace hanayo;

int main(int argc, char** argv) {
  const int devices = argc > 1 ? std::atoi(argv[1]) : 16;
  const int batch = argc > 2 ? std::atoi(argv[2]) : 16;

  ModelConfig model = ModelConfig::bert_paper();
  model.split_blocks = true;

  PlanRequest req;
  req.model = model;
  req.cluster = Cluster::tacc(devices);
  req.total_devices = devices;
  req.batch_sequences = batch;
  req.min_pipeline = 2;

  std::printf("Planning %s on %d TACC devices, batch %d sequences...\n\n",
              model.name.c_str(), devices, batch);
  const auto candidates = plan(req);

  std::printf("top 12 configurations:\n");
  int shown = 0;
  for (const auto& c : candidates) {
    if (!c.feasible) continue;
    std::printf("  %2d. %s\n", ++shown, c.to_string().c_str());
    if (shown == 12) break;
  }

  const auto b = perf::best(candidates);
  if (b) {
    std::printf("\nrecommended: %s\n", b->to_string().c_str());

    // Turn the winning row into a Session and dry-run it on the simulator —
    // same numbers as the planner (same cost model), but now as a session
    // you can point at the Threads backend unchanged.
    Session session = Session::builder()
                          .model(model)
                          .algo(b->algo)
                          .pipeline(b->P)
                          .micro_batches(b->B)
                          .waves(b->W)
                          .data_parallel(b->D)
                          .mb_sequences(b->mb_sequences)
                          .cluster(req.cluster)
                          .backend(BackendKind::Sim)
                          .build();
    Batch none;  // the Sim backend executes nothing
    const RunReport rep = session.run(none, 1);
    std::printf("dry-run:     %s\n", rep.to_string().c_str());
    std::printf("             predicted iteration time %.3f s\n",
                rep.steps[0].wall_s);
  } else {
    std::printf("\nno feasible configuration (all OOM)\n");
  }

  // Show how the recommendation shifts with the interconnect, the paper's
  // §5.2 observation.
  std::printf("\nbest plan per cluster type (8 devices, batch 8):\n");
  for (const auto& [name, cluster] :
       std::vector<std::pair<const char*, Cluster>>{{"FC  ", Cluster::fc()},
                                                    {"PC  ", Cluster::pc()},
                                                    {"TC  ", Cluster::tc()},
                                                    {"TACC", Cluster::tacc(8)}}) {
    PlanRequest r2 = req;
    r2.cluster = cluster;
    r2.total_devices = 8;
    r2.batch_sequences = 8;
    const auto b2 = perf::best(plan(r2));
    if (b2) std::printf("  %s -> %s\n", name, b2->to_string().c_str());
  }
  return 0;
}
