// The paper's headline quantitative claims, pinned as regression tests on
// the simulator. The benches print the full tables; these assertions are
// the invariants a reviewer would check — who wins, in which regime, and
// with what scaling behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {

/// Simulated end-to-end throughput of one configuration (the Fig. 9-12
/// machinery): BERT-paper model with operator-granularity stages so every
/// wave count in the sweep is partitionable.
perf::Candidate eval(const Cluster& cluster, Algo algo, int D, int P, int W,
                     int B) {
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  return perf::evaluate(bert, cluster, algo, D, P, W, B, 1);
}

double best_hanayo(const Cluster& cluster, int D, int P, int B,
                   int* best_w = nullptr) {
  double best = 0.0;
  for (int W : {2, 4, 8}) {
    const auto c = eval(cluster, Algo::Hanayo, D, P, W, B);
    if (c.feasible && !c.oom && c.throughput_seq_s > best) {
      best = c.throughput_seq_s;
      if (best_w != nullptr) *best_w = W;
    }
  }
  return best;
}

}  // namespace

TEST(PaperClaims, Fig9HanayoBeatsChimeraWaveOnEveryCluster) {
  // §5.2: "Hanayo consistently outperforms Chimera by 15.7%...28.0%" on the
  // four clusters at (D=1, P=8). We assert the win on every cluster and a
  // material margin (> 5%).
  const Cluster clusters[] = {Cluster::pc(), Cluster::fc(), Cluster::tacc(8),
                              Cluster::tc()};
  for (const Cluster& cl : clusters) {
    const double chimera =
        eval(cl, Algo::ChimeraWave, 1, 8, 1, 8).throughput_seq_s;
    const double hanayo = best_hanayo(cl, 1, 8, 8);
    EXPECT_GT(hanayo, 1.05 * chimera) << cl.name;
  }
}

TEST(PaperClaims, Fig9GPipeAndDappleAreComparable) {
  // §5.2: "GPipe and DAPPLE maintain similar throughput across the
  // experiments" (their schedules differ in memory, not total idle).
  for (const Cluster& cl : {Cluster::fc(), Cluster::tacc(8)}) {
    const double g = eval(cl, Algo::GPipe, 1, 8, 1, 8).throughput_seq_s;
    const double d = eval(cl, Algo::Dapple, 1, 8, 1, 8).throughput_seq_s;
    EXPECT_NEAR(g, d, 0.05 * d) << cl.name;
  }
}

TEST(PaperClaims, OptimalWaveCountDropsOnPoorInterconnect) {
  // §5.2: "For clusters with poor interconnection, such as TACC, the
  // optimal wave number will be lower since the extra communication incurs
  // a higher cost."
  int w_fc = 0, w_tacc = 0;
  best_hanayo(Cluster::fc(), 1, 8, 8, &w_fc);
  best_hanayo(Cluster::tacc(8), 1, 8, 8, &w_tacc);
  EXPECT_LE(w_tacc, w_fc);
  EXPECT_GT(w_fc, 2);  // good links sustain deep waves
}

namespace {

/// Planner-chosen best Hanayo throughput, as the Fig. 11/12 benches do it.
double planned_hanayo(int devices, int batch) {
  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  perf::PlanRequest req;
  req.model = bert;
  req.cluster = Cluster::tacc(devices);
  req.total_devices = devices;
  req.batch_sequences = batch;
  req.algos = {Algo::Hanayo};
  req.wave_options = {1, 2, 4, 8};
  req.min_pipeline = 4;
  const auto b = perf::best(perf::plan(req));
  return b ? b->throughput_seq_s : 0.0;
}

}  // namespace

TEST(PaperClaims, Fig11WeakScalingEfficiencyStaysHigh) {
  // §5.4: the paper measures 99.8-100.1% parallel efficiency scaling
  // 8 -> 32 devices with the batch. Our simulator charges the
  // non-overlapped DP gradient allreduce over TACC's inter-node links
  // (which the paper's >100% GPU-batching measurement masks), so the
  // simulated efficiency sits lower — assert it stays above 65% and that
  // throughput still grows superlinearly in absolute terms.
  const double t8 = planned_hanayo(8, 8);
  const double t16 = planned_hanayo(16, 16);
  const double t32 = planned_hanayo(32, 32);
  ASSERT_GT(t8, 0.0);
  EXPECT_GT(t16 / (2.0 * t8), 0.65);
  EXPECT_GT(t32 / (4.0 * t8), 0.65);
  EXPECT_LT(t32 / (4.0 * t8), 1.1);
  EXPECT_GT(t16, t8);
  EXPECT_GT(t32, t16);
}

TEST(PaperClaims, Fig12StrongScalingIsMonotonic) {
  // §5.5: a fixed batch accelerates with more devices (paper: 1.88x at 16,
  // 3.38x at 32; we measure ~1.7x / ~2.3x — the gap is the same
  // non-overlapped allreduce as in weak scaling). Assert monotonic growth
  // with material floors, and that Hanayo never loses to the paper's
  // comparator (Chimera-wave) at any scale.
  const int batch = 32;
  const double t8 = planned_hanayo(8, batch);
  const double t16 = planned_hanayo(16, batch);
  const double t32 = planned_hanayo(32, batch);
  ASSERT_GT(t8, 0.0);
  EXPECT_GT(t16, 1.5 * t8);
  EXPECT_GT(t32, 2.0 * t8);
  EXPECT_GT(t32, t16);

  ModelConfig bert = ModelConfig::bert_paper();
  bert.split_blocks = true;
  for (int devices : {8, 16, 32}) {
    perf::PlanRequest req;
    req.model = bert;
    req.cluster = Cluster::tacc(devices);
    req.total_devices = devices;
    req.batch_sequences = batch;
    req.algos = {Algo::ChimeraWave};
    req.min_pipeline = 4;
    const auto cw = perf::best(perf::plan(req));
    ASSERT_TRUE(cw.has_value());
    const double hanayo = planned_hanayo(devices, batch);
    EXPECT_GE(hanayo, cw->throughput_seq_s) << devices << " devices";
  }
}

TEST(PaperClaims, Fig8DappleHasTheMostUnbalancedMemory) {
  // §5.1: DAPPLE's variance (16.85) dwarfs Chimera's (2.86) and Hanayo's
  // (1.44). Compare per-device peak-memory variance on the TACC-32 setup.
  ModelConfig bert = ModelConfig::bert_paper();
  const auto var_of = [&](Algo algo, int W) {
    schedule::ScheduleRequest req;
    req.algo = algo;
    req.P = 8;
    req.B = 8;
    req.waves = W;
    const auto costs = sim::compute_costs(bert, schedule::stages_for(req), 1,
                                          Cluster::tacc(8));
    const auto res =
        simulate(schedule::make_schedule(req), costs, Cluster::tacc(8));
    double mean = 0.0;
    for (double m : res.peak_mem_bytes) mean += m / 1e9;
    mean /= static_cast<double>(res.peak_mem_bytes.size());
    double var = 0.0;
    for (double m : res.peak_mem_bytes) {
      var += (m / 1e9 - mean) * (m / 1e9 - mean);
    }
    return var / static_cast<double>(res.peak_mem_bytes.size());
  };
  const double v_dapple = var_of(Algo::Dapple, 1);
  const double v_hanayo = var_of(Algo::Hanayo, 2);
  EXPECT_GT(v_dapple, 2.0 * v_hanayo);
}

TEST(PaperClaims, Eq1TracksSimulatedBubbleRatio) {
  // §3.4: the closed form and the event simulation must agree on level
  // (within 10 points at T_C = 0 — Eq. 1 is the paper's approximation, not
  // an exact count) and, more importantly, on the trend: both strictly
  // decrease with the wave count.
  for (int P : {4, 8}) {
    double prev_sim = 1.0, prev_eq = 1.0;
    for (int W : {1, 2, 4}) {
      schedule::ScheduleRequest req;
      req.algo = Algo::Hanayo;
      req.P = P;
      req.B = P;
      req.waves = W;
      const int S = schedule::stages_for(req);
      sim::PipelineCosts c;
      c.fwd_s.assign(static_cast<size_t>(S), 1.0 / S);
      c.bwd_s.assign(static_cast<size_t>(S), 2.0 / S);
      c.boundary_bytes.assign(static_cast<size_t>(S - 1), 0.0);
      c.weight_bytes.assign(static_cast<size_t>(S), 0.0);
      c.act_bytes.assign(static_cast<size_t>(S), 0.0);
      const auto res = simulate(schedule::make_schedule(req), c,
                                Cluster::uniform(P, 1.0, 1e18, 1e18, 0.0));
      const double eq = perf::bubble_ratio_hanayo_simplified(P, W);
      EXPECT_NEAR(res.bubble_ratio, eq, 0.10) << "P=" << P << " W=" << W;
      EXPECT_LT(res.bubble_ratio, prev_sim) << "P=" << P << " W=" << W;
      EXPECT_LT(eq, prev_eq);
      prev_sim = res.bubble_ratio;
      prev_eq = eq;
    }
  }
}

TEST(PaperClaims, MoreWavesMoreThroughputOnFastLinks) {
  // §3.3 "It can achieve increasingly higher throughput as the number of
  // waves increases" — on the fully-connected NVLink cluster.
  const Cluster fc = Cluster::fc();
  const double h2 = eval(fc, Algo::Hanayo, 1, 8, 2, 8).throughput_seq_s;
  const double h4 = eval(fc, Algo::Hanayo, 1, 8, 4, 8).throughput_seq_s;
  EXPECT_GT(h4, h2);
}
