// End-to-end integration: all schedules training the same model on the same
// data must agree with each other, converge, and keep replicas consistent.

#include <gtest/gtest.h>

#include "core/hanayo.hpp"

using namespace hanayo;

namespace {
const ModelConfig kModel = ModelConfig::tiny(/*layers=*/14, /*hidden=*/16,
                                             /*heads=*/2, /*vocab=*/53,
                                             /*seq=*/6);

float train_n_steps(Algo algo, int P, int B, int W, int steps,
                    uint64_t data_seed) {
  TrainerConfig cfg;
  cfg.model = kModel;
  cfg.sched.algo = algo;
  cfg.sched.P = P;
  cfg.sched.B = B;
  cfg.sched.waves = W;
  cfg.sched.vchunks = W;
  cfg.lr = 0.05f;
  cfg.momentum = 0.9f;
  cfg.seed = 1001;
  Trainer t(cfg);
  Rng rng(data_seed);
  float loss = 0.0f;
  for (int i = 0; i < steps; ++i) {
    const Batch b = synthetic_batch(kModel, t.batch_rows(), rng);
    loss = t.train_step(b);
  }
  return loss;
}
}  // namespace

TEST(EndToEnd, AllSchedulesReachTheSameLoss) {
  // Same model seed, same data stream, same optimizer: the final loss after
  // 4 steps must agree across every schedule (they compute the same math).
  const float ref = train_n_steps(Algo::GPipe, 2, 4, 1, 4, 7);
  for (auto algo : {Algo::Dapple, Algo::ChimeraWave, Algo::Hanayo}) {
    const float l = train_n_steps(algo, 2, 4, 1, 4, 7);
    EXPECT_NEAR(l, ref, 2e-3f) << schedule::algo_name(algo);
  }
  EXPECT_NEAR(train_n_steps(Algo::Chimera, 2, 4, 1, 4, 7), ref, 2e-3f);
  EXPECT_NEAR(train_n_steps(Algo::Hanayo, 2, 4, 2, 4, 7), ref, 2e-3f);
}

TEST(EndToEnd, WaveCountDoesNotChangeTheMath) {
  const float w1 = train_n_steps(Algo::Hanayo, 2, 6, 1, 3, 11);
  const float w2 = train_n_steps(Algo::Hanayo, 2, 6, 2, 3, 11);
  const float w3 = train_n_steps(Algo::Hanayo, 2, 6, 3, 3, 11);
  EXPECT_NEAR(w1, w2, 2e-3f);
  EXPECT_NEAR(w2, w3, 2e-3f);
}

TEST(EndToEnd, PipelineDepthDoesNotChangeTheMath) {
  const float p2 = train_n_steps(Algo::Hanayo, 2, 6, 2, 3, 13);
  const float p3 = train_n_steps(Algo::Hanayo, 3, 6, 2, 3, 13);
  EXPECT_NEAR(p2, p3, 2e-3f);
}

TEST(EndToEnd, OverfitsAFixedBatch) {
  TrainerConfig cfg;
  cfg.model = kModel;
  cfg.sched.algo = Algo::Hanayo;
  cfg.sched.P = 4;
  cfg.sched.B = 8;
  cfg.sched.waves = 1;
  // lr 0.05 + momentum 0.9 drives this fixed batch to ~0.02 loss in 100
  // steps; 0.1 oscillates around ~2.4 (measured).
  cfg.lr = 0.05f;
  cfg.momentum = 0.9f;
  cfg.seed = 2;
  Trainer t(cfg);
  Rng rng(3);
  const Batch batch = synthetic_batch(kModel, t.batch_rows(), rng);
  float first = t.train_step(batch), last = first;
  for (int i = 0; i < 100; ++i) last = t.train_step(batch);
  EXPECT_LT(last, 0.5f * first);
}

TEST(EndToEnd, SequentialEvalMatchesTrainLoss) {
  SequentialEngine eng(kModel, 4, 1, 5, OptKind::Sgd, 0.0f);  // lr 0: no update
  Rng rng(9);
  const Batch batch = synthetic_batch(kModel, 4, rng);
  const float train_loss = eng.train_step(batch) / 1.0f;
  const float eval_loss = eng.eval(batch);
  // train_step returns sum of per-mb losses scaled by 1/B; eval returns the
  // mean. With lr=0 the model is unchanged, so they coincide.
  EXPECT_NEAR(train_loss, eval_loss, 1e-5f);
}

TEST(EndToEnd, DataParallelMatchesDoubleBatchPipeline) {
  // D=2 with B micro-batches per replica must equal D=1 with 2B
  // micro-batches: both average gradients over 2B micro-batches.
  TrainerConfig dp;
  dp.model = kModel;
  dp.sched.algo = Algo::Dapple;
  dp.sched.P = 2;
  dp.sched.B = 3;
  dp.dp = 2;
  dp.lr = 0.05f;
  dp.seed = 31;
  Trainer tdp(dp);

  TrainerConfig big;
  big.model = kModel;
  big.sched.algo = Algo::Dapple;
  big.sched.P = 2;
  big.sched.B = 6;
  big.dp = 1;
  big.lr = 0.05f;
  big.seed = 31;
  Trainer tbig(big);

  ASSERT_EQ(tdp.batch_rows(), tbig.batch_rows());
  Rng rng(17);
  const Batch batch = synthetic_batch(kModel, tdp.batch_rows(), rng);
  const float l1 = tdp.train_step(batch);
  const float l2 = tbig.train_step(batch);
  EXPECT_NEAR(l1, l2, 1e-4f);

  auto s1 = tdp.snapshot_params();
  auto s2 = tbig.snapshot_params();
  for (const auto& [name, v] : s1) {
    EXPECT_LE(tensor::max_abs_diff(v, s2.at(name)), 2e-4f) << name;
  }
}

TEST(EndToEnd, CausalVsBidirectionalBothTrain) {
  for (bool causal : {true, false}) {
    ModelConfig m = ModelConfig::tiny(6, 16, 2, 53, 6, causal);
    TrainerConfig cfg;
    cfg.model = m;
    cfg.sched.algo = Algo::Hanayo;
    cfg.sched.P = 2;
    cfg.sched.B = 4;
    cfg.sched.waves = 1;
    cfg.lr = 0.1f;
    cfg.seed = 8;
    Trainer t(cfg);
    Rng rng(4);
    const Batch batch = synthetic_batch(m, t.batch_rows(), rng);
    float first = t.train_step(batch), last = first;
    for (int i = 0; i < 10; ++i) last = t.train_step(batch);
    EXPECT_LT(last, first) << "causal=" << causal;
  }
}

TEST(EndToEnd, SplitBlockGranularityTrainsAndMatches) {
  // Operator-granularity stages (split_blocks) must train identically to
  // block granularity given the same per-layer seeds are irrelevant here:
  // we only check convergence and pipeline==sequential agreement.
  ModelConfig m = kModel;
  m.split_blocks = true;
  TrainerConfig cfg;
  cfg.model = m;
  cfg.sched.algo = Algo::Hanayo;
  cfg.sched.P = 4;
  cfg.sched.B = 8;
  cfg.sched.waves = 2;  // 16 stages over 31 half-layers
  cfg.lr = 0.05f;
  cfg.seed = 19;
  Trainer t(cfg);
  SequentialEngine ref(m, 8, 1, 19, OptKind::Sgd, 0.05f);
  Rng rng(21);
  const Batch batch = synthetic_batch(m, t.batch_rows(), rng);
  EXPECT_NEAR(t.train_step(batch), ref.train_step(batch), 5e-4f);
}
