// Pass-lifetime arena invariants (tensor/arena.hpp).
//
// The serving hot path's zero-allocation claim rests on a handful of
// arena properties: aligned bump allocation, O(1) reset with slabs
// retained, geometric warm-up growth that stops once the working set is
// discovered, LIFO mark/rewind for nested kernel scratch, and a
// thread-local context that Tensor construction consults. Each is pinned
// here in isolation so a regression fails a unit test before it fails the
// end-to-end decode budget (tests/runtime/test_alloc_decode.cpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/scale.hpp"
#include "tensor/alloc_stats.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

using hanayo::tensor::AllocStats;
using hanayo::tensor::Arena;
using hanayo::tensor::ArenaPause;
using hanayo::tensor::ArenaScope;
using hanayo::tensor::ScratchBuffer;
using hanayo::tensor::Tensor;

TEST(Arena, AllocationsAreCacheLineAligned) {
  Arena a;
  for (int64_t n : {1, 3, 63, 64, 65, 1000, 4096}) {
    void* p = a.alloc(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlign, 0u)
        << "size " << n;
  }
}

TEST(Arena, ResetReusesTheSameStorage) {
  Arena a;
  void* first = a.alloc(512);
  a.reset();
  // Same request after reset lands on the same bump cursor.
  EXPECT_EQ(a.alloc(512), first);
}

TEST(Arena, WarmupGrowsThenSteadyStateIsZeroAlloc) {
  Arena a;  // no reserve: working set discovered during warm-up
  const auto pass = [&] {
    ArenaScope scope(a);
    for (int i = 0; i < 16; ++i) {
      Tensor t({8, 32});
      t.zero();
    }
  };
  for (int i = 0; i < 3; ++i) pass();  // warm-up
  const int64_t grown = a.grow_count();
  const AllocStats before = hanayo::tensor::alloc_stats();
  for (int i = 0; i < 8; ++i) pass();  // steady state
  const AllocStats d = hanayo::tensor::alloc_stats() - before;
  EXPECT_EQ(d.allocs, 0) << "steady-state passes must not touch the heap";
  EXPECT_EQ(a.grow_count(), grown) << "steady-state passes must not grow";
  EXPECT_GT(a.high_water(), 0);
}

TEST(Arena, PreSizedArenaNeverGrows) {
  Arena a(int64_t{1} << 20);  // 1 MiB reserve
  ArenaScope scope(a);
  for (int i = 0; i < 32; ++i) (void)a.alloc(4096);
  EXPECT_EQ(a.grow_count(), 0);
  EXPECT_GE(a.reserved(), int64_t{1} << 20);
}

TEST(Arena, MarkRewindIsLifo) {
  Arena a;
  (void)a.alloc(128);
  const Arena::Mark m = a.mark();
  void* inner = a.alloc(256);
  a.rewind(m);
  // Rewind frees the inner allocation: the next request reuses its bytes.
  EXPECT_EQ(a.alloc(256), inner);
}

#ifdef NDEBUG
TEST(Arena, FrozenArenaGrowsGracefullyInRelease) {
  // Release builds keep working past the freeze canary (the assert is
  // Debug-only); growth is still visible in grow_count for diagnostics.
  Arena a(1024);
  a.freeze();
  (void)a.alloc(a.reserved() + 1);  // cannot fit: must grow a new slab
  EXPECT_GE(a.grow_count(), 1);
}
#else
TEST(ArenaDeathTest, FrozenArenaAssertsOnGrowthInDebug) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Arena a(1024);
  a.freeze();
  EXPECT_DEATH((void)a.alloc(a.reserved() + 1), "frozen");
}
#endif

TEST(Arena, TensorsDrawFromTheActiveArenaOnly) {
  Arena a;
  const AllocStats before_scoped = [&] {
    ArenaScope scope(a);
    Tensor warm({4, 4});  // warm-up: the arena grabs its slab
    (void)warm;
    return hanayo::tensor::alloc_stats();
  }();
  {
    ArenaScope scope(a);
    Tensor t({4, 4});
    t.zero();
    const AllocStats d = hanayo::tensor::alloc_stats() - before_scoped;
    EXPECT_EQ(d.allocs, 0) << "scoped Tensor must bump the arena, not new";
    // A pause redirects construction back to the heap (long-lived state).
    ArenaPause pause;
    Tensor heap_backed({4, 4});
    heap_backed.zero();
    const AllocStats d2 = hanayo::tensor::alloc_stats() - before_scoped;
    EXPECT_GE(d2.allocs, 1) << "paused Tensor must come from the heap";
  }
}

TEST(Arena, ScratchBufferUsesArenaUnderScopeAndFallbackOutside) {
  std::vector<float> fallback;
  {  // no active arena: fallback vector grows once, then is reused
    ScratchBuffer s(256, fallback);
    ASSERT_NE(s.data(), nullptr);
    s.data()[0] = 1.0f;
    EXPECT_GE(fallback.size(), 256u);
  }
  Arena a;
  ArenaScope scope(a);
  const int64_t fallback_cap = static_cast<int64_t>(fallback.capacity());
  {
    ScratchBuffer s(int64_t{1} << 16, fallback);
    ASSERT_NE(s.data(), nullptr);
    s.data()[0] = 2.0f;
  }
  EXPECT_EQ(static_cast<int64_t>(fallback.capacity()), fallback_cap)
      << "arena path must not grow the fallback vector";
  EXPECT_GT(a.high_water(), 0) << "scratch must have come from the arena";
}

TEST(Arena, ConcurrentArenasAreIndependent) {
  // One arena per thread (the runtime's model: each worker owns its own);
  // storms of scoped passes must neither corrupt payloads nor leak heap
  // traffic after warm-up.
  const int threads = 4;
  const int passes = hanayo_test::scaled(200);
  std::vector<std::thread> pool;
  std::vector<int> failures(static_cast<size_t>(threads), 0);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([t, passes, &failures] {
      Arena a;
      for (int p = 0; p < passes; ++p) {
        ArenaScope scope(a);
        Tensor x({16, 16});
        for (int64_t i = 0; i < x.numel(); ++i) {
          x[i] = static_cast<float>(t * 1000 + p);
        }
        for (int64_t i = 0; i < x.numel(); ++i) {
          if (x[i] != static_cast<float>(t * 1000 + p)) {
            ++failures[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  for (int t = 0; t < threads; ++t) EXPECT_EQ(failures[static_cast<size_t>(t)], 0);
}
