// The blocked GEMM kernels against a naive reference: odd shapes that don't
// divide the register/cache blocks, degenerate extents, the accumulate
// forms, and the determinism contract — bit-identical results for 1 vs N
// intra-op threads.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

namespace {

ht::Tensor naive_matmul(const ht::Tensor& a, const ht::Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  ht::Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      c.at(i, j) = acc;
    }
  return c;
}

// Shapes chosen to exercise every edge of the blocking: smaller than one
// micro-tile, exact multiples, one-off remainders, m=1 / k=1 rows, and
// sizes spanning a KC boundary.
struct Mnk {
  int64_t m, n, k;
};
const Mnk kShapes[] = {
    {1, 1, 1},   {1, 17, 1},  {3, 5, 2},    {6, 16, 8},   {7, 17, 9},
    {12, 32, 16}, {13, 33, 31}, {1, 64, 300}, {64, 1, 300}, {37, 41, 259},
    {48, 48, 257},
};

constexpr float kRtol = 1e-4f;
constexpr float kAtol = 1e-5f;

}  // namespace

TEST(Kernels, MatmulIntoMatchesNaiveAcrossShapes) {
  ht::Rng rng(11);
  for (const auto& s : kShapes) {
    ht::Tensor a = rng.randn({s.m, s.k});
    ht::Tensor b = rng.randn({s.k, s.n});
    ht::Tensor out({s.m, s.n});
    ht::matmul_into(a, b, out);
    EXPECT_TRUE(ht::allclose(out, naive_matmul(a, b), kRtol, kAtol))
        << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Kernels, MatmulBtAndAtMatchNaiveAcrossShapes) {
  ht::Rng rng(12);
  for (const auto& s : kShapes) {
    ht::Tensor a = rng.randn({s.m, s.k});
    ht::Tensor b = rng.randn({s.k, s.n});
    const ht::Tensor ref = naive_matmul(a, b);
    ht::Tensor out({s.m, s.n});
    ht::matmul_bt_into(a, ht::transpose(b), out);
    EXPECT_TRUE(ht::allclose(out, ref, kRtol, kAtol))
        << "bt " << s.m << "x" << s.n << "x" << s.k;
    ht::matmul_at_into(ht::transpose(a), b, out);
    EXPECT_TRUE(ht::allclose(out, ref, kRtol, kAtol))
        << "at " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(Kernels, EmptyExtentsAreHandled) {
  // k = 0: the product is all zeros (and _into must overwrite stale data).
  ht::Tensor a({3, 0});
  ht::Tensor b({0, 4});
  ht::Tensor out({3, 4}, 7.0f);
  ht::matmul_into(a, b, out);
  for (float v : out.flat()) EXPECT_EQ(v, 0.0f);
  // m = 0 / n = 0: no output, no crash.
  ht::Tensor none({0, 4});
  ht::matmul_into(ht::Tensor({0, 2}), ht::Tensor({2, 4}), none);
  EXPECT_EQ(none.numel(), 0);
}

TEST(Kernels, AccumFormsAddOntoExistingOutput) {
  ht::Rng rng(13);
  ht::Tensor a = rng.randn({9, 23});
  ht::Tensor b = rng.randn({23, 14});
  const ht::Tensor prod = naive_matmul(a, b);

  ht::Tensor acc({9, 14}, 1.5f);
  ht::matmul_accum(a, b, acc);
  ht::Tensor expect = ht::add_scalar(prod, 1.5f);
  EXPECT_TRUE(ht::allclose(acc, expect, kRtol, kAtol));

  // bt/at accumulate forms agree with prod + prior contents too.
  ht::Tensor acc_bt({9, 14}, -0.25f);
  ht::matmul_bt_accum(a, ht::transpose(b), acc_bt);
  EXPECT_TRUE(ht::allclose(acc_bt, ht::add_scalar(prod, -0.25f), kRtol, kAtol));

  ht::Tensor acc_at({9, 14}, 2.0f);
  ht::matmul_at_accum(ht::transpose(a), b, acc_at);
  EXPECT_TRUE(ht::allclose(acc_at, ht::add_scalar(prod, 2.0f), kRtol, kAtol));
}

TEST(Kernels, RepeatedAccumEqualsScaledProduct) {
  ht::Rng rng(14);
  ht::Tensor a = rng.randn({6, 31});
  ht::Tensor b = rng.randn({31, 6});
  ht::Tensor grad({6, 6});
  for (int i = 0; i < 3; ++i) ht::matmul_accum(a, b, grad);
  ht::Tensor expect = ht::mul_scalar(naive_matmul(a, b), 3.0f);
  EXPECT_TRUE(ht::allclose(grad, expect, 3e-4f, 3e-5f));
}

TEST(Kernels, BitIdenticalAcrossIntraOpThreadCounts) {
  // The determinism contract behind the Threads==Reference session
  // equivalence: threads partition output rows only, so every element keeps
  // its ascending-k accumulation order. EXPECT_EQ, not allclose.
  ht::Rng rng(15);
  const Mnk shapes[] = {{64, 48, 96}, {61, 67, 73}, {257, 33, 300}};
  for (const auto& s : shapes) {
    ht::Tensor a = rng.randn({s.m, s.k});
    ht::Tensor b = rng.randn({s.k, s.n});
    ht::Tensor bt = ht::transpose(b);
    ht::Tensor at = ht::transpose(a);

    ht::Tensor r1({s.m, s.n}), r1bt({s.m, s.n}), r1at({s.m, s.n});
    {
      ht::IntraOpScope scope(1);
      ht::matmul_into(a, b, r1);
      ht::matmul_bt_into(a, bt, r1bt);
      ht::matmul_at_into(at, b, r1at);
    }
    for (int threads : {2, 4, 7}) {
      ht::IntraOpScope scope(threads);
      ht::Tensor rn({s.m, s.n}), rnbt({s.m, s.n}), rnat({s.m, s.n});
      ht::matmul_into(a, b, rn);
      ht::matmul_bt_into(a, bt, rnbt);
      ht::matmul_at_into(at, b, rnat);
      for (int64_t i = 0; i < rn.numel(); ++i) {
        ASSERT_EQ(r1[i], rn[i]) << "threads=" << threads << " i=" << i;
        ASSERT_EQ(r1bt[i], rnbt[i]) << "bt threads=" << threads << " i=" << i;
        ASSERT_EQ(r1at[i], rnat[i]) << "at threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(Kernels, PackToggleIsBitIdentical) {
  // A-panel packing is a pure layout transform: the micro-kernel streams
  // the same scalar values in the same ascending-k order from a contiguous
  // MR-strided copy, so toggling it must not change a single bit — across
  // thread counts too. Shapes straddle kPackMinK (packing engages on
  // large-k only) and include remainder rows/cols.
  ht::Rng rng(23);
  const Mnk shapes[] = {{7, 17, 9}, {48, 48, 64}, {61, 67, 300}, {1, 64, 257}};
  const bool saved = ht::kernels::gemm_pack_a();
  for (const auto& s : shapes) {
    ht::Tensor a = rng.randn({s.m, s.k});
    ht::Tensor b = rng.randn({s.k, s.n});
    ht::Tensor bt = ht::transpose(b);
    ht::Tensor at = ht::transpose(a);

    ht::Tensor packed({s.m, s.n}), pbt({s.m, s.n}), pat({s.m, s.n});
    ht::kernels::set_gemm_pack_a(true);
    ht::matmul_into(a, b, packed);
    ht::matmul_bt_into(a, bt, pbt);
    ht::matmul_at_into(at, b, pat);

    ht::Tensor plain({s.m, s.n}), ubt({s.m, s.n}), uat({s.m, s.n});
    ht::kernels::set_gemm_pack_a(false);
    ht::matmul_into(a, b, plain);
    ht::matmul_bt_into(a, bt, ubt);
    ht::matmul_at_into(at, b, uat);

    ht::kernels::set_gemm_pack_a(true);
    ht::Tensor pthr({s.m, s.n});
    {
      ht::IntraOpScope scope(4);
      ht::matmul_into(a, b, pthr);
    }

    for (int64_t i = 0; i < packed.numel(); ++i) {
      ASSERT_EQ(packed[i], plain[i]) << "m=" << s.m << " i=" << i;
      ASSERT_EQ(pbt[i], ubt[i]) << "bt m=" << s.m << " i=" << i;
      ASSERT_EQ(pat[i], uat[i]) << "at m=" << s.m << " i=" << i;
      ASSERT_EQ(packed[i], pthr[i]) << "threads m=" << s.m << " i=" << i;
    }
  }
  ht::kernels::set_gemm_pack_a(saved);
}

TEST(Kernels, RowWiseOpsBitIdenticalAcrossThreadCounts) {
  ht::Rng rng(16);
  ht::Tensor x = rng.randn({129, 65});
  ht::Tensor bias = rng.randn({65});

  ht::Tensor sm1, gl1, ab1, cs1;
  {
    ht::IntraOpScope scope(1);
    sm1 = ht::softmax_lastdim(x);
    gl1 = ht::gelu(x);
    ab1 = ht::add_bias(x, bias);
    cs1 = ht::col_sum(x);
  }
  {
    ht::IntraOpScope scope(5);
    const ht::Tensor smn = ht::softmax_lastdim(x);
    const ht::Tensor gln = ht::gelu(x);
    const ht::Tensor abn = ht::add_bias(x, bias);
    const ht::Tensor csn = ht::col_sum(x);
    for (int64_t i = 0; i < x.numel(); ++i) {
      ASSERT_EQ(sm1[i], smn[i]) << i;
      ASSERT_EQ(gl1[i], gln[i]) << i;
      ASSERT_EQ(ab1[i], abn[i]) << i;
    }
    for (int64_t j = 0; j < cs1.numel(); ++j) ASSERT_EQ(cs1[j], csn[j]) << j;
  }
}

TEST(Kernels, StridedPanelsMultiplyCorrectly) {
  // The attention path multiplies strided slices of a wider tensor; check
  // the raw-pointer entry points against the dense equivalents.
  ht::Rng rng(17);
  const int64_t t = 7, dk = 5, wide = 3 * dk;
  ht::Tensor panel = rng.randn({t, wide});  // rows hold [q | k | v]
  ht::Tensor q({t, dk}), k({t, dk});
  for (int64_t i = 0; i < t; ++i)
    for (int64_t d = 0; d < dk; ++d) {
      q.at(i, d) = panel.at(i, d);
      k.at(i, d) = panel.at(i, dk + d);
    }
  ht::Tensor dense({t, t});
  ht::matmul_bt_into(q, k, dense);

  ht::Tensor strided({t, t});
  ht::kernels::gemm_bt(t, t, dk, panel.data(), wide, panel.data() + dk, wide,
                       strided.data(), t, false);
  for (int64_t i = 0; i < dense.numel(); ++i) ASSERT_EQ(dense[i], strided[i]);
}

TEST(Kernels, TransposeIntoMatchesElementwise) {
  ht::Rng rng(18);
  ht::Tensor a = rng.randn({37, 53});
  ht::Tensor t({53, 37});
  ht::transpose_into(a, t);
  for (int64_t i = 0; i < 37; ++i)
    for (int64_t j = 0; j < 53; ++j) ASSERT_EQ(t.at(j, i), a.at(i, j));
}

TEST(Kernels, IntoFormsRejectBadOutputShapes) {
  ht::Tensor a({2, 3});
  ht::Tensor b({3, 4});
  ht::Tensor wrong({4, 2});
  EXPECT_THROW(ht::matmul_into(a, b, wrong), std::invalid_argument);
  EXPECT_THROW(ht::matmul_accum(a, b, wrong), std::invalid_argument);
  ht::Tensor bad_inner({4, 4});
  ht::Tensor out({2, 4});
  EXPECT_THROW(ht::matmul_into(a, bad_inner, out), std::invalid_argument);
}

TEST(Parallel, ParallelForCoversRangeExactlyOnce) {
  ht::IntraOpScope scope(4);
  std::vector<std::atomic<int>> hits(1001);
  ht::parallel_for(1001, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedParallelForRunsInline) {
  ht::IntraOpScope scope(4);
  std::atomic<int> total{0};
  ht::parallel_for(8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ht::parallel_for(16, 1,
                       [&](int64_t b2, int64_t e2) {
                         total += static_cast<int>(e2 - b2);
                       });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(Parallel, IntraOpScopeRestoresSetting) {
  ht::set_intra_op_threads(1);
  {
    ht::IntraOpScope scope(6);
    EXPECT_EQ(ht::intra_op_threads(), 6);
  }
  EXPECT_EQ(ht::intra_op_threads(), 1);
}
