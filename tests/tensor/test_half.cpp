// IEEE binary16 codec.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "tensor/half.hpp"

namespace ht = hanayo::tensor;

TEST(Half, ExactValuesRoundTrip) {
  // Everything with <= 11 significant bits and exponent in [-14, 15] is
  // representable exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, 0.25f, 1.5f, -3.75f,
                  2048.0f, -2048.0f, 65504.0f, 6.103515625e-05f}) {
    EXPECT_EQ(ht::half_to_float(ht::float_to_half(v)), v) << v;
  }
  // Integers up to 2^11 are exact.
  for (int i = 0; i <= 2048; i += 97) {
    const float v = static_cast<float>(i);
    EXPECT_EQ(ht::half_to_float(ht::float_to_half(v)), v) << i;
  }
}

TEST(Half, SignedZeroPreserved) {
  const uint16_t pz = ht::float_to_half(0.0f);
  const uint16_t nz = ht::float_to_half(-0.0f);
  EXPECT_EQ(pz, 0x0000);
  EXPECT_EQ(nz, 0x8000);
  EXPECT_TRUE(std::signbit(ht::half_to_float(nz)));
}

TEST(Half, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(inf)), inf);
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(-inf)), -inf);
  EXPECT_TRUE(std::isnan(ht::half_to_float(ht::float_to_half(NAN))));
}

TEST(Half, OverflowSaturatesToInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(1e6f)), inf);
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(-1e6f)), -inf);
  // 65504 is the largest finite fp16; 65520 is exactly halfway to the next
  // step and ties away (the 65504 mantissa is odd) -> infinity.
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(65504.0f)), 65504.0f);
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(65520.0f)), inf);
  // Just below halfway stays finite.
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(65519.0f)), 65504.0f);
}

TEST(Half, SubnormalsRoundTrip) {
  // 2^-24 is the smallest positive subnormal.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(tiny)), tiny);
  // Half of it underflows to zero (ties-to-even on the 0/1 boundary).
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(std::ldexp(1.0f, -25))), 0.0f);
  // A mid-range subnormal: 3 * 2^-24.
  const float sub = 3.0f * tiny;
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(sub)), sub);
  // Subnormal sign preserved.
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(-tiny)), -tiny);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1 and 1 + 2^-10; the tie goes to the
  // even mantissa (1.0).
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(1.0f + std::ldexp(1.0f, -11))), 1.0f);
  // 1 + 3*2^-11 sits between 1 + 2^-10 and 1 + 2^-9; tie to even picks
  // 1 + 2^-10 + 2^-10 = 1 + 2^-9 (mantissa 10 is even? mantissa bits:
  // candidates 0b01 (odd low bit) and 0b10 (even) -> picks 0b10).
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(1.0f + 3.0f * std::ldexp(1.0f, -11))),
            1.0f + std::ldexp(1.0f, -9));
  // Non-ties round to nearest.
  EXPECT_EQ(ht::half_to_float(ht::float_to_half(1.0003f)), 1.0f);
}

TEST(Half, RelativeErrorBoundedForNormals) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> mag(ht::kHalfMinNormal, 60000.0f);
  std::bernoulli_distribution sign(0.5);
  for (int i = 0; i < 5000; ++i) {
    const float v = (sign(rng) ? 1.0f : -1.0f) * mag(rng);
    const float rt = ht::half_to_float(ht::float_to_half(v));
    EXPECT_LE(std::abs(rt - v), ht::kHalfEps * std::abs(v)) << v;
  }
}

TEST(Half, TensorRoundTripQuantizes) {
  ht::Tensor t({4}, std::vector<float>{1.0f, 1.0003f, -2.5f, 70000.0f});
  const ht::Tensor q = ht::fp16_round_trip(t);
  EXPECT_EQ(q[0], 1.0f);
  EXPECT_EQ(q[1], 1.0f);  // rounded
  EXPECT_EQ(q[2], -2.5f);
  EXPECT_EQ(q[3], std::numeric_limits<float>::infinity());
  EXPECT_EQ(q.shape(), t.shape());
}

TEST(Half, ExhaustiveHalfToFloatToHalfIdentity) {
  // Every half bit pattern must survive half->float->half unchanged
  // (float is a superset of half; NaN payloads are canonicalised so we
  // compare the quiet bit only for NaNs).
  for (uint32_t h = 0; h <= 0xFFFF; ++h) {
    const uint16_t in = static_cast<uint16_t>(h);
    const float f = ht::half_to_float(in);
    const uint16_t out = ht::float_to_half(f);
    if (std::isnan(f)) {
      EXPECT_EQ(out & 0x7C00, 0x7C00);
      EXPECT_NE(out & 0x3FF, 0);
    } else {
      EXPECT_EQ(out, in) << "bits " << h;
    }
  }
}
