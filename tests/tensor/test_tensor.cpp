#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace ht = hanayo::tensor;

TEST(Tensor, DefaultIsEmpty) {
  ht::Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ShapeAndFill) {
  ht::Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, FromData) {
  ht::Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, FromDataSizeMismatchThrows) {
  EXPECT_THROW(ht::Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, NegativeShapeThrows) {
  EXPECT_THROW(ht::Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, ThreeDAccess) {
  ht::Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
}

TEST(Tensor, Reshape) {
  ht::Tensor t({2, 6}, 2.0f);
  ht::Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.size(1), 4);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, Flattened2d) {
  ht::Tensor t({2, 3, 4});
  ht::Tensor f = t.flattened_2d();
  EXPECT_EQ(f.size(0), 6);
  EXPECT_EQ(f.size(1), 4);
  ht::Tensor one_d({5});
  EXPECT_THROW(one_d.flattened_2d(), std::invalid_argument);
}

TEST(Tensor, AddInPlace) {
  ht::Tensor a({3}, 1.0f);
  ht::Tensor b({3}, 2.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  ht::Tensor c({4});
  EXPECT_THROW(a.add_(c), std::invalid_argument);
}

TEST(Tensor, ScaleInPlace) {
  ht::Tensor a({2}, 3.0f);
  a.scale_(2.0f);
  EXPECT_FLOAT_EQ(a[1], 6.0f);
}

TEST(Tensor, ZeroAndBytes) {
  ht::Tensor a({2, 2}, 5.0f);
  EXPECT_EQ(a.bytes(), 16);
  a.zero();
  EXPECT_FLOAT_EQ(a[3], 0.0f);
}

TEST(Tensor, ShapeStr) {
  ht::Tensor a({2, 3});
  EXPECT_EQ(a.shape_str(), "[2, 3]");
}

TEST(Tensor, SizeOutOfRangeThrows) {
  ht::Tensor a({2, 3});
  EXPECT_THROW(a.size(2), std::out_of_range);
  EXPECT_THROW(a.size(-3), std::out_of_range);
}

TEST(Tensor, ZerosOnesFull) {
  EXPECT_FLOAT_EQ(ht::Tensor::zeros({2})[0], 0.0f);
  EXPECT_FLOAT_EQ(ht::Tensor::ones({2})[1], 1.0f);
  EXPECT_FLOAT_EQ(ht::Tensor::full({2}, 4.0f)[0], 4.0f);
}
