#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

TEST(Rng, DeterministicGivenSeed) {
  ht::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  ht::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  ht::Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const float u = r.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  for (int i = 0; i < 1000; ++i) {
    const float u = r.uniform(-2.0f, 3.0f);
    EXPECT_GE(u, -2.0f);
    EXPECT_LT(u, 3.0f);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  ht::Rng r(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float x = r.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, IndexInBounds) {
  ht::Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t k = r.index(7);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 7);
  }
}

TEST(Rng, RandnTensorShapeAndStd) {
  ht::Rng r(21);
  ht::Tensor t = r.randn({100, 100}, 0.5f);
  EXPECT_EQ(t.numel(), 10000);
  double sq = 0.0;
  for (float x : t.flat()) sq += x * x;
  EXPECT_NEAR(sq / 10000.0, 0.25, 0.02);
}

TEST(Rng, RandTensorRange) {
  ht::Rng r(22);
  ht::Tensor t = r.rand({1000}, 2.0f, 4.0f);
  for (float x : t.flat()) {
    EXPECT_GE(x, 2.0f);
    EXPECT_LT(x, 4.0f);
  }
}
