#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace ht = hanayo::tensor;

TEST(Ops, Matmul) {
  ht::Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  ht::Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  ht::Tensor c = ht::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  ht::Tensor a({2, 3});
  ht::Tensor b({2, 3});
  EXPECT_THROW(ht::matmul(a, b), std::invalid_argument);
}

TEST(Ops, MatmulVariantsAgree) {
  ht::Rng rng(7);
  ht::Tensor a = rng.randn({4, 5});
  ht::Tensor b = rng.randn({5, 3});
  ht::Tensor ref = ht::matmul(a, b);
  // matmul_bt(a, b^T) == a b
  EXPECT_TRUE(ht::allclose(ht::matmul_bt(a, ht::transpose(b)), ref, 1e-5f, 1e-6f));
  // matmul_at(a^T, b) == a b
  EXPECT_TRUE(ht::allclose(ht::matmul_at(ht::transpose(a), b), ref, 1e-5f, 1e-6f));
}

TEST(Ops, Transpose) {
  ht::Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  ht::Tensor t = ht::transpose(a);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Ops, ElementwiseBinary) {
  ht::Tensor a({2}, std::vector<float>{1, 2});
  ht::Tensor b({2}, std::vector<float>{3, 5});
  EXPECT_FLOAT_EQ(ht::add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(ht::sub(b, a)[0], 2.0f);
  EXPECT_FLOAT_EQ(ht::mul(a, b)[1], 10.0f);
}

TEST(Ops, ScalarOps) {
  ht::Tensor a({2}, std::vector<float>{1, 2});
  EXPECT_FLOAT_EQ(ht::add_scalar(a, 1.0f)[0], 2.0f);
  EXPECT_FLOAT_EQ(ht::mul_scalar(a, 3.0f)[1], 6.0f);
}

TEST(Ops, AddBiasAndColSum) {
  ht::Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  ht::Tensor bias({3}, std::vector<float>{10, 20, 30});
  ht::Tensor y = ht::add_bias(a, bias);
  EXPECT_FLOAT_EQ(y.at(1, 2), 36.0f);
  ht::Tensor s = ht::col_sum(a);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(Ops, Reductions) {
  ht::Tensor a({4}, std::vector<float>{1, -2, 3, -4});
  EXPECT_FLOAT_EQ(ht::sum(a), -2.0f);
  EXPECT_FLOAT_EQ(ht::mean(a), -0.5f);
  EXPECT_FLOAT_EQ(ht::max_abs(a), 4.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  ht::Rng rng(3);
  ht::Tensor a = rng.randn({5, 7});
  ht::Tensor s = ht::softmax_lastdim(a);
  for (int64_t i = 0; i < 5; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      const float p = s.at(i, j);
      EXPECT_GE(p, 0.0f);
      row += p;
    }
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  ht::Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  ht::Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  EXPECT_TRUE(ht::allclose(ht::softmax_lastdim(a), ht::softmax_lastdim(b), 1e-5f, 1e-6f));
}

TEST(Ops, GeluValues) {
  ht::Tensor x({3}, std::vector<float>{-1.0f, 0.0f, 1.0f});
  ht::Tensor y = ht::gelu(x);
  EXPECT_NEAR(y[0], -0.1588f, 1e-3f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], 0.8412f, 1e-3f);
}

TEST(Ops, GeluGradMatchesFiniteDifference) {
  ht::Rng rng(11);
  ht::Tensor x = rng.randn({10});
  ht::Tensor dy = ht::Tensor::ones({10});
  ht::Tensor g = ht::gelu_grad(x, dy);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 10; ++i) {
    ht::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fd = (ht::gelu(xp)[i] - ht::gelu(xm)[i]) / (2 * eps);
    EXPECT_NEAR(g[i], fd, 2e-3f) << "at " << i;
  }
}

TEST(Ops, MaxAbsDiffAndAllclose) {
  ht::Tensor a({2}, std::vector<float>{1, 2});
  ht::Tensor b({2}, std::vector<float>{1, 2.001f});
  EXPECT_NEAR(ht::max_abs_diff(a, b), 0.001f, 1e-6f);
  EXPECT_FALSE(ht::allclose(a, b, 1e-6f, 1e-6f));
  EXPECT_TRUE(ht::allclose(a, b, 1e-2f, 1e-2f));
  ht::Tensor c({3});
  EXPECT_FALSE(ht::allclose(a, c));
}
