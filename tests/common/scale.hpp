#pragma once
// Sizing knob for stress tests.
//
// Stress tests are sized to be meaningful in a plain Release run, but the
// same iteration counts under TSan's ~10x slowdown would dominate the CI
// leg. Two knobs shrink (or grow) them without touching the test logic:
//
//   * HANAYO_TEST_SCALE (env): a positive double multiplier applied to
//     every scaled count. "0.25" quarters the work, "4" quadruples it for
//     a soak run. Wins over the built-in default.
//   * HANAYO_SANITIZE_BUILD (compile definition, set by CMake whenever
//     HANAYO_SANITIZE is non-empty): defaults the multiplier to 0.25.
//
// Scaled counts never drop below 1, so every loop still executes and
// every invariant is still exercised.

#include <cstdlib>

namespace hanayo_test {

inline double test_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("HANAYO_TEST_SCALE")) {
      const double v = std::atof(env);
      if (v > 0.0) return v;
    }
#if defined(HANAYO_SANITIZE_BUILD)
    return 0.25;
#else
    return 1.0;
#endif
  }();
  return scale;
}

/// `n` iterations at scale 1.0, proportionally fewer/more otherwise;
/// always at least 1.
inline int scaled(int n) {
  const double v = n * test_scale();
  return v < 1.0 ? 1 : static_cast<int>(v);
}

}  // namespace hanayo_test
