// Learning-rate schedules.

#include <gtest/gtest.h>

#include "model/lr_schedule.hpp"

namespace hm = hanayo::model;

TEST(LrSchedule, ConstantIsConstant) {
  const auto s = hm::LrSchedule::constant(0.3f);
  EXPECT_FLOAT_EQ(s.at(0), 0.3f);
  EXPECT_FLOAT_EQ(s.at(1000000), 0.3f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  const auto s = hm::LrSchedule::warmup_linear(1.0f, /*warmup=*/10, /*total=*/20);
  // step k during warmup gives base * (k+1)/warmup.
  EXPECT_FLOAT_EQ(s.at(0), 0.1f);
  EXPECT_FLOAT_EQ(s.at(4), 0.5f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
}

TEST(LrSchedule, LinearDecayReachesMin) {
  const auto s = hm::LrSchedule::warmup_linear(1.0f, 10, 20, /*min_lr=*/0.2f);
  EXPECT_FLOAT_EQ(s.at(10), 1.0f);               // decay start
  EXPECT_FLOAT_EQ(s.at(15), 0.6f);               // halfway
  EXPECT_FLOAT_EQ(s.at(20), 0.2f);               // end
  EXPECT_FLOAT_EQ(s.at(100), 0.2f);              // holds after total
}

TEST(LrSchedule, CosineDecayShape) {
  const auto s = hm::LrSchedule::warmup_cosine(1.0f, 0, 100, 0.0f);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(50), 0.5f, 1e-6f);   // half-cosine midpoint
  EXPECT_NEAR(s.at(100), 0.0f, 1e-6f);
  // Cosine stays above the linear chord in the first half, below in the
  // second — the defining difference between the two decays.
  const auto lin = hm::LrSchedule::warmup_linear(1.0f, 0, 100, 0.0f);
  EXPECT_GT(s.at(25), lin.at(25));
  EXPECT_LT(s.at(75), lin.at(75));
}

TEST(LrSchedule, WarmupThenCosine) {
  const auto s = hm::LrSchedule::warmup_cosine(2.0f, 10, 110, 0.0f);
  EXPECT_FLOAT_EQ(s.at(4), 1.0f);   // mid-warmup
  EXPECT_FLOAT_EQ(s.at(9), 2.0f);   // warmup peak
  EXPECT_NEAR(s.at(60), 1.0f, 1e-5f);  // cosine midpoint of [10, 110]
}

TEST(LrSchedule, RejectsBadArguments) {
  EXPECT_THROW(hm::LrSchedule::warmup_linear(1.0f, -1, 10), std::invalid_argument);
  EXPECT_THROW(hm::LrSchedule::warmup_linear(1.0f, 20, 10), std::invalid_argument);
  EXPECT_THROW(hm::LrSchedule::warmup_cosine(1.0f, 5, 2), std::invalid_argument);
  const auto s = hm::LrSchedule::constant(1.0f);
  EXPECT_THROW(s.at(-1), std::invalid_argument);
}

TEST(LrSchedule, DegenerateDecayWindowHoldsMin) {
  // total == warmup: nothing to decay over; after warmup the rate is min_lr.
  const auto s = hm::LrSchedule::warmup_linear(1.0f, 5, 5, 0.25f);
  EXPECT_FLOAT_EQ(s.at(4), 1.0f);
  EXPECT_FLOAT_EQ(s.at(5), 0.25f);
}
