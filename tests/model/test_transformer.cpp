#include <gtest/gtest.h>

#include "model/loss.hpp"
#include "model/partition.hpp"
#include "model/transformer.hpp"
#include "tensor/ops.hpp"

namespace hm = hanayo::model;
namespace ht = hanayo::tensor;

TEST(ModelConfig, PaperConfigs) {
  const auto gpt = hm::ModelConfig::gpt_paper();
  EXPECT_EQ(gpt.layers, 128);
  EXPECT_EQ(gpt.heads, 16);
  EXPECT_EQ(gpt.hidden, 1024);
  EXPECT_TRUE(gpt.causal);
  const auto bert = hm::ModelConfig::bert_paper();
  EXPECT_EQ(bert.layers, 64);
  EXPECT_EQ(bert.heads, 64);
  EXPECT_EQ(bert.hidden, 2560);
  EXPECT_FALSE(bert.causal);
}

TEST(ModelConfig, LayerDescsStructure) {
  const auto cfg = hm::ModelConfig::tiny(4);
  const auto descs = cfg.layer_descs();
  ASSERT_EQ(descs.size(), 7u);  // emb + 4 blocks + norm + head
  EXPECT_EQ(descs.front().type, hm::LayerDesc::Type::Embedding);
  EXPECT_EQ(descs[1].type, hm::LayerDesc::Type::Block);
  EXPECT_EQ(descs[5].type, hm::LayerDesc::Type::FinalNorm);
  EXPECT_EQ(descs.back().type, hm::LayerDesc::Type::LMHead);
  for (size_t i = 0; i < descs.size(); ++i) {
    EXPECT_EQ(descs[i].index, static_cast<int>(i));
  }
}

TEST(LayerDesc, ParamCountMatchesBuiltLayer) {
  const auto cfg = hm::ModelConfig::tiny(2, 16, 2, 31, 8);
  for (const auto& d : cfg.layer_descs()) {
    auto layer = hm::build_layer(d, 5, 0.02f);
    std::vector<hm::Param*> ps;
    layer->collect_params(ps);
    int64_t n = 0;
    for (auto* p : ps) n += p->value.numel();
    EXPECT_EQ(n, d.param_count()) << "layer " << d.index;
  }
}

TEST(LayerDesc, FlopsAndBytesPositiveAndMonotonic) {
  const auto cfg = hm::ModelConfig::tiny(2, 16, 2, 31, 8);
  for (const auto& d : cfg.layer_descs()) {
    EXPECT_GT(d.fwd_flops(8), 0.0);
    EXPECT_GT(d.fwd_flops(16), d.fwd_flops(8));
    EXPECT_GT(d.output_bytes(8), 0);
    EXPECT_GE(d.activation_bytes(8), 0);
  }
}

TEST(BuildLayer, DeterministicAcrossBuildOrder) {
  const auto cfg = hm::ModelConfig::tiny(3, 16, 2, 31, 8);
  const auto descs = cfg.layer_descs();
  // Build layer 2 alone vs. after building layers 0 and 1: identical.
  auto alone = hm::build_layer(descs[2], 7, 0.02f);
  auto l0 = hm::build_layer(descs[0], 7, 0.02f);
  auto l1 = hm::build_layer(descs[1], 7, 0.02f);
  auto after = hm::build_layer(descs[2], 7, 0.02f);
  std::vector<hm::Param*> pa, pb;
  alone->collect_params(pa);
  after->collect_params(pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ht::max_abs_diff(pa[i]->value, pb[i]->value), 0.0f);
  }
}

TEST(BuildLayer, DifferentSeedsDiffer) {
  const auto cfg = hm::ModelConfig::tiny(1, 16, 2, 31, 8);
  const auto descs = cfg.layer_descs();
  auto a = hm::build_layer(descs[1], 1, 0.02f);
  auto b = hm::build_layer(descs[1], 2, 0.02f);
  std::vector<hm::Param*> pa, pb;
  a->collect_params(pa);
  b->collect_params(pb);
  // At least one randomly initialised parameter must differ (the first
  // params are LayerNorm gains, which are deterministically ones).
  float diff = 0.0f;
  for (size_t i = 0; i < pa.size(); ++i) {
    diff = std::max(diff, ht::max_abs_diff(pa[i]->value, pb[i]->value));
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(StageModule, SplitChainEqualsFullModel) {
  // Running [0, k) then [k, n) must equal running [0, n) — the property that
  // makes pipeline stages composable.
  const auto cfg = hm::ModelConfig::tiny(4, 16, 2, 31, 8);
  const auto descs = cfg.layer_descs();
  const int n = static_cast<int>(descs.size());
  hm::StageModule full(descs, 0, n, 11, cfg.init_std);
  ht::Rng rng(3);
  ht::Tensor ids({2, 8});
  for (auto& v : ids.flat()) v = static_cast<float>(rng.index(31));

  ht::Tensor ref = full.forward(ids, 0);
  for (int k = 1; k < n; ++k) {
    hm::StageModule a(descs, 0, k, 11, cfg.init_std);
    hm::StageModule b(descs, k, n, 11, cfg.init_std);
    ht::Tensor mid = a.forward(ids, 0);
    ht::Tensor out = b.forward(mid, 0);
    EXPECT_LE(ht::max_abs_diff(out, ref), 1e-5f) << "split at " << k;
  }
}

TEST(StageModule, SplitBackwardEqualsFullModel) {
  const auto cfg = hm::ModelConfig::tiny(2, 16, 2, 31, 8);
  const auto descs = cfg.layer_descs();
  const int n = static_cast<int>(descs.size());
  const int k = 3;
  ht::Rng rng(5);
  ht::Tensor ids({1, 8});
  for (auto& v : ids.flat()) v = static_cast<float>(rng.index(31));
  ht::Tensor tgt({8});
  for (auto& v : tgt.flat()) v = static_cast<float>(rng.index(31));

  hm::StageModule full(descs, 0, n, 13, cfg.init_std);
  ht::Tensor logits = full.forward(ids, 0);
  auto [loss, dl] = hm::cross_entropy(logits, tgt);
  full.backward(dl, 0);

  hm::StageModule a(descs, 0, k, 13, cfg.init_std);
  hm::StageModule b(descs, k, n, 13, cfg.init_std);
  ht::Tensor logits2 = b.forward(a.forward(ids, 0), 0);
  auto [loss2, dl2] = hm::cross_entropy(logits2, tgt);
  EXPECT_NEAR(loss2, loss, 1e-5f);
  a.backward(b.backward(dl2, 0), 0);

  // Compare the grads of the full model against the concatenated stages.
  auto pf = full.params();
  auto pa = a.params();
  auto pb = b.params();
  std::vector<hm::Param*> split;
  split.insert(split.end(), pa.begin(), pa.end());
  split.insert(split.end(), pb.begin(), pb.end());
  ASSERT_EQ(pf.size(), split.size());
  for (size_t i = 0; i < pf.size(); ++i) {
    EXPECT_LE(ht::max_abs_diff(pf[i]->grad, split[i]->grad), 1e-5f)
        << pf[i]->name;
  }
}

TEST(StageModule, ZeroGradsClearsEverything) {
  const auto cfg = hm::ModelConfig::tiny(1, 8, 2, 17, 4);
  const auto descs = cfg.layer_descs();
  hm::StageModule m(descs, 0, static_cast<int>(descs.size()), 1, cfg.init_std);
  ht::Tensor ids({1, 4}, std::vector<float>{1, 2, 3, 4});
  ht::Tensor y = m.forward(ids, 0);
  m.backward(ht::Tensor::ones(y.shape()), 0);
  m.zero_grads();
  for (auto* p : m.params()) EXPECT_EQ(ht::max_abs(p->grad), 0.0f);
}

TEST(StageModule, ParamCountMatchesConfigTotal) {
  const auto cfg = hm::ModelConfig::tiny(3, 16, 2, 31, 8);
  const auto descs = cfg.layer_descs();
  hm::StageModule m(descs, 0, static_cast<int>(descs.size()), 1, cfg.init_std);
  EXPECT_EQ(m.param_count(), cfg.total_params());
}

TEST(StageModule, BadRangeThrows) {
  const auto cfg = hm::ModelConfig::tiny(1);
  const auto descs = cfg.layer_descs();
  EXPECT_THROW(hm::StageModule(descs, 2, 1, 1, 0.02f), std::invalid_argument);
  EXPECT_THROW(hm::StageModule(descs, 0, 99, 1, 0.02f), std::invalid_argument);
}

TEST(ModelConfig, ZooPresets) {
  EXPECT_EQ(hm::ModelConfig::gpt2_small().layers, 12);
  EXPECT_EQ(hm::ModelConfig::gpt2_medium().hidden, 1024);
  EXPECT_EQ(hm::ModelConfig::gpt2_xl().heads, 25);
  EXPECT_TRUE(hm::ModelConfig::gpt2_xl().causal);
  EXPECT_FALSE(hm::ModelConfig::bert_base().causal);
  EXPECT_EQ(hm::ModelConfig::bert_large().layers, 24);
  // Parameter counts in the right ballpark (GPT-2 small ~124M).
  const double gpt2s = static_cast<double>(hm::ModelConfig::gpt2_small().total_params());
  EXPECT_GT(gpt2s, 100e6);
  EXPECT_LT(gpt2s, 200e6);
}

TEST(ModelConfig, SplitBlocksDoublesBlockEntries) {
  auto cfg = hm::ModelConfig::tiny(5);
  const auto whole = cfg.layer_descs();
  cfg.split_blocks = true;
  const auto split = cfg.layer_descs();
  EXPECT_EQ(split.size(), whole.size() + 5);
  // Param counts must agree between the two granularities.
  int64_t a = 0, b = 0;
  for (const auto& d : whole) a += d.param_count();
  for (const auto& d : split) b += d.param_count();
  EXPECT_EQ(a, b);
  // As must total FLOPs.
  double fa = 0.0, fb = 0.0;
  for (const auto& d : whole) fa += d.fwd_flops(16);
  for (const auto& d : split) fb += d.fwd_flops(16);
  EXPECT_NEAR(fa, fb, 1e-6 * fa);
}

TEST(ModelConfig, SplitHalvesComputeSameFunctionAsBlock) {
  // AttnResidual(MlpResidual(x)) with the same weights == Block(x) is not
  // required (independent seeds), but both must be differentiable units
  // that chain: run a split model end to end.
  auto cfg = hm::ModelConfig::tiny(2, 16, 2, 31, 8);
  cfg.split_blocks = true;
  const auto descs = cfg.layer_descs();
  hm::StageModule m(descs, 0, static_cast<int>(descs.size()), 3, cfg.init_std);
  ht::Rng rng(9);
  ht::Tensor ids({1, 8});
  for (auto& v : ids.flat()) v = static_cast<float>(rng.index(31));
  ht::Tensor y = m.forward(ids, 0);
  EXPECT_EQ(y.shape(), (ht::Shape{1, 8, 31}));
  m.backward(ht::Tensor::ones(y.shape()), 0);
  EXPECT_EQ(m.cached_bytes(), 0);
}
