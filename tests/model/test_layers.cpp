#include <gtest/gtest.h>

#include "model/layers.hpp"
#include "tensor/ops.hpp"

namespace hm = hanayo::model;
namespace ht = hanayo::tensor;

TEST(Linear, ForwardShape) {
  ht::Rng rng(1);
  hm::Linear lin("l", 4, 6, rng, 0.1f);
  ht::Tensor x = rng.randn({2, 3, 4});
  ht::Tensor y = lin.forward(x, 0);
  EXPECT_EQ(y.shape(), (ht::Shape{2, 3, 6}));
  lin.backward(ht::Tensor(y.shape()), 0);
}

TEST(Linear, BiasApplied) {
  ht::Rng rng(1);
  hm::Linear lin("l", 2, 2, rng, 0.0f);  // zero weights
  lin.bias().value[0] = 3.0f;
  lin.bias().value[1] = -1.0f;
  ht::Tensor x({1, 2}, std::vector<float>{5, 7});
  ht::Tensor y = lin.forward(x, 0);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f);
}

TEST(Linear, CachePerMicroBatch) {
  ht::Rng rng(2);
  hm::Linear lin("l", 3, 3, rng, 0.1f);
  ht::Tensor x0 = rng.randn({2, 3});
  ht::Tensor x1 = rng.randn({2, 3});
  lin.forward(x0, 0);
  EXPECT_GT(lin.cached_bytes(), 0);
  const int64_t one = lin.cached_bytes();
  lin.forward(x1, 1);
  EXPECT_EQ(lin.cached_bytes(), 2 * one);
  lin.backward(ht::Tensor({2, 3}), 1);
  EXPECT_EQ(lin.cached_bytes(), one);
  lin.backward(ht::Tensor({2, 3}), 0);
  EXPECT_EQ(lin.cached_bytes(), 0);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  ht::Rng rng(3);
  hm::Linear lin("l", 2, 2, rng, 0.1f);
  EXPECT_THROW(lin.backward(ht::Tensor({1, 2}), 5), std::logic_error);
}

TEST(Linear, GradsAccumulateAcrossMicroBatches) {
  ht::Rng rng(4);
  hm::Linear lin("l", 2, 2, rng, 0.1f);
  ht::Tensor x = ht::Tensor::ones({1, 2});
  ht::Tensor dy = ht::Tensor::ones({1, 2});
  lin.forward(x, 0);
  lin.backward(dy, 0);
  const float g1 = lin.weight().grad[0];
  lin.forward(x, 1);
  lin.backward(dy, 1);
  EXPECT_FLOAT_EQ(lin.weight().grad[0], 2.0f * g1);
}

TEST(LayerNorm, NormalisesRows) {
  hm::LayerNorm ln("ln", 8);
  ht::Rng rng(5);
  ht::Tensor x = rng.randn({4, 8}, 3.0f);
  ht::Tensor y = ln.forward(x, 0);
  for (int64_t i = 0; i < 4; ++i) {
    double mu = 0, var = 0;
    for (int64_t j = 0; j < 8; ++j) mu += y.at(i, j);
    mu /= 8;
    for (int64_t j = 0; j < 8; ++j) var += (y.at(i, j) - mu) * (y.at(i, j) - mu);
    var /= 8;
    EXPECT_NEAR(mu, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GainBiasApplied) {
  hm::LayerNorm ln("ln", 2);
  std::vector<hm::Param*> ps;
  ln.collect_params(ps);
  ps[0]->value.fill(2.0f);  // gain
  ps[1]->value.fill(1.0f);  // bias
  ht::Tensor x({1, 2}, std::vector<float>{-1, 1});
  ht::Tensor y = ln.forward(x, 0);
  EXPECT_NEAR(y[0], 2.0f * -1.0f + 1.0f, 1e-3f);
  EXPECT_NEAR(y[1], 2.0f * 1.0f + 1.0f, 1e-3f);
}

TEST(Gelu, CacheLifecycle) {
  hm::Gelu g("g");
  ht::Rng rng(6);
  ht::Tensor x = rng.randn({3, 3});
  g.forward(x, 7);
  EXPECT_GT(g.cached_bytes(), 0);
  g.backward(ht::Tensor({3, 3}), 7);
  EXPECT_EQ(g.cached_bytes(), 0);
  EXPECT_THROW(g.backward(ht::Tensor({3, 3}), 7), std::logic_error);
}

TEST(Embedding, LookupAddsTokenAndPosition) {
  ht::Rng rng(7);
  hm::Embedding emb("e", 10, 4, 3, rng, 0.1f);
  ht::Tensor ids({1, 2}, std::vector<float>{3, 5});
  ht::Tensor y = emb.forward(ids, 0);
  EXPECT_EQ(y.shape(), (ht::Shape{1, 2, 3}));
  std::vector<hm::Param*> ps;
  emb.collect_params(ps);
  const ht::Tensor& tok = ps[0]->value;
  const ht::Tensor& pos = ps[1]->value;
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), tok.at(3, 0) + pos.at(0, 0));
  EXPECT_FLOAT_EQ(y.at(0, 1, 2), tok.at(5, 2) + pos.at(1, 2));
}

TEST(Embedding, OutOfVocabThrows) {
  ht::Rng rng(8);
  hm::Embedding emb("e", 10, 4, 3, rng, 0.1f);
  ht::Tensor ids({1, 1}, std::vector<float>{10});
  EXPECT_THROW(emb.forward(ids, 0), std::out_of_range);
}

TEST(Embedding, BackwardScattersIntoRows) {
  ht::Rng rng(9);
  hm::Embedding emb("e", 6, 4, 2, rng, 0.1f);
  ht::Tensor ids({1, 2}, std::vector<float>{4, 4});
  emb.forward(ids, 0);
  ht::Tensor dy({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  ht::Tensor dx = emb.backward(dy, 0);
  EXPECT_TRUE(dx.empty());
  std::vector<hm::Param*> ps;
  emb.collect_params(ps);
  // token 4 receives both positions' gradients
  EXPECT_FLOAT_EQ(ps[0]->grad.at(4, 0), 4.0f);
  EXPECT_FLOAT_EQ(ps[0]->grad.at(4, 1), 6.0f);
  // position grads
  EXPECT_FLOAT_EQ(ps[1]->grad.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(ps[1]->grad.at(1, 0), 3.0f);
}

TEST(Embedding, TooLongSequenceThrows) {
  ht::Rng rng(10);
  hm::Embedding emb("e", 6, 2, 2, rng, 0.1f);
  ht::Tensor ids({1, 3}, std::vector<float>{0, 1, 2});
  EXPECT_THROW(emb.forward(ids, 0), std::invalid_argument);
}
