#include <gtest/gtest.h>

#include <cmath>

#include "model/optimizer.hpp"
#include "tensor/ops.hpp"

namespace hm = hanayo::model;
namespace ht = hanayo::tensor;

namespace {
hm::Param make_param(float v, float g) {
  hm::Param p("p", ht::Tensor({2}, std::vector<float>{v, v}));
  p.grad.fill(g);
  return p;
}
}  // namespace

TEST(Sgd, PlainStep) {
  hm::Param p = make_param(1.0f, 0.5f);
  hm::Sgd opt(0.1f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  hm::Param p = make_param(0.0f, 1.0f);
  hm::Sgd opt(1.0f, 0.9f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);  // v = 1
  p.grad.fill(1.0f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], -1.0f - 1.9f);  // v = 0.9 + 1
}

TEST(Sgd, IndependentSlotsPerParam) {
  hm::Param a = make_param(0.0f, 1.0f);
  hm::Param b = make_param(0.0f, 2.0f);
  hm::Sgd opt(1.0f, 0.5f);
  opt.step({&a, &b});
  opt.step({&a, &b});
  EXPECT_FLOAT_EQ(a.value[0], -(1.0f + 1.5f));
  EXPECT_FLOAT_EQ(b.value[0], -(2.0f + 3.0f));
}

TEST(AdamW, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  hm::Param p = make_param(1.0f, 0.3f);
  hm::AdamW opt(0.01f);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4f);
}

TEST(AdamW, WeightDecayPullsTowardZero) {
  hm::Param p = make_param(1.0f, 0.0f);
  hm::AdamW opt(0.1f, 0.9f, 0.999f, 1e-8f, 0.5f);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f * 1.0f, 1e-5f);
}

TEST(AdamW, ConvergesOnQuadratic) {
  // minimise f(x) = (x - 3)^2 — a smoke test that the update direction and
  // bias correction are sane.
  hm::Param p("x", ht::Tensor({1}, std::vector<float>{0.0f}));
  hm::AdamW opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  hm::Param p("x", ht::Tensor({1}, std::vector<float>{0.0f}));
  hm::Sgd opt(0.1f, 0.5f);
  for (int i = 0; i < 100; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.01f);
}
